// Scenario: head-to-head comparison of GNNDrive against the three baseline
// disk-based training systems on the papers100m-mini workload — the
// experiment that motivates the paper (Sect. 5.1 / Table 2 in miniature).
#include <cstdio>

#include "baselines/ginex.hpp"
#include "baselines/mariusgnn.hpp"
#include "baselines/pygplus.hpp"
#include "core/pipeline.hpp"

using namespace gnndrive;

namespace {

CommonTrainConfig common_config() {
  CommonTrainConfig c;
  c.model.kind = ModelKind::kSage;
  c.model.hidden_dim = 32;
  c.sampler.fanouts = {10, 10, 10};
  c.batch_seeds = 4;
  return c;
}

struct Row {
  std::string name;
  EpochStats stats;
  double accuracy = 0.0;
  bool oom = false;
  std::string error;
};

Row run(const std::string& name, const Dataset& dataset) {
  Row row;
  row.name = name;
  SsdConfig ssd_cfg;  // PM883-class defaults
  auto ssd = dataset.make_device(ssd_cfg);
  HostMemory mem(paper_gb(32));  // the paper's default 32 GB box
  PageCache cache(mem, *ssd);
  RunContext ctx{&dataset, ssd.get(), &mem, &cache, nullptr};

  GpuConfig gpu;
  gpu.device_memory_bytes = paper_gb(24);
  try {
    std::unique_ptr<TrainSystem> system;
    if (name == "GNNDrive-GPU" || name == "GNNDrive-CPU") {
      GnnDriveConfig cfg;
      cfg.common = common_config();
      cfg.cpu_training = name == "GNNDrive-CPU";
      cfg.gpu = gpu;
      system = std::make_unique<GnnDrive>(ctx, cfg);
    } else if (name == "PyG+") {
      PygPlusConfig cfg;
      cfg.common = common_config();
      cfg.gpu = gpu;
      system = std::make_unique<PygPlus>(ctx, cfg);
    } else if (name == "Ginex") {
      GinexConfig cfg;
      cfg.common = common_config();
      cfg.gpu = gpu;
      system = std::make_unique<Ginex>(ctx, cfg);
    } else {
      MariusConfig cfg;
      cfg.common = common_config();
      cfg.gpu = gpu;
      system = std::make_unique<MariusGnn>(ctx, cfg);
    }
    system->run_epoch(100);  // warm-up
    row.stats = system->run_epoch(0);
    row.accuracy = system->evaluate();
  } catch (const SimOutOfMemory& oom) {
    row.oom = true;
    row.error = oom.what();
  }
  return row;
}

}  // namespace

int main() {
  DatasetSpec spec = mini_spec("papers100m");
  spec.train_fraction = 0.004;  // short demo epochs
  const Dataset dataset = Dataset::build(spec);
  std::printf("papers100m-mini: %u nodes, %llu edges, dim %u\n\n",
              spec.num_nodes,
              static_cast<unsigned long long>(spec.num_edges),
              spec.feature_dim);

  std::printf("%-14s %10s %10s %10s %10s %8s\n", "system", "epoch(s)",
              "prep(s)", "extract(s)", "loss", "acc");
  double gd = 0.0;
  for (const char* name : {"GNNDrive-GPU", "GNNDrive-CPU", "PyG+", "Ginex",
                           "MariusGNN"}) {
    const Row row = run(name, dataset);
    if (row.oom) {
      std::printf("%-14s %10s  (%s)\n", row.name.c_str(), "OOM",
                  row.error.c_str());
      continue;
    }
    std::printf("%-14s %10.3f %10.3f %10.3f %10.4f %8.3f", row.name.c_str(),
                row.stats.epoch_seconds, row.stats.prep_seconds,
                row.stats.extract_seconds, row.stats.loss, row.accuracy);
    if (row.name == "GNNDrive-GPU") {
      gd = row.stats.epoch_seconds;
    } else if (gd > 0) {
      std::printf("   (GNNDrive-GPU %.1fx faster)",
                  row.stats.epoch_seconds / gd);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
