// Scenario: data-parallel training across multiple (simulated) GPUs —
// the paper's Sect. 4.3 / Fig. 13 setup in miniature. Shows how per-replica
// pipelines share topology while synchronizing gradients per mini-batch,
// and that convergence is preserved as replicas are added.
#include <cstdio>

#include "core/multi_gpu.hpp"

using namespace gnndrive;

int main() {
  DatasetSpec spec = toy_spec(64);
  spec.num_nodes = 20000;
  spec.num_edges = 300000;
  spec.train_fraction = 0.05;
  const Dataset dataset = Dataset::build(spec);

  std::printf("%9s %10s %10s %8s %8s\n", "replicas", "epoch(s)", "speedup",
              "loss", "acc");
  double base = 0.0;
  for (std::uint32_t replicas : {1u, 2u, 4u}) {
    SsdConfig ssd_cfg;
    auto ssd = dataset.make_device(ssd_cfg);
    HostMemory mem(paper_gb(256));  // the paper's multi-GPU box: 256 GB
    PageCache cache(mem, *ssd);
    RunContext ctx{&dataset, ssd.get(), &mem, &cache, nullptr};

    MultiGpuConfig cfg;
    cfg.replica.common.model.kind = ModelKind::kSage;
    cfg.replica.common.model.hidden_dim = 32;
    cfg.replica.common.sampler.fanouts = {10, 10, 10};
    cfg.replica.common.batch_seeds = 8;
    cfg.replica.gpu.device_memory_bytes = paper_gb(12);  // K80-sized
    // Model the K80's kernel time explicitly: modeled kernel time (unlike
    // real single-core host math) parallelizes across replicas, which is
    // what the multi-GPU box provides. See DESIGN.md / fig13.
    cfg.replica.gpu.gpu_flops_per_s = 0.2e9;
    cfg.num_replicas = replicas;
    MultiGpuGnnDrive system(ctx, cfg);

    system.run_epoch(100);  // warm-up
    EpochStats stats;
    for (int e = 0; e < 3; ++e) stats = system.run_epoch(e);
    if (replicas == 1) base = stats.epoch_seconds;
    std::printf("%9u %10.3f %9.2fx %8.4f %8.3f\n", replicas,
                stats.epoch_seconds, base / stats.epoch_seconds, stats.loss,
                system.evaluate());
  }
  return 0;
}
