// Serving demo: train GraphSAGE for a few epochs, then serve online
// inference requests from the same process — sharing the trained model
// parameters and the warm feature buffer with the training pipeline.
//
// Demonstrates the GNNDrive-Serve API (docs/serving.md): construct a
// ServeEngine over a GnnDrive host, submit requests (futures), coalesce
// them into micro-batches, enforce an SLO deadline, and read the serving
// report. The middle section keeps serving while another training epoch
// runs concurrently on the shared feature buffer, then hot-swaps the
// serving replicas to the epoch's checkpoint generation without dropping a
// request (docs/recovery.md). Ctrl-C drains both sides gracefully: the
// trainer finishes in-flight batches and checkpoints, the serve workers
// resolve every admitted future before stop() returns.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/engine.hpp"
#include "util/signal.hpp"

using namespace gnndrive;

int main() {
  ShutdownSignal::install();

  // 1. Dataset + simulated environment (same setup as quickstart).
  DatasetSpec spec = toy_spec(/*feature_dim=*/128);
  Dataset dataset = Dataset::build(spec);
  SsdConfig ssd_cfg;
  auto ssd = dataset.make_device(ssd_cfg);
  HostMemory host_mem(64ull << 20);
  PageCache page_cache(host_mem, *ssd);

  RunContext ctx;
  ctx.dataset = &dataset;
  ctx.ssd = ssd.get();
  ctx.host_mem = &host_mem;
  ctx.page_cache = &page_cache;

  // 2. Train for a few epochs first, checkpointing at every epoch boundary.
  GnnDriveConfig cfg;
  cfg.common.model.kind = ModelKind::kSage;
  cfg.common.model.hidden_dim = 32;
  cfg.common.sampler.fanouts = {10, 10, 10};
  cfg.common.batch_seeds = 16;
  cfg.ckpt.enabled = true;
  cfg.ckpt.dir = "serve-demo-ckpt";
  GnnDrive system(ctx, cfg);
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    if (ShutdownSignal::requested()) system.request_stop();
    EpochStats stats = system.run_epoch(epoch);
    std::printf("train epoch %llu: %.3f s, loss %.4f, acc %.3f\n",
                static_cast<unsigned long long>(epoch), stats.epoch_seconds,
                stats.loss, stats.train_accuracy);
    if (stats.interrupted) {
      std::printf("interrupted during training; checkpointed, exiting\n");
      return 0;
    }
  }

  // 3. Serve: micro-batches of up to 8 requests, a 300 us coalescing
  //    window, and a 50 ms SLO deadline. The engine shares the host's
  //    feature buffer (inference hits rows training already loaded) and
  //    copies its trained parameters into per-worker replicas.
  ServeConfig serve_cfg;
  serve_cfg.workers = 2;
  serve_cfg.max_batch = 8;
  serve_cfg.max_wait_us = 300.0;
  serve_cfg.slo.deadline_ms = 50.0;
  ServeEngine engine(ctx, serve_cfg, system);
  engine.start();

  std::vector<std::future<InferResult>> futures;
  for (NodeId node = 0; node < 64; ++node) {
    futures.push_back(engine.submit(node * 61 % spec.num_nodes));
  }
  std::uint32_t ok = 0;
  for (auto& f : futures) {
    const InferResult res = f.get();
    if (res.status == InferStatus::kOk) {
      ++ok;
      if (ok <= 3) {
        std::printf("request %llu -> class %d (%.0f us end-to-end)\n",
                    static_cast<unsigned long long>(res.request_id),
                    res.predicted_class, res.total_us);
      }
    }
  }
  std::printf("served %u/64 within the SLO\n", ok);

  // 4. Keep serving while one more training epoch runs concurrently: both
  //    sides share the feature buffer without deadlocking (serving pins
  //    only the slots beyond training's reserve). A Ctrl-C here drains the
  //    trainer mid-epoch; serving keeps answering until stop() below.
  std::thread watcher([&] {
    while (!ShutdownSignal::requested() && !system.stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (ShutdownSignal::requested()) system.request_stop();
  });
  std::thread trainer([&] { system.run_epoch(3); });
  futures.clear();
  for (NodeId node = 0; node < 64; ++node) {
    futures.push_back(engine.submit(node * 67 % spec.num_nodes));
  }
  for (auto& f : futures) f.get();
  trainer.join();
  if (!system.stop_requested()) system.request_stop();  // unblock the watcher
  watcher.join();

  // 5. Hot-swap the serving replicas to the newest checkpoint generation —
  //    epoch 3's boundary checkpoint (or the drain checkpoint on Ctrl-C).
  //    In-flight micro-batches finish on the old replicas; no request is
  //    dropped.
  const std::uint64_t gen = engine.hot_swap_from(*system.checkpoint_manager(),
                                                 system.fingerprint());
  std::printf("serving hot-swapped to checkpoint generation %llu\n",
              static_cast<unsigned long long>(gen));
  engine.stop();

  std::printf("\n%s\n", engine.report().format().c_str());
  return 0;
}
