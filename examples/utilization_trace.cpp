// Scenario: observe WHY GNNDrive is fast — attach telemetry to one GNNDrive
// run and one PyG+ run on the same environment and print the CPU / GPU /
// io-wait profile side by side (the paper's Figs. 3 and 11 in miniature).
#include <cstdio>

#include "baselines/pygplus.hpp"
#include "core/pipeline.hpp"

using namespace gnndrive;

namespace {

struct Profile {
  double epoch_seconds;
  double cpu;
  double gpu;
  double io_wait;
};

Profile run_profiled(const Dataset& dataset, bool gnndrive) {
  SsdConfig ssd_cfg;
  auto ssd = dataset.make_device(ssd_cfg);
  HostMemory mem(paper_gb(32));
  Telemetry telemetry(100.0);
  PageCache cache(mem, *ssd, &telemetry);
  RunContext ctx{&dataset, ssd.get(), &mem, &cache, &telemetry};

  CommonTrainConfig common;
  common.model.kind = ModelKind::kSage;
  common.model.hidden_dim = 32;
  common.sampler.fanouts = {10, 10, 10};
  common.batch_seeds = 4;

  std::unique_ptr<TrainSystem> system;
  if (gnndrive) {
    GnnDriveConfig cfg;
    cfg.common = common;
    system = std::make_unique<GnnDrive>(ctx, cfg);
  } else {
    PygPlusConfig cfg;
    cfg.common = common;
    system = std::make_unique<PygPlus>(ctx, cfg);
  }
  system->run_epoch(100);  // warm-up, untraced
  telemetry.start();
  const EpochStats stats = system->run_epoch(0);
  return Profile{stats.epoch_seconds,
                 telemetry.total_seconds(TraceCat::kCpuBusy),
                 telemetry.total_seconds(TraceCat::kGpuBusy),
                 telemetry.total_seconds(TraceCat::kIoWait)};
}

}  // namespace

int main() {
  DatasetSpec spec = mini_spec("papers100m");
  spec.train_fraction = 0.003;  // short demo epoch
  const Dataset dataset = Dataset::build(spec);

  std::printf("%-10s %10s %10s %10s %10s %14s\n", "system", "epoch(s)",
              "cpu(s)", "gpu(s)", "iowait(s)", "iowait:cpu");
  for (const bool gnndrive : {true, false}) {
    const Profile p = run_profiled(dataset, gnndrive);
    std::printf("%-10s %10.2f %10.2f %10.2f %10.2f %13.1fx\n",
                gnndrive ? "GNNDrive" : "PyG+", p.epoch_seconds, p.cpu, p.gpu,
                p.io_wait, p.io_wait / std::max(p.cpu, 1e-9));
  }
  std::printf("\nGNNDrive hides its I/O behind the pipeline (low io-wait); "
              "PyG+'s synchronous page faults leave threads blocked.\n");
  return 0;
}
