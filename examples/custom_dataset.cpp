// Scenario: bring-your-own-graph. Shows the substrate-level public API a
// downstream user needs to train on a custom edge list instead of the
// built-in synthetic datasets: build a CSC graph, lay features out on the
// simulated SSD, and drive GNNDrive directly. (The same layout would work
// over a FileBackend against a real file.)
#include <cstdio>
#include <cstring>

#include "core/pipeline.hpp"
#include "graph/graph.hpp"

using namespace gnndrive;

namespace {

/// A toy "co-purchase" graph: ring communities with a few hub products.
std::vector<std::pair<NodeId, NodeId>> make_edges(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  Rng rng(2024);
  for (NodeId v = 0; v < n; ++v) {
    edges.emplace_back(v, (v + 1) % n);              // ring
    edges.emplace_back(v, (v + n - 1) % n);          // ring back-edge
    edges.emplace_back(v, v % 16);                   // hub products
    edges.emplace_back(static_cast<NodeId>(rng.next_below(n)), v);  // noise
  }
  return edges;
}

}  // namespace

int main() {
  // The registry path covers the common case, so here we lean on
  // Dataset::build over a custom spec, then demonstrate the raw pieces a
  // fully custom pipeline would use: CSC construction + image layout.
  constexpr NodeId kNodes = 10000;
  const auto edges = make_edges(kNodes);
  const CscGraph csc = build_csc(kNodes, edges);
  std::printf("custom graph: %u nodes, %llu edges, max in-degree %llu\n",
              csc.num_nodes,
              static_cast<unsigned long long>(csc.num_edges()),
              static_cast<unsigned long long>([&] {
                EdgeId best = 0;
                for (NodeId v = 0; v < csc.num_nodes; ++v) {
                  best = std::max<EdgeId>(best, csc.in_degree(v));
                }
                return best;
              }()));

  // For training we still need features/labels on the simulated SSD;
  // DatasetSpec + Dataset::build handles the layout. A production user
  // would add a Dataset::from_csc() overload — here the spec's generator
  // reproduces an equivalent skewed community graph at the same size.
  DatasetSpec spec;
  spec.name = "copurchase";
  spec.num_nodes = kNodes;
  spec.num_edges = edges.size();
  spec.feature_dim = 64;
  spec.num_classes = 8;
  spec.train_fraction = 0.08;
  spec.seed = 31;
  const Dataset dataset = Dataset::build(spec);

  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 60.0;
  auto ssd = dataset.make_device(ssd_cfg);
  HostMemory mem(paper_gb(16));
  PageCache cache(mem, *ssd);
  RunContext ctx{&dataset, ssd.get(), &mem, &cache, nullptr};

  GnnDriveConfig cfg;
  cfg.common.model.kind = ModelKind::kGat;  // attention model this time
  cfg.common.model.hidden_dim = 32;
  cfg.common.model.gat_heads = 2;
  cfg.common.sampler.fanouts = {10, 10, 5};  // the paper's GAT fanout
  cfg.common.batch_seeds = 16;
  GnnDrive system(ctx, cfg);

  for (int epoch = 0; epoch < 4; ++epoch) {
    const EpochStats stats = system.run_epoch(epoch);
    std::printf("epoch %d: %.3fs, loss %.4f, valid acc %.3f\n", epoch,
                stats.epoch_seconds, stats.loss, system.evaluate());
  }
  return 0;
}
