// Quickstart: train GraphSAGE on a small synthetic dataset with GNNDrive.
//
// Demonstrates the full public API: build a dataset, set up the simulated
// environment (SSD + host memory + page cache), construct the GNNDrive
// pipeline with checkpointing enabled, resume from any previous run, train
// a few epochs, and shut down gracefully on Ctrl-C (finish in-flight
// batches, write a final checkpoint, exit cleanly).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "core/pipeline.hpp"
#include "util/signal.hpp"

using namespace gnndrive;

int main() {
  // 1. A small dataset: 4k nodes, 60k edges, 16-dim features, 8 classes.
  DatasetSpec spec = toy_spec(/*feature_dim=*/128);
  Dataset dataset = Dataset::build(spec);
  std::printf("dataset %s: %u nodes, %llu edges, dim %u\n",
              spec.name.c_str(), spec.num_nodes,
              static_cast<unsigned long long>(spec.num_edges),
              spec.feature_dim);

  // 2. Simulated environment: a modest SSD and a 64 MiB host budget.
  SsdConfig ssd_cfg;
  auto ssd = dataset.make_device(ssd_cfg);
  HostMemory host_mem(64ull << 20);
  PageCache page_cache(host_mem, *ssd);

  RunContext ctx;
  ctx.dataset = &dataset;
  ctx.ssd = ssd.get();
  ctx.host_mem = &host_mem;
  ctx.page_cache = &page_cache;

  // 3. GNNDrive with default knobs, plus crash-safe checkpoints every 8
  //    trained batches (docs/recovery.md).
  GnnDriveConfig cfg;
  cfg.common.model.kind = ModelKind::kSage;
  cfg.common.model.hidden_dim = 32;
  cfg.common.sampler.fanouts = {10, 10, 10};
  cfg.common.batch_seeds = 16;
  cfg.ckpt.enabled = true;
  cfg.ckpt.dir = "quickstart-ckpt";
  cfg.ckpt.interval_batches = 8;
  GnnDrive system(ctx, cfg);

  // 4. Graceful Ctrl-C: the watcher translates the (async-signal-safe)
  //    flag into a pipeline drain request; run_epoch then returns with
  //    stats.interrupted set and the cursor at the first untrained batch.
  ShutdownSignal::install();
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&] {
    while (!watcher_stop.load()) {
      if (ShutdownSignal::requested()) {
        system.request_stop();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // 5. Resume from a previous interrupted run, if a checkpoint exists.
  std::uint64_t first_epoch = 0;
  if (auto resumed = system.resume()) {
    first_epoch = resumed->epoch;
    std::printf("resumed from generation %llu: epoch %llu, batch %llu\n",
                static_cast<unsigned long long>(resumed->generation),
                static_cast<unsigned long long>(resumed->epoch),
                static_cast<unsigned long long>(resumed->next_batch));
  }

  // 6. Train. Each epoch boundary (and every 8 trained batches) writes a
  //    checkpoint generation; an interrupted epoch stops after in-flight
  //    batches drain.
  for (std::uint64_t epoch = first_epoch; epoch < 5; ++epoch) {
    EpochStats stats = system.run_epoch(epoch);
    if (stats.interrupted) {
      std::printf("interrupted by %s: checkpointed at generation %llu\n",
                  ShutdownSignal::signal_number() == SIGTERM ? "SIGTERM"
                                                            : "SIGINT",
                  static_cast<unsigned long long>(
                      system.checkpoint_manager()->manifest_generation()));
      break;
    }
    const double val_acc = system.evaluate();
    std::printf(
        "epoch %llu: %.3f s, %llu batches, loss %.4f, "
        "train acc %.3f, valid acc %.3f\n",
        static_cast<unsigned long long>(epoch), stats.epoch_seconds,
        static_cast<unsigned long long>(stats.batches), stats.loss,
        stats.train_accuracy, val_acc);
  }

  watcher_stop.store(true);
  watcher.join();

  const auto fb_stats = system.feature_buffer().stats();
  std::printf("feature buffer: %llu loads, %llu reuse hits, %llu wait hits\n",
              static_cast<unsigned long long>(fb_stats.loads),
              static_cast<unsigned long long>(fb_stats.reuse_hits),
              static_cast<unsigned long long>(fb_stats.wait_hits));
  return 0;
}
