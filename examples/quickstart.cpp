// Quickstart: train GraphSAGE on a small synthetic dataset with GNNDrive.
//
// Demonstrates the full public API: build a dataset, set up the simulated
// environment (SSD + host memory + page cache), construct the GNNDrive
// pipeline and train a few epochs, printing loss/accuracy.
#include <cstdio>

#include "core/pipeline.hpp"

using namespace gnndrive;

int main() {
  // 1. A small dataset: 4k nodes, 60k edges, 16-dim features, 8 classes.
  DatasetSpec spec = toy_spec(/*feature_dim=*/128);
  Dataset dataset = Dataset::build(spec);
  std::printf("dataset %s: %u nodes, %llu edges, dim %u\n",
              spec.name.c_str(), spec.num_nodes,
              static_cast<unsigned long long>(spec.num_edges),
              spec.feature_dim);

  // 2. Simulated environment: a modest SSD and a 64 MiB host budget.
  SsdConfig ssd_cfg;
  auto ssd = dataset.make_device(ssd_cfg);
  HostMemory host_mem(64ull << 20);
  PageCache page_cache(host_mem, *ssd);

  RunContext ctx;
  ctx.dataset = &dataset;
  ctx.ssd = ssd.get();
  ctx.host_mem = &host_mem;
  ctx.page_cache = &page_cache;

  // 3. GNNDrive with default knobs: 4 samplers, 4 extractors, GraphSAGE.
  GnnDriveConfig cfg;
  cfg.common.model.kind = ModelKind::kSage;
  cfg.common.model.hidden_dim = 32;
  cfg.common.sampler.fanouts = {10, 10, 10};
  cfg.common.batch_seeds = 16;
  GnnDrive system(ctx, cfg);

  // 4. Train.
  for (std::uint64_t epoch = 0; epoch < 5; ++epoch) {
    EpochStats stats = system.run_epoch(epoch);
    const double val_acc = system.evaluate();
    std::printf(
        "epoch %llu: %.3f s, %llu batches, loss %.4f, "
        "train acc %.3f, valid acc %.3f\n",
        static_cast<unsigned long long>(epoch), stats.epoch_seconds,
        static_cast<unsigned long long>(stats.batches), stats.loss,
        stats.train_accuracy, val_acc);
  }

  const auto fb_stats = system.feature_buffer().stats();
  std::printf("feature buffer: %llu loads, %llu reuse hits, %llu wait hits\n",
              static_cast<unsigned long long>(fb_stats.loads),
              static_cast<unsigned long long>(fb_stats.reuse_hits),
              static_cast<unsigned long long>(fb_stats.wait_hits));
  return 0;
}
