// Model-level training behaviour: loss decreases, Adam updates, replica
// utilities, activation/flop accounting.
#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"
#include "sampling/sampler.hpp"

namespace gnndrive {
namespace {

struct ModelFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(16)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  ModelConfig config(ModelKind kind) const {
    ModelConfig mc;
    mc.kind = kind;
    mc.in_dim = dataset->spec().feature_dim;
    mc.hidden_dim = 16;
    mc.num_classes = dataset->spec().num_classes;
    return mc;
  }

  /// Trains `steps` batches directly (no pipeline) and returns first/last
  /// loss.
  std::pair<double, double> train_direct(ModelKind kind, int steps) {
    GnnModel model(config(kind));
    Adam adam;
    DirectTopology topo(*dataset);
    SamplerConfig sc;
    sc.fanouts = {5, 5, 5};
    NeighborSampler sampler(sc);
    auto batches = make_minibatches(dataset->train_nodes(), 32, 1);
    double first = 0;
    double last = 0;
    for (int s = 0; s < steps; ++s) {
      const auto& seeds = batches[s % batches.size()];
      SampledBatch b = sampler.sample(s, seeds, topo, &dataset->labels());
      Tensor x0 = gather_features_direct(*dataset, b);
      const TrainStats ts = model.train_batch(b, x0);
      adam.step(model.params());
      adam.zero_grad(model.params());
      if (s == 0) first = ts.loss;
      last = ts.loss;
    }
    return {first, last};
  }
};
Dataset* ModelFixture::dataset = nullptr;

TEST_F(ModelFixture, SageLossDecreases) {
  auto [first, last] = train_direct(ModelKind::kSage, 100);
  EXPECT_LT(last, first * 0.6);
}

TEST_F(ModelFixture, GcnLossDecreases) {
  auto [first, last] = train_direct(ModelKind::kGcn, 100);
  EXPECT_LT(last, first * 0.7);
}

TEST_F(ModelFixture, GatLossDecreases) {
  auto [first, last] = train_direct(ModelKind::kGat, 100);
  EXPECT_LT(last, first * 0.7);
}

TEST_F(ModelFixture, EvaluationImprovesWithTraining) {
  GnnModel model(config(ModelKind::kSage));
  SamplerConfig sc;
  sc.fanouts = {5, 5, 5};
  const double before = evaluate_accuracy(model, *dataset, sc);
  Adam adam;
  DirectTopology topo(*dataset);
  NeighborSampler sampler(sc);
  auto batches = make_minibatches(dataset->train_nodes(), 32, 1);
  for (int s = 0; s < 60; ++s) {
    SampledBatch b =
        sampler.sample(s, batches[s % batches.size()], topo,
                       &dataset->labels());
    Tensor x0 = gather_features_direct(*dataset, b);
    model.train_batch(b, x0);
    adam.step(model.params());
    adam.zero_grad(model.params());
  }
  const double after = evaluate_accuracy(model, *dataset, sc);
  EXPECT_GT(after, before + 0.2);
}

TEST_F(ModelFixture, ForwardDeterministicGivenParams) {
  GnnModel a(config(ModelKind::kSage));
  GnnModel b(config(ModelKind::kSage));
  b.copy_params_from(a);
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{4, 4, 4}, 3});
  SampledBatch batch = sampler.sample(
      5, {dataset->train_nodes().begin(), dataset->train_nodes().begin() + 8},
      topo, &dataset->labels());
  Tensor x0 = gather_features_direct(*dataset, batch);
  Tensor ya = a.forward(batch, x0);
  Tensor yb = b.forward(batch, x0);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST_F(ModelFixture, AverageGradsEqualizesReplicas) {
  GnnModel a(config(ModelKind::kGcn));
  GnnModel b(config(ModelKind::kGcn));
  b.copy_params_from(a);
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{4, 4, 4}, 3});
  const auto& train = dataset->train_nodes();
  SampledBatch ba = sampler.sample(1, {train.begin(), train.begin() + 8},
                                   topo, &dataset->labels());
  SampledBatch bb = sampler.sample(2, {train.begin() + 8, train.begin() + 16},
                                   topo, &dataset->labels());
  a.train_batch(ba, gather_features_direct(*dataset, ba));
  b.train_batch(bb, gather_features_direct(*dataset, bb));
  GnnModel::average_grads({&a, &b});
  for (std::size_t p = 0; p < a.params().size(); ++p) {
    const Tensor& ga = a.params()[p]->grad;
    const Tensor& gb = b.params()[p]->grad;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      ASSERT_FLOAT_EQ(ga.data()[i], gb.data()[i]);
    }
  }
}

TEST_F(ModelFixture, AccountingEstimatesPositive) {
  GnnModel model(config(ModelKind::kGat));
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{5, 5, 5}, 3});
  SampledBatch b = sampler.sample(
      9, {dataset->train_nodes().begin(), dataset->train_nodes().begin() + 8},
      topo, &dataset->labels());
  EXPECT_GT(model.param_state_bytes(), 0u);
  EXPECT_GT(model.activation_bytes(b), 0u);
  EXPECT_GT(model.flops(b), 0u);
}

TEST_F(ModelFixture, CpuSlowdownOrderedByModelCost) {
  ModelConfig sage = config(ModelKind::kSage);
  ModelConfig gcn = config(ModelKind::kGcn);
  ModelConfig gat = config(ModelKind::kGat);
  EXPECT_LT(sage.cpu_slowdown(), gcn.cpu_slowdown());
  EXPECT_LT(gcn.cpu_slowdown(), gat.cpu_slowdown());
}

TEST(ModelKindNames, RoundTrip) {
  EXPECT_EQ(model_kind_from_name("sage"), ModelKind::kSage);
  EXPECT_EQ(model_kind_from_name("GCN"), ModelKind::kGcn);
  EXPECT_EQ(model_kind_from_name("gat"), ModelKind::kGat);
  EXPECT_STREQ(model_kind_name(ModelKind::kSage), "GraphSAGE");
}

TEST(Adam, StepMovesParamsAgainstGradient) {
  Param p(Tensor::zeros(2, 2));
  p.grad.fill(1.0f);
  Adam adam(AdamConfig{.lr = 0.1f});
  adam.step({&p});
  for (std::size_t i = 0; i < p.value.size(); ++i) {
    EXPECT_LT(p.value.data()[i], 0.0f);
  }
  adam.zero_grad({&p});
  for (std::size_t i = 0; i < p.grad.size(); ++i) {
    EXPECT_FLOAT_EQ(p.grad.data()[i], 0.0f);
  }
}

}  // namespace
}  // namespace gnndrive
