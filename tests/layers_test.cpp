// Numerical gradient checks for every conv layer: parameter gradients AND
// input gradients on small random blocks. This validates the hand-derived
// backward passes the whole training stack rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "gnn/layers.hpp"

namespace gnndrive {
namespace {

/// A small random block with the sampler's invariants: dst nodes are a
/// prefix of src nodes; edges grouped by non-decreasing dst.
LayerBlock random_block(std::uint32_t num_dst, std::uint32_t num_src,
                        std::uint32_t max_fan, std::uint64_t seed,
                        bool leave_isolated_dst = true) {
  LayerBlock block;
  block.num_dst = num_dst;
  block.num_src = num_src;
  Rng rng(seed);
  for (std::uint32_t d = 0; d < num_dst; ++d) {
    if (leave_isolated_dst && d == 1) continue;  // zero-degree destination
    const auto fan = 1 + rng.next_below(max_fan);
    for (std::uint64_t e = 0; e < fan; ++e) {
      block.edge_src.push_back(
          static_cast<std::uint32_t>(rng.next_below(num_src)));
      block.edge_dst.push_back(d);
    }
  }
  return block;
}

/// Scalar objective: sum of 0.5*y^2 over the conv output (gradient == y).
double objective(Conv& conv, const LayerBlock& block, const Tensor& x) {
  Tensor y = conv.forward(block, x);
  double acc = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    acc += 0.5 * static_cast<double>(y.data()[i]) * y.data()[i];
  }
  return acc;
}

/// Runs forward + backward under the objective and checks both the input
/// gradient and every parameter gradient numerically.
void check_gradients(const std::function<std::unique_ptr<Conv>()>& make_conv,
                     const LayerBlock& block, std::uint32_t in_dim,
                     float tol = 2e-2f) {
  auto conv = make_conv();
  Rng rng(99);
  Tensor x = Tensor::uniform(block.num_src, in_dim, rng, 1.0f);

  Tensor y = conv->forward(block, x);
  Tensor gy = y;  // d(sum 0.5 y^2)/dy == y
  Tensor gx = conv->backward(block, gy);

  const float eps = 1e-2f;

  // Input gradient.
  for (std::uint32_t i = 0; i < std::min(block.num_src, 6u); ++i) {
    for (std::uint32_t j = 0; j < std::min(in_dim, 5u); ++j) {
      Tensor xp = x;
      Tensor xm = x;
      xp.at(i, j) += eps;
      xm.at(i, j) -= eps;
      const double numeric =
          (objective(*conv, block, xp) - objective(*conv, block, xm)) /
          (2 * eps);
      EXPECT_NEAR(gx.at(i, j), numeric, tol)
          << "input grad at " << i << "," << j;
    }
  }

  // Parameter gradients: probe a few entries of each parameter.
  std::vector<Param*> params;
  conv->collect_params(params);
  for (std::size_t p = 0; p < params.size(); ++p) {
    Param& param = *params[p];
    const std::size_t n = param.value.size();
    for (std::size_t probe = 0; probe < std::min<std::size_t>(n, 6);
         ++probe) {
      const std::size_t idx = (probe * 131) % n;
      const float saved = param.value.data()[idx];
      param.value.data()[idx] = saved + eps;
      const double fp = objective(*conv, block, x);
      param.value.data()[idx] = saved - eps;
      const double fm = objective(*conv, block, x);
      param.value.data()[idx] = saved;
      const double numeric = (fp - fm) / (2 * eps);
      EXPECT_NEAR(param.grad.data()[idx], numeric, tol)
          << "param " << p << " flat " << idx;
    }
  }
}

TEST(SageConv, GradientsNumerical) {
  const LayerBlock block = random_block(5, 11, 4, 42);
  check_gradients(
      [] {
        Rng rng(7);
        return std::make_unique<SageConv>(6, 4, rng);
      },
      block, 6);
}

TEST(SageConv, ZeroDegreeDstUsesSelfOnly) {
  LayerBlock block;
  block.num_dst = 2;
  block.num_src = 3;
  block.edge_src = {2};
  block.edge_dst = {0};  // dst 1 has no in-edges
  Rng rng(7);
  SageConv conv(3, 2, rng);
  Tensor x = Tensor::uniform(3, 3, rng, 1.0f);
  Tensor y = conv.forward(block, x);
  EXPECT_EQ(y.rows(), 2u);
  // Output for dst 1 must be finite (self path + bias only).
  for (std::uint32_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(std::isfinite(y.at(1, j)));
  }
}

TEST(GcnConv, GradientsNumerical) {
  const LayerBlock block = random_block(6, 10, 3, 43);
  check_gradients(
      [] {
        Rng rng(17);
        return std::make_unique<GcnConv>(5, 3, rng);
      },
      block, 5);
}

TEST(GcnConv, NormalizationIncludesSelf) {
  // Single dst with one in-edge: agg = (x_self + x_src) / 2.
  LayerBlock block;
  block.num_dst = 1;
  block.num_src = 2;
  block.edge_src = {1};
  block.edge_dst = {0};
  Rng rng(3);
  GcnConv conv(2, 2, rng);
  Tensor x(2, 2);
  x.at(0, 0) = 2;
  x.at(1, 0) = 4;
  // With identity-ish probing: compare against manual aggregation through
  // the layer's own weight.
  Tensor y = conv.forward(block, x);
  // agg row = ((2+4)/2, 0) = (3, 0); y = agg * W + b.
  std::vector<Param*> params;
  conv.collect_params(params);
  const Tensor& w = params[0]->value;
  EXPECT_NEAR(y.at(0, 0), 3 * w.at(0, 0), 1e-5);
  EXPECT_NEAR(y.at(0, 1), 3 * w.at(0, 1), 1e-5);
}

TEST(GatConv, GradientsNumericalSingleHead) {
  const LayerBlock block = random_block(4, 9, 3, 44);
  check_gradients(
      [] {
        Rng rng(27);
        return std::make_unique<GatConv>(5, 4, /*heads=*/1, rng);
      },
      block, 5, /*tol=*/3e-2f);
}

TEST(GatConv, GradientsNumericalMultiHead) {
  const LayerBlock block = random_block(4, 8, 3, 45);
  check_gradients(
      [] {
        Rng rng(37);
        return std::make_unique<GatConv>(6, 4, /*heads=*/2, rng);
      },
      block, 6, /*tol=*/3e-2f);
}

TEST(GatConv, AttentionWeightsSumToOne) {
  // Probe via a uniform-feature graph: output of a dst equals z (convex
  // combination of identical z rows).
  LayerBlock block;
  block.num_dst = 1;
  block.num_src = 4;
  block.edge_src = {1, 2, 3};
  block.edge_dst = {0, 0, 0};
  Rng rng(5);
  GatConv conv(3, 4, 2, rng);
  Tensor x(4, 3);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) x.at(i, j) = 0.5f;
  }
  Tensor y = conv.forward(block, x);
  // All z rows identical => y == z row + bias; recompute z manually.
  std::vector<Param*> params;
  conv.collect_params(params);
  const Tensor& w = params[0]->value;
  for (std::uint32_t j = 0; j < 4; ++j) {
    float z = 0;
    for (std::uint32_t k = 0; k < 3; ++k) z += 0.5f * w.at(k, j);
    EXPECT_NEAR(y.at(0, j), z, 1e-4);
  }
}

TEST(GatConv, RejectsUngroupedEdges) {
  LayerBlock block;
  block.num_dst = 2;
  block.num_src = 3;
  block.edge_src = {1, 2};
  block.edge_dst = {1, 0};  // not grouped by dst
  Rng rng(5);
  GatConv conv(3, 3, 1, rng);
  Tensor x(3, 3);
  EXPECT_DEATH(conv.forward(block, x), "grouped by dst");
}

TEST(AllConvs, FlopsPositiveAndScaleWithEdges) {
  Rng rng(1);
  const LayerBlock small = random_block(4, 8, 2, 50);
  const LayerBlock large = random_block(40, 80, 8, 51);
  SageConv sage(8, 8, rng);
  GcnConv gcn(8, 8, rng);
  GatConv gat(8, 8, 2, rng);
  for (Conv* conv : std::initializer_list<Conv*>{&sage, &gcn, &gat}) {
    EXPECT_GT(conv->flops(small), 0u);
    EXPECT_GT(conv->flops(large), conv->flops(small));
  }
}

}  // namespace
}  // namespace gnndrive
