// Host-memory budget, page cache and mmap emulation.
#include <gtest/gtest.h>

#include <thread>

#include "memsim/host_memory.hpp"
#include "memsim/mmap_region.hpp"
#include "memsim/page_cache.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

std::shared_ptr<MemBackend> make_image(std::uint64_t size) {
  auto backend = std::make_shared<MemBackend>(size);
  Rng rng(3);
  for (std::uint64_t i = 0; i < size; ++i) {
    backend->raw()[i] = static_cast<std::uint8_t>(rng());
  }
  return backend;
}

SsdConfig quick_cfg() {
  SsdConfig cfg;
  cfg.read_latency_us = 30.0;
  cfg.channels = 8;
  return cfg;
}

TEST(HostMemory, PinUnpinAccounting) {
  HostMemory mem(1000);
  mem.pin(400, "a");
  EXPECT_EQ(mem.pinned(), 400u);
  EXPECT_EQ(mem.available(), 600u);
  mem.pin(600, "b");
  EXPECT_EQ(mem.available(), 0u);
  mem.unpin(400);
  EXPECT_EQ(mem.pinned(), 600u);
  EXPECT_EQ(mem.peak_pinned(), 1000u);
}

TEST(HostMemory, OverCommitThrowsSimOOM) {
  HostMemory mem(1000);
  mem.pin(800, "a");
  EXPECT_THROW(mem.pin(300, "b"), SimOutOfMemory);
  EXPECT_EQ(mem.pinned(), 800u);  // failed pin left no residue
}

TEST(PinnedBytes, RaiiReleases) {
  HostMemory mem(1000);
  {
    PinnedBytes pin(mem, 500, "scoped");
    EXPECT_EQ(mem.pinned(), 500u);
  }
  EXPECT_EQ(mem.pinned(), 0u);
}

TEST(PinnedBytes, MoveTransfersOwnership) {
  HostMemory mem(1000);
  PinnedBytes a(mem, 300, "a");
  PinnedBytes b = std::move(a);
  EXPECT_EQ(b.bytes(), 300u);
  EXPECT_EQ(a.bytes(), 0u);
  EXPECT_EQ(mem.pinned(), 300u);
}

TEST(PageCache, MissThenHit) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(32 * kPageSize);
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);

  std::uint8_t buf[100];
  cache.read(kPageSize + 10, 100, buf);
  EXPECT_EQ(std::memcmp(buf, image->raw() + kPageSize + 10, 100), 0);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);

  cache.read(kPageSize + 500, 100, buf);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PageCache, CapacityTracksAvailableMemory) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(10 * kPageSize);
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);
  EXPECT_EQ(cache.capacity_pages(), 10u);
  PinnedBytes pin(mem, 4 * kPageSize, "squeeze");
  EXPECT_EQ(cache.capacity_pages(), 6u);
}

TEST(PageCache, LruEviction) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(4 * kPageSize);  // room for 4 pages
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);
  std::uint8_t buf[8];
  for (std::uint64_t p = 0; p < 4; ++p) cache.read(p * kPageSize, 8, buf);
  EXPECT_EQ(cache.resident_pages(), 4u);
  // Touch page 0 so page 1 becomes LRU, then fault page 4.
  cache.read(0, 8, buf);
  cache.read(4 * kPageSize, 8, buf);
  EXPECT_TRUE(cache.contains_page(0));
  EXPECT_FALSE(cache.contains_page(1));
  EXPECT_TRUE(cache.contains_page(4));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PageCache, ShrinkingBudgetEvictsOnNextAccess) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(8 * kPageSize);
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);
  std::uint8_t buf[8];
  for (std::uint64_t p = 0; p < 8; ++p) cache.read(p * kPageSize, 8, buf);
  EXPECT_EQ(cache.resident_pages(), 8u);
  PinnedBytes pin(mem, 6 * kPageSize, "squeeze");
  cache.read(9 * kPageSize, 8, buf);  // triggers eviction to new capacity
  EXPECT_LE(cache.resident_pages(), 2u);
}

TEST(PageCache, TryReadResidentOnlyHitsCached) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(16 * kPageSize);
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);
  std::uint8_t buf[64];
  EXPECT_FALSE(cache.try_read_resident(0, 64, buf));
  cache.prefetch(0, kPageSize);
  EXPECT_TRUE(cache.try_read_resident(0, 64, buf));
  EXPECT_EQ(std::memcmp(buf, image->raw(), 64), 0);
}

TEST(PageCache, NoteResidentSkipsDeviceCharge) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(16 * kPageSize);
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);
  cache.note_resident(2 * kPageSize, kPageSize);
  EXPECT_TRUE(cache.contains_page(2));
  EXPECT_EQ(ssd.stats().reads, 0u);
}

TEST(PageCache, ConcurrentFaultsCoalesce) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(32 * kPageSize);
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      std::uint8_t buf[16];
      cache.read(5 * kPageSize, 16, buf);
      EXPECT_EQ(std::memcmp(buf, image->raw() + 5 * kPageSize, 16), 0);
    });
  }
  for (auto& t : threads) t.join();
  // All 8 threads faulted the same page; only one device read happened.
  EXPECT_EQ(ssd.stats().reads, 1u);
}

TEST(MmapRegion, TypedReads) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(32 * kPageSize);
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);
  // Write known int64 values into the image.
  auto* vals = reinterpret_cast<std::int64_t*>(image->raw() + 2048);
  for (int i = 0; i < 16; ++i) vals[i] = 1000 + i;
  MmapRegion region(cache, 2048, 16 * 8);
  EXPECT_EQ(region.read_at<std::int64_t>(5), 1005);
  std::int64_t out[4];
  region.read_array<std::int64_t>(8, 4, out);
  EXPECT_EQ(out[0], 1008);
  EXPECT_EQ(out[3], 1011);
}

TEST(MmapRegion, WarmMakesResident) {
  auto image = make_image(64 * kPageSize);
  HostMemory mem(32 * kPageSize);
  SsdDevice ssd(quick_cfg(), image);
  PageCache cache(mem, ssd);
  MmapRegion region(cache, 0, 8 * kPageSize);
  region.warm();
  EXPECT_EQ(cache.resident_pages(), 8u);
}

}  // namespace
}  // namespace gnndrive
