// Coalesced extraction fast path (core/extract.hpp): planner properties,
// differential byte-identity between coalesce=on and the per-node baseline
// (training and serving paths), batched feature-buffer APIs, and per-segment
// failure granularity under injected faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "core/extract.hpp"
#include "core/pipeline.hpp"
#include "serve/engine.hpp"

namespace gnndrive {
namespace {

// Covering read length for one row at the worst sector phase.
std::uint32_t covering_bytes(std::uint32_t row_bytes) {
  return row_bytes % kSectorSize == 0
             ? row_bytes
             : static_cast<std::uint32_t>(round_up(row_bytes, kSectorSize)) +
                   kSectorSize;
}

OnDiskLayout fake_layout(std::uint32_t row_bytes, std::uint64_t num_nodes) {
  OnDiskLayout lay;
  lay.features_offset = 1 << 20;  // sector-aligned, like Dataset layouts
  lay.feature_row_bytes = row_bytes;
  lay.features_bytes = num_nodes * row_bytes;
  lay.total_bytes = lay.features_offset + lay.features_bytes;
  return lay;
}

// -- plan_segments: pure planner properties ---------------------------------

void check_plan_invariants(const SegmentPlan& plan,
                           const std::vector<std::uint32_t>& load_idx,
                           const std::vector<NodeId>& nodes,
                           const OnDiskLayout& lay, std::uint32_t row_bytes,
                           std::uint32_t max_bytes, std::uint32_t max_rows) {
  ASSERT_EQ(plan.rows.size(), load_idx.size());
  // Every load position appears exactly once across all segments.
  std::vector<std::uint32_t> seen(load_idx.size(), 0);
  std::size_t covered = 0;
  for (const auto& seg : plan.segments) {
    ASSERT_GE(seg.num_rows, 1u);
    ASSERT_LE(seg.num_rows, max_rows);
    ASSERT_EQ(seg.base % kSectorSize, 0u);
    ASSERT_EQ(seg.len % kSectorSize, 0u);
    ASSERT_LE(seg.len, max_bytes);
    ASSERT_EQ(seg.first_row, covered);
    covered += seg.num_rows;
    std::uint32_t prev_off = 0;
    for (std::uint32_t r = seg.first_row; r < seg.first_row + seg.num_rows;
         ++r) {
      const auto& row = plan.rows[r];
      ASSERT_LT(row.load_pos, load_idx.size());
      ++seen[row.load_pos];
      // The row's bytes lie inside its segment at the node's disk offset.
      const NodeId node = nodes[load_idx[row.load_pos]];
      ASSERT_EQ(seg.base + row.seg_offset, lay.feature_offset_of(node));
      ASSERT_LE(row.seg_offset + row_bytes, seg.len);
      if (r > seg.first_row) {
        ASSERT_GE(row.seg_offset, prev_off);
      }
      prev_off = row.seg_offset;
    }
  }
  ASSERT_EQ(covered, plan.rows.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i], 1u) << "load position " << i;
  }
}

TEST(CoalescePlanner, RandomLayoutsSatisfyInvariants) {
  std::mt19937 rng(20260805);
  for (const std::uint32_t dim : {16u, 33u, 96u, 128u, 200u}) {
    const std::uint32_t row_bytes = dim * 4;
    const OnDiskLayout lay = fake_layout(row_bytes, 100000);
    for (int trial = 0; trial < 20; ++trial) {
      CoalesceConfig co;
      co.max_coalesce_bytes = 1u << (11 + rng() % 5);  // 2K..32K
      co.max_rows_per_read = 1 + rng() % 48;
      co.max_gap_bytes = (rng() % 4) * 2048;
      const std::uint32_t max_bytes =
          staging_row_bytes_for(co, covering_bytes(row_bytes));
      std::vector<NodeId> nodes(1 + rng() % 400);
      for (auto& v : nodes) v = rng() % 100000;
      std::vector<std::uint32_t> load_idx(nodes.size());
      for (std::uint32_t i = 0; i < load_idx.size(); ++i) load_idx[i] = i;
      const SegmentPlan plan =
          plan_segments(load_idx, nodes, lay, row_bytes, max_bytes,
                        co.max_rows_per_read, co.max_gap_bytes);
      check_plan_invariants(plan, load_idx, nodes, lay, row_bytes, max_bytes,
                            co.max_rows_per_read);
    }
  }
}

TEST(CoalescePlanner, SingleRowCapDegeneratesToPerNodeReads) {
  const std::uint32_t row_bytes = 128 * 4;
  const OnDiskLayout lay = fake_layout(row_bytes, 5000);
  std::vector<NodeId> nodes = {10, 11, 12, 13, 999, 1000};
  std::vector<std::uint32_t> load_idx = {0, 1, 2, 3, 4, 5};
  const SegmentPlan plan = plan_segments(load_idx, nodes, lay, row_bytes,
                                         covering_bytes(row_bytes), 1, 0);
  ASSERT_EQ(plan.segments.size(), nodes.size());
  for (const auto& seg : plan.segments) EXPECT_EQ(seg.num_rows, 1u);
}

TEST(CoalescePlanner, AdjacentRowsMergeUpToTheCaps) {
  // 64 consecutive 512 B rows under a 16 KiB / 32-row cap: exactly two
  // 32-row segments.
  const std::uint32_t row_bytes = 512;
  const OnDiskLayout lay = fake_layout(row_bytes, 5000);
  std::vector<NodeId> nodes(64);
  std::vector<std::uint32_t> load_idx(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    nodes[i] = 100 + i;
    load_idx[i] = i;
  }
  const SegmentPlan plan =
      plan_segments(load_idx, nodes, lay, row_bytes, 16 * 1024, 32, 0);
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_EQ(plan.segments[0].num_rows, 32u);
  EXPECT_EQ(plan.segments[1].num_rows, 32u);
  EXPECT_EQ(plan.segments[0].len, 16u * 1024u);
}

TEST(CoalescePlanner, GapToleranceBridgesSmallHolesOnly) {
  const std::uint32_t row_bytes = 512;
  const OnDiskLayout lay = fake_layout(row_bytes, 5000);
  // Rows 0 and 4: a 3-row (1536 B) hole between their covering ranges.
  std::vector<NodeId> nodes = {0, 4};
  std::vector<std::uint32_t> load_idx = {0, 1};
  const SegmentPlan strict =
      plan_segments(load_idx, nodes, lay, row_bytes, 16 * 1024, 32, 0);
  EXPECT_EQ(strict.segments.size(), 2u);
  const SegmentPlan bridged =
      plan_segments(load_idx, nodes, lay, row_bytes, 16 * 1024, 32, 2048);
  ASSERT_EQ(bridged.segments.size(), 1u);
  EXPECT_EQ(bridged.segments[0].num_rows, 2u);
  // The merged read covers both rows including the hole.
  EXPECT_EQ(bridged.segments[0].len, 5u * 512u);
}

TEST(CoalescePlanner, DuplicateOffsetsShareASegment) {
  // The same node listed twice (serve micro-batches after coalescing
  // requests for one hot vertex): both rows land in one segment at the
  // same seg_offset.
  const std::uint32_t row_bytes = 512;
  const OnDiskLayout lay = fake_layout(row_bytes, 5000);
  std::vector<NodeId> nodes = {7, 7, 7};
  std::vector<std::uint32_t> load_idx = {0, 1, 2};
  const SegmentPlan plan =
      plan_segments(load_idx, nodes, lay, row_bytes, 16 * 1024, 32, 0);
  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_EQ(plan.segments[0].num_rows, 3u);
  for (const auto& row : plan.rows) EXPECT_EQ(row.seg_offset, 0u);
}

// -- Differential extraction harness ----------------------------------------

// Stand-alone Algorithm-1 run over an explicit node list: triage ->
// extract_load_set -> resolve_wait_list -> copy out -> release. Mirrors how
// GnnDrive::extract_batch and ServeEngine::extract_batch drive the shared
// core, minus the surrounding pipeline.
struct GatherResult {
  bool ok = false;
  ExtractCounters counters;
  std::vector<float> data;  ///< nodes.size() x dim, valid rows only when ok
};

GatherResult gather(Dataset& ds, const CoalesceConfig& co,
                    const std::vector<NodeId>& nodes,
                    const SsdFaultConfig* faults = nullptr,
                    std::uint32_t max_retries = 3,
                    double request_timeout_ms = 250.0,
                    Telemetry* telemetry = nullptr,
                    const ExtractMetricHooks& hooks = {}) {
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 20.0;
  auto ssd = ds.make_device(ssd_cfg);
  if (faults != nullptr) ssd->set_fault_config(*faults);

  const auto dim = ds.spec().feature_dim;
  const auto row_bytes =
      static_cast<std::uint32_t>(ds.layout().feature_row_bytes);
  FeatureBuffer fb(FeatureBufferConfig{nodes.size() + 64, dim},
                   ds.spec().num_nodes, telemetry);

  const std::uint32_t staging_row_bytes =
      staging_row_bytes_for(co, covering_bytes(row_bytes));
  const std::uint32_t staging_rows = staging_rows_for(co, 64);
  std::vector<std::uint8_t> staging(
      static_cast<std::size_t>(staging_rows) * staging_row_bytes);

  IoRingConfig rc;
  rc.queue_depth = 64;
  rc.direct = true;
  rc.max_transfer_bytes = staging_row_bytes;
  IoRing ring(*ssd, rc, nullptr, telemetry);

  SampledBatch batch;
  batch.batch_id = 1;
  batch.nodes = nodes;
  batch.alias.assign(nodes.size(), kNoSlot);

  std::vector<std::uint32_t> wait_idx, load_idx;
  triage_batch(fb, batch, wait_idx, load_idx);

  ExtractEnv env;
  env.fb = &fb;
  env.layout = &ds.layout();
  env.row_bytes = row_bytes;
  env.ring = &ring;
  env.staging_base = staging.data();
  env.staging_row_bytes = staging_row_bytes;
  env.staging_rows = staging_rows;
  env.telemetry = telemetry;

  ExtractPolicy policy;
  policy.coalesce = co;
  policy.max_retries = max_retries;
  policy.request_timeout = from_us(request_timeout_ms * 1e3);
  policy.poll = from_us(5000.0);

  GatherResult out;
  out.ok = extract_load_set(batch, load_idx, env, policy, hooks, out.counters,
                            nullptr);
  if (out.ok) {
    out.ok = resolve_wait_list(fb, batch, wait_idx, from_us(10e6));
  }
  if (out.ok) {
    out.data.resize(nodes.size() * static_cast<std::size_t>(dim));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_NE(batch.alias[i], kNoSlot) << "node " << nodes[i];
      if (batch.alias[i] == kNoSlot) continue;
      std::memcpy(out.data.data() + i * dim, fb.slot_data(batch.alias[i]),
                  static_cast<std::size_t>(dim) * sizeof(float));
    }
  } else {
    // Failure contract: every to-load node resolved (valid or failed) so
    // cross-batch waiters never hang.
    for (const auto pos : load_idx) {
      const auto e = fb.entry(batch.nodes[pos]);
      EXPECT_TRUE(e.valid || e.failed) << "node " << batch.nodes[pos];
    }
  }

  fb.release(batch.nodes);
  // No slot or staging leaks, success or not: all references returned, the
  // whole standby list intact, no staged-but-lost ring entries.
  for (NodeId v = 0; v < ds.spec().num_nodes; ++v) {
    EXPECT_EQ(fb.entry(v).ref_count, 0u) << "leaked ref on node " << v;
  }
  EXPECT_EQ(fb.standby_size(), fb.num_slots());
  EXPECT_EQ(ring.in_flight(), 0u);
  return out;
}

std::vector<float> ground_truth(Dataset& ds,
                                const std::vector<NodeId>& nodes) {
  const auto dim = ds.spec().feature_dim;
  std::vector<float> truth(nodes.size() * static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ds.read_feature_row(nodes[i], truth.data() + i * dim);
  }
  return truth;
}

TEST(CoalesceDifferential, ByteIdenticalAcrossDimsAndLayouts) {
  // The property the A/B benchmark rests on: coalesce=on gathers exactly
  // the bytes of the per-node baseline, for sector-multiple rows (128),
  // sector-straddling rows (33, 96) and sub-sector rows (16).
  std::mt19937 rng(7);
  for (const std::uint32_t dim : {16u, 33u, 96u, 128u}) {
    Dataset ds = Dataset::build(toy_spec(dim));
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<NodeId> nodes(200);
      for (auto& v : nodes) v = rng() % ds.spec().num_nodes;
      std::sort(nodes.begin(), nodes.end());
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      std::shuffle(nodes.begin(), nodes.end(), rng);

      CoalesceConfig on;
      on.max_coalesce_bytes = 4096u << (rng() % 3);
      on.max_gap_bytes = (rng() % 3) * 4096;
      CoalesceConfig off;
      off.enabled = false;

      const GatherResult a = gather(ds, on, nodes);
      const GatherResult b = gather(ds, off, nodes);
      ASSERT_TRUE(a.ok);
      ASSERT_TRUE(b.ok);
      const std::vector<float> truth = ground_truth(ds, nodes);
      ASSERT_EQ(a.data.size(), truth.size());
      EXPECT_EQ(std::memcmp(a.data.data(), b.data.data(),
                            a.data.size() * sizeof(float)),
                0)
          << "dim " << dim;
      EXPECT_EQ(std::memcmp(a.data.data(), truth.data(),
                            a.data.size() * sizeof(float)),
                0)
          << "dim " << dim;
      // The baseline reads once per node; coalescing must not read more.
      EXPECT_EQ(b.counters.segments, nodes.size());
      EXPECT_LE(a.counters.segments, b.counters.segments);
      EXPECT_EQ(a.counters.rows_loaded, nodes.size());
    }
  }
}

TEST(CoalesceDifferential, DuplicateHeavyBatch) {
  Dataset ds = Dataset::build(toy_spec(33));
  std::mt19937 rng(11);
  // ~5x duplication: first occurrence triages kMustLoad, the rest ride the
  // wait list and resolve after the loader's own extract loop.
  std::vector<NodeId> nodes;
  for (int i = 0; i < 40; ++i) {
    const NodeId v = rng() % ds.spec().num_nodes;
    const int copies = 1 + rng() % 5;
    for (int c = 0; c < copies; ++c) nodes.push_back(v);
  }
  std::shuffle(nodes.begin(), nodes.end(), rng);

  CoalesceConfig on;
  CoalesceConfig off;
  off.enabled = false;
  const GatherResult a = gather(ds, on, nodes);
  const GatherResult b = gather(ds, off, nodes);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  const std::vector<float> truth = ground_truth(ds, nodes);
  EXPECT_EQ(std::memcmp(a.data.data(), truth.data(),
                        truth.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(b.data.data(), truth.data(),
                        truth.size() * sizeof(float)),
            0);
}

TEST(CoalesceDifferential, MetricsHooksCountSegmentsAndRows) {
  Dataset ds = Dataset::build(toy_spec(128));
  Telemetry telemetry;
  MetricsRegistry* reg = telemetry.metrics();
  ASSERT_NE(reg, nullptr);
  ExtractMetricHooks hooks;
  hooks.segments = &reg->counter("io.coalesce.segments");
  hooks.rows = &reg->counter("io.coalesce.rows");
  hooks.rows_per_read = &reg->histogram("io.coalesce.rows_per_read");

  std::vector<NodeId> nodes;
  for (NodeId v = 500; v < 700; ++v) nodes.push_back(v);
  CoalesceConfig on;
  const GatherResult r =
      gather(ds, on, nodes, nullptr, 3, 250.0, &telemetry, hooks);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(hooks.segments->value(), r.counters.segments);
  EXPECT_EQ(hooks.rows->value(), r.counters.rows_loaded);
  EXPECT_EQ(hooks.rows_per_read->count(), r.counters.segments);
  EXPECT_EQ(r.counters.rows_loaded, nodes.size());
  // 200 consecutive 512 B rows under the default caps: 32-row segments.
  EXPECT_LE(r.counters.segments, div_ceil(nodes.size(), 32) + 1);
}

// -- Batched feature-buffer APIs --------------------------------------------

TEST(FeatureBufferBatchedApis, BatchTriageMatchesSequential) {
  const NodeId num_nodes = 512;
  FeatureBuffer batched(FeatureBufferConfig{64, 8}, num_nodes);
  FeatureBuffer sequential(FeatureBufferConfig{64, 8}, num_nodes);

  std::mt19937 rng(3);
  std::vector<NodeId> nodes(48);
  for (auto& v : nodes) v = rng() % 64;  // duplicates likely

  std::vector<FeatureBuffer::CheckResult> got(nodes.size());
  batched.check_and_ref_batch(nodes.data(), nodes.size(), got.data());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto want = sequential.check_and_ref(nodes[i]);
    EXPECT_EQ(static_cast<int>(got[i].status), static_cast<int>(want.status))
        << "position " << i;
    EXPECT_EQ(got[i].slot, want.slot) << "position " << i;
  }
  EXPECT_EQ(batched.stats().batch_lock_acquisitions, 1u);
  EXPECT_EQ(batched.stats().lookups(), sequential.stats().lookups());
}

TEST(FeatureBufferBatchedApis, AllocateSlotsAssignsDistinctSlots) {
  FeatureBuffer fb(FeatureBufferConfig{32, 8}, 256);
  std::vector<NodeId> nodes;
  std::vector<FeatureBuffer::CheckResult> res(16);
  for (NodeId v = 0; v < 16; ++v) nodes.push_back(v);
  fb.check_and_ref_batch(nodes.data(), nodes.size(), res.data());
  for (const auto& r : res) {
    ASSERT_EQ(static_cast<int>(r.status),
              static_cast<int>(FeatureBuffer::CheckStatus::kMustLoad));
  }
  std::vector<SlotId> slots(nodes.size(), kNoSlot);
  fb.allocate_slots(nodes.data(), nodes.size(), slots.data());
  std::vector<SlotId> sorted = slots;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_NE(sorted[i], kNoSlot);
    if (i > 0) {
      ASSERT_NE(sorted[i], sorted[i - 1]) << "slot reused";
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(fb.entry(nodes[i]).slot, slots[i]);
    EXPECT_EQ(fb.reverse(slots[i]), nodes[i]);
  }
  // One lock take per batched call so far (no slot waits needed).
  EXPECT_EQ(fb.stats().batch_lock_acquisitions, 2u);
  EXPECT_EQ(fb.stats().slot_waits, 0u);
  // release() is the third single-lock batch operation.
  for (const auto v : nodes) fb.mark_valid(v);
  fb.release(nodes);
  EXPECT_EQ(fb.stats().batch_lock_acquisitions, 3u);
  EXPECT_EQ(fb.standby_size(), fb.num_slots());
}

// -- Fault injection: per-segment failure granularity ------------------------

TEST(CoalesceFaults, BadRangeFailsOnlyItsSegmentNodes) {
  Dataset ds = Dataset::build(toy_spec(128));
  const auto& lay = ds.layout();

  // Two well-separated runs of nodes; media errors pinned to the second.
  std::vector<NodeId> healthy, doomed, all;
  for (NodeId v = 100; v < 140; ++v) healthy.push_back(v);
  for (NodeId v = 2100; v < 2110; ++v) doomed.push_back(v);
  all = healthy;
  all.insert(all.end(), doomed.begin(), doomed.end());

  SsdFaultConfig faults;
  faults.enabled = true;
  faults.bad_ranges.push_back(
      {lay.feature_offset_of(doomed.front()),
       lay.feature_offset_of(doomed.back()) + lay.feature_row_bytes});

  for (const bool enabled : {true, false}) {
    CoalesceConfig co;
    co.enabled = enabled;
    SCOPED_TRACE(enabled ? "coalesce=on" : "coalesce=off");
    const GatherResult r = gather(ds, co, all, &faults, 2);
    EXPECT_FALSE(r.ok);
    EXPECT_GT(r.counters.io_errors, 0u);
    // Failure granularity is the segment: nodes sharing no bytes with the
    // bad range load fine, the doomed ones are marked failed (and reset at
    // release, which gather() verified).
    const GatherResult healthy_only = gather(ds, co, healthy, &faults);
    EXPECT_TRUE(healthy_only.ok);
  }
}

TEST(CoalesceFaults, TransientEioRecoversThroughSegmentRetries) {
  Dataset ds = Dataset::build(toy_spec(128));
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.eio_probability = 0.15;

  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 300; ++v) nodes.push_back(v * 3);
  const std::vector<float> truth = ground_truth(ds, nodes);

  for (const bool enabled : {true, false}) {
    CoalesceConfig co;
    co.enabled = enabled;
    SCOPED_TRACE(enabled ? "coalesce=on" : "coalesce=off");
    const GatherResult r = gather(ds, co, nodes, &faults, 8);
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.counters.io_errors, 0u);
    EXPECT_GT(r.counters.io_retries, 0u);
    // io_recovered counts segments that eventually succeeded; io_errors
    // counts every failed attempt, so a doubly-unlucky segment recovers
    // once but errors twice.
    EXPECT_GT(r.counters.io_recovered, 0u);
    EXPECT_LE(r.counters.io_recovered, r.counters.io_errors);
    // Retried segments keep their staging row and redeliver exact bytes.
    EXPECT_EQ(std::memcmp(r.data.data(), truth.data(),
                          truth.size() * sizeof(float)),
              0);
  }
}

TEST(CoalesceFaults, StuckSegmentsCancelledByWatchdog) {
  Dataset ds = Dataset::build(toy_spec(128));
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.stuck_probability = 1.0;

  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 32; ++v) nodes.push_back(v);
  CoalesceConfig co;
  const GatherResult r = gather(ds, co, nodes, &faults, 1, 20.0);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.counters.io_timeouts, 0u);
}

// -- IoRing request-length validation ----------------------------------------

TEST(CoalesceIoRing, OversizedAndZeroLengthReadsFailEinval) {
  Dataset ds = Dataset::build(toy_spec(128));
  auto ssd = ds.make_device(SsdConfig{});
  IoRingConfig rc;
  rc.direct = true;
  rc.max_transfer_bytes = 4096;
  IoRing ring(*ssd, rc);
  std::vector<std::uint8_t> buf(8192);

  ASSERT_TRUE(ring.prep_read(0, 8192, buf.data(), 1));  // over the cap
  ASSERT_TRUE(ring.prep_read(0, 0, buf.data(), 2));     // zero length
  ASSERT_TRUE(ring.prep_read(0, 4096, buf.data(), 3));  // at the cap: ok
  ring.submit();
  int einval = 0, ok = 0;
  for (int i = 0; i < 3; ++i) {
    const Cqe cqe = ring.wait_cqe();
    if (cqe.user_data == 3) {
      EXPECT_EQ(cqe.res, 4096);
      ++ok;
    } else {
      EXPECT_EQ(cqe.res, -EINVAL) << "user_data " << cqe.user_data;
      ++einval;
    }
  }
  EXPECT_EQ(einval, 2);
  EXPECT_EQ(ok, 1);
}

// -- End-to-end differential: training pipeline ------------------------------

TEST(CoalesceEndToEnd, TrainingFeaturesExactAndReadsDropWithCoalescing) {
  Dataset ds = Dataset::build(toy_spec(128));

  const auto run = [&](bool enabled, std::uint64_t* reads,
                       std::uint64_t* loads, EpochObs* obs) {
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    auto ssd = ds.make_device(ssd_cfg);
    HostMemory mem(64ull << 20);
    PageCache cache(mem, *ssd);
    RunContext ctx{&ds, ssd.get(), &mem, &cache, nullptr};
    GnnDriveConfig cfg;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5};
    cfg.common.batch_seeds = 64;
    // Bare feature-buffer reserve (one extractor, minimum scale): the
    // buffer holds about half the graph, so every batch performs real
    // capacity-miss loads — a dense to-load set where merging is visible.
    cfg.num_extractors = 1;
    cfg.feature_buffer_scale = 0.05;
    cfg.coalesce.enabled = enabled;
    GnnDrive system(ctx, cfg);
    system.run_epoch(100);  // warm: topology resident in the page cache
    ssd->reset_stats();
    const auto loads_before = system.feature_buffer().stats().loads;
    const EpochStats stats = system.run_epoch(0);
    *reads = ssd->stats().reads;
    *loads = system.feature_buffer().stats().loads - loads_before;
    *obs = stats.obs;
    // Whatever the I/O shape, buffered features must be the disk bytes.
    const auto dim = ds.spec().feature_dim;
    std::vector<float> truth(dim);
    std::uint64_t checked = 0;
    for (NodeId v = 0; v < ds.spec().num_nodes; ++v) {
      const auto e = system.feature_buffer().entry(v);
      if (!e.valid) continue;
      ds.read_feature_row(v, truth.data());
      ASSERT_EQ(std::memcmp(system.feature_buffer().slot_data(e.slot),
                            truth.data(), dim * sizeof(float)),
                0)
          << "node " << v;
      ++checked;
    }
    EXPECT_GT(checked, 100u);
  };

  std::uint64_t reads_on = 0, loads_on = 0, reads_off = 0, loads_off = 0;
  EpochObs obs_on{}, obs_off{};
  run(true, &reads_on, &loads_on, &obs_on);
  run(false, &reads_off, &loads_off, &obs_off);

  // Same training plan both ways (deterministic seeds). Under capacity
  // misses the completion order shifts LRU eviction slightly, so load
  // counts match within a few percent rather than exactly.
  const double load_gap =
      std::abs(static_cast<double>(loads_on) - static_cast<double>(loads_off));
  EXPECT_LT(load_gap, 0.05 * static_cast<double>(loads_off));
  EXPECT_EQ(obs_on.io_rows, loads_on);
  EXPECT_EQ(obs_off.io_rows, loads_off);
  EXPECT_EQ(obs_off.io_segments, loads_off);  // baseline: one read per node
  // Coalescing must actually merge: the acceptance bar is >= 2x fewer SSD
  // read requests for the same trained epoch.
  EXPECT_GT(obs_on.rows_per_read(), 2.0);
  EXPECT_LT(2 * reads_on, reads_off);
}

// -- End-to-end differential: serving ----------------------------------------

TEST(CoalesceEndToEnd, ServePredictionsIdenticalOnVsOff) {
  Dataset ds = Dataset::build(toy_spec(128));

  const auto run = [&](bool enabled, std::vector<std::int32_t>* classes) {
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    auto ssd = ds.make_device(ssd_cfg);
    HostMemory mem(64ull << 20);
    PageCache cache(mem, *ssd);
    Telemetry telemetry;
    FeatureBuffer fb(FeatureBufferConfig{2048, ds.spec().feature_dim},
                     ds.spec().num_nodes, &telemetry);
    ModelConfig mc;
    mc.kind = ModelKind::kSage;
    mc.in_dim = ds.spec().feature_dim;
    mc.hidden_dim = 16;
    mc.num_classes = ds.spec().num_classes;
    mc.num_layers = 2;
    GnnModel model(mc);
    RunContext ctx{&ds, ssd.get(), &mem, &cache, &telemetry};

    ServeConfig cfg;
    cfg.sampler.fanouts = {5, 5};
    cfg.workers = 1;
    cfg.max_batch = 8;
    cfg.max_wait_us = 200.0;
    cfg.slo.deadline_ms = 0.0;
    cfg.coalesce.enabled = enabled;
    ServeEngine engine(ctx, cfg, ServeSubstrate{&fb, &model, nullptr, 0});

    // Backlog submitted before start(): identical micro-batching both runs.
    std::vector<std::future<InferResult>> futures;
    for (NodeId v = 0; v < 64; ++v) futures.push_back(engine.submit(v * 50));
    engine.start();
    classes->clear();
    for (auto& f : futures) {
      const InferResult r = f.get();
      ASSERT_EQ(static_cast<int>(r.status),
                static_cast<int>(InferStatus::kOk));
      classes->push_back(r.predicted_class);
    }
    engine.stop();
    for (NodeId v = 0; v < ds.spec().num_nodes; ++v) {
      ASSERT_EQ(fb.entry(v).ref_count, 0u) << "leaked ref on node " << v;
    }
    EXPECT_EQ(fb.standby_size(), fb.num_slots());
  };

  std::vector<std::int32_t> on, off;
  run(true, &on);
  run(false, &off);
  ASSERT_EQ(on.size(), off.size());
  EXPECT_EQ(on, off);
}

TEST(CoalesceEndToEnd, ServeSurvivesBadRangeWithoutLeaks) {
  Dataset ds = Dataset::build(toy_spec(128));
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 20.0;
  auto ssd = ds.make_device(ssd_cfg);
  const auto& lay = ds.layout();
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.bad_ranges.push_back({lay.feature_offset_of(1000),
                               lay.feature_offset_of(1200)});
  ssd->set_fault_config(faults);

  HostMemory mem(64ull << 20);
  PageCache cache(mem, *ssd);
  Telemetry telemetry;
  FeatureBuffer fb(FeatureBufferConfig{2048, ds.spec().feature_dim},
                   ds.spec().num_nodes, &telemetry);
  ModelConfig mc;
  mc.kind = ModelKind::kSage;
  mc.in_dim = ds.spec().feature_dim;
  mc.hidden_dim = 16;
  mc.num_classes = ds.spec().num_classes;
  mc.num_layers = 2;
  GnnModel model(mc);
  RunContext ctx{&ds, ssd.get(), &mem, &cache, &telemetry};

  ServeConfig cfg;
  cfg.sampler.fanouts = {5, 5};
  cfg.workers = 1;
  cfg.slo.deadline_ms = 0.0;
  cfg.max_retries = 1;
  ServeEngine engine(ctx, cfg, ServeSubstrate{&fb, &model, nullptr, 0});
  engine.start();
  std::vector<std::future<InferResult>> futures;
  for (NodeId v = 990; v < 1010; ++v) futures.push_back(engine.submit(v));
  std::uint64_t failed = 0, served = 0;
  for (auto& f : futures) {
    const InferResult r = f.get();
    r.status == InferStatus::kOk ? ++served : ++failed;
  }
  engine.stop();
  EXPECT_GT(failed, 0u);  // requests whose features sit on bad media
  for (NodeId v = 0; v < ds.spec().num_nodes; ++v) {
    ASSERT_EQ(fb.entry(v).ref_count, 0u) << "leaked ref on node " << v;
  }
  EXPECT_EQ(fb.standby_size(), fb.num_slots());
}

}  // namespace
}  // namespace gnndrive
