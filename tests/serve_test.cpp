// GNNDrive-Serve: admission control, micro-batch coalescing, deadline
// shedding, pin-budget safety and train+serve feature-buffer sharing.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"

namespace gnndrive {
namespace {

// -- Fast tests: standalone serving over a toy dataset ----------------------

struct ServeFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(128)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    std::unique_ptr<Telemetry> telemetry;
    std::unique_ptr<FeatureBuffer> fb;
    std::unique_ptr<GnnModel> model;
    RunContext ctx;
  };
  // Standalone serving substrate: no training pipeline, a host feature
  // buffer and a fresh model (serving is forward-only; random parameters
  // are fine for plumbing tests).
  Env make_env(std::uint64_t fb_slots = 2048) {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(64ull << 20);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.telemetry = std::make_unique<Telemetry>();
    env.fb = std::make_unique<FeatureBuffer>(
        FeatureBufferConfig{fb_slots, dataset->spec().feature_dim},
        dataset->spec().num_nodes, env.telemetry.get());
    ModelConfig mc;
    mc.kind = ModelKind::kSage;
    mc.in_dim = dataset->spec().feature_dim;
    mc.hidden_dim = 16;
    mc.num_classes = dataset->spec().num_classes;
    mc.num_layers = 2;
    env.model = std::make_unique<GnnModel>(mc);
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), env.telemetry.get()};
    return env;
  }

  ServeConfig base_config() {
    ServeConfig cfg;
    cfg.sampler.fanouts = {5, 5};
    cfg.workers = 1;
    cfg.max_batch = 8;
    cfg.max_wait_us = 200.0;
    cfg.slo.deadline_ms = 0.0;  // most tests want deterministic completion
    return cfg;
  }

  static ServeSubstrate substrate(Env& env, std::uint64_t reserved = 0) {
    return ServeSubstrate{env.fb.get(), env.model.get(), nullptr, reserved};
  }

  static void expect_no_leaks(Env& env) {
    for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
      ASSERT_EQ(env.fb->entry(v).ref_count, 0u)
          << "leaked reference on node " << v;
    }
    EXPECT_EQ(env.fb->standby_size(), env.fb->num_slots());
  }
};
Dataset* ServeFixture::dataset = nullptr;

TEST_F(ServeFixture, ServesSingleRequest) {
  auto env = make_env();
  ServeEngine engine(env.ctx, base_config(), substrate(env));
  engine.start();
  auto fut = engine.submit(3);
  const InferResult res = fut.get();
  engine.stop();

  EXPECT_EQ(res.status, InferStatus::kOk);
  EXPECT_GE(res.predicted_class, 0);
  EXPECT_LT(res.predicted_class,
            static_cast<std::int32_t>(dataset->spec().num_classes));
  EXPECT_GE(res.total_us, 0.0);
  EXPECT_GE(res.total_us, res.queue_us);
  EXPECT_EQ(res.coalesced_with, 1u);

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.submitted, 1u);
  EXPECT_EQ(rep.completed, 1u);
  EXPECT_EQ(rep.failed + rep.rejected + rep.shed_deadline, 0u);
  EXPECT_EQ(rep.latency.count, 1u);
  expect_no_leaks(env);
}

TEST_F(ServeFixture, CoalescesBacklogIntoMicroBatches) {
  auto env = make_env();
  ServeConfig cfg = base_config();
  cfg.queue_capacity = 64;
  ServeEngine engine(env.ctx, cfg, substrate(env));

  // Queue a burst before the workers run: every collect() then finds a full
  // window, so batches reach max_batch and the coalesce factor shows it.
  std::vector<std::future<InferResult>> futs;
  for (NodeId v = 0; v < 32; ++v) futs.push_back(engine.submit(v % 16));
  engine.start();
  for (auto& f : futs) EXPECT_EQ(f.get().status, InferStatus::kOk);
  engine.stop();

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.completed, 32u);
  EXPECT_LE(rep.batches, 8u);  // 32 requests / max_batch 8 = 4 ideal
  EXPECT_GE(rep.coalesce_factor, 2.0);
  expect_no_leaks(env);
}

TEST_F(ServeFixture, DuplicateSeedsShareOneBatchAndAgree) {
  auto env = make_env();
  ServeConfig cfg = base_config();
  ServeEngine engine(env.ctx, cfg, substrate(env));
  auto f1 = engine.submit(7);
  auto f2 = engine.submit(7);  // same node, coalesces into the same batch
  engine.start();
  const InferResult r1 = f1.get();
  const InferResult r2 = f2.get();
  engine.stop();
  EXPECT_EQ(r1.status, InferStatus::kOk);
  EXPECT_EQ(r2.status, InferStatus::kOk);
  // Same deduped seed row -> identical prediction.
  EXPECT_EQ(r1.predicted_class, r2.predicted_class);
  expect_no_leaks(env);
}

TEST_F(ServeFixture, AdmissionShedsBeyondQueueCapacity) {
  auto env = make_env();
  ServeConfig cfg = base_config();
  cfg.queue_capacity = 4;
  ServeEngine engine(env.ctx, cfg, substrate(env));

  // Workers not started: the 5th submit onward finds the queue full and is
  // rejected immediately on the submitting thread.
  std::vector<std::future<InferResult>> futs;
  for (NodeId v = 0; v < 10; ++v) futs.push_back(engine.submit(v));
  std::uint32_t rejected = 0;
  for (std::size_t i = 4; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const InferResult res = futs[i].get();
    EXPECT_EQ(res.status, InferStatus::kRejected);
    EXPECT_EQ(res.predicted_class, -1);
    ++rejected;
  }
  EXPECT_EQ(rejected, 6u);

  engine.start();  // drain the admitted backlog
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(futs[i].get().status, InferStatus::kOk);
  }
  engine.stop();

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.submitted, 10u);
  EXPECT_EQ(rep.rejected, 6u);
  EXPECT_EQ(rep.completed, 4u);
  expect_no_leaks(env);
}

TEST_F(ServeFixture, ShedsRequestsWhoseDeadlineExpiredInQueue) {
  auto env = make_env();
  ServeConfig cfg = base_config();
  cfg.slo.deadline_ms = 1.0;
  ServeEngine engine(env.ctx, cfg, substrate(env));

  std::vector<std::future<InferResult>> futs;
  for (NodeId v = 0; v < 6; ++v) futs.push_back(engine.submit(v));
  // Let every deadline expire while the queue sits unserved, then start.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.start();
  for (auto& f : futs) {
    const InferResult res = f.get();
    EXPECT_EQ(res.status, InferStatus::kShedDeadline);
    EXPECT_EQ(res.predicted_class, -1);
  }
  engine.stop();

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.shed_deadline, 6u);
  EXPECT_EQ(rep.completed, 0u);
  // Shed requests never touched the feature buffer.
  EXPECT_EQ(env.fb->stats().lookups(), 0u);
  expect_no_leaks(env);
}

TEST_F(ServeFixture, DisabledDeadlineServesLateRequests) {
  auto env = make_env();
  ServeConfig cfg = base_config();
  cfg.slo.deadline_ms = 0.0;  // explicit: no deadline
  ServeEngine engine(env.ctx, cfg, substrate(env));
  auto fut = engine.submit(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.start();
  EXPECT_EQ(fut.get().status, InferStatus::kOk);
  engine.stop();
}

TEST_F(ServeFixture, OverBudgetBatchFailsCleanlyInsteadOfDeadlocking) {
  // 16 slots total and fanouts (5,5): a full micro-batch of 8 distinct
  // seeds expands far beyond the whole serve share. The engine must fail
  // the batch without ever calling check_and_ref (waiting for 16+ pins
  // that can never exist would deadlock instead).
  auto env = make_env(/*fb_slots=*/16);
  ServeEngine engine(env.ctx, base_config(), substrate(env));
  std::vector<std::future<InferResult>> futs;
  for (NodeId v = 0; v < 8; ++v) futs.push_back(engine.submit(v));
  engine.start();
  for (auto& f : futs) {
    EXPECT_EQ(f.get().status, InferStatus::kFailed);
  }
  engine.stop();
  EXPECT_EQ(env.fb->stats().lookups(), 0u);
  expect_no_leaks(env);
}

TEST_F(ServeFixture, SubmitAfterStopRejects) {
  auto env = make_env();
  ServeEngine engine(env.ctx, base_config(), substrate(env));
  engine.start();
  EXPECT_EQ(engine.submit(2).get().status, InferStatus::kOk);
  engine.stop();
  EXPECT_EQ(engine.submit(3).get().status, InferStatus::kRejected);
}

TEST_F(ServeFixture, RefreshParamsTracksTheSourceModel) {
  auto env = make_env();
  ServeEngine engine(env.ctx, base_config(), substrate(env));
  engine.start();
  const std::int32_t before = engine.submit(9).get().predicted_class;
  // Perturb the source parameters; the replicas only see them after an
  // explicit refresh.
  for (Param* p : env.model->params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] = -p->value.data()[i];
    }
  }
  engine.refresh_params();
  const std::int32_t after = engine.submit(9).get().predicted_class;
  engine.stop();
  (void)before;
  (void)after;  // predictions may or may not change; serving must survive
  expect_no_leaks(env);
}

TEST_F(ServeFixture, PublishesServeMetrics) {
  auto env = make_env();
  ServeEngine engine(env.ctx, base_config(), substrate(env));
  engine.start();
  std::vector<std::future<InferResult>> futs;
  for (NodeId v = 0; v < 12; ++v) futs.push_back(engine.submit(v));
  for (auto& f : futs) f.get();
  engine.stop();

  MetricsRegistry& reg = *env.telemetry->metrics();
  EXPECT_EQ(reg.counter("serve.submitted").value(), 12u);
  EXPECT_EQ(reg.counter("serve.completed").value(), 12u);
  EXPECT_GT(reg.counter("serve.batches").value(), 0u);
  EXPECT_EQ(reg.histogram("serve.latency.us").count(), 12u);
  EXPECT_GT(reg.histogram("serve.extract.us").count(), 0u);
  EXPECT_GT(reg.histogram("serve.infer.us").count(), 0u);
  EXPECT_EQ(reg.gauge("serve.pinned").value(), 0);  // all pins returned
  EXPECT_GT(reg.gauge("serve.pinned").max(), 0);
}

TEST_F(ServeFixture, RecordsServeSpansWhileTracing) {
  auto env = make_env();
  env.telemetry->set_tracing(true);
  ServeEngine engine(env.ctx, base_config(), substrate(env));
  engine.start();
  engine.submit(5).get();
  engine.stop();
  env.telemetry->set_tracing(false);

  bool saw_sample = false, saw_extract = false, saw_infer = false;
  for (const SpanRecord& s : env.telemetry->tracer()->spans()) {
    if (std::string(s.name) == kSpanServeSample) saw_sample = true;
    if (std::string(s.name) == kSpanServeExtract) saw_extract = true;
    if (std::string(s.name) == kSpanServeInfer) saw_infer = true;
  }
  EXPECT_TRUE(saw_sample);
  EXPECT_TRUE(saw_extract);
  EXPECT_TRUE(saw_infer);
}

// -- Soak: train + serve sharing one feature buffer (papers100m-mini) -------

struct ServeSoak : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(mini_spec("papers100m-mini")));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    std::unique_ptr<Telemetry> telemetry;
    RunContext ctx;
  };
  Env make_env() {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(256ull << 20);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.telemetry = std::make_unique<Telemetry>();
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), env.telemetry.get()};
    return env;
  }

  GnnDriveConfig train_config() {
    GnnDriveConfig cfg;
    cfg.common.model.kind = ModelKind::kSage;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {10, 10};
    cfg.common.batch_seeds = 64;
    return cfg;
  }

  static void expect_no_leaks(GnnDrive& system) {
    for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
      ASSERT_EQ(system.feature_buffer().entry(v).ref_count, 0u)
          << "leaked reference on node " << v;
    }
    EXPECT_EQ(system.feature_buffer().standby_size(),
              system.feature_buffer().num_slots());
  }
};
Dataset* ServeSoak::dataset = nullptr;

TEST_F(ServeSoak, ConcurrentTrainingAndServingShareTheFeatureBuffer) {
  auto env = make_env();
  GnnDrive system(env.ctx, train_config());

  ServeConfig scfg;
  scfg.workers = 2;
  scfg.queue_capacity = 512;
  scfg.max_batch = 8;
  scfg.max_wait_us = 300.0;
  scfg.slo.deadline_ms = 0.0;  // deterministic: nothing shed
  ServeEngine engine(env.ctx, scfg, system);
  EXPECT_GT(engine.pin_budget(), 0u);
  engine.start();

  // Training runs a full epoch while requests arrive; both sides contend
  // for the same feature buffer, staging budget and SSD.
  EpochStats stats;
  std::thread trainer([&] { stats = system.run_epoch(0); });

  std::vector<std::future<InferResult>> futs;
  const NodeId n = dataset->spec().num_nodes;
  for (std::uint32_t i = 0; i < 300; ++i) {
    futs.push_back(engine.submit((i * 7919u) % n));
    if (i % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  trainer.join();
  std::uint32_t ok = 0;
  for (auto& f : futs) ok += f.get().status == InferStatus::kOk ? 1 : 0;
  engine.stop();

  // Training was not poisoned by serving...
  EXPECT_TRUE(stats.result.ok());
  EXPECT_EQ(stats.result.trained_batches, stats.batches);
  // ...and serving completed everything it admitted.
  const ServeReport rep = engine.report();
  EXPECT_EQ(ok + rep.rejected, 300u);
  EXPECT_EQ(rep.completed, ok);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_GT(rep.completed, 0u);
  // Shared-buffer payoff: serving found some features already resident.
  EXPECT_GT(rep.fb_hit_rate, 0.0);

  expect_no_leaks(system);
}

TEST_F(ServeSoak, ServingAfterTrainingReusesResidentFeatures) {
  auto env = make_env();
  GnnDrive system(env.ctx, train_config());
  system.run_epoch(0);  // warm the feature buffer

  ServeConfig scfg;
  scfg.workers = 2;
  scfg.max_batch = 8;
  scfg.slo.deadline_ms = 0.0;
  ServeEngine engine(env.ctx, scfg, system);
  engine.start();
  std::vector<std::future<InferResult>> futs;
  const NodeId n = dataset->spec().num_nodes;
  for (std::uint32_t i = 0; i < 128; ++i) {
    futs.push_back(engine.submit((i * 131u) % n));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, InferStatus::kOk);
  engine.stop();

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.completed, 128u);
  // A trained-on buffer serves many lookups without touching the SSD.
  EXPECT_GT(rep.fb_hit_rate, 0.2);
  expect_no_leaks(system);
}

}  // namespace
}  // namespace gnndrive
