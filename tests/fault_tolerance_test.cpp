// Fault-injection soak tests: the full GNNDrive pipeline against a
// misbehaving storage layer. The paper's experiments assume a healthy SSD;
// this suite asserts the robustness layer on top — injected EIOs and latency
// spikes are retried and recovered, stuck requests are detected by the stage
// watchdog, unrecoverable batches degrade gracefully with structured
// accounting, and no feature-buffer slot or reference ever leaks.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/engine.hpp"

namespace gnndrive {
namespace {

// papers100m at mini scale (the dataset the paper leads with): large enough
// that an epoch issues tens of thousands of feature reads — a real soak for
// 1% fault rates — while still building in seconds.
struct FaultSoak : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(mini_spec("papers100m-mini")));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    std::unique_ptr<Telemetry> telemetry;
    RunContext ctx;
  };
  Env make_env() {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(256ull << 20);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.telemetry = std::make_unique<Telemetry>();
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), env.telemetry.get()};
    return env;
  }

  GnnDriveConfig base_config() {
    GnnDriveConfig cfg;
    cfg.common.model.kind = ModelKind::kSage;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {10, 10};
    cfg.common.batch_seeds = 64;
    return cfg;
  }

  // Post-epoch resource invariants: every reference released, every slot
  // back on the standby list — regardless of how many batches failed.
  static void expect_no_leaks(GnnDrive& system) {
    for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
      ASSERT_EQ(system.feature_buffer().entry(v).ref_count, 0u)
          << "leaked reference on node " << v;
    }
    EXPECT_EQ(system.feature_buffer().standby_size(),
              system.feature_buffer().num_slots());
  }

  // Every valid mapping-table entry holds exactly the on-disk feature row:
  // faults may fail loads, but they must never corrupt a successful one.
  static void expect_byte_exact_features(GnnDrive& system) {
    const auto dim = dataset->spec().feature_dim;
    std::vector<float> truth(dim);
    std::uint64_t checked = 0;
    for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
      const auto e = system.feature_buffer().entry(v);
      if (!e.valid) continue;
      dataset->read_feature_row(v, truth.data());
      const float* got = system.feature_buffer().slot_data(e.slot);
      ASSERT_EQ(std::memcmp(got, truth.data(), dim * 4), 0)
          << "corrupt features for node " << v;
      ++checked;
    }
    EXPECT_GT(checked, 1000u);
  }
};
Dataset* FaultSoak::dataset = nullptr;

TEST_F(FaultSoak, CleanEpochReportsZeroFaults) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  const EpochStats stats = system.run_epoch(0);
  EXPECT_TRUE(stats.result.ok());
  EXPECT_EQ(stats.result.failed_batches, 0u);
  EXPECT_EQ(stats.result.trained_batches, stats.batches);
  EXPECT_EQ(stats.result.io_errors, 0u);
  EXPECT_EQ(stats.result.io_retries, 0u);
  EXPECT_EQ(stats.result.io_timeouts, 0u);
  EXPECT_EQ(env.telemetry->counter(FaultCounter::kIoErrors), 0u);
  EXPECT_EQ(env.telemetry->counter(FaultCounter::kFailedBatches), 0u);
  expect_no_leaks(system);
}

TEST_F(FaultSoak, EpochSurvivesEioAndLatencySpikes) {
  auto env = make_env();
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.eio_probability = 0.01;   // the ISSUE's 1% soak rate
  faults.spike_probability = 0.02;
  faults.spike_multiplier = 5.0;
  env.ssd->set_fault_config(faults);

  GnnDrive system(env.ctx, base_config());
  const EpochStats stats = system.run_epoch(0);

  // The epoch completes with every batch accounted for.
  EXPECT_GT(stats.batches, 10u);
  EXPECT_EQ(stats.result.trained_batches + stats.result.failed_batches,
            stats.batches);

  // At 1% over tens of thousands of reads, errors certainly occurred — and
  // the retry layer recovered them (4 consecutive EIOs at p=0.01 is ~1e-8,
  // so batch failures are overwhelmingly unlikely).
  EXPECT_GT(stats.result.io_errors, 0u);
  EXPECT_GT(stats.result.io_retries, 0u);
  EXPECT_GT(stats.result.io_recovered, 0u);
  EXPECT_GE(stats.result.io_retries, stats.result.io_recovered);
  EXPECT_EQ(stats.result.failed_batches, 0u);
  EXPECT_TRUE(stats.result.ok());
  EXPECT_GT(env.ssd->stats().injected_eio, 0u);
  EXPECT_GT(env.ssd->stats().injected_spikes, 0u);

  // Retries surface in telemetry too (the page cache's own retries for
  // sampling I/O land on top of the extract-stage count).
  EXPECT_GE(env.telemetry->counter(FaultCounter::kIoRetries),
            stats.result.io_retries);
  EXPECT_GE(env.telemetry->counter(FaultCounter::kIoErrors),
            stats.result.io_errors);

  expect_byte_exact_features(system);
  expect_no_leaks(system);
}

TEST_F(FaultSoak, WatchdogCancelsStuckRequestsWithinTimeout) {
  auto env = make_env();
  GnnDriveConfig cfg = base_config();
  cfg.fault.request_timeout_ms = 25.0;  // detect fast, keep the test short

  GnnDrive system(env.ctx, cfg);
  // Warm the page cache with a clean epoch first: sampling faults topology
  // pages through synchronous reads, which recover from a stuck request only
  // via the device's slow self-cancel backstop — the watchdog under test
  // guards the extract stage's asynchronous reads.
  system.run_epoch(0);

  SsdFaultConfig faults;
  faults.enabled = true;
  faults.stuck_probability = 0.002;
  env.ssd->set_fault_config(faults);

  const TimePoint t0 = Clock::now();
  const EpochStats stats = system.run_epoch(1);
  const double elapsed = to_seconds(Clock::now() - t0);

  // The pipeline never deadlocked: each stuck request was cancelled within
  // the request timeout and retried. A generous wall-clock bound proves the
  // watchdog fired (an uncancelled stuck request would hang forever).
  EXPECT_EQ(stats.result.trained_batches + stats.result.failed_batches,
            stats.batches);
  EXPECT_GT(stats.result.io_timeouts, 0u);
  EXPECT_GT(env.ssd->stats().injected_stuck, 0u);
  EXPECT_GT(env.ssd->stats().cancelled, 0u);
  EXPECT_GE(env.telemetry->counter(FaultCounter::kIoTimeouts), 1u);
  EXPECT_LT(elapsed, 120.0);

  expect_byte_exact_features(system);
  expect_no_leaks(system);

  // Nothing may be left pending on the device, or its destructor would
  // block: every stuck request was cancelled by the watchdog.
  env.ssd->drain();
}

TEST_F(FaultSoak, BadSectorRangeFailsOnlyAffectedBatches) {
  auto env = make_env();
  // A handful of permanently-bad feature rows: batches that sample one of
  // these nodes exhaust their retries and fail; the rest train normally.
  // Mid-range node ids: low ids are the synthetic graph's hubs, and a bad
  // hub row would fail every single batch.
  const auto& lay = dataset->layout();
  const std::uint64_t bad_row = dataset->spec().num_nodes / 2;
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.bad_ranges.push_back(
      {lay.features_offset + bad_row * lay.feature_row_bytes,
       lay.features_offset + (bad_row + 8) * lay.feature_row_bytes});
  env.ssd->set_fault_config(faults);

  GnnDriveConfig cfg = base_config();
  cfg.fault.backoff_initial_us = 10.0;  // fail fast; the range never heals
  GnnDrive system(env.ctx, cfg);
  const EpochStats stats = system.run_epoch(0);

  // Graceful degradation: failures are contained and accounted, the epoch
  // still completes and trains the unaffected majority.
  EXPECT_EQ(stats.result.trained_batches + stats.result.failed_batches,
            stats.batches);
  EXPECT_GT(stats.result.failed_batches, 0u);
  EXPECT_FALSE(stats.result.ok());
  EXPECT_GT(stats.result.trained_batches, 0u);
  EXPECT_GT(stats.result.io_errors, 0u);
  EXPECT_EQ(env.telemetry->counter(FaultCounter::kFailedBatches),
            stats.result.failed_batches);

  expect_byte_exact_features(system);
  expect_no_leaks(system);
}

TEST_F(FaultSoak, ServingUnderBadSectorsDegradesWithoutPoisoningTraining) {
  auto env = make_env();
  // The same permanently-bad feature rows as BadSectorRangeFailsOnlyAffected-
  // Batches, but now an inference engine shares the feature buffer with a
  // concurrently-training epoch. Requests that need a bad row must fail
  // cleanly after exhausting serve-side retries; clean requests and the
  // training run itself must be unaffected, and no reference may leak on
  // either path.
  const auto& lay = dataset->layout();
  const std::uint64_t bad_row = dataset->spec().num_nodes / 2;
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.bad_ranges.push_back(
      {lay.features_offset + bad_row * lay.feature_row_bytes,
       lay.features_offset + (bad_row + 8) * lay.feature_row_bytes});
  env.ssd->set_fault_config(faults);

  GnnDriveConfig cfg = base_config();
  cfg.fault.backoff_initial_us = 10.0;  // the range never heals; fail fast
  GnnDrive system(env.ctx, cfg);

  ServeConfig scfg;
  scfg.workers = 2;
  scfg.queue_capacity = 256;
  scfg.max_batch = 4;
  scfg.slo.deadline_ms = 0.0;
  scfg.retry_delay_us = 10.0;
  ServeEngine engine(env.ctx, scfg, system);
  engine.start();

  EpochStats stats;
  std::thread trainer([&] { stats = system.run_epoch(0); });

  // Clean requests first (low-id seeds, far from the bad rows), then
  // requests aimed straight at the bad range.
  std::vector<std::future<InferResult>> good, bad;
  const NodeId n = dataset->spec().num_nodes;
  for (std::uint32_t i = 0; i < 64; ++i) {
    good.push_back(engine.submit((i * 7919u) % (n / 4)));
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    bad.push_back(engine.submit(static_cast<NodeId>(bad_row + i)));
  }
  trainer.join();
  std::uint32_t good_ok = 0;
  for (auto& f : good) good_ok += f.get().status == InferStatus::kOk ? 1 : 0;
  for (auto& f : bad) EXPECT_EQ(f.get().status, InferStatus::kFailed);
  engine.stop();

  // Serving degraded exactly where the disk is bad: the bad-seed batches
  // exhausted their retries (micro-batch failure granularity means a clean
  // request coalesced next to a bad row fails with it — hence the margin).
  const ServeReport rep = engine.report();
  EXPECT_GE(rep.failed, 8u);
  EXPECT_GT(rep.io_errors, 0u);
  EXPECT_GT(rep.io_retries, 0u);
  EXPECT_GT(good_ok, 48u);

  // Training was not poisoned by the failing serve batches: the epoch
  // completed with every batch accounted for and the unaffected majority
  // trained (training samples the bad rows too, so some of its own batches
  // may fail — that is BadSectorRange's territory, not serving's fault).
  EXPECT_EQ(stats.result.trained_batches + stats.result.failed_batches,
            stats.batches);
  EXPECT_GT(stats.result.trained_batches, 0u);

  expect_byte_exact_features(system);
  expect_no_leaks(system);
}

TEST_F(FaultSoak, FailFastAbortsTheEpoch) {
  auto env = make_env();
  const auto& lay = dataset->layout();
  SsdFaultConfig faults;
  faults.enabled = true;
  // Every feature read fails: without fail_fast this would degrade to an
  // all-failed epoch; with it, the first failed batch aborts.
  faults.bad_ranges.push_back(
      {lay.features_offset, lay.features_offset + lay.features_bytes});
  env.ssd->set_fault_config(faults);

  GnnDriveConfig cfg = base_config();
  cfg.fault.fail_fast = true;
  cfg.fault.backoff_initial_us = 10.0;
  GnnDrive system(env.ctx, cfg);
  EXPECT_THROW(system.run_epoch(0), std::runtime_error);
}

}  // namespace
}  // namespace gnndrive
