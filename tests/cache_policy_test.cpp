// Hotness-aware feature caching (src/cache, ISSUE 7): construction-time
// validation, pinned hot-partition semantics, pre-sampling determinism, the
// Belady oracle comparator, the cold_slots >= Ne x Mb deadlock invariant
// (train-only and train+serve) and the byte-identical-training differential
// against the LRU baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <future>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "cache/belady.hpp"
#include "cache/policy.hpp"
#include "core/pipeline.hpp"
#include "serve/engine.hpp"

namespace gnndrive {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "gnndrive-" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// -- Construction-time validation -------------------------------------------

TEST(CacheValidation, FeatureBufferRejectsZeroSlots) {
  EXPECT_THROW(FeatureBuffer(FeatureBufferConfig{0, 4}, 10),
               std::invalid_argument);
}

TEST(CacheValidation, FeatureBufferRejectsZeroRowFloats) {
  EXPECT_THROW(FeatureBuffer(FeatureBufferConfig{8, 0}, 10),
               std::invalid_argument);
}

TEST(CacheValidation, HotFractionMustLieInUnitInterval) {
  CachePolicyConfig cfg;
  cfg.policy = CachePolicy::kHotness;
  cfg.hot_fraction = -0.01;
  EXPECT_THROW(validate_cache_config(cfg), std::invalid_argument);
  cfg.hot_fraction = 1.01;
  EXPECT_THROW(validate_cache_config(cfg), std::invalid_argument);
  cfg.hot_fraction = 0.0;
  EXPECT_NO_THROW(validate_cache_config(cfg));
  cfg.hot_fraction = 1.0;
  EXPECT_NO_THROW(validate_cache_config(cfg));
}

TEST(CacheValidation, HotnessNeedsProfilingBatches) {
  CachePolicyConfig cfg;
  cfg.policy = CachePolicy::kHotness;
  cfg.presample_batches = 0;
  EXPECT_THROW(validate_cache_config(cfg), std::invalid_argument);
  cfg.policy = CachePolicy::kLru;  // LRU never profiles: 0 is fine
  EXPECT_NO_THROW(validate_cache_config(cfg));
}

TEST(CacheValidation, PinHotRejectsBadHotSets) {
  FeatureBuffer fb(FeatureBufferConfig{8, 4}, 100);
  // The hot set may never consume every slot (cold region would be empty).
  std::vector<NodeId> all(8);
  for (NodeId v = 0; v < 8; ++v) all[v] = v;
  EXPECT_THROW(fb.pin_hot(all), std::invalid_argument);
  EXPECT_THROW(fb.pin_hot({1, 2, 1}), std::invalid_argument);  // duplicate
  EXPECT_THROW(fb.pin_hot({200}), std::invalid_argument);  // out of range
  // A failed pin leaves the buffer fully evictable...
  EXPECT_EQ(fb.standby_size(), 8u);
  EXPECT_EQ(fb.hot_slots(), 0u);
  // ...and a successful pin is one-shot.
  fb.pin_hot({1, 2});
  EXPECT_THROW(fb.pin_hot({3}), std::logic_error);
}

// -- Hot-partition mapping-table semantics ----------------------------------

TEST(HotPartition, PinnedNodesResolveWithoutReferences) {
  FeatureBuffer fb(FeatureBufferConfig{8, 4}, 100);
  const std::vector<NodeId> hot = {10, 20, 30};
  const std::vector<SlotId> slots = fb.pin_hot(hot);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(fb.hot_slots(), 3u);
  EXPECT_EQ(fb.cold_slots(), 5u);
  EXPECT_EQ(fb.standby_size(), 5u);  // pinned slots left standby for good

  // Unsealed: the lock-free resolver refuses, the locked path demands a
  // loaded row.
  EXPECT_EQ(fb.hot_slot(10), kNoSlot);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    float* row = fb.slot_data(slots[i]);
    for (int k = 0; k < 4; ++k) row[k] = static_cast<float>(hot[i] + k);
    fb.mark_valid(hot[i]);
  }
  fb.seal_hot();
  ASSERT_TRUE(fb.hot_sealed());
  EXPECT_EQ(fb.hot_slot(10), slots[0]);
  EXPECT_EQ(fb.hot_slot(11), kNoSlot);  // cold node

  // check_and_ref on a pinned node: ready, NO reference taken.
  const auto r = fb.check_and_ref(20);
  EXPECT_EQ(r.status, FeatureBuffer::CheckStatus::kReady);
  EXPECT_EQ(r.slot, slots[1]);
  EXPECT_EQ(fb.entry(20).ref_count, 0u);
  // Symmetric release is a no-op — the slot never rejoins standby.
  fb.release_one(20);
  EXPECT_EQ(fb.standby_size(), 5u);
  EXPECT_EQ(fb.entry(20).ref_count, 0u);

  // Cold nodes keep the normal lifecycle alongside the partition.
  const auto c = fb.check_and_ref(50);
  EXPECT_EQ(c.status, FeatureBuffer::CheckStatus::kMustLoad);
  const SlotId cs = fb.allocate_slot(50);
  EXPECT_EQ(fb.standby_size(), 4u);
  fb.mark_valid(50);
  fb.release_one(50);
  EXPECT_EQ(fb.standby_size(), 5u);
  // Cold allocations can never claim a pinned slot.
  EXPECT_TRUE(std::find(slots.begin(), slots.end(), cs) == slots.end());

  // Stats: the hot hit was counted once, attributed to the default (train)
  // client; a serve-attributed lookup lands in the serve bucket.
  EXPECT_EQ(fb.stats().hot_hits, 1u);
  EXPECT_EQ(fb.stats(FbClient::kTrain).hot_hits, 1u);
  EXPECT_EQ(fb.stats(FbClient::kServe).hot_hits, 0u);
  fb.check_and_ref(30, FbClient::kServe);
  EXPECT_EQ(fb.stats(FbClient::kServe).hot_hits, 1u);
  EXPECT_EQ(fb.stats().hot_hits, 2u);
  fb.record_hot_hits(3, FbClient::kServe);
  EXPECT_EQ(fb.stats(FbClient::kServe).hot_hits, 4u);
  EXPECT_EQ(fb.stats().hot_hits, 5u);
  EXPECT_EQ(fb.stats(FbClient::kTrain).loads, 1u);  // node 50
}

// -- Pipeline-level fixture --------------------------------------------------

struct CachePolicyFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(64)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    RunContext ctx;
  };
  Env make_env() {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(64ull << 20);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), nullptr};
    return env;
  }

  GnnDriveConfig base_config(CachePolicy policy = CachePolicy::kLru) {
    GnnDriveConfig cfg;
    cfg.common.model.kind = ModelKind::kSage;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5};
    cfg.common.batch_seeds = 16;
    cfg.cache.policy = policy;
    cfg.cache.presample_batches = 8;
    return cfg;
  }
};
Dataset* CachePolicyFixture::dataset = nullptr;

// -- cold_slots >= Ne x Mb invariant ----------------------------------------

TEST_F(CachePolicyFixture, TrainOnlyRejectsHotPartitionEatingTheReserve) {
  auto env = make_env();
  GnnDriveConfig cfg = base_config(CachePolicy::kHotness);
  // hot = floor(1.0 x slots) leaves zero cold slots < Ne x Mb: the pipeline
  // must reject at construction, not deadlock mid-epoch.
  cfg.cache.hot_fraction = 1.0;
  EXPECT_THROW(GnnDrive(env.ctx, cfg), std::invalid_argument);
  // A barely-too-greedy fraction also fails (default sizing has a
  // reserve/total ratio of Ne / (Ne + train_queue_cap) = 1/2).
  cfg.cache.hot_fraction = 0.75;
  EXPECT_THROW(GnnDrive(env.ctx, cfg), std::invalid_argument);
  // The boundary fraction (cold == reserve exactly) is legal.
  cfg.cache.hot_fraction = 0.5;
  EXPECT_NO_THROW(GnnDrive(env.ctx, cfg));
}

TEST_F(CachePolicyFixture, TrainOnlyHotnessEpochIsDeadlockFreeAtBoundary) {
  auto env = make_env();
  GnnDriveConfig cfg = base_config(CachePolicy::kHotness);
  cfg.cache.hot_fraction = 0.5;  // cold region == the Ne x Mb reserve
  GnnDrive system(env.ctx, cfg);
  const EpochStats stats = system.run_epoch(0);
  EXPECT_TRUE(stats.result.ok());
  EXPECT_GT(stats.batches, 0u);
  FeatureBuffer& fb = system.feature_buffer();
  const std::uint64_t reserve =
      static_cast<std::uint64_t>(system.effective_extractors()) *
      system.max_batch_nodes();
  EXPECT_GE(fb.cold_slots(), reserve);
  // After the epoch every cold slot is back on standby; pinned slots never
  // were.
  EXPECT_EQ(fb.standby_size(), fb.cold_slots());
  EXPECT_GT(stats.obs.fb_hot_hits, 0u);
}

TEST_F(CachePolicyFixture, ServePinBudgetComesFromTheColdRegion) {
  auto env = make_env();
  GnnDriveConfig cfg = base_config(CachePolicy::kHotness);
  cfg.cache.hot_fraction = 0.25;
  GnnDrive system(env.ctx, cfg);

  ServeConfig scfg;
  scfg.workers = 1;
  scfg.max_batch = 4;
  scfg.max_wait_us = 100.0;
  scfg.slo.deadline_ms = 0.0;
  ServeEngine engine(env.ctx, scfg, system);

  // Attaching serving materialized the hot partition, and the pin budget is
  // carved from the cold region net of training's Ne x Mb reserve.
  FeatureBuffer& fb = system.feature_buffer();
  EXPECT_GT(fb.hot_slots(), 0u);
  const std::uint64_t reserve =
      static_cast<std::uint64_t>(system.effective_extractors()) *
      system.max_batch_nodes();
  ASSERT_GT(fb.cold_slots(), reserve);
  EXPECT_EQ(engine.pin_budget(), fb.cold_slots() - reserve);

  // Serving hot nodes resolves through the pinned region: serve-attributed
  // hot hits move, and nothing leaks references.
  engine.start();
  ASSERT_FALSE(system.hot_nodes().empty());
  std::vector<std::future<InferResult>> futs;
  for (std::size_t i = 0; i < 16 && i < system.hot_nodes().size(); ++i) {
    futs.push_back(engine.submit(system.hot_nodes()[i]));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, InferStatus::kOk);
  engine.stop();
  EXPECT_GT(fb.stats(FbClient::kServe).hot_hits, 0u);
  for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
    ASSERT_EQ(fb.entry(v).ref_count, 0u) << "leaked reference on node " << v;
  }
  EXPECT_EQ(fb.standby_size(), fb.cold_slots());
}

TEST(HotPartitionServe, RejectsWhenColdRegionCannotCoverTheReserve) {
  // Standalone substrate: a buffer whose cold region exactly equals the
  // training reserve leaves serving zero headroom — construction must fail
  // loudly instead of deadlocking the first batch.
  Dataset ds = Dataset::build(toy_spec(16));
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 20.0;
  auto ssd = ds.make_device(ssd_cfg);
  HostMemory mem(32ull << 20);
  PageCache cache(mem, *ssd);
  RunContext ctx{&ds, ssd.get(), &mem, &cache, nullptr};

  FeatureBuffer fb(FeatureBufferConfig{256, ds.spec().feature_dim},
                   ds.spec().num_nodes);
  std::vector<NodeId> hot(64);
  for (NodeId v = 0; v < 64; ++v) hot[v] = v;
  const auto slots = fb.pin_hot(hot);
  std::vector<float> row(ds.spec().feature_dim);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    ds.read_feature_row(hot[i], row.data());
    std::copy(row.begin(), row.end(), fb.slot_data(slots[i]));
    fb.mark_valid(hot[i]);
  }
  fb.seal_hot();
  ASSERT_EQ(fb.cold_slots(), 192u);

  ModelConfig mc;
  mc.kind = ModelKind::kSage;
  mc.in_dim = ds.spec().feature_dim;
  mc.hidden_dim = 8;
  mc.num_classes = ds.spec().num_classes;
  mc.num_layers = 2;
  GnnModel model(mc);
  ServeConfig scfg;
  scfg.sampler.fanouts = {3, 3};
  scfg.workers = 1;

  ServeSubstrate tight{&fb, &model, nullptr, /*reserved_slots=*/192};
  EXPECT_THROW(ServeEngine(ctx, scfg, tight), std::invalid_argument);

  ServeSubstrate roomy{&fb, &model, nullptr, /*reserved_slots=*/128};
  ServeEngine engine(ctx, scfg, roomy);
  EXPECT_EQ(engine.pin_budget(), 64u);
}

// -- Pre-sampling ------------------------------------------------------------

TEST_F(CachePolicyFixture, PresampleIsDeterministicAndCoversTraffic) {
  auto env = make_env();
  SamplerConfig scfg;
  scfg.fanouts = {5, 5};
  const PresampleResult a = presample_hot_set(
      *dataset, *env.cache, scfg, /*batch_seeds=*/16, /*run_seed=*/99,
      /*num_batches=*/8, /*max_hot=*/200);
  const PresampleResult b = presample_hot_set(
      *dataset, *env.cache, scfg, 16, 99, 8, 200);
  EXPECT_EQ(a.hot_nodes, b.hot_nodes);
  EXPECT_EQ(a.batches_profiled, 8u);
  EXPECT_EQ(a.hot_nodes.size(), 200u);
  EXPECT_GT(a.accesses, 0u);
  EXPECT_GT(a.coverage(), 0.0);
  EXPECT_LE(a.coverage(), 1.0);
  // No duplicates (pin_hot would reject them).
  std::unordered_set<NodeId> uniq(a.hot_nodes.begin(), a.hot_nodes.end());
  EXPECT_EQ(uniq.size(), a.hot_nodes.size());
}

TEST_F(CachePolicyFixture, PresampleLeavesTrainingRngUntouched) {
  // Two identical LRU runs, one with a profiling pass wedged between
  // construction and the epoch: identical per-batch losses prove the
  // pre-sampler's RNG streams are disjoint from training's. One sampler and
  // one extractor keep training order deterministic (as in ckpt_test) so
  // trajectories are comparable double-for-double.
  auto env1 = make_env();
  GnnDriveConfig cfg = base_config(CachePolicy::kLru);
  cfg.record_batch_losses = true;
  cfg.num_samplers = 1;
  cfg.num_extractors = 1;
  GnnDrive plain(env1.ctx, cfg);
  const EpochStats base = plain.run_epoch(0);

  auto env2 = make_env();
  GnnDrive probed(env2.ctx, cfg);
  (void)presample_hot_set(*dataset, *env2.cache, cfg.common.sampler,
                          cfg.common.batch_seeds, cfg.common.run_seed, 8,
                          100);
  const EpochStats after = probed.run_epoch(0);
  ASSERT_EQ(base.batch_losses.size(), after.batch_losses.size());
  EXPECT_EQ(base.batch_losses, after.batch_losses);
}

// -- Belady oracle comparator ------------------------------------------------

TEST_F(CachePolicyFixture, BeladyUpperBoundsLruAtEveryBudget) {
  auto env = make_env();
  SamplerConfig scfg;
  scfg.fanouts = {5, 5};
  const AccessTrace trace = record_access_trace(
      *dataset, *env.cache, scfg, /*batch_seeds=*/16, /*run_seed=*/99,
      /*epoch=*/0, /*max_batches=*/16);
  ASSERT_EQ(trace.size(), 16u);
  std::uint64_t max_batch = 0;
  for (const auto& b : trace) {
    max_batch = std::max<std::uint64_t>(max_batch, b.size());
  }
  for (const std::uint64_t slots :
       {max_batch + 8, max_batch * 2, max_batch * 4}) {
    const CacheSimResult lru = simulate_lru(trace, slots);
    const CacheSimResult opt = simulate_belady(trace, slots);
    EXPECT_EQ(lru.lookups, opt.lookups);
    EXPECT_GE(opt.hits, lru.hits) << "slots=" << slots;
    EXPECT_LE(opt.hit_rate(), 1.0);
  }
}

TEST_F(CachePolicyFixture, HotnessSimulatorBeatsLruOnSkewedTraffic) {
  auto env = make_env();
  SamplerConfig scfg;
  scfg.fanouts = {5, 5};
  const AccessTrace trace = record_access_trace(*dataset, *env.cache, scfg,
                                                16, 99, 0, 16);
  std::uint64_t max_batch = 0;
  for (const auto& b : trace) {
    max_batch = std::max<std::uint64_t>(max_batch, b.size());
  }
  const std::uint64_t slots = max_batch * 2;
  const PresampleResult prof = presample_hot_set(
      *dataset, *env.cache, scfg, 16, 99, 8, slots / 2);
  const CacheSimResult lru = simulate_lru(trace, slots);
  const CacheSimResult hot = simulate_hotness(trace, slots, prof.hot_nodes);
  const CacheSimResult opt = simulate_belady(trace, slots);
  EXPECT_GT(hot.hits, lru.hits);   // community graphs skew hard enough
  EXPECT_GE(opt.hits, hot.hits);   // the oracle stays an upper bound
}

// -- Differential: hotness training == LRU training, byte for byte ----------

TEST_F(CachePolicyFixture, HotnessTrainingIsByteIdenticalToLru) {
  // In-order pipeline (one sampler, one extractor) so the per-batch loss
  // trajectories of the two runs are directly comparable; multi-worker
  // reordering would shuffle them for LRU and hotness alike.
  GnnDriveConfig lru_cfg = base_config(CachePolicy::kLru);
  lru_cfg.record_batch_losses = true;
  lru_cfg.num_samplers = 1;
  lru_cfg.num_extractors = 1;
  GnnDriveConfig hot_cfg = lru_cfg;
  hot_cfg.cache.policy = CachePolicy::kHotness;
  hot_cfg.cache.hot_fraction = 0.4;

  auto env1 = make_env();
  GnnDrive lru_sys(env1.ctx, lru_cfg);
  auto env2 = make_env();
  GnnDrive hot_sys(env2.ctx, hot_cfg);

  for (std::uint64_t e = 0; e < 2; ++e) {
    const EpochStats a = lru_sys.run_epoch(e);
    const EpochStats b = hot_sys.run_epoch(e);
    ASSERT_TRUE(a.result.ok());
    ASSERT_TRUE(b.result.ok());
    ASSERT_EQ(a.batches, b.batches);
    // The acceptance bar: caching is a pure I/O optimization, so the loss
    // trajectory matches double-for-double.
    ASSERT_EQ(a.batch_losses.size(), b.batch_losses.size());
    for (std::size_t i = 0; i < a.batch_losses.size(); ++i) {
      ASSERT_EQ(a.batch_losses[i], b.batch_losses[i])
          << "epoch " << e << " batch " << i;
    }
    EXPECT_EQ(a.loss, b.loss);
    if (e == 0) EXPECT_GT(b.obs.fb_hot_hits, 0u);
  }
  EXPECT_EQ(hot_sys.hot_source(), GnnDrive::HotSetSource::kProfiled);

  // Every resident feature row — pinned or cold — holds the exact on-disk
  // bytes of its node.
  FeatureBuffer& fb = hot_sys.feature_buffer();
  const std::uint32_t dim = dataset->spec().feature_dim;
  std::vector<float> truth(dim);
  std::uint64_t checked_hot = 0;
  for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
    const auto e = fb.entry(v);
    if (!e.valid) continue;
    dataset->read_feature_row(v, truth.data());
    const float* got = fb.slot_data(e.slot);
    for (std::uint32_t k = 0; k < dim; ++k) {
      ASSERT_EQ(got[k], truth[k]) << "node " << v << " dim " << k;
    }
    if (fb.hot_slot(v) != kNoSlot) ++checked_hot;
  }
  EXPECT_GT(checked_hot, 0u);
}

// -- Checkpoint adoption -----------------------------------------------------

TEST_F(CachePolicyFixture, ResumeAdoptsCheckpointedHotSetWithoutReprofiling) {
  GnnDriveConfig cfg = base_config(CachePolicy::kHotness);
  cfg.cache.hot_fraction = 0.4;
  cfg.ckpt.enabled = true;
  cfg.ckpt.dir = fresh_dir("hot-set-adoption");

  std::vector<NodeId> profiled;
  {
    auto env = make_env();
    GnnDrive system(env.ctx, cfg);
    system.run_epoch(0);
    EXPECT_EQ(system.hot_source(), GnnDrive::HotSetSource::kProfiled);
    profiled = system.hot_nodes();
    ASSERT_FALSE(profiled.empty());
    system.checkpoint();
  }
  {
    auto env = make_env();
    GnnDrive resumed(env.ctx, cfg);
    const auto info = resumed.resume();
    ASSERT_TRUE(info.has_value());
    // The pinned set came from the checkpoint — no second profiling pass.
    EXPECT_EQ(resumed.hot_source(), GnnDrive::HotSetSource::kCheckpoint);
    EXPECT_EQ(resumed.hot_nodes(), profiled);
    EXPECT_TRUE(resumed.feature_buffer().hot_sealed());
    const EpochStats stats = resumed.run_epoch(info->epoch);
    EXPECT_TRUE(stats.result.ok());
    EXPECT_GT(stats.obs.fb_hot_hits, 0u);
  }
}

}  // namespace
}  // namespace gnndrive
