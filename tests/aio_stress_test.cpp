// Stress tests for the async I/O stack: many concurrent rings on one
// device, data integrity under load, bounded in-flight discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "aio/io_ring.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

std::shared_ptr<MemBackend> patterned_image(std::uint64_t sectors) {
  auto image = std::make_shared<MemBackend>(sectors * kSectorSize);
  // Each sector is stamped with its own index so any misdirected read is
  // detectable.
  for (std::uint64_t s = 0; s < sectors; ++s) {
    auto* p = reinterpret_cast<std::uint64_t*>(image->raw() + s * kSectorSize);
    for (std::uint64_t k = 0; k < kSectorSize / 8; ++k) p[k] = s;
  }
  return image;
}

TEST(AioStress, ManyRingsOneDeviceDataIntact) {
  constexpr std::uint64_t kSectors = 4096;
  auto image = patterned_image(kSectors);
  SsdConfig cfg;
  cfg.read_latency_us = 5.0;
  cfg.channels = 8;
  SsdDevice ssd(cfg, image);

  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      IoRing ring(ssd, {.queue_depth = 32, .direct = true});
      Rng rng(splitmix64(t + 1));
      std::vector<std::uint8_t> bufs(32 * kSectorSize);
      std::vector<std::uint64_t> sector_of(32);
      std::size_t in_flight = 0;
      std::size_t done = 0;
      constexpr std::size_t kTotal = 400;
      std::size_t submitted = 0;
      std::vector<unsigned> free_slots;
      for (unsigned i = 0; i < 32; ++i) free_slots.push_back(i);
      while (done < kTotal) {
        while (submitted < kTotal && !free_slots.empty()) {
          const unsigned slot = free_slots.back();
          free_slots.pop_back();
          const std::uint64_t sector = rng.next_below(kSectors);
          sector_of[slot] = sector;
          ring.prep_read(sector * kSectorSize, kSectorSize,
                         bufs.data() + slot * kSectorSize, slot);
          ring.submit();
          ++submitted;
          ++in_flight;
        }
        const Cqe cqe = ring.wait_cqe();
        if (cqe.res < 0) {
          ++errors;
        } else {
          const unsigned slot = static_cast<unsigned>(cqe.user_data);
          const auto* p = reinterpret_cast<std::uint64_t*>(
              bufs.data() + slot * kSectorSize);
          for (std::uint64_t k = 0; k < kSectorSize / 8; ++k) {
            if (p[k] != sector_of[slot]) {
              ++errors;
              break;
            }
          }
          free_slots.push_back(slot);
        }
        --in_flight;
        ++done;
      }
      EXPECT_EQ(in_flight, 0u);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);
}

TEST(AioStress, InFlightNeverExceedsDisciplinedDepth) {
  auto image = patterned_image(512);
  SsdConfig cfg;
  cfg.read_latency_us = 30.0;
  SsdDevice ssd(cfg, image);
  IoRing ring(ssd, {.queue_depth = 4, .direct = true});
  std::uint8_t buf[4][kSectorSize];
  std::size_t submitted = 0;
  std::size_t done = 0;
  while (done < 50) {
    while (submitted < 50 && ring.in_flight() < 4) {
      ring.prep_read((submitted % 512) * kSectorSize, kSectorSize,
                     buf[submitted % 4], submitted);
      ring.submit();
      ++submitted;
      EXPECT_LE(ring.in_flight(), 4u);
    }
    ring.wait_cqe();
    ++done;
  }
}

TEST(AioStress, MixedReadsAndWritesConsistent) {
  auto image = patterned_image(1024);
  SsdConfig cfg;
  cfg.read_latency_us = 5.0;
  cfg.write_latency_us = 5.0;
  SsdDevice ssd(cfg, image);
  IoRing ring(ssd, {.queue_depth = 16, .direct = true});

  // Write a distinctive pattern to even sectors, then read back everything.
  std::vector<std::uint8_t> wbuf(kSectorSize, 0xEE);
  for (std::uint64_t s = 0; s < 64; s += 2) {
    ring.prep_write(s * kSectorSize, kSectorSize, wbuf.data(), s);
    ring.submit();
    ring.wait_cqe();
  }
  std::uint8_t rbuf[kSectorSize];
  for (std::uint64_t s = 0; s < 64; ++s) {
    ring.prep_read(s * kSectorSize, kSectorSize, rbuf, s);
    ring.submit();
    ASSERT_GE(ring.wait_cqe().res, 0);
    if (s % 2 == 0) {
      EXPECT_EQ(rbuf[0], 0xEE) << "sector " << s;
    } else {
      EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(rbuf), s);
    }
  }
}

TEST(AioStress, DeviceDrainWaitsForEverything) {
  auto image = patterned_image(256);
  SsdConfig cfg;
  cfg.read_latency_us = 50.0;
  SsdDevice ssd(cfg, image);
  std::atomic<int> completed{0};
  std::vector<std::uint8_t> bufs(64 * kSectorSize);
  for (int i = 0; i < 64; ++i) {
    ssd.submit(SsdDevice::Op::kRead, (i % 256) * kSectorSize, kSectorSize,
               bufs.data() + i * kSectorSize,
               [&](std::int32_t) { ++completed; });
  }
  ssd.drain();
  EXPECT_EQ(completed.load(), 64);
}

}  // namespace
}  // namespace gnndrive
