// Baseline systems (PyG+, Ginex, MariusGNN): training progress, phase
// accounting, cache behaviour and simulated OOM failure modes.
#include <gtest/gtest.h>

#include "baselines/ginex.hpp"
#include "baselines/mariusgnn.hpp"
#include "baselines/pygplus.hpp"

namespace gnndrive {
namespace {

struct BaselineFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(128)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    RunContext ctx;
  };
  Env make_env(std::uint64_t host_bytes = 64ull << 20) {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 15.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(host_bytes);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), nullptr};
    return env;
  }

  CommonTrainConfig common() {
    CommonTrainConfig c;
    c.model.kind = ModelKind::kSage;
    c.model.hidden_dim = 16;
    c.sampler.fanouts = {5, 5, 5};
    c.batch_seeds = 16;
    return c;
  }
};
Dataset* BaselineFixture::dataset = nullptr;

TEST_F(BaselineFixture, PygPlusTrainsAndImproves) {
  auto env = make_env();
  PygPlusConfig cfg;
  cfg.common = common();
  PygPlus system(env.ctx, cfg);
  const EpochStats first = system.run_epoch(0);
  EpochStats last{};
  for (int e = 1; e < 4; ++e) last = system.run_epoch(e);
  EXPECT_GT(first.batches, 0u);
  EXPECT_LT(last.loss, first.loss);
  EXPECT_GT(system.evaluate(), 0.4);
  EXPECT_GT(first.sample_seconds, 0.0);
  EXPECT_GT(first.extract_seconds, 0.0);
}

TEST_F(BaselineFixture, PygPlusUsesPageCacheForFeatures) {
  auto env = make_env();
  PygPlusConfig cfg;
  cfg.common = common();
  PygPlus system(env.ctx, cfg);
  system.run_epoch(0);
  // Feature pages must be resident in the page cache (mmap-based access).
  const auto& lay = dataset->layout();
  std::uint64_t feature_pages = 0;
  for (std::uint64_t p = lay.features_offset / kPageSize;
       p <= (lay.features_offset + lay.features_bytes - 1) / kPageSize;
       ++p) {
    if (env.cache->contains_page(p)) ++feature_pages;
  }
  EXPECT_GT(feature_pages, 0u);
}

TEST_F(BaselineFixture, PygPlusSampleOnlySkipsTraining) {
  auto env = make_env();
  PygPlusConfig cfg;
  cfg.common = common();
  cfg.common.sample_only = true;
  PygPlus system(env.ctx, cfg);
  const EpochStats stats = system.run_epoch(0);
  EXPECT_GT(stats.sample_seconds, 0.0);
  EXPECT_EQ(stats.extract_seconds, 0.0);
  EXPECT_EQ(stats.train_seconds, 0.0);
}

TEST_F(BaselineFixture, GinexTrainsAndImproves) {
  auto env = make_env();
  GinexConfig cfg;
  cfg.common = common();
  cfg.superbatch = 8;
  Ginex system(env.ctx, cfg);
  const EpochStats first = system.run_epoch(0);
  EpochStats last{};
  for (int e = 1; e < 4; ++e) last = system.run_epoch(e);
  EXPECT_GT(first.batches, 0u);
  EXPECT_LT(last.loss, first.loss);
  EXPECT_GT(system.evaluate(), 0.4);
}

TEST_F(BaselineFixture, GinexCachesPinnedWithinBudget) {
  auto env = make_env();
  GinexConfig cfg;
  cfg.common = common();
  Ginex system(env.ctx, cfg);
  EXPECT_GT(system.feature_cache_rows(), 0u);
  // Neighbor + feature caches pinned: most of the budget is accounted.
  EXPECT_GT(env.mem->pinned(),
            static_cast<std::uint64_t>(0.3 * env.mem->budget()));
}

TEST_F(BaselineFixture, GinexSpillsSamplingResultsToSsd) {
  auto env = make_env();
  GinexConfig cfg;
  cfg.common = common();
  cfg.superbatch = 8;
  Ginex system(env.ctx, cfg);
  env.ssd->reset_stats();
  system.run_epoch(0);
  // Superbatch sampling results were written to (and read back from) SSD.
  EXPECT_GT(env.ssd->stats().writes, 0u);
  EXPECT_GT(env.ssd->stats().bytes_written, 0u);
}

TEST_F(BaselineFixture, MariusTrainsWithPrepPhase) {
  auto env = make_env();
  MariusConfig cfg;
  cfg.common = common();
  MariusGnn system(env.ctx, cfg);
  const EpochStats first = system.run_epoch(0);
  EXPECT_GT(first.prep_seconds, 0.0);
  EXPECT_GT(first.batches, 0u);
  EXPECT_LT(first.prep_seconds, first.epoch_seconds);
  EpochStats last{};
  for (int e = 1; e < 4; ++e) last = system.run_epoch(e);
  EXPECT_LT(last.loss, first.loss);
}

TEST_F(BaselineFixture, MariusBufferCapacityScalesWithMemory) {
  // Toy partitions are ~105 KB each; pick budgets that straddle P.
  auto small_env = make_env(1200ull << 10);
  auto large_env = make_env(64ull << 20);
  MariusConfig cfg;
  cfg.common = common();
  MariusGnn small(small_env.ctx, cfg);
  MariusGnn large(large_env.ctx, cfg);
  EXPECT_GT(large.buffer_capacity(), small.buffer_capacity());
}

TEST_F(BaselineFixture, MariusThrowsOOMWhenBufferTooSmall) {
  auto env = make_env(600ull << 10);
  MariusConfig cfg;
  cfg.common = common();
  EXPECT_THROW(MariusGnn(env.ctx, cfg), SimOutOfMemory);
}

TEST_F(BaselineFixture, MariusPartitionOfCoversAllNodes) {
  auto env = make_env();
  MariusConfig cfg;
  cfg.common = common();
  MariusGnn system(env.ctx, cfg);
  for (NodeId v = 0; v < dataset->spec().num_nodes; v += 97) {
    EXPECT_LT(system.partition_of(v), cfg.num_partitions);
  }
}

TEST_F(BaselineFixture, AllSystemsAgreeOnBatchCount) {
  const std::size_t expected = div_ceil(dataset->train_nodes().size(), 16);
  {
    auto env = make_env();
    PygPlusConfig cfg;
    cfg.common = common();
    PygPlus system(env.ctx, cfg);
    EXPECT_EQ(system.run_epoch(0).batches, expected);
  }
  {
    auto env = make_env();
    GinexConfig cfg;
    cfg.common = common();
    Ginex system(env.ctx, cfg);
    EXPECT_EQ(system.run_epoch(0).batches, expected);
  }
  // MariusGNN batches per partition group: count can differ by partition
  // remainders but total seeds covered must match.
  {
    auto env = make_env();
    MariusConfig cfg;
    cfg.common = common();
    MariusGnn system(env.ctx, cfg);
    EXPECT_GE(system.run_epoch(0).batches, expected);
  }
}

}  // namespace
}  // namespace gnndrive
