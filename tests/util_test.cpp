// Unit tests for util: bounded queue, LRU list, thread pool, stats,
// telemetry bucketing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "util/lru.hpp"
#include "util/queue.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace gnndrive {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, BlocksWhenFullUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.push(9));
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

// Shutdown semantics under contention: every thread blocked in push() or
// pop() when close() lands must return promptly with a definite outcome —
// push false, pop nullopt-after-drain — never hang. This is the property
// graceful SIGINT shutdown (examples/quickstart.cpp) and the checkpoint
// crash tests lean on.
TEST(BoundedQueue, CloseUnblocksProducersAndConsumersWithDefiniteOutcome) {
  BoundedQueue<int> q(2);
  q.push(0);
  q.push(1);  // full: producers below must block

  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<int> push_false{0};
  std::atomic<int> popped{0};
  std::atomic<int> pop_nullopt{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kProducers; ++i) {
    threads.emplace_back([&] {
      if (!q.push(100)) push_false.fetch_add(1);
    });
  }
  for (int i = 0; i < kConsumers; ++i) {
    threads.emplace_back([&] {
      // Drain until closed-and-empty; count both outcomes.
      while (q.pop().has_value()) popped.fetch_add(1);
      pop_nullopt.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : threads) t.join();  // a hang here fails via the test timeout

  // Every consumer saw the closed signal; every item either reached a
  // consumer or its producer was told false. No outcome is indefinite.
  EXPECT_EQ(pop_nullopt.load(), kConsumers);
  EXPECT_EQ(push_false.load() + popped.load(), 2 + kProducers);
}

TEST(BoundedQueue, CloseWakesProducerBlockedOnFullQueue) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_EQ(q.pop().value(), 1);  // close drains, never drops
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, TryPopNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(3);
  EXPECT_EQ(q.try_pop().value(), 3);
}

TEST(BoundedQueue, TryPushShedsWhenFullAndKeepsTheItem) {
  BoundedQueue<std::vector<int>> q(1);
  std::vector<int> a{1, 2, 3};
  EXPECT_TRUE(q.try_push(a));  // accepted: moved out
  std::vector<int> b{4, 5};
  EXPECT_FALSE(q.try_push(b));             // full: shed
  EXPECT_EQ(b, (std::vector<int>{4, 5}));  // ...and untouched
  q.close();
  EXPECT_FALSE(q.try_push(b));  // closed: shed too
  EXPECT_EQ(b, (std::vector<int>{4, 5}));
}

TEST(BoundedQueue, TryPopForTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(2);
  const TimePoint t0 = Clock::now();
  EXPECT_FALSE(q.try_pop_for(from_us(5000.0)).has_value());
  // The wait honoured (roughly) the window: no early return, no hang.
  const double waited_us = to_seconds(Clock::now() - t0) * 1e6;
  EXPECT_GE(waited_us, 4000.0);
}

TEST(BoundedQueue, TryPopForPrefersQueuedItemOverElapsedTimeout) {
  // Wakeup-vs-timeout ordering: an item that is already present must win
  // even when the timeout is zero (or has raced to expiry) — the consumer
  // re-checks the queue under the lock before giving up.
  BoundedQueue<int> q(2);
  q.push(11);
  EXPECT_EQ(q.try_pop_for(Duration::zero()).value(), 11);
}

TEST(BoundedQueue, TryPopForReturnsItemArrivingWithinWindow) {
  BoundedQueue<int> q(2);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.push(42);
  });
  // Generous window: the item arrives well before it closes.
  EXPECT_EQ(q.try_pop_for(from_us(2e6)).value(), 42);
  producer.join();
}

TEST(BoundedQueue, TryPopForDrainsThenSignalsClosed) {
  BoundedQueue<int> q(2);
  q.push(1);
  q.close();
  EXPECT_EQ(q.try_pop_for(from_us(1000.0)).value(), 1);
  const TimePoint t0 = Clock::now();
  EXPECT_FALSE(q.try_pop_for(from_us(1e6)).has_value());
  // Closed-and-drained returns immediately instead of burning the window.
  EXPECT_LT(to_seconds(Clock::now() - t0), 0.5);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < 3; ++c) threads[kProducers + c].join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueue, PushOrReclaimReturnsItemWhenClosed) {
  BoundedQueue<std::vector<int>> q(2);
  EXPECT_FALSE(q.push_or_reclaim({1, 2, 3}).has_value());  // accepted
  q.close();
  const auto back = q.push_or_reclaim({4, 5});
  ASSERT_TRUE(back.has_value());  // handed back, not dropped
  EXPECT_EQ(*back, (std::vector<int>{4, 5}));
  EXPECT_EQ(q.pop().value(), (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseReopenHammerLosesNothing) {
  // 2 producers + 2 consumers race against repeated close()/reopen() cycles.
  // Invariant: an item is either rejected at push (push returned false) or
  // it comes out of a pop exactly once — never lost, never duplicated.
  BoundedQueue<int> q(4);
  constexpr int kPerProducer = 2000;
  std::vector<std::vector<int>> pushed(2), popped(2);
  std::atomic<bool> producers_done{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i;
        // Retry across closed windows; record only accepted pushes.
        while (!q.push(v)) std::this_thread::yield();
        pushed[p].push_back(v);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&, c] {
      for (;;) {
        if (auto v = q.try_pop()) {
          popped[c].push_back(*v);
        } else if (producers_done.load() && q.size() == 0) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  // The hammer: flip the queue closed and open while traffic flows.
  std::thread hammer([&] {
    while (!producers_done.load()) {
      q.close();
      std::this_thread::yield();
      q.reopen();
      std::this_thread::yield();
    }
    q.reopen();  // leave it open so stragglers drain
  });
  threads[0].join();
  threads[1].join();
  producers_done = true;
  hammer.join();
  threads[2].join();
  threads[3].join();

  std::vector<int> in, out;
  for (const auto& v : pushed) in.insert(in.end(), v.begin(), v.end());
  for (const auto& v : popped) out.insert(out.end(), v.begin(), v.end());
  std::sort(in.begin(), in.end());
  std::sort(out.begin(), out.end());
  EXPECT_EQ(in.size(), 2u * kPerProducer);  // every item eventually accepted
  EXPECT_EQ(out, in);                       // multiset equality: no loss/dup
}

TEST(BoundedQueue, ReopenWakesSleepingProducer) {
  // A producer blocked on a full queue must re-evaluate after close/reopen
  // instead of sleeping forever (reopen() notifies all waiters).
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<int> result{-1};
  std::thread producer([&] { result = q.push(2) ? 1 : 0; });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), 0);  // saw the closed window
  q.reopen();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop().value(), 3);
}

// Rng state snapshot/restore — the primitive the checkpoint layer's
// deterministic-resume guarantee builds on (src/ckpt).
TEST(Rng, StateRoundTripResumesStreamExactly) {
  Rng rng(0xC0FFEEULL);
  for (int i = 0; i < 1000; ++i) rng();  // advance to an arbitrary point

  const RngState snap = rng.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 256; ++i) expected.push_back(rng());

  Rng resumed(12345);  // differently seeded: restore must fully overwrite
  resumed.set_state(snap);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(resumed(), expected[i]);
  // Both generators are now in identical states; derived distributions
  // (doubles, bounded ints) agree too.
  EXPECT_DOUBLE_EQ(resumed.next_double(), rng.next_double());
  EXPECT_EQ(resumed.next_below(977), rng.next_below(977));
}

TEST(Rng, StateIsStableUnderSnapshot) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) rng();
  const RngState a = rng.state();
  const RngState b = rng.state();  // snapshot must not perturb the stream
  EXPECT_EQ(a, b);
  Rng x(1), y(2);
  x.set_state(a);
  y.set_state(a);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(x(), y());
}

TEST(IndexedLru, PushPopOrder) {
  IndexedLruList lru(8);
  lru.push_mru(3);
  lru.push_mru(5);
  lru.push_mru(1);
  EXPECT_EQ(lru.size(), 3u);
  EXPECT_EQ(lru.pop_lru(), 3u);
  EXPECT_EQ(lru.pop_lru(), 5u);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_TRUE(lru.empty());
}

TEST(IndexedLru, RemoveFromMiddle) {
  IndexedLruList lru(8);
  for (std::uint32_t i = 0; i < 5; ++i) lru.push_mru(i);
  lru.remove(2);
  EXPECT_FALSE(lru.contains(2));
  EXPECT_EQ(lru.pop_lru(), 0u);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_EQ(lru.pop_lru(), 3u);
  EXPECT_EQ(lru.pop_lru(), 4u);
}

TEST(IndexedLru, TouchMovesToMru) {
  IndexedLruList lru(4);
  lru.push_mru(0);
  lru.push_mru(1);
  lru.push_mru(2);
  lru.touch(0);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_EQ(lru.pop_lru(), 2u);
  EXPECT_EQ(lru.pop_lru(), 0u);
}

TEST(IndexedLru, ContainsSingleton) {
  IndexedLruList lru(4);
  EXPECT_FALSE(lru.contains(0));
  lru.push_mru(0);
  EXPECT_TRUE(lru.contains(0));
  lru.remove(0);
  EXPECT_FALSE(lru.contains(0));
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunningStat, Moments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Percentile, ExactValues) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(RunningStat, MergeMatchesSingleStream) {
  // Parallel Welford combine must reproduce the single-stream moments.
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(std::sin(static_cast<double>(i)) * 100.0 + i % 7);
  }
  RunningStat ground;
  for (double x : xs) ground.add(x);

  RunningStat parts[3];
  for (std::size_t i = 0; i < xs.size(); ++i) parts[i % 3].add(xs[i]);
  RunningStat merged;
  for (const RunningStat& p : parts) merged.merge(p);

  EXPECT_EQ(merged.count(), ground.count());
  EXPECT_NEAR(merged.mean(), ground.mean(), 1e-9);
  EXPECT_NEAR(merged.stddev(), ground.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), ground.min());
  EXPECT_DOUBLE_EQ(merged.max(), ground.max());
  EXPECT_NEAR(merged.sum(), ground.sum(), 1e-9);
}

TEST(RunningStat, MergeEmptySides) {
  RunningStat a, b;
  a.merge(b);  // empty into empty
  EXPECT_EQ(a.count(), 0u);
  b.add(4.0);
  a.merge(b);  // non-empty into empty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  RunningStat c;
  a.merge(c);  // empty into non-empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(LatencyHistogram, PercentileInterpolatesWithinBucket) {
  // 100 identical samples at 3 us land in bucket (2, 4]. Every percentile of
  // that distribution is 3; the estimate must never exceed the tracked max
  // (the old nearest-rank answer was the bucket's upper bound, 4).
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add_us(3.0);
  for (double p : {0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GT(h.percentile_us(p), 2.0) << p;
    EXPECT_LE(h.percentile_us(p), 3.0) << p;
  }
  EXPECT_DOUBLE_EQ(h.percentile_us(1.0), 3.0);
}

TEST(LatencyHistogram, PercentileAcrossBuckets) {
  LatencyHistogram h;
  // 90 samples at ~1.5 us (bucket (1,2]) and 10 at ~1000 us (bucket
  // (512,1024]): p50 sits in the low bucket, p99 in the high one.
  for (int i = 0; i < 90; ++i) h.add_us(1.5);
  for (int i = 0; i < 10; ++i) h.add_us(1000.0);
  EXPECT_GT(h.percentile_us(0.5), 1.0);
  EXPECT_LE(h.percentile_us(0.5), 2.0);
  EXPECT_GT(h.percentile_us(0.99), 512.0);
  EXPECT_LE(h.percentile_us(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile_us(1.0), 1000.0);
  // Out-of-range p clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.percentile_us(1.5), 1000.0);
  EXPECT_GT(h.percentile_us(-0.5), 0.0);
}

TEST(LatencyHistogram, EmptyAndSingleSampleEdgeCases) {
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile_us(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile_us(1.0), 0.0);
  LatencyHistogram one;
  one.add_us(37.0);
  // A single sample: every percentile (including p=0) is that sample's
  // bucket, clamped to the exact max.
  for (double p : {0.0, 0.5, 1.0}) {
    EXPECT_GT(one.percentile_us(p), 32.0) << p;
    EXPECT_LE(one.percentile_us(p), 37.0) << p;
  }
  EXPECT_DOUBLE_EQ(one.percentile_us(1.0), 37.0);
}

TEST(Telemetry, BucketsSplitIntervals) {
  Telemetry tel(/*bucket_ms=*/10.0);
  tel.start();
  const TimePoint t0 = Clock::now();
  // 25 ms of "cpu" spanning ~3 buckets.
  tel.record(TraceCat::kCpuBusy, t0, t0 + std::chrono::milliseconds(25));
  const auto buckets = tel.snapshot();
  ASSERT_GE(buckets.size(), 3u);
  double total = 0;
  for (const auto& b : buckets) total += b.cpu_busy;
  EXPECT_NEAR(total, 0.025, 1e-4);
  EXPECT_NEAR(tel.total_seconds(TraceCat::kCpuBusy), 0.025, 1e-4);
}

TEST(Telemetry, CategoriesIndependent) {
  Telemetry tel(10.0);
  tel.start();
  const TimePoint t0 = Clock::now();
  tel.record(TraceCat::kIoWait, t0, t0 + std::chrono::milliseconds(5));
  tel.record(TraceCat::kGpuBusy, t0, t0 + std::chrono::milliseconds(8));
  EXPECT_NEAR(tel.total_seconds(TraceCat::kIoWait), 0.005, 1e-4);
  EXPECT_NEAR(tel.total_seconds(TraceCat::kGpuBusy), 0.008, 1e-4);
  EXPECT_DOUBLE_EQ(tel.total_seconds(TraceCat::kCpuBusy), 0.0);
}

}  // namespace
}  // namespace gnndrive
