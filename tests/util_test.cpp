// Unit tests for util: bounded queue, LRU list, thread pool, stats,
// telemetry bucketing.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/lru.hpp"
#include "util/queue.hpp"
#include "util/stats.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace gnndrive {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, BlocksWhenFullUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.push(9));
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, TryPopNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(3);
  EXPECT_EQ(q.try_pop().value(), 3);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < 3; ++c) threads[kProducers + c].join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(IndexedLru, PushPopOrder) {
  IndexedLruList lru(8);
  lru.push_mru(3);
  lru.push_mru(5);
  lru.push_mru(1);
  EXPECT_EQ(lru.size(), 3u);
  EXPECT_EQ(lru.pop_lru(), 3u);
  EXPECT_EQ(lru.pop_lru(), 5u);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_TRUE(lru.empty());
}

TEST(IndexedLru, RemoveFromMiddle) {
  IndexedLruList lru(8);
  for (std::uint32_t i = 0; i < 5; ++i) lru.push_mru(i);
  lru.remove(2);
  EXPECT_FALSE(lru.contains(2));
  EXPECT_EQ(lru.pop_lru(), 0u);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_EQ(lru.pop_lru(), 3u);
  EXPECT_EQ(lru.pop_lru(), 4u);
}

TEST(IndexedLru, TouchMovesToMru) {
  IndexedLruList lru(4);
  lru.push_mru(0);
  lru.push_mru(1);
  lru.push_mru(2);
  lru.touch(0);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_EQ(lru.pop_lru(), 2u);
  EXPECT_EQ(lru.pop_lru(), 0u);
}

TEST(IndexedLru, ContainsSingleton) {
  IndexedLruList lru(4);
  EXPECT_FALSE(lru.contains(0));
  lru.push_mru(0);
  EXPECT_TRUE(lru.contains(0));
  lru.remove(0);
  EXPECT_FALSE(lru.contains(0));
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunningStat, Moments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Percentile, ExactValues) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Telemetry, BucketsSplitIntervals) {
  Telemetry tel(/*bucket_ms=*/10.0);
  tel.start();
  const TimePoint t0 = Clock::now();
  // 25 ms of "cpu" spanning ~3 buckets.
  tel.record(TraceCat::kCpuBusy, t0, t0 + std::chrono::milliseconds(25));
  const auto buckets = tel.snapshot();
  ASSERT_GE(buckets.size(), 3u);
  double total = 0;
  for (const auto& b : buckets) total += b.cpu_busy;
  EXPECT_NEAR(total, 0.025, 1e-4);
  EXPECT_NEAR(tel.total_seconds(TraceCat::kCpuBusy), 0.025, 1e-4);
}

TEST(Telemetry, CategoriesIndependent) {
  Telemetry tel(10.0);
  tel.start();
  const TimePoint t0 = Clock::now();
  tel.record(TraceCat::kIoWait, t0, t0 + std::chrono::milliseconds(5));
  tel.record(TraceCat::kGpuBusy, t0, t0 + std::chrono::milliseconds(8));
  EXPECT_NEAR(tel.total_seconds(TraceCat::kIoWait), 0.005, 1e-4);
  EXPECT_NEAR(tel.total_seconds(TraceCat::kGpuBusy), 0.008, 1e-4);
  EXPECT_DOUBLE_EQ(tel.total_seconds(TraceCat::kCpuBusy), 0.0);
}

}  // namespace
}  // namespace gnndrive
