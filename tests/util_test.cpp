// Unit tests for util: bounded queue, LRU list, thread pool, stats,
// telemetry bucketing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/lru.hpp"
#include "util/queue.hpp"
#include "util/stats.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace gnndrive {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, BlocksWhenFullUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.push(9));
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, TryPopNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(3);
  EXPECT_EQ(q.try_pop().value(), 3);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < 3; ++c) threads[kProducers + c].join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueue, PushOrReclaimReturnsItemWhenClosed) {
  BoundedQueue<std::vector<int>> q(2);
  EXPECT_FALSE(q.push_or_reclaim({1, 2, 3}).has_value());  // accepted
  q.close();
  const auto back = q.push_or_reclaim({4, 5});
  ASSERT_TRUE(back.has_value());  // handed back, not dropped
  EXPECT_EQ(*back, (std::vector<int>{4, 5}));
  EXPECT_EQ(q.pop().value(), (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseReopenHammerLosesNothing) {
  // 2 producers + 2 consumers race against repeated close()/reopen() cycles.
  // Invariant: an item is either rejected at push (push returned false) or
  // it comes out of a pop exactly once — never lost, never duplicated.
  BoundedQueue<int> q(4);
  constexpr int kPerProducer = 2000;
  std::vector<std::vector<int>> pushed(2), popped(2);
  std::atomic<bool> producers_done{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i;
        // Retry across closed windows; record only accepted pushes.
        while (!q.push(v)) std::this_thread::yield();
        pushed[p].push_back(v);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&, c] {
      for (;;) {
        if (auto v = q.try_pop()) {
          popped[c].push_back(*v);
        } else if (producers_done.load() && q.size() == 0) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  // The hammer: flip the queue closed and open while traffic flows.
  std::thread hammer([&] {
    while (!producers_done.load()) {
      q.close();
      std::this_thread::yield();
      q.reopen();
      std::this_thread::yield();
    }
    q.reopen();  // leave it open so stragglers drain
  });
  threads[0].join();
  threads[1].join();
  producers_done = true;
  hammer.join();
  threads[2].join();
  threads[3].join();

  std::vector<int> in, out;
  for (const auto& v : pushed) in.insert(in.end(), v.begin(), v.end());
  for (const auto& v : popped) out.insert(out.end(), v.begin(), v.end());
  std::sort(in.begin(), in.end());
  std::sort(out.begin(), out.end());
  EXPECT_EQ(in.size(), 2u * kPerProducer);  // every item eventually accepted
  EXPECT_EQ(out, in);                       // multiset equality: no loss/dup
}

TEST(BoundedQueue, ReopenWakesSleepingProducer) {
  // A producer blocked on a full queue must re-evaluate after close/reopen
  // instead of sleeping forever (reopen() notifies all waiters).
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<int> result{-1};
  std::thread producer([&] { result = q.push(2) ? 1 : 0; });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), 0);  // saw the closed window
  q.reopen();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(IndexedLru, PushPopOrder) {
  IndexedLruList lru(8);
  lru.push_mru(3);
  lru.push_mru(5);
  lru.push_mru(1);
  EXPECT_EQ(lru.size(), 3u);
  EXPECT_EQ(lru.pop_lru(), 3u);
  EXPECT_EQ(lru.pop_lru(), 5u);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_TRUE(lru.empty());
}

TEST(IndexedLru, RemoveFromMiddle) {
  IndexedLruList lru(8);
  for (std::uint32_t i = 0; i < 5; ++i) lru.push_mru(i);
  lru.remove(2);
  EXPECT_FALSE(lru.contains(2));
  EXPECT_EQ(lru.pop_lru(), 0u);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_EQ(lru.pop_lru(), 3u);
  EXPECT_EQ(lru.pop_lru(), 4u);
}

TEST(IndexedLru, TouchMovesToMru) {
  IndexedLruList lru(4);
  lru.push_mru(0);
  lru.push_mru(1);
  lru.push_mru(2);
  lru.touch(0);
  EXPECT_EQ(lru.pop_lru(), 1u);
  EXPECT_EQ(lru.pop_lru(), 2u);
  EXPECT_EQ(lru.pop_lru(), 0u);
}

TEST(IndexedLru, ContainsSingleton) {
  IndexedLruList lru(4);
  EXPECT_FALSE(lru.contains(0));
  lru.push_mru(0);
  EXPECT_TRUE(lru.contains(0));
  lru.remove(0);
  EXPECT_FALSE(lru.contains(0));
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunningStat, Moments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Percentile, ExactValues) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Telemetry, BucketsSplitIntervals) {
  Telemetry tel(/*bucket_ms=*/10.0);
  tel.start();
  const TimePoint t0 = Clock::now();
  // 25 ms of "cpu" spanning ~3 buckets.
  tel.record(TraceCat::kCpuBusy, t0, t0 + std::chrono::milliseconds(25));
  const auto buckets = tel.snapshot();
  ASSERT_GE(buckets.size(), 3u);
  double total = 0;
  for (const auto& b : buckets) total += b.cpu_busy;
  EXPECT_NEAR(total, 0.025, 1e-4);
  EXPECT_NEAR(tel.total_seconds(TraceCat::kCpuBusy), 0.025, 1e-4);
}

TEST(Telemetry, CategoriesIndependent) {
  Telemetry tel(10.0);
  tel.start();
  const TimePoint t0 = Clock::now();
  tel.record(TraceCat::kIoWait, t0, t0 + std::chrono::milliseconds(5));
  tel.record(TraceCat::kGpuBusy, t0, t0 + std::chrono::milliseconds(8));
  EXPECT_NEAR(tel.total_seconds(TraceCat::kIoWait), 0.005, 1e-4);
  EXPECT_NEAR(tel.total_seconds(TraceCat::kGpuBusy), 0.008, 1e-4);
  EXPECT_DOUBLE_EQ(tel.total_seconds(TraceCat::kCpuBusy), 0.0);
}

}  // namespace
}  // namespace gnndrive
