// Property-style randomized tests: the simulated page cache against a
// reference LRU model, direct-vs-buffered data equivalence, and Ginex's
// Belady plan under forced eviction pressure.
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "aio/io_ring.hpp"
#include "baselines/ginex.hpp"
#include "memsim/page_cache.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

// ---- Page cache vs reference LRU model over random accesses. ------------
struct PageCacheModelParams {
  std::uint64_t capacity_pages;
  std::uint64_t file_pages;
  std::uint64_t seed;
};

struct PageCacheModel : ::testing::TestWithParam<PageCacheModelParams> {};

TEST_P(PageCacheModel, MatchesReferenceLru) {
  const auto p = GetParam();
  auto image = std::make_shared<MemBackend>(p.file_pages * kPageSize);
  SsdConfig cfg;
  cfg.read_latency_us = 1.0;  // fast: the test is about state, not time
  SsdDevice ssd(cfg, image);
  HostMemory mem(p.capacity_pages * kPageSize);
  PageCache cache(mem, ssd);

  // Reference: list front = LRU.
  std::list<std::uint64_t> ref_lru;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> ref;
  std::uint64_t ref_misses = 0;

  Rng rng(p.seed);
  std::uint8_t buf[8];
  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t page = rng.next_below(p.file_pages);
    cache.read(page * kPageSize, 8, buf);
    auto it = ref.find(page);
    if (it != ref.end()) {
      ref_lru.splice(ref_lru.end(), ref_lru, it->second);
    } else {
      ++ref_misses;
      if (ref.size() >= p.capacity_pages) {
        ref.erase(ref_lru.front());
        ref_lru.pop_front();
      }
      ref[page] = ref_lru.insert(ref_lru.end(), page);
    }
    if (step % 97 == 0) {
      // Residency must match the reference exactly.
      ASSERT_EQ(cache.resident_pages(), ref.size());
      for (const auto& [rp, _] : ref) {
        ASSERT_TRUE(cache.contains_page(rp)) << "page " << rp;
      }
    }
  }
  EXPECT_EQ(cache.stats().misses, ref_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PageCacheModel,
    ::testing::Values(PageCacheModelParams{4, 16, 1},
                      PageCacheModelParams{16, 64, 2},
                      PageCacheModelParams{64, 64, 3},   // everything fits
                      PageCacheModelParams{8, 256, 4},   // heavy thrash
                      PageCacheModelParams{1, 32, 5}));  // degenerate

// ---- Direct and buffered rings deliver identical bytes. ------------------
struct IoPathEquivalence : ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IoPathEquivalence, SameBytesEitherPath) {
  const std::uint32_t len = GetParam();
  auto image = std::make_shared<MemBackend>(1 << 20);
  Rng rng(31);
  for (std::uint64_t i = 0; i < image->size(); ++i) {
    image->raw()[i] = static_cast<std::uint8_t>(rng());
  }
  SsdConfig cfg;
  cfg.read_latency_us = 1.0;
  SsdDevice ssd(cfg, image);
  HostMemory mem(64 * kPageSize);
  PageCache cache(mem, ssd);

  IoRing direct(ssd, {.queue_depth = 8, .direct = true});
  IoRing buffered(ssd, {.queue_depth = 8, .direct = false}, &cache);

  std::vector<std::uint8_t> a(len);
  std::vector<std::uint8_t> b(len);
  for (std::uint64_t off : {std::uint64_t{0}, std::uint64_t{512 * 13}}) {
    direct.prep_read(off, len, a.data(), 0);
    direct.submit();
    ASSERT_GE(direct.wait_cqe().res, 0);
    buffered.prep_read(off, len, b.data(), 0);
    buffered.submit();
    ASSERT_GE(buffered.wait_cqe().res, 0);
    ASSERT_EQ(a, b);
    ASSERT_EQ(std::memcmp(a.data(), image->raw() + off, len), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, IoPathEquivalence,
                         ::testing::Values(512u, 1024u, 4096u, 65536u));

// ---- Ginex under severe cache pressure: the Belady plan must still cover
// every trained node (internal GD_CHECK) and training must proceed. -------
struct GinexPressure : ::testing::TestWithParam<double> {};

TEST_P(GinexPressure, TinyFeatureCacheStillTrains) {
  static Dataset dataset = Dataset::build(toy_spec(128));
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 5.0;
  auto ssd = dataset.make_device(ssd_cfg);
  HostMemory mem(64ull << 20);
  PageCache cache(mem, *ssd);
  RunContext ctx{&dataset, ssd.get(), &mem, &cache, nullptr};

  GinexConfig cfg;
  cfg.common.model.kind = ModelKind::kSage;
  cfg.common.model.hidden_dim = 8;
  cfg.common.sampler.fanouts = {5, 5};
  cfg.common.batch_seeds = 16;
  cfg.feature_cache_frac = GetParam();  // down to ~1.5k rows
  cfg.superbatch = 6;
  Ginex system(ctx, cfg);
  const EpochStats stats = system.run_epoch(0);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.loss, 0.0);
}

INSTANTIATE_TEST_SUITE_P(CacheFractions, GinexPressure,
                         ::testing::Values(0.66, 0.2, 0.05, 0.012));

// ---- SSD service-time model is monotone in length and ordered by op. ----
struct SsdServiceSweep : ::testing::TestWithParam<unsigned> {};

TEST_P(SsdServiceSweep, MonotoneInLength) {
  SsdConfig cfg;
  cfg.channels = GetParam();
  auto image = std::make_shared<MemBackend>(4096);
  SsdDevice ssd(cfg, image);
  Duration prev{};
  for (std::uint32_t len = 512; len <= 1 << 20; len *= 4) {
    const Duration t = ssd.service_time(SsdDevice::Op::kRead, len);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Channels, SsdServiceSweep,
                         ::testing::Values(1u, 4u, 16u, 64u));

}  // namespace
}  // namespace gnndrive
