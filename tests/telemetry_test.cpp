// Telemetry details: BusyScope I/O-wait subtraction, thread-local wait
// accounting, queue reopen, env knobs.
#include <gtest/gtest.h>

#include <thread>

#include "memsim/page_cache.hpp"
#include "obs/metrics.hpp"
#include "storage/ssd.hpp"
#include "util/env.hpp"
#include "util/queue.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {
namespace {

TEST(BusyScope, SubtractsIoWaitFromCpuBusy) {
  Telemetry tel(50.0);
  tel.start();
  {
    BusyScope busy(&tel);
    // 10 ms of "compute" ...
    const TimePoint until = Clock::now() + std::chrono::milliseconds(10);
    while (Clock::now() < until) {
    }
    // ... and 30 ms blocked on I/O.
    ScopedTrace io(&tel, TraceCat::kIoWait);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  const double cpu = tel.total_seconds(TraceCat::kCpuBusy);
  const double io = tel.total_seconds(TraceCat::kIoWait);
  EXPECT_NEAR(io, 0.030, 0.01);
  EXPECT_NEAR(cpu, 0.010, 0.008);  // the 30 ms wait must NOT count as busy
}

TEST(BusyScope, NoTelemetryIsHarmless) {
  BusyScope busy(nullptr);
  ScopedTrace io(nullptr, TraceCat::kIoWait);
}

TEST(ThreadIoWait, AccumulatesPerThread) {
  const double before = thread_io_wait_seconds();
  {
    ScopedTrace io(nullptr, TraceCat::kIoWait);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(thread_io_wait_seconds() - before, 0.004);

  // A different thread has its own accumulator.
  double other = -1;
  std::thread t([&] { other = thread_io_wait_seconds(); });
  t.join();
  EXPECT_EQ(other, 0.0);
}

TEST(Telemetry, SyncDeviceReadCountsAsIoWaitViaPageCache) {
  auto image = std::make_shared<MemBackend>(64 * kPageSize);
  SsdConfig cfg;
  cfg.read_latency_us = 2000.0;
  SsdDevice ssd(cfg, image);
  HostMemory mem(32 * kPageSize);
  Telemetry tel(10.0);
  tel.start();
  PageCache cache(mem, ssd, &tel);
  std::uint8_t buf[8];
  cache.read(0, 8, buf);  // cold miss: ~2 ms modeled wait
  EXPECT_GE(tel.total_seconds(TraceCat::kIoWait), 1.5e-3);
}

TEST(BoundedQueue, ReopenAfterClose) {
  BoundedQueue<int> q(2);
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
  q.reopen();
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(Telemetry, IntervalApportionsAcrossManyBuckets) {
  // A 47 ms interval on a 10 ms grid must spread across at least 5 buckets
  // and conserve its total duration (no double counting at bucket edges).
  Telemetry tel(/*bucket_ms=*/10.0);
  tel.start();
  const TimePoint t0 = Clock::now();
  tel.record(TraceCat::kCpuBusy, t0, t0 + std::chrono::milliseconds(47));
  const auto buckets = tel.snapshot();
  std::size_t touched = 0;
  double total = 0.0;
  for (const auto& b : buckets) {
    if (b.cpu_busy > 0) ++touched;
    total += b.cpu_busy;
    // No bucket can hold more than its own width from a single thread.
    EXPECT_LE(b.cpu_busy, tel.bucket_seconds() + 1e-6);
  }
  EXPECT_GE(touched, 5u);
  EXPECT_NEAR(total, 0.047, 1e-4);
  EXPECT_NEAR(tel.total_seconds(TraceCat::kCpuBusy), 0.047, 1e-4);
}

TEST(Telemetry, IntervalsBeforeStartAreDropped) {
  Telemetry tel(10.0);
  const TimePoint t0 = Clock::now();
  // Not started yet: recording is a no-op.
  tel.record(TraceCat::kCpuBusy, t0, t0 + std::chrono::milliseconds(20));
  EXPECT_DOUBLE_EQ(tel.total_seconds(TraceCat::kCpuBusy), 0.0);
  for (const auto& b : tel.snapshot()) {
    EXPECT_DOUBLE_EQ(b.cpu_busy, 0.0);
    EXPECT_DOUBLE_EQ(b.io_wait, 0.0);
    EXPECT_DOUBLE_EQ(b.gpu_busy, 0.0);
  }
  tel.start();
  tel.record(TraceCat::kCpuBusy, Clock::now(),
             Clock::now() + std::chrono::milliseconds(5));
  EXPECT_NEAR(tel.total_seconds(TraceCat::kCpuBusy), 0.005, 1e-4);
}

TEST(Telemetry, FaultCountersCountAndMirrorIntoRegistry) {
  Telemetry tel;
  // Active without start(), and additive.
  tel.count(FaultCounter::kIoErrors);
  tel.count(FaultCounter::kIoErrors, 2);
  tel.count(FaultCounter::kIoRetries, 5);
  tel.count(FaultCounter::kIoTimeouts);
  tel.count(FaultCounter::kFailedBatches, 3);
  EXPECT_EQ(tel.counter(FaultCounter::kIoErrors), 3u);
  EXPECT_EQ(tel.counter(FaultCounter::kIoRetries), 5u);
  EXPECT_EQ(tel.counter(FaultCounter::kIoTimeouts), 1u);
  EXPECT_EQ(tel.counter(FaultCounter::kFailedBatches), 3u);
  // The same values are visible as registry counters under fault.* names.
  MetricsRegistry& reg = *tel.metrics();
  EXPECT_EQ(reg.counter("fault.io_errors").value(), 3u);
  EXPECT_EQ(reg.counter("fault.io_retries").value(), 5u);
  EXPECT_EQ(reg.counter("fault.io_timeouts").value(), 1u);
  EXPECT_EQ(reg.counter("fault.failed_batches").value(), 3u);
}

TEST(EnvKnobs, DefaultsAndParsing) {
  ::unsetenv("GNNDRIVE_BENCH_MODE");
  EXPECT_FALSE(bench_full_mode());
  ::setenv("GNNDRIVE_BENCH_MODE", "full", 1);
  EXPECT_TRUE(bench_full_mode());
  ::unsetenv("GNNDRIVE_BENCH_MODE");

  ::setenv("GD_TEST_KNOB", "17", 1);
  EXPECT_EQ(env_long("GD_TEST_KNOB", 0), 17);
  EXPECT_DOUBLE_EQ(env_double("GD_TEST_KNOB", 0.0), 17.0);
  EXPECT_EQ(env_str("GD_TEST_KNOB", ""), "17");
  ::unsetenv("GD_TEST_KNOB");
  EXPECT_EQ(env_long("GD_TEST_KNOB", 5), 5);
}

}  // namespace
}  // namespace gnndrive
