// Cross-system integration tests on a contention-heavy configuration:
// the paper's qualitative claims, asserted with generous margins.
#include <gtest/gtest.h>

#include "baselines/pygplus.hpp"
#include "core/pipeline.hpp"

namespace gnndrive {
namespace {

// A mid-sized dataset whose features overflow the host budget: 20k nodes,
// dim 256 -> 20 MiB features + 2.4 MiB topology against a 12 MiB budget.
struct IntegrationFixture : ::testing::Test {
  static void SetUpTestSuite() {
    DatasetSpec spec;
    spec.name = "contention";
    spec.num_nodes = 20000;
    spec.num_edges = 300000;
    spec.feature_dim = 256;
    spec.num_classes = 8;
    spec.train_fraction = 0.04;
    spec.seed = 11;
    dataset = new Dataset(Dataset::build(spec));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    RunContext ctx;
  };
  Env make_env(std::uint64_t host_bytes = 12ull << 20) {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 40.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(host_bytes);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), nullptr};
    return env;
  }

  CommonTrainConfig common() {
    CommonTrainConfig c;
    c.model.kind = ModelKind::kSage;
    c.model.hidden_dim = 16;
    c.sampler.fanouts = {10, 10};
    c.batch_seeds = 8;
    return c;
  }

  double warm_epoch_seconds(TrainSystem& system) {
    system.run_epoch(100);  // warm-up
    return system.run_epoch(0).epoch_seconds;
  }
};
Dataset* IntegrationFixture::dataset = nullptr;

TEST_F(IntegrationFixture, GnnDriveBeatsPygPlusUnderContention) {
  // The paper's headline: under memory pressure GNNDrive-GPU is several
  // times faster than PyG+. Assert a conservative 2x.
  //
  // Sanitizer slowdown shifts the compute/I/O balance (compute runs at
  // instrumented speed, the simulated devices on wall-clock), compressing
  // the speedup this test asserts — skip the ratio check there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "wall-clock speedup ratio; sanitizer slowdown distorts it";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  GTEST_SKIP() << "wall-clock speedup ratio; sanitizer slowdown distorts it";
#endif
#endif
  auto env1 = make_env();
  GnnDriveConfig gd_cfg;
  gd_cfg.common = common();
  GnnDrive gnndrive(env1.ctx, gd_cfg);
  const double gd = warm_epoch_seconds(gnndrive);

  auto env2 = make_env();
  PygPlusConfig pyg_cfg;
  pyg_cfg.common = common();
  PygPlus pyg(env2.ctx, pyg_cfg);
  const double pg = warm_epoch_seconds(pyg);

  EXPECT_GT(pg, 2.0 * gd) << "GNNDrive " << gd << "s vs PyG+ " << pg << "s";
}

TEST_F(IntegrationFixture, AsyncExtractionBeatsSyncAblation) {
  // Isolate asynchrony: one extractor, slow device, so extraction is on
  // the critical path. (With 4 extractors + light I/O, pipeline overlap
  // hides even synchronous loading — which is itself by design.)
  const auto run_with_depth = [&](unsigned depth) {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 150.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(12ull << 20);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), nullptr};
    GnnDriveConfig cfg;
    cfg.common = common();
    cfg.num_extractors = 1;
    cfg.ring_depth = depth;
    // Bare Mb reserve: the buffer cannot hold the whole graph, so every
    // epoch performs real loads (capacity misses) that depth must hide.
    cfg.feature_buffer_scale = 0.01;
    GnnDrive system(env.ctx, cfg);
    return warm_epoch_seconds(system);
  };
  const double async_s = run_with_depth(128);
  const double sync_s = run_with_depth(1);
  EXPECT_GT(sync_s, 2.0 * async_s)
      << "async " << async_s << "s vs sync " << sync_s << "s";
}

TEST_F(IntegrationFixture, DirectIoSparesPageCacheBufferedDoesNot) {
  auto env1 = make_env();
  GnnDriveConfig cfg;
  cfg.common = common();
  GnnDrive direct(env1.ctx, cfg);
  direct.run_epoch(0);
  const auto& lay = dataset->layout();
  const auto count_feature_pages = [&](PageCache& cache) {
    std::uint64_t n = 0;
    for (std::uint64_t p = lay.features_offset / kPageSize + 1;
         p < (lay.features_offset + lay.features_bytes - 1) / kPageSize;
         ++p) {
      if (cache.contains_page(p)) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_feature_pages(*env1.cache), 0u);

  auto env2 = make_env();
  cfg.direct_io = false;
  GnnDrive buffered(env2.ctx, cfg);
  buffered.run_epoch(0);
  EXPECT_GT(count_feature_pages(*env2.cache), 0u);
}

TEST_F(IntegrationFixture, SampleOnlyFasterThanFullPipelineSampling) {
  // GNNDrive's "-all" sampling time stays within a small factor of
  // "-only" (the paper's Fig. 2 for GNNDrive); PyG+'s blows up.
  auto run_sampling = [&](const char* which, bool sample_only) {
    auto env = make_env();
    CommonTrainConfig c = common();
    c.sample_only = sample_only;
    if (std::string(which) == "gnndrive") {
      GnnDriveConfig cfg;
      cfg.common = c;
      GnnDrive system(env.ctx, cfg);
      system.run_epoch(100);
      return system.run_epoch(0).sample_seconds;
    }
    PygPlusConfig cfg;
    cfg.common = c;
    PygPlus system(env.ctx, cfg);
    system.run_epoch(100);
    return system.run_epoch(0).sample_seconds;
  };
  const double gd_only = run_sampling("gnndrive", true);
  const double gd_all = run_sampling("gnndrive", false);
  const double pyg_only = run_sampling("pyg", true);
  const double pyg_all = run_sampling("pyg", false);
  // Contention ratio: PyG+ suffers far more than GNNDrive.
  EXPECT_GT(pyg_all / pyg_only, 2.0 * (gd_all / std::max(gd_only, 1e-9)));
}

TEST_F(IntegrationFixture, ExtractionCountsMatchDeviceTraffic) {
  // Every feature-buffer load is delivered by exactly one coalesced read
  // segment, and each segment is one direct SSD read (plus topology faults
  // through the page cache). With coalescing, reads sit well below loads.
  auto env = make_env(64ull << 20);  // ample memory: topo fully cached
  GnnDriveConfig cfg;
  cfg.common = common();
  GnnDrive system(env.ctx, cfg);
  system.run_epoch(100);  // warm: topology resident
  env.ssd->reset_stats();
  const auto loads_before = system.feature_buffer().stats().loads;
  const EpochStats stats = system.run_epoch(0);
  const auto loads = system.feature_buffer().stats().loads - loads_before;
  const auto reads = env.ssd->stats().reads;
  EXPECT_EQ(stats.obs.io_rows, loads);  // every load rode exactly one segment
  EXPECT_LE(stats.obs.io_segments, loads);
  EXPECT_GE(reads, stats.obs.io_segments);  // one SSD read per segment
  EXPECT_LE(reads, stats.obs.io_segments + 200);  // residual topo faults
}

}  // namespace
}  // namespace gnndrive
