// Simulated GPU: device-memory accounting, asynchronous copy engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "gpu/gpu.hpp"

namespace gnndrive {
namespace {

GpuConfig small_cfg() {
  GpuConfig cfg;
  cfg.device_memory_bytes = 1 << 20;
  cfg.pcie_bandwidth_mb_s = 1000.0;
  cfg.copy_overhead_us = 50.0;
  return cfg;
}

TEST(Gpu, AllocFreeAccounting) {
  GpuDevice gpu(small_cfg());
  gpu.alloc(1000, "a");
  EXPECT_EQ(gpu.allocated(), 1000u);
  gpu.free(1000);
  EXPECT_EQ(gpu.allocated(), 0u);
}

TEST(Gpu, OverCommitThrowsDeviceOOM) {
  GpuDevice gpu(small_cfg());
  gpu.alloc(900 * 1024, "big");
  EXPECT_THROW(gpu.alloc(200 * 1024, "more"), SimOutOfMemory);
}

TEST(Gpu, DeviceAllocRaii) {
  GpuDevice gpu(small_cfg());
  {
    DeviceAlloc a(gpu, 4096, "scoped");
    EXPECT_EQ(gpu.allocated(), 4096u);
  }
  EXPECT_EQ(gpu.allocated(), 0u);
}

TEST(Gpu, AsyncCopyMovesData) {
  GpuDevice gpu(small_cfg());
  std::vector<std::uint8_t> src(4096, 0x5A);
  std::vector<std::uint8_t> dst(4096, 0);
  std::atomic<bool> done{false};
  gpu.memcpy_h2d_async(dst.data(), src.data(), 4096, [&] { done = true; });
  gpu.sync();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 4096), 0);
}

TEST(Gpu, SyncCopyTakesModeledTime) {
  GpuDevice gpu(small_cfg());
  std::vector<std::uint8_t> src(512 * 1024);
  std::vector<std::uint8_t> dst(512 * 1024);
  const TimePoint t0 = Clock::now();
  gpu.memcpy_h2d_sync(dst.data(), src.data(), src.size());
  const double elapsed = to_seconds(Clock::now() - t0);
  // 512 KiB at 1000 MB/s = ~512 us, plus 50 us overhead.
  EXPECT_GE(elapsed, 500e-6);
}

TEST(Gpu, CopiesSerializeOnDmaEngine) {
  GpuDevice gpu(small_cfg());
  std::vector<std::uint8_t> buf(512);
  const TimePoint t0 = Clock::now();
  for (int i = 0; i < 8; ++i) {
    gpu.memcpy_h2d_async(buf.data(), buf.data() + 0, 0, nullptr);
  }
  gpu.sync();
  // 8 copies x 50 us launch overhead on one engine.
  EXPECT_GE(to_seconds(Clock::now() - t0), 8 * 50e-6 * 0.9);
}

TEST(Gpu, ChargeOnlyCopyHasNoDataMovement) {
  GpuDevice gpu(small_cfg());
  const TimePoint t0 = Clock::now();
  gpu.charge_h2d_sync(100 * 1024);
  EXPECT_GE(to_seconds(Clock::now() - t0), 100e-6);
}

TEST(Gpu, LaunchRunsInline) {
  GpuDevice gpu(small_cfg());
  int x = 0;
  gpu.launch([&] { x = 7; });
  EXPECT_EQ(x, 7);
}

TEST(Gpu, TelemetryRecordsGpuBusy) {
  Telemetry tel(10.0);
  tel.start();
  GpuDevice gpu(small_cfg(), &tel);
  gpu.launch([] {
    const TimePoint until = Clock::now() + std::chrono::milliseconds(5);
    while (Clock::now() < until) {
    }
  });
  EXPECT_GT(tel.total_seconds(TraceCat::kGpuBusy), 4e-3);
}

}  // namespace
}  // namespace gnndrive
