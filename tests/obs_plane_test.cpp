// Telemetry plane: time-series sampler (ring, windows, lease lifecycle),
// Prometheus/JSON exposition, bottleneck attribution (synthetic snapshot
// pairs and real pipeline runs), SLO watcher transitions, and the HTTP
// endpoint — including liveness while training and serving run concurrently.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/attribution.hpp"
#include "obs/exposition.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {
namespace {

// -- Minimal JSON validator ---------------------------------------------------
// Structural parser covering the exposition grammar (objects, arrays,
// strings, numbers, bare literals). Rejects trailing garbage.
struct JsonParser {
  const char* p;
  const char* end;
  explicit JsonParser(const std::string& s)
      : p(s.data()), end(s.data() + s.size()) {}
  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool value() {
    ws();
    if (p >= end) return false;
    if (*p == '{') return object();
    if (*p == '[') return array();
    if (*p == '"') return string();
    return number_or_literal();
  }
  bool object() {
    ++p;
    ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++p;
    ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') ++p;
      ++p;
    }
    if (p >= end) return false;
    ++p;
    return true;
  }
  bool number_or_literal() {
    const char* s = p;
    while (p < end && (std::isalnum(static_cast<unsigned char>(*p)) ||
                       *p == '-' || *p == '+' || *p == '.')) {
      ++p;
    }
    return p > s;
  }
  bool parse() {
    if (!value()) return false;
    ws();
    return p == end;
  }
};

// -- Prometheus text-format validator -----------------------------------------
// Line-level check of format 0.0.4: every line is a "# TYPE"/"# HELP"
// comment or `name{labels} value` with a well-formed metric name and a
// parseable float value; the exposition must end with a newline.
bool valid_name_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

::testing::AssertionResult prometheus_text_valid(const std::string& text) {
  if (text.empty() || text.back() != '\n') {
    return ::testing::AssertionFailure() << "missing trailing newline";
  }
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) != 0 && line.rfind("# HELP ", 0) != 0) {
        return ::testing::AssertionFailure() << "bad comment: " << line;
      }
      continue;
    }
    std::size_t i = 0;
    if (!valid_name_char(line[0], true)) {
      return ::testing::AssertionFailure() << "bad name start: " << line;
    }
    while (i < line.size() && valid_name_char(line[i], false)) ++i;
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) {
        return ::testing::AssertionFailure() << "unclosed labels: " << line;
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return ::testing::AssertionFailure() << "no value separator: " << line;
    }
    const char* vbegin = line.c_str() + i + 1;
    char* vend = nullptr;
    std::strtod(vbegin, &vend);
    if (vend == vbegin || *vend != '\0') {
      return ::testing::AssertionFailure() << "bad value: " << line;
    }
  }
  return ::testing::AssertionSuccess();
}

// -- Time-series sampler ------------------------------------------------------

TEST(TimeSeries, RingWrapKeepsNewestSamples) {
  MetricsRegistry reg;
  TimeSeriesConfig cfg;
  cfg.capacity = 4;
  TimeSeriesSampler ts(&reg, nullptr, cfg);
  EXPECT_EQ(ts.sample_count(), 0u);
  TimeSeriesSample latest;
  EXPECT_FALSE(ts.latest(&latest));

  for (int i = 0; i < 10; ++i) {
    reg.counter("c").add(1);
    ts.tick();
  }
  EXPECT_EQ(ts.sample_count(), 10u);
  const auto v = ts.samples();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v.front().seq, 6u);
  EXPECT_EQ(v.back().seq, 9u);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_EQ(v[i].seq, v[i - 1].seq + 1);
    EXPECT_GE(v[i].t_seconds, v[i - 1].t_seconds);
  }
  ASSERT_TRUE(ts.latest(&latest));
  EXPECT_EQ(latest.seq, 9u);
  ASSERT_EQ(latest.snap.counters.size(), 1u);
  EXPECT_EQ(latest.snap.counters[0].second, 10u);
}

TEST(TimeSeries, CounterWindowDeltaAndRate) {
  MetricsRegistry reg;
  TimeSeriesSampler ts(&reg, nullptr);
  Counter& c = reg.counter("io.reads");
  ts.tick();
  c.add(10);
  ts.tick();
  c.add(90);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ts.tick();

  // Wide window: bounded by the oldest retained sample (counter at 0).
  const auto wide = ts.counter_window("io.reads", 60.0);
  ASSERT_TRUE(wide.valid);
  EXPECT_EQ(wide.first, 0u);
  EXPECT_EQ(wide.last, 100u);
  EXPECT_EQ(wide.delta, 100u);
  ASSERT_GT(wide.dt_seconds, 0.0);
  EXPECT_NEAR(wide.rate_per_s,
              static_cast<double>(wide.delta) / wide.dt_seconds, 1e-9);

  // Window narrower than one tick: falls back to the second-newest sample.
  const auto narrow = ts.counter_window("io.reads", 0.0);
  ASSERT_TRUE(narrow.valid);
  EXPECT_EQ(narrow.first, 10u);
  EXPECT_EQ(narrow.delta, 90u);

  EXPECT_FALSE(ts.counter_window("no.such.series", 60.0).valid);
}

TEST(TimeSeries, GaugeWindowMeanMaxLast) {
  MetricsRegistry reg;
  TimeSeriesSampler ts(&reg, nullptr);
  Gauge& g = reg.gauge("q.depth");
  g.set(2);
  ts.tick();
  g.set(10);
  ts.tick();
  g.set(4);
  ts.tick();

  const auto w = ts.gauge_window("q.depth", 60.0);
  ASSERT_TRUE(w.valid);
  EXPECT_NEAR(w.mean, (2.0 + 10.0 + 4.0) / 3.0, 1e-9);
  EXPECT_EQ(w.max, 10);
  EXPECT_EQ(w.last, 4);
  EXPECT_FALSE(ts.gauge_window("no.such.gauge", 60.0).valid);
}

TEST(TimeSeries, HistogramWindowIsBucketDiff) {
  MetricsRegistry reg;
  TimeSeriesSampler ts(&reg, nullptr);
  ConcurrentHistogram& h = reg.histogram("lat.us");
  ts.tick();
  for (int i = 0; i < 3; ++i) h.add_us(100.0);
  ts.tick();
  for (int i = 0; i < 5; ++i) h.add_us(500.0);
  ts.tick();

  const LatencyHistogram wide = ts.histogram_window("lat.us", 60.0);
  EXPECT_EQ(wide.count(), 8u);
  EXPECT_NEAR(wide.sum_us(), 3 * 100.0 + 5 * 500.0, 1.0);

  // Narrow window: only the last inter-tick batch of samples.
  const LatencyHistogram narrow = ts.histogram_window("lat.us", 0.0);
  EXPECT_EQ(narrow.count(), 5u);
  EXPECT_NEAR(narrow.sum_us(), 5 * 500.0, 1.0);

  EXPECT_EQ(ts.histogram_window("no.such.hist", 60.0).count(), 0u);
}

TEST(TimeSeries, LeaseLifecycleStartsAndStopsThread) {
  MetricsRegistry reg;
  TimeSeriesConfig cfg;
  cfg.interval_ms = 2.0;
  TimeSeriesSampler ts(&reg, nullptr, cfg);
  EXPECT_FALSE(ts.running());

  ts.retain();
  EXPECT_TRUE(ts.running());
  EXPECT_GE(ts.sample_count(), 1u);  // retain takes an immediate sample
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_GE(ts.sample_count(), 5u);  // the thread is actually ticking

  // Nested leases keep one thread alive.
  ts.retain();
  ts.release();
  EXPECT_TRUE(ts.running());
  const std::uint64_t before = ts.sample_count();
  ts.release();
  EXPECT_FALSE(ts.running());
  EXPECT_GT(ts.sample_count(), before);  // final sample closes the window
}

TEST(TimeSeries, BackToBackLeasesDoNotDeadlock) {
  // Regression: consecutive run_epoch calls do release-then-retain in quick
  // succession; joining the previous sampling thread must never happen
  // under the lock that thread needs to observe its stop flag.
  MetricsRegistry reg;
  TimeSeriesConfig cfg;
  cfg.interval_ms = 1.0;
  TimeSeriesSampler ts(&reg, nullptr, cfg);
  for (int i = 0; i < 200; ++i) {
    SamplerLease lease(&ts);
    EXPECT_TRUE(ts.running());
  }
  EXPECT_FALSE(ts.running());
  EXPECT_GE(ts.sample_count(), 400u);  // one tick on retain + one on release
}

TEST(TimeSeries, DisabledSamplerIsANoOp) {
  MetricsRegistry reg;
  TimeSeriesSampler ts(&reg, nullptr);
  ts.set_enabled(false);
  ts.tick();
  EXPECT_EQ(ts.sample_count(), 0u);
  {
    SamplerLease lease(&ts);
    EXPECT_FALSE(ts.running());  // leases are counted but no thread starts
    EXPECT_EQ(ts.sample_count(), 0u);
  }
  ts.set_enabled(true);
  ts.tick();
  EXPECT_EQ(ts.sample_count(), 1u);
  SamplerLease null_lease(nullptr);  // null sampler is harmless
}

TEST(TimeSeries, OnTickHookSeesTheNewSample) {
  MetricsRegistry reg;
  TimeSeriesSampler ts(&reg, nullptr);
  std::uint64_t seen = 0;
  ts.set_on_tick(
      [&seen](const TimeSeriesSampler& s) { seen = s.sample_count(); });
  ts.tick();
  EXPECT_EQ(seen, 1u);
  ts.tick();
  EXPECT_EQ(seen, 2u);
}

TEST(TimeSeries, TickMirrorsGaugesAsTraceCounterTracks) {
  Telemetry tel;
  tel.set_tracing(true);
  tel.metrics()->gauge("fb.standby").set(7);
  tel.metrics()->gauge("pipeline.extract_q.depth").set(3);
  tel.sampler()->tick();
  const std::string json = tel.tracer()->chrome_trace_json();
  EXPECT_NE(json.find("fb.standby"), std::string::npos);
  EXPECT_NE(json.find("pipeline.extract_q.depth"), std::string::npos);
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse());
}

// -- Histogram windowing primitives -------------------------------------------

TEST(HistogramWindowing, ResetAndDiffSince) {
  LatencyHistogram a;
  for (int i = 0; i < 5; ++i) a.add_us(100.0);
  LatencyHistogram b = a;
  for (int i = 0; i < 7; ++i) b.add_us(900.0);

  const LatencyHistogram d = b.diff_since(a);
  EXPECT_EQ(d.count(), 7u);
  EXPECT_NEAR(d.sum_us(), 7 * 900.0, 1.0);
  EXPECT_GE(d.percentile_us(0.5), 500.0);

  b.reset();
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.sum_us(), 0.0);
  EXPECT_EQ(b.max_us(), 0.0);

  ConcurrentHistogram ch;
  ch.add_us(50.0);
  ch.add_us(150.0);
  EXPECT_EQ(ch.count(), 2u);
  ch.reset();
  EXPECT_EQ(ch.count(), 0u);
  EXPECT_EQ(ch.snapshot().count(), 0u);
}

// -- Prometheus / JSON exposition ---------------------------------------------

TEST(Exposition, MetricNameSanitization) {
  EXPECT_EQ(prometheus_metric_name("io.coalesce.rows"), "io_coalesce_rows");
  EXPECT_EQ(prometheus_metric_name("stage.train.us"), "stage_train_us");
  EXPECT_EQ(prometheus_metric_name("a-b/c"), "a_b_c");
  EXPECT_EQ(prometheus_metric_name("9lives"), "_9lives");
}

TEST(Exposition, LabelValueEscaping) {
  EXPECT_EQ(prometheus_escape_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");
}

TEST(Exposition, PrometheusRenderFormat) {
  MetricsRegistry reg;
  reg.counter("io.coalesce.rows").add(5);
  Gauge& g = reg.gauge("q.depth");
  g.set(7);
  g.set(3);
  ConcurrentHistogram& h = reg.histogram("lat.us");
  for (int i = 0; i < 7; ++i) h.add_us(100.0 * (i + 1));

  const std::string text = render_prometheus(reg.snapshot());
  EXPECT_TRUE(prometheus_text_valid(text));
  EXPECT_NE(text.find("# TYPE io_coalesce_rows_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("io_coalesce_rows_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE q_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("q_depth 3"), std::string::npos);
  EXPECT_NE(text.find("q_depth_max 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 7"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 7"), std::string::npos);

  // The bucket ladder must be cumulative (non-decreasing counts).
  std::size_t pos = 0;
  long long prev = -1;
  int buckets = 0;
  const std::string key = "lat_us_bucket{le=\"";
  while ((pos = text.find(key, pos)) != std::string::npos) {
    const std::size_t sp = text.find("} ", pos);
    ASSERT_NE(sp, std::string::npos);
    const long long v = std::atoll(text.c_str() + sp + 2);
    EXPECT_GE(v, prev);
    prev = v;
    ++buckets;
    pos = sp;
  }
  EXPECT_GT(buckets, 2);
  EXPECT_EQ(prev, 7);  // the +Inf bucket equals _count
}

TEST(Exposition, PrometheusLabelsAttachToEverySeries) {
  MetricsRegistry reg;
  reg.counter("io.coalesce.rows").add(5);
  const std::string text =
      render_prometheus(reg.snapshot(), {{"job", "a\"b\\c\nd"}});
  EXPECT_TRUE(prometheus_text_valid(text));
  EXPECT_NE(text.find("io_coalesce_rows_total{job=\"a\\\"b\\\\c\\nd\"} 5"),
            std::string::npos);
}

TEST(Exposition, VarsJsonParsesAndEscapes) {
  MetricsRegistry reg;
  reg.counter("fb.loads").add(7);
  reg.gauge("fb.standby").set(42);
  reg.histogram("stage.train.us").add_us(250.0);
  const std::string json = render_vars_json(reg.snapshot());
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse()) << json;
  EXPECT_NE(json.find("\"fb.loads\""), std::string::npos);
  EXPECT_NE(json.find("\"fb.standby\""), std::string::npos);
  EXPECT_NE(json.find("\"stage.train.us\""), std::string::npos);

  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// -- Bottleneck attribution over synthetic snapshot pairs ---------------------

TEST(Attribution, SyntheticIoCongestionNamesTheSsd) {
  MetricsRegistry reg;
  const auto begin = reg.snapshot();
  // 1.9 s of device busy time over a 1 s window with 2 channels: 95%
  // utilized, while the trainer used 0.1 s (10%).
  reg.counter("ssd.busy_us").add(1'900'000);
  reg.gauge("ssd.pending").set(12);
  reg.histogram("stage.train.us").add_us(100'000.0);
  const auto end = reg.snapshot();

  AttributionConfig cfg;
  cfg.ssd_channels = 2;
  BottleneckAttributor at(cfg);
  const AttributionReport rep = at.attribute(begin, end, 1.0, "test");
  EXPECT_EQ(rep.verdict, AttributionReport::Verdict::kIoCongested)
      << rep.summary();
  EXPECT_EQ(rep.binding, "ssd");
  ASSERT_FALSE(rep.ranked.empty());
  EXPECT_EQ(rep.ranked.front().resource, "ssd");
  EXPECT_NEAR(rep.ranked.front().utilization, 0.95, 0.01);
  EXPECT_EQ(rep.summary().rfind("I/O-congested:", 0), 0u) << rep.summary();
  EXPECT_STREQ(AttributionReport::verdict_name(rep.verdict), "io_congested");

  const std::string json = rep.to_json();
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse()) << json;
  EXPECT_NE(json.find("\"verdict\":\"io_congested\""), std::string::npos);
  EXPECT_NE(json.find("\"binding\":\"ssd\""), std::string::npos);
}

TEST(Attribution, SyntheticThrashingCacheNamesMemoryContention) {
  MetricsRegistry reg;
  const auto begin = reg.snapshot();
  // 95% of misses force an eviction and fault stalls ate 60% of the window:
  // the buffered-I/O contention signature (working set far beyond cache
  // capacity, pages recycling under the accessor).
  reg.counter("pagecache.hits").add(100);
  reg.counter("pagecache.misses").add(400);
  reg.counter("pagecache.evictions").add(380);
  reg.counter("pagecache.fault_wait_us").add(600'000);
  const auto end = reg.snapshot();

  BottleneckAttributor at;
  const AttributionReport rep = at.attribute(begin, end, 1.0, "test");
  EXPECT_EQ(rep.verdict, AttributionReport::Verdict::kMemoryContended)
      << rep.summary();
  EXPECT_EQ(rep.binding, "pagecache");
  ASSERT_FALSE(rep.ranked.empty());
  EXPECT_EQ(rep.ranked.front().resource, "pagecache");
  EXPECT_EQ(rep.summary().rfind("memory-contended:", 0), 0u) << rep.summary();
}

TEST(Attribution, ColdCacheMissesAreNotContention) {
  MetricsRegistry reg;
  const auto begin = reg.snapshot();
  // A cold cache misses everything once but evicts nothing: activity and
  // even some fault time, yet nothing recycles — not contention.
  reg.counter("pagecache.misses").add(400);
  reg.counter("pagecache.fault_wait_us").add(300'000);
  const auto end = reg.snapshot();

  BottleneckAttributor at;
  const AttributionReport rep = at.attribute(begin, end, 1.0, "test");
  EXPECT_EQ(rep.verdict, AttributionReport::Verdict::kBalanced)
      << rep.summary();
  EXPECT_NE(rep.verdict, AttributionReport::Verdict::kMemoryContended);
}

TEST(Attribution, SyntheticBusyTrainerIsComputeBound) {
  MetricsRegistry reg;
  const auto begin = reg.snapshot();
  reg.histogram("stage.train.us").add_us(900'000.0);
  reg.counter("ssd.busy_us").add(100'000);
  const auto end = reg.snapshot();

  AttributionConfig cfg;
  cfg.ssd_channels = 2;
  BottleneckAttributor at(cfg);
  const AttributionReport rep = at.attribute(begin, end, 1.0, "test");
  EXPECT_EQ(rep.verdict, AttributionReport::Verdict::kComputeBound)
      << rep.summary();
  EXPECT_EQ(rep.binding, "trainer");
}

TEST(Attribution, QuietWindowIsIdleAndZeroDtIsSafe) {
  MetricsRegistry reg;
  const auto snap = reg.snapshot();
  BottleneckAttributor at;
  const AttributionReport quiet = at.attribute(snap, snap, 1.0, "test");
  EXPECT_EQ(quiet.verdict, AttributionReport::Verdict::kIdle);
  EXPECT_EQ(std::string(AttributionReport::verdict_name(quiet.verdict)),
            "idle");

  const AttributionReport degenerate = at.attribute(snap, snap, 0.0, "test");
  EXPECT_EQ(degenerate.verdict, AttributionReport::Verdict::kIdle);
  const std::string json = degenerate.to_json();
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse()) << json;
}

TEST(Attribution, PublishStoresLatestReport) {
  BottleneckAttributor at;
  EXPECT_FALSE(at.has_report());
  AttributionReport rep;
  rep.verdict = AttributionReport::Verdict::kIoCongested;
  rep.binding = "ssd";
  rep.scope = "epoch 3";
  at.publish(rep);
  ASSERT_TRUE(at.has_report());
  EXPECT_EQ(at.latest().verdict, AttributionReport::Verdict::kIoCongested);
  EXPECT_EQ(at.latest().scope, "epoch 3");
}

TEST(Attribution, WindowAttributionUsesTheSampler) {
  MetricsRegistry reg;
  TimeSeriesSampler ts(&reg, nullptr);
  BottleneckAttributor at;

  // Fewer than two samples: an explicitly idle "window" report.
  EXPECT_EQ(at.attribute_window(ts, 2.0).scope, "window");
  EXPECT_EQ(at.attribute_window(ts, 2.0).verdict,
            AttributionReport::Verdict::kIdle);

  ts.tick();
  reg.counter("ssd.busy_us").add(500'000);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ts.tick();
  const AttributionReport rep = at.attribute_window(ts, 60.0);
  EXPECT_EQ(rep.scope, "window");
  EXPECT_GT(rep.window_seconds, 0.0);
  EXPECT_NE(rep.verdict, AttributionReport::Verdict::kIdle);
}

// -- SLO watcher --------------------------------------------------------------

TEST(Slo, CounterRateRuleFiresAndResolves) {
  MetricsRegistry reg;
  TimeSeriesSampler ts(&reg, nullptr);
  SloWatcher slo;
  SloRule rule;
  rule.name = "fault_rate";
  rule.kind = SloRule::Kind::kCounterRate;
  rule.metric = "faults";
  rule.threshold = 10.0;  // events/s
  rule.window_s = 0.03;   // narrower than the sleeps below
  slo.add_rule(rule);
  EXPECT_EQ(slo.rule_count(), 1u);

  // No samples yet: unmeasurable, nothing fires.
  slo.evaluate(ts);
  EXPECT_EQ(slo.firing_count(), 0u);

  ts.tick();
  reg.counter("faults").add(1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(55));
  ts.tick();
  slo.evaluate(ts);
  EXPECT_EQ(slo.firing_count(), 1u);
  auto alerts = slo.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].firing);
  EXPECT_EQ(alerts[0].rule, "fault_rate");
  EXPECT_GT(alerts[0].value, rule.threshold);
  EXPECT_EQ(alerts[0].fire_count, 1u);

  // A quiet window (no new events between the last two ticks) resolves it.
  std::this_thread::sleep_for(std::chrono::milliseconds(55));
  ts.tick();
  slo.evaluate(ts);
  EXPECT_EQ(slo.firing_count(), 0u);
  alerts = slo.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_FALSE(alerts[0].firing);
  EXPECT_EQ(alerts[0].fire_count, 1u);

  const std::string json = slo.to_json();
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse()) << json;
}

TEST(Slo, HistogramQuantileRuleWatchesWindowedTail) {
  MetricsRegistry reg;
  TimeSeriesSampler ts(&reg, nullptr);
  SloWatcher slo;
  SloRule rule;
  rule.name = "serve_p99_slo";
  rule.kind = SloRule::Kind::kHistogramQuantile;
  rule.metric = "serve.latency.us";
  rule.quantile = 0.99;
  rule.threshold = 5000.0;
  rule.window_s = 60.0;
  slo.add_rule(rule);

  ts.tick();
  ConcurrentHistogram& h = reg.histogram("serve.latency.us");
  for (int i = 0; i < 100; ++i) h.add_us(10'000.0);
  ts.tick();
  slo.evaluate(ts);
  EXPECT_EQ(slo.firing_count(), 1u);
  const auto alerts = slo.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_GT(alerts[0].value, 5000.0);
}

TEST(Slo, AddRuleReplacesByName) {
  SloWatcher slo;
  SloRule rule;
  rule.name = "r";
  rule.kind = SloRule::Kind::kGaugeLevel;
  rule.metric = "g";
  rule.threshold = 5.0;
  slo.add_rule(rule);
  rule.threshold = 50.0;
  slo.add_rule(rule);
  EXPECT_EQ(slo.rule_count(), 1u);
  const auto alerts = slo.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].threshold, 50.0);
}

TEST(Slo, TelemetryWiresWatcherIntoSamplerTicks) {
  // Telemetry's sampler evaluates its SLO watcher on every tick — a gauge
  // rule fires and resolves with no explicit evaluate() calls.
  Telemetry tel;
  SloRule rule;
  rule.name = "queue_depth_high";
  rule.kind = SloRule::Kind::kGaugeLevel;
  rule.metric = "q.depth";
  rule.threshold = 5.0;
  rule.window_s = 60.0;
  tel.slo()->add_rule(rule);

  tel.metrics()->gauge("q.depth").set(10);
  tel.sampler()->tick();  // first sample: windows still unbounded
  tel.sampler()->tick();
  EXPECT_EQ(tel.slo()->firing_count(), 1u);

  tel.metrics()->gauge("q.depth").set(0);
  tel.sampler()->tick();
  EXPECT_EQ(tel.slo()->firing_count(), 0u);
}

// -- HTTP endpoint ------------------------------------------------------------

TEST(ObsServer, RoutesServeExpectedFormats) {
  Telemetry tel;
  tel.metrics()->counter("io.reads").add(3);
  tel.metrics()->gauge("fb.standby").set(9);
  tel.metrics()->histogram("lat.us").add_us(120.0);

  ObsServer server(tel.metrics(), tel.sampler(), tel.attributor(), tel.slo());
  std::string body;
  std::string ctype;

  EXPECT_EQ(server.handle("/healthz", &body, &ctype), 200);
  EXPECT_EQ(body, "ok\n");

  EXPECT_EQ(server.handle("/metrics", &body, &ctype), 200);
  EXPECT_NE(ctype.find("text/plain"), std::string::npos);
  EXPECT_TRUE(prometheus_text_valid(body));
  EXPECT_NE(body.find("io_reads_total 3"), std::string::npos);

  EXPECT_EQ(server.handle("/vars", &body, &ctype), 200);
  EXPECT_NE(ctype.find("application/json"), std::string::npos);
  {
    JsonParser parser(body);
    EXPECT_TRUE(parser.parse()) << body;
  }
  EXPECT_NE(body.find("\"alerts\""), std::string::npos);

  // Nothing running: not ready.
  EXPECT_EQ(server.handle("/readyz", &body, &ctype), 503);
  tel.metrics()->gauge("pipeline.running").set(1);
  EXPECT_EQ(server.handle("/readyz", &body, &ctype), 200);
  {
    JsonParser parser(body);
    EXPECT_TRUE(parser.parse()) << body;
  }
  tel.metrics()->gauge("pipeline.running").set(0);

  // /attribution falls back to a live window over the sampler.
  tel.sampler()->tick();
  tel.sampler()->tick();
  EXPECT_EQ(server.handle("/attribution", &body, &ctype), 200);
  {
    JsonParser parser(body);
    EXPECT_TRUE(parser.parse()) << body;
  }
  EXPECT_NE(body.find("\"verdict\""), std::string::npos);

  EXPECT_EQ(server.handle("/no/such/route", &body, &ctype), 404);
}

TEST(ObsServer, ServesOverRealSockets) {
  Telemetry tel;
  tel.metrics()->counter("io.reads").add(42);
  ObsServer server(tel.metrics(), tel.sampler(), tel.attributor(), tel.slo());
  ASSERT_TRUE(server.start());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);
  // Listening holds a sampler lease: the time-series moves while idle.
  EXPECT_TRUE(tel.sampler()->running());

  HttpResponse resp;
  ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/healthz", &resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "ok\n");

  ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/metrics", &resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(prometheus_text_valid(resp.body));
  EXPECT_NE(resp.body.find("io_reads_total 42"), std::string::npos);

  ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/readyz", &resp));
  EXPECT_EQ(resp.status, 503);

  ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/nope", &resp));
  EXPECT_EQ(resp.status, 404);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(tel.sampler()->running());
}

// -- Pipeline + serve integration ---------------------------------------------

struct ObsPlaneFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(128)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    std::unique_ptr<Telemetry> telemetry;
    RunContext ctx;
  };
  Env make_env(const SsdConfig& ssd_cfg, std::uint64_t mem_bytes) {
    Env env;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(mem_bytes);
    env.telemetry = std::make_unique<Telemetry>();
    env.ssd->set_telemetry(env.telemetry.get());
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd,
                                            env.telemetry.get());
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), env.telemetry.get()};
    return env;
  }
  Env make_env() {
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    return make_env(ssd_cfg, 64ull << 20);
  }

  GnnDriveConfig base_config() {
    GnnDriveConfig cfg;
    cfg.common.model.kind = ModelKind::kSage;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5, 5};
    cfg.common.batch_seeds = 16;
    return cfg;
  }
};
Dataset* ObsPlaneFixture::dataset = nullptr;

TEST_F(ObsPlaneFixture, EpochPopulatesLivenessGaugesAndReport) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  const EpochStats stats = system.run_epoch(0);
  ASSERT_GT(stats.result.trained_batches, 0u);

  MetricsRegistry& reg = *env.telemetry->metrics();
  EXPECT_EQ(reg.gauge("pipeline.running").value(), 0);
  EXPECT_GE(reg.gauge("pipeline.running").max(), 1);
  EXPECT_EQ(reg.gauge("pipeline.epoch").value(), 0);
  EXPECT_GE(reg.gauge("ssd.pending").max(), 1);
  EXPECT_EQ(reg.gauge("io.staging_in_use").value(), 0);
  EXPECT_GE(reg.gauge("io.staging_in_use").max(), 1);
  // Topology reads go through the (buffered) page cache.
  EXPECT_GT(reg.counter("pagecache.misses").value(), 0u);

  // The epoch leaves a published attribution report behind.
  BottleneckAttributor* at = env.telemetry->attributor();
  ASSERT_TRUE(at->has_report());
  EXPECT_EQ(at->latest().scope, "epoch 0");
  EXPECT_NE(at->latest().verdict, AttributionReport::Verdict::kIdle)
      << at->latest().summary();
  // The epoch's sampler lease left a bounded time-series behind.
  EXPECT_GE(env.telemetry->sampler()->sample_count(), 2u);
}

TEST_F(ObsPlaneFixture, CongestedConfigIsAttributedToTheSsd) {
  // Fig. 3 regime: one device channel, slow reads, ample host memory — the
  // SSD queue saturates while the (tiny) trainer idles.
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 400.0;
  ssd_cfg.bandwidth_mb_s = 100.0;
  ssd_cfg.channels = 1;
  auto env = make_env(ssd_cfg, 64ull << 20);
  // Epoch 0 runs against a cold feature buffer, so every feature comes off
  // the device (a warm epoch on the toy graph does no I/O at all).
  GnnDrive system(env.ctx, base_config());
  system.run_epoch(0);

  ASSERT_TRUE(env.telemetry->attributor()->has_report());
  const AttributionReport rep = env.telemetry->attributor()->latest();
  EXPECT_EQ(rep.scope, "epoch 0");
  EXPECT_EQ(rep.verdict, AttributionReport::Verdict::kIoCongested)
      << rep.summary();
  EXPECT_EQ(rep.binding, "ssd") << rep.summary();
}

TEST_F(ObsPlaneFixture, MemoryTightBufferedConfigIsAttributedToThePageCache) {
  // Fig. 2 regime: wide features (one 4 KiB page per node, 16 MiB total)
  // read through a page cache squeezed by a tight host budget — misses
  // evict exactly what the next access needs.
  Dataset wide = Dataset::build(toy_spec(1024));
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 400.0;
  Env env;
  env.ssd = wide.make_device(ssd_cfg);
  env.mem = std::make_unique<HostMemory>(14ull << 20);
  env.telemetry = std::make_unique<Telemetry>();
  env.ssd->set_telemetry(env.telemetry.get());
  env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd,
                                          env.telemetry.get());
  env.ctx = RunContext{&wide, env.ssd.get(), env.mem.get(), env.cache.get(),
                       env.telemetry.get()};

  GnnDriveConfig cfg = base_config();
  cfg.direct_io = false;           // features through the page cache
  cfg.staging_fraction = 0.9;      // pin most of what's left of the host
  cfg.feature_buffer_scale = 0.1;  // little cross-batch reuse in the fb
  GnnDrive system(env.ctx, cfg);
  system.run_epoch(0);

  ASSERT_TRUE(env.telemetry->attributor()->has_report());
  const AttributionReport rep = env.telemetry->attributor()->latest();
  EXPECT_EQ(rep.verdict, AttributionReport::Verdict::kMemoryContended)
      << rep.summary();
  EXPECT_EQ(rep.binding, "pagecache") << rep.summary();
}

TEST_F(ObsPlaneFixture, EndpointStaysLiveDuringTrainAndServe) {
  auto env = make_env();

  ObsServer server(env.telemetry->metrics(), env.telemetry->sampler(),
                   env.telemetry->attributor(), env.telemetry->slo());
  ASSERT_TRUE(server.start());
  HttpResponse resp;

  // Nothing running yet: alive but not ready.
  ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/readyz", &resp));
  EXPECT_EQ(resp.status, 503);

  // Standalone serving substrate sharing the pipeline's telemetry.
  FeatureBuffer fb(FeatureBufferConfig{2048, dataset->spec().feature_dim},
                   dataset->spec().num_nodes, env.telemetry.get());
  ModelConfig mc;
  mc.kind = ModelKind::kSage;
  mc.in_dim = dataset->spec().feature_dim;
  mc.hidden_dim = 16;
  mc.num_classes = dataset->spec().num_classes;
  mc.num_layers = 2;
  GnnModel model(mc);
  ServeConfig serve_cfg;
  serve_cfg.sampler.fanouts = {5, 5};
  serve_cfg.workers = 1;
  serve_cfg.max_batch = 8;
  serve_cfg.max_wait_us = 200.0;
  serve_cfg.slo.deadline_ms = 50.0;  // registers the serve p99 SLO rule
  ServeEngine engine(env.ctx, serve_cfg,
                     ServeSubstrate{&fb, &model, nullptr, 0});
  engine.start();
  EXPECT_GE(env.telemetry->slo()->rule_count(), 1u);

  // Serving alone makes the process ready.
  ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/readyz", &resp));
  EXPECT_EQ(resp.status, 200);

  GnnDrive system(env.ctx, base_config());
  std::thread trainer([&system] { system.run_epoch(0); });

  // Scrape every route while training and serving run concurrently.
  std::vector<std::future<InferResult>> futs;
  for (NodeId v = 0; v < 8; ++v) futs.push_back(engine.submit(v));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/metrics", &resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_TRUE(prometheus_text_valid(resp.body));
    ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/vars", &resp));
    EXPECT_EQ(resp.status, 200);
    JsonParser vars(resp.body);
    EXPECT_TRUE(vars.parse());
    ASSERT_TRUE(
        obs_http_get("127.0.0.1", server.port(), "/attribution", &resp));
    EXPECT_EQ(resp.status, 200);
    JsonParser attr(resp.body);
    EXPECT_TRUE(attr.parse());
    ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/readyz", &resp));
    EXPECT_EQ(resp.status, 200);
  }
  for (auto& f : futs) f.get();
  trainer.join();

  // The finished epoch published a report the endpoint now serves verbatim.
  ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/attribution", &resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"scope\":\"epoch 0\""), std::string::npos);

  engine.stop();
  ASSERT_TRUE(obs_http_get("127.0.0.1", server.port(), "/readyz", &resp));
  EXPECT_EQ(resp.status, 503);
  server.stop();
}

}  // namespace
}  // namespace gnndrive
