// Simulated SSD: data integrity, service-time model, channel overlap.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "storage/ssd.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

std::shared_ptr<MemBackend> make_image(std::uint64_t size,
                                       std::uint64_t seed = 9) {
  auto backend = std::make_shared<MemBackend>(size);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < size; ++i) {
    backend->raw()[i] = static_cast<std::uint8_t>(rng());
  }
  return backend;
}

SsdConfig fast_cfg() {
  SsdConfig cfg;
  cfg.read_latency_us = 200.0;
  cfg.write_latency_us = 100.0;
  cfg.bandwidth_mb_s = 4000.0;
  cfg.channels = 8;
  return cfg;
}

TEST(Ssd, ReadReturnsBackingBytes) {
  auto image = make_image(64 * 1024);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t buf[512];
  ssd.read_sync(1024, 512, buf);
  EXPECT_EQ(std::memcmp(buf, image->raw() + 1024, 512), 0);
}

TEST(Ssd, WriteThenReadRoundTrips) {
  auto image = make_image(64 * 1024);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t data[1024];
  for (int i = 0; i < 1024; ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  ssd.write_sync(4096, 1024, data);
  std::uint8_t readback[1024];
  ssd.read_sync(4096, 1024, readback);
  EXPECT_EQ(std::memcmp(data, readback, 1024), 0);
}

TEST(Ssd, SyncReadTakesAtLeastServiceTime) {
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t buf[512];
  const TimePoint t0 = Clock::now();
  ssd.read_sync(0, 512, buf);
  const double elapsed = to_seconds(Clock::now() - t0);
  EXPECT_GE(elapsed, 190e-6);  // ~read_latency_us
}

TEST(Ssd, ChannelsOverlapIndependentRequests) {
  // 8 concurrent 512B reads on 8 channels should take ~1 service time,
  // not 8; serialized they would take >= 1.6 ms.
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  std::vector<std::uint8_t> bufs(8 * 512);
  std::atomic<int> done{0};
  const TimePoint t0 = Clock::now();
  for (int i = 0; i < 8; ++i) {
    ssd.submit(SsdDevice::Op::kRead, i * 4096, 512, bufs.data() + i * 512,
               [&](std::int32_t) { ++done; });
  }
  ssd.drain();
  const double elapsed = to_seconds(Clock::now() - t0);
  EXPECT_EQ(done.load(), 8);
  EXPECT_LT(elapsed, 8 * 200e-6);  // strictly better than serial
}

TEST(Ssd, QueueingBeyondChannelsSerializes) {
  // 32 requests over 8 channels: at least 4 service times.
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  std::vector<std::uint8_t> bufs(32 * 512);
  const TimePoint t0 = Clock::now();
  for (int i = 0; i < 32; ++i) {
    ssd.submit(SsdDevice::Op::kRead, i * 512, 512, bufs.data() + i * 512,
               nullptr);
  }
  ssd.drain();
  const double elapsed = to_seconds(Clock::now() - t0);
  EXPECT_GE(elapsed, 4 * 200e-6 * 0.9);
}

TEST(Ssd, StatsCountRequestsAndBytes) {
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t buf[2048];
  ssd.read_sync(0, 2048, buf);
  ssd.write_sync(0, 512, buf);
  const SsdStats stats = ssd.stats();
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_read, 2048u);
  EXPECT_EQ(stats.bytes_written, 512u);
  EXPECT_GT(stats.busy_seconds, 0.0);
  ssd.reset_stats();
  EXPECT_EQ(ssd.stats().reads, 0u);
}

TEST(Ssd, ServiceTimeScalesWithLength) {
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  const auto small = ssd.service_time(SsdDevice::Op::kRead, 512);
  const auto large = ssd.service_time(SsdDevice::Op::kRead, 1 << 20);
  EXPECT_GT(large, small);
  // 1 MiB over 500 MB/s per channel ~ 2 ms extra.
  EXPECT_GT(to_seconds(large - small), 1e-3);
}

TEST(Ssd, TimeScaleMultiplier) {
  SsdConfig cfg = fast_cfg();
  cfg.time_scale = 3.0;
  auto image = make_image(4096);
  SsdDevice ssd(cfg, image);
  EXPECT_NEAR(to_seconds(ssd.service_time(SsdDevice::Op::kRead, 512)),
              3.0 * (200e-6 + 512.0 / (4000.0 / 8) * 1e-6), 1e-6);
}

TEST(FileBackend, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/gnndrive_filebackend.bin";
  auto backend = std::make_shared<FileBackend>(path, 1 << 16);
  std::uint8_t data[4096];
  for (int i = 0; i < 4096; ++i) data[i] = static_cast<std::uint8_t>(i);
  backend->write(8192, 4096, data);
  std::uint8_t readback[4096];
  backend->read(8192, 4096, readback);
  EXPECT_EQ(std::memcmp(data, readback, 4096), 0);
  EXPECT_EQ(backend->size(), 1u << 16);
}

TEST(FileBackend, WorksUnderDeviceModel) {
  const std::string path = ::testing::TempDir() + "/gnndrive_filedev.bin";
  auto backend = std::make_shared<FileBackend>(path, 1 << 16);
  std::uint8_t data[512];
  std::memset(data, 0xAB, sizeof(data));
  SsdDevice ssd(fast_cfg(), backend);
  ssd.write_sync(0, 512, data);
  std::uint8_t readback[512];
  ssd.read_sync(0, 512, readback);
  EXPECT_EQ(std::memcmp(data, readback, 512), 0);
}

TEST(FileBackend, SuccessReturnsZeroAndPartialOffsetsWork) {
  const std::string path = ::testing::TempDir() + "/gnndrive_fileerr.bin";
  auto backend = std::make_shared<FileBackend>(path, 1 << 16);
  std::uint8_t data[777];
  for (int i = 0; i < 777; ++i) data[i] = static_cast<std::uint8_t>(i * 13);
  // Odd sizes/offsets exercise the short-transfer loop boundaries.
  EXPECT_EQ(backend->write(123, 777, data), 0);
  std::uint8_t readback[777] = {};
  EXPECT_EQ(backend->read(123, 777, readback), 0);
  EXPECT_EQ(std::memcmp(data, readback, 777), 0);
}

// -- Fault injection ----------------------------------------------------------

TEST(SsdFaults, CertainEioFailsWithoutDataMovement) {
  auto image = make_image(1 << 16);
  SsdDevice ssd(fast_cfg(), image);
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.eio_probability = 1.0;
  ssd.set_fault_config(faults);

  std::uint8_t buf[512];
  std::memset(buf, 0xCD, sizeof(buf));
  EXPECT_EQ(ssd.read_sync(0, 512, buf), -EIO);
  // An injected failure never touches the caller's buffer.
  for (unsigned char b : buf) EXPECT_EQ(b, 0xCD);
  EXPECT_EQ(ssd.stats().injected_eio, 1u);

  // Runtime toggle: disabling restores normal service.
  ssd.set_fault_config(SsdFaultConfig{});
  EXPECT_EQ(ssd.read_sync(0, 512, buf), 512);
  EXPECT_EQ(std::memcmp(buf, image->raw(), 512), 0);
}

TEST(SsdFaults, BadRangesFailReadsDeterministically) {
  auto image = make_image(1 << 16);
  SsdDevice ssd(fast_cfg(), image);
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.bad_ranges.push_back({4096, 8192});
  ssd.set_fault_config(faults);

  std::uint8_t buf[512];
  // Fully inside, straddling the edge, and clean reads.
  EXPECT_EQ(ssd.read_sync(4096, 512, buf), -EIO);
  EXPECT_EQ(ssd.read_sync(8192 - 256, 512, buf), -EIO);
  EXPECT_EQ(ssd.read_sync(0, 512, buf), 512);
  EXPECT_EQ(ssd.read_sync(8192, 512, buf), 512);
  EXPECT_EQ(ssd.stats().injected_eio, 2u);
}

TEST(SsdFaults, LatencySpikesSlowButSucceed) {
  SsdConfig cfg = fast_cfg();
  cfg.read_latency_us = 300.0;
  auto image = make_image(1 << 16);
  SsdDevice ssd(cfg, image);
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.spike_probability = 1.0;
  faults.spike_multiplier = 5.0;
  ssd.set_fault_config(faults);

  std::uint8_t buf[512];
  const TimePoint t0 = Clock::now();
  EXPECT_EQ(ssd.read_sync(0, 512, buf), 512);
  const double elapsed = to_seconds(Clock::now() - t0);
  EXPECT_GE(elapsed, 2 * 300e-6);  // well beyond the un-spiked service time
  EXPECT_EQ(std::memcmp(buf, image->raw(), 512), 0);
  EXPECT_EQ(ssd.stats().injected_spikes, 1u);
}

TEST(SsdFaults, StuckRequestNeverCompletesUntilCancelled) {
  auto image = make_image(1 << 16);
  SsdDevice ssd(fast_cfg(), image);
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.stuck_probability = 1.0;
  ssd.set_fault_config(faults);

  std::uint8_t buf[512];
  std::memset(buf, 0xEE, sizeof(buf));
  std::atomic<int> completions{0};
  const std::uint64_t token =
      ssd.submit(SsdDevice::Op::kRead, 0, 512, buf,
                 [&](std::int32_t) { ++completions; });
  std::this_thread::sleep_for(from_us(5000.0));
  EXPECT_EQ(completions.load(), 0);  // far past normal service time
  EXPECT_TRUE(ssd.try_cancel(token));
  ssd.drain();  // returns: the cancelled request no longer counts
  EXPECT_EQ(completions.load(), 0);  // cancelled => callback never runs
  for (unsigned char b : buf) EXPECT_EQ(b, 0xEE);  // buffer never touched
  const SsdStats stats = ssd.stats();
  EXPECT_EQ(stats.injected_stuck, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST(SsdFaults, TryCancelFailsAfterCompletion) {
  auto image = make_image(1 << 16);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t buf[512];
  std::atomic<int> completions{0};
  const std::uint64_t token =
      ssd.submit(SsdDevice::Op::kRead, 0, 512, buf,
                 [&](std::int32_t res) {
                   EXPECT_EQ(res, 512);
                   ++completions;
                 });
  ssd.drain();
  EXPECT_EQ(completions.load(), 1);
  EXPECT_FALSE(ssd.try_cancel(token));
  EXPECT_EQ(ssd.stats().cancelled, 0u);
}

TEST(SsdFaults, SetFaultConfigRejectsBadProbabilities) {
  auto image = make_image(64 * 1024);
  SsdDevice ssd(fast_cfg(), image);
  SsdFaultConfig faults;
  faults.enabled = true;

  faults.eio_probability = -0.1;
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.eio_probability = 1.5;
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.eio_probability = std::nan("");
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.eio_probability = 0.0;

  faults.spike_probability = 2.0;
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.spike_probability = 0.0;

  faults.stuck_probability = std::nan("");
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.stuck_probability = 0.0;

  // Boundary values are legal.
  faults.eio_probability = 1.0;
  faults.spike_probability = 0.0;
  EXPECT_NO_THROW(ssd.set_fault_config(faults));
}

TEST(SsdFaults, SetFaultConfigRejectsBadMultiplierAndRanges) {
  auto image = make_image(64 * 1024);
  SsdDevice ssd(fast_cfg(), image);
  SsdFaultConfig faults;
  faults.enabled = true;

  faults.spike_multiplier = 0.5;  // would *speed up* spiked requests
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.spike_multiplier = std::nan("");
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.spike_multiplier = 20.0;

  faults.bad_ranges.push_back({4096, 4096});  // empty interval
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.bad_ranges.back() = {8192, 4096};  // inverted
  EXPECT_THROW(ssd.set_fault_config(faults), std::invalid_argument);
  faults.bad_ranges.back() = {4096, 8192};
  EXPECT_NO_THROW(ssd.set_fault_config(faults));
}

TEST(SsdFaults, RejectedConfigLeavesInstalledInjectorUntouched) {
  auto image = make_image(64 * 1024);
  SsdDevice ssd(fast_cfg(), image);
  SsdFaultConfig good;
  good.enabled = true;
  good.bad_ranges.push_back({0, 4096});
  ssd.set_fault_config(good);

  SsdFaultConfig bad = good;
  bad.eio_probability = 7.0;
  EXPECT_THROW(ssd.set_fault_config(bad), std::invalid_argument);
  // The previously armed injector still fires.
  std::uint8_t buf[512];
  EXPECT_EQ(ssd.read_sync(0, 512, buf), -EIO);

  // A disabled config skips validation entirely (it installs nothing).
  SsdFaultConfig off;
  off.enabled = false;
  off.eio_probability = 7.0;
  EXPECT_NO_THROW(ssd.set_fault_config(off));
  EXPECT_EQ(ssd.read_sync(0, 512, buf), 512);
}

TEST(SsdFaults, InjectorIsDeterministicPerSeed) {
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.seed = 1234;
  faults.eio_probability = 0.3;
  faults.spike_probability = 0.2;
  faults.stuck_probability = 0.1;
  FaultInjector a(faults);
  FaultInjector b(faults);
  for (int i = 0; i < 1000; ++i) {
    const auto da = a.decide(true, i * 512u, 512);
    const auto db = b.decide(true, i * 512u, 512);
    EXPECT_EQ(da.res, db.res);
    EXPECT_EQ(da.stuck, db.stuck);
    EXPECT_DOUBLE_EQ(da.latency_multiplier, db.latency_multiplier);
  }
}

}  // namespace
}  // namespace gnndrive
