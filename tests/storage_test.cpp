// Simulated SSD: data integrity, service-time model, channel overlap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "storage/ssd.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

std::shared_ptr<MemBackend> make_image(std::uint64_t size,
                                       std::uint64_t seed = 9) {
  auto backend = std::make_shared<MemBackend>(size);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < size; ++i) {
    backend->raw()[i] = static_cast<std::uint8_t>(rng());
  }
  return backend;
}

SsdConfig fast_cfg() {
  SsdConfig cfg;
  cfg.read_latency_us = 200.0;
  cfg.write_latency_us = 100.0;
  cfg.bandwidth_mb_s = 4000.0;
  cfg.channels = 8;
  return cfg;
}

TEST(Ssd, ReadReturnsBackingBytes) {
  auto image = make_image(64 * 1024);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t buf[512];
  ssd.read_sync(1024, 512, buf);
  EXPECT_EQ(std::memcmp(buf, image->raw() + 1024, 512), 0);
}

TEST(Ssd, WriteThenReadRoundTrips) {
  auto image = make_image(64 * 1024);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t data[1024];
  for (int i = 0; i < 1024; ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  ssd.write_sync(4096, 1024, data);
  std::uint8_t readback[1024];
  ssd.read_sync(4096, 1024, readback);
  EXPECT_EQ(std::memcmp(data, readback, 1024), 0);
}

TEST(Ssd, SyncReadTakesAtLeastServiceTime) {
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t buf[512];
  const TimePoint t0 = Clock::now();
  ssd.read_sync(0, 512, buf);
  const double elapsed = to_seconds(Clock::now() - t0);
  EXPECT_GE(elapsed, 190e-6);  // ~read_latency_us
}

TEST(Ssd, ChannelsOverlapIndependentRequests) {
  // 8 concurrent 512B reads on 8 channels should take ~1 service time,
  // not 8; serialized they would take >= 1.6 ms.
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  std::vector<std::uint8_t> bufs(8 * 512);
  std::atomic<int> done{0};
  const TimePoint t0 = Clock::now();
  for (int i = 0; i < 8; ++i) {
    ssd.submit(SsdDevice::Op::kRead, i * 4096, 512, bufs.data() + i * 512,
               [&] { ++done; });
  }
  ssd.drain();
  const double elapsed = to_seconds(Clock::now() - t0);
  EXPECT_EQ(done.load(), 8);
  EXPECT_LT(elapsed, 8 * 200e-6);  // strictly better than serial
}

TEST(Ssd, QueueingBeyondChannelsSerializes) {
  // 32 requests over 8 channels: at least 4 service times.
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  std::vector<std::uint8_t> bufs(32 * 512);
  const TimePoint t0 = Clock::now();
  for (int i = 0; i < 32; ++i) {
    ssd.submit(SsdDevice::Op::kRead, i * 512, 512, bufs.data() + i * 512,
               nullptr);
  }
  ssd.drain();
  const double elapsed = to_seconds(Clock::now() - t0);
  EXPECT_GE(elapsed, 4 * 200e-6 * 0.9);
}

TEST(Ssd, StatsCountRequestsAndBytes) {
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  std::uint8_t buf[2048];
  ssd.read_sync(0, 2048, buf);
  ssd.write_sync(0, 512, buf);
  const SsdStats stats = ssd.stats();
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_read, 2048u);
  EXPECT_EQ(stats.bytes_written, 512u);
  EXPECT_GT(stats.busy_seconds, 0.0);
  ssd.reset_stats();
  EXPECT_EQ(ssd.stats().reads, 0u);
}

TEST(Ssd, ServiceTimeScalesWithLength) {
  auto image = make_image(1 << 20);
  SsdDevice ssd(fast_cfg(), image);
  const auto small = ssd.service_time(SsdDevice::Op::kRead, 512);
  const auto large = ssd.service_time(SsdDevice::Op::kRead, 1 << 20);
  EXPECT_GT(large, small);
  // 1 MiB over 500 MB/s per channel ~ 2 ms extra.
  EXPECT_GT(to_seconds(large - small), 1e-3);
}

TEST(Ssd, TimeScaleMultiplier) {
  SsdConfig cfg = fast_cfg();
  cfg.time_scale = 3.0;
  auto image = make_image(4096);
  SsdDevice ssd(cfg, image);
  EXPECT_NEAR(to_seconds(ssd.service_time(SsdDevice::Op::kRead, 512)),
              3.0 * (200e-6 + 512.0 / (4000.0 / 8) * 1e-6), 1e-6);
}

TEST(FileBackend, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/gnndrive_filebackend.bin";
  auto backend = std::make_shared<FileBackend>(path, 1 << 16);
  std::uint8_t data[4096];
  for (int i = 0; i < 4096; ++i) data[i] = static_cast<std::uint8_t>(i);
  backend->write(8192, 4096, data);
  std::uint8_t readback[4096];
  backend->read(8192, 4096, readback);
  EXPECT_EQ(std::memcmp(data, readback, 4096), 0);
  EXPECT_EQ(backend->size(), 1u << 16);
}

TEST(FileBackend, WorksUnderDeviceModel) {
  const std::string path = ::testing::TempDir() + "/gnndrive_filedev.bin";
  auto backend = std::make_shared<FileBackend>(path, 1 << 16);
  std::uint8_t data[512];
  std::memset(data, 0xAB, sizeof(data));
  SsdDevice ssd(fast_cfg(), backend);
  ssd.write_sync(0, 512, data);
  std::uint8_t readback[512];
  ssd.read_sync(0, 512, readback);
  EXPECT_EQ(std::memcmp(data, readback, 512), 0);
}

}  // namespace
}  // namespace gnndrive
