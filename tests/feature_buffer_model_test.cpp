// Model-checking test: random single-threaded operation sequences on the
// feature buffer compared against a straightforward reference
// implementation of the Sect. 4.2 specification.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <optional>

#include "core/feature_buffer.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

/// Reference model: direct transcription of the paper's rules, no cleverness.
class ReferenceBuffer {
 public:
  ReferenceBuffer(std::uint64_t slots, NodeId nodes)
      : map_(nodes) {
    for (std::uint64_t s = 0; s < slots; ++s) standby_.push_back(s);
  }

  struct Entry {
    std::int64_t slot = -1;
    std::uint32_t ref = 0;
    bool valid = false;
  };

  // Returns what check_and_ref should report.
  FeatureBuffer::CheckStatus check_and_ref(NodeId v) {
    Entry& e = map_[v];
    FeatureBuffer::CheckStatus st;
    if (e.valid) {
      if (e.ref == 0) {
        standby_.erase(std::find(standby_.begin(), standby_.end(),
                                 static_cast<std::uint64_t>(e.slot)));
      }
      st = FeatureBuffer::CheckStatus::kReady;
    } else if (e.ref > 0) {
      st = FeatureBuffer::CheckStatus::kInFlight;
    } else {
      st = FeatureBuffer::CheckStatus::kMustLoad;
    }
    ++e.ref;
    return st;
  }

  std::optional<std::uint64_t> allocate(NodeId v) {
    if (standby_.empty()) return std::nullopt;
    const std::uint64_t slot = standby_.front();
    standby_.pop_front();
    for (auto& e : map_) {
      if (e.slot == static_cast<std::int64_t>(slot)) {
        e.slot = -1;
        e.valid = false;
      }
    }
    map_[v].slot = static_cast<std::int64_t>(slot);
    return slot;
  }

  void mark_valid(NodeId v) { map_[v].valid = true; }

  void release(NodeId v) {
    Entry& e = map_[v];
    if (--e.ref == 0 && e.slot >= 0) {
      standby_.push_back(static_cast<std::uint64_t>(e.slot));
    }
  }

  const Entry& entry(NodeId v) const { return map_[v]; }
  std::size_t standby_size() const { return standby_.size(); }

 private:
  std::vector<Entry> map_;
  std::deque<std::uint64_t> standby_;  // front == LRU
};

struct ModelParams {
  std::uint64_t slots;
  NodeId nodes;
  std::uint64_t seed;
};

struct FeatureBufferModel : ::testing::TestWithParam<ModelParams> {};

TEST_P(FeatureBufferModel, MatchesReferenceOverRandomOps) {
  const auto p = GetParam();
  FeatureBufferConfig cfg;
  cfg.num_slots = p.slots;
  cfg.row_floats = 1;
  FeatureBuffer fb(cfg, p.nodes);
  ReferenceBuffer ref(p.slots, p.nodes);

  // Nodes we currently hold a reference on (so ops stay well-formed) and
  // nodes in the kMustLoad state awaiting allocate+mark_valid.
  std::vector<NodeId> held;
  std::vector<NodeId> loading;
  Rng rng(p.seed);

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t dice = rng.next_below(10);
    if (dice < 4) {
      // check_and_ref a random node.
      const NodeId v = static_cast<NodeId>(rng.next_below(p.nodes));
      const auto got = fb.check_and_ref(v);
      const auto want = ref.check_and_ref(v);
      ASSERT_EQ(static_cast<int>(got.status), static_cast<int>(want))
          << "step " << step;
      if (got.status == FeatureBuffer::CheckStatus::kMustLoad) {
        loading.push_back(v);
      } else {
        held.push_back(v);
      }
    } else if (dice < 7 && !loading.empty()) {
      // Finish a pending load (allocate + mark_valid), single-threaded so
      // allocate never blocks unless standby is empty — mirror that.
      const NodeId v = loading.back();
      const auto want_slot = ref.allocate(v);
      if (!want_slot.has_value()) continue;  // would block: skip
      loading.pop_back();
      const SlotId got_slot = fb.allocate_slot(v);
      ASSERT_EQ(static_cast<std::uint64_t>(got_slot), *want_slot)
          << "step " << step;
      fb.mark_valid(v);
      ref.mark_valid(v);
      held.push_back(v);
    } else if (!held.empty()) {
      // Release a random held reference.
      const std::uint64_t idx = rng.next_below(held.size());
      const NodeId v = held[idx];
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(idx));
      fb.release_one(v);
      ref.release(v);
    }
    if (step % 131 == 0) {
      ASSERT_EQ(fb.standby_size(), ref.standby_size()) << "step " << step;
      for (NodeId v = 0; v < p.nodes; ++v) {
        const auto got = fb.entry(v);
        const auto& want = ref.entry(v);
        ASSERT_EQ(got.slot, want.slot) << "node " << v << " step " << step;
        ASSERT_EQ(got.ref_count, want.ref) << "node " << v;
        ASSERT_EQ(got.valid, want.valid) << "node " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FeatureBufferModel,
                         ::testing::Values(ModelParams{4, 16, 1},
                                           ModelParams{8, 8, 2},
                                           ModelParams{16, 100, 3},
                                           ModelParams{2, 50, 4},
                                           ModelParams{64, 64, 5}));

}  // namespace
}  // namespace gnndrive
