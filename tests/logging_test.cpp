// Logger level handling and helpers in util/common.
#include <gtest/gtest.h>

#include "util/common.hpp"
#include "util/logging.hpp"

namespace gnndrive {
namespace {

TEST(Logging, LevelRoundTrip) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  GD_LOG_DEBUG("debug line %d (expected in test output)", 1);
  set_log_level(LogLevel::kError);
  GD_LOG_WARN("suppressed line %d (should NOT appear)", 2);
  set_log_level(saved);
}

TEST(Logging, StructuredFieldsFormat) {
  // kv() renders each supported type the way trace args do, so a warning
  // line can be joined against the Chrome trace by batch id.
  EXPECT_EQ(kv("batch", std::uint64_t{417}).value, "417");
  EXPECT_EQ(kv("epoch", 2).value, "2");
  EXPECT_EQ(kv("rate", 0.5).value, "0.500");
  EXPECT_EQ(kv("ok", true).value, "true");
  EXPECT_EQ(kv("ok", false).value, "false");
  EXPECT_EQ(kv("stage", "extract").value, "extract");
  EXPECT_EQ(kv("name", std::string("sample")).value, "sample");
}

TEST(Logging, StructuredLineCarriesEventAndFields) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_structured(LogLevel::kWarn, "batch_failed",
                 {kv("batch", 417), kv("epoch", 2), kv("io_errors", 3)});
  const std::string out = ::testing::internal::GetCapturedStderr();
  set_log_level(saved);
  EXPECT_NE(out.find("[WARN] batch_failed batch=417 epoch=2 io_errors=3"),
            std::string::npos)
      << out;
}

TEST(Logging, StructuredRespectsLevelGate) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_structured(LogLevel::kWarn, "suppressed_event", {kv("batch", 1)});
  const std::string out = ::testing::internal::GetCapturedStderr();
  set_log_level(saved);
  EXPECT_EQ(out.find("suppressed_event"), std::string::npos);
}

TEST(Rounding, UpDownCeil) {
  EXPECT_EQ(round_up(0, 512), 0u);
  EXPECT_EQ(round_up(1, 512), 512u);
  EXPECT_EQ(round_up(512, 512), 512u);
  EXPECT_EQ(round_up(513, 512), 1024u);
  EXPECT_EQ(round_down(1023, 512), 512u);
  EXPECT_EQ(round_down(512, 512), 512u);
  EXPECT_EQ(div_ceil(10, 3), 4u);
  EXPECT_EQ(div_ceil(9, 3), 3u);
  EXPECT_EQ(div_ceil(1, 100), 1u);
}

TEST(Durations, Conversions) {
  const Duration d = from_us(1500.0);
  EXPECT_NEAR(to_seconds(d), 1.5e-3, 1e-9);
  EXPECT_NEAR(to_ms(d), 1.5, 1e-6);
}

TEST(SimOom, CarriesMessage) {
  try {
    throw SimOutOfMemory("device OOM allocating 42 bytes");
  } catch (const SimOutOfMemory& e) {
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
}

}  // namespace
}  // namespace gnndrive
