// Logger level handling and helpers in util/common.
#include <gtest/gtest.h>

#include "util/common.hpp"
#include "util/logging.hpp"

namespace gnndrive {
namespace {

TEST(Logging, LevelRoundTrip) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  GD_LOG_DEBUG("debug line %d (expected in test output)", 1);
  set_log_level(LogLevel::kError);
  GD_LOG_WARN("suppressed line %d (should NOT appear)", 2);
  set_log_level(saved);
}

TEST(Rounding, UpDownCeil) {
  EXPECT_EQ(round_up(0, 512), 0u);
  EXPECT_EQ(round_up(1, 512), 512u);
  EXPECT_EQ(round_up(512, 512), 512u);
  EXPECT_EQ(round_up(513, 512), 1024u);
  EXPECT_EQ(round_down(1023, 512), 512u);
  EXPECT_EQ(round_down(512, 512), 512u);
  EXPECT_EQ(div_ceil(10, 3), 4u);
  EXPECT_EQ(div_ceil(9, 3), 3u);
  EXPECT_EQ(div_ceil(1, 100), 1u);
}

TEST(Durations, Conversions) {
  const Duration d = from_us(1500.0);
  EXPECT_NEAR(to_seconds(d), 1.5e-3, 1e-9);
  EXPECT_NEAR(to_ms(d), 1.5, 1e-6);
}

TEST(SimOom, CarriesMessage) {
  try {
    throw SimOutOfMemory("device OOM allocating 42 bytes");
  } catch (const SimOutOfMemory& e) {
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
}

}  // namespace
}  // namespace gnndrive
