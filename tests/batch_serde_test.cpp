// Round-trip tests for the sampled-batch spill format Ginex uses.
#include <gtest/gtest.h>

#include "baselines/batch_serde.hpp"
#include "core/evaluate.hpp"
#include "graph/dataset.hpp"
#include "sampling/sampler.hpp"

namespace gnndrive {
namespace {

void expect_equal(const SampledBatch& a, const SampledBatch& b) {
  EXPECT_EQ(a.batch_id, b.batch_id);
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.labels, b.labels);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t l = 0; l < a.blocks.size(); ++l) {
    EXPECT_EQ(a.blocks[l].num_dst, b.blocks[l].num_dst);
    EXPECT_EQ(a.blocks[l].num_src, b.blocks[l].num_src);
    EXPECT_EQ(a.blocks[l].edge_src, b.blocks[l].edge_src);
    EXPECT_EQ(a.blocks[l].edge_dst, b.blocks[l].edge_dst);
  }
}

TEST(BatchSerde, RoundTripsRealSample) {
  Dataset ds = Dataset::build(toy_spec());
  DirectTopology topo(ds);
  NeighborSampler sampler({{6, 4, 2}, 3});
  std::vector<NodeId> seeds(ds.train_nodes().begin(),
                            ds.train_nodes().begin() + 12);
  SampledBatch batch = sampler.sample(77, seeds, topo, &ds.labels());

  std::vector<std::uint8_t> blob;
  serialize_batch(batch, blob);
  EXPECT_EQ(blob.size(), serialized_batch_bytes(batch));
  const SampledBatch back = deserialize_batch(blob.data());
  expect_equal(batch, back);
  // Alias state is reset, not round-tripped.
  for (SlotId s : back.alias) EXPECT_EQ(s, kNoSlot);
}

TEST(BatchSerde, EmptyBlocksAndSingletons) {
  SampledBatch batch;
  batch.batch_id = 9;
  batch.num_seeds = 1;
  batch.nodes = {42};
  batch.labels = {3};
  LayerBlock block;
  block.num_dst = 1;
  block.num_src = 1;  // zero edges
  batch.blocks.push_back(block);
  batch.alias.assign(1, kNoSlot);

  std::vector<std::uint8_t> blob;
  serialize_batch(batch, blob);
  expect_equal(batch, deserialize_batch(blob.data()));
}

TEST(BatchSerde, SizeAccountsEveryField) {
  SampledBatch batch;
  batch.num_seeds = 2;
  batch.nodes = {1, 2, 3};
  batch.labels = {0, 1};
  LayerBlock block;
  block.num_dst = 2;
  block.num_src = 3;
  block.edge_src = {2, 2};
  block.edge_dst = {0, 1};
  batch.blocks.push_back(block);
  const std::uint64_t expected = 32 /*hdr*/ + 3 * 4 /*nodes*/ +
                                 2 * 4 /*labels*/ + 32 /*block hdr*/ +
                                 2 * 8 /*edges*/;
  EXPECT_EQ(serialized_batch_bytes(batch), expected);
}

}  // namespace
}  // namespace gnndrive
