// Build-level smoke test so the test binary links before the real suites
// land; also exercises the RNG determinism everything else relies on.
#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gnndrive {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, BoundedDraws) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace gnndrive
