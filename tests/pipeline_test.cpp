// GNNDrive pipeline end-to-end: extraction correctness against ground
// truth, training progress, sample-only mode, reordering determinism,
// auto-sizing and CPU variant.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace gnndrive {
namespace {

struct PipelineFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(128)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    RunContext ctx;
  };
  Env make_env(std::uint64_t host_bytes = 64ull << 20) {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(host_bytes);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), nullptr};
    return env;
  }

  GnnDriveConfig base_config() {
    GnnDriveConfig cfg;
    cfg.common.model.kind = ModelKind::kSage;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5, 5};
    cfg.common.batch_seeds = 16;
    return cfg;
  }
};
Dataset* PipelineFixture::dataset = nullptr;

TEST_F(PipelineFixture, ExtractedFeaturesMatchGroundTruth) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  system.run_epoch(0);
  // Every valid mapping-table entry must hold exactly the on-disk feature
  // row of its node — asynchronous extraction delivered correct bytes.
  const auto dim = dataset->spec().feature_dim;
  std::vector<float> truth(dim);
  std::uint64_t checked = 0;
  for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
    const auto e = system.feature_buffer().entry(v);
    if (!e.valid) continue;
    dataset->read_feature_row(v, truth.data());
    const float* got = system.feature_buffer().slot_data(e.slot);
    for (std::uint32_t k = 0; k < dim; ++k) {
      ASSERT_EQ(got[k], truth[k]) << "node " << v << " dim " << k;
    }
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(PipelineFixture, LossDecreasesAcrossEpochs) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  const EpochStats first = system.run_epoch(0);
  EpochStats last{};
  for (int e = 1; e < 5; ++e) last = system.run_epoch(e);
  EXPECT_LT(last.loss, first.loss);
  EXPECT_GT(system.evaluate(), 0.5);
}

TEST_F(PipelineFixture, AllReferencesReleasedAfterEpoch) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  system.run_epoch(0);
  for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
    EXPECT_EQ(system.feature_buffer().entry(v).ref_count, 0u);
  }
  EXPECT_EQ(system.feature_buffer().standby_size(),
            system.feature_buffer().num_slots());
}

TEST_F(PipelineFixture, SampleOnlyModeDoesNoExtraction) {
  auto env = make_env();
  GnnDriveConfig cfg = base_config();
  cfg.common.sample_only = true;
  GnnDrive system(env.ctx, cfg);
  const EpochStats stats = system.run_epoch(0);
  EXPECT_GT(stats.sample_seconds, 0.0);
  EXPECT_EQ(stats.extract_seconds, 0.0);
  EXPECT_EQ(system.feature_buffer().stats().loads, 0u);
}

TEST_F(PipelineFixture, EpochCoversAllTrainNodes) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  const EpochStats stats = system.run_epoch(0);
  const std::size_t expected =
      div_ceil(dataset->train_nodes().size(), 16);
  EXPECT_EQ(stats.batches, expected);
}

TEST_F(PipelineFixture, CpuVariantTrainsWithoutGpu) {
  auto env = make_env();
  GnnDriveConfig cfg = base_config();
  cfg.cpu_training = true;
  GnnDrive system(env.ctx, cfg);
  EXPECT_EQ(system.gpu(), nullptr);
  const EpochStats stats = system.run_epoch(0);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.train_seconds, 0.0);
  system.run_epoch(1);
  EXPECT_GT(system.evaluate(), 0.3);
}

TEST_F(PipelineFixture, RunsUnderTightHostMemoryWithBoundedStaging) {
  // Staging rows recycle with the I/O depth, so GNNDrive's host footprint
  // stays tiny and a very small budget still trains (the paper's "works
  // even with 8 GB" claim).
  auto env = make_env(6ull << 20);
  GnnDriveConfig cfg = base_config();
  cfg.common.batch_seeds = 8;
  cfg.num_extractors = 4;
  cfg.ring_depth = 64;
  GnnDrive system(env.ctx, cfg);
  // Pinned memory is metadata + Ne x staging-row-pool, far below Mb (the
  // pool follows the coalescing config: wide segment-sized rows, fewer of
  // them — see staging_rows_for / staging_row_bytes_for).
  const auto row_bytes =
      static_cast<std::uint32_t>(dataset->layout().feature_row_bytes);
  const std::uint32_t cover =
      row_bytes % kSectorSize == 0
          ? row_bytes
          : static_cast<std::uint32_t>(round_up(row_bytes, kSectorSize)) +
                kSectorSize;
  const std::uint64_t staging =
      4ull * staging_rows_for(cfg.coalesce, cfg.ring_depth) *
      staging_row_bytes_for(cfg.coalesce, cover);
  EXPECT_LE(env.mem->pinned(),
            dataset->host_metadata_bytes() + staging + (64 << 10));
  const EpochStats stats = system.run_epoch(0);
  EXPECT_GT(stats.batches, 0u);
}

TEST_F(PipelineFixture, ExtractorsAutoShrinkWhenDeviceMemoryTight) {
  // The Ne x Mb feature-buffer reserve must fit device memory; a small
  // "GPU" forces the extractor count down (the paper's sizing knob).
  auto env = make_env();
  GnnDriveConfig cfg = base_config();
  cfg.common.batch_seeds = 64;
  cfg.num_extractors = 4;
  cfg.gpu.device_memory_bytes = 8ull << 20;
  GnnDrive system(env.ctx, cfg);
  EXPECT_LT(system.effective_extractors(), 4u);
  const EpochStats stats = system.run_epoch(0);
  EXPECT_GT(stats.batches, 0u);
}

TEST_F(PipelineFixture, FeatureBufferScaleChangesSlotCount) {
  auto env1 = make_env();
  GnnDriveConfig cfg = base_config();
  GnnDrive small(env1.ctx, cfg);
  auto env2 = make_env();
  cfg.feature_buffer_scale = 2.0;
  cfg.gpu.device_memory_bytes = 512ull << 20;  // room to grow
  GnnDrive large(env2.ctx, cfg);
  EXPECT_GT(large.feature_buffer().num_slots(),
            small.feature_buffer().num_slots());
}

TEST_F(PipelineFixture, DeterministicBatchSetAcrossRuns) {
  // Reordering may permute execution, but the multiset of trained batches
  // (and hence the loss trajectory endpoint) is the same for a fixed seed.
  auto env1 = make_env();
  auto env2 = make_env();
  GnnDriveConfig cfg = base_config();
  GnnDrive a(env1.ctx, cfg);
  GnnDrive b(env2.ctx, cfg);
  const EpochStats sa = a.run_epoch(0);
  const EpochStats sb = b.run_epoch(0);
  EXPECT_EQ(sa.batches, sb.batches);
  // Same loads happened (same nodes touched).
  EXPECT_EQ(a.feature_buffer().stats().loads,
            b.feature_buffer().stats().loads);
}

TEST_F(PipelineFixture, SegmentsPartitionTrainingSet) {
  auto env1 = make_env();
  auto env2 = make_env();
  GnnDriveConfig cfg = base_config();
  GnnDrive a(env1.ctx, cfg);
  a.set_segment(0, 2);
  GnnDrive b(env2.ctx, cfg);
  b.set_segment(1, 2);
  const EpochStats sa = a.run_epoch(0);
  const EpochStats sb = b.run_epoch(0);
  // Segmented runs truncate to equal batch counts (gradient-sync barriers).
  const std::size_t total = dataset->train_nodes().size();
  const std::size_t batch = 16;
  const std::size_t equal = (total / 2) / batch;
  EXPECT_EQ(sa.batches, equal);
  EXPECT_EQ(sb.batches, equal);
}

TEST_F(PipelineFixture, DirectIoLeavesPageCacheToTopology) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  system.run_epoch(0);
  // All resident pages must belong to the indices region: feature loads
  // went through direct I/O and never touched the page cache.
  const auto& lay = dataset->layout();
  const std::uint64_t first_feature_page = lay.features_offset / kPageSize;
  const std::uint64_t last_feature_page =
      (lay.features_offset + lay.features_bytes - 1) / kPageSize;
  std::uint64_t feature_pages = 0;
  for (std::uint64_t p = first_feature_page + 1; p < last_feature_page;
       ++p) {
    if (env.cache->contains_page(p)) ++feature_pages;
  }
  EXPECT_EQ(feature_pages, 0u);
}

TEST_F(PipelineFixture, GradSyncHookRunsPerBatch) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  std::atomic<std::uint64_t> calls{0};
  system.set_grad_sync_hook([&](GnnModel&) { ++calls; });
  const EpochStats stats = system.run_epoch(0);
  EXPECT_EQ(calls.load(), stats.batches);
}

}  // namespace
}  // namespace gnndrive
