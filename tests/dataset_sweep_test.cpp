// Parameterized dataset construction sweep: layout and content invariants
// across feature dimensions, including the sub-sector and the MAG-sized
// (768) cases.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/dataset.hpp"

namespace gnndrive {
namespace {

struct DatasetSweep : ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DatasetSweep, LayoutAndContentInvariants) {
  const std::uint32_t dim = GetParam();
  DatasetSpec spec = toy_spec(dim);
  spec.num_nodes = 2000;
  spec.num_edges = 20000;
  Dataset ds = Dataset::build(spec);
  const auto& lay = ds.layout();

  // Regions are ordered, sector-aligned, and cover the spec sizes.
  EXPECT_EQ(lay.feature_row_bytes, dim * 4ull);
  EXPECT_EQ(lay.features_bytes, spec.num_nodes * dim * 4ull);
  EXPECT_EQ(lay.features_offset % kSectorSize, 0u);
  EXPECT_GE(lay.scratch_bytes, lay.features_bytes);
  EXPECT_EQ(lay.total_bytes, ds.image()->size());

  // Feature rows are finite and label-correlated in expectation.
  std::vector<float> row(dim);
  for (NodeId v = 0; v < 50; ++v) {
    ds.read_feature_row(v, row.data());
    for (float x : row) {
      EXPECT_TRUE(std::isfinite(x));
      EXPECT_LE(std::abs(x), 2.0f);  // centroid [-1,1] + noise 0.8
    }
  }

  // Degrees sum to the edge count; neighbor reads stay in range.
  std::uint64_t total_deg = 0;
  for (NodeId v = 0; v < spec.num_nodes; ++v) total_deg += ds.in_degree(v);
  EXPECT_EQ(total_deg, spec.num_edges);
  for (NodeId v = 0; v < 20; ++v) {
    for (NodeId nb : ds.read_neighbors(v)) EXPECT_LT(nb, spec.num_nodes);
  }

  // host_metadata_bytes reflects the in-memory arrays.
  EXPECT_GE(ds.host_metadata_bytes(),
            (spec.num_nodes + 1) * sizeof(EdgeId));
}

INSTANTIATE_TEST_SUITE_P(Dims, DatasetSweep,
                         ::testing::Values(16u, 64u, 128u, 256u, 768u));

struct GbScaling : ::testing::Test {};

TEST_F(GbScaling, PaperGbConversion) {
  EXPECT_EQ(paper_gb(1.0), 2ull << 20);
  EXPECT_EQ(paper_gb(32.0), 64ull << 20);
  EXPECT_EQ(paper_gb(0.5), 1ull << 20);
}

TEST_F(GbScaling, MemoryPressureRatiosMatchPaper) {
  // papers100m: 53 GB features vs 32 GB RAM in the paper (~1.7x). The mini
  // dataset must preserve that pressure ratio within ~15%.
  const DatasetSpec spec = mini_spec("papers100m");
  const double sim_ratio = static_cast<double>(spec.features_bytes()) /
                           static_cast<double>(paper_gb(32.0));
  const double paper_ratio = 53.0 / 32.0;
  EXPECT_NEAR(sim_ratio / paper_ratio, 1.0, 0.15);

  // mag240m: 349 GB features vs 32 GB RAM (~10.9x).
  const DatasetSpec mag = mini_spec("mag240m");
  const double sim_mag = static_cast<double>(mag.features_bytes()) /
                         static_cast<double>(paper_gb(32.0));
  EXPECT_NEAR(sim_mag / (349.0 / 32.0), 1.0, 0.15);
}

}  // namespace
}  // namespace gnndrive
