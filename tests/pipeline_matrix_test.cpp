// Parameterized full-system matrix: every model kind x {GPU, CPU, GDS}
// variant trains through the complete pipeline and improves.
#include <gtest/gtest.h>

#include <tuple>

#include "core/pipeline.hpp"

namespace gnndrive {
namespace {

enum class Variant { kGpu, kCpu, kGds };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kGpu: return "gpu";
    case Variant::kCpu: return "cpu";
    case Variant::kGds: return "gds";
  }
  return "?";
}

struct PipelineMatrix
    : ::testing::TestWithParam<std::tuple<ModelKind, Variant>> {
  static void SetUpTestSuite() {
    if (dataset == nullptr) {
      dataset = new Dataset(Dataset::build(toy_spec(64)));
    }
  }
  static Dataset* dataset;
};
Dataset* PipelineMatrix::dataset = nullptr;

TEST_P(PipelineMatrix, TrainsEndToEnd) {
  const auto [kind, variant] = GetParam();
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 10.0;
  auto ssd = dataset->make_device(ssd_cfg);
  HostMemory mem(64ull << 20);
  PageCache cache(mem, *ssd);
  RunContext ctx{dataset, ssd.get(), &mem, &cache, nullptr};

  GnnDriveConfig cfg;
  cfg.common.model.kind = kind;
  cfg.common.model.hidden_dim = 16;
  cfg.common.sampler.fanouts = kind == ModelKind::kGat
                                   ? std::vector<std::uint32_t>{10, 10, 5}
                                   : std::vector<std::uint32_t>{10, 10, 10};
  cfg.common.batch_seeds = 16;
  cfg.cpu_training = variant == Variant::kCpu;
  cfg.gds_mode = variant == Variant::kGds;
  GnnDrive system(ctx, cfg);

  const EpochStats first = system.run_epoch(0);
  EpochStats last{};
  for (int e = 1; e < 4; ++e) last = system.run_epoch(e);
  EXPECT_GT(first.batches, 0u) << variant_name(variant);
  EXPECT_LT(last.loss, first.loss) << variant_name(variant);
  EXPECT_GT(system.evaluate(), 0.4) << variant_name(variant);

  // All references drained; buffer bytes match ground truth.
  for (NodeId v = 0; v < dataset->spec().num_nodes; v += 37) {
    EXPECT_EQ(system.feature_buffer().entry(v).ref_count, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByVariant, PipelineMatrix,
    ::testing::Combine(::testing::Values(ModelKind::kSage, ModelKind::kGcn,
                                         ModelKind::kGat),
                       ::testing::Values(Variant::kGpu, Variant::kCpu,
                                         Variant::kGds)),
    [](const ::testing::TestParamInfo<std::tuple<ModelKind, Variant>>& info) {
      return std::string(model_kind_name(std::get<0>(info.param))) + "_" +
             variant_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gnndrive
