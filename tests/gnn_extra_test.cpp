// Additional NN-library coverage: degenerate shapes, optimizer behaviour,
// attention heads, flop accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/layers.hpp"
#include "gnn/model.hpp"

namespace gnndrive {
namespace {

TEST(GemmShapes, OneByOne) {
  Tensor a(1, 1);
  Tensor b(1, 1);
  Tensor c(1, 1);
  a.at(0, 0) = 3;
  b.at(0, 0) = -2;
  gemm(1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), -6.0f);
}

TEST(GemmShapes, SingleRowTimesSingleColumn) {
  Tensor a(1, 5);
  Tensor b(5, 1);
  for (std::uint32_t k = 0; k < 5; ++k) {
    a.at(0, k) = static_cast<float>(k + 1);
    b.at(k, 0) = 1.0f;
  }
  Tensor c(1, 1);
  gemm(1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 15.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = 0.5 * (w - 3)^2 elementwise.
  Param w(Tensor::zeros(2, 2));
  Adam adam(AdamConfig{.lr = 0.05f});
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < w.value.size(); ++i) {
      w.grad.data()[i] = w.value.data()[i] - 3.0f;
    }
    adam.step({&w});
    adam.zero_grad({&w});
  }
  for (std::size_t i = 0; i < w.value.size(); ++i) {
    EXPECT_NEAR(w.value.data()[i], 3.0f, 0.05f);
  }
}

TEST(GatHeads, OutputShapeIndependentOfHeadCount) {
  LayerBlock block;
  block.num_dst = 2;
  block.num_src = 4;
  block.edge_src = {2, 3, 1};
  block.edge_dst = {0, 0, 1};
  Rng rng(3);
  Tensor x = Tensor::uniform(4, 6, rng, 1.0f);
  for (std::uint32_t heads : {1u, 2u, 4u}) {
    GatConv conv(6, 8, heads, rng);
    Tensor y = conv.forward(block, x);
    EXPECT_EQ(y.rows(), 2u);
    EXPECT_EQ(y.cols(), 8u);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_TRUE(std::isfinite(y.data()[i]));
    }
  }
}

TEST(GatHeads, IndivisibleHeadCountRejected) {
  Rng rng(3);
  EXPECT_DEATH(GatConv(6, 8, 3, rng), "divide");
}

TEST(ModelFlops, MonotoneInHiddenDim) {
  LayerBlock b0;
  b0.num_dst = 4;
  b0.num_src = 10;
  LayerBlock b1;
  b1.num_dst = 10;
  b1.num_src = 20;
  SampledBatch batch;
  batch.num_seeds = 4;
  batch.nodes.resize(20);
  batch.blocks = {b0, b1};
  batch.labels.assign(4, 0);

  std::uint64_t prev = 0;
  for (std::uint32_t hidden : {8u, 32u, 128u}) {
    ModelConfig mc;
    mc.kind = ModelKind::kSage;
    mc.in_dim = 16;
    mc.hidden_dim = hidden;
    mc.num_classes = 4;
    mc.num_layers = 2;
    GnnModel model(mc);
    const std::uint64_t f = model.flops(batch);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(CountCorrect, FirstArgmaxWinsOnTies) {
  Tensor logits(1, 3);  // all zeros: argmax is index 0
  EXPECT_EQ(count_correct(logits, {0}), 1u);
  EXPECT_EQ(count_correct(logits, {2}), 0u);
}

TEST(Relu, AllNegativeBecomesZeroAndBlocksGradient) {
  Tensor x(1, 4);
  for (std::uint32_t j = 0; j < 4; ++j) x.at(0, j) = -1.0f - j;
  Tensor mask;
  relu_forward(x, mask);
  Tensor g(1, 4);
  g.fill(5.0f);
  relu_backward(g, mask);
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(x.at(0, j), 0.0f);
    EXPECT_FLOAT_EQ(g.at(0, j), 0.0f);
  }
}

TEST(ParamAccounting, BytesCoverValueGradAndAdamState) {
  Param p(Tensor::zeros(10, 20));
  EXPECT_EQ(p.bytes(), 10u * 20 * 4 * 4);  // value + grad + m + v
}

TEST(ModelConfig, LayerDimsChainCorrectly) {
  ModelConfig mc;
  mc.kind = ModelKind::kGcn;
  mc.in_dim = 12;
  mc.hidden_dim = 7;
  mc.num_classes = 3;
  mc.num_layers = 3;
  GnnModel model(mc);
  // 3 GCN layers: (12x7 + 7) + (7x7 + 7) + (7x3 + 3) parameters.
  std::uint64_t total = 0;
  for (const Param* p : model.params()) total += p->value.size();
  EXPECT_EQ(total, 12u * 7 + 7 + 7 * 7 + 7 + 7 * 3 + 3);
}

}  // namespace
}  // namespace gnndrive
