// Feature buffer manager: the mapping-table state machine of Sect. 4.2 /
// Algorithm 1 / Fig. 6, plus concurrent stress against the deadlock-freedom
// reserve.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/feature_buffer.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

FeatureBuffer make_buffer(std::uint64_t slots, NodeId nodes,
                          std::uint32_t dim = 4) {
  FeatureBufferConfig cfg;
  cfg.num_slots = slots;
  cfg.row_floats = dim;
  return FeatureBuffer(cfg, nodes);
}

TEST(FeatureBuffer, InitialStateAllStandby) {
  auto fb = make_buffer(8, 100);
  EXPECT_EQ(fb.standby_size(), 8u);
  for (NodeId v = 0; v < 100; ++v) {
    const auto e = fb.entry(v);
    EXPECT_EQ(e.slot, kNoSlot);
    EXPECT_FALSE(e.valid);
    EXPECT_EQ(e.ref_count, 0u);
  }
}

TEST(FeatureBuffer, MustLoadThenValidLifecycle) {
  auto fb = make_buffer(4, 10);
  const auto r = fb.check_and_ref(3);
  EXPECT_EQ(r.status, FeatureBuffer::CheckStatus::kMustLoad);
  EXPECT_EQ(fb.entry(3).ref_count, 1u);
  EXPECT_FALSE(fb.entry(3).valid);

  const SlotId slot = fb.allocate_slot(3);
  EXPECT_GE(slot, 0);
  EXPECT_EQ(fb.reverse(slot), 3u);
  EXPECT_EQ(fb.standby_size(), 3u);  // slot left standby

  fb.mark_valid(3);
  EXPECT_TRUE(fb.entry(3).valid);

  // Second reference while valid: reuse.
  const auto r2 = fb.check_and_ref(3);
  EXPECT_EQ(r2.status, FeatureBuffer::CheckStatus::kReady);
  EXPECT_EQ(r2.slot, slot);
  EXPECT_EQ(fb.entry(3).ref_count, 2u);

  fb.release_one(3);
  fb.release_one(3);
  EXPECT_EQ(fb.entry(3).ref_count, 0u);
  EXPECT_EQ(fb.standby_size(), 4u);  // retired to standby
  EXPECT_TRUE(fb.entry(3).valid);    // lazy invalidation: stays valid
}

TEST(FeatureBuffer, InFlightNodeRoutesToWaitList) {
  auto fb = make_buffer(4, 10);
  fb.check_and_ref(5);  // kMustLoad, ref=1, not yet valid
  const auto r = fb.check_and_ref(5);
  EXPECT_EQ(r.status, FeatureBuffer::CheckStatus::kInFlight);
  EXPECT_EQ(fb.entry(5).ref_count, 2u);
}

TEST(FeatureBuffer, WaitValidBlocksUntilMark) {
  auto fb = make_buffer(4, 10);
  fb.check_and_ref(7);
  const SlotId slot = fb.allocate_slot(7);
  std::atomic<bool> resolved{false};
  std::thread waiter([&] {
    EXPECT_EQ(fb.wait_valid(7), slot);
    resolved = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(resolved.load());
  fb.mark_valid(7);
  waiter.join();
  EXPECT_TRUE(resolved.load());
}

TEST(FeatureBuffer, StandbyReuseRetiredNode) {
  // Fig. 6 step 1: a valid node with zero refcount is pulled back from the
  // standby list and its slot reused for the SAME node.
  auto fb = make_buffer(2, 10);
  fb.check_and_ref(1);
  const SlotId slot = fb.allocate_slot(1);
  fb.mark_valid(1);
  fb.release_one(1);
  ASSERT_EQ(fb.standby_size(), 2u);

  const auto r = fb.check_and_ref(1);
  EXPECT_EQ(r.status, FeatureBuffer::CheckStatus::kReady);
  EXPECT_EQ(r.slot, slot);
  EXPECT_EQ(fb.standby_size(), 1u);  // pulled out of standby
}

TEST(FeatureBuffer, LruSlotReuseInvalidatesPreviousOwner) {
  // Fig. 6 step 4: allocating for a new node takes the LRU standby slot and
  // lazily invalidates its previous occupant.
  auto fb = make_buffer(1, 10);
  fb.check_and_ref(1);
  const SlotId slot = fb.allocate_slot(1);
  fb.mark_valid(1);
  fb.release_one(1);  // slot standby, node 1 still valid

  fb.check_and_ref(2);
  const SlotId slot2 = fb.allocate_slot(2);
  EXPECT_EQ(slot2, slot);
  EXPECT_EQ(fb.reverse(slot), 2u);
  const auto e1 = fb.entry(1);
  EXPECT_FALSE(e1.valid);
  EXPECT_EQ(e1.slot, kNoSlot);  // "not in the feature buffer" state
}

TEST(FeatureBuffer, StandbyIsLruOrdered) {
  auto fb = make_buffer(3, 10);
  // Fill all three slots with nodes 0,1,2, then release in order 1,0,2.
  for (NodeId v = 0; v < 3; ++v) {
    fb.check_and_ref(v);
    fb.allocate_slot(v);
    fb.mark_valid(v);
  }
  const SlotId s0 = fb.entry(0).slot;
  const SlotId s1 = fb.entry(1).slot;
  const SlotId s2 = fb.entry(2).slot;
  fb.release_one(1);
  fb.release_one(0);
  fb.release_one(2);
  // New allocations reuse slots in release (LRU) order: s1, s0, s2.
  fb.check_and_ref(5);
  EXPECT_EQ(fb.allocate_slot(5), s1);
  fb.check_and_ref(6);
  EXPECT_EQ(fb.allocate_slot(6), s0);
  fb.check_and_ref(7);
  EXPECT_EQ(fb.allocate_slot(7), s2);
}

TEST(FeatureBuffer, AllocateBlocksUntilRelease) {
  auto fb = make_buffer(1, 10);
  fb.check_and_ref(1);
  fb.allocate_slot(1);
  fb.mark_valid(1);

  fb.check_and_ref(2);
  std::atomic<bool> allocated{false};
  std::thread blocked([&] {
    fb.allocate_slot(2);  // must wait: no standby slot
    allocated = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(allocated.load());
  fb.release_one(1);
  blocked.join();
  EXPECT_TRUE(allocated.load());
  EXPECT_GE(fb.stats().slot_waits, 1u);
}

TEST(FeatureBuffer, SlotDataRoundTrip) {
  auto fb = make_buffer(4, 10, 8);
  fb.check_and_ref(3);
  const SlotId slot = fb.allocate_slot(3);
  float* data = fb.slot_data(slot);
  for (int i = 0; i < 8; ++i) data[i] = static_cast<float>(i);
  fb.mark_valid(3);
  const float* read = fb.slot_data(fb.entry(3).slot);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(read[i], i);
}

TEST(FeatureBuffer, StatsCategorizeOutcomes) {
  auto fb = make_buffer(4, 10);
  fb.check_and_ref(1);          // load
  fb.check_and_ref(1);          // wait hit (in flight)
  fb.allocate_slot(1);
  fb.mark_valid(1);
  fb.check_and_ref(1);          // reuse hit
  const auto stats = fb.stats();
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.wait_hits, 1u);
  EXPECT_EQ(stats.reuse_hits, 1u);
}

// ---- Concurrent stress: Ne extractor threads with the minimum Ne x Mb
// reserve must make progress (paper's deadlock-freedom claim) and deliver
// the right bytes.
struct StressParams {
  unsigned extractors;
  unsigned batch_nodes;   // Mb
  unsigned num_nodes;
  unsigned batches_per_thread;
};

struct FeatureBufferStress : ::testing::TestWithParam<StressParams> {};

TEST_P(FeatureBufferStress, MinimumReserveNeverDeadlocks) {
  const auto p = GetParam();
  const std::uint64_t slots = p.extractors * p.batch_nodes;  // exact minimum
  FeatureBufferConfig cfg;
  cfg.num_slots = slots;
  cfg.row_floats = 2;
  FeatureBuffer fb(cfg, p.num_nodes);

  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < p.extractors; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(splitmix64(t * 1000 + 17));
      for (unsigned b = 0; b < p.batches_per_thread; ++b) {
        // Random batch of distinct nodes.
        std::vector<NodeId> nodes;
        while (nodes.size() < p.batch_nodes) {
          const NodeId v =
              static_cast<NodeId>(rng.next_below(p.num_nodes));
          if (std::find(nodes.begin(), nodes.end(), v) == nodes.end()) {
            nodes.push_back(v);
          }
        }
        std::vector<NodeId> to_load;
        std::vector<NodeId> to_wait;
        for (NodeId v : nodes) {
          const auto r = fb.check_and_ref(v);
          switch (r.status) {
            case FeatureBuffer::CheckStatus::kMustLoad:
              to_load.push_back(v);
              break;
            case FeatureBuffer::CheckStatus::kInFlight:
              to_wait.push_back(v);
              break;
            case FeatureBuffer::CheckStatus::kReady: {
              const float* d = fb.slot_data(r.slot);
              if (d[0] != static_cast<float>(v)) ++mismatches;
              break;
            }
          }
        }
        for (NodeId v : to_load) {
          const SlotId slot = fb.allocate_slot(v);
          float* d = fb.slot_data(slot);
          d[0] = static_cast<float>(v);  // "extract" the data
          d[1] = -static_cast<float>(v);
          fb.mark_valid(v);
        }
        for (NodeId v : to_wait) {
          const SlotId slot = fb.wait_valid(v);
          const float* d = fb.slot_data(slot);
          if (d[0] != static_cast<float>(v)) ++mismatches;
        }
        // Simulate train + release.
        fb.release(nodes);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // All references dropped: every slot is back on standby.
  EXPECT_EQ(fb.standby_size(), slots);
}

INSTANTIATE_TEST_SUITE_P(
    ReserveSweep, FeatureBufferStress,
    ::testing::Values(StressParams{2, 8, 64, 200},
                      StressParams{4, 16, 64, 150},
                      StressParams{4, 16, 1000, 150},
                      StressParams{8, 4, 32, 200},
                      StressParams{1, 32, 4096, 100}));

}  // namespace
}  // namespace gnndrive
