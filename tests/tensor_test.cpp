// Tensor kernels: gemm variants against naive references, activation and
// loss gradients against numerical differentiation.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/tensor.hpp"

namespace gnndrive {
namespace {

Tensor random_tensor(std::uint32_t r, std::uint32_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform(r, c, rng, 1.0f);
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (std::uint32_t i = 0; i < a.rows(); ++i) {
    for (std::uint32_t j = 0; j < b.cols(); ++j) {
      double acc = 0;
      for (std::uint32_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_near(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

TEST(Tensor, GemmMatchesNaive) {
  const Tensor a = random_tensor(7, 13, 1);
  const Tensor b = random_tensor(13, 5, 2);
  Tensor c(7, 5);
  gemm(1.0f, a, b, 0.0f, c);
  expect_near(c, naive_matmul(a, b));
}

TEST(Tensor, GemmAlphaBeta) {
  const Tensor a = random_tensor(4, 6, 3);
  const Tensor b = random_tensor(6, 3, 4);
  Tensor c = random_tensor(4, 3, 5);
  Tensor expected = c;
  const Tensor ab = naive_matmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    expected.data()[i] = 2.0f * ab.data()[i] + 0.5f * c.data()[i];
  }
  gemm(2.0f, a, b, 0.5f, c);
  expect_near(c, expected);
}

TEST(Tensor, GemmAtBMatchesNaive) {
  const Tensor a = random_tensor(9, 4, 6);  // k x m
  const Tensor b = random_tensor(9, 5, 7);  // k x n
  Tensor c(4, 5);
  gemm_at_b(1.0f, a, b, 0.0f, c);
  // naive: c = a^T b
  Tensor at(4, 9);
  for (std::uint32_t i = 0; i < 9; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) at.at(j, i) = a.at(i, j);
  }
  expect_near(c, naive_matmul(at, b));
}

TEST(Tensor, GemmABtMatchesNaive) {
  const Tensor a = random_tensor(6, 8, 8);  // m x k
  const Tensor b = random_tensor(3, 8, 9);  // n x k
  Tensor c(6, 3);
  gemm_a_bt(1.0f, a, b, 0.0f, c);
  Tensor bt(8, 3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 8; ++j) bt.at(j, i) = b.at(i, j);
  }
  expect_near(c, naive_matmul(a, bt));
}

TEST(Tensor, BiasAndAccumulate) {
  Tensor y = random_tensor(5, 4, 10);
  const Tensor y0 = y;
  Tensor bias(1, 4);
  for (std::uint32_t j = 0; j < 4; ++j) bias.at(0, j) = j * 0.5f;
  add_row_bias(y, bias);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(y.at(i, j), y0.at(i, j) + j * 0.5f);
    }
  }
  Tensor bg(1, 4);
  accumulate_bias_grad(y0, bg);
  for (std::uint32_t j = 0; j < 4; ++j) {
    float sum = 0;
    for (std::uint32_t i = 0; i < 5; ++i) sum += y0.at(i, j);
    EXPECT_NEAR(bg.at(0, j), sum, 1e-5);
  }
}

TEST(Tensor, ReluForwardBackward) {
  Tensor x(2, 3);
  x.at(0, 0) = -1;
  x.at(0, 1) = 2;
  x.at(0, 2) = 0;
  x.at(1, 0) = 5;
  x.at(1, 1) = -3;
  x.at(1, 2) = 1;
  Tensor mask;
  relu_forward(x, mask);
  EXPECT_FLOAT_EQ(x.at(0, 0), 0);
  EXPECT_FLOAT_EQ(x.at(0, 1), 2);
  EXPECT_FLOAT_EQ(x.at(1, 0), 5);
  Tensor g(2, 3);
  g.fill(1.0f);
  relu_backward(g, mask);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0);
  EXPECT_FLOAT_EQ(g.at(0, 1), 1);
  EXPECT_FLOAT_EQ(g.at(1, 1), 0);
}

TEST(Tensor, SoftmaxCrossEntropyValuesAndAccuracy) {
  Tensor logits(2, 3);
  logits.at(0, 0) = 10;  // confident, correct
  logits.at(1, 2) = 10;  // confident, wrong (label 0)
  std::vector<std::int32_t> labels{0, 0};
  Tensor grad;
  std::uint32_t correct = 0;
  const double loss = softmax_cross_entropy(logits, labels, grad, correct);
  EXPECT_EQ(correct, 1u);
  EXPECT_GT(loss, 4.0);  // second row contributes ~10
  EXPECT_EQ(count_correct(logits, labels), 1u);
}

TEST(Tensor, SoftmaxCrossEntropyGradientNumerical) {
  Tensor logits = random_tensor(4, 6, 21);
  std::vector<std::int32_t> labels{3, 0, 5, 1};
  Tensor grad;
  std::uint32_t correct;
  softmax_cross_entropy(logits, labels, grad, correct);

  const float eps = 1e-3f;
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 6; ++j) {
      Tensor lp = logits;
      Tensor lm = logits;
      lp.at(i, j) += eps;
      lm.at(i, j) -= eps;
      Tensor g2;
      const double fp = softmax_cross_entropy(lp, labels, g2, correct);
      const double fm = softmax_cross_entropy(lm, labels, g2, correct);
      const double numeric = (fp - fm) / (2 * eps);
      EXPECT_NEAR(grad.at(i, j), numeric, 1e-3) << i << "," << j;
    }
  }
}

TEST(Tensor, UniformInitBounded) {
  Rng rng(5);
  Tensor t = Tensor::uniform(10, 10, rng, 0.25f);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t.data()[i]), 0.25f);
  }
}

}  // namespace
}  // namespace gnndrive
