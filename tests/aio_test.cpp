// io_uring-style ring: submission/completion plumbing, O_DIRECT alignment,
// buffered-mode page-cache interaction.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <stdexcept>

#include "aio/io_ring.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

struct RingFixture : ::testing::Test {
  void SetUp() override {
    image = std::make_shared<MemBackend>(256 * 1024);
    Rng rng(11);
    for (std::uint64_t i = 0; i < image->size(); ++i) {
      image->raw()[i] = static_cast<std::uint8_t>(rng());
    }
    SsdConfig cfg;
    cfg.read_latency_us = 30.0;
    cfg.channels = 8;
    ssd = std::make_unique<SsdDevice>(cfg, image);
    mem = std::make_unique<HostMemory>(64 * kPageSize);
    cache = std::make_unique<PageCache>(*mem, *ssd);
  }
  std::shared_ptr<MemBackend> image;
  std::unique_ptr<SsdDevice> ssd;
  std::unique_ptr<HostMemory> mem;
  std::unique_ptr<PageCache> cache;
};

TEST_F(RingFixture, DirectReadDeliversData) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  std::uint8_t buf[512];
  ASSERT_TRUE(ring.prep_read(1024, 512, buf, 42));
  EXPECT_EQ(ring.submit(), 1u);
  const Cqe cqe = ring.wait_cqe();
  EXPECT_EQ(cqe.user_data, 42u);
  EXPECT_EQ(cqe.res, 512);
  EXPECT_EQ(std::memcmp(buf, image->raw() + 1024, 512), 0);
}

TEST_F(RingFixture, DirectRejectsUnalignedOffset) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  std::uint8_t buf[512];
  ring.prep_read(100, 512, buf, 1);
  ring.submit();
  EXPECT_EQ(ring.wait_cqe().res, -22);
}

TEST_F(RingFixture, DirectRejectsUnalignedLength) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  std::uint8_t buf[600];
  ring.prep_read(512, 600, buf, 2);
  ring.submit();
  EXPECT_EQ(ring.wait_cqe().res, -22);
}

TEST_F(RingFixture, QueueDepthLimitsStagedSqes) {
  IoRing ring(*ssd, {.queue_depth = 2, .direct = true});
  std::uint8_t buf[512];
  EXPECT_TRUE(ring.prep_read(0, 512, buf, 0));
  EXPECT_TRUE(ring.prep_read(512, 512, buf, 1));
  EXPECT_FALSE(ring.prep_read(1024, 512, buf, 2));  // SQ full
  EXPECT_EQ(ring.submit(), 2u);
  ring.wait_cqe();
  ring.wait_cqe();
}

TEST_F(RingFixture, ManyInFlightAllComplete) {
  IoRing ring(*ssd, {.queue_depth = 64, .direct = true});
  std::vector<std::uint8_t> bufs(64 * 512);
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(ring.prep_read(i * 512, 512, bufs.data() + i * 512, i));
  }
  EXPECT_EQ(ring.submit(), 64u);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    const Cqe cqe = ring.wait_cqe();
    EXPECT_GE(cqe.res, 0);
    seen.insert(cqe.user_data);
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(ring.in_flight(), 0u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(std::memcmp(bufs.data() + i * 512, image->raw() + i * 512, 512),
              0);
  }
}

TEST_F(RingFixture, AsyncDepthBeatsSerialLatency) {
  // 32 reads at depth 32 should take far less than 32 serial latencies —
  // the Appendix B observation that async depth replaces thread count.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "wall-clock latency bound; sanitizer slowdown distorts it";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  GTEST_SKIP() << "wall-clock latency bound; sanitizer slowdown distorts it";
#endif
#endif
  IoRing ring(*ssd, {.queue_depth = 32, .direct = true});
  std::vector<std::uint8_t> bufs(32 * 512);
  const TimePoint t0 = Clock::now();
  for (std::uint64_t i = 0; i < 32; ++i) {
    ring.prep_read(i * 4096, 512, bufs.data() + i * 512, i);
  }
  ring.submit();
  for (int i = 0; i < 32; ++i) ring.wait_cqe();
  const double elapsed = to_seconds(Clock::now() - t0);
  EXPECT_LT(elapsed, 32 * 30e-6);
}

TEST_F(RingFixture, PeekCqeNonBlocking) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  EXPECT_FALSE(ring.peek_cqe().has_value());
  std::uint8_t buf[512];
  ring.prep_read(0, 512, buf, 5);
  ring.submit();
  ring.wait_cqe();  // ensure completion consumed
  EXPECT_FALSE(ring.peek_cqe().has_value());
}

TEST_F(RingFixture, DirectBypassesPageCache) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true}, cache.get());
  std::uint8_t buf[512];
  ring.prep_read(0, 512, buf, 0);
  ring.submit();
  ring.wait_cqe();
  EXPECT_EQ(cache->resident_pages(), 0u);
}

TEST_F(RingFixture, BufferedPopulatesAndHitsPageCache) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = false}, cache.get());
  std::uint8_t buf[512];
  ring.prep_read(0, 512, buf, 0);
  ring.submit();
  EXPECT_EQ(ring.wait_cqe().res, 512);
  EXPECT_TRUE(cache->contains_page(0));
  const auto reads_before = ssd->stats().reads;

  // Second buffered read of the same range: served by the cache, no device
  // traffic, data still correct.
  std::uint8_t buf2[512];
  ring.prep_read(0, 512, buf2, 1);
  ring.submit();
  EXPECT_EQ(ring.wait_cqe().res, 512);
  EXPECT_EQ(ssd->stats().reads, reads_before);
  EXPECT_EQ(std::memcmp(buf2, image->raw(), 512), 0);
}

TEST_F(RingFixture, BufferedAllowsUnalignedAccess) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = false}, cache.get());
  std::uint8_t buf[100];
  ring.prep_read(37, 100, buf, 7);
  ring.submit();
  EXPECT_EQ(ring.wait_cqe().res, 100);
  EXPECT_EQ(std::memcmp(buf, image->raw() + 37, 100), 0);
}

TEST_F(RingFixture, MisalignedDirectReadNeverTouchesDevice) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  const auto reads_before = ssd->stats().reads;
  std::uint8_t buf[512];
  ring.prep_read(100, 512, buf, 9);  // unaligned offset
  ring.submit();
  EXPECT_EQ(ring.wait_cqe().res, -EINVAL);
  EXPECT_EQ(ssd->stats().reads, reads_before);  // rejected before submission
}

TEST_F(RingFixture, BufferedWithoutCacheIsAConstructorError) {
  EXPECT_THROW(IoRing(*ssd, {.queue_depth = 8, .direct = false}, nullptr),
               std::invalid_argument);
}

TEST_F(RingFixture, InjectedEioReachesWaitCqe) {
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.eio_probability = 1.0;
  ssd->set_fault_config(faults);
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  std::uint8_t buf[512];
  std::memset(buf, 0x5A, sizeof(buf));
  ring.prep_read(0, 512, buf, 77);
  ring.submit();
  const Cqe cqe = ring.wait_cqe();
  EXPECT_EQ(cqe.user_data, 77u);
  EXPECT_EQ(cqe.res, -EIO);
  for (unsigned char b : buf) EXPECT_EQ(b, 0x5A);  // buffer untouched
  EXPECT_EQ(ring.in_flight(), 0u);
}

TEST_F(RingFixture, WaitCqeForTimesOutThenDelivers) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  // Nothing in flight: the bounded wait returns empty.
  EXPECT_FALSE(ring.wait_cqe_for(from_us(200.0)).has_value());
  std::uint8_t buf[512];
  ring.prep_read(0, 512, buf, 3);
  ring.submit();
  std::optional<Cqe> cqe;
  for (int i = 0; i < 1000 && !cqe; ++i) cqe = ring.wait_cqe_for(from_us(500.0));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->user_data, 3u);
  EXPECT_EQ(cqe->res, 512);
}

TEST_F(RingFixture, WatchdogCancelsStuckRequestWithTimeout) {
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.stuck_probability = 1.0;
  ssd->set_fault_config(faults);
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  std::uint8_t buf[512];
  std::memset(buf, 0x6B, sizeof(buf));
  ring.prep_read(0, 512, buf, 11);
  ring.submit();
  const Duration req_timeout = from_us(2000.0);
  std::optional<Cqe> cqe;
  // Watchdog loop exactly as the extract stage runs it: bounded wait, then
  // an expiry sweep. The stuck request must surface as -ETIMEDOUT well
  // within a bounded number of polls.
  for (int i = 0; i < 100 && !cqe; ++i) {
    cqe = ring.wait_cqe_for(from_us(500.0));
    if (!cqe) ring.cancel_expired(req_timeout);
  }
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->user_data, 11u);
  EXPECT_EQ(cqe->res, -ETIMEDOUT);
  for (unsigned char b : buf) EXPECT_EQ(b, 0x6B);  // cancelled => untouched
  EXPECT_EQ(ring.in_flight(), 0u);
  EXPECT_EQ(ssd->stats().cancelled, 1u);
}

TEST_F(RingFixture, CancelExpiredLeavesFreshRequestsAlone) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  std::uint8_t buf[512];
  ring.prep_read(0, 512, buf, 21);
  ring.submit();
  // A generous timeout must not cancel a request that was just submitted.
  EXPECT_EQ(ring.cancel_expired(from_us(1e6)), 0u);
  EXPECT_EQ(ring.wait_cqe().res, 512);
}

TEST_F(RingFixture, WriteRoundTrip) {
  IoRing ring(*ssd, {.queue_depth = 8, .direct = true});
  std::vector<std::uint8_t> data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 3);
  }
  ring.prep_write(2048, 1024, data.data(), 0);
  ring.submit();
  EXPECT_EQ(ring.wait_cqe().res, 1024);
  EXPECT_EQ(std::memcmp(image->raw() + 2048, data.data(), 1024), 0);
}

}  // namespace
}  // namespace gnndrive
