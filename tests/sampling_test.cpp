// Neighbor sampler and topology readers, including parameterized sweeps
// over fanouts and batch sizes.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>
#include <unordered_set>

#include "core/evaluate.hpp"
#include "graph/dataset.hpp"
#include "sampling/sampler.hpp"
#include "sampling/topology.hpp"

namespace gnndrive {
namespace {

struct SamplingFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(), /*keep_graph=*/true));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;
};
Dataset* SamplingFixture::dataset = nullptr;

std::vector<NodeId> first_seeds(std::uint32_t n) {
  const auto& train = SamplingFixture::dataset->train_nodes();
  return {train.begin(), train.begin() + n};
}

TEST_F(SamplingFixture, SeedsArePrefixOfNodes) {
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{5, 5}, 1});
  const auto seeds = first_seeds(8);
  SampledBatch b = sampler.sample(1, seeds, topo, &dataset->labels());
  ASSERT_EQ(b.num_seeds, 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(b.nodes[i], seeds[i]);
}

TEST_F(SamplingFixture, NodesAreUnique) {
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{10, 10, 10}, 1});
  SampledBatch b = sampler.sample(3, first_seeds(8), topo, nullptr);
  std::unordered_set<NodeId> uniq(b.nodes.begin(), b.nodes.end());
  EXPECT_EQ(uniq.size(), b.nodes.size());
}

TEST_F(SamplingFixture, BlockStructureInvariants) {
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{4, 3, 2}, 1});
  SampledBatch b = sampler.sample(5, first_seeds(6), topo, nullptr);
  ASSERT_EQ(b.blocks.size(), 3u);
  EXPECT_EQ(b.blocks[0].num_dst, b.num_seeds);
  std::uint32_t prev_src = b.num_seeds;
  for (const auto& blk : b.blocks) {
    EXPECT_EQ(blk.num_dst, prev_src);        // frontier chaining
    EXPECT_GE(blk.num_src, blk.num_dst);     // dst is a prefix of src
    for (std::size_t e = 0; e < blk.num_edges(); ++e) {
      EXPECT_LT(blk.edge_src[e], blk.num_src);
      EXPECT_LT(blk.edge_dst[e], blk.num_dst);
      if (e > 0) EXPECT_GE(blk.edge_dst[e], blk.edge_dst[e - 1]);  // grouped
    }
    prev_src = blk.num_src;
  }
  EXPECT_EQ(prev_src, b.nodes.size());
}

TEST_F(SamplingFixture, FanoutBoundsRespected) {
  DirectTopology topo(*dataset);
  const std::uint32_t fanout = 4;
  NeighborSampler sampler({{fanout}, 1});
  SampledBatch b = sampler.sample(9, first_seeds(16), topo, nullptr);
  std::vector<std::uint32_t> per_dst(b.blocks[0].num_dst, 0);
  for (std::uint32_t d : b.blocks[0].edge_dst) ++per_dst[d];
  for (std::uint32_t d = 0; d < b.blocks[0].num_dst; ++d) {
    const std::uint64_t deg = dataset->in_degree(b.nodes[d]);
    EXPECT_EQ(per_dst[d], std::min<std::uint64_t>(deg, fanout));
  }
}

TEST_F(SamplingFixture, SampledNeighborsAreRealAndDistinct) {
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{6}, 1});
  SampledBatch b = sampler.sample(11, first_seeds(12), topo, nullptr);
  const auto& blk = b.blocks[0];
  std::size_t e = 0;
  for (std::uint32_t d = 0; d < blk.num_dst; ++d) {
    const auto truth = dataset->read_neighbors(b.nodes[d]);
    const std::set<NodeId> truth_set(truth.begin(), truth.end());
    std::set<NodeId> picked;
    while (e < blk.num_edges() && blk.edge_dst[e] == d) {
      const NodeId nb = b.nodes[blk.edge_src[e]];
      EXPECT_TRUE(truth_set.count(nb) != 0) << "edge to non-neighbor";
      picked.insert(nb);
      ++e;
    }
    // Distinct positions; duplicates only possible via multi-edges.
    EXPECT_LE(picked.size(), truth_set.size());
  }
}

TEST_F(SamplingFixture, DeterministicPerBatchId) {
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{10, 10}, 99});
  SampledBatch a = sampler.sample(7, first_seeds(8), topo, nullptr);
  SampledBatch b = sampler.sample(7, first_seeds(8), topo, nullptr);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.blocks[1].edge_src, b.blocks[1].edge_src);
  SampledBatch c = sampler.sample(8, first_seeds(8), topo, nullptr);
  EXPECT_NE(a.nodes, c.nodes);
}

TEST_F(SamplingFixture, LabelsMatchSeeds) {
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{3}, 1});
  SampledBatch b = sampler.sample(2, first_seeds(10), topo,
                                  &dataset->labels());
  ASSERT_EQ(b.labels.size(), b.num_seeds);
  for (std::uint32_t i = 0; i < b.num_seeds; ++i) {
    EXPECT_EQ(b.labels[i], dataset->labels()[b.nodes[i]]);
  }
}

TEST_F(SamplingFixture, TopologyReadersAgree) {
  // Mmap (page-cache), in-memory, cached and direct readers must produce
  // identical samples for the same seed.
  HostMemory mem(64 << 20);
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 5.0;
  auto ssd = dataset->make_device(ssd_cfg);
  PageCache cache(mem, *ssd);

  MmapTopology mmap_topo(*dataset, cache);
  InMemTopology mem_topo(*dataset->csc());
  CachedTopology cached_topo(*dataset, cache, 1 << 20);
  DirectTopology direct_topo(*dataset);

  NeighborSampler sampler({{8, 4}, 5});
  const auto seeds = first_seeds(6);
  SampledBatch a = sampler.sample(13, seeds, mmap_topo, nullptr);
  SampledBatch b = sampler.sample(13, seeds, mem_topo, nullptr);
  SampledBatch c = sampler.sample(13, seeds, cached_topo, nullptr);
  SampledBatch d = sampler.sample(13, seeds, direct_topo, nullptr);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.nodes, c.nodes);
  EXPECT_EQ(a.nodes, d.nodes);
  EXPECT_EQ(a.blocks[0].edge_src, c.blocks[0].edge_src);
}

TEST_F(SamplingFixture, CachedTopologyRespectsBudgetAndPrefersHotNodes) {
  HostMemory mem(64 << 20);
  SsdConfig ssd_cfg;
  auto ssd = dataset->make_device(ssd_cfg);
  PageCache cache(mem, *ssd);
  const std::uint64_t budget = 100 * 1024;
  CachedTopology topo(*dataset, cache, budget);
  EXPECT_LE(topo.cached_bytes(), budget);
  EXPECT_GT(topo.cached_nodes(), 0u);
  // Hot node access should count as a hit.
  NodeId hottest = 0;
  for (NodeId v = 1; v < dataset->spec().num_nodes; ++v) {
    if (dataset->in_degree(v) > dataset->in_degree(hottest)) hottest = v;
  }
  std::vector<NodeId> out;
  topo.neighbors(hottest, out);
  EXPECT_EQ(topo.hits(), 1u);
  EXPECT_EQ(out, dataset->read_neighbors(hottest));
}

TEST_F(SamplingFixture, MaxNodesPerBatchIsUpperBound) {
  DirectTopology topo(*dataset);
  NeighborSampler sampler({{10, 10, 10}, 1});
  const std::uint64_t bound = sampler.max_nodes_per_batch(8);
  EXPECT_EQ(bound, 8ull * 11 * 11 * 11);
  SampledBatch b = sampler.sample(21, first_seeds(8), topo, nullptr);
  EXPECT_LE(b.nodes.size(), bound);
}

TEST(MakeMinibatches, PartitionsAndShuffles) {
  std::vector<NodeId> train(100);
  std::iota(train.begin(), train.end(), 0u);
  auto batches = make_minibatches(train, 32, 7);
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[3].size(), 4u);
  std::set<NodeId> all;
  for (const auto& b : batches) all.insert(b.begin(), b.end());
  EXPECT_EQ(all.size(), 100u);  // every node exactly once
  auto batches2 = make_minibatches(train, 32, 7);
  EXPECT_EQ(batches[0], batches2[0]);  // deterministic per seed
  auto batches3 = make_minibatches(train, 32, 8);
  EXPECT_NE(batches[0], batches3[0]);
}

// ---- Parameterized sweep: structure invariants across fanouts and sizes.
struct SamplerSweep
    : ::testing::TestWithParam<std::tuple<std::vector<std::uint32_t>,
                                          std::uint32_t>> {};

TEST_P(SamplerSweep, StructureHolds) {
  static Dataset ds = Dataset::build(toy_spec(8));
  const auto& [fanouts, batch] = GetParam();
  DirectTopology topo(ds);
  NeighborSampler sampler({fanouts, 17});
  std::vector<NodeId> seeds(ds.train_nodes().begin(),
                            ds.train_nodes().begin() + batch);
  SampledBatch b = sampler.sample(batch, seeds, topo, &ds.labels());
  EXPECT_EQ(b.blocks.size(), fanouts.size());
  std::unordered_set<NodeId> uniq(b.nodes.begin(), b.nodes.end());
  EXPECT_EQ(uniq.size(), b.nodes.size());
  std::uint32_t prev = b.num_seeds;
  for (const auto& blk : b.blocks) {
    EXPECT_EQ(blk.num_dst, prev);
    EXPECT_GE(blk.num_src, blk.num_dst);
    prev = blk.num_src;
  }
  EXPECT_LE(b.nodes.size(), sampler.max_nodes_per_batch(batch));
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndBatches, SamplerSweep,
    ::testing::Combine(
        ::testing::Values(std::vector<std::uint32_t>{10, 10, 10},
                          std::vector<std::uint32_t>{10, 10, 5},
                          std::vector<std::uint32_t>{5, 5},
                          std::vector<std::uint32_t>{1},
                          std::vector<std::uint32_t>{25, 2, 2, 2}),
        ::testing::Values(1u, 4u, 16u, 64u)));

}  // namespace
}  // namespace gnndrive
