// Feature-layout compiler (src/layout): plan validation/serialization,
// offset-arithmetic overflow guards, image-rewrite byte preservation,
// packed-store prefetch shape, checkpoint layout-fingerprint enforcement,
// and the acceptance differential — trained batches and serve predictions
// byte-identical across identity/degree/hotness layouts, for the GNNDrive
// pipeline and every baseline that reads features.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <future>
#include <numeric>
#include <random>
#include <vector>

#include <unistd.h>

#include "baselines/ginex.hpp"
#include "baselines/mariusgnn.hpp"
#include "baselines/pygplus.hpp"
#include "cache/policy.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "layout/compiler.hpp"
#include "layout/plan.hpp"
#include "serve/engine.hpp"

namespace gnndrive {
namespace {

std::string fresh_dir(const char* tag) {
  static std::atomic<std::uint64_t> n{0};
  auto dir = std::filesystem::temp_directory_path() /
             ("gnndrive_layout_" + std::string(tag) + "_" +
              std::to_string(::getpid()) + "_" + std::to_string(n++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

// Shared environment harness: SSD device + host memory + page cache over a
// dataset (same shape as the baseline/coalesce fixtures).
struct Env {
  std::unique_ptr<SsdDevice> ssd;
  std::unique_ptr<HostMemory> mem;
  std::unique_ptr<PageCache> cache;
  RunContext ctx;
};

Env make_env(const Dataset& ds, std::uint64_t host_bytes = 64ull << 20) {
  Env env;
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 20.0;
  env.ssd = ds.make_device(ssd_cfg);
  env.mem = std::make_unique<HostMemory>(host_bytes);
  env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
  env.ctx = RunContext{&ds, env.ssd.get(), env.mem.get(), env.cache.get(),
                       nullptr};
  return env;
}

// -- Plan validation & serialization -----------------------------------------

TEST(LayoutPlan, IdentityValidatesAndFingerprintsZero) {
  const LayoutPlan plan = make_identity_plan(1000, 42);
  EXPECT_TRUE(plan.is_identity());
  EXPECT_TRUE(plan.validate());
  EXPECT_EQ(plan.fingerprint(), 0u);
  for (NodeId v = 0; v < 1000; ++v) {
    ASSERT_EQ(plan.perm[v], v);
    ASSERT_EQ(plan.inv[v], v);
  }
}

TEST(LayoutPlan, DegreeStrategyOrdersByInDegreeDescending) {
  const Dataset ds = Dataset::build(toy_spec(16));
  const LayoutPlan plan = plan_degree_layout(ds);
  ASSERT_TRUE(plan.validate());
  EXPECT_EQ(plan.strategy, LayoutStrategy::kDegree);
  EXPECT_NE(plan.fingerprint(), 0u);
  for (std::size_t r = 1; r < plan.inv.size(); ++r) {
    const auto prev = ds.in_degree(plan.inv[r - 1]);
    const auto cur = ds.in_degree(plan.inv[r]);
    ASSERT_GE(prev, cur) << "row " << r;
    if (prev == cur) {
      ASSERT_LT(plan.inv[r - 1], plan.inv[r]);
    }
  }
}

TEST(LayoutPlan, HotnessStrategyIsDeterministicAndValid) {
  const Dataset ds = Dataset::build(toy_spec(16));
  auto env = make_env(ds);
  HotnessProfileConfig profile;
  profile.sampler.fanouts = {5, 5};
  profile.presample_batches = 32;
  const LayoutPlan a = plan_hotness_layout(ds, *env.cache, profile);
  const LayoutPlan b = plan_hotness_layout(ds, *env.cache, profile);
  ASSERT_TRUE(a.validate());
  EXPECT_EQ(a.strategy, LayoutStrategy::kHotness);
  EXPECT_EQ(a.perm, b.perm);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), 0u);
}

TEST(LayoutPlan, SerializeRoundTripPreservesEverything) {
  const Dataset ds = Dataset::build(toy_spec(16));
  const LayoutPlan plan = plan_degree_layout(ds);
  const auto bytes = plan.serialize();
  LayoutPlan back;
  ASSERT_TRUE(LayoutPlan::deserialize(bytes.data(), bytes.size(), &back));
  EXPECT_EQ(back.strategy, plan.strategy);
  EXPECT_EQ(back.num_nodes, plan.num_nodes);
  EXPECT_EQ(back.dataset_seed, plan.dataset_seed);
  EXPECT_EQ(back.perm, plan.perm);
  EXPECT_EQ(back.inv, plan.inv);  // rebuilt, not stored
  EXPECT_EQ(back.fingerprint(), plan.fingerprint());
}

TEST(LayoutPlan, FileRoundTrip) {
  const Dataset ds = Dataset::build(toy_spec(16));
  const LayoutPlan plan = plan_degree_layout(ds);
  const std::string path = fresh_dir("planfile") + ".plan";
  ASSERT_TRUE(plan.save(path));
  LayoutPlan back;
  ASSERT_TRUE(LayoutPlan::load(path, &back));
  EXPECT_EQ(back.perm, plan.perm);
  std::filesystem::remove(path);
}

TEST(LayoutPlan, DeserializeRejectsCorruptionAndTruncation) {
  const Dataset ds = Dataset::build(toy_spec(16));
  const LayoutPlan plan = plan_degree_layout(ds);
  const auto bytes = plan.serialize();
  LayoutPlan out;

  // Bit flips anywhere in the stream fail a CRC (header or section).
  for (const std::size_t pos :
       {std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    auto bad = bytes;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(LayoutPlan::deserialize(bad.data(), bad.size(), &out))
        << "flip at " << pos;
  }
  // Truncations at every boundary class fail bounds checks.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, std::size_t{40}, bytes.size() - 1}) {
    EXPECT_FALSE(LayoutPlan::deserialize(bytes.data(), len, &out))
        << "len " << len;
  }
}

TEST(LayoutPlan, DeserializeRejectsNonBijectivePermutation) {
  LayoutPlan plan;
  plan.strategy = LayoutStrategy::kDegree;
  plan.num_nodes = 3;
  plan.perm = {0, 0, 2};  // duplicate row
  const auto bytes = plan.serialize();
  LayoutPlan out;
  EXPECT_FALSE(LayoutPlan::deserialize(bytes.data(), bytes.size(), &out));
}

TEST(LayoutPlan, RandomPermutationRoundTripFuzz) {
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId n = 1 + rng() % 3000;
    LayoutPlan plan;
    plan.strategy = LayoutStrategy::kHotness;
    plan.num_nodes = n;
    plan.profile_seed = rng();
    plan.perm.resize(n);
    std::iota(plan.perm.begin(), plan.perm.end(), NodeId{0});
    std::shuffle(plan.perm.begin(), plan.perm.end(), rng);
    plan.inv = invert_permutation(plan.perm);

    ASSERT_TRUE(plan.validate());
    // perm ∘ inv = id and inv ∘ perm = id.
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(plan.inv[plan.perm[v]], v);
      ASSERT_EQ(plan.perm[plan.inv[v]], v);
    }
    const auto bytes = plan.serialize();
    LayoutPlan back;
    ASSERT_TRUE(LayoutPlan::deserialize(bytes.data(), bytes.size(), &back));
    ASSERT_EQ(back.perm, plan.perm);
    ASSERT_EQ(back.inv, plan.inv);
    ASSERT_EQ(back.fingerprint(), plan.fingerprint());
  }
}

// -- Offset arithmetic: 64-bit safety at large NodeIds ------------------------

TEST(LayoutOffsets, NoThirtyTwoBitOverflowAtLargeNodeIds) {
  OnDiskLayout lay;
  lay.features_offset = 3ull << 20;
  lay.feature_row_bytes = 512;

  // 4e9 * 512 overflows uint32 arithmetic by far; the result must be exact.
  const NodeId big = 4'000'000'000u;
  EXPECT_EQ(lay.feature_offset_of(big),
            (3ull << 20) + 4'000'000'000ull * 512ull);
  EXPECT_EQ(lay.feature_row_of(big), 4'000'000'000ull);

  // Physical-row addressing at the top of the NodeId range.
  EXPECT_EQ(lay.feature_offset_of_row(0xFFFF'FFFFull),
            (3ull << 20) + 0xFFFF'FFFFull * 512ull);
}

TEST(LayoutOffsets, PermutedRowValuesUseSixtyFourBitArithmetic) {
  OnDiskLayout lay;
  lay.features_offset = 1ull << 20;
  lay.feature_row_bytes = 3072;  // mag240m-style unaligned row

  // A small permutation whose *values* sit near the top of the id space:
  // the multiply must widen before scaling by row_bytes.
  const std::vector<NodeId> perm = {0xFFFF'FFFEu, 7u, 0x8000'0000u};
  lay.row_perm = perm.data();
  EXPECT_EQ(lay.feature_row_of(0), 0xFFFF'FFFEull);
  EXPECT_EQ(lay.feature_offset_of(0),
            (1ull << 20) + 0xFFFF'FFFEull * 3072ull);
  EXPECT_EQ(lay.feature_offset_of(1), (1ull << 20) + 7ull * 3072ull);
  EXPECT_EQ(lay.feature_offset_of(2),
            (1ull << 20) + 0x8000'0000ull * 3072ull);
}

// -- DatasetSpec construction validation -------------------------------------

TEST(LayoutDatasetValidation, BuildRejectsMalformedSpecs) {
  DatasetSpec spec = toy_spec(16);
  spec.num_nodes = 0;
  EXPECT_THROW(Dataset::build(spec), std::invalid_argument);

  spec = toy_spec(16);
  spec.feature_dim = 0;
  EXPECT_THROW(Dataset::build(spec), std::invalid_argument);

  spec = toy_spec(16);
  spec.train_fraction = 0.0;
  EXPECT_THROW(Dataset::build(spec), std::invalid_argument);
  spec.train_fraction = -0.5;
  EXPECT_THROW(Dataset::build(spec), std::invalid_argument);
  spec.train_fraction = 1.5;
  EXPECT_THROW(Dataset::build(spec), std::invalid_argument);

  // The boundary cases stay valid.
  spec = toy_spec(16);
  spec.train_fraction = 1.0;
  spec.num_nodes = 4000;
  EXPECT_NO_THROW(Dataset::build(spec));
}

// -- Compile pass: byte preservation and composition -------------------------

TEST(LayoutCompile, EveryNodesRowSurvivesEveryStrategyTransition) {
  Dataset ds = Dataset::build(toy_spec(32));
  const NodeId n = ds.spec().num_nodes;
  const std::uint32_t dim = ds.spec().feature_dim;

  // Ground truth under the shipped identity layout.
  std::vector<float> truth(static_cast<std::size_t>(n) * dim);
  for (NodeId v = 0; v < n; ++v) ds.read_feature_row(v, &truth[v * dim]);
  std::vector<std::uint8_t> original_region(ds.layout().features_bytes);
  ds.image()->read(ds.layout().features_offset,
                   static_cast<std::uint32_t>(original_region.size()),
                   original_region.data());

  const auto check_all_rows = [&](const char* tag) {
    std::vector<float> row(dim);
    for (NodeId v = 0; v < n; ++v) {
      ds.read_feature_row(v, row.data());
      ASSERT_EQ(std::memcmp(row.data(), &truth[v * dim], dim * 4), 0)
          << tag << ": node " << v;
    }
  };

  auto env = make_env(ds);
  HotnessProfileConfig profile;
  profile.sampler.fanouts = {5, 5};
  profile.presample_batches = 32;

  // identity -> degree -> hotness -> identity, checking after each hop.
  auto degree = std::make_shared<const LayoutPlan>(plan_degree_layout(ds));
  auto stats = compile_layout(ds, degree);
  EXPECT_GT(stats.rows_moved, 0u);
  EXPECT_EQ(ds.layout().layout_fingerprint(), degree->fingerprint());
  check_all_rows("degree");

  auto hotness = std::make_shared<const LayoutPlan>(
      plan_hotness_layout(ds, *env.cache, profile));
  compile_layout(ds, hotness);
  EXPECT_EQ(ds.layout().layout_fingerprint(), hotness->fingerprint());
  check_all_rows("hotness");

  compile_layout(ds, nullptr);
  EXPECT_EQ(ds.layout().layout_fingerprint(), 0u);
  EXPECT_EQ(ds.layout().row_perm, nullptr);
  check_all_rows("back-to-identity");

  // Round-tripping restores the feature region bit-exactly.
  std::vector<std::uint8_t> region(original_region.size());
  ds.image()->read(ds.layout().features_offset,
                   static_cast<std::uint32_t>(region.size()), region.data());
  EXPECT_EQ(std::memcmp(region.data(), original_region.data(), region.size()),
            0);
}

TEST(LayoutCompile, RecompilingTheSamePlanIsANoOp) {
  Dataset ds = Dataset::build(toy_spec(32));
  auto degree = std::make_shared<const LayoutPlan>(plan_degree_layout(ds));
  const auto first = compile_layout(ds, degree);
  EXPECT_GT(first.rows_moved, 0u);
  const auto again = compile_layout(ds, degree);
  EXPECT_EQ(again.rows_moved, 0u);
  EXPECT_EQ(ds.layout().layout_fingerprint(), degree->fingerprint());
}

// -- Packed store: hot-set prefetch collapses to sequential reads ------------

TEST(LayoutCompile, PackedHotPrefetchUsesFarFewerReads) {
  Dataset ds = Dataset::build(toy_spec(128));  // 512 B aligned rows
  auto degree = std::make_shared<const LayoutPlan>(plan_degree_layout(ds));
  // The hot set = the 256 highest-degree nodes, i.e. the packed head.
  const std::vector<NodeId> hot(degree->inv.begin(), degree->inv.begin() + 256);
  const CoalesceConfig coalesce;

  const auto prefetch_reads = [&]() -> std::uint64_t {
    auto env = make_env(ds);
    FeatureBuffer fb(FeatureBufferConfig{512, ds.spec().feature_dim},
                     ds.spec().num_nodes);
    env.ssd->reset_stats();
    const HotPrefetchStats st =
        prefetch_hot_rows(fb, hot, ds, *env.ssd, coalesce);
    EXPECT_EQ(st.rows, hot.size());
    // Pinned rows must be the node's true bytes under any layout.
    std::vector<float> truth(ds.spec().feature_dim);
    for (NodeId v : hot) {
      const SlotId slot = fb.hot_slot(v);
      EXPECT_NE(slot, kNoSlot);
      if (slot == kNoSlot) continue;
      ds.read_feature_row(v, truth.data());
      EXPECT_EQ(std::memcmp(fb.slot_data(slot), truth.data(),
                            ds.spec().feature_dim * 4),
                0)
          << "node " << v;
    }
    return env.ssd->stats().reads;
  };

  const std::uint64_t identity_reads = prefetch_reads();
  compile_layout(ds, degree);
  const std::uint64_t packed_reads = prefetch_reads();

  // 256 contiguous 512 B rows = 128 KiB: one ~1 MiB segment.
  EXPECT_LE(packed_reads, 2u);
  EXPECT_LT(packed_reads, identity_reads);
}

// -- Checkpoint integration: resume refuses a mismatched layout --------------

TEST(LayoutCkpt, ResumeRefusesMismatchedLayoutAndAcceptsMatching) {
  Dataset ds = Dataset::build(toy_spec(32));
  auto degree = std::make_shared<const LayoutPlan>(plan_degree_layout(ds));
  compile_layout(ds, degree);

  const std::string dir = fresh_dir("ckpt");
  GnnDriveConfig cfg;
  cfg.common.model.hidden_dim = 16;
  cfg.common.sampler.fanouts = {5, 5};
  cfg.common.batch_seeds = 64;
  cfg.num_samplers = 1;
  cfg.num_extractors = 1;
  cfg.cpu_training = true;
  cfg.ckpt.enabled = true;
  cfg.ckpt.dir = dir;
  cfg.ckpt.fsync = false;

  {
    auto env = make_env(ds);
    GnnDrive system(env.ctx, cfg);
    system.run_epoch(0);
    system.checkpoint();
  }

  // Uncompile to identity: the checkpoint's layout fingerprint no longer
  // matches the image, so resume must refuse loudly.
  compile_layout(ds, nullptr);
  {
    auto env = make_env(ds);
    GnnDrive system(env.ctx, cfg);
    EXPECT_THROW(system.resume(), std::runtime_error);
  }

  // Recompile the same plan: resume proceeds.
  compile_layout(ds, degree);
  {
    auto env = make_env(ds);
    GnnDrive system(env.ctx, cfg);
    const auto info = system.resume();
    ASSERT_TRUE(info.has_value());
  }
  std::filesystem::remove_all(dir);
}

// -- Acceptance differential: byte-identical training across layouts ---------

class LayoutDifferential : public ::testing::Test {
 protected:
  // One dataset compiled in place between runs; each run gets a fresh
  // device/memory/system so only the physical layout differs.
  static void SetUpTestSuite() { dataset = new Dataset(Dataset::build(toy_spec(64))); }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }

  static void compile_strategy(LayoutStrategy s) {
    Dataset& ds = *dataset;
    switch (s) {
      case LayoutStrategy::kIdentity:
        compile_layout(ds, nullptr);
        break;
      case LayoutStrategy::kDegree:
        compile_layout(ds, std::make_shared<const LayoutPlan>(
                               plan_degree_layout(ds)));
        break;
      case LayoutStrategy::kHotness: {
        auto env = make_env(ds);
        HotnessProfileConfig profile;
        profile.sampler.fanouts = {5, 5};
        profile.presample_batches = 32;
        compile_layout(ds, std::make_shared<const LayoutPlan>(
                               plan_hotness_layout(ds, *env.cache, profile)));
        break;
      }
    }
  }

  static constexpr LayoutStrategy kAll[3] = {LayoutStrategy::kIdentity,
                                             LayoutStrategy::kDegree,
                                             LayoutStrategy::kHotness};
  static Dataset* dataset;
};
Dataset* LayoutDifferential::dataset = nullptr;

TEST_F(LayoutDifferential, TrainBatchLossesBitIdenticalAcrossLayouts) {
  const auto run = [&]() {
    auto env = make_env(*dataset);
    GnnDriveConfig cfg;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5};
    cfg.common.batch_seeds = 32;
    cfg.num_samplers = 1;  // 1 sampler + 1 extractor + CPU = bit-exact order
    cfg.num_extractors = 1;
    cfg.cpu_training = true;
    cfg.record_batch_losses = true;
    GnnDrive system(env.ctx, cfg);
    return system.run_epoch(0).batch_losses;
  };

  std::vector<std::vector<double>> losses;
  for (const LayoutStrategy s : kAll) {
    compile_strategy(s);
    losses.push_back(run());
  }
  compile_strategy(LayoutStrategy::kIdentity);
  ASSERT_FALSE(losses[0].empty());
  EXPECT_EQ(losses[0], losses[1]);  // identity == degree, bit-exact
  EXPECT_EQ(losses[0], losses[2]);  // identity == hotness, bit-exact
}

TEST_F(LayoutDifferential, ServePredictionsIdenticalAcrossLayouts) {
  const auto run = [&]() {
    Dataset& ds = *dataset;
    auto env = make_env(ds);
    Telemetry telemetry;
    FeatureBuffer fb(FeatureBufferConfig{2048, ds.spec().feature_dim},
                     ds.spec().num_nodes, &telemetry);
    ModelConfig mc;
    mc.kind = ModelKind::kSage;
    mc.in_dim = ds.spec().feature_dim;
    mc.hidden_dim = 16;
    mc.num_classes = ds.spec().num_classes;
    mc.num_layers = 2;
    GnnModel model(mc);
    RunContext ctx{&ds, env.ssd.get(), env.mem.get(), env.cache.get(),
                   &telemetry};
    ServeConfig cfg;
    cfg.sampler.fanouts = {5, 5};
    cfg.workers = 1;
    cfg.max_batch = 8;
    cfg.max_wait_us = 200.0;
    cfg.slo.deadline_ms = 0.0;
    ServeEngine engine(ctx, cfg, ServeSubstrate{&fb, &model, nullptr, 0});
    std::vector<std::future<InferResult>> futures;
    for (NodeId v = 0; v < 64; ++v) futures.push_back(engine.submit(v * 50));
    engine.start();
    std::vector<std::int32_t> classes;
    for (auto& f : futures) {
      const InferResult r = f.get();
      EXPECT_EQ(static_cast<int>(r.status),
                static_cast<int>(InferStatus::kOk));
      classes.push_back(r.predicted_class);
    }
    engine.stop();
    return classes;
  };

  std::vector<std::vector<std::int32_t>> classes;
  for (const LayoutStrategy s : kAll) {
    compile_strategy(s);
    classes.push_back(run());
  }
  compile_strategy(LayoutStrategy::kIdentity);
  ASSERT_EQ(classes[0].size(), 64u);
  EXPECT_EQ(classes[0], classes[1]);
  EXPECT_EQ(classes[0], classes[2]);
}

TEST_F(LayoutDifferential, GinexLossIdenticalAcrossLayouts) {
  const auto run = [&]() {
    auto env = make_env(*dataset);
    GinexConfig cfg;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5};
    cfg.common.batch_seeds = 16;
    cfg.superbatch = 8;
    Ginex system(env.ctx, cfg);
    return system.run_epoch(0).loss;
  };
  std::vector<double> loss;
  for (const LayoutStrategy s : kAll) {
    compile_strategy(s);
    loss.push_back(run());
  }
  compile_strategy(LayoutStrategy::kIdentity);
  EXPECT_EQ(loss[0], loss[1]);
  EXPECT_EQ(loss[0], loss[2]);
}

TEST_F(LayoutDifferential, PygPlusLossIdenticalAcrossLayouts) {
  const auto run = [&]() {
    auto env = make_env(*dataset);
    PygPlusConfig cfg;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5};
    cfg.common.batch_seeds = 16;
    cfg.num_workers = 1;  // deterministic ready-queue (train) order
    PygPlus system(env.ctx, cfg);
    return system.run_epoch(0).loss;
  };
  std::vector<double> loss;
  for (const LayoutStrategy s : kAll) {
    compile_strategy(s);
    loss.push_back(run());
  }
  compile_strategy(LayoutStrategy::kIdentity);
  EXPECT_EQ(loss[0], loss[1]);
  EXPECT_EQ(loss[0], loss[2]);
}

TEST_F(LayoutDifferential, MariusPartitionsStayConsistentUnderPackedLayouts) {
  // MariusGNN partitions the *physical* store, so under a packed layout the
  // partition membership (and trajectory) legitimately differs — the
  // guarantee is structural: every node maps into a partition whose extent
  // contains its physical row, and training still makes progress.
  for (const LayoutStrategy s : kAll) {
    compile_strategy(s);
    auto env = make_env(*dataset);
    MariusConfig cfg;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5};
    cfg.common.batch_seeds = 16;
    cfg.num_partitions = 8;
    MariusGnn system(env.ctx, cfg);
    const Dataset& ds = *dataset;
    for (NodeId v = 0; v < ds.spec().num_nodes; v += 37) {
      const std::uint64_t row = ds.layout().feature_row_of(v);
      const std::uint32_t part = system.partition_of(v);
      const std::uint64_t part_rows =
          div_ceil(ds.spec().num_nodes, cfg.num_partitions);
      ASSERT_GE(row, static_cast<std::uint64_t>(part) * part_rows);
      ASSERT_LT(row, static_cast<std::uint64_t>(part + 1) * part_rows);
    }
    const EpochStats stats = system.run_epoch(0);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_TRUE(std::isfinite(stats.loss));
  }
  compile_strategy(LayoutStrategy::kIdentity);
}

}  // namespace
}  // namespace gnndrive
