// Checkpoint/recovery tests (src/ckpt, docs/recovery.md).
//
// The heart of the suite is the crash matrix: the writer is aborted at
// EVERY phase boundary of the atomic checkpoint protocol — including a torn
// mid-payload write — and training is resumed from whatever the crash left
// on disk. The acceptance bar is bit-exact determinism: the resumed run's
// per-batch loss trajectory must equal the uninterrupted same-seed run's,
// double-for-double, from the resume point to the end. Media corruption
// (bit flips, truncation) of the newest generation must fall back one
// generation and still satisfy the same bar.
//
// Bit-exactness needs in-order training, so the matrix runs the pipeline
// with one sampler and one extractor (multi-worker resume is exact in
// trained-batch count but approximate in order; see docs/recovery.md).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "serve/engine.hpp"
#include "util/crc32c.hpp"

namespace gnndrive {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "gnndrive-" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(Crc32c, KnownAnswerAndIncremental) {
  // The canonical CRC32C check vector.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  // Incremental form composes: crc(a+b) == crc(b, seed=crc(a)).
  const char* msg = "123456789";
  const std::uint32_t first = crc32c(msg, 4);
  EXPECT_EQ(crc32c(msg + 4, 5, first), 0xE3069283u);
  // One flipped bit changes the digest.
  char corrupted[] = "123456789";
  corrupted[3] ^= 0x01;
  EXPECT_NE(crc32c(corrupted, 9), 0xE3069283u);
}

// -- CheckpointManager unit tests (no pipeline) -----------------------------

ModelConfig small_model_config() {
  ModelConfig mc;
  mc.kind = ModelKind::kSage;
  mc.in_dim = 24;
  mc.hidden_dim = 8;
  mc.num_classes = 4;
  mc.num_layers = 2;
  return mc;
}

/// Fills params + optimizer tensors with a deterministic nontrivial pattern
/// so a roundtrip actually exercises every serialized byte.
void scribble_state(GnnModel& model, std::uint64_t salt) {
  std::uint64_t x = salt;
  for (Param* p : model.params()) {
    for (Tensor* t : {&p->value, &p->m, &p->v}) {
      float* data = t->data();
      for (std::uint64_t i = 0; i < t->size(); ++i) {
        x = splitmix64(x);
        data[i] = static_cast<float>(static_cast<std::int64_t>(x % 2000) -
                                     1000) /
                  997.0f;
      }
    }
  }
}

std::vector<std::vector<float>> snapshot_params(GnnModel& model) {
  std::vector<std::vector<float>> snap;
  for (Param* p : model.params()) {
    for (Tensor* t : {&p->value, &p->m, &p->v}) {
      snap.emplace_back(t->data(), t->data() + t->size());
    }
  }
  return snap;
}

struct CkptFixture {
  ModelConfig mc = small_model_config();
  GnnModel model{small_model_config()};
  Adam adam;
  ModelFingerprint fp = ModelFingerprint::from(small_model_config(), 99, 8);

  TrainCursor cursor(std::uint64_t epoch, std::uint64_t batch) const {
    TrainCursor c;
    c.epoch = epoch;
    c.next_batch = batch;
    c.trained_batches = epoch * 100 + batch;
    c.fingerprint = fp;
    Rng rng(epoch * 31 + batch);
    c.rng_streams.push_back(RngStream{0, rng.state()});
    return c;
  }
};

TEST(Checkpoint, WriteLoadRoundTripIsByteExact) {
  CkptFixture f;
  CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.dir = fresh_dir("roundtrip");
  CheckpointManager mgr(cfg);

  scribble_state(f.model, 0xAB);
  f.adam.set_timestep(1234);
  const auto before = snapshot_params(f.model);
  const TrainCursor cur = f.cursor(3, 17);
  const std::uint64_t gen = mgr.write(cur, f.model, f.adam);
  EXPECT_EQ(gen, 1u);
  EXPECT_EQ(mgr.manifest_generation(), 1u);

  // Clobber the live state, then restore.
  scribble_state(f.model, 0xCD);
  f.adam.set_timestep(0);
  auto loaded = mgr.load_latest(f.model, &f.adam, f.fp);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->fallbacks, 0u);
  EXPECT_EQ(loaded->cursor.epoch, 3u);
  EXPECT_EQ(loaded->cursor.next_batch, 17u);
  EXPECT_EQ(loaded->cursor.trained_batches, cur.trained_batches);
  ASSERT_EQ(loaded->cursor.rng_streams.size(), 1u);
  EXPECT_EQ(loaded->cursor.rng_streams[0].state, cur.rng_streams[0].state);
  EXPECT_EQ(f.adam.timestep(), 1234u);

  const auto after = snapshot_params(f.model);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(after[i].size(), before[i].size());
    EXPECT_EQ(std::memcmp(after[i].data(), before[i].data(),
                          before[i].size() * sizeof(float)),
              0)
        << "tensor " << i << " not byte-exact";
  }
}

TEST(Checkpoint, RetentionKeepsLastK) {
  CkptFixture f;
  CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.dir = fresh_dir("retention");
  cfg.keep_last = 2;
  CheckpointManager mgr(cfg);
  for (std::uint64_t g = 1; g <= 5; ++g) {
    EXPECT_EQ(mgr.write(f.cursor(0, g), f.model, f.adam), g);
  }
  EXPECT_EQ(mgr.generations(), (std::vector<std::uint64_t>{4, 5}));
  EXPECT_EQ(mgr.manifest_generation(), 5u);
}

TEST(Checkpoint, BitFlipFallsBackOneGeneration) {
  CkptFixture f;
  CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.dir = fresh_dir("bitflip");
  CheckpointManager mgr(cfg);
  scribble_state(f.model, 1);
  mgr.write(f.cursor(0, 4), f.model, f.adam);
  const auto good = snapshot_params(f.model);
  scribble_state(f.model, 2);
  mgr.write(f.cursor(0, 8), f.model, f.adam);
  ASSERT_TRUE(mgr.corrupt_flip_bit(2));

  scribble_state(f.model, 3);
  auto loaded = mgr.load_latest(f.model, &f.adam, f.fp);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->fallbacks, 1u);
  EXPECT_EQ(loaded->cursor.next_batch, 4u);
  EXPECT_EQ(snapshot_params(f.model), good);
}

TEST(Checkpoint, TruncationFallsBackOneGeneration) {
  CkptFixture f;
  CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.dir = fresh_dir("truncate");
  CheckpointManager mgr(cfg);
  mgr.write(f.cursor(0, 4), f.model, f.adam);
  mgr.write(f.cursor(0, 8), f.model, f.adam);
  ASSERT_TRUE(mgr.corrupt_truncate(2, 0.5));
  auto loaded = mgr.load_latest(f.model, &f.adam, f.fp);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->fallbacks, 1u);
}

TEST(Checkpoint, AllGenerationsCorruptMeansNoCheckpoint) {
  CkptFixture f;
  CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.dir = fresh_dir("all-corrupt");
  CheckpointManager mgr(cfg);
  mgr.write(f.cursor(0, 4), f.model, f.adam);
  mgr.write(f.cursor(0, 8), f.model, f.adam);
  ASSERT_TRUE(mgr.corrupt_flip_bit(1));
  ASSERT_TRUE(mgr.corrupt_truncate(2, 0.3));
  EXPECT_FALSE(mgr.load_latest(f.model, &f.adam, f.fp).has_value());
}

TEST(Checkpoint, FingerprintMismatchRefusesLoudly) {
  CkptFixture f;
  CheckpointConfig cfg;
  cfg.enabled = true;
  cfg.dir = fresh_dir("fingerprint");
  CheckpointManager mgr(cfg);
  mgr.write(f.cursor(1, 2), f.model, f.adam);
  ModelFingerprint other = f.fp;
  other.run_seed ^= 1;  // a different run: silently adopting would corrupt it
  EXPECT_THROW(mgr.load_latest(f.model, &f.adam, other), std::runtime_error);
}

// Manager-level crash matrix: abort the writer at every phase boundary and
// assert the directory recovers to a valid generation — the previous one
// for crashes before the data rename, the new one at or after it.
TEST(Checkpoint, CrashMatrixRecoversAValidGeneration) {
  for (std::uint32_t ph = 0; ph < static_cast<std::uint32_t>(CkptPhase::kCount);
       ++ph) {
    const auto phase = static_cast<CkptPhase>(ph);
    SCOPED_TRACE(ckpt_phase_name(phase));
    CkptFixture f;
    CheckpointConfig cfg;
    cfg.enabled = true;
    cfg.dir = fresh_dir(std::string("crash-") + ckpt_phase_name(phase));
    CheckpointManager mgr(cfg);
    scribble_state(f.model, 10);
    mgr.write(f.cursor(0, 4), f.model, f.adam);  // generation 1 (intact)
    const auto gen1_params = snapshot_params(f.model);

    scribble_state(f.model, 20);
    const auto gen2_params = snapshot_params(f.model);
    CrashInjector injector(phase, /*at_generation=*/2);
    mgr.set_crash_injector(&injector);
    EXPECT_THROW(mgr.write(f.cursor(0, 8), f.model, f.adam), CrashInjected);
    EXPECT_TRUE(injector.fired());

    // "Reboot": a fresh manager over the same directory.
    CheckpointManager recovered(cfg);
    scribble_state(f.model, 30);
    auto loaded = recovered.load_latest(f.model, &f.adam, f.fp);
    ASSERT_TRUE(loaded.has_value());
    if (phase < CkptPhase::kAfterDataRename) {
      EXPECT_EQ(loaded->generation, 1u);
      EXPECT_EQ(loaded->cursor.next_batch, 4u);
      EXPECT_EQ(snapshot_params(f.model), gen1_params);
    } else {
      // The data file is complete even where the manifest is stale: the
      // loader prefers the newest file that validates.
      EXPECT_EQ(loaded->generation, 2u);
      EXPECT_EQ(loaded->cursor.next_batch, 8u);
      EXPECT_EQ(snapshot_params(f.model), gen2_params);
    }
    EXPECT_EQ(loaded->fallbacks, 0u);  // torn temps are ignored, not tried

    // The directory stays writable: the next generation lands after the
    // newest complete one and the stray temp files are swept.
    const std::uint64_t next = recovered.write(f.cursor(1, 0), f.model,
                                               f.adam);
    EXPECT_GT(next, loaded->generation);
    for (const auto& entry : fs::directory_iterator(cfg.dir)) {
      EXPECT_NE(entry.path().extension(), ".tmp");
    }
  }
}

// -- Pipeline-level crash matrix (the acceptance criterion) -----------------

struct CkptPipeline : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(/*feature_dim=*/32)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    std::unique_ptr<Telemetry> telemetry;
    RunContext ctx;
  };
  Env make_env() {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 5.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(256ull << 20);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.telemetry = std::make_unique<Telemetry>();
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), env.telemetry.get()};
    return env;
  }

  /// Deterministic, in-order training: one sampler, one extractor, CPU
  /// training, per-batch loss recording. Bit-exact resume needs in-order
  /// Adam steps (docs/recovery.md).
  GnnDriveConfig deterministic_config() {
    GnnDriveConfig cfg;
    cfg.common.model.kind = ModelKind::kSage;
    cfg.common.model.hidden_dim = 8;
    cfg.common.sampler.fanouts = {5, 5};
    cfg.common.batch_seeds = 64;
    cfg.num_samplers = 1;
    cfg.num_extractors = 1;
    cfg.cpu_training = true;
    cfg.record_batch_losses = true;
    return cfg;
  }

  static void expect_no_leaks(GnnDrive& system) {
    for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
      ASSERT_EQ(system.feature_buffer().entry(v).ref_count, 0u)
          << "leaked reference on node " << v;
    }
    EXPECT_EQ(system.feature_buffer().standby_size(),
              system.feature_buffer().num_slots());
  }

  /// Uninterrupted same-seed run: per-epoch loss trajectories, the ground
  /// truth every crash/resume variant must reproduce exactly.
  std::vector<std::vector<double>> reference_losses(std::uint64_t epochs) {
    Env env = make_env();
    GnnDriveConfig cfg = deterministic_config();
    GnnDrive system(env.ctx, cfg);
    std::vector<std::vector<double>> losses;
    for (std::uint64_t e = 0; e < epochs; ++e) {
      losses.push_back(system.run_epoch(e).batch_losses);
    }
    return losses;
  }
};

Dataset* CkptPipeline::dataset = nullptr;

TEST_F(CkptPipeline, CrashMatrixResumesBitExact) {
  constexpr std::uint64_t kEpochs = 2;
  const auto reference = reference_losses(kEpochs);
  ASSERT_GE(reference[0].size(), 7u);  // enough batches for mid-epoch crashes

  for (std::uint32_t ph = 0; ph < static_cast<std::uint32_t>(CkptPhase::kCount);
       ++ph) {
    const auto phase = static_cast<CkptPhase>(ph);
    SCOPED_TRACE(ckpt_phase_name(phase));
    const std::string dir =
        fresh_dir(std::string("pipeline-crash-") + ckpt_phase_name(phase));

    GnnDriveConfig cfg = deterministic_config();
    cfg.ckpt.enabled = true;
    cfg.ckpt.dir = dir;
    cfg.ckpt.interval_batches = 2;
    // Generations 1 and 2 land intact (after batches 2 and 4); the writer
    // dies at this phase of generation 3 (after batch 6), aborting the
    // epoch exactly as a process death would.
    CrashInjector injector(phase, /*at_generation=*/3);

    Env env = make_env();
    {
      GnnDrive crashed(env.ctx, cfg);
      crashed.set_crash_injector(&injector);
      EXPECT_THROW(crashed.run_epoch(0), CrashInjected);
      EXPECT_TRUE(injector.fired());
    }  // the dead process: instance discarded with whatever it held

    // Reboot: a fresh pipeline adopts the newest valid generation...
    GnnDrive resumed(env.ctx, cfg);
    auto info = resumed.resume();
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->fallbacks, 0u);
    EXPECT_EQ(info->epoch, 0u);
    if (phase < CkptPhase::kAfterDataRename) {
      EXPECT_EQ(info->generation, 2u);
      EXPECT_EQ(info->next_batch, 4u);
    } else {
      EXPECT_EQ(info->generation, 3u);
      EXPECT_EQ(info->next_batch, 6u);
    }

    // ...and replays the rest of the run with a bit-exact loss trajectory.
    for (std::uint64_t e = info->epoch; e < kEpochs; ++e) {
      const EpochStats stats = resumed.run_epoch(e);
      const std::size_t skip = e == info->epoch ? info->next_batch : 0;
      ASSERT_EQ(stats.batch_losses.size(), reference[e].size() - skip);
      for (std::size_t b = 0; b < stats.batch_losses.size(); ++b) {
        EXPECT_EQ(stats.batch_losses[b], reference[e][skip + b])
            << "loss diverged at epoch " << e << " batch " << skip + b;
      }
    }
    expect_no_leaks(resumed);
  }
}

TEST_F(CkptPipeline, MediaCorruptionFallsBackAndResumesBitExact) {
  constexpr std::uint64_t kEpochs = 2;
  const auto reference = reference_losses(kEpochs);

  for (const bool flip : {true, false}) {
    SCOPED_TRACE(flip ? "bit-flip" : "truncate");
    const std::string dir =
        fresh_dir(std::string("pipeline-corrupt-") +
                  (flip ? "flip" : "trunc"));
    GnnDriveConfig cfg = deterministic_config();
    cfg.ckpt.enabled = true;
    cfg.ckpt.dir = dir;
    cfg.ckpt.interval_batches = 2;

    Env env = make_env();
    std::uint64_t newest = 0;
    {
      GnnDrive first(env.ctx, cfg);
      first.run_epoch(0);  // interval + boundary checkpoints
      newest = first.checkpoint_manager()->manifest_generation();
      ASSERT_GE(newest, 2u);
      // Media corruption hits the newest generation after the fact.
      if (flip) {
        ASSERT_TRUE(first.checkpoint_manager()->corrupt_flip_bit(newest));
      } else {
        ASSERT_TRUE(first.checkpoint_manager()->corrupt_truncate(newest, 0.6));
      }
    }

    GnnDrive resumed(env.ctx, cfg);
    auto info = resumed.resume();
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->generation, newest - 1);
    EXPECT_EQ(info->fallbacks, 1u);

    for (std::uint64_t e = info->epoch; e < kEpochs; ++e) {
      const EpochStats stats = resumed.run_epoch(e);
      const std::size_t skip = e == info->epoch ? info->next_batch : 0;
      ASSERT_EQ(stats.batch_losses.size(), reference[e].size() - skip);
      for (std::size_t b = 0; b < stats.batch_losses.size(); ++b) {
        EXPECT_EQ(stats.batch_losses[b], reference[e][skip + b]);
      }
    }
    expect_no_leaks(resumed);
  }
}

TEST_F(CkptPipeline, RequestStopDrainsCheckpointsAndResumesBitExact) {
  constexpr std::uint64_t kEpochs = 2;
  const auto reference = reference_losses(kEpochs);

  GnnDriveConfig cfg = deterministic_config();
  cfg.ckpt.enabled = true;

  // The stop request races the (fast) toy epoch; retry with a shorter delay
  // until it lands mid-epoch, which is the interesting drain path.
  Env env = make_env();
  std::uint64_t stopped_at = 0;
  bool caught_mid_epoch = false;
  for (int attempt = 0; attempt < 8 && !caught_mid_epoch; ++attempt) {
    cfg.ckpt.dir = fresh_dir("pipeline-stop");
    GnnDrive system(env.ctx, cfg);
    std::thread stopper([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2 + 3 * attempt));
      system.request_stop();
    });
    const EpochStats stats = system.run_epoch(0);
    stopper.join();
    // The drain must finish in-flight batches (no exception, no leak) and
    // the boundary checkpoint records the interruption point.
    expect_no_leaks(system);
    if (!stats.interrupted || stats.batch_losses.size() >= reference[0].size())
      continue;
    caught_mid_epoch = true;
    stopped_at = stats.batch_losses.size();
    // Losses trained before the stop already match the reference.
    for (std::size_t b = 0; b < stopped_at; ++b) {
      EXPECT_EQ(stats.batch_losses[b], reference[0][b]);
    }
  }
  if (!caught_mid_epoch) {
    GTEST_SKIP() << "every attempt finished before the stop request landed";
  }

  GnnDrive resumed(env.ctx, cfg);
  auto info = resumed.resume();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->epoch, 0u);
  EXPECT_EQ(info->next_batch, stopped_at);
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    const EpochStats stats = resumed.run_epoch(e);
    const std::size_t skip = e == 0 ? stopped_at : 0;
    ASSERT_EQ(stats.batch_losses.size(), reference[e].size() - skip);
    for (std::size_t b = 0; b < stats.batch_losses.size(); ++b) {
      EXPECT_EQ(stats.batch_losses[b], reference[e][skip + b]);
    }
  }
}

// -- Serve hot-swap ---------------------------------------------------------

TEST_F(CkptPipeline, ServeHotSwapDropsNoInflightRequests) {
  const std::string dir = fresh_dir("serve-hot-swap");
  GnnDriveConfig cfg = deterministic_config();
  cfg.ckpt.enabled = true;
  cfg.ckpt.dir = dir;

  Env env = make_env();
  GnnDrive system(env.ctx, cfg);
  system.run_epoch(0);  // boundary checkpoint -> generation >= 1
  const std::uint64_t newest = system.checkpoint_manager()
                                   ->manifest_generation();
  ASSERT_GE(newest, 1u);

  ServeConfig serve_cfg;
  serve_cfg.workers = 2;
  serve_cfg.max_batch = 8;
  serve_cfg.max_wait_us = 200.0;
  serve_cfg.slo.deadline_ms = 10000.0;  // generous: nothing sheds
  ServeEngine engine(env.ctx, serve_cfg, system);
  engine.start();

  // Stream requests while hot swaps land mid-flight: drain-and-swap must
  // resolve every admitted future, with zero drops.
  std::vector<std::future<InferResult>> futures;
  constexpr std::uint32_t kWaves = 8;
  constexpr std::uint32_t kPerWave = 24;
  for (std::uint32_t wave = 0; wave < kWaves; ++wave) {
    for (std::uint32_t i = 0; i < kPerWave; ++i) {
      futures.push_back(engine.submit(
          (wave * kPerWave + i) * 61 % dataset->spec().num_nodes));
    }
    EXPECT_EQ(engine.hot_swap_from(*system.checkpoint_manager(),
                                   system.fingerprint()),
              newest);
  }
  std::uint32_t resolved = 0;
  for (auto& f : futures) {
    const InferResult res = f.get();  // a dropped future would hang here
    EXPECT_EQ(res.status, InferStatus::kOk);
    ++resolved;
  }
  EXPECT_EQ(resolved, kWaves * kPerWave);
  EXPECT_EQ(engine.model_generation(), newest);
  engine.stop();
  expect_no_leaks(system);

  // A hot swap from an empty directory must leave the replicas untouched.
  CheckpointConfig empty_cfg;
  empty_cfg.enabled = true;
  empty_cfg.dir = fresh_dir("serve-hot-swap-empty");
  CheckpointManager empty(empty_cfg);
  EXPECT_EQ(engine.hot_swap_from(empty, system.fingerprint()), 0u);
  EXPECT_EQ(engine.model_generation(), newest);
}

// -- Kill-and-resume soak (slow label) --------------------------------------

struct CkptSoak : CkptPipeline {};

TEST_F(CkptSoak, KillAndResumeConvergesUnderSsdFaults) {
  constexpr std::uint64_t kTargetEpochs = 3;
  const std::string dir = fresh_dir("soak-kill-resume");

  // Multi-worker pipeline (approximate resume) with storage faults on top:
  // the soak asserts liveness and leak-freedom, not bit-exactness.
  GnnDriveConfig cfg;
  cfg.common.model.kind = ModelKind::kSage;
  cfg.common.model.hidden_dim = 8;
  cfg.common.sampler.fanouts = {5, 5};
  cfg.common.batch_seeds = 32;
  cfg.cpu_training = true;
  cfg.ckpt.enabled = true;
  cfg.ckpt.dir = dir;
  cfg.ckpt.interval_batches = 4;
  cfg.ckpt.keep_last = 3;

  Env env = make_env();
  SsdFaultConfig faults;
  faults.enabled = true;
  faults.eio_probability = 0.002;
  faults.spike_probability = 0.01;
  faults.spike_multiplier = 5.0;
  env.ssd->set_fault_config(faults);

  std::uint64_t completed_epochs = 0;
  int rounds = 0;
  for (; rounds < 40 && completed_epochs < kTargetEpochs; ++rounds) {
    GnnDrive system(env.ctx, cfg);
    std::uint64_t first_epoch = 0;
    if (auto info = system.resume()) first_epoch = info->epoch;

    // The killer: request a drain shortly into the round, like an operator
    // bouncing the job. Some rounds finish first — also fine.
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      system.request_stop();
    });
    for (std::uint64_t e = first_epoch; e < kTargetEpochs; ++e) {
      const EpochStats stats = system.run_epoch(e);
      if (stats.interrupted) break;
      completed_epochs = e + 1;
    }
    killer.join();
    expect_no_leaks(system);
  }
  EXPECT_EQ(completed_epochs, kTargetEpochs)
      << "made no steady progress across " << rounds << " kill/resume rounds";

  // The final state is adoptable and evaluates.
  GnnDrive final_system(env.ctx, cfg);
  ASSERT_TRUE(final_system.resume().has_value());
  const double acc = final_system.evaluate();
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace gnndrive
