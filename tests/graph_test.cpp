// Graph builders, generators, and dataset construction/layout.
#include <gtest/gtest.h>

#include <set>

#include "graph/dataset.hpp"
#include "graph/generators.hpp"

namespace gnndrive {
namespace {

TEST(BuildCsc, NeighborsSortedByDestination) {
  // Edges (src, dst).
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 2}, {1, 2}, {3, 0}, {2, 1}, {0, 1}};
  CscGraph g = build_csc(4, edges);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 2u);
  EXPECT_EQ(g.in_degree(2), 2u);
  EXPECT_EQ(g.in_degree(3), 0u);
  // In-neighbors of node 2 are {0, 1}.
  std::set<NodeId> n2(g.indices.begin() + g.indptr[2],
                      g.indices.begin() + g.indptr[3]);
  EXPECT_EQ(n2, (std::set<NodeId>{0, 1}));
}

TEST(CommunityGraph, EdgeCountAndLabels) {
  CommunityGraphParams p;
  p.num_nodes = 1000;
  p.num_edges = 10000;
  p.num_communities = 8;
  p.seed = 5;
  CommunityGraph g = generate_community_graph(p);
  EXPECT_EQ(g.csc.num_nodes, 1000u);
  EXPECT_EQ(g.csc.num_edges(), 10000u);
  for (NodeId v = 0; v < 1000; ++v) {
    EXPECT_EQ(g.labels[v], static_cast<std::int32_t>(v % 8));
  }
}

TEST(CommunityGraph, DeterministicPerSeed) {
  CommunityGraphParams p;
  p.num_nodes = 500;
  p.num_edges = 4000;
  p.seed = 77;
  CommunityGraph a = generate_community_graph(p);
  CommunityGraph b = generate_community_graph(p);
  EXPECT_EQ(a.csc.indices, b.csc.indices);
  p.seed = 78;
  CommunityGraph c = generate_community_graph(p);
  EXPECT_NE(a.csc.indices, c.csc.indices);
}

TEST(CommunityGraph, IntraCommunityBias) {
  CommunityGraphParams p;
  p.num_nodes = 2000;
  p.num_edges = 40000;
  p.num_communities = 8;
  p.intra_prob = 0.8;
  p.seed = 9;
  CommunityGraph g = generate_community_graph(p);
  std::uint64_t intra = 0;
  for (NodeId dst = 0; dst < p.num_nodes; ++dst) {
    for (EdgeId e = g.csc.indptr[dst]; e < g.csc.indptr[dst + 1]; ++e) {
      if (g.labels[g.csc.indices[e]] == g.labels[dst]) ++intra;
    }
  }
  const double frac =
      static_cast<double>(intra) / static_cast<double>(g.csc.num_edges());
  EXPECT_GT(frac, 0.7);  // 0.8 forced + chance agreements
}

TEST(CommunityGraph, DegreeSkew) {
  CommunityGraphParams p;
  p.num_nodes = 10000;
  p.num_edges = 100000;
  p.skew = 2.0;
  p.seed = 4;
  CommunityGraph g = generate_community_graph(p);
  // Low ids should collect far more in-edges than high ids.
  std::uint64_t low = 0;
  std::uint64_t high = 0;
  for (NodeId v = 0; v < 1000; ++v) low += g.csc.in_degree(v);
  for (NodeId v = 9000; v < 10000; ++v) high += g.csc.in_degree(v);
  EXPECT_GT(low, high * 5);
}

TEST(Rmat, PowerOfTwoAndDeterministic) {
  CscGraph a = generate_rmat(1024, 8000, 0.57, 0.19, 0.19, 3);
  CscGraph b = generate_rmat(1024, 8000, 0.57, 0.19, 0.19, 3);
  EXPECT_EQ(a.num_nodes, 1024u);
  EXPECT_EQ(a.num_edges(), 8000u);
  EXPECT_EQ(a.indices, b.indices);
}

TEST(DatasetSpec, RegistryMatchesPaperScaling) {
  const DatasetSpec papers = mini_spec("papers100m");
  EXPECT_EQ(papers.num_nodes, 222000u);
  EXPECT_EQ(papers.feature_dim, 128u);
  const DatasetSpec mag = mini_spec("mag240m");
  EXPECT_EQ(mag.feature_dim, 768u);
  EXPECT_EQ(mag.num_nodes, 244000u);
  // Dimension override for sweeps.
  EXPECT_EQ(mini_spec("twitter", 512).feature_dim, 512u);
  // "-mini" suffix tolerated.
  EXPECT_EQ(mini_spec("friendster-mini").num_nodes,
            mini_spec("friendster").num_nodes);
}

TEST(Dataset, LayoutIsSectorAlignedAndOrdered) {
  Dataset ds = Dataset::build(toy_spec());
  const auto& lay = ds.layout();
  EXPECT_EQ(lay.features_offset % kSectorSize, 0u);
  EXPECT_EQ(lay.scratch_offset % kSectorSize, 0u);
  EXPECT_GE(lay.features_offset, lay.indices_bytes);
  EXPECT_GE(lay.labels_offset, lay.features_offset + lay.features_bytes);
  EXPECT_EQ(lay.total_bytes, ds.image()->size());
}

TEST(Dataset, IndptrConsistentWithEdges) {
  Dataset ds = Dataset::build(toy_spec());
  EXPECT_EQ(ds.indptr().size(), ds.spec().num_nodes + 1);
  EXPECT_EQ(ds.indptr().back(), ds.spec().num_edges);
}

TEST(Dataset, OnDiskIndicesMatchInMemoryGraph) {
  Dataset ds = Dataset::build(toy_spec(), /*keep_graph=*/true);
  ASSERT_TRUE(ds.csc().has_value());
  const CscGraph& csc = *ds.csc();
  for (NodeId v = 0; v < 100; ++v) {
    const auto from_disk = ds.read_neighbors(v);
    std::vector<NodeId> expected(csc.indices.begin() + csc.indptr[v],
                                 csc.indices.begin() + csc.indptr[v + 1]);
    EXPECT_EQ(from_disk, expected) << "node " << v;
  }
}

TEST(Dataset, FeatureRowsDeterministicAndLabelCorrelated) {
  Dataset a = Dataset::build(toy_spec());
  Dataset b = Dataset::build(toy_spec());
  std::vector<float> ra(a.spec().feature_dim);
  std::vector<float> rb(b.spec().feature_dim);
  a.read_feature_row(123, ra.data());
  b.read_feature_row(123, rb.data());
  EXPECT_EQ(ra, rb);

  // Same-label nodes are closer (feature = centroid + noise).
  std::vector<float> same(a.spec().feature_dim);
  std::vector<float> other(a.spec().feature_dim);
  const std::uint32_t c = a.spec().num_classes;
  a.read_feature_row(123 + c, same.data());   // same community (id % c)
  a.read_feature_row(124, other.data());      // different community
  double d_same = 0;
  double d_other = 0;
  for (std::uint32_t k = 0; k < a.spec().feature_dim; ++k) {
    d_same += (ra[k] - same[k]) * (ra[k] - same[k]);
    d_other += (ra[k] - other[k]) * (ra[k] - other[k]);
  }
  EXPECT_LT(d_same, d_other);
}

TEST(Dataset, SplitsDisjointAndSized) {
  Dataset ds = Dataset::build(toy_spec());
  std::set<NodeId> train(ds.train_nodes().begin(), ds.train_nodes().end());
  EXPECT_EQ(train.size(), ds.train_nodes().size());  // no duplicates
  for (NodeId v : ds.valid_nodes()) EXPECT_EQ(train.count(v), 0u);
  EXPECT_NEAR(static_cast<double>(train.size()),
              ds.spec().train_fraction * ds.spec().num_nodes, 1.0);
}

TEST(Dataset, LabelsOnDiskMatchHostCopy) {
  Dataset ds = Dataset::build(toy_spec());
  std::vector<std::int32_t> disk(ds.spec().num_nodes);
  ds.image()->read(ds.layout().labels_offset,
                   static_cast<std::uint32_t>(ds.layout().labels_bytes),
                   disk.data());
  EXPECT_EQ(disk, ds.labels());
}

}  // namespace
}  // namespace gnndrive
