// Multi-GPU data parallelism: replica lock-step, gradient equivalence,
// batch coverage and epoch aggregation.
#include <gtest/gtest.h>

#include "core/multi_gpu.hpp"

namespace gnndrive {
namespace {

struct MultiGpuFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(64)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    RunContext ctx;
  };
  Env make_env() {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 10.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(256ull << 20);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), nullptr};
    return env;
  }

  MultiGpuConfig config(std::uint32_t replicas) {
    MultiGpuConfig cfg;
    cfg.replica.common.model.kind = ModelKind::kSage;
    cfg.replica.common.model.hidden_dim = 16;
    cfg.replica.common.sampler.fanouts = {4, 4, 4};
    cfg.replica.common.batch_seeds = 16;
    cfg.num_replicas = replicas;
    return cfg;
  }
};
Dataset* MultiGpuFixture::dataset = nullptr;

TEST_F(MultiGpuFixture, TwoReplicasTrainAndConverge) {
  auto env = make_env();
  MultiGpuGnnDrive system(env.ctx, config(2));
  const EpochStats first = system.run_epoch(0);
  EXPECT_GT(first.batches, 0u);
  EpochStats last{};
  for (int e = 1; e < 4; ++e) last = system.run_epoch(e);
  EXPECT_LT(last.loss, first.loss);
  EXPECT_GT(system.evaluate(), 0.4);
}

TEST_F(MultiGpuFixture, ReplicasStayInLockStep) {
  auto env = make_env();
  MultiGpuGnnDrive system(env.ctx, config(2));
  system.run_epoch(0);
  // Per-step gradient averaging from identical init keeps parameters
  // bitwise identical across replicas.
  auto& m0 = system.replica(0).model();
  auto& m1 = system.replica(1).model();
  for (std::size_t p = 0; p < m0.params().size(); ++p) {
    const Tensor& a = m0.params()[p]->value;
    const Tensor& b = m1.params()[p]->value;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.data()[i], b.data()[i]) << "param " << p << " idx " << i;
    }
  }
}

TEST_F(MultiGpuFixture, BatchCountsEqualAcrossReplicas) {
  auto env = make_env();
  MultiGpuGnnDrive system(env.ctx, config(3));
  const EpochStats stats = system.run_epoch(0);
  // Aggregated count is replicas x equal per-replica count.
  EXPECT_EQ(stats.batches % 3, 0u);
  EXPECT_GT(stats.batches, 0u);
}

TEST_F(MultiGpuFixture, SingleReplicaMatchesPlainPipeline) {
  auto env = make_env();
  MultiGpuGnnDrive system(env.ctx, config(1));
  const EpochStats stats = system.run_epoch(0);
  const std::size_t expected = div_ceil(dataset->train_nodes().size(), 16);
  EXPECT_EQ(stats.batches, expected);
}

}  // namespace
}  // namespace gnndrive
