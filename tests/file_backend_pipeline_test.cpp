// End-to-end pipeline over a REAL file: the dataset image is copied into a
// FileBackend and GNNDrive trains against pread/pwrite instead of the RAM
// image — the deployment path a user with an actual disk would take.
#include <gtest/gtest.h>
#include <unistd.h>

#include "core/pipeline.hpp"

namespace gnndrive {
namespace {

TEST(FileBackendPipeline, TrainsAgainstARealFile) {
  Dataset dataset = Dataset::build(toy_spec(64));

  // Copy the generated image into a file-backed device.
  const std::string path = ::testing::TempDir() + "/gnndrive_dataset.img";
  auto file_backend =
      std::make_shared<FileBackend>(path, dataset.image()->size());
  {
    constexpr std::uint32_t kChunk = 1 << 20;
    std::vector<std::uint8_t> buf(kChunk);
    for (std::uint64_t off = 0; off < dataset.image()->size();
         off += kChunk) {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kChunk, dataset.image()->size() - off));
      dataset.image()->read(off, n, buf.data());
      file_backend->write(off, n, buf.data());
    }
  }
  SsdConfig ssd_cfg;
  ssd_cfg.read_latency_us = 10.0;
  SsdDevice ssd(ssd_cfg, file_backend);

  HostMemory mem(64ull << 20);
  PageCache cache(mem, ssd);
  RunContext ctx{&dataset, &ssd, &mem, &cache, nullptr};

  GnnDriveConfig cfg;
  cfg.common.model.kind = ModelKind::kSage;
  cfg.common.model.hidden_dim = 16;
  cfg.common.sampler.fanouts = {5, 5};
  cfg.common.batch_seeds = 16;
  GnnDrive system(ctx, cfg);

  const EpochStats first = system.run_epoch(0);
  EpochStats last{};
  for (int e = 1; e < 3; ++e) last = system.run_epoch(e);
  EXPECT_GT(first.batches, 0u);
  EXPECT_LT(last.loss, first.loss);

  // Extracted bytes off the real file match the in-memory ground truth.
  const auto dim = dataset.spec().feature_dim;
  std::vector<float> truth(dim);
  std::uint64_t checked = 0;
  for (NodeId v = 0; v < dataset.spec().num_nodes && checked < 200; ++v) {
    const auto e = system.feature_buffer().entry(v);
    if (!e.valid) continue;
    dataset.read_feature_row(v, truth.data());
    const float* got = system.feature_buffer().slot_data(e.slot);
    for (std::uint32_t k = 0; k < dim; ++k) {
      ASSERT_EQ(got[k], truth[k]);
    }
    ++checked;
  }
  EXPECT_GT(checked, 50u);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace gnndrive
