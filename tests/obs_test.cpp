// Observability layer: metrics registry, span tracer, Chrome-trace export,
// and the end-to-end pipeline acceptance check — every trained batch must
// show sample/extract/train/release spans in the exported trace, and the
// end-of-epoch report must carry per-stage percentiles and queue gauges.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {
namespace {

// -- Minimal JSON validator ---------------------------------------------------
// Structural parser covering the tracer's output grammar (objects, arrays,
// strings, numbers, bare literals). Rejects trailing garbage.
struct JsonParser {
  const char* p;
  const char* end;
  explicit JsonParser(const std::string& s)
      : p(s.data()), end(s.data() + s.size()) {}
  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool value() {
    ws();
    if (p >= end) return false;
    if (*p == '{') return object();
    if (*p == '[') return array();
    if (*p == '"') return string();
    return number_or_literal();
  }
  bool object() {
    ++p;
    ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++p;
    ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') ++p;
      ++p;
    }
    if (p >= end) return false;
    ++p;
    return true;
  }
  bool number_or_literal() {
    const char* s = p;
    while (p < end && (std::isalnum(static_cast<unsigned char>(*p)) ||
                       *p == '-' || *p == '+' || *p == '.')) {
      ++p;
    }
    return p > s;
  }
  bool parse() {
    if (!value()) return false;
    ws();
    return p == end;
  }
};

/// Extracts (span name -> set of batch args) from the exported trace by
/// scanning the fixed event layout the tracer emits.
std::map<std::string, std::set<std::uint64_t>> spans_by_name(
    const std::string& json) {
  std::map<std::string, std::set<std::uint64_t>> out;
  std::size_t pos = 0;
  const std::string name_key = "{\"name\":\"";
  while ((pos = json.find(name_key, pos)) != std::string::npos) {
    pos += name_key.size();
    const std::size_t name_end = json.find('"', pos);
    if (name_end == std::string::npos) break;
    const std::string name = json.substr(pos, name_end - pos);
    const std::size_t obj_end = json.find('}', name_end);
    const std::size_t batch_key = json.find("\"batch\":", name_end);
    if (batch_key != std::string::npos && batch_key < json.find(name_key, name_end)) {
      out[name].insert(std::strtoull(json.c_str() + batch_key + 8, nullptr, 10));
    } else {
      out[name];  // counter event: name seen, no batch
    }
    pos = obj_end == std::string::npos ? name_end : obj_end;
  }
  return out;
}

// -- Metrics registry ---------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("io.submitted");
  Counter& c2 = reg.counter("io.submitted");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  c2.add();
  EXPECT_EQ(c1.value(), 4u);

  Gauge& g = reg.gauge("q.depth");
  g.set(5);
  g.add(2);
  g.sub(4);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 7);

  ConcurrentHistogram& h = reg.histogram("lat.us");
  for (int i = 0; i < 100; ++i) h.add_us(100.0);
  EXPECT_EQ(h.count(), 100u);
  const LatencyHistogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 100u);
  EXPECT_NEAR(snap.mean_us(), 100.0, 0.5);
  EXPECT_LE(snap.percentile_us(0.99), snap.max_us());
}

TEST(MetricsRegistry, SnapshotAndReportContainInstruments) {
  MetricsRegistry reg;
  reg.counter("fb.loads").add(7);
  reg.gauge("fb.standby").set(42);
  reg.histogram("stage.train.us").add_us(250.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "fb.loads");
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second.value, 42);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count(), 1u);

  const std::string report = reg.format_report();
  EXPECT_NE(report.find("fb.loads"), std::string::npos);
  EXPECT_NE(report.find("fb.standby"), std::string::npos);
  EXPECT_NE(report.find("stage.train.us"), std::string::npos);
}

TEST(ConcurrentHistogram, MatchesSingleThreadedHistogram) {
  ConcurrentHistogram ch;
  LatencyHistogram ground;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ch, t] {
      for (int i = 0; i < 250; ++i) {
        ch.add_us(static_cast<double>((t * 250 + i) % 1000));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < 1000; ++i) ground.add_us(static_cast<double>(i % 1000));
  const LatencyHistogram snap = ch.snapshot();
  EXPECT_EQ(snap.count(), ground.count());
  EXPECT_NEAR(snap.mean_us(), ground.mean_us(), 0.01);
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(snap.bucket(i), ground.bucket(i)) << "bucket " << i;
  }
  EXPECT_NEAR(snap.percentile_us(0.5), ground.percentile_us(0.5), 1e-9);
}

// -- Span tracer --------------------------------------------------------------

TEST(SpanTracer, DisabledRecordsNothing) {
  SpanTracer tracer;
  const TimePoint t = Clock::now();
  tracer.record(kSpanTrain, 1, 0, t, t + from_us(100.0));
  tracer.record_rel(kSpanSsdWait, 1, 0, 0, 1000);
  tracer.sample_counter("q", 3.0);
  { ScopedSpan s(&tracer, kSpanSample, 2, 0); }
  { ScopedSpan s(nullptr, kSpanSample, 2, 0); }  // null tracer harmless
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.now_ns(), 0u);
}

TEST(SpanTracer, RecordExportAndSummary) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  const TimePoint t = Clock::now();
  tracer.record(kSpanSample, 417, 2, t, t + from_us(50.0));
  tracer.record(kSpanExtract, 417, 2, t + from_us(60.0), t + from_us(200.0));
  tracer.record_rel(kSpanSsdWait, 417, 2, 60000, 90000);
  tracer.sample_counter("extract_q", 4.0);
  EXPECT_EQ(tracer.span_count(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].begin_ns, spans[i - 1].begin_ns);  // sorted
  }
  EXPECT_EQ(spans[0].batch, 417u);
  EXPECT_EQ(spans[0].epoch, 2u);

  const std::string json = tracer.chrome_trace_json();
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"batch\":417"), std::string::npos);

  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("extract"), std::string::npos);
  EXPECT_NE(summary.find("sample"), std::string::npos);
}

TEST(SpanTracer, BoundedBufferCountsDrops) {
  SpanTracer tracer(/*max_records=*/4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.record_rel(kSpanTrain, i, 0, i * 1000, 500);
  }
  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_NE(tracer.summary().find("dropped"), std::string::npos);
}

TEST(SpanTracer, ResetClearsBuffer) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.record_rel(kSpanTrain, 1, 0, 0, 100);
  ASSERT_EQ(tracer.span_count(), 1u);
  tracer.reset();
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(Telemetry, TracingFlagGatesTracer) {
  Telemetry tel;
  EXPECT_FALSE(tel.tracing());
  ASSERT_NE(tel.tracer(), nullptr);
  EXPECT_FALSE(tel.tracer()->enabled());
  tel.set_tracing(true);
  EXPECT_TRUE(tel.tracing());
  EXPECT_TRUE(tel.tracer()->enabled());
  tel.set_tracing(false);
  EXPECT_FALSE(tel.tracing());
}

// -- Pipeline end-to-end ------------------------------------------------------

struct ObsPipelineFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(128)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    std::unique_ptr<Telemetry> telemetry;
    RunContext ctx;
  };
  Env make_env() {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(64ull << 20);
    env.telemetry = std::make_unique<Telemetry>();
    env.ssd->set_telemetry(env.telemetry.get());
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd,
                                            env.telemetry.get());
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), env.telemetry.get()};
    return env;
  }

  GnnDriveConfig base_config() {
    GnnDriveConfig cfg;
    cfg.common.model.kind = ModelKind::kSage;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5, 5};
    cfg.common.batch_seeds = 16;
    return cfg;
  }
};
Dataset* ObsPipelineFixture::dataset = nullptr;

TEST_F(ObsPipelineFixture, TraceCoversEveryTrainedBatchInAllFourStages) {
  auto env = make_env();
  env.telemetry->set_tracing(true);
  GnnDrive system(env.ctx, base_config());
  const EpochStats stats = system.run_epoch(0);
  ASSERT_GT(stats.result.trained_batches, 0u);
  EXPECT_EQ(stats.result.failed_batches, 0u);

  SpanTracer* tracer = env.telemetry->tracer();
  const std::string json = tracer->chrome_trace_json();
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse());

  const auto by_name = spans_by_name(json);
  ASSERT_TRUE(by_name.count(kSpanTrain));
  const std::set<std::uint64_t>& trained = by_name.at(kSpanTrain);
  EXPECT_EQ(trained.size(), stats.result.trained_batches);
  // Every trained batch went through all four stages; its id must appear
  // under each stage's span name.
  for (const char* stage : {kSpanSample, kSpanExtract, kSpanRelease}) {
    ASSERT_TRUE(by_name.count(stage)) << stage;
    for (std::uint64_t b : trained) {
      EXPECT_TRUE(by_name.at(stage).count(b))
          << "batch " << b << " missing a '" << stage << "' span";
    }
  }
  // The periodic snapshot thread produced counter tracks.
  EXPECT_NE(json.find("extract_q"), std::string::npos);
  EXPECT_NE(json.find("fb.standby"), std::string::npos);
}

TEST_F(ObsPipelineFixture, WriteChromeTraceRoundTrips) {
  auto env = make_env();
  env.telemetry->set_tracing(true);
  GnnDrive system(env.ctx, base_config());
  system.run_epoch(0);
  const std::string path = ::testing::TempDir() + "gnndrive_trace_test.json";
  ASSERT_TRUE(env.telemetry->tracer()->write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  JsonParser parser(content);
  EXPECT_TRUE(parser.parse());
  for (const char* stage :
       {kSpanSample, kSpanExtract, kSpanTrain, kSpanRelease}) {
    EXPECT_NE(content.find(std::string("\"name\":\"") + stage + "\""),
              std::string::npos)
        << stage;
  }
}

TEST_F(ObsPipelineFixture, EpochObsReportPopulated) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  // Tracing stays OFF: the epoch report and metrics must populate anyway.
  const EpochStats stats = system.run_epoch(0);
  EXPECT_EQ(env.telemetry->tracer()->span_count(), 0u);

  const EpochObs& obs = stats.obs;
  EXPECT_EQ(obs.sample.count, stats.batches);
  EXPECT_EQ(obs.extract.count, stats.batches);
  EXPECT_EQ(obs.train.count, stats.result.trained_batches);
  EXPECT_EQ(obs.release.count, stats.result.trained_batches);
  EXPECT_GT(obs.extract.p50_us, 0.0);
  EXPECT_LE(obs.extract.p50_us, obs.extract.p95_us);
  EXPECT_LE(obs.extract.p95_us, obs.extract.p99_us);
  EXPECT_GE(obs.extract_q_max, 1u);
  EXPECT_GE(obs.train_q_max, 1u);
  EXPECT_GE(obs.release_q_max, 1u);
  EXPECT_GT(obs.fb_loads, 0u);
  EXPECT_GE(obs.fb_hit_rate(), 0.0);
  EXPECT_LE(obs.fb_hit_rate(), 1.0);

  const std::string report = obs.format();
  for (const char* key : {"sample", "extract", "train", "release", "p50",
                          "p95", "p99", "extract_q", "hit-rate"}) {
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }

  // The registry carries the unified instruments the pipeline published.
  const auto snap = env.telemetry->metrics()->snapshot();
  std::set<std::string> counters, gauges, histograms;
  for (const auto& [name, v] : snap.counters) counters.insert(name);
  for (const auto& [name, v] : snap.gauges) gauges.insert(name);
  for (const auto& [name, v] : snap.histograms) histograms.insert(name);
  for (const char* c : {"fb.loads", "fb.reuse_hits", "io.submitted",
                        "ssd.reads", "fault.io_errors"}) {
    EXPECT_TRUE(counters.count(c)) << c;
  }
  for (const char* g :
       {"pipeline.extract_q.depth", "io.inflight", "fb.standby"}) {
    EXPECT_TRUE(gauges.count(g)) << g;
  }
  for (const char* h : {"stage.sample.us", "stage.extract.us",
                        "stage.train.us", "stage.release.us",
                        "io.request_us"}) {
    EXPECT_TRUE(histograms.count(h)) << h;
  }
}

TEST_F(ObsPipelineFixture, SsdCountersMirrorDeviceStats) {
  auto env = make_env();
  GnnDrive system(env.ctx, base_config());
  system.run_epoch(0);
  const SsdStats ssd = env.ssd->stats();
  MetricsRegistry& reg = *env.telemetry->metrics();
  EXPECT_EQ(reg.counter("ssd.reads").value(), ssd.reads);
  EXPECT_EQ(reg.counter("ssd.bytes_read").value(), ssd.bytes_read);
  EXPECT_GT(ssd.reads, 0u);
  // Ring submissions are a subset of device reads (topology reads through
  // the page cache also hit the device, but never go through a ring).
  EXPECT_GT(reg.counter("io.submitted").value(), 0u);
  EXPECT_GE(ssd.reads, reg.counter("io.submitted").value());
  EXPECT_GT(reg.histogram("io.request_us").count(), 0u);
}

}  // namespace
}  // namespace gnndrive
