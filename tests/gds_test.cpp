// GPUDirect-Storage extraction mode (Sect. 4.4 future work): correctness
// and memory-footprint properties.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace gnndrive {
namespace {

struct GdsFixture : ::testing::Test {
  static void SetUpTestSuite() {
    dataset = new Dataset(Dataset::build(toy_spec(128)));
  }
  static void TearDownTestSuite() {
    delete dataset;
    dataset = nullptr;
  }
  static Dataset* dataset;

  struct Env {
    std::unique_ptr<SsdDevice> ssd;
    std::unique_ptr<HostMemory> mem;
    std::unique_ptr<PageCache> cache;
    RunContext ctx;
  };
  Env make_env() {
    Env env;
    SsdConfig ssd_cfg;
    ssd_cfg.read_latency_us = 20.0;
    env.ssd = dataset->make_device(ssd_cfg);
    env.mem = std::make_unique<HostMemory>(64ull << 20);
    env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd);
    env.ctx = RunContext{dataset, env.ssd.get(), env.mem.get(),
                         env.cache.get(), nullptr};
    return env;
  }

  GnnDriveConfig config() {
    GnnDriveConfig cfg;
    cfg.common.model.kind = ModelKind::kSage;
    cfg.common.model.hidden_dim = 16;
    cfg.common.sampler.fanouts = {5, 5, 5};
    cfg.common.batch_seeds = 16;
    cfg.gds_mode = true;
    return cfg;
  }
};
Dataset* GdsFixture::dataset = nullptr;

TEST_F(GdsFixture, ExtractedFeaturesMatchGroundTruth) {
  auto env = make_env();
  GnnDrive system(env.ctx, config());
  system.run_epoch(0);
  const auto dim = dataset->spec().feature_dim;
  std::vector<float> truth(dim);
  std::uint64_t checked = 0;
  for (NodeId v = 0; v < dataset->spec().num_nodes; ++v) {
    const auto e = system.feature_buffer().entry(v);
    if (!e.valid) continue;
    dataset->read_feature_row(v, truth.data());
    const float* got = system.feature_buffer().slot_data(e.slot);
    for (std::uint32_t k = 0; k < dim; ++k) {
      ASSERT_EQ(got[k], truth[k]) << "node " << v << " dim " << k;
    }
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(GdsFixture, NoHostStagingPinned) {
  auto env_gds = make_env();
  GnnDrive gds(env_gds.ctx, config());
  auto env_std = make_env();
  GnnDriveConfig std_cfg = config();
  std_cfg.gds_mode = false;
  GnnDrive standard(env_std.ctx, std_cfg);
  // GDS eliminates the staging buffer: the host pin shrinks to metadata.
  EXPECT_LT(env_gds.mem->pinned(), env_std.mem->pinned());
  EXPECT_LT(env_gds.mem->pinned(),
            dataset->host_metadata_bytes() + (64 << 10));
}

TEST_F(GdsFixture, TrainsToSameAccuracyAsStandardMode) {
  auto env_gds = make_env();
  GnnDrive gds(env_gds.ctx, config());
  for (int e = 0; e < 3; ++e) gds.run_epoch(e);
  const double gds_acc = gds.evaluate();

  auto env_std = make_env();
  GnnDriveConfig std_cfg = config();
  std_cfg.gds_mode = false;
  GnnDrive standard(env_std.ctx, std_cfg);
  for (int e = 0; e < 3; ++e) standard.run_epoch(e);
  const double std_acc = standard.evaluate();
  // Identical seeds + identical math: same trajectory up to reordering.
  EXPECT_NEAR(gds_acc, std_acc, 0.1);
  EXPECT_GT(gds_acc, 0.5);
}

TEST_F(GdsFixture, CpuTrainingRejected) {
  auto env = make_env();
  GnnDriveConfig cfg = config();
  cfg.cpu_training = true;
  EXPECT_DEATH(GnnDrive(env.ctx, cfg), "GDS mode requires GPU training");
}

}  // namespace
}  // namespace gnndrive
