// Property/fuzz test: IndexedLruList against a reference std::list model.
//
// The intrusive list backs both the feature buffer's standby list and the
// simulated page cache, and its distinguishing operation — O(1) removal
// from the MIDDLE when a node reuses its own zero-ref slot — is exactly the
// one a plain queue model would miss. The driver replays long random
// operation sequences against a std::list<uint32_t> (front = LRU) plus a
// membership set, checking every observable (size, emptiness, membership,
// LRU head, pop order) after each step.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <unordered_set>
#include <vector>

#include "util/lru.hpp"
#include "util/rng.hpp"

namespace gnndrive {
namespace {

/// Reference model: std::list keeps recency order (front = LRU, back =
/// MRU), the set answers contains() without an O(n) scan.
struct ListModel {
  std::list<std::uint32_t> order;
  std::unordered_set<std::uint32_t> present;

  void push_mru(std::uint32_t id) {
    order.push_back(id);
    present.insert(id);
  }
  std::uint32_t pop_lru() {
    const std::uint32_t id = order.front();
    order.pop_front();
    present.erase(id);
    return id;
  }
  void remove(std::uint32_t id) {
    order.erase(std::find(order.begin(), order.end(), id));
    present.erase(id);
  }
  void touch(std::uint32_t id) {
    remove(id);
    push_mru(id);
  }
  bool contains(std::uint32_t id) const { return present.count(id) != 0; }
  std::uint32_t peek_lru() const {
    return order.empty() ? IndexedLruList::kNilId : order.front();
  }
};

/// Full observable-state comparison; called after every mutation.
void expect_equivalent(const IndexedLruList& lru, const ListModel& model,
                       std::uint32_t capacity, std::uint64_t step) {
  ASSERT_EQ(lru.size(), model.order.size()) << "step " << step;
  ASSERT_EQ(lru.empty(), model.order.empty()) << "step " << step;
  ASSERT_EQ(lru.peek_lru(), model.peek_lru()) << "step " << step;
  for (std::uint32_t id = 0; id < capacity; ++id) {
    ASSERT_EQ(lru.contains(id), model.contains(id))
        << "step " << step << " id " << id;
  }
}

/// Picks a present id uniformly (model-driven, deterministic).
std::uint32_t random_present(const ListModel& model, Rng& rng) {
  auto it = model.order.begin();
  std::advance(it, rng.next_below(static_cast<std::uint32_t>(
                   model.order.size())));
  return *it;
}

void run_fuzz(std::uint32_t capacity, std::uint64_t seed,
              std::uint32_t steps) {
  IndexedLruList lru(capacity);
  ListModel model;
  Rng rng(seed);
  std::vector<std::uint32_t> absent;  // rebuilt lazily when needed

  for (std::uint32_t step = 0; step < steps; ++step) {
    const std::uint32_t op = rng.next_below(100);
    if (op < 40) {
      // push_mru of a random absent id (40%).
      if (model.order.size() < capacity) {
        std::uint32_t id;
        do {
          id = rng.next_below(capacity);
        } while (model.contains(id));
        lru.push_mru(id);
        model.push_mru(id);
      }
    } else if (op < 60) {
      // pop_lru (20%) — orders must match exactly.
      if (!model.order.empty()) {
        ASSERT_EQ(lru.pop_lru(), model.pop_lru()) << "step " << step;
      }
    } else if (op < 85) {
      // remove from an arbitrary position (25%) — the reuse-from-middle
      // path Algorithm 1 takes when a node reclaims its own standby slot.
      if (!model.order.empty()) {
        const std::uint32_t id = random_present(model, rng);
        lru.remove(id);
        model.remove(id);
      }
    } else {
      // touch: remove + re-push at MRU (15%), the page-cache hit path.
      if (!model.order.empty()) {
        const std::uint32_t id = random_present(model, rng);
        lru.touch(id);
        model.touch(id);
      }
    }
    expect_equivalent(lru, model, capacity, step);
  }

  // Drain: the full remaining pop order must match the model's.
  while (!model.order.empty()) {
    ASSERT_EQ(lru.pop_lru(), model.pop_lru());
  }
  EXPECT_TRUE(lru.empty());
}

TEST(IndexedLruProperty, MatchesListModelSmall) {
  // Tiny capacity maximizes head/tail/single-element edge cases.
  run_fuzz(/*capacity=*/4, /*seed=*/0x11u, /*steps=*/4000);
  run_fuzz(/*capacity=*/5, /*seed=*/0x22u, /*steps=*/4000);
}

TEST(IndexedLruProperty, MatchesListModelMedium) {
  run_fuzz(/*capacity=*/64, /*seed=*/0x33u, /*steps=*/6000);
}

TEST(IndexedLruProperty, MatchesListModelManySeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_fuzz(/*capacity=*/16, seed * 0x9E3779B9u, /*steps=*/2000);
  }
}

TEST(IndexedLruProperty, ReuseFromMiddlePreservesNeighbors) {
  // Directed scenario on top of the fuzz: removing B from [A,B,C] must
  // splice A->C, and the later pops must see exactly that order.
  IndexedLruList lru(8);
  lru.push_mru(0);  // LRU
  lru.push_mru(1);
  lru.push_mru(2);  // MRU
  lru.remove(1);
  EXPECT_FALSE(lru.contains(1));
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.pop_lru(), 0u);
  EXPECT_EQ(lru.pop_lru(), 2u);
  EXPECT_TRUE(lru.empty());

  // Re-inserting a removed id lands at the MRU end, not its old position.
  lru.push_mru(3);
  lru.push_mru(1);
  EXPECT_EQ(lru.peek_lru(), 3u);
  EXPECT_EQ(lru.pop_lru(), 3u);
  EXPECT_EQ(lru.pop_lru(), 1u);
}

}  // namespace
}  // namespace gnndrive
