// Figure 13: multi-GPU scalability — epoch time vs number of data-parallel
// subprocesses (replicas), GPU- and CPU-based GNNDrive.
//
// The paper runs this on an 8x K80 box with unrestricted (256 GB) host
// memory; we mirror that with a 256 "GB" budget and K80-sized (12 GB)
// device memory per replica. Expected shape: near-linear speedup to 2
// replicas (~1.7-1.8x), diminishing returns after, and a plateau around 6
// as gradient synchronization over the shared interconnect dominates.
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main() {
  print_banner("Figure 13",
               "GNNDrive multi-GPU scalability on mag240m (GraphSAGE), "
               "256 GB host, 12 GB per GPU.");

  const std::vector<std::uint32_t> replica_counts =
      bench_full_mode() ? std::vector<std::uint32_t>{1, 2, 4, 6, 8}
                        : std::vector<std::uint32_t>{1, 2, 4};
  const Dataset& dataset = get_dataset(bench_full_mode() ? "mag240m"
                                                         : "papers100m");

  std::printf("%-14s %9s | %10s %10s %10s\n", "variant", "replicas",
              "epoch(s)", "speedup", "loss");
  for (const bool cpu : {false, true}) {
    double base = 0.0;
    for (std::uint32_t n : replica_counts) {
      Env env = make_env(dataset, /*mem_gb=*/256.0);
      MultiGpuConfig cfg;
      cfg.replica.common = common_config(ModelKind::kSage);
      cfg.replica.cpu_training = cpu;
      cfg.replica.gpu.device_memory_bytes = paper_gb(12.0);  // K80
      // K80s are far slower than the default (3090-class) device: model
      // their kernel time explicitly. Unlike real host math, modeled
      // kernel time parallelizes across replicas — which is precisely what
      // the 8-GPU box provides.
      cfg.replica.gpu.gpu_flops_per_s = 0.25e9;
      // Same treatment for the CPU curve: per-subprocess CPU kernel time on
      // the 2x E5-2690 box, parallelizable across subprocesses.
      cfg.replica.cpu_flops_per_s = 0.2e9;
      cfg.num_replicas = n;
      try {
        MultiGpuGnnDrive system(env.ctx, cfg);
        system.run_epoch(1000);  // warm-up
        EpochStats mean;
        const int epochs = measure_epochs();
        for (int e = 0; e < epochs; ++e) {
          const EpochStats s = system.run_epoch(e);
          mean.epoch_seconds += s.epoch_seconds / epochs;
          mean.loss += s.loss / epochs;
        }
        if (n == replica_counts.front()) base = mean.epoch_seconds;
        std::printf("%-14s %9u | %10.3f %9.2fx %10.4f\n",
                    cpu ? "GNNDrive-CPU" : "GNNDrive-GPU", n,
                    mean.epoch_seconds, base / mean.epoch_seconds, mean.loss);
      } catch (const SimOutOfMemory& oom) {
        std::printf("%-14s %9u | %10s  (%s)\n",
                    cpu ? "GNNDrive-CPU" : "GNNDrive-GPU", n, "OOM",
                    oom.what());
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
