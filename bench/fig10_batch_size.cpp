// Figure 10: epoch runtime vs mini-batch size (paper 500-4000; scaled by
// kBatchScale to 2-16 seeds).
//
// Expected shape: larger mini-batches generally shorten the epoch for
// GNNDrive and Ginex (fewer, bigger batches amortize per-batch overheads);
// PyG+ fluctuates — a larger batch's feature tensor competes for the memory
// sampling needs, and the GAT/Friendster case at the largest batch OOMs.
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main() {
  print_banner("Figure 10",
               "Epoch runtime vs mini-batch size (paper batch = seeds x "
               "250).");

  struct Workload {
    const char* dataset;
    ModelKind model;
    std::vector<std::uint32_t> paper_batches;
  };
  const std::vector<std::uint32_t> all_batches = {500, 1000, 2000, 4000};
  // Quick mode: the full sweep on papers100m plus the PyG+-OOM corner
  // (friendster + GAT at batch 4000).
  const std::vector<Workload> workloads =
      bench_full_mode()
          ? std::vector<Workload>{{"papers100m", ModelKind::kSage,
                                   all_batches},
                                  {"twitter", ModelKind::kSage, all_batches},
                                  {"friendster", ModelKind::kGat,
                                   all_batches},
                                  {"mag240m", ModelKind::kSage, all_batches}}
          : std::vector<Workload>{{"papers100m", ModelKind::kSage,
                                   all_batches},
                                  {"friendster", ModelKind::kGat, {4000}}};
  const std::vector<std::string> systems = {"GNNDrive-GPU", "GNNDrive-CPU",
                                            "PyG+", "Ginex"};

  for (const auto& wl : workloads) {
    const Dataset& dataset = get_dataset(wl.dataset);
    std::printf("%-12s %-10s %6s %6s | %12s %10s\n", "dataset", "model",
                "batch", "seeds", "system", "epoch(s)");
    for (std::uint32_t paper_batch : wl.paper_batches) {
      const std::uint32_t seeds = std::max(1u, paper_batch / kBatchScale);
      for (const auto& sys_name : systems) {
        Env env = make_env(dataset);
        CommonTrainConfig common = common_config(wl.model);
        common.batch_seeds = seeds;
        try {
          auto system = make_system(sys_name, env, common);
          const EpochStats stats = mean_epochs(*system, measure_epochs());
          std::printf("%-12s %-10s %6u %6u | %12s %10.3f\n", wl.dataset,
                      model_kind_name(wl.model), paper_batch, seeds,
                      sys_name.c_str(), stats.epoch_seconds);
        } catch (const SimOutOfMemory& oom) {
          std::printf("%-12s %-10s %6u %6u | %12s %10s  (%s)\n", wl.dataset,
                      model_kind_name(wl.model), paper_batch, seeds,
                      sys_name.c_str(), "OOM", oom.what());
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
