// Feature-cache policy A/B: LRU standby list vs the hotness-aware pinned
// partition vs the Belady (MIN) oracle, across access-skew levels and
// feature-buffer budgets.
//
// For each skew level the bench builds a papers100m-mini variant whose
// endpoint-sampling exponent controls how hard sampler traffic concentrates
// on low-id nodes, then trains measured epochs per policy on identical
// seeds at two buffer budgets:
//
//   * default — the paper's sizing ((Ne + train_queue_cap) x Mb slots).
//     The buffer holds ~20% of the graph, LRU already captures most
//     temporal locality, and the hotness win shows up mainly as fewer
//     ssd.reads (the pinned head never re-loads across epochs).
//   * tight   — one extractor and feature_buffer_scale 0.45 (~12k slots,
//     ~5% of the graph). Capacity misses dominate, LRU recency is nearly
//     worthless between epochs, and pinning the frequency head is the
//     difference between thrashing and hitting: the >= 1.5x hit-rate
//     target is met here on the skewed configs.
//
// A trace-driven simulator row replays the same epoch-0 access sequence
// through LRU, hotness and Belady's optimal replacement at the measured
// slot budget — the oracle knows the future, so its hit rate upper-bounds
// every realizable policy. Training is byte-identical across policies (the
// differential test in tests/cache_policy_test.cpp holds the proof); only
// I/O shifts.
#include "bench/bench_common.hpp"

#include "cache/belady.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

struct Budget {
  const char* name;
  std::uint32_t extractors;  ///< 0 = config default
  double fb_scale;
  double hot_fraction;
};

struct Cell {
  bool ok = false;
  double epoch_s = 0.0;
  double hit_rate = 0.0;       ///< (hot + reuse + wait) / lookups
  std::uint64_t hot_hits = 0;  ///< per measured epoch
  std::uint64_t reuse = 0;
  std::uint64_t waits = 0;
  std::uint64_t loads = 0;
  std::uint64_t reads = 0;          ///< SSD reads per measured epoch
  std::uint64_t slots = 0;
  std::uint64_t hot_slots = 0;
  std::uint64_t prefetch_reads = 0; ///< one-time hot-partition load cost
};

Cell run_cell(const Dataset& dataset, const Budget& budget,
              CachePolicy policy) {
  Cell cell;
  try {
    Env env = make_env(dataset);
    GnnDriveConfig cfg;
    cfg.common = common_config(ModelKind::kSage);
    cfg.cache.policy = policy;
    cfg.cache.hot_fraction = budget.hot_fraction;
    if (budget.extractors != 0) cfg.num_extractors = budget.extractors;
    cfg.feature_buffer_scale = budget.fb_scale;
    GnnDrive system(env.ctx, cfg);

    // Warm-up epoch: materializes the hot partition (hotness) and primes
    // the buffer/topology for both policies, so the measured epochs compare
    // steady-state recycling, not cold-start effects.
    const std::uint64_t reads0 = env.ssd->stats().reads;
    system.ensure_hot_cache();
    cell.prefetch_reads = env.ssd->stats().reads - reads0;
    system.run_epoch(100);

    env.ssd->reset_stats();
    const FeatureBufferStats before = system.feature_buffer().stats();
    const int epochs = measure_epochs();
    for (int e = 0; e < epochs; ++e) {
      const EpochStats stats = system.run_epoch(e);
      cell.epoch_s += stats.epoch_seconds / epochs;
    }
    const FeatureBufferStats after = system.feature_buffer().stats();
    cell.hot_hits = (after.hot_hits - before.hot_hits) / epochs;
    cell.reuse = (after.reuse_hits - before.reuse_hits) / epochs;
    cell.waits = (after.wait_hits - before.wait_hits) / epochs;
    cell.loads = (after.loads - before.loads) / epochs;
    const std::uint64_t hits = cell.hot_hits + cell.reuse + cell.waits;
    cell.hit_rate = hits + cell.loads > 0
                        ? static_cast<double>(hits) /
                              static_cast<double>(hits + cell.loads)
                        : 0.0;
    cell.reads = env.ssd->stats().reads / epochs;
    cell.slots = system.feature_buffer().num_slots();
    cell.hot_slots = system.feature_buffer().hot_slots();
    cell.ok = true;
  } catch (const SimOutOfMemory& oom) {
    std::printf("  (skipped: %s)\n", oom.what());
  }
  return cell;
}

void print_cell(double skew, const Budget& budget, const char* policy,
                const Cell& c, const Cell* base) {
  std::printf("%5.2f %-7s %-9s %7llu %9.1f%% %8llu %8llu %8llu %8llu "
              "%8llu %8.3f",
              skew, budget.name, policy,
              static_cast<unsigned long long>(c.slots), 100.0 * c.hit_rate,
              static_cast<unsigned long long>(c.hot_hits),
              static_cast<unsigned long long>(c.reuse),
              static_cast<unsigned long long>(c.waits),
              static_cast<unsigned long long>(c.loads),
              static_cast<unsigned long long>(c.reads), c.epoch_s);
  if (base != nullptr && base->hit_rate > 0.0 && base->reads > 0) {
    std::printf("  [%4.2fx hit-rate, %+5.1f%% reads, prefetch %llu rd]",
                c.hit_rate / base->hit_rate,
                100.0 * (static_cast<double>(c.reads) /
                             static_cast<double>(base->reads) -
                         1.0),
                static_cast<unsigned long long>(c.prefetch_reads));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_banner(
      "Feature-cache policy A/B (LRU vs hotness vs Belady oracle)",
      "Hit rate, SSD reads and epoch time per policy across access-skew "
      "levels and buffer budgets, plus a trace-driven simulator replay at "
      "the measured slot budget. Belady knows the future: no realizable "
      "policy beats its row.");

  const std::vector<double> skews =
      bench_full_mode() ? std::vector<double>{1.0, 2.5, 3.5}
                        : std::vector<double>{1.0, 2.5};
  // Tight budget: hot_fraction 0.5 of ~12k slots leaves a cold region just
  // above the 1 x Mb reserve; LRU gets the same slot count.
  const std::vector<Budget> budgets = {
      {"default", 0, 1.0, 0.5},
      {"tight", 1, 0.45, 0.5},
  };

  std::printf("%5s %-7s %-9s %7s %10s %8s %8s %8s %8s %8s %8s\n", "skew",
              "budget", "policy", "slots", "hit-rate", "hot/ep", "reuse/ep",
              "wait/ep", "loads/ep", "reads/ep", "epoch(s)");

  for (const double skew : skews) {
    // A private dataset per skew level (get_dataset's registry is keyed by
    // name/dim and fixed at the generator default skew).
    DatasetSpec spec = mini_spec("papers100m");
    spec.skew = skew;
    if (!bench_full_mode()) spec.train_fraction *= 0.25;
    const Dataset dataset = Dataset::build(spec);

    for (const Budget& budget : budgets) {
      const Cell lru = run_cell(dataset, budget, CachePolicy::kLru);
      if (lru.ok) print_cell(skew, budget, "lru", lru, nullptr);
      const Cell hot = run_cell(dataset, budget, CachePolicy::kHotness);
      if (hot.ok) print_cell(skew, budget, "hotness", hot, &lru);
      if (!lru.ok || !hot.ok) continue;

      // Trace-driven comparator at the measured slot budget: the same
      // epoch-0 access sequence through all three simulators.
      Env env = make_env(dataset);
      GnnDriveConfig cfg;
      cfg.common = common_config(ModelKind::kSage);
      const AccessTrace trace = record_access_trace(
          dataset, *env.cache, cfg.common.sampler, cfg.common.batch_seeds,
          cfg.common.run_seed, /*epoch=*/0);
      const CachePolicyConfig cache_defaults;
      const PresampleResult prof = presample_hot_set(
          dataset, *env.cache, cfg.common.sampler, cfg.common.batch_seeds,
          cfg.common.run_seed, cache_defaults.presample_batches,
          hot.hot_slots);
      const CacheSimResult s_lru = simulate_lru(trace, lru.slots);
      const CacheSimResult s_hot =
          simulate_hotness(trace, hot.slots, prof.hot_nodes);
      const CacheSimResult s_opt = simulate_belady(trace, lru.slots);
      std::printf("%5.2f %-7s sim@%llu slots: lru=%.1f%% hotness=%.1f%% "
                  "belady=%.1f%% (oracle upper bound, %llu lookups)\n",
                  skew, budget.name,
                  static_cast<unsigned long long>(lru.slots),
                  100.0 * s_lru.hit_rate(), 100.0 * s_hot.hit_rate(),
                  100.0 * s_opt.hit_rate(),
                  static_cast<unsigned long long>(s_opt.lookups));

      const double ratio =
          lru.hit_rate > 0.0 ? hot.hit_rate / lru.hit_rate : 0.0;
      std::printf("%5.2f %-7s summary: hotness/lru hit-rate %4.2fx, reads "
                  "%llu -> %llu%s\n\n",
                  skew, budget.name, ratio,
                  static_cast<unsigned long long>(lru.reads),
                  static_cast<unsigned long long>(hot.reads),
                  ratio >= 1.5 ? "  [>=1.5x target met]" : "");
    }
  }
  std::printf("CACHE_POLICY_AB_DONE\n");
  return 0;
}
