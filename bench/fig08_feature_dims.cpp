// Figure 8: runtime of one epoch vs feature dimension (64-512) for every
// dataset x model x system. Also reproduces the Sect. 5.1 "Overall
// performance" speedup claims at the default dimension (GNNDrive-GPU vs
// PyG+/Ginex) and the Sect. 3 stage breakdown (extract stage dominates).
//
// Quick mode: papers100m + twitter, GraphSAGE, all four dimensions.
// Full mode: all four datasets x three models x four dimensions.
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main() {
  print_banner("Figure 8 / Sect. 5.1 overall performance",
               "Epoch runtime vs feature dimension, all systems. Expected "
               "shape: GNNDrive-GPU fastest and flat across dims; PyG+ "
               "slowest and most dim-sensitive; Ginex in between.");

  const bool full = bench_full_mode();
  const std::vector<std::string> datasets =
      full ? std::vector<std::string>{"papers100m", "twitter", "friendster",
                                      "mag240m"}
           : std::vector<std::string>{"papers100m"};
  const std::vector<ModelKind> models =
      full ? std::vector<ModelKind>{ModelKind::kSage, ModelKind::kGcn,
                                    ModelKind::kGat}
           : std::vector<ModelKind>{ModelKind::kSage};
  const std::vector<std::uint32_t> dims = {64, 128, 256, 512};
  const std::vector<std::string> systems = {"GNNDrive-GPU", "GNNDrive-CPU",
                                            "PyG+", "Ginex"};

  std::printf("%-12s %-10s %5s | %12s %10s %10s %10s %10s\n", "dataset",
              "model", "dim", "system", "epoch(s)", "sample(s)", "extract(s)",
              "train(s)");
  for (const auto& ds_name : datasets) {
    for (ModelKind model : models) {
      // MAG240M's native dimension is 768; the sweep still uses 64-512 as
      // in the figure's x-axis.
      for (std::uint32_t dim : dims) {
        const Dataset& dataset = get_dataset(ds_name, dim);
        double gd_gpu_epoch = 0.0;
        for (const auto& sys_name : systems) {
          Env env = make_env(dataset);
          try {
            auto system = make_system(sys_name, env, common_config(model));
            const EpochStats stats = mean_epochs(*system, measure_epochs());
            std::printf("%-12s %-10s %5u | %12s %10.3f %10.3f %10.3f %10.3f",
                        ds_name.c_str(), model_kind_name(model), dim,
                        sys_name.c_str(), stats.epoch_seconds,
                        stats.sample_seconds, stats.extract_seconds,
                        stats.train_seconds);
            if (sys_name == "GNNDrive-GPU") {
              gd_gpu_epoch = stats.epoch_seconds;
            } else if (gd_gpu_epoch > 0.0) {
              std::printf("  [GNNDrive-GPU %4.1fx faster]",
                          stats.epoch_seconds / gd_gpu_epoch);
            }
            if (dim == 128 && sys_name == "PyG+") {
              // Sect. 3 breakdown claim: extract dominates the epoch.
              const double stage_total = stats.sample_seconds +
                                         stats.extract_seconds +
                                         stats.train_seconds;
              std::printf("  [extract %.0f%% of stage time]",
                          100.0 * stats.extract_seconds / stage_total);
            }
            std::printf("\n");
          } catch (const SimOutOfMemory& oom) {
            std::printf("%-12s %-10s %5u | %12s %10s  (%s)\n",
                        ds_name.c_str(), model_kind_name(model), dim,
                        sys_name.c_str(), "OOM", oom.what());
          }
          std::fflush(stdout);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
