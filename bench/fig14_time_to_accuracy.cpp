// Figure 14: time-to-accuracy curves for all systems training GraphSAGE.
//
// Each system trains until it reaches the target validation accuracy (or a
// generous epoch cap), emitting one (cumulative time, accuracy) point per
// epoch. Expected shape: all systems converge to the same accuracy — the
// paper's point that GNNDrive's mini-batch reordering does not hurt
// convergence — with GNNDrive-GPU reaching the target first and PyG+ last
// (the paper reports 18.4x / 2.9x / 1.6x more runtime for PyG+ / Ginex /
// GNNDrive-CPU on Papers100M).
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main() {
  print_banner("Figure 14",
               "Time-to-accuracy, GraphSAGE; target = fraction of the best "
               "accuracy GNNDrive reaches (papers100m; mag240m in full "
               "mode).");

  const std::vector<std::string> datasets =
      bench_full_mode() ? std::vector<std::string>{"papers100m", "mag240m"}
                        : std::vector<std::string>{"papers100m"};
  const std::vector<std::string> systems = {"GNNDrive-GPU", "GNNDrive-CPU",
                                            "PyG+", "Ginex"};
  const int max_epochs = bench_full_mode() ? 12 : 5;
  const double target = 0.70;

  for (const auto& ds_name : datasets) {
    const Dataset& dataset = get_dataset(ds_name);
    std::printf("--- %s (target accuracy %.2f, max %d epochs) ---\n",
                ds_name.c_str(), target, max_epochs);
    double gd_gpu_time = 0.0;
    for (const auto& sys_name : systems) {
      Env env = make_env(dataset);
      try {
        auto system =
            make_system(sys_name, env, common_config(ModelKind::kSage));
        double cumulative = 0.0;
        double acc = 0.0;
        std::printf("%12s:", sys_name.c_str());
        int epoch = 0;
        for (; epoch < max_epochs; ++epoch) {
          const EpochStats stats = system->run_epoch(epoch);
          cumulative += stats.epoch_seconds;
          acc = system->evaluate();
          std::printf(" (%.1fs, %.3f)", cumulative, acc);
          if (acc >= target) break;
        }
        std::string relative;
        if (sys_name != "GNNDrive-GPU" && gd_gpu_time > 0) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), " = %.1fx GNNDrive-GPU runtime",
                        cumulative / gd_gpu_time);
          relative = buf;
        }
        std::printf("\n%12s  %s in %.1fs%s\n", "",
                    acc >= target ? "reached target" : "OOT (cap hit)",
                    cumulative, relative.c_str());
        if (sys_name == "GNNDrive-GPU") gd_gpu_time = cumulative;
      } catch (const SimOutOfMemory& oom) {
        std::printf("%12s: OOM (%s)\n", sys_name.c_str(), oom.what());
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
