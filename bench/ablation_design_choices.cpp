// Ablation study of GNNDrive's design decisions (not a paper figure; the
// per-experiment index in DESIGN.md calls these out):
//   A1 asynchronous extraction  — ring depth 256 vs 1 (effectively sync);
//   A2 direct I/O               — vs buffered feature loads through the OS
//                                 page cache (re-creating contention);
//   A3 extractor parallelism    — 4 vs 1 extractors;
//   A4 feature-buffer reuse     — default sizing vs the bare Ne x Mb
//                                 reserve (no inter-batch standby reuse);
//   A5 mini-batch reordering    — 4 samplers vs 1 (in-order pipeline).
// Each row removes exactly one mechanism from the full system.
#include <functional>

#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

double run_variant(const char* label, const Dataset& dataset,
                   const std::function<void(GnnDriveConfig&)>& tweak,
                   double baseline) {
  Env env = make_env(dataset);
  GnnDriveConfig cfg;
  cfg.common = common_config(ModelKind::kSage);
  cfg.gpu.device_memory_bytes = paper_gb(kDefaultGpuGB);
  tweak(cfg);
  GnnDrive system(env.ctx, cfg);
  system.run_epoch(1000);  // warm-up
  EpochStats mean;
  const int epochs = measure_epochs();
  for (int e = 0; e < epochs; ++e) {
    mean.epoch_seconds += system.run_epoch(e).epoch_seconds / epochs;
  }
  const auto fb = system.feature_buffer().stats();
  std::printf("%-34s %10.3f", label, mean.epoch_seconds);
  if (baseline > 0) {
    std::printf("  %5.2fx vs full", mean.epoch_seconds / baseline);
  }
  std::printf("   (loads %llu, reuse %llu)\n",
              static_cast<unsigned long long>(fb.loads),
              static_cast<unsigned long long>(fb.reuse_hits));
  std::fflush(stdout);
  return mean.epoch_seconds;
}

}  // namespace

int main() {
  print_banner("Ablation: GNNDrive design choices",
               "Each variant disables one mechanism (papers100m, "
               "GraphSAGE). Expect every ablation to be slower than the "
               "full system.");

  const Dataset& dataset = get_dataset("papers100m");
  std::printf("%-34s %10s\n", "variant", "epoch(s)");
  const double full =
      run_variant("full GNNDrive", dataset, [](GnnDriveConfig&) {}, 0.0);
  run_variant("A1: sync extraction (depth 1)", dataset,
              [](GnnDriveConfig& c) { c.ring_depth = 1; }, full);
  run_variant("A2: buffered feature I/O", dataset,
              [](GnnDriveConfig& c) { c.direct_io = false; }, full);
  run_variant("A3: one extractor", dataset,
              [](GnnDriveConfig& c) { c.num_extractors = 1; }, full);
  run_variant("A4: minimum feature buffer", dataset,
              [](GnnDriveConfig& c) { c.feature_buffer_scale = 0.01; },
              full);
  run_variant("A5: one sampler (in order)", dataset,
              [](GnnDriveConfig& c) { c.num_samplers = 1; }, full);
  run_variant("X1: GPUDirect Storage mode", dataset,
              [](GnnDriveConfig& c) { c.gds_mode = true; }, full);
  return 0;
}
