// Table 2: MariusGNN vs GNNDrive — data-preparation time, training time and
// overall time per epoch on papers100m and mag240m (GraphSAGE), plus the
// MariusGNN-128GB row.
//
// Expected shape: GNNDrive-GPU has no data-preparation phase and the lowest
// overall time; MariusGNN's prep is a large fraction of its total (the
// paper: 46% at 32 GB) and shrinks with 128 GB; MariusGNN OOMs on MAG240M
// at BOTH 32 GB and 128 GB; PyG+/Ginex rows included for reference.
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

void run_row(const char* label, const char* sys_name, const Dataset& dataset,
             double mem_gb) {
  Env env = make_env(dataset, mem_gb);
  try {
    auto system = make_system(sys_name, env, common_config(ModelKind::kSage));
    const EpochStats stats = mean_epochs(*system, measure_epochs());
    const double train = stats.epoch_seconds - stats.prep_seconds;
    std::printf("%-18s %-12s | %10.3f %10.3f %10.3f", label,
                dataset.spec().name.c_str(), stats.prep_seconds, train,
                stats.epoch_seconds);
    if (stats.prep_seconds > 0) {
      std::printf("   (prep = %.0f%% of overall)",
                  100.0 * stats.prep_seconds / stats.epoch_seconds);
    }
    std::printf("\n");
  } catch (const SimOutOfMemory& oom) {
    std::printf("%-18s %-12s | %10s %10s %10s   (%s)\n", label,
                dataset.spec().name.c_str(), "OOM", "OOM", "OOM", oom.what());
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  print_banner("Table 2",
               "Data preparation / training / overall runtime of one epoch, "
               "MariusGNN vs GNNDrive (GraphSAGE). MAG240M uses its native "
               "768-dim features.");

  std::printf("%-18s %-12s | %10s %10s %10s\n", "system", "dataset",
              "prep(s)", "train(s)", "overall(s)");
  for (const char* ds_name : {"papers100m", "mag240m"}) {
    const Dataset& dataset = get_dataset(ds_name);
    run_row("GNNDrive-GPU", "GNNDrive-GPU", dataset, 32.0);
    run_row("GNNDrive-CPU", "GNNDrive-CPU", dataset, 32.0);
    if (bench_full_mode()) {
      run_row("PyG+", "PyG+", dataset, 32.0);
      run_row("Ginex", "Ginex", dataset, 32.0);
    }
    run_row("MariusGNN-32G", "MariusGNN", dataset, 32.0);
    run_row("MariusGNN-128G", "MariusGNN", dataset, 128.0);
    std::printf("\n");
  }
  return 0;
}
