// Coalesced-extraction A/B sweep: SSD read requests, rows per read and
// extract latency for coalesce=off (one read per to-load node, the paper's
// I/O shape) vs coalesce=on across max_coalesce_bytes, batch sizes and
// feature dimensions.
//
// Under the simulated device's cost model (service = base_latency +
// len/(bandwidth/channels)) a 512 B feature row pays ~80 us of fixed cost
// for ~4 us of data movement, so the requests/epoch column is the one to
// watch. Request reduction tracks the to-load density: at the default
// mini-batch the sorted misses sit tens of KiB apart and only a fraction
// of gaps are worth bridging, while at 4x the batch the runs get dense and
// the same caps merge several rows per read. Gap tolerance follows the
// caps at cap/2; the break-even gap for the default device is ~10 KiB
// (base_latency * bandwidth / channels).
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

struct Cell {
  bool ok = false;
  unsigned eff = 0;  ///< effective extractor count after auto-sizing
  double epoch_s = 0.0;
  double extract_s = 0.0;
  double extract_p50_us = 0.0;
  double extract_p95_us = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t loads = 0;
  double rows_per_read = 0.0;
};

Cell run_cell(const Dataset& dataset, std::uint32_t batch_seeds,
              const CoalesceConfig& co) {
  Cell cell;
  try {
    Env env = make_env(dataset);
    GnnDriveConfig cfg;
    cfg.common = common_config(ModelKind::kSage);
    cfg.common.batch_seeds = batch_seeds;
    cfg.coalesce = co;
    GnnDrive system(env.ctx, cfg);
    cell.eff = system.effective_extractors();

    system.run_epoch(100);  // warm-up: topology resident, buffer primed
    env.ssd->reset_stats();
    const auto loads_before = system.feature_buffer().stats().loads;

    const int epochs = measure_epochs();
    for (int e = 0; e < epochs; ++e) {
      const EpochStats stats = system.run_epoch(e);
      cell.epoch_s += stats.epoch_seconds / epochs;
      cell.extract_s += stats.extract_seconds / epochs;
      cell.extract_p50_us += stats.obs.extract.p50_us / epochs;
      cell.extract_p95_us += stats.obs.extract.p95_us / epochs;
      cell.rows_per_read += stats.obs.rows_per_read() / epochs;
    }
    cell.reads = env.ssd->stats().reads / epochs;
    cell.loads =
        (system.feature_buffer().stats().loads - loads_before) / epochs;
    cell.ok = true;
  } catch (const SimOutOfMemory& oom) {
    std::printf("  (skipped: %s)\n", oom.what());
  }
  return cell;
}

}  // namespace

int main() {
  print_banner(
      "Coalesced extraction sweep",
      "SSD read requests and extract latency, coalesce=off vs on. Expected "
      "shape: request count drops with max_coalesce_bytes, steeply once the "
      "batch is dense enough for sorted runs to sit within the gap "
      "tolerance; extract time follows the in-flight row depth and the "
      "request count.");

  const bool full = bench_full_mode();
  const std::vector<std::uint32_t> dims =
      full ? std::vector<std::uint32_t>{128, 256}
           : std::vector<std::uint32_t>{128};
  const std::vector<std::uint32_t> batches = {kDefaultBatchSeeds,
                                              4 * kDefaultBatchSeeds};
  const std::vector<std::uint32_t> caps =
      full ? std::vector<std::uint32_t>{8192, 24576, 65536, 131072}
           : std::vector<std::uint32_t>{8192, 24576, 65536};

  std::printf("%-12s %4s %6s %-10s %3s | %8s %9s %9s %7s %9s %10s %10s\n",
              "dataset", "dim", "batch", "coalesce", "Ne", "epoch(s)",
              "reads/ep", "loads/ep", "rows/rd", "extract(s)", "p50(us)",
              "p95(us)");
  for (const std::uint32_t dim : dims) {
    const Dataset& dataset = get_dataset("papers100m", dim);
    for (const std::uint32_t batch_seeds : batches) {
      CoalesceConfig off;
      off.enabled = false;
      const Cell base = run_cell(dataset, batch_seeds, off);
      if (!base.ok) continue;
      std::printf("%-12s %4u %6u %-10s %3u | %8.3f %8llu %9llu %7.2f %9.3f "
                  "%10.1f %10.1f\n",
                  "papers100m", dim, batch_seeds, "off", base.eff,
                  base.epoch_s, static_cast<unsigned long long>(base.reads),
                  static_cast<unsigned long long>(base.loads),
                  base.rows_per_read, base.extract_s, base.extract_p50_us,
                  base.extract_p95_us);
      for (const std::uint32_t cap : caps) {
        CoalesceConfig on;
        on.max_coalesce_bytes = cap;
        on.max_gap_bytes = cap / 2;
        const Cell cell = run_cell(dataset, batch_seeds, on);
        if (!cell.ok) continue;
        std::printf(
            "%-12s %4u %6u %-10s %3u | %8.3f %8llu %9llu %7.2f %9.3f "
            "%10.1f %10.1f  [%4.1fx fewer reads, extract %+5.1f%%]\n",
            "papers100m", dim, batch_seeds,
            ("on/" + std::to_string(cap / 1024) + "K").c_str(), cell.eff,
            cell.epoch_s, static_cast<unsigned long long>(cell.reads),
            static_cast<unsigned long long>(cell.loads), cell.rows_per_read,
            cell.extract_s, cell.extract_p50_us, cell.extract_p95_us,
            cell.reads > 0 ? static_cast<double>(base.reads) /
                                 static_cast<double>(cell.reads)
                           : 0.0,
            base.extract_s > 0.0 ? 100.0 * (cell.extract_s - base.extract_s) /
                                       base.extract_s
                                 : 0.0);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
