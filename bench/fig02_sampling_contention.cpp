// Figure 2: sampling time with varying feature dimension, for each system
// run in two modes:
//   "-only": only the sample stage runs per epoch;
//   "-all":  full SET pipeline runs.
// The gap between the two is the memory contention between topology and
// feature data (Observation 1). Expected shape: PyG+-all >> PyG+-only and
// the gap widens with dimension; Ginex-only ~ Ginex-all; GNNDrive's gap is
// small and flat (direct I/O leaves the page cache to topology).
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main() {
  print_banner("Figure 2 / Sect. 5.2 reduced memory footprint",
               "Sampling time per epoch, sample-only vs full SET, vs "
               "feature dimension (papers100m, GraphSAGE).");

  const std::vector<std::uint32_t> dims =
      bench_full_mode() ? std::vector<std::uint32_t>{64, 128, 256, 512}
                        : std::vector<std::uint32_t>{128, 512};
  const std::vector<std::string> systems = {"PyG+", "Ginex", "GNNDrive-GPU",
                                            "GNNDrive-CPU"};

  std::printf("%5s | %-14s %14s %14s %10s\n", "dim", "system",
              "sample-only(s)", "sample-all(s)", "all/only");
  for (std::uint32_t dim : dims) {
    const Dataset& dataset = get_dataset("papers100m", dim);
    for (const auto& sys_name : systems) {
      double only_s = 0.0;
      double all_s = 0.0;
      bool oom = false;
      for (bool sample_only : {true, false}) {
        Env env = make_env(dataset);
        CommonTrainConfig common = common_config(ModelKind::kSage);
        common.sample_only = sample_only;
        try {
          auto system = make_system(sys_name, env, common);
          const EpochStats stats = mean_epochs(*system, measure_epochs());
          (sample_only ? only_s : all_s) = stats.sample_seconds;
        } catch (const SimOutOfMemory&) {
          oom = true;
        }
      }
      if (oom) {
        std::printf("%5u | %-14s %14s %14s %10s\n", dim, sys_name.c_str(),
                    "OOM", "OOM", "-");
      } else {
        std::printf("%5u | %-14s %14.3f %14.3f %9.1fx\n", dim,
                    sys_name.c_str(), only_s, all_s,
                    only_s > 0 ? all_s / only_s : 0.0);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
