// Figure 12: GNNDrive epoch runtime vs feature-buffer size (1x to 8x the
// default sizing).
//
// Expected shape: 2x improves over 1x by exploiting inter-batch locality
// (more retired-but-valid nodes survive on the standby list); beyond 2x the
// benefit flattens out.
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main() {
  print_banner("Figure 12",
               "GNNDrive epoch runtime and feature-buffer reuse vs buffer "
               "scale (GraphSAGE).");

  const std::vector<double> scales = {1.0, 2.0, 4.0, 8.0};
  const std::vector<std::string> datasets =
      bench_full_mode() ? std::vector<std::string>{"twitter", "papers100m"}
                        : std::vector<std::string>{"twitter"};

  for (const auto& ds_name : datasets) {
    const Dataset& dataset = get_dataset(ds_name);
    std::printf("%-12s %6s | %-14s %10s %10s %12s %12s\n", "dataset",
                "scale", "variant", "epoch(s)", "slots", "loads",
                "reuse-hits");
    for (double scale : scales) {
      for (const bool cpu : {false, true}) {
        Env env = make_env(dataset);
        GnnDriveConfig cfg;
        cfg.common = common_config(ModelKind::kSage);
        cfg.cpu_training = cpu;
        cfg.feature_buffer_scale = scale;
        // Give the buffer headroom to actually grow with the scale knob.
        cfg.gpu.device_memory_bytes = paper_gb(kDefaultGpuGB) * 8;
        try {
          GnnDrive system(env.ctx, cfg);
          const EpochStats stats = mean_epochs(system, measure_epochs());
          const auto fb = system.feature_buffer().stats();
          std::printf("%-12s %5.0fx | %-14s %10.3f %10llu %12llu %12llu\n",
                      ds_name.c_str(), scale, system.name(),
                      stats.epoch_seconds,
                      static_cast<unsigned long long>(
                          system.feature_buffer().num_slots()),
                      static_cast<unsigned long long>(fb.loads),
                      static_cast<unsigned long long>(fb.reuse_hits));
        } catch (const SimOutOfMemory& oom) {
          std::printf("%-12s %5.0fx | %-14s %10s  (%s)\n", ds_name.c_str(),
                      scale, cpu ? "GNNDrive-CPU" : "GNNDrive-GPU", "OOM",
                      oom.what());
        }
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }
  return 0;
}
