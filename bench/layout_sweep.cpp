// Feature-layout A/B sweep: identity vs degree-packed vs hotness-packed
// on-disk feature stores (src/layout), all with coalesced reads ON.
//
// The sweep measures the three I/O surfaces the layout compiler feeds:
//   * direct extraction — per-batch sorted-run coalescing (core/extract).
//     Packing nudges miss density but the per-batch *distinct* to-load set
//     is dedup-flattened, so expect modest request reductions here.
//   * mmap extraction — the PyG+ page-cache path. Packing concentrates hot
//     rows onto few 4 KiB pages that stay cached; a scattered store
//     dilutes every page's hotness.
//   * hot-set prefetch — the hotness cache policy's pinned-partition load
//     (cache/policy). This is where the packed store pays off hardest:
//     the profiled hot set occupies the head rows, so the prefetch
//     collapses from thousands of gap-limited point reads into a handful
//     of ~1 MiB sequential reads. The acceptance bar (>= 2x fewer
//     ssd.reads, best packed layout vs identity) is gated on the best of
//     the three surfaces — in practice this one clears it by orders of
//     magnitude.
//
// A layout permutes bytes, never values: the sweep also runs a
// deterministic (1 sampler / 1 extractor / CPU) epoch per layout and
// requires the per-batch loss trajectories to be bit-identical.
//
// Usage: layout_sweep [BENCH_layout.json]
#include "bench/bench_common.hpp"
#include "cache/policy.hpp"
#include "layout/compiler.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

struct Cell {
  bool ok = false;
  double epoch_s = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t loads = 0;
  double rows_per_read = 0.0;
  double loss = 0.0;
  /// SSD reads/epoch for page-cache (mmap) feature extraction — the PyG+
  /// path. Page granularity is where packing pays off most: a packed store
  /// concentrates the hot rows onto few pages that stay cached, while a
  /// scattered store dilutes every page's hotness and thrashes the cache.
  std::uint64_t mmap_reads = 0;
  /// SSD requests to pin the profiled hot partition (cache/policy
  /// prefetch_hot_rows) — the cold-start cost of the hotness cache policy
  /// and of bringing up a serving replica with a warm hot set.
  std::uint64_t prefetch_reads = 0;
  std::vector<double> det_losses;  ///< deterministic per-batch trajectory
};

Cell run_cell(const Dataset& dataset, const CommonTrainConfig& common) {
  Cell cell;
  try {
    {
      Env env = make_env(dataset);
      GnnDriveConfig cfg;
      cfg.common = common;
      GnnDrive system(env.ctx, cfg);

      system.run_epoch(100);  // warm-up: topology resident, buffer primed
      env.ssd->reset_stats();
      const auto loads_before = system.feature_buffer().stats().loads;

      const int epochs = measure_epochs();
      for (int e = 0; e < epochs; ++e) {
        const EpochStats stats = system.run_epoch(e);
        cell.epoch_s += stats.epoch_seconds / epochs;
        cell.rows_per_read += stats.obs.rows_per_read() / epochs;
        cell.loss += stats.loss / epochs;
      }
      cell.reads = env.ssd->stats().reads / epochs;
      cell.loads =
          (system.feature_buffer().stats().loads - loads_before) / epochs;
    }
    {
      // Page-cache extraction (PyG+): features are read through 4 KiB
      // cached pages, so cross-batch reuse is page-granular and the layout
      // decides how much of each fetched page is ever useful. The cache
      // must be able to hold a real fraction of the feature file for the
      // layout to matter at all — below that, every layout thrashes alike
      // (that regime is the direct-I/O columns' story). 48 paper-GB leaves
      // room for ~3/4 of the feature region after the topology pages.
      Env env = make_env(dataset, 48.0);
      PygPlusConfig cfg;
      cfg.common = common;
      PygPlus system(env.ctx, cfg);
      system.run_epoch(100);  // warm-up: page cache at steady state
      env.ssd->reset_stats();
      const int epochs = measure_epochs();
      for (int e = 0; e < epochs; ++e) system.run_epoch(e);
      cell.mmap_reads = env.ssd->stats().reads / epochs;
    }
    {
      // Hot-partition prefetch (the cache-policy pinned load): profile the
      // sampler's frequency distribution, then pin the top 10% of nodes
      // and count the SSD requests the one-shot load takes. The profile
      // uses the same HotnessProfileConfig the compiler uses — in a real
      // deployment the layout pass and the cache policy consume one shared
      // profile artifact — so under the hotness layout those nodes ARE the
      // head rows and the prefetch becomes a few ~1 MiB sequential reads.
      Env env = make_env(dataset);
      const std::uint64_t hot_target = dataset.spec().num_nodes / 10;
      HotnessProfileConfig pc;
      pc.sampler = common.sampler;
      pc.batch_seeds = common.batch_seeds;
      const PresampleResult profile = presample_hot_set(
          dataset, *env.cache, pc.sampler, pc.batch_seeds, pc.profile_seed,
          pc.presample_batches, hot_target);
      FeatureBuffer fb(
          FeatureBufferConfig{profile.hot_nodes.size() + 256,
                              dataset.spec().feature_dim},
          dataset.spec().num_nodes);
      env.ssd->reset_stats();
      prefetch_hot_rows(fb, profile.hot_nodes, dataset, *env.ssd,
                        CoalesceConfig{});
      cell.prefetch_reads = env.ssd->stats().reads;
    }
    {
      // Deterministic trajectory probe: 1 sampler + 1 extractor + CPU
      // training orders batches identically run-to-run, so the per-batch
      // losses must match bit-for-bit across layouts.
      Env env = make_env(dataset);
      GnnDriveConfig cfg;
      cfg.common = common;
      cfg.num_samplers = 1;
      cfg.num_extractors = 1;
      cfg.cpu_training = true;
      cfg.record_batch_losses = true;
      GnnDrive system(env.ctx, cfg);
      cell.det_losses = system.run_epoch(0).batch_losses;
    }
    cell.ok = true;
  } catch (const SimOutOfMemory& oom) {
    std::printf("  (skipped: %s)\n", oom.what());
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_layout.json";
  print_banner(
      "Feature-layout sweep",
      "SSD read requests per epoch under identity vs degree-packed vs "
      "hotness-packed feature layouts, coalesce=on throughout. Expected "
      "shape: packing the sampled working set densifies the sorted miss "
      "runs, so the same coalescer caps merge more rows per request; the "
      "per-batch loss trajectory is layout-invariant by construction.");

  // A private mutable dataset: the compiler rewrites the image in place
  // (get_dataset()'s shared cache must stay identity for other benches).
  // Node ids are scrambled so "identity layout" means what it means on the
  // real Papers100M — rows in id order, uncorrelated with access frequency.
  // Without the scramble the generator's skewed endpoint pick leaves the
  // image already degree-sorted and there is nothing for a layout to fix.
  DatasetSpec spec = mini_spec("papers100m", 128);
  spec.scramble_ids = true;
  // Sharper endpoint skew than the mini default: real citation/social
  // graphs put well over half their sampler traffic on a small hot head
  // (the regime the hotness strategy exists for); the cache-policy benches
  // sweep the same knob.
  spec.skew = 3.0;
  if (!bench_full_mode()) spec.train_fraction *= 0.25;
  Dataset dataset = Dataset::build(spec);
  std::printf("node ids scrambled (realistic id/degree decorrelation); "
              "skew = %.1f; batch = %u seeds; mmap cell host = 48 paper-GB\n\n",
              spec.skew, 4 * kDefaultBatchSeeds);

  // The dense-batch configuration of the coalesce sweep: at 4x seeds the
  // sorted miss runs are long enough for gap economics to matter.
  CommonTrainConfig common = common_config(ModelKind::kSage);
  common.batch_seeds = 4 * kDefaultBatchSeeds;
  const char* names[] = {"identity", "degree", "hotness"};
  Cell cells[3];
  for (int s = 0; s < 3; ++s) {
    switch (s) {
      case 0:
        compile_layout(dataset, nullptr);
        break;
      case 1:
        compile_layout(dataset, std::make_shared<const LayoutPlan>(
                                    plan_degree_layout(dataset)));
        break;
      case 2: {
        Env env = make_env(dataset);
        HotnessProfileConfig profile;
        profile.sampler = common.sampler;
        profile.batch_seeds = common.batch_seeds;
        compile_layout(dataset,
                       std::make_shared<const LayoutPlan>(plan_hotness_layout(
                           dataset, *env.cache, profile)));
        break;
      }
    }
    cells[s] = run_cell(dataset, common);
  }
  compile_layout(dataset, nullptr);  // leave the image canonical

  const Cell& base = cells[0];
  if (!base.ok) {
    std::printf("LAYOUT SWEEP FAILED: identity cell did not run\n");
    return 1;
  }
  std::printf("%-12s %-9s | %8s %9s %9s %7s %9s %7s | %9s %7s | %8s %8s\n",
              "dataset", "layout", "epoch(s)", "reads/ep", "loads/ep",
              "rows/rd", "loss", "direct", "mmap/ep", "mmap", "prefetch",
              "pref");
  double best_reduction = 1.0;
  int best = 0;
  bool losses_match = true;
  for (int s = 0; s < 3; ++s) {
    const Cell& cell = cells[s];
    if (!cell.ok) continue;
    const double direct_red =
        cell.reads > 0 ? static_cast<double>(base.reads) /
                             static_cast<double>(cell.reads)
                       : 0.0;
    const double mmap_red =
        cell.mmap_reads > 0 ? static_cast<double>(base.mmap_reads) /
                                  static_cast<double>(cell.mmap_reads)
                            : 0.0;
    const double prefetch_red =
        cell.prefetch_reads > 0
            ? static_cast<double>(base.prefetch_reads) /
                  static_cast<double>(cell.prefetch_reads)
            : 0.0;
    // Headline ratio = best of the three surfaces. Direct reads are planned
    // per batch (density-bound, modest gains); the page cache compounds the
    // packed layout's locality across batches; the hot-set prefetch is
    // where packing pays off hardest — the pinned partition IS the head of
    // the packed store, so the load collapses to sequential reads.
    const double cell_best =
        std::max(direct_red, std::max(mmap_red, prefetch_red));
    if (s > 0 && cell_best > best_reduction) {
      best_reduction = cell_best;
      best = s;
    }
    if (cell.det_losses != base.det_losses) losses_match = false;
    std::printf(
        "%-12s %-9s | %8.3f %8llu %9llu %7.2f %9.4f %6.2fx | %9llu %6.2fx | "
        "%8llu %7.1fx\n",
        "papers100m", names[s], cell.epoch_s,
        static_cast<unsigned long long>(cell.reads),
        static_cast<unsigned long long>(cell.loads), cell.rows_per_read,
        cell.loss, direct_red,
        static_cast<unsigned long long>(cell.mmap_reads), mmap_red,
        static_cast<unsigned long long>(cell.prefetch_reads), prefetch_red);
    std::fflush(stdout);
  }
  std::printf("\nbest packed layout: %s (%.2fx fewer reads vs identity); "
              "deterministic loss trajectories %s (%zu batches)\n",
              names[best], best_reduction,
              losses_match ? "bit-identical" : "DIVERGED",
              base.det_losses.size());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"dataset\":\"papers100m\",\"coalesce\":\"on\","
                  "\"strategies\":[");
  for (int s = 0; s < 3; ++s) {
    const Cell& cell = cells[s];
    std::fprintf(
        f,
        "%s{\"name\":\"%s\",\"ok\":%s,\"epoch_seconds\":%.4f,"
        "\"reads_per_epoch\":%llu,\"loads_per_epoch\":%llu,"
        "\"rows_per_read\":%.3f,\"mmap_reads_per_epoch\":%llu,"
        "\"prefetch_reads\":%llu,\"loss\":%.6f}",
        s > 0 ? "," : "", names[s], cell.ok ? "true" : "false", cell.epoch_s,
        static_cast<unsigned long long>(cell.reads),
        static_cast<unsigned long long>(cell.loads), cell.rows_per_read,
        static_cast<unsigned long long>(cell.mmap_reads),
        static_cast<unsigned long long>(cell.prefetch_reads), cell.loss);
  }
  std::fprintf(f,
               "],\"best\":\"%s\",\"read_reduction_x\":%.3f,"
               "\"loss_trajectory_identical\":%s}\n",
               names[best], best_reduction, losses_match ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Acceptance gates: the trajectory must be layout-invariant and the best
  // packed layout must at least halve the request count.
  if (!losses_match || best_reduction < 2.0) {
    std::printf("LAYOUT SWEEP FAILED\n");
    return 1;
  }
  return 0;
}
