// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper. This
// header provides the scaled experimental setup of Sect. 5 ("Platform",
// "GNN Models", "Datasets", "Baselines"):
//   * datasets      — papers100m/twitter/friendster/mag240m at mini scale;
//   * environment   — simulated SSD, host-memory budget in paper-"GB"
//                     (1 GB = 2 MiB here), shared OS page cache, telemetry;
//   * systems       — GNNDrive-GPU/CPU, PyG+, Ginex, MariusGNN with the
//                     paper's default knobs (4 samplers, 4 extractors,
//                     queue caps 6/4, Ginex superbatch, Marius partitions);
//   * models        — GraphSAGE/GCN (10,10,10), GAT (10,10,5), 3 layers.
//
// GNNDRIVE_BENCH_MODE=full runs the complete sweeps; the default "quick"
// mode runs a representative subset so `for b in build/bench/*` finishes in
// minutes on one core. Scaled parameters are echoed in each header line.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "baselines/ginex.hpp"
#include "baselines/mariusgnn.hpp"
#include "baselines/pygplus.hpp"
#include "core/multi_gpu.hpp"
#include "core/pipeline.hpp"
#include "util/env.hpp"

namespace gnndrive::bench {

/// Paper default host memory: 32 GB.
inline constexpr double kDefaultMemGB = 32.0;
/// Paper default GPU memory: 24 GB (RTX 3090).
inline constexpr double kDefaultGpuGB = 24.0;
/// Paper default mini-batch: 1000 (scaled by kBatchScale = 250 -> 4 seeds).
inline constexpr std::uint32_t kDefaultBatchSeeds = 4;

/// Default SSD model (SATA-class PM883 stand-in).
inline SsdConfig default_ssd() {
  SsdConfig cfg;
  cfg.read_latency_us = 80.0;
  cfg.write_latency_us = 25.0;
  cfg.bandwidth_mb_s = 2000.0;
  cfg.channels = 16;
  return cfg;
}

/// Builds (and caches) a dataset. Quick mode shrinks the training split so
/// a PyG+ epoch stays in the tens of seconds on one core.
const Dataset& get_dataset(const std::string& name, std::uint32_t dim = 0);

/// One experiment's environment: fresh device/memory/cache over the shared
/// dataset image.
struct Env {
  const Dataset* dataset = nullptr;
  std::unique_ptr<SsdDevice> ssd;
  std::unique_ptr<HostMemory> mem;
  std::unique_ptr<PageCache> cache;
  std::unique_ptr<Telemetry> telemetry;
  RunContext ctx;
};

Env make_env(const Dataset& dataset, double mem_gb = kDefaultMemGB,
             const SsdConfig& ssd_cfg = default_ssd(),
             bool with_telemetry = false);

/// Paper-default common training config for a model on a dataset.
CommonTrainConfig common_config(ModelKind kind);

/// System factory. Names: "GNNDrive-GPU", "GNNDrive-CPU", "PyG+", "Ginex",
/// "MariusGNN". May throw SimOutOfMemory (callers report OOM rows).
std::unique_ptr<TrainSystem> make_system(const std::string& name, Env& env,
                                         const CommonTrainConfig& common);

/// Runs `epochs` epochs and returns the mean stats (per-field mean).
EpochStats mean_epochs(TrainSystem& system, int epochs,
                       std::uint64_t first_epoch = 0);

/// Number of measured epochs per configuration (1 quick / 3 full).
inline int measure_epochs() { return bench_full_mode() ? 3 : 1; }

/// Prints the standard bench banner.
void print_banner(const char* experiment, const char* description);

}  // namespace gnndrive::bench
