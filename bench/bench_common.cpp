#include "bench/bench_common.hpp"

namespace gnndrive::bench {

const Dataset& get_dataset(const std::string& name, std::uint32_t dim) {
  // Keep at most two datasets alive (they can be ~1 GiB at dim 512+).
  static std::map<std::string, std::unique_ptr<Dataset>> cache;
  static std::vector<std::string> order;
  DatasetSpec spec = mini_spec(name, dim);
  if (!bench_full_mode()) {
    // Quick mode: a 0.25x training split keeps baseline epochs short; the
    // comparison is unaffected (every system trains the same seeds).
    spec.train_fraction *= 0.25;
  }
  const std::string key =
      spec.name + "/" + std::to_string(spec.feature_dim) + "/" +
      std::to_string(spec.num_nodes);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;
  while (cache.size() >= 2) {
    cache.erase(order.front());
    order.erase(order.begin());
  }
  auto ds = std::make_unique<Dataset>(Dataset::build(spec));
  auto* ptr = ds.get();
  cache.emplace(key, std::move(ds));
  order.push_back(key);
  return *ptr;
}

Env make_env(const Dataset& dataset, double mem_gb, const SsdConfig& ssd_cfg,
             bool with_telemetry) {
  Env env;
  env.dataset = &dataset;
  env.ssd = dataset.make_device(ssd_cfg);
  env.mem = std::make_unique<HostMemory>(paper_gb(mem_gb));
  env.telemetry =
      with_telemetry ? std::make_unique<Telemetry>(100.0) : nullptr;
  env.ssd->set_telemetry(env.telemetry.get());
  env.cache = std::make_unique<PageCache>(*env.mem, *env.ssd,
                                          env.telemetry.get());
  env.ctx = RunContext{&dataset, env.ssd.get(), env.mem.get(),
                       env.cache.get(), env.telemetry.get()};
  return env;
}

CommonTrainConfig common_config(ModelKind kind) {
  CommonTrainConfig c;
  c.model.kind = kind;
  c.model.hidden_dim = 32;  // paper: 256; scaled for single-core math
  c.model.gat_heads = 2;
  // Paper: (10,10,10) for GraphSAGE/GCN, (10,10,5) for GAT.
  c.sampler.fanouts = kind == ModelKind::kGat
                          ? std::vector<std::uint32_t>{10, 10, 5}
                          : std::vector<std::uint32_t>{10, 10, 10};
  c.batch_seeds = kDefaultBatchSeeds;
  return c;
}

std::unique_ptr<TrainSystem> make_system(const std::string& name, Env& env,
                                         const CommonTrainConfig& common) {
  GpuConfig gpu;
  gpu.device_memory_bytes = paper_gb(kDefaultGpuGB);
  if (name == "GNNDrive-GPU" || name == "GNNDrive-CPU") {
    GnnDriveConfig cfg;
    cfg.common = common;
    cfg.cpu_training = name == "GNNDrive-CPU";
    cfg.gpu = gpu;
    return std::make_unique<GnnDrive>(env.ctx, cfg);
  }
  if (name == "PyG+") {
    PygPlusConfig cfg;
    cfg.common = common;
    cfg.gpu = gpu;
    return std::make_unique<PygPlus>(env.ctx, cfg);
  }
  if (name == "Ginex") {
    GinexConfig cfg;
    cfg.common = common;
    cfg.gpu = gpu;
    return std::make_unique<Ginex>(env.ctx, cfg);
  }
  if (name == "MariusGNN") {
    MariusConfig cfg;
    cfg.common = common;
    cfg.gpu = gpu;
    return std::make_unique<MariusGnn>(env.ctx, cfg);
  }
  GD_CHECK_MSG(false, "unknown system name");
  return nullptr;
}

EpochStats mean_epochs(TrainSystem& system, int epochs,
                       std::uint64_t first_epoch) {
  // One unmeasured warm-up epoch: the paper reports steady-state averages
  // over 10 epochs, after caches have settled.
  system.run_epoch(first_epoch + 1000);
  EpochStats mean;
  for (int e = 0; e < epochs; ++e) {
    const EpochStats s = system.run_epoch(first_epoch + e);
    mean.epoch_seconds += s.epoch_seconds / epochs;
    mean.prep_seconds += s.prep_seconds / epochs;
    mean.sample_seconds += s.sample_seconds / epochs;
    mean.extract_seconds += s.extract_seconds / epochs;
    mean.train_seconds += s.train_seconds / epochs;
    mean.loss += s.loss / epochs;
    mean.train_accuracy += s.train_accuracy / epochs;
    mean.batches = s.batches;
  }
  return mean;
}

void print_banner(const char* experiment, const char* description) {
  std::printf("=== %s ===\n%s\n", experiment, description);
  std::printf(
      "scale: nodes = paper/500, 1 paper-GB = 2 MiB, mini-batch = paper/%u "
      "(default %u seeds), hidden dim 32; mode = %s\n\n",
      kBatchScale, kDefaultBatchSeeds,
      bench_full_mode() ? "full" : "quick");
}

}  // namespace gnndrive::bench
