// Google-benchmark microbenchmarks for GNNDrive's core data structures:
// the feature-buffer manager, the pipeline queue, the neighbor sampler and
// the NN kernels. These quantify that the buffer-management overhead the
// paper's Fig. 12 discussion mentions ("a larger feature buffer incurs more
// overhead in management, such as updating the standby list") stays in the
// nanosecond range.
#include <benchmark/benchmark.h>

#include "core/evaluate.hpp"
#include "core/feature_buffer.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"
#include "sampling/sampler.hpp"
#include "util/queue.hpp"

namespace gnndrive {
namespace {

void BM_FeatureBufferCheckAndRef(benchmark::State& state) {
  FeatureBufferConfig cfg;
  cfg.num_slots = static_cast<std::uint64_t>(state.range(0));
  cfg.row_floats = 4;
  FeatureBuffer fb(cfg, 100000);
  // Pre-populate: all slots valid, retired to standby.
  for (NodeId v = 0; v < cfg.num_slots; ++v) {
    fb.check_and_ref(v);
    fb.allocate_slot(v);
    fb.mark_valid(v);
    fb.release_one(v);
  }
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fb.check_and_ref(v));
    fb.release_one(v);
    v = (v + 1) % static_cast<NodeId>(cfg.num_slots);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureBufferCheckAndRef)->Arg(1024)->Arg(65536);

void BM_FeatureBufferAllocateCycle(benchmark::State& state) {
  constexpr NodeId kNodes = 1 << 20;
  FeatureBufferConfig cfg;
  cfg.num_slots = 4096;
  cfg.row_floats = 4;
  FeatureBuffer fb(cfg, kNodes);
  NodeId v = 0;
  for (auto _ : state) {
    // Walk nodes round-robin: with 1M nodes vs 4k slots almost every visit
    // is a full miss + LRU-reuse path; the rare wrap-around hit (node still
    // resident) takes the reuse path instead.
    const auto r = fb.check_and_ref(v);
    if (r.status == FeatureBuffer::CheckStatus::kMustLoad) {
      benchmark::DoNotOptimize(fb.allocate_slot(v));
      fb.mark_valid(v);
    }
    fb.release_one(v);
    v = (v + 1) % kNodes;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureBufferAllocateCycle);

void BM_BoundedQueuePingPong(benchmark::State& state) {
  BoundedQueue<std::uint64_t> q(16);
  std::thread consumer([&] {
    while (q.pop().has_value()) {
    }
  });
  std::uint64_t i = 0;
  for (auto _ : state) q.push(i++);
  q.close();
  consumer.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedQueuePingPong);

const Dataset& bench_dataset() {
  static Dataset ds = Dataset::build(toy_spec(64));
  return ds;
}

void BM_NeighborSample(benchmark::State& state) {
  const Dataset& ds = bench_dataset();
  DirectTopology topo(ds);
  NeighborSampler sampler(
      {{static_cast<std::uint32_t>(state.range(0)),
        static_cast<std::uint32_t>(state.range(0)),
        static_cast<std::uint32_t>(state.range(0))},
       7});
  std::vector<NodeId> seeds(ds.train_nodes().begin(),
                            ds.train_nodes().begin() + 8);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(id++, seeds, topo, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborSample)->Arg(5)->Arg(10);

void BM_TrainBatch(benchmark::State& state) {
  const Dataset& ds = bench_dataset();
  DirectTopology topo(ds);
  NeighborSampler sampler({{10, 10, 10}, 7});
  std::vector<NodeId> seeds(ds.train_nodes().begin(),
                            ds.train_nodes().begin() + 4);
  SampledBatch batch = sampler.sample(1, seeds, topo, &ds.labels());
  Tensor x0 = gather_features_direct(ds, batch);
  ModelConfig mc;
  mc.kind = static_cast<ModelKind>(state.range(0));
  mc.in_dim = ds.spec().feature_dim;
  mc.hidden_dim = 32;
  mc.num_classes = ds.spec().num_classes;
  GnnModel model(mc);
  Adam adam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_batch(batch, x0));
    adam.step(model.params());
    adam.zero_grad(model.params());
  }
  state.SetItemsProcessed(state.iterations() * batch.num_nodes());
}
BENCHMARK(BM_TrainBatch)
    ->Arg(static_cast<int>(ModelKind::kSage))
    ->Arg(static_cast<int>(ModelKind::kGcn))
    ->Arg(static_cast<int>(ModelKind::kGat));

}  // namespace
}  // namespace gnndrive

BENCHMARK_MAIN();
