// Figure 9: epoch runtime vs host-memory capacity (8-128 "GB"), feature
// dimension 512.
//
// Expected shape: every system improves with more memory; PyG+ is the most
// memory-sensitive (page cache is all it has) and can approach GNNDrive at
// 128 GB on the smaller graphs; Ginex hits OOM at 8 GB; GNNDrive-GPU works
// at every capacity and is nearly flat beyond 32 GB (topology fits).
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main() {
  print_banner("Figure 9",
               "Epoch runtime vs host memory, dim 512 (paper GBs; 1 GB = "
               "2 MiB simulated).");

  const std::vector<double> mem_gbs =
      bench_full_mode() ? std::vector<double>{8, 16, 32, 64, 128}
                        : std::vector<double>{8, 32, 128};
  const std::vector<std::string> datasets =
      bench_full_mode()
          ? std::vector<std::string>{"papers100m", "twitter"}
          : std::vector<std::string>{"papers100m", "twitter"};
  const std::vector<std::string> systems = {"GNNDrive-GPU", "GNNDrive-CPU",
                                            "PyG+", "Ginex"};

  for (const auto& ds_name : datasets) {
    const Dataset& dataset = get_dataset(ds_name, 512);
    std::printf("%-12s %8s | %12s %10s %10s %10s %10s\n", "dataset",
                "mem(GB)", "system", "epoch(s)", "sample(s)", "extract(s)",
                "train(s)");
    for (double gb : mem_gbs) {
      for (const auto& sys_name : systems) {
        Env env = make_env(dataset, gb);
        try {
          auto system =
              make_system(sys_name, env, common_config(ModelKind::kSage));
          const EpochStats stats = mean_epochs(*system, measure_epochs());
          std::printf("%-12s %8.0f | %12s %10.3f %10.3f %10.3f %10.3f\n",
                      ds_name.c_str(), gb, sys_name.c_str(),
                      stats.epoch_seconds, stats.sample_seconds,
                      stats.extract_seconds, stats.train_seconds);
        } catch (const SimOutOfMemory& oom) {
          std::printf("%-12s %8.0f | %12s %10s  (%s)\n", ds_name.c_str(), gb,
                      sys_name.c_str(), "OOM", oom.what());
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
