// Observability demo: runs one traced GNNDrive epoch and exports the full
// observability surface — Chrome trace JSON (load in https://ui.perfetto.dev
// or chrome://tracing), text flamegraph summary, per-stage latency report
// and the unified metrics registry. See docs/observability.md.
//
// Usage: trace_pipeline [trace.json]   (default output: trace.json)
#include "bench/bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "trace.json";
  print_banner("Pipeline trace export (docs/observability.md)",
               "One traced GNNDrive-GPU epoch on papers100m: per-batch "
               "spans, queue/buffer counter tracks, metrics registry.");

  const Dataset& dataset = get_dataset("papers100m");
  Env env = make_env(dataset, kDefaultMemGB, default_ssd(),
                     /*with_telemetry=*/true);
  auto system = make_system("GNNDrive-GPU", env,
                            common_config(ModelKind::kSage));

  system->run_epoch(1000);  // warm-up, untraced
  env.telemetry->start();
  env.telemetry->set_tracing(true);
  const EpochStats stats = system->run_epoch(0);
  env.telemetry->set_tracing(false);

  std::printf("epoch: %.2fs wall, %llu/%llu batches trained\n\n",
              stats.epoch_seconds,
              static_cast<unsigned long long>(stats.result.trained_batches),
              static_cast<unsigned long long>(stats.batches));

  std::printf("--- per-stage latency (EpochStats::obs) ---\n%s\n",
              stats.obs.format().c_str());

  const SpanTracer& tracer = *env.telemetry->tracer();
  std::printf("--- span summary (%zu spans, %zu dropped) ---\n%s\n",
              tracer.span_count(), tracer.dropped(),
              tracer.summary().c_str());

  std::printf("--- metrics registry ---\n%s\n",
              env.telemetry->metrics()->format_report().c_str());

  if (tracer.write_chrome_trace(trace_path)) {
    std::printf("wrote %s (open in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  } else {
    std::printf("FAILED to write %s\n", trace_path.c_str());
    return 1;
  }
  return 0;
}
