// Observability demo: runs one traced GNNDrive epoch and exports the full
// observability surface — Chrome trace JSON (load in https://ui.perfetto.dev
// or chrome://tracing), text flamegraph summary, per-stage latency report
// and the unified metrics registry. See docs/observability.md.
//
// Usage: trace_pipeline [trace.json]   (default output: trace.json)
#include <atomic>
#include <chrono>
#include <thread>

#include "bench/bench_common.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

/// Mean epoch wall time over `n` untraced epochs.
double mean_epoch_seconds(TrainSystem& system, int n,
                          std::uint64_t first_epoch) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += system.run_epoch(first_epoch + i).epoch_seconds;
  }
  return total / n;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "trace.json";
  print_banner("Pipeline trace export (docs/observability.md)",
               "One traced GNNDrive-GPU epoch on papers100m: per-batch "
               "spans, queue/buffer counter tracks, metrics registry.");

  const Dataset& dataset = get_dataset("papers100m");
  Env env = make_env(dataset, kDefaultMemGB, default_ssd(),
                     /*with_telemetry=*/true);
  auto system = make_system("GNNDrive-GPU", env,
                            common_config(ModelKind::kSage));

  system->run_epoch(1000);  // warm-up, untraced
  env.telemetry->start();
  env.telemetry->set_tracing(true);
  const EpochStats stats = system->run_epoch(0);
  env.telemetry->set_tracing(false);

  std::printf("epoch: %.2fs wall, %llu/%llu batches trained\n\n",
              stats.epoch_seconds,
              static_cast<unsigned long long>(stats.result.trained_batches),
              static_cast<unsigned long long>(stats.batches));

  std::printf("--- per-stage latency (EpochStats::obs) ---\n%s\n",
              stats.obs.format().c_str());

  const SpanTracer& tracer = *env.telemetry->tracer();
  std::printf("--- span summary (%zu spans, %zu dropped) ---\n%s\n",
              tracer.span_count(), tracer.dropped(),
              tracer.summary().c_str());

  std::printf("--- metrics registry ---\n%s\n",
              env.telemetry->metrics()->format_report().c_str());

  if (tracer.write_chrome_trace(trace_path)) {
    std::printf("wrote %s (open in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  } else {
    std::printf("FAILED to write %s\n", trace_path.c_str());
    return 1;
  }

  // -- telemetry-plane overhead A/B ------------------------------------------
  // Baseline: sampler disabled (no ticks, no ring). Plane: sampler enabled
  // plus the HTTP endpoint under a continuous /metrics scrape. The plane is
  // designed to cost <= 2% epoch time.
  std::printf("--- telemetry plane overhead ---\n");
  const int n = measure_epochs();
  TimeSeriesSampler* sampler = env.telemetry->sampler();
  sampler->set_enabled(false);
  const double base_s = mean_epoch_seconds(*system, n, 2000);

  sampler->set_enabled(true);
  const double sampler_s = mean_epoch_seconds(*system, n, 2500);

  ObsServer server(env.telemetry->metrics(), sampler,
                   env.telemetry->attributor(), env.telemetry->slo());
  std::atomic<bool> scraping{true};
  std::uint64_t scrapes = 0;
  std::thread scraper;
  if (server.start()) {
    scraper = std::thread([&] {
      HttpResponse resp;
      while (scraping.load(std::memory_order_relaxed)) {
        if (obs_http_get("127.0.0.1", server.port(), "/metrics", &resp) &&
            resp.status == 200) {
          ++scrapes;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }
  const double plane_s = mean_epoch_seconds(*system, n, 3000);
  scraping.store(false, std::memory_order_relaxed);
  if (scraper.joinable()) scraper.join();
  server.stop();

  const double overhead_pct = base_s > 0.0
      ? (plane_s - base_s) / base_s * 100.0 : 0.0;
  std::printf(
      "baseline (sampler off)        %.3fs/epoch\n"
      "sampler only                  %.3fs/epoch (%+.2f%%)\n"
      "sampler + /metrics scrape     %.3fs/epoch (%llu scrapes)\n"
      "overhead                      %+.2f%% (target <= 2%%)\n",
      base_s, sampler_s,
      base_s > 0.0 ? (sampler_s - base_s) / base_s * 100.0 : 0.0,
      plane_s, static_cast<unsigned long long>(scrapes),
      overhead_pct);
  return 0;
}
