// Appendix B / Figure B.1: standalone I/O comparison (the paper's fio
// experiment): random 512 B reads of a large region,
//   (a,c) synchronous reads with 1..64 threads — bandwidth and latency;
//   (b,d) asynchronous reads (one thread) with I/O depth 1..64;
// each in buffered and direct modes.
//
// Expected shape: sync bandwidth grows with threads then saturates (device
// channels), while per-request latency climbs; async reaches the same
// bandwidth with ONE thread at sufficient depth; buffered ~ direct at high
// depth (the paper: the difference narrows to ~5.6%), which justifies
// GNNDrive's direct-I/O choice.
#include <thread>

#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

constexpr std::uint64_t kRegion = 192ull << 20;  // "30 GB" file, scaled
constexpr std::uint32_t kIoSize = 512;

struct Result {
  double mb_s = 0.0;
  double mean_lat_us = 0.0;
};

std::uint64_t g_run_salt = 0;  // fresh offsets per measurement

Result run_sync(SsdDevice& ssd, PageCache* cache, unsigned threads,
                std::size_t total_ios) {
  if (cache != nullptr) cache->invalidate_all();
  const std::uint64_t salt = ++g_run_salt;
  // Signed: concurrent fetch_sub past zero must stay negative, not wrap.
  std::atomic<std::int64_t> remaining{static_cast<std::int64_t>(total_ios)};
  std::atomic<std::uint64_t> lat_ns{0};
  const TimePoint t0 = Clock::now();
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(splitmix64(t + 77 + salt * 1315423911ull));
      alignas(512) std::uint8_t buf[kIoSize];
      while (remaining.fetch_sub(1) > 0) {
        const std::uint64_t off =
            round_down(rng.next_below(kRegion - kIoSize), kSectorSize);
        const TimePoint s = Clock::now();
        if (cache != nullptr) {
          cache->read(off, kIoSize, buf);
        } else {
          ssd.read_sync(off, kIoSize, buf);
        }
        lat_ns += static_cast<std::uint64_t>(
            to_seconds(Clock::now() - s) * 1e9);
      }
    });
  }
  for (auto& t : pool) t.join();
  const double elapsed = to_seconds(Clock::now() - t0);
  Result r;
  r.mb_s = static_cast<double>(total_ios) * kIoSize / 1e6 / elapsed;
  r.mean_lat_us = static_cast<double>(lat_ns.load()) / 1e3 /
                  static_cast<double>(total_ios);
  return r;
}

Result run_async(SsdDevice& ssd, PageCache* cache, unsigned depth,
                 std::size_t total_ios) {
  if (cache != nullptr) cache->invalidate_all();
  IoRingConfig rc;
  rc.queue_depth = depth;
  rc.direct = cache == nullptr;
  IoRing ring(ssd, rc, cache);
  Rng rng(splitmix64(0xA51Cull + ++g_run_salt * 2654435761ull));
  std::vector<std::uint8_t> bufs(static_cast<std::size_t>(depth) * kIoSize);
  std::vector<TimePoint> started(depth);
  std::vector<unsigned> free_slots;
  for (unsigned i = 0; i < depth; ++i) free_slots.push_back(i);

  std::uint64_t lat_ns = 0;
  std::size_t submitted = 0;
  std::size_t done = 0;
  const TimePoint t0 = Clock::now();
  while (done < total_ios) {
    while (submitted < total_ios && !free_slots.empty()) {
      const unsigned slot = free_slots.back();
      free_slots.pop_back();
      const std::uint64_t off =
          round_down(rng.next_below(kRegion - kIoSize), kSectorSize);
      started[slot] = Clock::now();
      ring.prep_read(off, kIoSize, bufs.data() + slot * kIoSize, slot);
      ring.submit();
      ++submitted;
    }
    const Cqe cqe = ring.wait_cqe();
    GD_CHECK(cqe.res >= 0);
    const unsigned slot = static_cast<unsigned>(cqe.user_data);
    lat_ns += static_cast<std::uint64_t>(
        to_seconds(Clock::now() - started[slot]) * 1e9);
    free_slots.push_back(slot);
    ++done;
  }
  const double elapsed = to_seconds(Clock::now() - t0);
  Result r;
  r.mb_s = static_cast<double>(total_ios) * kIoSize / 1e6 / elapsed;
  r.mean_lat_us =
      static_cast<double>(lat_ns) / 1e3 / static_cast<double>(total_ios);
  return r;
}

}  // namespace

int main() {
  print_banner("Figure B.1 (Appendix B)",
               "Sync multi-thread vs async single-thread 512 B random "
               "reads, buffered vs direct.");

  auto image = std::make_shared<MemBackend>(kRegion);
  SsdDevice ssd(default_ssd(), image);
  // Buffered mode: a page cache big enough to matter but far smaller than
  // the region (as in the paper's 30 GB file vs host RAM).
  HostMemory mem(32ull << 20);
  PageCache cache(mem, ssd);

  const std::size_t ios = bench_full_mode() ? 20000 : 6000;
  const std::vector<unsigned> sweep = bench_full_mode()
                                          ? std::vector<unsigned>{1, 2, 4, 8,
                                                                  16, 32, 64}
                                          : std::vector<unsigned>{1, 4, 16,
                                                                  64};

  std::printf("(a,c) synchronous, varying threads\n");
  std::printf("%8s | %12s %12s | %12s %12s\n", "threads", "direct MB/s",
              "lat(us)", "buffered MB/s", "lat(us)");
  for (unsigned threads : sweep) {
    const Result d = run_sync(ssd, nullptr, threads, ios);
    const Result b = run_sync(ssd, &cache, threads, ios);
    std::printf("%8u | %12.1f %12.1f | %12.1f %12.1f\n", threads, d.mb_s,
                d.mean_lat_us, b.mb_s, b.mean_lat_us);
    std::fflush(stdout);
  }

  std::printf("\n(b,d) asynchronous (one thread), varying I/O depth\n");
  std::printf("%8s | %12s %12s | %12s %12s\n", "depth", "direct MB/s",
              "lat(us)", "buffered MB/s", "lat(us)");
  double direct_peak = 0.0;
  double buffered_peak = 0.0;
  for (unsigned depth : sweep) {
    const Result d = run_async(ssd, nullptr, depth, ios);
    const Result b = run_async(ssd, &cache, depth, ios);
    direct_peak = std::max(direct_peak, d.mb_s);
    buffered_peak = std::max(buffered_peak, b.mb_s);
    std::printf("%8u | %12.1f %12.1f | %12.1f %12.1f\n", depth, d.mb_s,
                d.mean_lat_us, b.mb_s, b.mean_lat_us);
    std::fflush(stdout);
  }
  std::printf("\npeak async bandwidth: direct %.1f MB/s vs buffered %.1f "
              "MB/s (gap %.1f%%) -> direct I/O sacrifices little while "
              "sparing the page cache\n",
              direct_peak, buffered_peak,
              100.0 * (buffered_peak - direct_peak) / direct_peak);
  return 0;
}
