// Checkpoint overhead: epoch time and bytes written for checkpointing off
// vs boundary-only vs periodic intervals, on the paper-default GNNDrive-GPU
// pipeline (docs/recovery.md "Cost model").
//
// The knobs that matter: a checkpoint serializes params + Adam m/v (3x the
// parameter bytes) plus headers, and the write happens on the trainer
// thread — so overhead scales with checkpoints per epoch times state size,
// and shrinks as batches get heavier. fsync dominates the per-write cost on
// real devices; the simulated run reports the protocol's CPU+copy cost.
#include <filesystem>

#include "bench/bench_common.hpp"
#include "ckpt/checkpoint.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

struct Cell {
  double epoch_s = 0.0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
};

Cell run_cell(const Dataset& dataset, bool enabled,
              std::uint64_t interval_batches, bool fsync) {
  Env env = make_env(dataset, kDefaultMemGB, default_ssd(),
                     /*with_telemetry=*/true);
  GnnDriveConfig cfg;
  cfg.common = common_config(ModelKind::kSage);
  const std::string dir = "bench-ckpt-overhead";
  if (enabled) {
    std::filesystem::remove_all(dir);
    cfg.ckpt.enabled = true;
    cfg.ckpt.dir = dir;
    cfg.ckpt.interval_batches = interval_batches;
    cfg.ckpt.fsync = fsync;
  }
  GnnDrive system(env.ctx, cfg);

  system.run_epoch(100);  // warm-up: topology resident, buffer primed
  const int epochs = measure_epochs();
  const auto t0 = Clock::now();
  for (int e = 0; e < epochs; ++e) system.run_epoch(e);
  Cell cell;
  cell.epoch_s = to_seconds(Clock::now() - t0) / epochs;
  if (enabled) {
    auto* reg = env.telemetry->metrics();
    cell.writes = reg->counter("ckpt.writes").value();
    cell.bytes = reg->counter("ckpt.bytes_written").value();
    std::filesystem::remove_all(dir);
  }
  return cell;
}

}  // namespace

int main() {
  print_banner("Checkpoint overhead",
               "epoch time with crash-safe checkpointing off / boundary-only "
               "/ periodic (docs/recovery.md)");

  const Dataset& dataset = get_dataset("papers100m-mini");
  const Cell off = run_cell(dataset, false, 0, true);
  std::printf("%-22s %10s %8s %12s %10s\n", "mode", "epoch_s", "writes",
              "ckpt_MiB", "overhead");
  std::printf("%-22s %10.3f %8s %12s %10s\n", "ckpt=off", off.epoch_s, "-",
              "-", "-");

  struct Mode {
    const char* name;
    std::uint64_t interval;
    bool fsync;
  };
  const Mode modes[] = {
      {"boundary-only", 0, true},
      {"interval=16", 16, true},
      {"interval=4", 4, true},
      {"interval=4,fsync=off", 4, false},
  };
  for (const Mode& m : modes) {
    const Cell cell = run_cell(dataset, true, m.interval, m.fsync);
    std::printf("%-22s %10.3f %8llu %12.2f %9.1f%%\n", m.name, cell.epoch_s,
                static_cast<unsigned long long>(cell.writes),
                cell.bytes / (1024.0 * 1024.0),
                off.epoch_s > 0.0
                    ? (cell.epoch_s / off.epoch_s - 1.0) * 100.0
                    : 0.0);
  }
  std::printf(
      "\ncheckpoint = params + Adam m/v + RNG + cursor, CRC32C-summed,\n"
      "temp->fsync->rename; written on the trainer thread (pipeline stalls\n"
      "for the write). Negative overhead = run-to-run noise.\n");
  return 0;
}
