// Figure 11: CPU utilization, GPU utilization and I/O-wait ratio for
// GNNDrive (GPU- and CPU-based) over three epochs.
//
// Expected shape vs Figure 3: drastically lower I/O-wait ratio — the
// asynchronous two-phase extraction keeps I/O off the critical path and the
// CPU/GPU stay busy.
#include "bench/bench_common.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

constexpr double kModeledCores = 16.0;

void trace_variant(const char* sys_name) {
  const Dataset& dataset = get_dataset("papers100m");
  Env env = make_env(dataset, kDefaultMemGB, default_ssd(),
                     /*with_telemetry=*/true);
  auto system = make_system(sys_name, env, common_config(ModelKind::kSage));
  system->run_epoch(1000);  // warm-up, untraced
  env.telemetry->start();
  EpochStats last;
  for (int e = 0; e < 3; ++e) last = system->run_epoch(e);
  std::printf("--- %s (3 epochs, 100 ms buckets) ---\n", sys_name);
  std::printf("%8s %8s %8s %8s\n", "t(s)", "cpu%", "gpu%", "iowait%");
  const auto buckets = env.telemetry->snapshot();
  const double w = env.telemetry->bucket_seconds();
  const std::size_t stride =
      bench_full_mode() ? 1 : std::max<std::size_t>(1, buckets.size() / 40);
  for (std::size_t i = 0; i < buckets.size(); i += stride) {
    const auto& b = buckets[i];
    std::printf("%8.1f %8.1f %8.1f %8.1f\n", b.t_seconds,
                100.0 * b.cpu_busy / (w * kModeledCores),
                100.0 * b.gpu_busy / w,
                100.0 * b.io_wait / (w * kModeledCores));
  }
  const double cpu = env.telemetry->total_seconds(TraceCat::kCpuBusy);
  const double gpu = env.telemetry->total_seconds(TraceCat::kGpuBusy);
  const double io = env.telemetry->total_seconds(TraceCat::kIoWait);
  std::printf("summary: cpu-busy %.1fs, gpu-busy %.1fs, io-wait %.1fs "
              "(io-wait : cpu-busy = %.1f)\n",
              cpu, gpu, io, io / std::max(cpu, 1e-9));
  std::printf("last-epoch stage latencies / queues / feature buffer:\n%s\n",
              last.obs.format().c_str());
  std::fflush(stdout);
}

}  // namespace

int main() {
  print_banner("Figure 11 / Sect. 5.2 reduced I/O congestion",
               "GNNDrive's utilization trace; compare the io-wait column "
               "against fig03_baseline_utilization.");
  trace_variant("GNNDrive-GPU");
  trace_variant("GNNDrive-CPU");
  return 0;
}
