// Telemetry-endpoint smoke: trains and serves concurrently while scraping
// /metrics, /vars, /attribution and /readyz over real sockets, then writes
// a machine-readable summary to BENCH_obs.json (scrape counts, exposition
// size, the final attribution report, SLO alert states). The CI obs step
// greps the summary and the OBS_SMOKE_DONE sentinel from run_benches.sh.
//
// Usage: obs_endpoint [BENCH_obs.json]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "obs/attribution.hpp"
#include "obs/http.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "serve/engine.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  print_banner("Telemetry endpoint smoke (docs/observability.md)",
               "Scrapes /metrics, /vars, /attribution and /readyz while a "
               "GNNDrive-GPU epoch trains and the serve engine answers "
               "requests; writes BENCH_obs.json.");

  const Dataset& dataset = get_dataset("papers100m");
  Env env = make_env(dataset, kDefaultMemGB, default_ssd(),
                     /*with_telemetry=*/true);
  auto system = make_system("GNNDrive-GPU", env, common_config(ModelKind::kSage));

  // Standalone serving substrate sharing the trainer's telemetry plane.
  FeatureBuffer fb(FeatureBufferConfig{4096, dataset.spec().feature_dim},
                   dataset.spec().num_nodes, env.telemetry.get());
  ModelConfig mc;
  mc.kind = ModelKind::kSage;
  mc.in_dim = dataset.spec().feature_dim;
  mc.hidden_dim = 64;
  mc.num_classes = dataset.spec().num_classes;
  mc.num_layers = 2;
  GnnModel model(mc);
  ServeConfig serve_cfg;
  serve_cfg.sampler.fanouts = {10, 10};
  serve_cfg.workers = 1;
  serve_cfg.max_batch = 8;
  serve_cfg.slo.deadline_ms = 200.0;  // registers the serve p99 SLO rule
  ServeEngine engine(env.ctx, serve_cfg,
                     ServeSubstrate{&fb, &model, nullptr, 0});
  engine.start();

  ObsServer server(env.telemetry->metrics(), env.telemetry->sampler(),
                   env.telemetry->attributor(), env.telemetry->slo());
  if (!server.start()) {
    std::printf("FAILED to bind the telemetry endpoint\n");
    return 1;
  }
  std::printf("endpoint: http://127.0.0.1:%u\n\n", server.port());

  // Train one epoch while a scraper polls every route and a light serve
  // load keeps the inference path busy.
  std::atomic<bool> running{true};
  std::uint64_t metrics_ok = 0, vars_ok = 0, attribution_ok = 0, ready_ok = 0,
                failures = 0;
  std::size_t metrics_bytes = 0;
  std::thread scraper([&] {
    HttpResponse resp;
    while (running.load(std::memory_order_relaxed)) {
      if (obs_http_get("127.0.0.1", server.port(), "/metrics", &resp) &&
          resp.status == 200) {
        ++metrics_ok;
        metrics_bytes = resp.body.size();
      } else {
        ++failures;
      }
      if (obs_http_get("127.0.0.1", server.port(), "/vars", &resp) &&
          resp.status == 200) {
        ++vars_ok;
      } else {
        ++failures;
      }
      if (obs_http_get("127.0.0.1", server.port(), "/attribution", &resp) &&
          resp.status == 200) {
        ++attribution_ok;
      } else {
        ++failures;
      }
      if (obs_http_get("127.0.0.1", server.port(), "/readyz", &resp) &&
          resp.status == 200) {
        ++ready_ok;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  std::thread load([&] {
    NodeId v = 0;
    while (running.load(std::memory_order_relaxed)) {
      std::vector<std::future<InferResult>> futs;
      for (int i = 0; i < 8; ++i) {
        futs.push_back(engine.submit(v++ % dataset.spec().num_nodes));
      }
      for (auto& f : futs) f.get();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  const EpochStats stats = system->run_epoch(0);
  running.store(false, std::memory_order_relaxed);
  scraper.join();
  load.join();
  engine.stop();

  HttpResponse attribution;
  obs_http_get("127.0.0.1", server.port(), "/attribution", &attribution);
  const std::string alerts = env.telemetry->slo()->to_json();
  server.stop();

  std::printf("epoch: %.2fs wall, %llu/%llu batches trained\n",
              stats.epoch_seconds,
              static_cast<unsigned long long>(stats.result.trained_batches),
              static_cast<unsigned long long>(stats.batches));
  std::printf("scrapes: metrics %llu, vars %llu, attribution %llu, "
              "ready %llu, failures %llu\n",
              static_cast<unsigned long long>(metrics_ok),
              static_cast<unsigned long long>(vars_ok),
              static_cast<unsigned long long>(attribution_ok),
              static_cast<unsigned long long>(ready_ok),
              static_cast<unsigned long long>(failures));
  std::printf("attribution: %s\n",
              env.telemetry->attributor()->latest().summary().c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\"epoch_seconds\":%.4f,\"trained_batches\":%llu,"
      "\"scrapes\":{\"metrics\":%llu,\"vars\":%llu,\"attribution\":%llu,"
      "\"readyz_200\":%llu,\"failures\":%llu},"
      "\"metrics_bytes\":%zu,\"attribution\":%s,\"slo_alerts\":%s}\n",
      stats.epoch_seconds,
      static_cast<unsigned long long>(stats.result.trained_batches),
      static_cast<unsigned long long>(metrics_ok),
      static_cast<unsigned long long>(vars_ok),
      static_cast<unsigned long long>(attribution_ok),
      static_cast<unsigned long long>(ready_ok),
      static_cast<unsigned long long>(failures),
      metrics_bytes,
      attribution.status == 200 ? attribution.body.c_str() : "null",
      alerts.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // The smoke fails if any scrape failed or the endpoint saw no traffic.
  if (failures > 0 || metrics_ok == 0 || ready_ok == 0) {
    std::printf("OBS SMOKE FAILED\n");
    return 1;
  }
  return 0;
}
