// GNNDrive-Serve: online inference latency/throughput.
//
// Not a paper figure — this bench drives the serving subsystem built on top
// of the training substrates (src/serve, docs/serving.md). Three sections:
//
//   1. Closed loop, naive vs serve engine. The same client population
//      issues the same number of requests against (a) naive per-request
//      serving — one request per batch, feature rows gathered serially,
//      the way a simple server wraps a trained model; (b) per-request with
//      asynchronous extraction (ablation); (c) the full engine: micro-batch
//      coalescing over asynchronous extraction, one forward pass per merged
//      batch. The engine must deliver >= 2x the naive throughput at
//      equal-or-better p99.
//   2. Open loop, arrival rate x batch window. A paced generator sweeps
//      offered load (relative to the measured naive capacity) against the
//      coalescing window, with the 50 ms SLO deadline enabled: past
//      saturation the engine sheds expired requests instead of melting.
//   3. Serving under injected SSD faults: EIOs and a permanently-bad sector
//      range degrade individual micro-batches (shed/failed accounting)
//      while the feature buffer ends the run with zero leaked references.
//
// Models stay untrained: serving latency is independent of parameter values.
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "serve/engine.hpp"

using namespace gnndrive;
using namespace gnndrive::bench;

namespace {

struct LoadResult {
  double wall_s = 0.0;
  ServeReport rep;
};

ServeConfig serve_config(std::uint32_t max_batch, double max_wait_us,
                         double deadline_ms, std::uint32_t ring_depth = 64) {
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 1024;
  cfg.max_batch = max_batch;
  cfg.max_wait_us = max_wait_us;
  cfg.slo.deadline_ms = deadline_ms;
  cfg.ring_depth = ring_depth;
  return cfg;
}

/// Closed loop: `clients` threads, each submitting back-to-back (the next
/// request leaves only when the previous response arrived).
LoadResult closed_loop(ServeEngine& engine, const Dataset& dataset,
                       std::uint32_t clients, std::uint32_t per_client) {
  engine.start();
  const NodeId n = dataset.spec().num_nodes;
  const TimePoint t0 = Clock::now();
  std::vector<std::thread> pop;
  for (std::uint32_t c = 0; c < clients; ++c) {
    pop.emplace_back([&, c] {
      for (std::uint32_t i = 0; i < per_client; ++i) {
        const NodeId seed = (c * 7919u + i * 104729u) % n;
        engine.submit(seed).get();
      }
    });
  }
  for (auto& t : pop) t.join();
  LoadResult out;
  out.wall_s = to_seconds(Clock::now() - t0);
  engine.stop();
  out.rep = engine.report();
  return out;
}

/// Open loop: one generator submits at a fixed interval regardless of
/// completions — offered load is `rate_rps` whether or not the engine keeps
/// up. Futures are drained afterwards.
LoadResult open_loop(ServeEngine& engine, const Dataset& dataset,
                     double rate_rps, std::uint32_t total) {
  engine.start();
  const NodeId n = dataset.spec().num_nodes;
  const Duration interval =
      std::chrono::duration_cast<Duration>(std::chrono::duration<double>(
          rate_rps > 0.0 ? 1.0 / rate_rps : 0.0));
  std::vector<std::future<InferResult>> futs;
  futs.reserve(total);
  const TimePoint t0 = Clock::now();
  TimePoint next = t0;
  for (std::uint32_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(next);
    futs.push_back(engine.submit((i * 104729u) % n));
    next += interval;
  }
  for (auto& f : futs) f.get();
  LoadResult out;
  out.wall_s = to_seconds(Clock::now() - t0);
  engine.stop();
  out.rep = engine.report();
  return out;
}

std::uint64_t leaked_references(GnnDrive& system, const Dataset& dataset) {
  std::uint64_t leaks = 0;
  for (NodeId v = 0; v < dataset.spec().num_nodes; ++v) {
    leaks += system.feature_buffer().entry(v).ref_count;
  }
  leaks += system.feature_buffer().num_slots() -
           system.feature_buffer().standby_size();
  return leaks;
}

}  // namespace

int main() {
  print_banner("GNNDrive-Serve",
               "Online inference: micro-batch coalescing vs per-request "
               "serving, offered-load sweep, serving under SSD faults.");

  const bool full = bench_full_mode();
  const Dataset& dataset = get_dataset("papers100m");
  const std::uint32_t clients = 16;
  const std::uint32_t per_client = full ? 48 : 16;

  // ---- 1. Closed loop: naive vs coalesced ---------------------------------
  // "Naive per-request" is what a simple inference server does: one request
  // at a time, feature rows gathered serially (ring depth 1 — no read
  // overlap, the serving analogue of the paper's synchronous-I/O baseline,
  // cf. figB1). The ablation row isolates asynchronous extraction from
  // micro-batching.
  struct Variant {
    const char* name;
    ServeConfig cfg;
  };
  const Variant variants[] = {
      {"naive per-request", serve_config(1, 0.0, 0.0, 1)},
      {"async per-request", serve_config(1, 0.0, 0.0)},
      {"coalesced (batch 8)", serve_config(8, 300.0, 0.0)},
  };
  std::printf("closed loop: %u clients x %u requests (GraphSAGE fanouts from "
              "the training config)\n",
              clients, per_client);
  std::printf("%-22s %10s %12s %12s %12s %10s\n", "variant", "req/s",
              "p50(us)", "p99(us)", "coalesce", "fb-hit");
  double naive_rps = 0.0, coalesced_rps = 0.0;
  double naive_p99 = 0.0, coalesced_p99 = 0.0;
  for (std::size_t v = 0; v < 3; ++v) {
    Env env = make_env(dataset);
    GnnDriveConfig cfg;
    cfg.common = common_config(ModelKind::kSage);
    GnnDrive system(env.ctx, cfg);
    ServeEngine engine(env.ctx, variants[v].cfg, system);
    const LoadResult res = closed_loop(engine, dataset, clients, per_client);
    const double rps = static_cast<double>(res.rep.completed) / res.wall_s;
    std::printf("%-22s %10.1f %12.1f %12.1f %11.2fx %9.1f%%\n",
                variants[v].name, rps, res.rep.latency.p50_us,
                res.rep.latency.p99_us, res.rep.coalesce_factor,
                res.rep.fb_hit_rate * 100.0);
    if (v == 0) naive_rps = rps, naive_p99 = res.rep.latency.p99_us;
    if (v == 2) {
      coalesced_rps = rps;
      coalesced_p99 = res.rep.latency.p99_us;
      std::printf("\n%s\n", res.rep.format().c_str());
    }
    std::fflush(stdout);
  }
  std::printf("serve-engine speedup: %.2fx throughput, p99 %.2fx the naive "
              "per-request path (target: >=2x at equal-or-better p99)\n\n",
              coalesced_rps / naive_rps, coalesced_p99 / naive_p99);

  // ---- 2. Open loop: offered load x batch window, 50 ms SLO ---------------
  const std::vector<double> load_factors =
      full ? std::vector<double>{0.25, 0.5, 1.0, 2.0}
           : std::vector<double>{0.5, 2.0};
  const std::vector<double> windows_us =
      full ? std::vector<double>{0.0, 100.0, 300.0, 1000.0}
           : std::vector<double>{0.0, 300.0};
  const std::uint32_t open_total = full ? 512 : 128;
  std::printf("open loop: offered load x coalescing window, deadline 50 ms "
              "(load relative to coalesced capacity %.0f req/s)\n",
              coalesced_rps);
  std::printf("%-8s %10s | %10s %12s %12s %8s %8s\n", "load", "window",
              "goodput/s", "p50(us)", "p99(us)", "shed", "rej");
  for (double lf : load_factors) {
    for (double window : windows_us) {
      Env env = make_env(dataset);
      GnnDriveConfig cfg;
      cfg.common = common_config(ModelKind::kSage);
      GnnDrive system(env.ctx, cfg);
      ServeEngine engine(env.ctx, serve_config(8, window, 50.0), system);
      const LoadResult res =
          open_loop(engine, dataset, lf * coalesced_rps, open_total);
      std::printf("%6.2fx %8.0fus | %10.1f %12.1f %12.1f %8llu %8llu\n", lf,
                  window,
                  static_cast<double>(res.rep.completed) / res.wall_s,
                  res.rep.latency.p50_us, res.rep.latency.p99_us,
                  static_cast<unsigned long long>(res.rep.shed_deadline),
                  static_cast<unsigned long long>(res.rep.rejected));
      std::fflush(stdout);
    }
  }
  std::printf("\n");

  // ---- 3. Serving under injected SSD faults -------------------------------
  std::printf("serving under faults: 2%% EIO + one permanently-bad row "
              "range, deadline 50 ms\n");
  {
    Env env = make_env(dataset);
    const auto& lay = dataset.layout();
    const std::uint64_t bad_row = dataset.spec().num_nodes / 2;
    SsdFaultConfig faults;
    faults.enabled = true;
    faults.eio_probability = 0.02;
    faults.bad_ranges.push_back(
        {lay.features_offset + bad_row * lay.feature_row_bytes,
         lay.features_offset + (bad_row + 8) * lay.feature_row_bytes});
    env.ssd->set_fault_config(faults);

    GnnDriveConfig cfg;
    cfg.common = common_config(ModelKind::kSage);
    GnnDrive system(env.ctx, cfg);
    ServeConfig scfg = serve_config(8, 300.0, 50.0);
    scfg.retry_delay_us = 20.0;
    ServeEngine engine(env.ctx, scfg, system);
    const LoadResult res = closed_loop(engine, dataset, 8, full ? 32 : 12);
    std::printf("%s\n", res.rep.format().c_str());
    std::printf("feature-buffer slot leaks after faulty serving: %llu "
                "(must be 0)\n",
                static_cast<unsigned long long>(
                    leaked_references(system, dataset)));
  }
  return 0;
}
