// Offline layout-compile entry point: builds a dataset, plans the requested
// layout strategy, rewrites the image's feature region into the packed order,
// and (optionally) saves the plan to a file with a reload+validate round-trip
// — the deploy artifact a serving replica or resumed trainer needs to agree
// with its checkpoint's layout fingerprint.
//
// Usage: layout_compile <dataset> <strategy> [plan-file]
//   dataset   papers100m | twitter | friendster | mag240m  ("-mini" ok)
//   strategy  identity | degree | hotness
//   plan-file optional path for the serialized plan (CRC32C-sectioned)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "graph/dataset.hpp"
#include "layout/compiler.hpp"
#include "layout/plan.hpp"
#include "memsim/host_memory.hpp"
#include "memsim/page_cache.hpp"
#include "storage/ssd.hpp"

using namespace gnndrive;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dataset> <strategy> [plan-file]\n"
               "  dataset:  papers100m | twitter | friendster | mag240m\n"
               "  strategy: identity | degree | hotness\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) return usage(argv[0]);
  const std::string dataset_name = argv[1];
  const std::string strategy = argv[2];
  const std::string plan_path = argc == 4 ? argv[3] : "";

  DatasetSpec spec = mini_spec(dataset_name);
  spec.scramble_ids = true;  // realistic id/degree decorrelation
  Dataset dataset = Dataset::build(spec);

  std::shared_ptr<const LayoutPlan> plan;
  if (strategy == "identity") {
    plan = std::make_shared<const LayoutPlan>(plan_identity_layout(dataset));
  } else if (strategy == "degree") {
    plan = std::make_shared<const LayoutPlan>(plan_degree_layout(dataset));
  } else if (strategy == "hotness") {
    // The profiling replay reads topology through a page cache; features
    // are never touched, so a modest budget is plenty.
    HostMemory mem(paper_gb(8.0));
    auto ssd = dataset.make_device(SsdConfig{});
    PageCache cache(mem, *ssd);
    plan = std::make_shared<const LayoutPlan>(
        plan_hotness_layout(dataset, cache, HotnessProfileConfig{}));
  } else {
    return usage(argv[0]);
  }

  const LayoutCompileStats stats = compile_layout(dataset, plan);
  std::printf("compiled %s layout for %s: %llu rows, %llu moved "
              "(%.1f MiB) in %.1f ms; fingerprint %016llx\n",
              strategy.c_str(), spec.name.c_str(),
              static_cast<unsigned long long>(stats.rows),
              static_cast<unsigned long long>(stats.rows_moved),
              static_cast<double>(stats.bytes_moved) / (1 << 20),
              stats.elapsed_ms,
              static_cast<unsigned long long>(
                  dataset.layout().layout_fingerprint()));

  if (!plan_path.empty()) {
    if (!plan->save(plan_path)) {
      std::fprintf(stderr, "FAILED to write plan to %s\n", plan_path.c_str());
      return 1;
    }
    LayoutPlan reloaded;
    if (!LayoutPlan::load(plan_path, &reloaded) || !reloaded.validate() ||
        reloaded.fingerprint() != plan->fingerprint()) {
      std::fprintf(stderr, "plan round-trip FAILED for %s\n",
                   plan_path.c_str());
      return 1;
    }
    std::printf("plan saved to %s (%zu nodes, round-trip verified)\n",
                plan_path.c_str(), static_cast<std::size_t>(reloaded.num_nodes));
  }
  return 0;
}
