#include "memsim/host_memory.hpp"

#include "util/logging.hpp"

namespace gnndrive {

void HostMemory::pin(std::uint64_t bytes, const char* what) {
  std::lock_guard lock(mu_);
  if (pinned_ + bytes > budget_) {
    throw SimOutOfMemory(std::string("host OOM pinning ") +
                         std::to_string(bytes) + " bytes for " + what +
                         " (pinned " + std::to_string(pinned_) + " of " +
                         std::to_string(budget_) + ")");
  }
  pinned_ += bytes;
  if (pinned_ > peak_) peak_ = pinned_;
  GD_LOG_DEBUG("pin %llu bytes for %s (pinned=%llu budget=%llu)",
               static_cast<unsigned long long>(bytes), what,
               static_cast<unsigned long long>(pinned_),
               static_cast<unsigned long long>(budget_));
}

void HostMemory::unpin(std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  GD_CHECK_MSG(bytes <= pinned_, "unpin exceeds pinned bytes");
  pinned_ -= bytes;
}

}  // namespace gnndrive
