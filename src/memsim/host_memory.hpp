// Simulated host-memory budget.
//
// The paper evaluates machines with 8-128 GB of RAM by physically limiting
// the host. Here the budget is an accounting object: components *pin* bytes
// (caches, staging buffers, partition buffers, ...) and over-commit raises
// SimOutOfMemory — reproducing the OOM failures of Ginex (Fig. 9),
// PyG+ (Fig. 10) and MariusGNN (Table 2). Whatever is not pinned is the
// capacity available to the simulated OS page cache, which is how feature
// traffic contends with topology for memory (Observation 1).
#pragma once

#include <atomic>
#include <mutex>
#include <string>

#include "util/common.hpp"

namespace gnndrive {

class HostMemory : NonCopyable {
 public:
  explicit HostMemory(std::uint64_t budget_bytes) : budget_(budget_bytes) {}

  /// Reserves `bytes`; throws SimOutOfMemory when the budget is exceeded.
  void pin(std::uint64_t bytes, const char* what);
  void unpin(std::uint64_t bytes);

  std::uint64_t budget() const { return budget_; }
  std::uint64_t pinned() const {
    std::lock_guard lock(mu_);
    return pinned_;
  }
  /// Bytes left over for the page cache.
  std::uint64_t available() const {
    std::lock_guard lock(mu_);
    return budget_ > pinned_ ? budget_ - pinned_ : 0;
  }
  std::uint64_t peak_pinned() const {
    std::lock_guard lock(mu_);
    return peak_;
  }

 private:
  const std::uint64_t budget_;
  mutable std::mutex mu_;
  std::uint64_t pinned_ = 0;
  std::uint64_t peak_ = 0;
};

/// RAII pin: releases on destruction. Movable so buffers can own it.
class PinnedBytes : NonCopyable {
 public:
  PinnedBytes() = default;
  PinnedBytes(HostMemory& mem, std::uint64_t bytes, const char* what)
      : mem_(&mem), bytes_(bytes) {
    mem.pin(bytes, what);
  }
  PinnedBytes(PinnedBytes&& other) noexcept
      : mem_(other.mem_), bytes_(other.bytes_) {
    other.mem_ = nullptr;
    other.bytes_ = 0;
  }
  PinnedBytes& operator=(PinnedBytes&& other) noexcept {
    release();
    mem_ = other.mem_;
    bytes_ = other.bytes_;
    other.mem_ = nullptr;
    other.bytes_ = 0;
    return *this;
  }
  ~PinnedBytes() { release(); }

  std::uint64_t bytes() const { return bytes_; }

 private:
  void release() {
    if (mem_ != nullptr) mem_->unpin(bytes_);
    mem_ = nullptr;
    bytes_ = 0;
  }
  HostMemory* mem_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace gnndrive
