#include "memsim/page_cache.hpp"

#include "obs/metrics.hpp"

#include <list>
#include <stdexcept>
#include <vector>

namespace gnndrive {

PageCache::PageCache(HostMemory& mem, SsdDevice& ssd, Telemetry* telemetry)
    : mem_(mem), ssd_(ssd), telemetry_(telemetry) {
  set_telemetry(telemetry);
}

void PageCache::set_telemetry(Telemetry* t) {
  telemetry_ = t;
  if (t == nullptr) {
    m_hits_ = m_misses_ = m_evictions_ = m_fault_wait_us_ = nullptr;
    return;
  }
  MetricsRegistry& reg = *t->metrics();
  m_hits_ = &reg.counter("pagecache.hits");
  m_misses_ = &reg.counter("pagecache.misses");
  m_evictions_ = &reg.counter("pagecache.evictions");
  m_fault_wait_us_ = &reg.counter("pagecache.fault_wait_us");
}

std::uint64_t PageCache::capacity_pages() const {
  return mem_.available() / kPageSize;
}

std::uint64_t PageCache::resident_pages() const {
  std::lock_guard lock(mu_);
  return resident_.size();
}

bool PageCache::contains_page(std::uint64_t page_no) const {
  std::lock_guard lock(mu_);
  return resident_.count(page_no) != 0;
}

PageCacheStats PageCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void PageCache::reset_stats() {
  std::lock_guard lock(mu_);
  stats_ = PageCacheStats{};
}

void PageCache::invalidate_all() {
  std::unique_lock lock(mu_);
  load_done_.wait(lock, [&] { return loading_.empty(); });
  resident_.clear();
  lru_.clear();
}

void PageCache::evict_to_capacity_locked() {
  const std::uint64_t cap = capacity_pages();
  while (resident_.size() > cap && !lru_.empty()) {
    const std::uint64_t victim = lru_.front();
    lru_.pop_front();
    resident_.erase(victim);
    ++stats_.evictions;
    if (m_evictions_ != nullptr) m_evictions_->add();
  }
}

bool PageCache::fault_page(std::unique_lock<std::mutex>& lock,
                           std::uint64_t page_no) {
  auto it = resident_.find(page_no);
  if (it != resident_.end()) {
    // Hit: move to MRU position.
    lru_.splice(lru_.end(), lru_, it->second);
    ++stats_.hits;
    if (m_hits_ != nullptr) m_hits_->add();
    return true;
  }
  if (loading_.count(page_no) != 0) {
    // Another thread is faulting the same page: wait, like a real page fault
    // on a locked page. Attributed as a miss for this caller.
    ++stats_.misses;
    if (m_misses_ != nullptr) m_misses_->add();
    ScopedTrace trace(telemetry_, TraceCat::kIoWait);
    const TimePoint wait_t0 = Clock::now();
    load_done_.wait(lock, [&] { return loading_.count(page_no) == 0; });
    if (m_fault_wait_us_ != nullptr) {
      m_fault_wait_us_->add(static_cast<std::uint64_t>(
          to_seconds(Clock::now() - wait_t0) * 1e6));
    }
    auto again = resident_.find(page_no);
    if (again != resident_.end()) {
      lru_.splice(lru_.end(), lru_, again->second);
    }
    return false;
  }
  ++stats_.misses;
  if (m_misses_ != nullptr) m_misses_->add();
  loading_.insert(page_no);
  lock.unlock();
  const TimePoint fault_t0 = Clock::now();
  {
    // Synchronous modeled device read. The page content itself stays in the
    // backend (shared RAM image); the device read charges the latency and
    // bandwidth. A page-sized scratch absorbs the DMA.
    ScopedTrace trace(telemetry_, TraceCat::kIoWait);
    alignas(64) std::uint8_t scratch[kPageSize];
    const std::uint64_t dev_size = ssd_.backend().size();
    const std::uint64_t off = page_no * kPageSize;
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kPageSize, dev_size - off));
    // Transient device errors (fault injection, real errno) retry a few
    // times like the kernel's readpage path; a persistent failure surfaces
    // as an exception the pipeline's error capture turns into a clean stop.
    std::int32_t res = 0;
    for (int attempt = 0; attempt < 4; ++attempt) {
      res = ssd_.read_sync(off, len, scratch);
      if (res >= 0) break;
      if (telemetry_ != nullptr) {
        telemetry_->count(FaultCounter::kIoErrors);
        if (attempt < 3) telemetry_->count(FaultCounter::kIoRetries);
      }
    }
    if (res < 0) {
      lock.lock();
      loading_.erase(page_no);
      load_done_.notify_all();
      throw std::runtime_error("PageCache: device read failed after retries");
    }
  }
  if (m_fault_wait_us_ != nullptr) {
    m_fault_wait_us_->add(static_cast<std::uint64_t>(
        to_seconds(Clock::now() - fault_t0) * 1e6));
  }
  lock.lock();
  loading_.erase(page_no);
  resident_[page_no] = lru_.insert(lru_.end(), page_no);
  evict_to_capacity_locked();
  load_done_.notify_all();
  return false;
}

void PageCache::read(std::uint64_t offset, std::uint64_t len, void* dst) {
  GD_CHECK(offset + len <= ssd_.backend().size());
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  {
    std::unique_lock lock(mu_);
    for (std::uint64_t p = first; p <= last; ++p) fault_page(lock, p);
  }
  // Data comes straight from the backing image (equivalent to reading the
  // now-resident cache pages).
  ssd_.backend().read(offset, static_cast<std::uint32_t>(len), dst);
}

bool PageCache::try_read_resident(std::uint64_t offset, std::uint64_t len,
                                  void* dst) {
  GD_CHECK(offset + len <= ssd_.backend().size());
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  {
    std::lock_guard lock(mu_);
    for (std::uint64_t p = first; p <= last; ++p) {
      if (resident_.find(p) == resident_.end()) {
        ++stats_.misses;
        if (m_misses_ != nullptr) m_misses_->add();
        return false;
      }
    }
    for (std::uint64_t p = first; p <= last; ++p) {
      auto it = resident_.find(p);
      lru_.splice(lru_.end(), lru_, it->second);
      ++stats_.hits;
      if (m_hits_ != nullptr) m_hits_->add();
    }
  }
  ssd_.backend().read(offset, static_cast<std::uint32_t>(len), dst);
  return true;
}

void PageCache::note_resident(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  std::lock_guard lock(mu_);
  for (std::uint64_t p = first; p <= last; ++p) {
    auto it = resident_.find(p);
    if (it != resident_.end()) {
      lru_.splice(lru_.end(), lru_, it->second);
    } else {
      resident_[p] = lru_.insert(lru_.end(), p);
    }
  }
  evict_to_capacity_locked();
}

void PageCache::prefetch(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  std::unique_lock lock(mu_);
  for (std::uint64_t p = first; p <= last; ++p) fault_page(lock, p);
}

}  // namespace gnndrive
