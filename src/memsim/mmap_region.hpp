// Memory-mapped file emulation.
//
// PyG+ (and GNNDrive's sampler) access on-disk arrays as if they were
// memory-mapped: every byte access goes through the simulated page cache,
// so cold or evicted pages incur a modeled synchronous device read — the
// page-fault behaviour the paper's Observation 1 hinges on.
#pragma once

#include "memsim/page_cache.hpp"
#include "util/common.hpp"

namespace gnndrive {

class MmapRegion {
 public:
  /// Maps `[base_offset, base_offset + length)` of the device.
  MmapRegion(PageCache& cache, std::uint64_t base_offset, std::uint64_t length)
      : cache_(&cache), base_(base_offset), length_(length) {}

  std::uint64_t length() const { return length_; }

  /// Reads raw bytes from the region.
  void read_bytes(std::uint64_t offset, std::uint64_t len, void* dst) const {
    GD_CHECK(offset + len <= length_);
    cache_->read(base_ + offset, len, dst);
  }

  /// Reads `count` elements of type T starting at element index `first`.
  template <typename T>
  void read_array(std::uint64_t first, std::uint64_t count, T* out) const {
    read_bytes(first * sizeof(T), count * sizeof(T), out);
  }

  /// Reads a single element of type T at element index `idx`.
  template <typename T>
  T read_at(std::uint64_t idx) const {
    T value;
    read_array<T>(idx, 1, &value);
    return value;
  }

  /// Touches the whole region sequentially (warm-up, like `cat file`).
  void warm() const { cache_->prefetch(base_, length_); }

 private:
  PageCache* cache_;
  std::uint64_t base_;
  std::uint64_t length_;
};

}  // namespace gnndrive
