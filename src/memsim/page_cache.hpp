// Simulated OS page cache.
//
// Buffered (non-direct) access to the simulated SSD goes through this cache:
// 4 KiB pages, LRU replacement, capacity = host budget minus pinned bytes.
// A miss performs a synchronous modeled device read (the faulting thread
// really blocks, and the wait is attributed to TraceCat::kIoWait); a hit is
// served from the backing image directly.
//
// This cache is the arena where the paper's memory contention plays out:
// PyG+ memory-maps both topology and features through it, so feature traffic
// evicts topology pages and sampling slows down; GNNDrive reads features with
// direct I/O and leaves the cache to topology alone.
#pragma once

#include <condition_variable>
#include <list>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "memsim/host_memory.hpp"
#include "storage/ssd.hpp"
#include "util/common.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

struct PageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  double hit_ratio() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class PageCache : NonCopyable {
 public:
  /// The cache sizes itself dynamically from `mem.available()`; it pins
  /// nothing itself. `telemetry` may be null.
  PageCache(HostMemory& mem, SsdDevice& ssd, Telemetry* telemetry = nullptr);

  /// Copies `len` bytes at device offset `offset` into `dst`, faulting the
  /// covering pages through the modeled device as needed.
  void read(std::uint64_t offset, std::uint64_t len, void* dst);

  /// Ensures the covering pages are resident without copying data out
  /// (read-ahead / warm-up helper).
  void prefetch(std::uint64_t offset, std::uint64_t len);

  /// If every covering page is resident, copies the bytes out (counting
  /// hits, touching LRU) and returns true; otherwise counts misses and
  /// returns false with `dst` untouched. Used by asynchronous buffered I/O.
  bool try_read_resident(std::uint64_t offset, std::uint64_t len, void* dst);

  /// Marks the covering pages resident without charging device time (the
  /// caller already performed the device read, e.g. an async buffered fault).
  void note_resident(std::uint64_t offset, std::uint64_t len);

  /// Drops every cached page (used between experiment runs).
  void invalidate_all();

  bool contains_page(std::uint64_t page_no) const;
  std::uint64_t resident_pages() const;
  std::uint64_t capacity_pages() const;
  PageCacheStats stats() const;
  void reset_stats();

  /// Also (re)resolves the pagecache.* registry counters the bottleneck
  /// attributor reads for its thrash diagnosis.
  void set_telemetry(Telemetry* t);

 private:
  /// Makes `page_no` resident; returns true on hit. Called with mu_ held;
  /// may release and re-acquire it around the device read.
  bool fault_page(std::unique_lock<std::mutex>& lock, std::uint64_t page_no);
  void evict_to_capacity_locked();

  HostMemory& mem_;
  SsdDevice& ssd_;
  Telemetry* telemetry_;
  /// Registry mirrors (null without telemetry); bumped under mu_ at the
  /// same sites as stats_, so windowed deltas match stats() exactly.
  Counter* m_hits_ = nullptr;       ///< pagecache.hits
  Counter* m_misses_ = nullptr;     ///< pagecache.misses
  Counter* m_evictions_ = nullptr;  ///< pagecache.evictions
  /// pagecache.fault_wait_us: wall time callers spent blocked in
  /// fault_page (device reads + waits on another thread's load). The
  /// attributor reads its windowed delta as the cache's stall cost.
  Counter* m_fault_wait_us_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable load_done_;
  // LRU: map page -> iterator into list (list front == LRU).
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      resident_;
  std::unordered_set<std::uint64_t> loading_;
  PageCacheStats stats_;
};

}  // namespace gnndrive
