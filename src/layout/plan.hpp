// Feature-layout plans: a bijective node -> physical-row permutation for the
// on-disk feature region, produced offline by the layout compiler
// (src/layout/compiler.*) and consulted online by
// OnDiskLayout::feature_offset_of so every consumer — train extractors,
// serve workers, cache prefetch, baselines — transparently reads the packed
// store.
//
// Why permute at all: the SSD model charges a fixed base latency per request,
// so extraction cost tracks the *number* of reads, not bytes. The PR-5
// coalescer can only merge rows adjacent in physical order; the shipped
// node-id order scatters a mini-batch's rows across the whole feature region.
// Packing hot / co-accessed rows into a dense head turns each sorted to-load
// set into a few long runs the coalescer folds into single requests
// (DiskGNN's offline reordering, Ginex's superbatch preprocessing).
//
// Serialization follows the src/ckpt CRC32C-sectioned idiom: a fixed header
// with its own CRC, then per-section headers carrying payload length + CRC,
// unknown sections skipped forward-compatibly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace gnndrive {

enum class LayoutStrategy : std::uint32_t {
  kIdentity = 0,  ///< Shipped node-id order; the A/B baseline.
  kDegree = 1,    ///< In-degree descending (ties: node id ascending).
  kHotness = 2,   ///< presample_hot_set access-frequency descending.
};

const char* layout_strategy_name(LayoutStrategy s);
/// Parses "identity" / "degree" / "hotness"; returns false on anything else.
bool parse_layout_strategy(const std::string& name, LayoutStrategy* out);

/// A compiled layout: `perm[node]` is the physical feature row holding that
/// node's features; `inv[row]` is the node stored at that row. Both are full
/// bijections over [0, num_nodes) — identity-strategy plans keep them
/// populated too, so validate()/round-trip tests treat all strategies alike,
/// but fingerprint() collapses identity to 0 (no plan installed == explicit
/// identity plan, which is what checkpoint compatibility wants).
struct LayoutPlan {
  LayoutStrategy strategy = LayoutStrategy::kIdentity;
  NodeId num_nodes = 0;
  std::uint64_t dataset_seed = 0;  ///< DatasetSpec::seed the plan was built for.
  std::uint64_t profile_seed = 0;  ///< Hotness profiling seed (0 otherwise).
  std::vector<NodeId> perm;  ///< node -> physical row
  std::vector<NodeId> inv;   ///< physical row -> node

  bool is_identity() const { return strategy == LayoutStrategy::kIdentity; }

  /// True iff perm/inv are consistent full bijections over [0, num_nodes).
  bool validate() const;

  /// Stable content hash stored in checkpoints (TrainCursor) so resume can
  /// refuse a mismatched layout. Identity-strategy plans hash to 0 by
  /// definition: a dataset with no plan installed and one compiled to an
  /// explicit identity plan hold byte-identical images.
  std::uint64_t fingerprint() const;

  /// CRC32C-sectioned binary encoding (magic "GNNDLAY1"); deserialize
  /// rebuilds `inv` and rejects corrupt or non-bijective payloads.
  std::vector<std::uint8_t> serialize() const;
  static bool deserialize(const std::uint8_t* data, std::size_t len,
                          LayoutPlan* out);

  /// File round-trip for the tools/ entry point. save() returns false on I/O
  /// failure; load() additionally fails on any deserialize() rejection.
  bool save(const std::string& path) const;
  static bool load(const std::string& path, LayoutPlan* out);
};

/// Builds the trivial plan (perm[v] == v). Used as the A/B baseline and to
/// revert a packed image back to shipped order.
LayoutPlan make_identity_plan(NodeId num_nodes, std::uint64_t dataset_seed);

/// Builds `inv` from `perm` (or vice versa). Dies on non-bijective input.
std::vector<NodeId> invert_permutation(const std::vector<NodeId>& perm);

}  // namespace gnndrive
