#include "layout/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <vector>

#include "cache/policy.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace gnndrive {

namespace {

/// Rows gathered per staging chunk in pass A. 4096 rows x 512 B (papers
/// dim-128 rows) is a 2 MiB host buffer — big enough to amortize, small
/// enough for toy tests.
constexpr std::uint64_t kChunkRows = 4096;
/// Sequential copy-back granularity in pass B.
constexpr std::uint64_t kCopyChunkBytes = 4ull << 20;

}  // namespace

LayoutPlan plan_identity_layout(const Dataset& dataset) {
  return make_identity_plan(dataset.spec().num_nodes, dataset.spec().seed);
}

LayoutPlan plan_degree_layout(const Dataset& dataset) {
  const NodeId n = dataset.spec().num_nodes;
  LayoutPlan plan;
  plan.strategy = LayoutStrategy::kDegree;
  plan.num_nodes = n;
  plan.dataset_seed = dataset.spec().seed;
  plan.inv.resize(n);
  std::iota(plan.inv.begin(), plan.inv.end(), NodeId{0});
  // Ties broken by ascending id so the ordering — and the plan fingerprint —
  // is fully deterministic.
  std::sort(plan.inv.begin(), plan.inv.end(), [&](NodeId a, NodeId b) {
    const std::uint64_t da = dataset.in_degree(a);
    const std::uint64_t db = dataset.in_degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  plan.perm = invert_permutation(plan.inv);
  GD_CHECK(plan.validate());
  return plan;
}

LayoutPlan plan_hotness_layout(const Dataset& dataset, PageCache& page_cache,
                               const HotnessProfileConfig& profile) {
  const NodeId n = dataset.spec().num_nodes;
  // max_hot = num_nodes turns the hot-set selection into a full frequency
  // ordering of every node the profile touched (freq desc, ties id asc).
  PresampleResult res = presample_hot_set(
      dataset, page_cache, profile.sampler, profile.batch_seeds,
      profile.profile_seed, profile.presample_batches, n);

  LayoutPlan plan;
  plan.strategy = LayoutStrategy::kHotness;
  plan.num_nodes = n;
  plan.dataset_seed = dataset.spec().seed;
  plan.profile_seed = profile.profile_seed;
  plan.inv = std::move(res.hot_nodes);
  const std::size_t accessed_count = plan.inv.size();
  plan.inv.reserve(n);
  // Never-accessed nodes fill the cold tail in ascending id order: they
  // contribute no reads, so any deterministic order works, and id order
  // keeps the tail locality of the shipped layout.
  std::vector<bool> accessed(n, false);
  for (NodeId v : plan.inv) accessed[v] = true;
  for (NodeId v = 0; v < n; ++v) {
    if (!accessed[v]) plan.inv.push_back(v);
  }
  plan.perm = invert_permutation(plan.inv);
  GD_CHECK(plan.validate());
  GD_LOG_INFO(
      "layout: hotness profile over %u batches touched %zu/%u nodes",
      res.batches_profiled, accessed_count, n);
  return plan;
}

LayoutCompileStats compile_layout(Dataset& dataset,
                                  std::shared_ptr<const LayoutPlan> plan,
                                  Telemetry* telemetry) {
  const DatasetSpec& spec = dataset.spec();
  const OnDiskLayout& lay = dataset.layout();
  const std::uint64_t row_bytes = lay.feature_row_bytes;
  const NodeId n = spec.num_nodes;

  if (plan != nullptr) {
    GD_CHECK_MSG(plan->num_nodes == n,
                 "compile_layout: plan built for a different node count");
    GD_CHECK_MSG(plan->validate(), "compile_layout: invalid plan");
  }

  LayoutCompileStats stats;
  stats.rows = n;

  const std::uint64_t target_fp =
      plan != nullptr ? plan->fingerprint() : 0;
  if (target_fp == lay.layout_fingerprint()) {
    // Already in the requested physical order (content hash matches);
    // still (re)install so plan metadata like profile_seed is current.
    dataset.set_layout_plan(std::move(plan));
    return stats;
  }

  const auto t0 = Clock::now();
  MemBackend& img = *dataset.image();
  GD_CHECK_MSG(lay.scratch_bytes >= lay.features_bytes,
               "scratch region too small to stage the feature region");

  // The rewrite composes with the currently-installed plan: dest physical
  // row r must hold node inv_new[r], whose bytes currently live at physical
  // row old_perm[node]. Doing it through old_perm (not assuming identity)
  // is what makes recompiling degree -> hotness -> identity round-trip.
  const NodeId* old_perm = lay.row_perm;  // null == identity
  const bool new_identity = plan == nullptr || plan->is_identity();

  // Pass A: permuted gather into the scratch region, chunked.
  std::vector<std::uint8_t> buf(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunkRows, n) *
                               row_bytes));
  std::uint64_t next_progress = n / 10 + 1;
  for (std::uint64_t r0 = 0; r0 < n; r0 += kChunkRows) {
    const std::uint64_t r1 = std::min<std::uint64_t>(r0 + kChunkRows, n);
    for (std::uint64_t r = r0; r < r1; ++r) {
      const NodeId node =
          new_identity ? static_cast<NodeId>(r) : plan->inv[r];
      const std::uint64_t src_row =
          old_perm != nullptr ? old_perm[node] : node;
      if (src_row != r) {
        ++stats.rows_moved;
        stats.bytes_moved += row_bytes;
      }
      GD_CHECK(img.read(lay.feature_offset_of_row(src_row),
                        static_cast<std::uint32_t>(row_bytes),
                        buf.data() + (r - r0) * row_bytes) == 0);
    }
    GD_CHECK(img.write(lay.scratch_offset + r0 * row_bytes,
                       static_cast<std::uint32_t>((r1 - r0) * row_bytes),
                       buf.data()) == 0);
    if (r1 >= next_progress) {
      GD_LOG_INFO("layout: compile %s gather %3.0f%% (%llu/%u rows)",
                  plan != nullptr ? layout_strategy_name(plan->strategy)
                                  : "identity",
                  100.0 * static_cast<double>(r1) / static_cast<double>(n),
                  static_cast<unsigned long long>(r1), n);
      next_progress += n / 10 + 1;
    }
  }

  // Pass B: one sequential sweep copying scratch back over the feature
  // region.
  buf.resize(static_cast<std::size_t>(
      std::min<std::uint64_t>(kCopyChunkBytes, lay.features_bytes)));
  for (std::uint64_t off = 0; off < lay.features_bytes;
       off += kCopyChunkBytes) {
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kCopyChunkBytes, lay.features_bytes - off));
    GD_CHECK(img.read(lay.scratch_offset + off, len, buf.data()) == 0);
    GD_CHECK(img.write(lay.features_offset + off, len, buf.data()) == 0);
  }

  stats.elapsed_ms = to_ms(Clock::now() - t0);
  const LayoutStrategy strategy =
      plan != nullptr ? plan->strategy : LayoutStrategy::kIdentity;
  dataset.set_layout_plan(std::move(plan));

  if (telemetry != nullptr && telemetry->metrics() != nullptr) {
    MetricsRegistry& reg = *telemetry->metrics();
    reg.counter("layout.compile.rows").add(stats.rows);
    reg.counter("layout.compile.rows_moved").add(stats.rows_moved);
    reg.counter("layout.compile.bytes_moved").add(stats.bytes_moved);
    reg.histogram("layout.compile.us").add_us(stats.elapsed_ms * 1000.0);
    reg.gauge("layout.strategy").set(static_cast<std::int64_t>(strategy));
    reg.gauge("layout.fingerprint")
        .set(static_cast<std::int64_t>(dataset.layout().layout_fingerprint()));
  }
  GD_LOG_INFO(
      "layout: compiled %s in %.1f ms — %llu/%llu rows moved (%.1f MiB)",
      layout_strategy_name(strategy), stats.elapsed_ms,
      static_cast<unsigned long long>(stats.rows_moved),
      static_cast<unsigned long long>(stats.rows),
      static_cast<double>(stats.bytes_moved) / (1 << 20));
  return stats;
}

}  // namespace gnndrive
