// Offline feature-layout compiler: builds a LayoutPlan with a pluggable
// strategy, physically rewrites the SSD image's feature region into the
// permuted order, and installs the plan as the dataset's indirection. Runs
// before training (DiskGNN / Ginex-superbatch shape): the online engine never
// pays for the reorder, it just reads a store whose hot rows are dense.
//
// Strategies:
//   identity — shipped node-id order; A/B baseline and "uncompile" target.
//   degree   — in-degree descending. Free (topology is host-resident) but
//              only as good as degree predicts access frequency.
//   hotness  — replays the sampler via presample_hot_set (PR-7) with
//              max_hot = num_nodes, i.e. a full frequency ordering of every
//              node the profile touched; never-accessed nodes keep relative
//              id order in the cold tail. Costs a profiling pass, but packs
//              the *actual* epoch working set into one dense head.
//
// The rewrite composes with whatever plan is currently installed, so
// compiling degree -> hotness -> identity round-trips the image bit-exactly.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/dataset.hpp"
#include "layout/plan.hpp"
#include "sampling/sampler.hpp"

namespace gnndrive {

class PageCache;
class Telemetry;

/// Profiling knobs for the hotness strategy (mirrors CachePolicyConfig's
/// presample defaults, but with a wider default window: the plan is built
/// once offline, so spending more profiled batches is cheap and sharpens
/// the frequency ranking the permutation is sorted by).
struct HotnessProfileConfig {
  SamplerConfig sampler;
  std::uint32_t batch_seeds = 4;
  std::uint64_t profile_seed = 0x1a70e5ull;
  std::uint32_t presample_batches = 256;
};

/// Strategy builders. All return fully validated plans.
LayoutPlan plan_identity_layout(const Dataset& dataset);
LayoutPlan plan_degree_layout(const Dataset& dataset);
LayoutPlan plan_hotness_layout(const Dataset& dataset, PageCache& page_cache,
                               const HotnessProfileConfig& profile);

struct LayoutCompileStats {
  std::uint64_t rows = 0;        ///< feature rows in the region
  std::uint64_t rows_moved = 0;  ///< rows whose physical position changed
  std::uint64_t bytes_moved = 0;
  double elapsed_ms = 0.0;
};

/// Rewrites the image's feature region into `plan` order (two passes through
/// the scratch region: permuted gather into scratch, then one sequential
/// copy back) and installs the plan on `dataset`. Composes with the
/// currently-installed plan; a no-op when the target fingerprint already
/// matches. Null plan means identity. Emits `layout.*` metrics when
/// `telemetry` is non-null and logs progress every ~10%.
LayoutCompileStats compile_layout(Dataset& dataset,
                                  std::shared_ptr<const LayoutPlan> plan,
                                  Telemetry* telemetry = nullptr);

}  // namespace gnndrive
