#include "layout/plan.hpp"

#include <cstdio>
#include <cstring>
#include <numeric>

#include "util/crc32c.hpp"

namespace gnndrive {

namespace {

// On-disk framing, mirroring src/ckpt/checkpoint.cpp: fixed header guarded by
// its own CRC, then (section header, payload) pairs each guarded by a payload
// CRC. Readers skip unknown section kinds so old binaries tolerate new
// sections.
constexpr char kMagic[8] = {'G', 'N', 'N', 'D', 'L', 'A', 'Y', '1'};
constexpr std::uint32_t kVersion = 1;

constexpr std::uint32_t kSecMeta = 1;  ///< strategy/num_nodes/seeds
constexpr std::uint32_t kSecPerm = 2;  ///< node -> row permutation array

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t section_count;
  std::uint64_t reserved;
  std::uint32_t header_crc;  ///< CRC32C over bytes [0, offsetof(header_crc)).
};

struct SectionHeader {
  std::uint32_t kind;
  std::uint32_t reserved;
  std::uint64_t payload_bytes;
  std::uint32_t payload_crc;
};

struct MetaPayload {
  std::uint32_t strategy;
  std::uint32_t num_nodes;
  std::uint64_t dataset_seed;
  std::uint64_t profile_seed;
};

std::uint32_t header_crc_of(const FileHeader& fh) {
  return crc32c(&fh, offsetof(FileHeader, header_crc));
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

void append_section(std::vector<std::uint8_t>& out, std::uint32_t kind,
                    const void* payload, std::uint64_t payload_bytes) {
  SectionHeader sh{};
  sh.kind = kind;
  sh.payload_bytes = payload_bytes;
  sh.payload_crc = crc32c(payload, payload_bytes);
  append_pod(out, sh);
  const auto* p = static_cast<const std::uint8_t*>(payload);
  out.insert(out.end(), p, p + payload_bytes);
}

/// Bounds-checked cursor over the serialized buffer; every failed read
/// latches `ok = false` and subsequent reads no-op.
struct ByteReader {
  const std::uint8_t* p;
  std::size_t remaining;
  bool ok = true;

  template <typename T>
  bool read(T* out) {
    if (!ok || remaining < sizeof(T)) return ok = false;
    std::memcpy(out, p, sizeof(T));
    p += sizeof(T);
    remaining -= sizeof(T);
    return true;
  }
  bool read_into(void* out, std::size_t n) {
    if (!ok || remaining < n) return ok = false;
    std::memcpy(out, p, n);
    p += n;
    remaining -= n;
    return true;
  }
  bool skip(std::size_t n) {
    if (!ok || remaining < n) return ok = false;
    p += n;
    remaining -= n;
    return true;
  }
};

}  // namespace

const char* layout_strategy_name(LayoutStrategy s) {
  switch (s) {
    case LayoutStrategy::kIdentity:
      return "identity";
    case LayoutStrategy::kDegree:
      return "degree";
    case LayoutStrategy::kHotness:
      return "hotness";
  }
  return "unknown";
}

bool parse_layout_strategy(const std::string& name, LayoutStrategy* out) {
  if (name == "identity") {
    *out = LayoutStrategy::kIdentity;
  } else if (name == "degree") {
    *out = LayoutStrategy::kDegree;
  } else if (name == "hotness") {
    *out = LayoutStrategy::kHotness;
  } else {
    return false;
  }
  return true;
}

bool LayoutPlan::validate() const {
  if (perm.size() != num_nodes || inv.size() != num_nodes) return false;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const NodeId row = perm[v];
    if (row >= num_nodes) return false;
    if (inv[row] != v) return false;  // with sizes equal, implies bijection
  }
  return true;
}

std::uint64_t LayoutPlan::fingerprint() const {
  if (is_identity()) return 0;
  MetaPayload meta{};
  meta.strategy = static_cast<std::uint32_t>(strategy);
  meta.num_nodes = num_nodes;
  meta.dataset_seed = dataset_seed;
  meta.profile_seed = profile_seed;
  const std::uint64_t hi = crc32c(&meta, sizeof(meta));
  const std::uint64_t lo =
      crc32c(perm.data(), perm.size() * sizeof(NodeId));
  std::uint64_t fp = (hi << 32) | lo;
  if (fp == 0) fp = 1;  // 0 is reserved for "identity / no plan"
  return fp;
}

std::vector<std::uint8_t> LayoutPlan::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(sizeof(FileHeader) + 2 * sizeof(SectionHeader) +
              sizeof(MetaPayload) + perm.size() * sizeof(NodeId));

  FileHeader fh{};
  std::memcpy(fh.magic, kMagic, sizeof(kMagic));
  fh.version = kVersion;
  fh.section_count = 2;
  fh.header_crc = header_crc_of(fh);
  append_pod(out, fh);

  MetaPayload meta{};
  meta.strategy = static_cast<std::uint32_t>(strategy);
  meta.num_nodes = num_nodes;
  meta.dataset_seed = dataset_seed;
  meta.profile_seed = profile_seed;
  append_section(out, kSecMeta, &meta, sizeof(meta));
  append_section(out, kSecPerm, perm.data(), perm.size() * sizeof(NodeId));
  return out;
}

bool LayoutPlan::deserialize(const std::uint8_t* data, std::size_t len,
                             LayoutPlan* out) {
  ByteReader r{data, len};
  FileHeader fh{};
  if (!r.read(&fh)) return false;
  if (std::memcmp(fh.magic, kMagic, sizeof(kMagic)) != 0) return false;
  if (fh.version != kVersion) return false;
  if (fh.header_crc != header_crc_of(fh)) return false;

  LayoutPlan plan;
  bool saw_meta = false;
  bool saw_perm = false;
  for (std::uint32_t s = 0; s < fh.section_count; ++s) {
    SectionHeader sh{};
    if (!r.read(&sh)) return false;
    if (r.remaining < sh.payload_bytes) return false;
    if (crc32c(r.p, sh.payload_bytes) != sh.payload_crc) return false;
    switch (sh.kind) {
      case kSecMeta: {
        MetaPayload meta{};
        if (sh.payload_bytes != sizeof(meta)) return false;
        if (!r.read(&meta)) return false;
        if (meta.strategy > static_cast<std::uint32_t>(
                                LayoutStrategy::kHotness)) {
          return false;
        }
        plan.strategy = static_cast<LayoutStrategy>(meta.strategy);
        plan.num_nodes = meta.num_nodes;
        plan.dataset_seed = meta.dataset_seed;
        plan.profile_seed = meta.profile_seed;
        saw_meta = true;
        break;
      }
      case kSecPerm: {
        if (sh.payload_bytes % sizeof(NodeId) != 0) return false;
        plan.perm.resize(sh.payload_bytes / sizeof(NodeId));
        if (!r.read_into(plan.perm.data(), sh.payload_bytes)) return false;
        saw_perm = true;
        break;
      }
      default:
        // Unknown section from a newer writer: CRC already verified, skip.
        if (!r.skip(sh.payload_bytes)) return false;
        break;
    }
  }
  if (!saw_meta || !saw_perm) return false;
  if (plan.perm.size() != plan.num_nodes) return false;

  // Rebuild the inverse and reject non-bijective payloads in one pass.
  plan.inv.assign(plan.num_nodes, plan.num_nodes);
  for (NodeId v = 0; v < plan.num_nodes; ++v) {
    const NodeId row = plan.perm[v];
    if (row >= plan.num_nodes) return false;
    if (plan.inv[row] != plan.num_nodes) return false;  // duplicate row
    plan.inv[row] = v;
  }
  *out = std::move(plan);
  return true;
}

bool LayoutPlan::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return (std::fclose(f) == 0) && ok;
}

bool LayoutPlan::load(const std::string& path, LayoutPlan* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<std::uint8_t> bytes;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return false;
  }
  const long sz = std::ftell(f);
  if (sz < 0) {
    std::fclose(f);
    return false;
  }
  bytes.resize(static_cast<std::size_t>(sz));
  std::rewind(f);
  const bool read_ok =
      std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!read_ok) return false;
  return deserialize(bytes.data(), bytes.size(), out);
}

LayoutPlan make_identity_plan(NodeId num_nodes, std::uint64_t dataset_seed) {
  LayoutPlan plan;
  plan.strategy = LayoutStrategy::kIdentity;
  plan.num_nodes = num_nodes;
  plan.dataset_seed = dataset_seed;
  plan.perm.resize(num_nodes);
  std::iota(plan.perm.begin(), plan.perm.end(), NodeId{0});
  plan.inv = plan.perm;
  return plan;
}

std::vector<NodeId> invert_permutation(const std::vector<NodeId>& perm) {
  const auto n = static_cast<NodeId>(perm.size());
  std::vector<NodeId> inv(n, n);
  for (NodeId i = 0; i < n; ++i) {
    GD_CHECK_MSG(perm[i] < n, "invert_permutation: value out of range");
    GD_CHECK_MSG(inv[perm[i]] == n, "invert_permutation: duplicate value");
    inv[perm[i]] = i;
  }
  return inv;
}

}  // namespace gnndrive
