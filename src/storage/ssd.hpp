// Simulated solid-state drive.
//
// The paper's experiments run against a SAMSUNG PM883 SATA SSD (and an Intel
// DC S3510 on the multi-GPU box). This environment has no dedicated storage
// device, so the SSD is modeled as a discrete-event device that completes
// requests on a *wall-clock* schedule:
//
//   service_time = base_latency(op) + length / per_channel_bandwidth
//
// with `channels` independent service channels (internal NAND parallelism).
// A request's completion time is max(now, earliest_free_channel) + service.
// Because completions happen in real time on a device thread, synchronous
// callers genuinely block for the modeled latency and asynchronous callers
// genuinely overlap — the exact mechanism Appendix A/B of the paper measures.
//
// Data is held by a backend (RAM image by default; a real file optionally),
// so reads return real bytes and extraction correctness is testable.
#pragma once

#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace gnndrive {

/// Storage for the simulated drive's contents.
class SsdBackend {
 public:
  virtual ~SsdBackend() = default;
  virtual void read(std::uint64_t offset, std::uint32_t len, void* dst) = 0;
  virtual void write(std::uint64_t offset, std::uint32_t len,
                     const void* src) = 0;
  virtual std::uint64_t size() const = 0;
};

/// RAM-image backend: deterministic and fast; the default for experiments.
class MemBackend final : public SsdBackend {
 public:
  explicit MemBackend(std::uint64_t size) : data_(size) {}
  void read(std::uint64_t offset, std::uint32_t len, void* dst) override {
    GD_CHECK(offset + len <= data_.size());
    std::memcpy(dst, data_.data() + offset, len);
  }
  void write(std::uint64_t offset, std::uint32_t len,
             const void* src) override {
    GD_CHECK(offset + len <= data_.size());
    std::memcpy(data_.data() + offset, src, len);
  }
  std::uint64_t size() const override { return data_.size(); }
  /// Direct access for cheap dataset initialization (bypasses the device
  /// model; only used before an experiment starts).
  std::uint8_t* raw() { return data_.data(); }

 private:
  std::vector<std::uint8_t> data_;
};

/// Real-file backend: pread/pwrite against a file on the host filesystem.
class FileBackend final : public SsdBackend {
 public:
  /// Creates (or truncates) `path` with `size` bytes.
  FileBackend(const std::string& path, std::uint64_t size);
  ~FileBackend() override;
  void read(std::uint64_t offset, std::uint32_t len, void* dst) override;
  void write(std::uint64_t offset, std::uint32_t len,
             const void* src) override;
  std::uint64_t size() const override { return size_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

struct SsdConfig {
  double read_latency_us = 80.0;    ///< Base service latency per read.
  double write_latency_us = 25.0;   ///< Base service latency per write.
  double bandwidth_mb_s = 2000.0;   ///< Aggregate device bandwidth.
  unsigned channels = 16;           ///< Internal parallelism.
  double time_scale = 1.0;          ///< Multiplier on all service times.
};

struct SsdStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  double busy_seconds = 0.0;  ///< Sum of per-channel service time.
};

class SsdDevice : NonCopyable {
 public:
  enum class Op { kRead, kWrite };

  SsdDevice(SsdConfig config, std::shared_ptr<SsdBackend> backend);
  ~SsdDevice();

  /// Submits an asynchronous request. `on_complete` runs on the device thread
  /// after the modeled service time elapses and the data movement happened;
  /// it must be cheap and must not call back into the device.
  void submit(Op op, std::uint64_t offset, std::uint32_t len, void* buf,
              std::function<void()> on_complete);

  /// Convenience synchronous operations (submit + block until completion).
  void read_sync(std::uint64_t offset, std::uint32_t len, void* dst);
  void write_sync(std::uint64_t offset, std::uint32_t len, const void* src);

  /// Blocks until every submitted request has completed.
  void drain();

  const SsdConfig& config() const { return config_; }
  SsdBackend& backend() { return *backend_; }
  SsdStats stats() const;
  void reset_stats();

  /// Modeled service time for a request of `len` bytes (no queueing).
  Duration service_time(Op op, std::uint32_t len) const;

 private:
  struct Pending {
    TimePoint done_at;
    Op op;
    std::uint64_t offset;
    std::uint32_t len;
    void* buf;
    std::function<void()> on_complete;
    bool operator>(const Pending& other) const {
      return done_at > other.done_at;
    }
  };

  void device_loop();

  const SsdConfig config_;
  std::shared_ptr<SsdBackend> backend_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  std::vector<TimePoint> channel_free_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  SsdStats stats_;
  std::thread device_thread_;
};

}  // namespace gnndrive
