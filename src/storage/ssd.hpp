// Simulated solid-state drive.
//
// The paper's experiments run against a SAMSUNG PM883 SATA SSD (and an Intel
// DC S3510 on the multi-GPU box). This environment has no dedicated storage
// device, so the SSD is modeled as a discrete-event device that completes
// requests on a *wall-clock* schedule:
//
//   service_time = base_latency(op) + length / per_channel_bandwidth
//
// with `channels` independent service channels (internal NAND parallelism).
// A request's completion time is max(now, earliest_free_channel) + service.
// Because completions happen in real time on a device thread, synchronous
// callers genuinely block for the modeled latency and asynchronous callers
// genuinely overlap — the exact mechanism Appendix A/B of the paper measures.
//
// Data is held by a backend (RAM image by default; a real file optionally),
// so reads return real bytes and extraction correctness is testable.
//
// Fault model: an optional seeded FaultInjector perturbs requests at submit
// time — per-request EIO, latency spikes, stuck requests (never complete
// until cancelled) and targeted bad-sector ranges. Completions carry a
// result code (bytes transferred or -errno) so callers see failures instead
// of asserting; see DESIGN.md "Fault model & recovery".
#pragma once

#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace gnndrive {

class Counter;
class Gauge;
class Telemetry;

/// Storage for the simulated drive's contents. read/write return 0 on
/// success or a negative errno (e.g. -EIO) on failure; partial transfers
/// are handled inside the backend.
class SsdBackend {
 public:
  virtual ~SsdBackend() = default;
  virtual std::int32_t read(std::uint64_t offset, std::uint32_t len,
                            void* dst) = 0;
  virtual std::int32_t write(std::uint64_t offset, std::uint32_t len,
                             const void* src) = 0;
  virtual std::uint64_t size() const = 0;
};

/// RAM-image backend: deterministic and fast; the default for experiments.
class MemBackend final : public SsdBackend {
 public:
  explicit MemBackend(std::uint64_t size) : data_(size) {}
  std::int32_t read(std::uint64_t offset, std::uint32_t len,
                    void* dst) override {
    GD_CHECK(offset + len <= data_.size());
    std::memcpy(dst, data_.data() + offset, len);
    return 0;
  }
  std::int32_t write(std::uint64_t offset, std::uint32_t len,
                     const void* src) override {
    GD_CHECK(offset + len <= data_.size());
    std::memcpy(data_.data() + offset, src, len);
    return 0;
  }
  std::uint64_t size() const override { return data_.size(); }
  /// Direct access for cheap dataset initialization (bypasses the device
  /// model; only used before an experiment starts).
  std::uint8_t* raw() { return data_.data(); }

 private:
  std::vector<std::uint8_t> data_;
};

/// Real-file backend: pread/pwrite against a file on the host filesystem.
/// Short transfers are looped, EINTR is retried, and real errno failures
/// surface as negative return values instead of aborting the process.
class FileBackend final : public SsdBackend {
 public:
  /// Creates (or truncates) `path` with `size` bytes.
  FileBackend(const std::string& path, std::uint64_t size);
  ~FileBackend() override;
  std::int32_t read(std::uint64_t offset, std::uint32_t len,
                    void* dst) override;
  std::int32_t write(std::uint64_t offset, std::uint32_t len,
                     const void* src) override;
  std::uint64_t size() const override { return size_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

struct SsdConfig {
  double read_latency_us = 80.0;    ///< Base service latency per read.
  double write_latency_us = 25.0;   ///< Base service latency per write.
  double bandwidth_mb_s = 2000.0;   ///< Aggregate device bandwidth.
  unsigned channels = 16;           ///< Internal parallelism.
  double time_scale = 1.0;          ///< Multiplier on all service times.
};

/// Fault-injection knobs. Disabled by default; the device takes no extra
/// locked work per request while `enabled` is false. Deterministic per seed:
/// the same request sequence produces the same fault sequence.
struct SsdFaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0xfa417ULL;
  double eio_probability = 0.0;    ///< per-request chance of -EIO
  double spike_probability = 0.0;  ///< per-request chance of a latency spike
  double spike_multiplier = 20.0;  ///< service-time multiplier for spikes
  double stuck_probability = 0.0;  ///< request never completes (until cancel)
  struct Range {
    std::uint64_t begin = 0;  ///< byte offset, inclusive
    std::uint64_t end = 0;    ///< byte offset, exclusive
  };
  /// Requests intersecting any range fail with -EIO deterministically,
  /// regardless of eio_probability (media errors pinned to an address).
  std::vector<Range> bad_ranges;
};

struct SsdStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  double busy_seconds = 0.0;  ///< Sum of per-channel service time.
  // Fault-injection accounting (all zero when the injector is off).
  std::uint64_t injected_eio = 0;    ///< requests failed with -EIO
  std::uint64_t injected_spikes = 0; ///< requests given a latency spike
  std::uint64_t injected_stuck = 0;  ///< requests that will never complete
  std::uint64_t cancelled = 0;       ///< requests removed via try_cancel
};

/// Seeded, deterministic per-request fault decision maker. Owned by the
/// device; callers configure it through SsdDevice::set_fault_config.
class FaultInjector {
 public:
  explicit FaultInjector(const SsdFaultConfig& config)
      : config_(config), rng_(splitmix64(config.seed)) {}

  struct Decision {
    std::int32_t res = 0;            ///< 0 ok; -EIO for injected failures
    double latency_multiplier = 1.0; ///< >1 for injected spikes
    bool stuck = false;              ///< request never completes
  };
  /// One decision per request; advances the RNG deterministically.
  Decision decide(bool is_read, std::uint64_t offset, std::uint32_t len);

  const SsdFaultConfig& config() const { return config_; }

 private:
  SsdFaultConfig config_;
  Rng rng_;
};

class SsdDevice : NonCopyable {
 public:
  enum class Op { kRead, kWrite };

  /// Completion callback: res >= 0 is bytes transferred, res < 0 is -errno.
  using Completion = std::function<void(std::int32_t res)>;

  SsdDevice(SsdConfig config, std::shared_ptr<SsdBackend> backend);
  ~SsdDevice();

  /// Submits an asynchronous request. `on_complete` runs on the device thread
  /// after the modeled service time elapses and the data movement happened;
  /// it must be cheap and must not call back into the device. Returns a
  /// token usable with try_cancel().
  std::uint64_t submit(Op op, std::uint64_t offset, std::uint32_t len,
                       void* buf, Completion on_complete);

  /// Cancels a submitted-but-not-yet-completed request. Returns true when
  /// the request was still pending: its buffer will never be touched and its
  /// completion will never run (the caller owns synthesizing an error).
  /// Returns false when the request already completed or is completing.
  bool try_cancel(std::uint64_t token);

  /// Convenience synchronous operations (submit + block until completion).
  /// Return bytes transferred or -errno. A request that never completes
  /// (injected stuck) is self-cancelled after a generous deadline and
  /// returns -ETIMEDOUT, so synchronous callers cannot hang forever either.
  std::int32_t read_sync(std::uint64_t offset, std::uint32_t len, void* dst);
  std::int32_t write_sync(std::uint64_t offset, std::uint32_t len,
                          const void* src);

  /// Blocks until every submitted request has completed or been cancelled.
  /// Note: an injected *stuck* request counts as outstanding until a caller
  /// cancels it.
  void drain();

  /// Installs (enabled) or removes (disabled) the fault injector. Runtime
  /// togglable; takes effect for subsequently submitted requests. An
  /// enabled config is validated first — probabilities must lie in [0, 1]
  /// (NaN rejected), spike_multiplier in [1, 1e6], and bad_ranges must be
  /// non-empty intervals — and a bad value throws std::invalid_argument
  /// without touching the installed injector.
  void set_fault_config(const SsdFaultConfig& config);
  SsdFaultConfig fault_config() const;

  const SsdConfig& config() const { return config_; }
  SsdBackend& backend() { return *backend_; }
  SsdStats stats() const;
  void reset_stats();

  /// Mirrors SsdStats into `telemetry`'s metrics registry under "ssd.*"
  /// counters (reads, writes, bytes_read, bytes_written, busy_us,
  /// injected_eio, injected_spikes, injected_stuck, cancelled), updated at
  /// every submit/cancel. Pass nullptr to stop mirroring.
  void set_telemetry(Telemetry* telemetry);

  /// Modeled service time for a request of `len` bytes (no queueing).
  Duration service_time(Op op, std::uint32_t len) const;

 private:
  struct Pending {
    TimePoint done_at;
    Op op;
    std::uint64_t offset;
    std::uint32_t len;
    void* buf;
    Completion on_complete;
    std::uint64_t token = 0;
    std::int32_t injected_res = 0;  ///< <0: fail without data movement
    bool stuck = false;
    bool operator>(const Pending& other) const {
      return done_at > other.done_at;
    }
  };

  void device_loop();
  /// Publishes stats_ into the ssd.* counters (no-op without telemetry).
  void mirror_stats_locked();

  const SsdConfig config_;
  std::shared_ptr<SsdBackend> backend_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  std::unordered_set<std::uint64_t> cancelled_;  ///< lazy heap deletion
  std::vector<TimePoint> channel_free_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_token_ = 1;
  bool stop_ = false;
  SsdStats stats_;
  std::unique_ptr<FaultInjector> injector_;  ///< null when faults are off

  // Observability mirrors (all null without set_telemetry).
  struct StatCounters {
    Counter* reads = nullptr;
    Counter* writes = nullptr;
    Counter* bytes_read = nullptr;
    Counter* bytes_written = nullptr;
    Counter* busy_us = nullptr;
    Counter* injected_eio = nullptr;
    Counter* injected_spikes = nullptr;
    Counter* injected_stuck = nullptr;
    Counter* cancelled = nullptr;
    Gauge* pending = nullptr;  ///< ssd.pending (device queue depth)
  } m_;

  std::thread device_thread_;
};

}  // namespace gnndrive
