#include "storage/ssd.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>

#include "util/logging.hpp"

namespace gnndrive {

FileBackend::FileBackend(const std::string& path, std::uint64_t size)
    : size_(size) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  GD_CHECK_MSG(fd_ >= 0, "FileBackend: cannot open backing file");
  GD_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(size)) == 0,
               "FileBackend: ftruncate failed");
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

void FileBackend::read(std::uint64_t offset, std::uint32_t len, void* dst) {
  GD_CHECK(offset + len <= size_);
  auto* p = static_cast<std::uint8_t*>(dst);
  std::uint32_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, p + done, len - done,
                              static_cast<off_t>(offset + done));
    GD_CHECK_MSG(n > 0, "FileBackend: pread failed");
    done += static_cast<std::uint32_t>(n);
  }
}

void FileBackend::write(std::uint64_t offset, std::uint32_t len,
                        const void* src) {
  GD_CHECK(offset + len <= size_);
  const auto* p = static_cast<const std::uint8_t*>(src);
  std::uint32_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd_, p + done, len - done,
                               static_cast<off_t>(offset + done));
    GD_CHECK_MSG(n > 0, "FileBackend: pwrite failed");
    done += static_cast<std::uint32_t>(n);
  }
}

SsdDevice::SsdDevice(SsdConfig config, std::shared_ptr<SsdBackend> backend)
    : config_(config), backend_(std::move(backend)) {
  GD_CHECK(config_.channels > 0);
  channel_free_.assign(config_.channels, Clock::now());
  device_thread_ = std::thread([this] { device_loop(); });
}

SsdDevice::~SsdDevice() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  device_thread_.join();
}

Duration SsdDevice::service_time(Op op, std::uint32_t len) const {
  const double base_us =
      op == Op::kRead ? config_.read_latency_us : config_.write_latency_us;
  const double per_channel_mb_s =
      config_.bandwidth_mb_s / static_cast<double>(config_.channels);
  const double transfer_us =
      static_cast<double>(len) / per_channel_mb_s;  // bytes / (MB/s) == us
  return from_us((base_us + transfer_us) * config_.time_scale);
}

void SsdDevice::submit(Op op, std::uint64_t offset, std::uint32_t len,
                       void* buf, std::function<void()> on_complete) {
  GD_CHECK(offset + len <= backend_->size());
  const TimePoint now = Clock::now();
  const Duration service = service_time(op, len);
  {
    std::lock_guard lock(mu_);
    // Pick the channel that frees up earliest (c-server queue).
    auto it = std::min_element(channel_free_.begin(), channel_free_.end());
    const TimePoint start = std::max(now, *it);
    const TimePoint done = start + service;
    *it = done;
    pending_.push(Pending{done, op, offset, len, buf, std::move(on_complete)});
    ++in_flight_;
    stats_.busy_seconds += to_seconds(service);
    if (op == Op::kRead) {
      ++stats_.reads;
      stats_.bytes_read += len;
    } else {
      ++stats_.writes;
      stats_.bytes_written += len;
    }
  }
  cv_.notify_one();
}

void SsdDevice::read_sync(std::uint64_t offset, std::uint32_t len, void* dst) {
  std::mutex m;
  std::condition_variable done_cv;
  bool done = false;
  submit(Op::kRead, offset, len, dst, [&] {
    std::lock_guard lk(m);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock lk(m);
  done_cv.wait(lk, [&] { return done; });
}

void SsdDevice::write_sync(std::uint64_t offset, std::uint32_t len,
                           const void* src) {
  std::mutex m;
  std::condition_variable done_cv;
  bool done = false;
  submit(Op::kWrite, offset, len, const_cast<void*>(src), [&] {
    std::lock_guard lk(m);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock lk(m);
  done_cv.wait(lk, [&] { return done; });
}

void SsdDevice::drain() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [&] { return in_flight_ == 0; });
}

SsdStats SsdDevice::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void SsdDevice::reset_stats() {
  std::lock_guard lock(mu_);
  stats_ = SsdStats{};
}

void SsdDevice::device_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (pending_.empty()) {
      if (stop_) return;
      cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      continue;
    }
    const TimePoint due = pending_.top().done_at;
    if (Clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    // Completion: move the request out, do the data movement and callback
    // without holding the lock.
    Pending req = std::move(const_cast<Pending&>(pending_.top()));
    pending_.pop();
    lock.unlock();
    if (req.op == Op::kRead) {
      backend_->read(req.offset, req.len, req.buf);
    } else {
      backend_->write(req.offset, req.len, req.buf);
    }
    if (req.on_complete) req.on_complete();
    lock.lock();
    --in_flight_;
    if (in_flight_ == 0) drained_.notify_all();
  }
}

}  // namespace gnndrive
