#include "storage/ssd.hpp"

#include <cerrno>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

namespace {
/// Far-future completion time for injected stuck requests: practically
/// "never", but safe for condition_variable::wait_until (TimePoint::max()
/// overflows some implementations when a service delta is added).
TimePoint stuck_deadline() {
  return Clock::now() + std::chrono::hours(24 * 365);
}

/// Synchronous operations carry a watchdog of their own: a request that
/// never completes (injected stuck, or a real device going away) is
/// cancelled after this deadline and surfaces as -ETIMEDOUT instead of
/// blocking the caller forever. Far above any modeled service time, spiked
/// or queued, so it never fires on a healthy device.
Duration sync_timeout(Duration service) {
  return std::chrono::duration_cast<Duration>(service * 200) +
         std::chrono::seconds(10);
}
}  // namespace

FileBackend::FileBackend(const std::string& path, std::uint64_t size)
    : size_(size) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  GD_CHECK_MSG(fd_ >= 0, "FileBackend: cannot open backing file");
  GD_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(size)) == 0,
               "FileBackend: ftruncate failed");
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

std::int32_t FileBackend::read(std::uint64_t offset, std::uint32_t len,
                               void* dst) {
  GD_CHECK(offset + len <= size_);
  auto* p = static_cast<std::uint8_t*>(dst);
  std::uint32_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, p + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not an error: retry
      GD_LOG_WARN("FileBackend: pread(%llu, %u) failed: errno=%d",
                  static_cast<unsigned long long>(offset + done), len - done,
                  errno);
      return -errno;
    }
    if (n == 0) {
      // Unexpected EOF inside the ftruncated extent: surface as I/O error.
      GD_LOG_WARN("FileBackend: short pread at %llu (EOF)",
                  static_cast<unsigned long long>(offset + done));
      return -EIO;
    }
    done += static_cast<std::uint32_t>(n);
  }
  return 0;
}

std::int32_t FileBackend::write(std::uint64_t offset, std::uint32_t len,
                                const void* src) {
  GD_CHECK(offset + len <= size_);
  const auto* p = static_cast<const std::uint8_t*>(src);
  std::uint32_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd_, p + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      GD_LOG_WARN("FileBackend: pwrite(%llu, %u) failed: errno=%d",
                  static_cast<unsigned long long>(offset + done), len - done,
                  errno);
      return -errno;
    }
    if (n == 0) {
      GD_LOG_WARN("FileBackend: pwrite made no progress at %llu",
                  static_cast<unsigned long long>(offset + done));
      return -EIO;
    }
    done += static_cast<std::uint32_t>(n);
  }
  return 0;
}

FaultInjector::Decision FaultInjector::decide(bool is_read,
                                              std::uint64_t offset,
                                              std::uint32_t len) {
  Decision d;
  for (const auto& range : config_.bad_ranges) {
    if (offset < range.end && offset + len > range.begin && is_read) {
      d.res = -EIO;
      return d;
    }
  }
  // One RNG draw per knob keeps the sequence deterministic regardless of
  // which faults actually fire.
  const double u_eio = rng_.next_double();
  const double u_stuck = rng_.next_double();
  const double u_spike = rng_.next_double();
  if (u_eio < config_.eio_probability) {
    d.res = -EIO;
    return d;
  }
  if (u_stuck < config_.stuck_probability) {
    d.stuck = true;
    return d;
  }
  if (u_spike < config_.spike_probability) {
    d.latency_multiplier = config_.spike_multiplier;
  }
  return d;
}

SsdDevice::SsdDevice(SsdConfig config, std::shared_ptr<SsdBackend> backend)
    : config_(config), backend_(std::move(backend)) {
  GD_CHECK(config_.channels > 0);
  channel_free_.assign(config_.channels, Clock::now());
  device_thread_ = std::thread([this] { device_loop(); });
}

SsdDevice::~SsdDevice() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  device_thread_.join();
}

Duration SsdDevice::service_time(Op op, std::uint32_t len) const {
  const double base_us =
      op == Op::kRead ? config_.read_latency_us : config_.write_latency_us;
  const double per_channel_mb_s =
      config_.bandwidth_mb_s / static_cast<double>(config_.channels);
  const double transfer_us =
      static_cast<double>(len) / per_channel_mb_s;  // bytes / (MB/s) == us
  return from_us((base_us + transfer_us) * config_.time_scale);
}

void SsdDevice::set_fault_config(const SsdFaultConfig& config) {
  // Validate loudly before arming: a NaN or out-of-range probability would
  // silently disable (or always fire) the corresponding fault, turning a
  // test-configuration typo into a meaningless soak run.
  if (config.enabled) {
    const auto check_probability = [](const char* name, double p) {
      if (!(p >= 0.0 && p <= 1.0)) {  // !(..) also rejects NaN
        throw std::invalid_argument(
            std::string("SsdFaultConfig::") + name +
            " must be a probability in [0, 1], got " + std::to_string(p));
      }
    };
    check_probability("eio_probability", config.eio_probability);
    check_probability("spike_probability", config.spike_probability);
    check_probability("stuck_probability", config.stuck_probability);
    if (!(config.spike_multiplier >= 1.0) ||
        !(config.spike_multiplier <= 1e6)) {
      throw std::invalid_argument(
          "SsdFaultConfig::spike_multiplier must be in [1, 1e6], got " +
          std::to_string(config.spike_multiplier));
    }
    for (const auto& range : config.bad_ranges) {
      if (range.begin >= range.end) {
        throw std::invalid_argument(
            "SsdFaultConfig::bad_ranges entry [" +
            std::to_string(range.begin) + ", " + std::to_string(range.end) +
            ") is empty or inverted");
      }
    }
  }
  std::lock_guard lock(mu_);
  injector_ = config.enabled ? std::make_unique<FaultInjector>(config)
                             : nullptr;
}

SsdFaultConfig SsdDevice::fault_config() const {
  std::lock_guard lock(mu_);
  return injector_ ? injector_->config() : SsdFaultConfig{};
}

std::uint64_t SsdDevice::submit(Op op, std::uint64_t offset, std::uint32_t len,
                                void* buf, Completion on_complete) {
  GD_CHECK(offset + len <= backend_->size());
  const TimePoint now = Clock::now();
  Duration service = service_time(op, len);
  std::uint64_t token;
  {
    std::lock_guard lock(mu_);
    Pending req;
    req.op = op;
    req.offset = offset;
    req.len = len;
    req.buf = buf;
    req.on_complete = std::move(on_complete);
    token = req.token = next_token_++;
    if (injector_) {
      const auto d = injector_->decide(op == Op::kRead, offset, len);
      req.injected_res = d.res;
      req.stuck = d.stuck;
      if (d.res < 0) {
        ++stats_.injected_eio;
      } else if (d.stuck) {
        ++stats_.injected_stuck;
      } else if (d.latency_multiplier > 1.0) {
        ++stats_.injected_spikes;
        service = std::chrono::duration_cast<Duration>(
            service * d.latency_multiplier);
      }
    }
    if (req.stuck) {
      // Never scheduled for completion; occupies no channel (the modeled
      // firmware lost it). Cancellation is the only way out.
      req.done_at = stuck_deadline();
    } else {
      // Pick the channel that frees up earliest (c-server queue).
      auto it = std::min_element(channel_free_.begin(), channel_free_.end());
      const TimePoint start = std::max(now, *it);
      req.done_at = start + service;
      *it = req.done_at;
      stats_.busy_seconds += to_seconds(service);
    }
    if (op == Op::kRead) {
      ++stats_.reads;
      stats_.bytes_read += len;
    } else {
      ++stats_.writes;
      stats_.bytes_written += len;
    }
    pending_.push(std::move(req));
    ++in_flight_;
    mirror_stats_locked();
  }
  cv_.notify_one();
  return token;
}

bool SsdDevice::try_cancel(std::uint64_t token) {
  std::lock_guard lock(mu_);
  if (token == 0 || token >= next_token_) return false;
  if (cancelled_.count(token) != 0) return false;  // already cancelled
  // Linear scan is not possible on the heap; instead mark for lazy deletion
  // and verify the request is still pending by probing the heap contents via
  // the in-flight bookkeeping: a completed request's token can no longer be
  // in the heap. We track liveness implicitly — the device loop removes a
  // request from the heap only at completion (lock held), so "pending" is
  // exactly "not yet popped". A popped-but-not-yet-completed request cannot
  // exist while we hold mu_ because the pop and the decision to complete
  // happen under the same lock acquisition.
  bool found = false;
  {
    // priority_queue has no iteration API; use the underlying container via
    // a const reference trick. Pending order does not matter for the scan.
    struct Opener : std::priority_queue<Pending, std::vector<Pending>,
                                        std::greater<>> {
      static const std::vector<Pending>& container(
          const std::priority_queue<Pending, std::vector<Pending>,
                                    std::greater<>>& q) {
        return q.*&Opener::c;
      }
    };
    for (const Pending& p : Opener::container(pending_)) {
      if (p.token == token) {
        found = true;
        break;
      }
    }
  }
  if (!found) return false;
  cancelled_.insert(token);
  ++stats_.cancelled;
  mirror_stats_locked();
  --in_flight_;
  if (m_.pending != nullptr) {
    m_.pending->set(static_cast<std::int64_t>(in_flight_));
  }
  if (in_flight_ == 0) drained_.notify_all();
  cv_.notify_one();
  return true;
}

std::int32_t SsdDevice::read_sync(std::uint64_t offset, std::uint32_t len,
                                  void* dst) {
  std::mutex m;
  std::condition_variable done_cv;
  bool done = false;
  std::int32_t result = 0;
  const std::uint64_t token =
      submit(Op::kRead, offset, len, dst, [&](std::int32_t res) {
        std::lock_guard lk(m);
        done = true;
        result = res;
        done_cv.notify_one();
      });
  const Duration timeout = sync_timeout(service_time(Op::kRead, len));
  std::unique_lock lk(m);
  if (!done_cv.wait_for(lk, timeout, [&] { return done; })) {
    lk.unlock();
    // Cancelled: the completion will never run and dst is never written.
    if (try_cancel(token)) return -ETIMEDOUT;
    // The request beat the cancel and is completing right now.
    lk.lock();
    done_cv.wait(lk, [&] { return done; });
  }
  return result;
}

std::int32_t SsdDevice::write_sync(std::uint64_t offset, std::uint32_t len,
                                   const void* src) {
  std::mutex m;
  std::condition_variable done_cv;
  bool done = false;
  std::int32_t result = 0;
  const std::uint64_t token =
      submit(Op::kWrite, offset, len, const_cast<void*>(src),
             [&](std::int32_t res) {
               std::lock_guard lk(m);
               done = true;
               result = res;
               done_cv.notify_one();
             });
  const Duration timeout = sync_timeout(service_time(Op::kWrite, len));
  std::unique_lock lk(m);
  if (!done_cv.wait_for(lk, timeout, [&] { return done; })) {
    lk.unlock();
    if (try_cancel(token)) return -ETIMEDOUT;
    lk.lock();
    done_cv.wait(lk, [&] { return done; });
  }
  return result;
}

void SsdDevice::drain() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [&] { return in_flight_ == 0; });
}

SsdStats SsdDevice::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void SsdDevice::reset_stats() {
  std::lock_guard lock(mu_);
  stats_ = SsdStats{};
  mirror_stats_locked();
}

void SsdDevice::set_telemetry(Telemetry* telemetry) {
  std::lock_guard lock(mu_);
  if (telemetry == nullptr) {
    m_ = StatCounters{};
    return;
  }
  MetricsRegistry& reg = *telemetry->metrics();
  m_.reads = &reg.counter("ssd.reads");
  m_.writes = &reg.counter("ssd.writes");
  m_.bytes_read = &reg.counter("ssd.bytes_read");
  m_.bytes_written = &reg.counter("ssd.bytes_written");
  m_.busy_us = &reg.counter("ssd.busy_us");
  m_.injected_eio = &reg.counter("ssd.injected_eio");
  m_.injected_spikes = &reg.counter("ssd.injected_spikes");
  m_.injected_stuck = &reg.counter("ssd.injected_stuck");
  m_.cancelled = &reg.counter("ssd.cancelled");
  m_.pending = &reg.gauge("ssd.pending");
  mirror_stats_locked();
}

void SsdDevice::mirror_stats_locked() {
  if (m_.reads == nullptr) return;
  m_.reads->store(stats_.reads);
  m_.writes->store(stats_.writes);
  m_.bytes_read->store(stats_.bytes_read);
  m_.bytes_written->store(stats_.bytes_written);
  m_.busy_us->store(static_cast<std::uint64_t>(stats_.busy_seconds * 1e6));
  m_.injected_eio->store(stats_.injected_eio);
  m_.injected_spikes->store(stats_.injected_spikes);
  m_.injected_stuck->store(stats_.injected_stuck);
  m_.cancelled->store(stats_.cancelled);
  if (m_.pending != nullptr) {
    m_.pending->set(static_cast<std::int64_t>(in_flight_));
  }
}

void SsdDevice::device_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    // Discard cancelled requests eagerly so they neither delay the heap top
    // nor keep the loop alive at shutdown.
    while (!pending_.empty() &&
           cancelled_.count(pending_.top().token) != 0) {
      cancelled_.erase(pending_.top().token);
      pending_.pop();
    }
    if (pending_.empty()) {
      if (stop_) return;
      cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      continue;
    }
    const TimePoint due = pending_.top().done_at;
    if (stop_ && pending_.top().stuck) {
      // Shutdown with an uncancelled stuck request: abandon it (its
      // completion never runs) instead of blocking destruction for a year.
      pending_.pop();
      --in_flight_;
      if (m_.pending != nullptr) {
        m_.pending->set(static_cast<std::int64_t>(in_flight_));
      }
      if (in_flight_ == 0) drained_.notify_all();
      continue;
    }
    if (Clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    // Completion: move the request out, do the data movement and callback
    // without holding the lock.
    Pending req = std::move(const_cast<Pending&>(pending_.top()));
    pending_.pop();
    lock.unlock();
    std::int32_t res = req.injected_res;
    if (res == 0) {
      res = req.op == Op::kRead ? backend_->read(req.offset, req.len, req.buf)
                                : backend_->write(req.offset, req.len, req.buf);
    }
    const std::int32_t cqe_res =
        res < 0 ? res : static_cast<std::int32_t>(req.len);
    if (req.on_complete) req.on_complete(cqe_res);
    lock.lock();
    --in_flight_;
    if (m_.pending != nullptr) {
      m_.pending->set(static_cast<std::int64_t>(in_flight_));
    }
    if (in_flight_ == 0) drained_.notify_all();
  }
}

}  // namespace gnndrive
