#include "gnn/layers.hpp"

#include <cmath>

namespace gnndrive {

namespace {

float glorot_scale(std::uint32_t fan_in, std::uint32_t fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}

/// y(m x out) += x[:m] * w    (x: >=m rows of `in`, w: in x out)
void matmul_prefix(const Tensor& x, std::uint32_t m, const Tensor& w,
                   Tensor& y) {
  GD_CHECK(x.cols() == w.rows() && y.rows() == m && y.cols() == w.cols());
  const std::uint32_t in = x.cols();
  const std::uint32_t out = w.cols();
  for (std::uint32_t i = 0; i < m; ++i) {
    const float* xi = x.row(i);
    float* yi = y.row(i);
    for (std::uint32_t p = 0; p < in; ++p) {
      const float xv = xi[p];
      if (xv == 0.0f) continue;
      const float* wp = w.row(p);
      for (std::uint32_t j = 0; j < out; ++j) yi[j] += xv * wp[j];
    }
  }
}

/// wgrad(in x out) += x[:m]^T * g(m x out)
void accumulate_weight_grad(const Tensor& x, std::uint32_t m, const Tensor& g,
                            Tensor& wgrad) {
  GD_CHECK(x.cols() == wgrad.rows() && g.cols() == wgrad.cols() &&
           g.rows() == m);
  const std::uint32_t in = x.cols();
  const std::uint32_t out = g.cols();
  for (std::uint32_t i = 0; i < m; ++i) {
    const float* xi = x.row(i);
    const float* gi = g.row(i);
    for (std::uint32_t p = 0; p < in; ++p) {
      const float xv = xi[p];
      if (xv == 0.0f) continue;
      float* wp = wgrad.row(p);
      for (std::uint32_t j = 0; j < out; ++j) wp[j] += xv * gi[j];
    }
  }
}

/// gx[:m] += g(m x out) * w^T(out x in)
void backprop_input_prefix(const Tensor& g, std::uint32_t m, const Tensor& w,
                           Tensor& gx) {
  GD_CHECK(g.cols() == w.cols() && gx.cols() == w.rows() && g.rows() == m);
  const std::uint32_t in = w.rows();
  const std::uint32_t out = w.cols();
  for (std::uint32_t i = 0; i < m; ++i) {
    const float* gi = g.row(i);
    float* gxi = gx.row(i);
    for (std::uint32_t p = 0; p < in; ++p) {
      const float* wp = w.row(p);
      float acc = 0.0f;
      for (std::uint32_t j = 0; j < out; ++j) acc += gi[j] * wp[j];
      gxi[p] += acc;
    }
  }
}

/// Mean aggregation including self: agg[d] = (x[d] + sum_in x[s]) / (deg+1).
/// Used by GCN. For SAGE (no self in the neighbor mean), pass with_self=false
/// and zero-degree rows stay zero.
void aggregate(const LayerBlock& block, const Tensor& x, bool with_self,
               Tensor& agg, std::vector<float>& inv_deg) {
  const std::uint32_t dim = x.cols();
  agg.resize(block.num_dst, dim);
  inv_deg.assign(block.num_dst, 0.0f);
  std::vector<std::uint32_t> deg(block.num_dst, 0);
  for (std::uint32_t d : block.edge_dst) ++deg[d];

  for (std::size_t e = 0; e < block.num_edges(); ++e) {
    const float* xs = x.row(block.edge_src[e]);
    float* ad = agg.row(block.edge_dst[e]);
    for (std::uint32_t k = 0; k < dim; ++k) ad[k] += xs[k];
  }
  for (std::uint32_t d = 0; d < block.num_dst; ++d) {
    std::uint32_t count = deg[d];
    if (with_self) {
      const float* xd = x.row(d);
      float* ad = agg.row(d);
      for (std::uint32_t k = 0; k < dim; ++k) ad[k] += xd[k];
      ++count;
    }
    if (count == 0) continue;
    const float inv = 1.0f / static_cast<float>(count);
    inv_deg[d] = inv;
    float* ad = agg.row(d);
    for (std::uint32_t k = 0; k < dim; ++k) ad[k] *= inv;
  }
}

}  // namespace

// ---------------------------------------------------------------- SageConv

SageConv::SageConv(std::uint32_t in_dim, std::uint32_t out_dim, Rng& rng)
    : Conv(in_dim, out_dim),
      w_self_(Tensor::uniform(in_dim, out_dim, rng,
                              glorot_scale(in_dim, out_dim))),
      w_neigh_(Tensor::uniform(in_dim, out_dim, rng,
                               glorot_scale(in_dim, out_dim))),
      bias_(Tensor::zeros(1, out_dim)) {}

Tensor SageConv::forward(const LayerBlock& block, const Tensor& x) {
  GD_CHECK(x.rows() >= block.num_src && x.cols() == in_dim_);
  x_ = &x;
  aggregate(block, x, /*with_self=*/false, agg_, inv_deg_);
  Tensor y(block.num_dst, out_dim_);
  matmul_prefix(x, block.num_dst, w_self_.value, y);
  matmul_prefix(agg_, block.num_dst, w_neigh_.value, y);
  add_row_bias(y, bias_.value);
  return y;
}

Tensor SageConv::backward(const LayerBlock& block, const Tensor& gy) {
  GD_CHECK(x_ != nullptr && gy.rows() == block.num_dst);
  Tensor gx(block.num_src, in_dim_);

  // Self path.
  accumulate_weight_grad(*x_, block.num_dst, gy, w_self_.grad);
  backprop_input_prefix(gy, block.num_dst, w_self_.value, gx);

  // Neighbor path: gy -> g_agg -> scattered to sources.
  accumulate_weight_grad(agg_, block.num_dst, gy, w_neigh_.grad);
  Tensor g_agg(block.num_dst, in_dim_);
  backprop_input_prefix(gy, block.num_dst, w_neigh_.value, g_agg);
  for (std::size_t e = 0; e < block.num_edges(); ++e) {
    const std::uint32_t d = block.edge_dst[e];
    const float w = inv_deg_[d];
    if (w == 0.0f) continue;
    const float* gd = g_agg.row(d);
    float* gs = gx.row(block.edge_src[e]);
    for (std::uint32_t k = 0; k < in_dim_; ++k) gs[k] += w * gd[k];
  }

  accumulate_bias_grad(gy, bias_.grad);
  return gx;
}

void SageConv::collect_params(std::vector<Param*>& out) {
  out.push_back(&w_self_);
  out.push_back(&w_neigh_);
  out.push_back(&bias_);
}

std::uint64_t SageConv::flops(const LayerBlock& block) const {
  const std::uint64_t agg = block.num_edges() * in_dim_ * 2ull;
  const std::uint64_t mm =
      2ull * block.num_dst * in_dim_ * out_dim_ * 2ull;  // self + neigh
  return agg + mm;
}

// ----------------------------------------------------------------- GcnConv

GcnConv::GcnConv(std::uint32_t in_dim, std::uint32_t out_dim, Rng& rng)
    : Conv(in_dim, out_dim),
      weight_(Tensor::uniform(in_dim, out_dim, rng,
                              glorot_scale(in_dim, out_dim))),
      bias_(Tensor::zeros(1, out_dim)) {}

Tensor GcnConv::forward(const LayerBlock& block, const Tensor& x) {
  GD_CHECK(x.rows() >= block.num_src && x.cols() == in_dim_);
  x_ = &x;
  aggregate(block, x, /*with_self=*/true, agg_, inv_deg_);
  Tensor y(block.num_dst, out_dim_);
  matmul_prefix(agg_, block.num_dst, weight_.value, y);
  add_row_bias(y, bias_.value);
  return y;
}

Tensor GcnConv::backward(const LayerBlock& block, const Tensor& gy) {
  GD_CHECK(x_ != nullptr && gy.rows() == block.num_dst);
  Tensor gx(block.num_src, in_dim_);

  accumulate_weight_grad(agg_, block.num_dst, gy, weight_.grad);
  Tensor g_agg(block.num_dst, in_dim_);
  backprop_input_prefix(gy, block.num_dst, weight_.value, g_agg);

  // Scatter: self contribution + in-edges, both weighted by 1/(deg+1).
  for (std::uint32_t d = 0; d < block.num_dst; ++d) {
    const float w = inv_deg_[d];
    const float* gd = g_agg.row(d);
    float* gs = gx.row(d);
    for (std::uint32_t k = 0; k < in_dim_; ++k) gs[k] += w * gd[k];
  }
  for (std::size_t e = 0; e < block.num_edges(); ++e) {
    const std::uint32_t d = block.edge_dst[e];
    const float w = inv_deg_[d];
    const float* gd = g_agg.row(d);
    float* gs = gx.row(block.edge_src[e]);
    for (std::uint32_t k = 0; k < in_dim_; ++k) gs[k] += w * gd[k];
  }

  accumulate_bias_grad(gy, bias_.grad);
  return gx;
}

void GcnConv::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

std::uint64_t GcnConv::flops(const LayerBlock& block) const {
  return block.num_edges() * in_dim_ * 2ull +
         2ull * block.num_dst * in_dim_ * out_dim_;
}

// ----------------------------------------------------------------- GatConv

GatConv::GatConv(std::uint32_t in_dim, std::uint32_t out_dim,
                 std::uint32_t heads, Rng& rng)
    : Conv(in_dim, out_dim),
      heads_(heads),
      head_dim_(out_dim / heads),
      weight_(Tensor::uniform(in_dim, out_dim, rng,
                              glorot_scale(in_dim, out_dim))),
      attn_l_(Tensor::uniform(heads, out_dim / heads, rng, 0.2f)),
      attn_r_(Tensor::uniform(heads, out_dim / heads, rng, 0.2f)),
      bias_(Tensor::zeros(1, out_dim)) {
  GD_CHECK_MSG(out_dim % heads == 0, "GAT out_dim must divide heads");
}

Tensor GatConv::forward(const LayerBlock& block, const Tensor& x) {
  GD_CHECK(x.rows() >= block.num_src && x.cols() == in_dim_);
  x_ = &x;

  // Projection Z = X W for all source nodes.
  z_.resize(block.num_src, out_dim_);
  matmul_prefix(x, block.num_src, weight_.value, z_);

  // Per-dst edge ranges; edges are grouped by non-decreasing dst.
  edge_of_dst_begin_.assign(block.num_dst + 1, 0);
  for (std::size_t e = 0; e < block.num_edges(); ++e) {
    GD_CHECK_MSG(e == 0 || block.edge_dst[e] >= block.edge_dst[e - 1],
                 "GAT requires edges grouped by dst");
    ++edge_of_dst_begin_[block.edge_dst[e] + 1];
  }
  for (std::uint32_t d = 0; d < block.num_dst; ++d) {
    edge_of_dst_begin_[d + 1] += edge_of_dst_begin_[d];
  }

  // Attention logits sl[i,h] = a_l . z_i[h], sr[j,h] = a_r . z_j[h].
  const std::size_t ext_edges = block.num_edges() + block.num_dst;
  alpha_.assign(ext_edges * heads_, 0.0f);
  score_raw_.assign(ext_edges * heads_, 0.0f);

  std::vector<float> sl(static_cast<std::size_t>(block.num_dst) * heads_);
  std::vector<float> sr(static_cast<std::size_t>(block.num_src) * heads_);
  for (std::uint32_t i = 0; i < block.num_src; ++i) {
    const float* zi = z_.row(i);
    for (std::uint32_t h = 0; h < heads_; ++h) {
      const float* al = attn_l_.value.row(h);
      const float* ar = attn_r_.value.row(h);
      float accl = 0.0f;
      float accr = 0.0f;
      for (std::uint32_t k = 0; k < head_dim_; ++k) {
        const float zv = zi[h * head_dim_ + k];
        accl += al[k] * zv;
        accr += ar[k] * zv;
      }
      if (i < block.num_dst) sl[i * heads_ + h] = accl;
      sr[i * heads_ + h] = accr;
    }
  }

  Tensor y(block.num_dst, out_dim_);
  for (std::uint32_t d = 0; d < block.num_dst; ++d) {
    const std::uint32_t ebegin = edge_of_dst_begin_[d];
    const std::uint32_t eend = edge_of_dst_begin_[d + 1];
    const std::size_t xbegin = ebegin + d;  // +1 self slot per earlier dst
    const std::uint32_t n_ext = eend - ebegin + 1;
    for (std::uint32_t h = 0; h < heads_; ++h) {
      // Raw scores (LeakyReLU applied), max for stability.
      float max_s = -1e30f;
      for (std::uint32_t e = 0; e < n_ext; ++e) {
        const std::uint32_t src =
            e < eend - ebegin ? block.edge_src[ebegin + e] : d;  // self last
        float raw = sl[d * heads_ + h] + sr[src * heads_ + h];
        score_raw_[(xbegin + e) * heads_ + h] = raw;
        if (raw < 0.0f) raw *= kLeakySlope;
        alpha_[(xbegin + e) * heads_ + h] = raw;
        if (raw > max_s) max_s = raw;
      }
      float sum = 0.0f;
      for (std::uint32_t e = 0; e < n_ext; ++e) {
        float& a = alpha_[(xbegin + e) * heads_ + h];
        a = std::exp(a - max_s);
        sum += a;
      }
      const float inv = 1.0f / sum;
      float* yd = y.row(d);
      for (std::uint32_t e = 0; e < n_ext; ++e) {
        float& a = alpha_[(xbegin + e) * heads_ + h];
        a *= inv;
        const std::uint32_t src =
            e < eend - ebegin ? block.edge_src[ebegin + e] : d;
        const float* zs = z_.row(src);
        for (std::uint32_t k = 0; k < head_dim_; ++k) {
          yd[h * head_dim_ + k] += a * zs[h * head_dim_ + k];
        }
      }
    }
  }
  add_row_bias(y, bias_.value);
  return y;
}

Tensor GatConv::backward(const LayerBlock& block, const Tensor& gy) {
  GD_CHECK(x_ != nullptr && gy.rows() == block.num_dst);
  Tensor gz(block.num_src, out_dim_);
  std::vector<float> g_sl(static_cast<std::size_t>(block.num_dst) * heads_,
                          0.0f);
  std::vector<float> g_sr(static_cast<std::size_t>(block.num_src) * heads_,
                          0.0f);
  std::vector<float> g_alpha;  // per-dst scratch

  for (std::uint32_t d = 0; d < block.num_dst; ++d) {
    const std::uint32_t ebegin = edge_of_dst_begin_[d];
    const std::uint32_t eend = edge_of_dst_begin_[d + 1];
    const std::size_t xbegin = ebegin + d;
    const std::uint32_t n_ext = eend - ebegin + 1;
    const float* gyd = gy.row(d);
    g_alpha.assign(static_cast<std::size_t>(n_ext) * heads_, 0.0f);

    // Value path: g_alpha and gz from y = sum alpha * z_src.
    for (std::uint32_t e = 0; e < n_ext; ++e) {
      const std::uint32_t src =
          e < eend - ebegin ? block.edge_src[ebegin + e] : d;
      const float* zs = z_.row(src);
      float* gzs = gz.row(src);
      for (std::uint32_t h = 0; h < heads_; ++h) {
        const float a = alpha_[(xbegin + e) * heads_ + h];
        float dot = 0.0f;
        for (std::uint32_t k = 0; k < head_dim_; ++k) {
          const float g = gyd[h * head_dim_ + k];
          dot += g * zs[h * head_dim_ + k];
          gzs[h * head_dim_ + k] += a * g;
        }
        g_alpha[e * heads_ + h] = dot;
      }
    }
    // Softmax + LeakyReLU backward -> g_sl / g_sr.
    for (std::uint32_t h = 0; h < heads_; ++h) {
      float dot = 0.0f;
      for (std::uint32_t e = 0; e < n_ext; ++e) {
        dot += alpha_[(xbegin + e) * heads_ + h] * g_alpha[e * heads_ + h];
      }
      for (std::uint32_t e = 0; e < n_ext; ++e) {
        const float a = alpha_[(xbegin + e) * heads_ + h];
        float gs = a * (g_alpha[e * heads_ + h] - dot);
        if (score_raw_[(xbegin + e) * heads_ + h] < 0.0f) gs *= kLeakySlope;
        const std::uint32_t src =
            e < eend - ebegin ? block.edge_src[ebegin + e] : d;
        g_sl[d * heads_ + h] += gs;
        g_sr[src * heads_ + h] += gs;
      }
    }
  }

  // sl/sr were linear in z and in the attention vectors.
  for (std::uint32_t i = 0; i < block.num_src; ++i) {
    const float* zi = z_.row(i);
    float* gzi = gz.row(i);
    for (std::uint32_t h = 0; h < heads_; ++h) {
      const float gr = g_sr[i * heads_ + h];
      const float gl = i < block.num_dst ? g_sl[i * heads_ + h] : 0.0f;
      float* gar = attn_r_.grad.row(h);
      float* gal = attn_l_.grad.row(h);
      const float* ar = attn_r_.value.row(h);
      const float* al = attn_l_.value.row(h);
      for (std::uint32_t k = 0; k < head_dim_; ++k) {
        const float zv = zi[h * head_dim_ + k];
        gar[k] += gr * zv;
        gzi[h * head_dim_ + k] += gr * ar[k];
        if (gl != 0.0f) {
          gal[k] += gl * zv;
          gzi[h * head_dim_ + k] += gl * al[k];
        }
      }
    }
  }

  // Projection backward.
  accumulate_weight_grad(*x_, block.num_src, gz, weight_.grad);
  Tensor gx(block.num_src, in_dim_);
  backprop_input_prefix(gz, block.num_src, weight_.value, gx);
  accumulate_bias_grad(gy, bias_.grad);
  return gx;
}

void GatConv::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&attn_l_);
  out.push_back(&attn_r_);
  out.push_back(&bias_);
}

std::uint64_t GatConv::flops(const LayerBlock& block) const {
  const std::uint64_t proj = 2ull * block.num_src * in_dim_ * out_dim_;
  const std::uint64_t attn =
      (block.num_edges() + block.num_dst) * heads_ * head_dim_ * 6ull;
  return proj + attn;
}

}  // namespace gnndrive
