// Dense row-major float32 matrix and the handful of kernels GNN training
// needs. Stands in for the PyTorch tensor library the paper builds on; only
// what GraphSAGE/GCN/GAT forward+backward require is implemented.
#pragma once

#include <cstring>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace gnndrive {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::uint32_t rows, std::uint32_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, 0.0f) {}

  static Tensor zeros(std::uint32_t rows, std::uint32_t cols) {
    return Tensor(rows, cols);
  }
  /// Glorot-style uniform init in [-scale, scale].
  static Tensor uniform(std::uint32_t rows, std::uint32_t cols, Rng& rng,
                        float scale);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  std::uint64_t bytes() const { return data_.size() * sizeof(float); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::uint32_t r) {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }
  const float* row(std::uint32_t r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }
  float& at(std::uint32_t r, std::uint32_t c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  float at(std::uint32_t r, std::uint32_t c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(std::uint32_t rows, std::uint32_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows) * cols, 0.0f);
  }

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<float> data_;
};

/// C = alpha * A x B + beta * C.  A: m x k, B: k x n, C: m x n.
void gemm(float alpha, const Tensor& a, const Tensor& b, float beta,
          Tensor& c);
/// C = alpha * A^T x B + beta * C.  A: k x m, B: k x n, C: m x n.
void gemm_at_b(float alpha, const Tensor& a, const Tensor& b, float beta,
               Tensor& c);
/// C = alpha * A x B^T + beta * C.  A: m x k, B: n x k, C: m x n.
void gemm_a_bt(float alpha, const Tensor& a, const Tensor& b, float beta,
               Tensor& c);

/// y += x (same shape).
void add_inplace(Tensor& y, const Tensor& x);
/// Adds `bias` (1 x n) to every row of y (m x n).
void add_row_bias(Tensor& y, const Tensor& bias);
/// Column sums of g into bias_grad (1 x n), accumulated.
void accumulate_bias_grad(const Tensor& g, Tensor& bias_grad);

/// In-place ReLU; records the mask into `mask` (same shape, 0/1).
void relu_forward(Tensor& x, Tensor& mask);
/// g *= mask, elementwise.
void relu_backward(Tensor& g, const Tensor& mask);

/// Softmax + cross-entropy over rows of `logits` against `labels`.
/// Returns mean loss; writes dL/dlogits (already divided by batch size)
/// into `grad` and the number of argmax hits into `correct`.
double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<std::int32_t>& labels,
                             Tensor& grad, std::uint32_t& correct);

/// Argmax accuracy without gradient (evaluation path).
std::uint32_t count_correct(const Tensor& logits,
                            const std::vector<std::int32_t>& labels);

}  // namespace gnndrive
