#include "gnn/model.hpp"

#include <cmath>

namespace gnndrive {

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kSage: return "GraphSAGE";
    case ModelKind::kGcn: return "GCN";
    case ModelKind::kGat: return "GAT";
  }
  return "?";
}

ModelKind model_kind_from_name(const std::string& name) {
  if (name == "sage" || name == "GraphSAGE" || name == "graphsage") {
    return ModelKind::kSage;
  }
  if (name == "gcn" || name == "GCN") return ModelKind::kGcn;
  if (name == "gat" || name == "GAT") return ModelKind::kGat;
  GD_CHECK_MSG(false, "unknown model name");
  return ModelKind::kSage;
}

double ModelConfig::cpu_slowdown() const {
  switch (kind) {
    case ModelKind::kSage: return 2.0;
    case ModelKind::kGcn: return 3.0;
    case ModelKind::kGat: return 9.0;
  }
  return 2.0;
}

void Adam::step(const std::vector<Param*>& params) {
  ++t_;
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (Param* p : params) {
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = p->m.data();
    float* v = p->v.data();
    const std::size_t n = p->value.size();
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

void Adam::zero_grad(const std::vector<Param*>& params) {
  for (Param* p : params) p->grad.fill(0.0f);
}

GnnModel::GnnModel(ModelConfig config) : config_(config) {
  GD_CHECK(config_.num_layers >= 1);
  Rng rng(config_.seed);
  for (std::uint32_t l = 0; l < config_.num_layers; ++l) {
    const std::uint32_t in =
        l == 0 ? config_.in_dim : config_.hidden_dim;
    const std::uint32_t out =
        l + 1 == config_.num_layers ? config_.num_classes
                                    : config_.hidden_dim;
    switch (config_.kind) {
      case ModelKind::kSage:
        convs_.push_back(std::make_unique<SageConv>(in, out, rng));
        break;
      case ModelKind::kGcn:
        convs_.push_back(std::make_unique<GcnConv>(in, out, rng));
        break;
      case ModelKind::kGat: {
        // The last layer uses a single head so logits are class scores.
        const std::uint32_t heads =
            l + 1 == config_.num_layers ? 1 : config_.gat_heads;
        convs_.push_back(std::make_unique<GatConv>(in, out, heads, rng));
        break;
      }
    }
  }
  for (auto& conv : convs_) conv->collect_params(params_);
}

Tensor GnnModel::forward(const SampledBatch& batch, const Tensor& x0) {
  const std::uint32_t L = config_.num_layers;
  GD_CHECK_MSG(batch.blocks.size() == L, "batch sampled for different depth");
  GD_CHECK(x0.rows() >= batch.num_nodes() && x0.cols() == config_.in_dim);

  acts_.clear();
  acts_.reserve(L);  // convs cache pointers into acts_; no reallocation
  relu_masks_.assign(L, Tensor{});
  // Layer l consumes blocks[L-1-l] (blocks are built seeds-outward).
  const Tensor* x = &x0;
  Tensor out;
  for (std::uint32_t l = 0; l < L; ++l) {
    const LayerBlock& block = batch.blocks[L - 1 - l];
    out = convs_[l]->forward(block, *x);
    if (l + 1 < L) {
      relu_forward(out, relu_masks_[l]);
      acts_.push_back(std::move(out));
      x = &acts_.back();
    }
  }
  return out;
}

TrainStats GnnModel::train_batch(const SampledBatch& batch, const Tensor& x0) {
  Tensor logits = forward(batch, x0);

  TrainStats stats;
  stats.total = batch.num_seeds;
  Tensor grad;
  stats.loss =
      softmax_cross_entropy(logits, batch.labels, grad, stats.correct);

  const std::uint32_t L = config_.num_layers;
  for (std::uint32_t l = L; l-- > 0;) {
    const LayerBlock& block = batch.blocks[L - 1 - l];
    grad = convs_[l]->backward(block, grad);
    if (l > 0) relu_backward(grad, relu_masks_[l - 1]);
  }
  return stats;
}

std::uint64_t GnnModel::flops(const SampledBatch& batch) const {
  std::uint64_t total = 0;
  const std::uint32_t L = config_.num_layers;
  for (std::uint32_t l = 0; l < L; ++l) {
    total += convs_[l]->flops(batch.blocks[L - 1 - l]);
  }
  return total * 3;  // forward + ~2x for backward
}

std::uint64_t GnnModel::param_state_bytes() const {
  std::uint64_t total = 0;
  for (const Param* p : params_) total += p->bytes();
  return total;
}

std::uint64_t GnnModel::activation_bytes(const SampledBatch& batch) const {
  std::uint64_t floats = 0;
  const std::uint32_t L = config_.num_layers;
  for (std::uint32_t l = 0; l < L; ++l) {
    const LayerBlock& block = batch.blocks[L - 1 - l];
    const std::uint32_t out =
        l + 1 == L ? config_.num_classes : config_.hidden_dim;
    // activation + relu mask + gradient per layer output
    floats += static_cast<std::uint64_t>(block.num_dst) * out * 3;
    // attention coefficients for GAT
    if (config_.kind == ModelKind::kGat) {
      floats += (block.num_edges() + block.num_dst) * config_.gat_heads * 2;
      floats += static_cast<std::uint64_t>(block.num_src) * out;  // Z
    }
  }
  return floats * sizeof(float);
}

void GnnModel::copy_params_from(GnnModel& other) {
  GD_CHECK(params_.size() == other.params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    GD_CHECK(params_[i]->value.size() == other.params_[i]->value.size());
    std::memcpy(params_[i]->value.data(), other.params_[i]->value.data(),
                params_[i]->value.bytes());
  }
}

void GnnModel::average_grads(const std::vector<GnnModel*>& replicas) {
  GD_CHECK(!replicas.empty());
  const float inv = 1.0f / static_cast<float>(replicas.size());
  const auto& params0 = replicas[0]->params_;
  for (std::size_t p = 0; p < params0.size(); ++p) {
    float* acc = params0[p]->grad.data();
    const std::size_t n = params0[p]->grad.size();
    for (std::size_t r = 1; r < replicas.size(); ++r) {
      const float* g = replicas[r]->params_[p]->grad.data();
      for (std::size_t i = 0; i < n; ++i) acc[i] += g[i];
    }
    for (std::size_t i = 0; i < n; ++i) acc[i] *= inv;
    for (std::size_t r = 1; r < replicas.size(); ++r) {
      std::memcpy(replicas[r]->params_[p]->grad.data(), acc,
                  n * sizeof(float));
    }
  }
}

}  // namespace gnndrive
