// GNN convolution layers with hand-derived backward passes.
//
// Conventions (see sampling/block.hpp): a conv consumes a LayerBlock whose
// dst nodes are a prefix of its src nodes, takes X (num_src x in_dim) and
// produces Y (num_dst x out_dim). Edges within a block are grouped by
// destination (the sampler emits them that way), which the attention softmax
// relies on. forward() caches what backward() needs; backward() accumulates
// parameter gradients and returns dL/dX.
#pragma once

#include <memory>
#include <vector>

#include "gnn/tensor.hpp"
#include "sampling/block.hpp"

namespace gnndrive {

/// A trainable parameter with its gradient and Adam state.
struct Param {
  Tensor value;
  Tensor grad;
  Tensor m;
  Tensor v;

  explicit Param(Tensor init)
      : value(std::move(init)),
        grad(value.rows(), value.cols()),
        m(value.rows(), value.cols()),
        v(value.rows(), value.cols()) {}

  std::uint64_t bytes() const { return value.bytes() * 4; }
};

class Conv {
 public:
  virtual ~Conv() = default;
  virtual Tensor forward(const LayerBlock& block, const Tensor& x) = 0;
  virtual Tensor backward(const LayerBlock& block, const Tensor& gy) = 0;
  virtual void collect_params(std::vector<Param*>& out) = 0;
  virtual std::uint64_t flops(const LayerBlock& block) const = 0;
  std::uint32_t in_dim() const { return in_dim_; }
  std::uint32_t out_dim() const { return out_dim_; }

 protected:
  Conv(std::uint32_t in_dim, std::uint32_t out_dim)
      : in_dim_(in_dim), out_dim_(out_dim) {}
  std::uint32_t in_dim_;
  std::uint32_t out_dim_;
};

/// GraphSAGE with mean aggregator:
///   y_d = W_self x_d + W_neigh mean_{s in N(d)} x_s + b
class SageConv final : public Conv {
 public:
  SageConv(std::uint32_t in_dim, std::uint32_t out_dim, Rng& rng);
  Tensor forward(const LayerBlock& block, const Tensor& x) override;
  Tensor backward(const LayerBlock& block, const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  std::uint64_t flops(const LayerBlock& block) const override;

 private:
  Param w_self_;
  Param w_neigh_;
  Param bias_;
  // cached for backward
  const Tensor* x_ = nullptr;
  Tensor agg_;
  std::vector<float> inv_deg_;
};

/// GCN with random-walk normalization over the sampled block
/// (self-connection included):
///   y_d = W * (x_d + sum_{s in N(d)} x_s) / (|N(d)| + 1) + b
class GcnConv final : public Conv {
 public:
  GcnConv(std::uint32_t in_dim, std::uint32_t out_dim, Rng& rng);
  Tensor forward(const LayerBlock& block, const Tensor& x) override;
  Tensor backward(const LayerBlock& block, const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  std::uint64_t flops(const LayerBlock& block) const override;

 private:
  Param weight_;
  Param bias_;
  const Tensor* x_ = nullptr;
  Tensor agg_;
  std::vector<float> inv_deg_;
};

/// Multi-head graph attention (GATv1):
///   z_i = W x_i,  e_{d<-s} = LeakyReLU(a_l . z_d + a_r . z_s)
///   alpha = softmax over incoming edges of d (self edge included)
///   y_d = concat_h sum_s alpha_{d<-s} z_s[h]
class GatConv final : public Conv {
 public:
  GatConv(std::uint32_t in_dim, std::uint32_t out_dim, std::uint32_t heads,
          Rng& rng);
  Tensor forward(const LayerBlock& block, const Tensor& x) override;
  Tensor backward(const LayerBlock& block, const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  std::uint64_t flops(const LayerBlock& block) const override;
  std::uint32_t heads() const { return heads_; }

 private:
  std::uint32_t heads_;
  std::uint32_t head_dim_;
  Param weight_;   // in_dim x (heads * head_dim)
  Param attn_l_;   // heads x head_dim
  Param attn_r_;   // heads x head_dim
  Param bias_;     // 1 x out_dim
  static constexpr float kLeakySlope = 0.2f;

  const Tensor* x_ = nullptr;
  Tensor z_;                       // num_src x out_dim
  std::vector<float> alpha_;       // (edges incl self) x heads
  std::vector<float> score_raw_;   // pre-LeakyReLU scores, same shape
  std::vector<std::uint32_t> edge_of_dst_begin_;  // per-dst edge ranges
};

}  // namespace gnndrive
