// Three-layer GNN models (GraphSAGE / GCN / GAT) with Adam, matching the
// paper's training setup: 3 layers, ReLU between them, hidden dimension 256
// (scaled by default), cross-entropy loss on mini-batch seeds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gnn/layers.hpp"
#include "sampling/block.hpp"

namespace gnndrive {

enum class ModelKind { kSage, kGcn, kGat };

const char* model_kind_name(ModelKind kind);
ModelKind model_kind_from_name(const std::string& name);

struct ModelConfig {
  ModelKind kind = ModelKind::kSage;
  std::uint32_t in_dim = 128;
  std::uint32_t hidden_dim = 32;  ///< Paper: 256; scaled for one-core math.
  std::uint32_t num_classes = 16;
  std::uint32_t num_layers = 3;
  std::uint32_t gat_heads = 2;
  std::uint64_t seed = 0xD1CEull;

  /// Modeled CPU-vs-GPU throughput gap for the CPU-training variant: the
  /// trainer sleeps (factor - 1) x real kernel time after each batch. The
  /// defaults are calibrated to the compute gaps the paper reports
  /// (GPU 1.5x / 2.1x faster overall for SAGE / GCN; GAT "8.0x execution
  /// time on average" on CPU).
  double cpu_slowdown() const;
};

struct TrainStats {
  double loss = 0.0;
  std::uint32_t correct = 0;
  std::uint32_t total = 0;
};

struct AdamConfig {
  float lr = 3e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

/// Adam optimizer over a parameter set.
class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}
  void step(const std::vector<Param*>& params);
  void zero_grad(const std::vector<Param*>& params);

  /// Bias-correction step count — the only optimizer state outside the
  /// per-parameter m/v tensors. Exposed for checkpoint/restore: restoring
  /// t alongside m/v makes a resumed Adam step bit-exact.
  std::uint64_t timestep() const { return t_; }
  void set_timestep(std::uint64_t t) { t_ = t; }

 private:
  AdamConfig config_;
  std::uint64_t t_ = 0;
};

class GnnModel : NonCopyable {
 public:
  explicit GnnModel(ModelConfig config);

  /// Forward + backward over the batch. `x0` holds features for every node
  /// of the batch (num_nodes x in_dim). Gradients accumulate into params;
  /// call optimizer step + zero_grad afterwards.
  TrainStats train_batch(const SampledBatch& batch, const Tensor& x0);

  /// Forward only; returns seed logits (evaluation).
  Tensor forward(const SampledBatch& batch, const Tensor& x0);

  const std::vector<Param*>& params() { return params_; }
  const ModelConfig& config() const { return config_; }

  /// Real multiply-accumulate work for this batch (compute model input).
  std::uint64_t flops(const SampledBatch& batch) const;
  /// Parameter + optimizer-state bytes (device-memory accounting).
  std::uint64_t param_state_bytes() const;
  /// Approximate forward+backward activation bytes for a batch.
  std::uint64_t activation_bytes(const SampledBatch& batch) const;

  /// Copies parameter values from another (architecturally identical) model.
  void copy_params_from(GnnModel& other);
  /// Averages gradients across replicas (multi-GPU data parallelism).
  static void average_grads(const std::vector<GnnModel*>& replicas);

 private:
  ModelConfig config_;
  std::vector<std::unique_ptr<Conv>> convs_;
  std::vector<Param*> params_;
  // forward caches
  std::vector<Tensor> acts_;
  std::vector<Tensor> relu_masks_;
};

}  // namespace gnndrive
