#include "gnn/tensor.hpp"

#include <cmath>

namespace gnndrive {

Tensor Tensor::uniform(std::uint32_t rows, std::uint32_t cols, Rng& rng,
                       float scale) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.next_double() * 2.0 - 1.0) * scale;
  }
  return t;
}

void gemm(float alpha, const Tensor& a, const Tensor& b, float beta,
          Tensor& c) {
  GD_CHECK(a.cols() == b.rows() && a.rows() == c.rows() &&
           b.cols() == c.cols());
  const std::uint32_t m = a.rows();
  const std::uint32_t k = a.cols();
  const std::uint32_t n = b.cols();
  for (std::uint32_t i = 0; i < m; ++i) {
    float* ci = c.row(i);
    if (beta == 0.0f) {
      std::memset(ci, 0, n * sizeof(float));
    } else if (beta != 1.0f) {
      for (std::uint32_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    const float* ai = a.row(i);
    for (std::uint32_t p = 0; p < k; ++p) {
      const float av = alpha * ai[p];
      if (av == 0.0f) continue;
      const float* bp = b.row(p);
      for (std::uint32_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void gemm_at_b(float alpha, const Tensor& a, const Tensor& b, float beta,
               Tensor& c) {
  GD_CHECK(a.rows() == b.rows() && a.cols() == c.rows() &&
           b.cols() == c.cols());
  const std::uint32_t k = a.rows();
  const std::uint32_t m = a.cols();
  const std::uint32_t n = b.cols();
  if (beta == 0.0f) {
    c.fill(0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] *= beta;
  }
  for (std::uint32_t p = 0; p < k; ++p) {
    const float* ap = a.row(p);
    const float* bp = b.row(p);
    for (std::uint32_t i = 0; i < m; ++i) {
      const float av = alpha * ap[i];
      if (av == 0.0f) continue;
      float* ci = c.row(i);
      for (std::uint32_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void gemm_a_bt(float alpha, const Tensor& a, const Tensor& b, float beta,
               Tensor& c) {
  GD_CHECK(a.cols() == b.cols() && a.rows() == c.rows() &&
           b.rows() == c.cols());
  const std::uint32_t m = a.rows();
  const std::uint32_t k = a.cols();
  const std::uint32_t n = b.rows();
  for (std::uint32_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::uint32_t j = 0; j < n; ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (std::uint32_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

void add_inplace(Tensor& y, const Tensor& x) {
  GD_CHECK(y.rows() == x.rows() && y.cols() == x.cols());
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] += x.data()[i];
}

void add_row_bias(Tensor& y, const Tensor& bias) {
  GD_CHECK(bias.rows() == 1 && bias.cols() == y.cols());
  const float* b = bias.data();
  for (std::uint32_t r = 0; r < y.rows(); ++r) {
    float* yr = y.row(r);
    for (std::uint32_t j = 0; j < y.cols(); ++j) yr[j] += b[j];
  }
}

void accumulate_bias_grad(const Tensor& g, Tensor& bias_grad) {
  GD_CHECK(bias_grad.rows() == 1 && bias_grad.cols() == g.cols());
  float* bg = bias_grad.data();
  for (std::uint32_t r = 0; r < g.rows(); ++r) {
    const float* gr = g.row(r);
    for (std::uint32_t j = 0; j < g.cols(); ++j) bg[j] += gr[j];
  }
}

void relu_forward(Tensor& x, Tensor& mask) {
  mask.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x.data()[i] > 0.0f) {
      mask.data()[i] = 1.0f;
    } else {
      x.data()[i] = 0.0f;
      mask.data()[i] = 0.0f;
    }
  }
}

void relu_backward(Tensor& g, const Tensor& mask) {
  GD_CHECK(g.size() == mask.size());
  for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] *= mask.data()[i];
}

double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<std::int32_t>& labels,
                             Tensor& grad, std::uint32_t& correct) {
  GD_CHECK(logits.rows() == labels.size());
  grad.resize(logits.rows(), logits.cols());
  const std::uint32_t n = logits.rows();
  const std::uint32_t c = logits.cols();
  double loss = 0.0;
  correct = 0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const float* x = logits.row(i);
    float* g = grad.row(i);
    float max_v = x[0];
    std::uint32_t argmax = 0;
    for (std::uint32_t j = 1; j < c; ++j) {
      if (x[j] > max_v) {
        max_v = x[j];
        argmax = j;
      }
    }
    double sum = 0.0;
    for (std::uint32_t j = 0; j < c; ++j) {
      g[j] = std::exp(x[j] - max_v);
      sum += g[j];
    }
    const auto label = static_cast<std::uint32_t>(labels[i]);
    GD_CHECK(label < c);
    const double p_label = g[label] / sum;
    loss -= std::log(std::max(p_label, 1e-12));
    const float inv_sum = static_cast<float>(1.0 / sum);
    for (std::uint32_t j = 0; j < c; ++j) g[j] *= inv_sum * inv_n;
    g[label] -= inv_n;
    if (argmax == label) ++correct;
  }
  return loss / static_cast<double>(n);
}

std::uint32_t count_correct(const Tensor& logits,
                            const std::vector<std::int32_t>& labels) {
  GD_CHECK(logits.rows() == labels.size());
  std::uint32_t correct = 0;
  for (std::uint32_t i = 0; i < logits.rows(); ++i) {
    const float* x = logits.row(i);
    std::uint32_t argmax = 0;
    for (std::uint32_t j = 1; j < logits.cols(); ++j) {
      if (x[j] > x[argmax]) argmax = j;
    }
    if (argmax == static_cast<std::uint32_t>(labels[i])) ++correct;
  }
  return correct;
}

}  // namespace gnndrive
