// Crash-safe checkpoint/restore for the training pipeline.
//
// A checkpoint is one generation-numbered file of CRC32C-checksummed
// sections (meta cursor, model parameters, Adam state, RNG streams) plus a
// tiny manifest naming the newest complete generation. Durability follows
// the classic atomic protocol:
//
//   write ckpt-<gen>.tmp -> fsync(file) -> rename to ckpt-<gen>.gnnd
//   -> fsync(dir) -> write MANIFEST.tmp -> fsync -> rename -> fsync(dir)
//   -> prune generations beyond keep_last
//
// A crash at ANY point of that sequence leaves the directory recoverable:
// either the previous generation is intact (temp files are ignored), or the
// new generation is complete and the loader adopts it with or without the
// manifest update (the loader prefers the newest file that validates, so a
// crash between the data rename and the manifest rename loses nothing).
// Torn or bit-flipped files fail their section CRCs and the loader falls
// back one generation at a time until a record set validates.
//
// Robustness is proven, not assumed: CrashInjector (the checkpoint-side
// sibling of the storage FaultInjector) aborts the writer at every phase
// boundary, and tests/ckpt_test.cpp replays the full crash matrix,
// asserting a bit-exact loss trajectory after resume (docs/recovery.md).
//
// Checkpoints are written to the host filesystem, not the simulated SSD:
// training state durability is an orthogonal concern to the feature-I/O
// path the paper models, exactly as in real disk-based GNN systems where
// checkpoints go to a separate durable volume.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "gnn/model.hpp"
#include "util/rng.hpp"

namespace gnndrive {

class Telemetry;
class Counter;
class Gauge;
class ConcurrentHistogram;

/// Checkpoint span name (Chrome-trace row; batch id carries the generation).
inline constexpr const char* kSpanCkptWrite = "ckpt.write";

/// Writer phase boundaries, in protocol order. CrashInjector aborts the
/// writer exactly at one of these points; the crash matrix iterates all of
/// them. kTornSectionWrite fires mid-payload, leaving a torn temp file.
enum class CkptPhase : std::uint32_t {
  kAfterTempOpen = 0,     ///< temp file created, nothing written yet
  kTornSectionWrite,      ///< half the payload written (torn write)
  kAfterTempWrite,        ///< payload complete, not fsynced
  kAfterTempFsync,        ///< fsynced, not renamed
  kAfterDataRename,       ///< data file in place, manifest still old
  kAfterManifestTemp,     ///< manifest temp written+fsynced, not renamed
  kAfterManifestRename,   ///< protocol complete, retention not yet run
  kCount
};

const char* ckpt_phase_name(CkptPhase phase);

/// Thrown by CheckpointManager::write when the installed CrashInjector
/// fires — the in-process stand-in for the process dying at that exact
/// point. The writer performs no cleanup: whatever the protocol left on
/// disk stays, and recovery must cope with it.
class CrashInjected : public std::runtime_error {
 public:
  CrashInjected(CkptPhase phase, std::uint64_t generation);
  CkptPhase phase() const { return phase_; }
  std::uint64_t generation() const { return generation_; }

 private:
  CkptPhase phase_;
  std::uint64_t generation_;
};

/// Aborts the checkpoint writer at a chosen phase of a chosen generation
/// (0 = the first write attempted). Same idiom as the storage-side
/// FaultInjector: deterministic, armed once, counted in ckpt.* metrics.
class CrashInjector {
 public:
  CrashInjector(CkptPhase phase, std::uint64_t at_generation = 0)
      : phase_(phase), at_generation_(at_generation) {}

  /// Called by the writer at each phase boundary; throws CrashInjected when
  /// armed for this (phase, generation). Fires at most once.
  void check(CkptPhase phase, std::uint64_t generation);

  bool fired() const { return fired_; }
  CkptPhase phase() const { return phase_; }

 private:
  CkptPhase phase_;
  std::uint64_t at_generation_;
  bool fired_ = false;
};

struct CheckpointConfig {
  bool enabled = false;
  std::string dir;               ///< checkpoint directory (created on demand)
  /// Trainer-side cadence: write a checkpoint every N trained batches
  /// (0 = only at epoch boundaries / explicit checkpoint() calls).
  std::uint32_t interval_batches = 0;
  std::uint32_t keep_last = 2;   ///< generations retained (>= 1)
  /// fsync file + directory at each barrier of the protocol. Leave on; the
  /// knob exists so huge test matrices can trade durability for speed.
  bool fsync = true;
};

/// Identity of the training run a checkpoint belongs to. Resuming into a
/// differently-shaped model or a different run seed would silently corrupt
/// training, so load_latest refuses a fingerprint mismatch loudly.
struct ModelFingerprint {
  std::uint32_t kind = 0;
  std::uint32_t in_dim = 0;
  std::uint32_t hidden_dim = 0;
  std::uint32_t num_classes = 0;
  std::uint32_t num_layers = 0;
  std::uint32_t gat_heads = 0;
  std::uint64_t model_seed = 0;
  std::uint64_t run_seed = 0;
  std::uint32_t batch_seeds = 0;

  static ModelFingerprint from(const ModelConfig& mc, std::uint64_t run_seed,
                               std::uint32_t batch_seeds);
  bool operator==(const ModelFingerprint& o) const = default;
};

/// One named, serialized RNG stream (RngState = 4x u64).
struct RngStream {
  std::uint32_t id = 0;
  RngState state{};
};

/// Everything a checkpoint persists besides the model/optimizer tensors.
struct TrainCursor {
  std::uint64_t epoch = 0;        ///< epoch the cursor points into
  std::uint64_t next_batch = 0;   ///< first batch of `epoch` not yet trained
  std::uint64_t trained_batches = 0;  ///< lifetime trained-batch count
  ModelFingerprint fingerprint;
  std::vector<RngStream> rng_streams;
  /// Pinned hot-partition node set (cache.policy = kHotness): resume adopts
  /// it and skips re-profiling. Empty under the LRU policy; checkpoints
  /// written before this section existed parse as empty (skipped section).
  std::vector<NodeId> hot_set;
  /// Fingerprint of the feature-layout plan (src/layout) the image was
  /// compiled to when the checkpoint was written; 0 means identity / no
  /// plan. resume() refuses a mismatch — a cursor trained against one
  /// physical row order must not adopt an image packed differently.
  /// Checkpoints written before this section existed parse as 0.
  std::uint64_t layout_fingerprint = 0;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointConfig config,
                             Telemetry* telemetry = nullptr);

  /// Test hook: aborts the next write at the injector's phase. Borrowed;
  /// pass nullptr to disarm.
  void set_crash_injector(CrashInjector* injector) { crash_ = injector; }

  /// Serializes cursor + model parameters + Adam state into the next
  /// generation using the atomic protocol above. Returns the generation
  /// written. Throws CrashInjected when the armed injector fires and
  /// std::runtime_error on real filesystem failures.
  std::uint64_t write(const TrainCursor& cursor, GnnModel& model, Adam& adam);

  struct LoadResult {
    TrainCursor cursor;
    std::uint64_t generation = 0;
    std::uint32_t fallbacks = 0;  ///< corrupt newer generations skipped
  };

  /// Restores the newest generation whose sections all validate, falling
  /// back one generation at a time past torn/corrupt files. Restores
  /// parameters into `model` and, when `adam` is non-null, optimizer state
  /// into it (serving adopts parameters only). Returns nullopt when no
  /// valid checkpoint exists. Throws std::runtime_error when the newest
  /// valid checkpoint's fingerprint does not match `expect`.
  std::optional<LoadResult> load_latest(GnnModel& model, Adam* adam,
                                        const ModelFingerprint& expect);

  /// Generations present on disk (complete files only), ascending.
  std::vector<std::uint64_t> generations() const;
  /// Generation the manifest names; 0 when there is no valid manifest.
  std::uint64_t manifest_generation() const;

  const CheckpointConfig& config() const { return config_; }

  /// Test helpers for media-corruption scenarios: flip one deterministic
  /// bit of / truncate the tail of generation `gen`'s file. Return false
  /// when the file does not exist.
  bool corrupt_flip_bit(std::uint64_t gen, std::uint64_t seed = 1);
  bool corrupt_truncate(std::uint64_t gen, double keep_fraction = 0.5);

 private:
  std::string data_path(std::uint64_t gen) const;
  void write_manifest(std::uint64_t gen);
  void prune(std::uint64_t newest);
  void crash_point(CkptPhase phase, std::uint64_t gen);

  CheckpointConfig config_;
  CrashInjector* crash_ = nullptr;
  std::uint64_t next_generation_ = 0;  ///< 0 = derive from directory scan

  // ckpt.* observability (all null without telemetry).
  Counter* m_writes_ = nullptr;       ///< ckpt.writes
  Counter* m_bytes_ = nullptr;        ///< ckpt.bytes_written
  Counter* m_restores_ = nullptr;     ///< ckpt.restores
  Counter* m_fallbacks_ = nullptr;    ///< ckpt.fallbacks
  Counter* m_crashes_ = nullptr;      ///< ckpt.crashes_injected
  Gauge* m_generation_ = nullptr;     ///< ckpt.generation
  Gauge* m_retained_ = nullptr;       ///< ckpt.retained
  ConcurrentHistogram* m_write_us_ = nullptr;  ///< ckpt.write.us
  Telemetry* telemetry_ = nullptr;
};

}  // namespace gnndrive
