#include "ckpt/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <functional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"
#include "util/crc32c.hpp"
#include "util/logging.hpp"
#include "util/telemetry.hpp"

namespace fs = std::filesystem;

namespace gnndrive {

namespace {

constexpr char kFileMagic[8] = {'G', 'N', 'N', 'D', 'C', 'K', 'P', '1'};
constexpr char kManifestMagic[8] = {'G', 'N', 'N', 'D', 'M', 'A', 'N', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr const char* kManifestName = "MANIFEST";

// Section kinds, in file order.
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecParams = 2;
constexpr std::uint32_t kSecAdam = 3;
constexpr std::uint32_t kSecRng = 4;
constexpr std::uint32_t kSecHotSet = 5;  ///< pinned hot-partition node ids
constexpr std::uint32_t kSecLayout = 6;  ///< feature-layout plan fingerprint

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t section_count;
  std::uint64_t generation;
  std::uint32_t header_crc;  ///< over the preceding header bytes
};

struct SectionHeader {
  std::uint32_t kind;
  std::uint32_t reserved;
  std::uint64_t payload_bytes;
  std::uint32_t payload_crc;
};

/// Header checksum covers exactly the bytes before the crc field, so struct
/// padding never enters the digest.
std::uint32_t header_crc_of(const FileHeader& fh) {
  return crc32c(&fh, offsetof(FileHeader, header_crc));
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& buf, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

void append_bytes(std::vector<std::uint8_t>& buf, const void* data,
                  std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf.insert(buf.end(), p, p + len);
}

/// Bounds-checked reader over a loaded file image. Any overrun marks the
/// image corrupt (torn file) instead of reading past the buffer.
struct ByteReader {
  const std::uint8_t* p;
  std::size_t remaining;
  bool ok = true;

  template <typename T>
  T read() {
    T v{};
    if (remaining < sizeof(T)) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    remaining -= sizeof(T);
    return v;
  }
  bool read_into(void* dst, std::size_t len) {
    if (remaining < len) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, len);
    p += len;
    remaining -= len;
    return true;
  }
  bool skip(std::size_t len) {
    if (remaining < len) {
      ok = false;
      return false;
    }
    p += len;
    remaining -= len;
    return true;
  }
};

void append_section(std::vector<std::uint8_t>& out, std::uint32_t kind,
                    const std::vector<std::uint8_t>& payload) {
  SectionHeader sh{};
  sh.kind = kind;
  sh.payload_bytes = payload.size();
  sh.payload_crc = crc32c(payload.data(), payload.size());
  append_pod(out, sh);
  append_bytes(out, payload.data(), payload.size());
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what + ": " +
                           std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Durability barrier on the directory itself, so a rename survives a power
/// cut. Best effort: some filesystems reject directory fsync.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Writes `buf` to `path` honouring the temp/fsync discipline; `mid_write`
/// runs after roughly half the payload hit the file (the torn-write
/// injection point). Leaves the file open-and-closed, fsynced if asked.
void write_file(const std::string& path, const std::vector<std::uint8_t>& buf,
                bool do_fsync, const std::function<void()>& after_open,
                const std::function<void()>& mid_write) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw_errno("open " + path);
  try {
    if (after_open) after_open();
    const std::size_t half = buf.size() / 2;
    write_all(fd, buf.data(), half);
    if (mid_write) mid_write();
    write_all(fd, buf.data() + half, buf.size() - half);
    if (do_fsync && ::fsync(fd) != 0) throw_errno("fsync " + path);
  } catch (...) {
    ::close(fd);  // simulated crash or real failure: keep the partial file
    throw;
  }
  if (::close(fd) != 0) throw_errno("close " + path);
}

std::optional<std::uint64_t> parse_generation(const std::string& name) {
  // ckpt-<digits>.gnnd
  constexpr const char* prefix = "ckpt-";
  constexpr const char* suffix = ".gnnd";
  if (name.size() <= 5 + 5 || name.rfind(prefix, 0) != 0) return std::nullopt;
  if (name.substr(name.size() - 5) != suffix) return std::nullopt;
  const std::string digits = name.substr(5, name.size() - 10);
  if (digits.empty()) return std::nullopt;
  std::uint64_t gen = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return gen;
}

/// Fully-parsed checkpoint staged off to the side; committed into the live
/// model/optimizer only after every section validated.
struct ParsedCkpt {
  TrainCursor cursor;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> shapes;  // rows, cols
  std::vector<std::vector<float>> values;
  std::vector<std::vector<float>> adam_m;
  std::vector<std::vector<float>> adam_v;
  std::uint64_t adam_t = 0;
  bool has_adam = false;
};

bool parse_checkpoint(const std::vector<std::uint8_t>& img,
                      std::uint64_t expect_gen, ParsedCkpt& out) {
  ByteReader r{img.data(), img.size()};
  const FileHeader fh = r.read<FileHeader>();
  if (!r.ok) return false;
  if (std::memcmp(fh.magic, kFileMagic, sizeof(kFileMagic)) != 0) return false;
  if (fh.version != kFormatVersion) return false;
  if (fh.generation != expect_gen) return false;
  if (header_crc_of(fh) != fh.header_crc) return false;

  bool saw_meta = false;
  bool saw_params = false;
  for (std::uint32_t s = 0; s < fh.section_count; ++s) {
    const SectionHeader sh = r.read<SectionHeader>();
    if (!r.ok || r.remaining < sh.payload_bytes) return false;
    if (crc32c(r.p, sh.payload_bytes) != sh.payload_crc) return false;
    ByteReader pr{r.p, static_cast<std::size_t>(sh.payload_bytes)};
    r.skip(sh.payload_bytes);
    switch (sh.kind) {
      case kSecMeta: {
        out.cursor.epoch = pr.read<std::uint64_t>();
        out.cursor.next_batch = pr.read<std::uint64_t>();
        out.cursor.trained_batches = pr.read<std::uint64_t>();
        out.cursor.fingerprint = pr.read<ModelFingerprint>();
        saw_meta = pr.ok;
        break;
      }
      case kSecParams: {
        const auto count = pr.read<std::uint32_t>();
        for (std::uint32_t i = 0; i < count && pr.ok; ++i) {
          const auto rows = pr.read<std::uint32_t>();
          const auto cols = pr.read<std::uint32_t>();
          const std::size_t n =
              static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
          std::vector<float> data(n);
          if (!pr.read_into(data.data(), n * sizeof(float))) break;
          out.shapes.emplace_back(rows, cols);
          out.values.push_back(std::move(data));
        }
        saw_params = pr.ok && out.values.size() == count;
        break;
      }
      case kSecAdam: {
        out.adam_t = pr.read<std::uint64_t>();
        const auto count = pr.read<std::uint32_t>();
        for (std::uint32_t i = 0; i < count && pr.ok; ++i) {
          const auto rows = pr.read<std::uint32_t>();
          const auto cols = pr.read<std::uint32_t>();
          const std::size_t n =
              static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
          std::vector<float> m(n), v(n);
          if (!pr.read_into(m.data(), n * sizeof(float))) break;
          if (!pr.read_into(v.data(), n * sizeof(float))) break;
          out.adam_m.push_back(std::move(m));
          out.adam_v.push_back(std::move(v));
        }
        out.has_adam = pr.ok && out.adam_m.size() == count;
        if (!out.has_adam) return false;
        break;
      }
      case kSecRng: {
        const auto count = pr.read<std::uint32_t>();
        for (std::uint32_t i = 0; i < count && pr.ok; ++i) {
          RngStream stream;
          stream.id = pr.read<std::uint32_t>();
          for (auto& word : stream.state) word = pr.read<std::uint64_t>();
          out.cursor.rng_streams.push_back(stream);
        }
        break;
      }
      case kSecHotSet: {
        const auto count = pr.read<std::uint32_t>();
        out.cursor.hot_set.reserve(count);
        for (std::uint32_t i = 0; i < count && pr.ok; ++i) {
          out.cursor.hot_set.push_back(pr.read<NodeId>());
        }
        break;
      }
      case kSecLayout: {
        out.cursor.layout_fingerprint = pr.read<std::uint64_t>();
        if (!pr.ok) return false;
        break;
      }
      default:
        break;  // unknown section: forward-compatible skip (CRC verified)
    }
    if (!pr.ok) return false;
  }
  return saw_meta && saw_params;
}

}  // namespace

const char* ckpt_phase_name(CkptPhase phase) {
  switch (phase) {
    case CkptPhase::kAfterTempOpen: return "after_temp_open";
    case CkptPhase::kTornSectionWrite: return "torn_section_write";
    case CkptPhase::kAfterTempWrite: return "after_temp_write";
    case CkptPhase::kAfterTempFsync: return "after_temp_fsync";
    case CkptPhase::kAfterDataRename: return "after_data_rename";
    case CkptPhase::kAfterManifestTemp: return "after_manifest_temp";
    case CkptPhase::kAfterManifestRename: return "after_manifest_rename";
    case CkptPhase::kCount: break;
  }
  return "?";
}

CrashInjected::CrashInjected(CkptPhase phase, std::uint64_t generation)
    : std::runtime_error(std::string("injected checkpoint crash at ") +
                         ckpt_phase_name(phase) + " of generation " +
                         std::to_string(generation)),
      phase_(phase), generation_(generation) {}

void CrashInjector::check(CkptPhase phase, std::uint64_t generation) {
  if (fired_ || phase != phase_) return;
  if (at_generation_ != 0 && generation != at_generation_) return;
  fired_ = true;
  throw CrashInjected(phase, generation);
}

ModelFingerprint ModelFingerprint::from(const ModelConfig& mc,
                                        std::uint64_t run_seed,
                                        std::uint32_t batch_seeds) {
  ModelFingerprint fp;
  fp.kind = static_cast<std::uint32_t>(mc.kind);
  fp.in_dim = mc.in_dim;
  fp.hidden_dim = mc.hidden_dim;
  fp.num_classes = mc.num_classes;
  fp.num_layers = mc.num_layers;
  fp.gat_heads = mc.gat_heads;
  fp.model_seed = mc.seed;
  fp.run_seed = run_seed;
  fp.batch_seeds = batch_seeds;
  return fp;
}

CheckpointManager::CheckpointManager(CheckpointConfig config,
                                     Telemetry* telemetry)
    : config_(std::move(config)), telemetry_(telemetry) {
  GD_CHECK_MSG(!config_.dir.empty(), "CheckpointManager needs a directory");
  config_.keep_last = std::max(config_.keep_last, 1u);
  if (telemetry_ != nullptr) {
    MetricsRegistry& reg = *telemetry_->metrics();
    m_writes_ = &reg.counter("ckpt.writes");
    m_bytes_ = &reg.counter("ckpt.bytes_written");
    m_restores_ = &reg.counter("ckpt.restores");
    m_fallbacks_ = &reg.counter("ckpt.fallbacks");
    m_crashes_ = &reg.counter("ckpt.crashes_injected");
    m_generation_ = &reg.gauge("ckpt.generation");
    m_retained_ = &reg.gauge("ckpt.retained");
    m_write_us_ = &reg.histogram("ckpt.write.us");
  }
}

std::string CheckpointManager::data_path(std::uint64_t gen) const {
  return config_.dir + "/ckpt-" + std::to_string(gen) + ".gnnd";
}

std::vector<std::uint64_t> CheckpointManager::generations() const {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (auto gen = parse_generation(entry.path().filename().string())) {
      gens.push_back(*gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::uint64_t CheckpointManager::manifest_generation() const {
  std::vector<std::uint8_t> buf(sizeof(kManifestMagic) + 12);
  const std::string path = config_.dir + "/" + kManifestName;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return 0;
  const ssize_t n = ::read(fd, buf.data(), buf.size());
  ::close(fd);
  if (n != static_cast<ssize_t>(buf.size())) return 0;
  if (std::memcmp(buf.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return 0;
  }
  std::uint64_t gen = 0;
  std::uint32_t crc = 0;
  std::memcpy(&gen, buf.data() + sizeof(kManifestMagic), sizeof(gen));
  std::memcpy(&crc, buf.data() + sizeof(kManifestMagic) + sizeof(gen),
              sizeof(crc));
  if (crc32c(buf.data(), sizeof(kManifestMagic) + sizeof(gen)) != crc) {
    return 0;
  }
  return gen;
}

void CheckpointManager::crash_point(CkptPhase phase, std::uint64_t gen) {
  if (crash_ == nullptr) return;
  try {
    crash_->check(phase, gen);
  } catch (const CrashInjected&) {
    if (m_crashes_ != nullptr) m_crashes_->add();
    throw;
  }
}

std::uint64_t CheckpointManager::write(const TrainCursor& cursor,
                                       GnnModel& model, Adam& adam) {
  const TimePoint t0 = Clock::now();
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: mkdir " + config_.dir + ": " +
                             ec.message());
  }

  // Generation = newest complete file (or manifest, whichever is larger)
  // + 1; a temp file left by a crashed predecessor is simply overwritten.
  if (next_generation_ == 0) {
    const auto gens = generations();
    const std::uint64_t newest = gens.empty() ? 0 : gens.back();
    next_generation_ = std::max(newest, manifest_generation()) + 1;
  }
  const std::uint64_t gen = next_generation_;

  // Serialize everything into one image: header + CRC'd sections.
  std::vector<std::uint8_t> meta;
  append_pod(meta, cursor.epoch);
  append_pod(meta, cursor.next_batch);
  append_pod(meta, cursor.trained_batches);
  append_pod(meta, cursor.fingerprint);

  const auto& params = model.params();
  std::vector<std::uint8_t> psec;
  append_pod(psec, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    append_pod(psec, p->value.rows());
    append_pod(psec, p->value.cols());
    append_bytes(psec, p->value.data(), p->value.bytes());
  }

  std::vector<std::uint8_t> asec;
  append_pod(asec, adam.timestep());
  append_pod(asec, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    append_pod(asec, p->m.rows());
    append_pod(asec, p->m.cols());
    append_bytes(asec, p->m.data(), p->m.bytes());
    append_bytes(asec, p->v.data(), p->v.bytes());
  }

  std::vector<std::uint8_t> rsec;
  append_pod(rsec, static_cast<std::uint32_t>(cursor.rng_streams.size()));
  for (const RngStream& s : cursor.rng_streams) {
    append_pod(rsec, s.id);
    for (std::uint64_t word : s.state) append_pod(rsec, word);
  }

  std::vector<std::uint8_t> hsec;
  append_pod(hsec, static_cast<std::uint32_t>(cursor.hot_set.size()));
  for (NodeId v : cursor.hot_set) append_pod(hsec, v);

  std::vector<std::uint8_t> lsec;
  append_pod(lsec, cursor.layout_fingerprint);

  FileHeader fh{};
  std::memcpy(fh.magic, kFileMagic, sizeof(kFileMagic));
  fh.version = kFormatVersion;
  fh.section_count = 6;
  fh.generation = gen;
  fh.header_crc = header_crc_of(fh);

  std::vector<std::uint8_t> img;
  img.reserve(sizeof(fh) + meta.size() + psec.size() + asec.size() +
              rsec.size() + hsec.size() + lsec.size() +
              6 * sizeof(SectionHeader));
  append_pod(img, fh);
  append_section(img, kSecMeta, meta);
  append_section(img, kSecParams, psec);
  append_section(img, kSecAdam, asec);
  append_section(img, kSecRng, rsec);
  append_section(img, kSecHotSet, hsec);
  append_section(img, kSecLayout, lsec);

  // Atomic protocol: temp -> fsync -> rename -> fsync(dir), then the same
  // for the manifest, then retention. CrashInjector fires between phases.
  const std::string tmp = data_path(gen) + ".tmp";
  write_file(tmp, img, config_.fsync,
             [&] { crash_point(CkptPhase::kAfterTempOpen, gen); },
             [&] { crash_point(CkptPhase::kTornSectionWrite, gen); });
  crash_point(CkptPhase::kAfterTempWrite, gen);
  // write_file fsynced before close (when configured).
  crash_point(CkptPhase::kAfterTempFsync, gen);
  fs::rename(tmp, data_path(gen), ec);
  if (ec) {
    throw std::runtime_error("checkpoint: rename " + tmp + ": " +
                             ec.message());
  }
  if (config_.fsync) fsync_dir(config_.dir);
  crash_point(CkptPhase::kAfterDataRename, gen);
  write_manifest(gen);
  crash_point(CkptPhase::kAfterManifestRename, gen);
  prune(gen);
  next_generation_ = gen + 1;

  const double us = to_seconds(Clock::now() - t0) * 1e6;
  if (m_writes_ != nullptr) {
    m_writes_->add();
    m_bytes_->add(img.size());
    m_generation_->set(static_cast<std::int64_t>(gen));
    m_write_us_->add_us(us);
  }
  if (telemetry_ != nullptr && telemetry_->tracing()) {
    const TimePoint t1 = Clock::now();
    telemetry_->tracer()->record(kSpanCkptWrite, gen,
                                 static_cast<std::uint32_t>(cursor.epoch), t0,
                                 t1);
  }
  log_structured(LogLevel::kInfo, "ckpt_write",
                 {kv("generation", gen), kv("epoch", cursor.epoch),
                  kv("next_batch", cursor.next_batch),
                  kv("bytes", img.size()), kv("us", us)});
  return gen;
}

void CheckpointManager::write_manifest(std::uint64_t gen) {
  std::vector<std::uint8_t> buf;
  append_bytes(buf, kManifestMagic, sizeof(kManifestMagic));
  append_pod(buf, gen);
  const std::uint32_t crc = crc32c(buf.data(), buf.size());
  append_pod(buf, crc);

  const std::string path = config_.dir + "/" + kManifestName;
  const std::string tmp = path + ".tmp";
  write_file(tmp, buf, config_.fsync, nullptr, nullptr);
  crash_point(CkptPhase::kAfterManifestTemp, gen);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: rename " + tmp + ": " +
                             ec.message());
  }
  if (config_.fsync) fsync_dir(config_.dir);
}

void CheckpointManager::prune(std::uint64_t newest) {
  auto gens = generations();
  std::error_code ec;
  // Keep the newest keep_last complete generations; drop stray temp files.
  if (gens.size() > config_.keep_last) {
    for (std::size_t i = 0; i + config_.keep_last < gens.size(); ++i) {
      if (gens[i] == newest) continue;
      fs::remove(data_path(gens[i]), ec);
    }
  }
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      fs::remove(entry.path(), ec);
    }
  }
  if (m_retained_ != nullptr) {
    m_retained_->set(static_cast<std::int64_t>(
        std::min<std::size_t>(gens.size(), config_.keep_last)));
  }
}

std::optional<CheckpointManager::LoadResult> CheckpointManager::load_latest(
    GnnModel& model, Adam* adam, const ModelFingerprint& expect) {
  auto gens = generations();
  std::sort(gens.begin(), gens.end(), std::greater<>());
  std::uint32_t fallbacks = 0;
  for (std::uint64_t gen : gens) {
    std::vector<std::uint8_t> img;
    {
      const std::string path = data_path(gen);
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd < 0) {
        ++fallbacks;
        continue;
      }
      const off_t size = ::lseek(fd, 0, SEEK_END);
      ::lseek(fd, 0, SEEK_SET);
      img.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
      std::size_t done = 0;
      bool ok = true;
      while (done < img.size()) {
        const ssize_t n = ::read(fd, img.data() + done, img.size() - done);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          ok = false;
          break;
        }
        done += static_cast<std::size_t>(n);
      }
      ::close(fd);
      if (!ok) {
        ++fallbacks;
        continue;
      }
    }

    ParsedCkpt parsed;
    if (!parse_checkpoint(img, gen, parsed)) {
      log_structured(LogLevel::kWarn, "ckpt_corrupt",
                     {kv("generation", gen), kv("bytes", img.size())});
      if (m_fallbacks_ != nullptr) m_fallbacks_->add();
      ++fallbacks;
      continue;
    }

    // Validation passed; identity and shape checks are caller errors, not
    // media corruption — refuse loudly instead of falling back.
    if (!(parsed.cursor.fingerprint == expect)) {
      throw std::runtime_error(
          "checkpoint: generation " + std::to_string(gen) +
          " belongs to a different run/model configuration");
    }
    const auto& params = model.params();
    GD_CHECK_MSG(parsed.values.size() == params.size(),
                 "checkpoint parameter count mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
      GD_CHECK_MSG(parsed.shapes[i].first == params[i]->value.rows() &&
                       parsed.shapes[i].second == params[i]->value.cols(),
                   "checkpoint parameter shape mismatch");
    }

    // Commit: every section validated, now overwrite live state.
    for (std::size_t i = 0; i < params.size(); ++i) {
      std::memcpy(params[i]->value.data(), parsed.values[i].data(),
                  params[i]->value.bytes());
      if (adam != nullptr && parsed.has_adam) {
        std::memcpy(params[i]->m.data(), parsed.adam_m[i].data(),
                    params[i]->m.bytes());
        std::memcpy(params[i]->v.data(), parsed.adam_v[i].data(),
                    params[i]->v.bytes());
      }
    }
    if (adam != nullptr && parsed.has_adam) adam->set_timestep(parsed.adam_t);

    if (m_restores_ != nullptr) {
      m_restores_->add();
      m_generation_->set(static_cast<std::int64_t>(gen));
    }
    log_structured(LogLevel::kInfo, "ckpt_restore",
                   {kv("generation", gen), kv("epoch", parsed.cursor.epoch),
                    kv("next_batch", parsed.cursor.next_batch),
                    kv("fallbacks", fallbacks)});
    LoadResult result;
    result.cursor = std::move(parsed.cursor);
    result.generation = gen;
    result.fallbacks = fallbacks;
    return result;
  }
  return std::nullopt;
}

bool CheckpointManager::corrupt_flip_bit(std::uint64_t gen,
                                         std::uint64_t seed) {
  const std::string path = data_path(gen);
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return false;
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size <= 0) {
    ::close(fd);
    return false;
  }
  // Deterministic position past the header so the flip lands in a section.
  const auto pos = static_cast<off_t>(
      sizeof(FileHeader) +
      splitmix64(seed) % (static_cast<std::uint64_t>(size) -
                          sizeof(FileHeader)));
  std::uint8_t byte = 0;
  if (::pread(fd, &byte, 1, pos) != 1) {
    ::close(fd);
    return false;
  }
  byte ^= static_cast<std::uint8_t>(1u << (splitmix64(seed + 1) % 8));
  const bool ok = ::pwrite(fd, &byte, 1, pos) == 1;
  ::close(fd);
  return ok;
}

bool CheckpointManager::corrupt_truncate(std::uint64_t gen,
                                         double keep_fraction) {
  const std::string path = data_path(gen);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return false;
  const auto keep = static_cast<std::uintmax_t>(
      static_cast<double>(size) * std::clamp(keep_fraction, 0.0, 1.0));
  fs::resize_file(path, keep, ec);
  return !ec;
}

}  // namespace gnndrive
