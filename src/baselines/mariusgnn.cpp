#include "baselines/mariusgnn.hpp"

#include <algorithm>
#include <numeric>

#include "aio/io_ring.hpp"

namespace gnndrive {

namespace {

/// In-buffer topology: neighbors outside the resident partitions are
/// dropped, as MariusGNN samples solely from buffered partitions. Topology
/// of resident partitions is memory-resident (edge buckets are loaded with
/// the partitions), so no I/O is charged. Single-threaded: caches the last
/// filtered adjacency list.
class BufferedTopology final : public TopologyReader {
 public:
  BufferedTopology(const Dataset& dataset, const MariusGnn& marius,
                   const std::vector<std::int32_t>& slot_of_part)
      : dataset_(&dataset), marius_(&marius), slot_of_part_(&slot_of_part) {}

  std::uint64_t degree(NodeId v) const override {
    refresh(v);
    return filtered_.size();
  }
  NodeId neighbor_at(NodeId v, std::uint64_t j) override {
    refresh(v);
    return filtered_[j];
  }
  void neighbors(NodeId v, std::vector<NodeId>& out) override {
    refresh(v);
    out.insert(out.end(), filtered_.begin(), filtered_.end());
  }

 private:
  void refresh(NodeId v) const {
    if (have_ && last_ == v) return;
    filtered_.clear();
    for (NodeId nb : dataset_->read_neighbors(v)) {
      if ((*slot_of_part_)[marius_->partition_of(nb)] >= 0) {
        filtered_.push_back(nb);
      }
    }
    last_ = v;
    have_ = true;
  }

  const Dataset* dataset_;
  const MariusGnn* marius_;
  const std::vector<std::int32_t>* slot_of_part_;
  mutable std::vector<NodeId> filtered_;
  mutable NodeId last_ = 0;
  mutable bool have_ = false;
};

/// Chunked I/O over a byte range through a shallow ring (MariusGNN's prep
/// and swap traffic).
void chunked_io(SsdDevice& ssd, Telemetry* tel, bool write,
                std::uint64_t offset, std::uint64_t len,
                std::uint32_t chunk_bytes, unsigned depth,
                std::uint8_t* scratch /* depth * chunk_bytes */) {
  IoRingConfig rc;
  rc.queue_depth = depth;
  rc.direct = true;
  IoRing ring(ssd, rc, nullptr, tel);
  const std::uint64_t aligned = round_up(len, kSectorSize);
  std::uint64_t submitted = 0;
  std::uint64_t done = 0;
  while (done < aligned) {
    while (submitted < aligned && ring.in_flight() < depth) {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(chunk_bytes, aligned - submitted));
      std::uint8_t* buf = scratch + (ring.in_flight() % depth) * chunk_bytes;
      if (write) {
        ring.prep_write(offset + submitted, n, buf, n);
      } else {
        ring.prep_read(offset + submitted, n, buf, n);
      }
      ring.submit();
      submitted += n;
    }
    const Cqe cqe = ring.wait_cqe();
    GD_CHECK(cqe.res >= 0);
    done += cqe.user_data;
  }
}

}  // namespace

MariusGnn::MariusGnn(const RunContext& ctx, MariusConfig config)
    : ctx_(ctx), config_(std::move(config)),
      sampler_(config_.common.sampler) {
  const Dataset& ds = *ctx_.dataset;
  HostMemory& mem = *ctx_.host_mem;
  metadata_pin_ = PinnedBytes(mem, ds.host_metadata_bytes(), "marius-meta");

  const std::uint32_t P = config_.num_partitions;
  part_rows_ = div_ceil(ds.spec().num_nodes, P);
  // A resident partition carries its feature rows and its edge buckets
  // (in-edges of its nodes, 8 B each on disk).
  const std::uint64_t edge_bytes_per_part = ds.spec().num_edges * 8ull / P;
  part_bytes_ = static_cast<std::uint64_t>(part_rows_) *
                    ds.layout().feature_row_bytes +
                edge_bytes_per_part;

  const auto usable = static_cast<std::uint64_t>(
      static_cast<double>(mem.available()) * config_.mem_frac);
  const std::uint64_t fit = usable / part_bytes_;
  // Two partitions' worth of space is reserved for prep/swap staging.
  const std::int64_t c = static_cast<std::int64_t>(fit) - 2;
  if (c < static_cast<std::int64_t>(MariusConfig::kMinBufferPartitions)) {
    throw SimOutOfMemory(
        "MariusGNN: partition buffer cannot hold the minimum " +
        std::to_string(MariusConfig::kMinBufferPartitions) +
        " partitions (fits " + std::to_string(fit) + " of " +
        std::to_string(P) + ", " + std::to_string(part_bytes_) +
        " bytes each)");
  }
  capacity_ = static_cast<std::uint32_t>(std::min<std::int64_t>(c, P));
  buffer_pin_ = PinnedBytes(mem, (capacity_ + 2ull) * part_bytes_,
                            "marius-partition-buffer");
  buffer_.resize(static_cast<std::size_t>(capacity_) * part_rows_ *
                 ds.spec().feature_dim);
  slot_of_part_.assign(P, -1);

  trainer_ = std::make_unique<GpuTrainer>(ctx_, config_.common, config_.gpu);
}

void MariusGnn::load_partition(std::uint32_t part, std::uint32_t buffer_slot) {
  const Dataset& ds = *ctx_.dataset;
  // Physical row range [first, last): contiguous on disk by construction
  // (partitions split the packed store, not the node-id space).
  const std::uint64_t first = static_cast<std::uint64_t>(part) * part_rows_;
  const std::uint64_t last =
      std::min<std::uint64_t>(first + part_rows_, ds.spec().num_nodes);
  if (first >= last) {
    slot_of_part_[part] = static_cast<std::int32_t>(buffer_slot);
    return;
  }
  // Feature rows: one big sequential read straight into the buffer slot.
  const std::uint64_t off = ds.layout().feature_offset_of_row(first);
  const std::uint64_t len =
      static_cast<std::uint64_t>(last - first) * ds.layout().feature_row_bytes;
  float* dst = buffer_.data() + static_cast<std::size_t>(buffer_slot) *
                                    part_rows_ * ds.spec().feature_dim;
  constexpr std::uint32_t kChunk = 1 << 20;
  // Sector-aligned body straight into the buffer slot; the unaligned tail
  // (possible with sub-sector feature rows) bounces through a scratch sector.
  const std::uint64_t body = round_down(len, kSectorSize);
  std::uint64_t done = 0;
  IoRingConfig rc;
  rc.queue_depth = 8;
  rc.direct = true;
  IoRing ring(*ctx_.ssd, rc, nullptr, ctx_.telemetry);
  std::uint64_t submitted = 0;
  while (done < body) {
    while (submitted < body && ring.in_flight() < 8) {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kChunk, body - submitted));
      ring.prep_read(off + submitted, n,
                     reinterpret_cast<std::uint8_t*>(dst) + submitted, n);
      ring.submit();
      submitted += n;
    }
    const Cqe cqe = ring.wait_cqe();
    GD_CHECK(cqe.res >= 0);
    done += cqe.user_data;
  }
  if (body < len) {
    alignas(64) std::uint8_t tail[2 * kSectorSize];
    ctx_.ssd->read_sync(off + body, kSectorSize, tail);
    std::memcpy(reinterpret_cast<std::uint8_t*>(dst) + body, tail,
                len - body);
  }
  // Edge buckets ride along (charged as extra sequential bytes).
  std::vector<std::uint8_t> scratch(8 * kChunk);
  chunked_io(*ctx_.ssd, ctx_.telemetry, /*write=*/false,
             ds.layout().indices_offset,
             std::min<std::uint64_t>(ds.layout().indices_bytes,
                                     ds.spec().num_edges * 8ull /
                                         config_.num_partitions),
             kChunk, 8, scratch.data());
  slot_of_part_[part] = static_cast<std::int32_t>(buffer_slot);
}

EpochStats MariusGnn::run_epoch(std::uint64_t epoch) {
  const Dataset& ds = *ctx_.dataset;
  const std::uint32_t dim = ds.spec().feature_dim;
  const std::uint32_t P = config_.num_partitions;

  EpochStats stats;
  const TimePoint t_epoch = Clock::now();

  // ---- Data preparation: order partitions and shuffle data on disk.
  std::vector<std::uint32_t> order(P);
  {
    std::iota(order.begin(), order.end(), 0u);
    Rng rng(splitmix64(config_.common.run_seed ^ (epoch + 0xBE7A)));
    for (std::uint32_t i = P - 1; i > 0; --i) {
      std::swap(order[i], order[rng.next_below(i + 1)]);
    }

    // ceil(P/c) shuffle passes: read features + rewrite them to scratch in
    // small chunks at low queue depth (the paper's dominant prep cost; more
    // passes when fewer partitions fit in memory).
    const std::uint32_t passes = static_cast<std::uint32_t>(
        div_ceil(P, capacity_));
    std::vector<std::uint8_t> scratch(
        static_cast<std::size_t>(config_.prep_ring_depth) *
        config_.prep_chunk_bytes);
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
      chunked_io(*ctx_.ssd, ctx_.telemetry, /*write=*/false,
                 ds.layout().features_offset, ds.layout().features_bytes,
                 config_.prep_chunk_bytes, config_.prep_ring_depth,
                 scratch.data());
      chunked_io(*ctx_.ssd, ctx_.telemetry, /*write=*/true,
                 ds.layout().scratch_offset, ds.layout().features_bytes,
                 config_.prep_chunk_bytes, config_.prep_ring_depth,
                 scratch.data());
    }

    // Preload the initial buffer.
    std::fill(slot_of_part_.begin(), slot_of_part_.end(), -1);
    for (std::uint32_t s = 0; s < capacity_; ++s) {
      load_partition(order[s], s);
    }
    stats.prep_seconds = to_seconds(Clock::now() - t_epoch);
  }

  // ---- Training: walk the partition ordering; train each partition's
  // seed nodes while it is resident, sampling only within the buffer.
  std::vector<std::vector<NodeId>> seeds_of_part(P);
  for (NodeId v : ds.train_nodes()) seeds_of_part[partition_of(v)].push_back(v);

  BufferedTopology topo(ds, *this, slot_of_part_);
  std::uint64_t batch_counter = 0;
  std::uint32_t next_victim = 0;  // round-robin buffer slot for swaps

  const auto swap_in = [&](std::uint32_t part,
                           std::uint32_t keep_resident) -> void {
    // Evict the round-robin resident partition (never the active one),
    // then load `part` into its slot.
    std::uint32_t slot = next_victim;
    if (slot_of_part_[keep_resident] == static_cast<std::int32_t>(slot)) {
      next_victim = (next_victim + 1) % capacity_;
      slot = next_victim;
    }
    next_victim = (next_victim + 1) % capacity_;
    for (std::uint32_t p = 0; p < P; ++p) {
      if (slot_of_part_[p] == static_cast<std::int32_t>(slot)) {
        slot_of_part_[p] = -1;
      }
    }
    const TimePoint t0 = Clock::now();
    load_partition(part, slot);
    stats.extract_seconds += to_seconds(Clock::now() - t0);
  };

  for (std::uint32_t oi = 0; oi < P; ++oi) {
    const std::uint32_t part = order[oi];
    if (slot_of_part_[part] < 0) swap_in(part, part);

    // Companion-swap rounds: rotate the non-active slots across the
    // remaining partitions so this partition's cross-partition edge
    // buckets get covered before its nodes train (BETA-ordering swap
    // traffic; see MariusConfig::companion_swaps).
    if (config_.companion_swaps && capacity_ < P && capacity_ > 1) {
      std::uint32_t companion = (oi + 1) % P;
      const std::uint32_t rounds = static_cast<std::uint32_t>(
          div_ceil(P - capacity_, capacity_));
      for (std::uint32_t r = 0; r < rounds; ++r) {
        // Next non-resident partition in order.
        while (slot_of_part_[order[companion]] >= 0 &&
               companion != oi) {
          companion = (companion + 1) % P;
        }
        if (companion == oi) break;
        swap_in(order[companion], part);
      }
    }

    auto seed_batches = make_minibatches(
        seeds_of_part[part], config_.common.batch_seeds,
        splitmix64(config_.common.run_seed ^ (epoch + 1) ^ (part * 77ull)));
    for (auto& seeds : seed_batches) {
      TimePoint t0 = Clock::now();
      SampledBatch batch;
      {
        BusyScope busy(ctx_.telemetry);
        batch = sampler_.sample(((epoch + 1) << 24) | batch_counter++, seeds,
                                topo, &ds.labels());
      }
      stats.sample_seconds += to_seconds(Clock::now() - t0);

      // Extraction: all sampled nodes are resident by construction.
      t0 = Clock::now();
      Tensor x0(static_cast<std::uint32_t>(batch.num_nodes()), dim);
      {
        BusyScope busy(ctx_.telemetry);
        for (std::uint32_t i = 0; i < batch.num_nodes(); ++i) {
          const NodeId v = batch.nodes[i];
          const std::int32_t slot = slot_of_part_[partition_of(v)];
          GD_CHECK_MSG(slot >= 0, "marius sampled a non-resident node");
          // Buffer slots hold physical rows, so index by the node's row
          // within its partition's extent.
          const std::uint64_t row = ds.layout().feature_row_of(v);
          const float* src =
              buffer_.data() +
              (static_cast<std::size_t>(slot) * part_rows_ +
               (row - static_cast<std::uint64_t>(partition_of(v)) *
                          part_rows_)) *
                  dim;
          std::memcpy(x0.row(i), src, static_cast<std::size_t>(dim) * 4);
        }
      }
      stats.extract_seconds += to_seconds(Clock::now() - t0);

      t0 = Clock::now();
      const TrainStats tr = trainer_->step(batch, x0);
      stats.train_seconds += to_seconds(Clock::now() - t0);
      stats.loss += tr.loss;
      stats.train_accuracy +=
          tr.total > 0
              ? static_cast<double>(tr.correct) / static_cast<double>(tr.total)
              : 0.0;
      ++stats.batches;
    }
  }

  stats.epoch_seconds = to_seconds(Clock::now() - t_epoch);
  if (stats.batches > 0) {
    stats.loss /= static_cast<double>(stats.batches);
    stats.train_accuracy /= static_cast<double>(stats.batches);
  }
  return stats;
}

double MariusGnn::evaluate() {
  return evaluate_accuracy(trainer_->model(), *ctx_.dataset,
                           config_.common.sampler);
}

}  // namespace gnndrive
