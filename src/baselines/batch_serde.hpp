// Serialization of sampled batches for on-SSD spill.
//
// Ginex stores each mini-batch's sampling result on the SSD during its
// superbatch sampling phase and reads it back for inspect + train (the
// extra I/O the paper attributes to Ginex's optimized caching). The format
// is a flat sector-padded blob: header, node list, seed labels, and the
// per-layer blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/block.hpp"

namespace gnndrive {

/// Exact serialized size (before sector padding).
std::uint64_t serialized_batch_bytes(const SampledBatch& batch);

/// Serializes `batch` into `out` (cleared first; NOT sector-padded — the
/// caller rounds up for direct I/O).
void serialize_batch(const SampledBatch& batch,
                     std::vector<std::uint8_t>& out);

/// Reconstructs a batch from a serialized blob. Alias entries are reset to
/// kNoSlot (they are extraction state, not sampling state).
SampledBatch deserialize_batch(const std::uint8_t* data);

}  // namespace gnndrive
