#include "baselines/ginex.hpp"

#include <atomic>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "aio/io_ring.hpp"
#include "baselines/batch_serde.hpp"
#include "util/logging.hpp"
#include "util/queue.hpp"

namespace gnndrive {

namespace {

/// Loads feature rows (node, cache-slot) into `storage` through a direct-I/O
/// ring at the given depth. Rows that are not sector-multiples bounce
/// through per-request scratch rows managed with a free list (completions
/// arrive out of order).
void load_rows_into_cache(
    SsdDevice& ssd, Telemetry* tel, const OnDiskLayout& lay,
    const std::vector<std::pair<NodeId, std::uint32_t>>& rows,
    unsigned depth, std::uint32_t dim, float* storage) {
  if (rows.empty()) return;
  const std::uint64_t row_bytes = lay.feature_row_bytes;
  const bool aligned = row_bytes % kSectorSize == 0;
  IoRingConfig rc;
  rc.queue_depth = depth;
  rc.direct = true;
  IoRing ring(ssd, rc, nullptr, tel);

  const std::uint64_t bounce_row = round_up(row_bytes, kSectorSize) + 1024;
  std::vector<std::uint8_t> bounce(aligned ? 0 : depth * bounce_row);
  std::vector<unsigned> free_bounce;
  for (unsigned i = 0; i < depth; ++i) free_bounce.push_back(i);
  std::vector<unsigned> bounce_of(rows.size(), 0);

  std::size_t submitted = 0;
  std::size_t finished = 0;
  while (finished < rows.size()) {
    while (submitted < rows.size() && ring.in_flight() < depth &&
           (aligned || !free_bounce.empty())) {
      const auto [node, slot] = rows[submitted];
      // feature_offset_of is layout-aware (src/layout): under a packed
      // store this reads the node's permuted physical row, so Ginex's
      // Belady cache — keyed by node id, layout-independent — still caches
      // the right bytes. Differential-tested against the identity layout.
      const std::uint64_t off = lay.feature_offset_of(node);
      if (aligned) {
        ring.prep_read(off, static_cast<std::uint32_t>(row_bytes),
                       storage + static_cast<std::size_t>(slot) * dim,
                       submitted);
      } else {
        const unsigned bslot = free_bounce.back();
        free_bounce.pop_back();
        bounce_of[submitted] = bslot;
        const std::uint64_t base = round_down(off, kSectorSize);
        const auto len = static_cast<std::uint32_t>(
            round_up(off + row_bytes, kSectorSize) - base);
        ring.prep_read(base, len, bounce.data() + bslot * bounce_row,
                       submitted);
      }
      ring.submit();
      ++submitted;
    }
    const Cqe cqe = ring.wait_cqe();
    GD_CHECK(cqe.res >= 0);
    if (!aligned) {
      const auto [node, slot] = rows[cqe.user_data];
      const std::uint64_t off = lay.feature_offset_of(node);
      const std::uint64_t base = round_down(off, kSectorSize);
      const unsigned bslot = bounce_of[cqe.user_data];
      std::memcpy(storage + static_cast<std::size_t>(slot) * dim,
                  bounce.data() + bslot * bounce_row + (off - base),
                  row_bytes);
      free_bounce.push_back(bslot);
    }
    ++finished;
  }
}

/// Bulk sequential I/O against the scratch region, chunked through a ring.
void bulk_io(SsdDevice& ssd, Telemetry* tel, bool write, std::uint64_t offset,
             std::uint8_t* data, std::uint64_t len, unsigned depth) {
  IoRingConfig rc;
  rc.queue_depth = depth;
  rc.direct = true;
  IoRing ring(ssd, rc, nullptr, tel);
  constexpr std::uint64_t kChunk = 256 * 1024;
  const std::uint64_t aligned = round_up(len, kSectorSize);
  std::uint64_t submitted = 0;
  std::uint64_t done = 0;
  // `data` must have capacity for the sector padding of the last chunk; the
  // callers allocate rounded-up buffers.
  while (done < aligned) {
    while (submitted < aligned && ring.in_flight() < depth) {
      const auto n = static_cast<std::uint32_t>(
          std::min(kChunk, aligned - submitted));
      if (write) {
        ring.prep_write(offset + submitted, n, data + submitted, submitted);
      } else {
        ring.prep_read(offset + submitted, n, data + submitted, submitted);
      }
      ring.submit();
      submitted += n;
    }
    const Cqe cqe = ring.wait_cqe();
    GD_CHECK(cqe.res >= 0);
    done += static_cast<std::uint32_t>(cqe.res);
  }
}

}  // namespace

/// Belady replacement plan for one superbatch, produced by the inspect pass.
struct Ginex::Plan {
  /// Initial cache content: (node, cache slot), loaded synchronously at
  /// superbatch start.
  std::vector<std::pair<NodeId, std::uint32_t>> initial_fill;
  /// Per mini-batch: nodes to evict, then (node, slot) loads.
  std::vector<std::vector<NodeId>> evictions;
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> loads;
};

Ginex::Ginex(const RunContext& ctx, GinexConfig config)
    : ctx_(ctx), config_(std::move(config)),
      sampler_(config_.common.sampler) {
  const Dataset& ds = *ctx_.dataset;
  HostMemory& mem = *ctx_.host_mem;
  metadata_pin_ = PinnedBytes(mem, ds.host_metadata_bytes(), "ginex-meta");

  const auto budget = static_cast<double>(mem.budget());
  const auto neighbor_budget =
      static_cast<std::uint64_t>(budget * config_.neighbor_cache_frac);
  neighbor_cache_ = std::make_unique<CachedTopology>(ds, *ctx_.page_cache,
                                                     neighbor_budget);
  neighbor_cache_pin_ =
      PinnedBytes(mem, neighbor_cache_->cached_bytes(), "ginex-neighbor-cache");

  const auto feature_budget =
      static_cast<std::uint64_t>(budget * config_.feature_cache_frac);
  cache_rows_ = feature_budget / ds.layout().feature_row_bytes;
  GD_CHECK_MSG(cache_rows_ > 0, "ginex feature cache too small");
  feature_cache_pin_ = PinnedBytes(
      mem, cache_rows_ * ds.layout().feature_row_bytes, "ginex-feature-cache");
  cache_storage_.resize(cache_rows_ * ds.spec().feature_dim);

  trainer_ = std::make_unique<GpuTrainer>(ctx_, config_.common, config_.gpu);
}

EpochStats Ginex::run_epoch(std::uint64_t epoch) {
  const Dataset& ds = *ctx_.dataset;
  const std::uint32_t dim = ds.spec().feature_dim;
  const std::uint64_t row_bytes = ds.layout().feature_row_bytes;
  const auto batches = make_minibatches(
      ds.train_nodes(), config_.common.batch_seeds,
      splitmix64(config_.common.run_seed ^ (epoch + 1)));
  const std::size_t n_batches = batches.size();

  EpochStats stats;
  stats.batches = n_batches;
  const TimePoint t_epoch = Clock::now();

  // Live cache map (node -> cache slot), rebuilt per superbatch.
  std::unordered_map<NodeId, std::uint32_t> cache_map;

  for (std::size_t sb_start = 0; sb_start < n_batches;
       sb_start += config_.superbatch) {
    const std::size_t sb_end =
        std::min(n_batches, sb_start + config_.superbatch);
    const std::size_t sb_count = sb_end - sb_start;

    // ---- Phase 1: sample the whole superbatch, spilling results to SSD.
    std::vector<std::uint64_t> spill_offset(sb_count);
    std::vector<std::uint64_t> spill_len(sb_count);
    std::vector<std::vector<NodeId>> node_lists(sb_count);
    {
      const TimePoint t0 = Clock::now();
      std::atomic<std::size_t> next{0};
      std::mutex spill_mu;
      std::uint64_t cursor = ds.layout().scratch_offset;
      std::mutex err_mu;
      std::exception_ptr error;
      std::vector<std::thread> workers;
      for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
        workers.emplace_back([&] {
          try {
            std::vector<std::uint8_t> ser;
            for (;;) {
              const std::size_t k = next.fetch_add(1);
              if (k >= sb_count) break;
              const std::size_t b = sb_start + k;
              SampledBatch batch;
              {
                BusyScope busy(ctx_.telemetry);
                batch = sampler_.sample(((epoch + 1) << 24) | b, batches[b],
                                        *neighbor_cache_, &ds.labels());
              }
              node_lists[k] = batch.nodes;
              serialize_batch(batch, ser);
              ser.resize(round_up(ser.size(), kSectorSize));
              std::uint64_t off;
              {
                std::lock_guard lk(spill_mu);
                off = cursor;
                cursor += ser.size();
                GD_CHECK_MSG(cursor <= ds.layout().scratch_offset +
                                           ds.layout().scratch_bytes,
                             "ginex scratch overflow");
              }
              spill_offset[k] = off;
              spill_len[k] = ser.size();
              bulk_io(*ctx_.ssd, ctx_.telemetry, /*write=*/true, off,
                      ser.data(), ser.size(), /*depth=*/4);
            }
          } catch (...) {
            std::lock_guard lk(err_mu);
            if (!error) error = std::current_exception();
          }
        });
      }
      for (auto& t : workers) t.join();
      if (error) std::rethrow_exception(error);
      stats.sample_seconds += to_seconds(Clock::now() - t0);
      GD_LOG_INFO("ginex superbatch %zu: sampling %.3fs",
                  sb_start / config_.superbatch,
                  to_seconds(Clock::now() - t0));
    }

    if (config_.common.sample_only) continue;

    // ---- Phase 2: inspect — read sampling results back and compute the
    // Belady-optimal replacement plan over the superbatch's access sequence.
    Plan plan;
    {
      const TimePoint t0 = Clock::now();
      // Read-back I/O charge (the lists were just written; Ginex re-reads
      // them to run its changeset computation).
      {
        std::vector<std::uint8_t> scratch;
        for (std::size_t k = 0; k < sb_count; ++k) {
          scratch.resize(spill_len[k]);
          bulk_io(*ctx_.ssd, ctx_.telemetry, /*write=*/false, spill_offset[k],
                  scratch.data(), spill_len[k], /*depth=*/16);
        }
      }
      const TimePoint t_belady = Clock::now();
      BusyScope busy(ctx_.telemetry);
      plan.evictions.resize(sb_count);
      plan.loads.resize(sb_count);

      // Future-use lists per node.
      std::unordered_map<NodeId, std::vector<std::uint32_t>> uses;
      for (std::size_t k = 0; k < sb_count; ++k) {
        for (NodeId v : node_lists[k]) {
          uses[v].push_back(static_cast<std::uint32_t>(k));
        }
      }
      constexpr std::uint32_t kNever = 0xffffffffu;
      std::unordered_map<NodeId, std::uint32_t> use_ptr;
      const auto next_use_after = [&](NodeId v,
                                      std::uint32_t now) -> std::uint32_t {
        const auto& list = uses[v];
        auto& ptr = use_ptr[v];
        while (ptr < list.size() && list[ptr] <= now) ++ptr;
        return ptr < list.size() ? list[ptr] : kNever;
      };

      // Simulated cache: slot assignment + lazy max-heap on next use.
      std::unordered_map<NodeId, std::uint32_t> sim_map;
      std::vector<std::uint32_t> free_slots;
      for (std::uint32_t s = 0; s < cache_rows_; ++s) free_slots.push_back(s);
      using HeapEntry = std::pair<std::uint32_t, NodeId>;  // (next_use, node)
      std::priority_queue<HeapEntry> heap;
      std::unordered_map<NodeId, std::uint32_t> heap_key;

      // Initial fill: earliest-first-use nodes up to capacity (the Belady
      // warm start Ginex loads synchronously at superbatch start).
      for (std::size_t k = 0; k < sb_count && free_slots.size() > 0; ++k) {
        for (NodeId v : node_lists[k]) {
          if (free_slots.empty()) break;
          if (sim_map.count(v) != 0) continue;
          const std::uint32_t slot = free_slots.back();
          free_slots.pop_back();
          sim_map.emplace(v, slot);
          plan.initial_fill.emplace_back(v, slot);
          // Register in the heap at the first-use key so the node is an
          // eviction candidate even before that use happens.
          heap.push({static_cast<std::uint32_t>(k), v});
          heap_key[v] = static_cast<std::uint32_t>(k);
        }
      }

      // A batch member must survive until its batch trains. Keys for batch
      // members are refreshed only AFTER the batch's misses are placed, so
      // during the batch a member either carries a stale past key (the
      // least attractive entry in the max-heap) or — when freshly loaded —
      // no heap entry at all; in-batch eviction of needed nodes cannot
      // happen in practice. The protected-set guard remains as a
      // correctness backstop for degenerate cache sizes.
      std::unordered_set<NodeId> protected_now;
      std::vector<HeapEntry> deferred;
      for (std::size_t k = 0; k < sb_count; ++k) {
        const auto now = static_cast<std::uint32_t>(k);
        protected_now.clear();
        protected_now.insert(node_lists[k].begin(), node_lists[k].end());
        for (NodeId v : node_lists[k]) {
          if (sim_map.count(v) != 0) continue;  // hit: keyed after batch
          // Miss: evict the cached node with the farthest next use,
          // skipping stale heap entries and current-batch nodes.
          std::uint32_t slot;
          if (!free_slots.empty()) {
            slot = free_slots.back();
            free_slots.pop_back();
          } else {
            NodeId victim = 0;
            deferred.clear();
            for (;;) {
              GD_CHECK_MSG(!heap.empty(), "belady heap exhausted");
              auto [key, cand] = heap.top();
              heap.pop();
              auto hit = heap_key.find(cand);
              if (hit == heap_key.end() || hit->second != key) continue;
              if (sim_map.count(cand) == 0) continue;
              if (protected_now.count(cand) != 0) {
                deferred.push_back({key, cand});
                continue;
              }
              victim = cand;
              break;
            }
            for (const auto& entry : deferred) heap.push(entry);
            slot = sim_map[victim];
            sim_map.erase(victim);
            heap_key.erase(victim);
            plan.evictions[k].push_back(victim);
          }
          sim_map.emplace(v, slot);
          plan.loads[k].emplace_back(v, slot);
        }
        // Refresh keys for every batch member (hits and fresh loads).
        for (NodeId v : node_lists[k]) {
          const std::uint32_t nu = next_use_after(v, now);
          heap.push({nu, v});
          heap_key[v] = nu;
        }
      }
      stats.extract_seconds += to_seconds(Clock::now() - t0);
      GD_LOG_INFO("ginex inspect: %.3fs (readback %.3fs, %zu initial fill)",
                  to_seconds(Clock::now() - t0),
                  to_seconds(t_belady - t0), plan.initial_fill.size());
    }

    // ---- Phase 3: synchronous feature-cache initialization.
    {
      const TimePoint t0 = Clock::now();
      cache_map.clear();
      load_rows_into_cache(*ctx_.ssd, ctx_.telemetry, ds.layout(),
                           plan.initial_fill, /*depth=*/64, dim,
                           cache_storage_.data());
      for (const auto& [node, slot] : plan.initial_fill) {
        cache_map[node] = slot;
      }
      stats.extract_seconds += to_seconds(Clock::now() - t0);
      GD_LOG_INFO("ginex cache init: %.3fs", to_seconds(Clock::now() - t0));
    }

    // ---- Phase 4: train the superbatch.
    for (std::size_t k = 0; k < sb_count; ++k) {
      // Read the stored sampling result back from SSD.
      TimePoint t0 = Clock::now();
      std::vector<std::uint8_t> ser(spill_len[k]);
      bulk_io(*ctx_.ssd, ctx_.telemetry, /*write=*/false, spill_offset[k],
              ser.data(), spill_len[k], /*depth=*/16);
      SampledBatch batch = deserialize_batch(ser.data());

      // Apply the Belady plan: evictions then miss loads (synchronous,
      // multi-threaded-read-equivalent depth).
      for (NodeId v : plan.evictions[k]) cache_map.erase(v);
      load_rows_into_cache(*ctx_.ssd, ctx_.telemetry, ds.layout(),
                           plan.loads[k], config_.miss_ring_depth, dim,
                           cache_storage_.data());
      for (const auto& [node, slot] : plan.loads[k]) cache_map[node] = slot;

      // Gather the batch tensor from the feature cache.
      Tensor x0(static_cast<std::uint32_t>(batch.num_nodes()), dim);
      PinnedBytes batch_pin(*ctx_.host_mem, x0.bytes(), "ginex-batch-tensor");
      {
        BusyScope busy(ctx_.telemetry);
        for (std::uint32_t i = 0; i < batch.num_nodes(); ++i) {
          auto it = cache_map.find(batch.nodes[i]);
          GD_CHECK_MSG(it != cache_map.end(), "belady plan missed a node");
          std::memcpy(x0.row(i),
                      cache_storage_.data() +
                          static_cast<std::size_t>(it->second) * dim,
                      row_bytes);
        }
      }
      stats.extract_seconds += to_seconds(Clock::now() - t0);

      // Transfer + train.
      t0 = Clock::now();
      const TrainStats tr = trainer_->step(batch, x0);
      stats.train_seconds += to_seconds(Clock::now() - t0);
      stats.loss += tr.loss;
      stats.train_accuracy +=
          tr.total > 0
              ? static_cast<double>(tr.correct) / static_cast<double>(tr.total)
              : 0.0;
    }
  }

  stats.epoch_seconds = to_seconds(Clock::now() - t_epoch);
  if (n_batches > 0) {
    stats.loss /= static_cast<double>(n_batches);
    stats.train_accuracy /= static_cast<double>(n_batches);
  }
  return stats;
}

double Ginex::evaluate() {
  return evaluate_accuracy(trainer_->model(), *ctx_.dataset,
                           config_.common.sampler);
}

}  // namespace gnndrive
