// MariusGNN baseline (Waleffe et al., EuroSys'23).
//
// MariusGNN splits the graph into `P` partitions and trains only on data
// that is resident in an in-memory partition buffer, minimizing I/O *during*
// an epoch. The costs the paper measures come from its obligations around
// that design:
//  * **Data preparation** before every epoch: ordering a sequence of
//    partitions and rewriting/preloading partition data on disk — heavy,
//    mostly-sequential I/O on the critical path (Table 2: up to 46% of total
//    time). Modeled as ceil(P/c) shuffle passes over the feature+edge data
//    in small chunks at low queue depth, plus the initial buffer load.
//  * **Partition swaps** during the epoch as the buffer walks the ordering.
//  * **Restricted sampling**: neighbors outside the buffered partitions are
//    skipped (the accuracy risk the paper notes in Sect. 2).
//  * A minimum buffer residency: the ordering algorithm needs several
//    partitions resident at once; when c < kMinBufferPartitions the run
//    fails with OOM — this is how the Table 2 OOM rows (MAG240M at both
//    32 GB and 128 GB) arise.
#pragma once

#include "baselines/common.hpp"
#include "core/system.hpp"

namespace gnndrive {

struct MariusConfig {
  CommonTrainConfig common;
  std::uint32_t num_partitions = 24;
  double mem_frac = 0.85;  ///< fraction of host budget for the buffer
  std::uint32_t prep_chunk_bytes = 96 * 1024;
  unsigned prep_ring_depth = 2;  ///< prep I/O is nearly sequentialized
  /// While a partition's training nodes are active, the other buffer slots
  /// rotate through the remaining partitions so cross-partition edge
  /// buckets are covered — ceil((P-c)/c) companion-swap rounds per active
  /// partition (zero once everything fits in memory). This is the swap
  /// traffic that makes MariusGNN's *training* phase I/O-bound early in
  /// each epoch (Fig. 3c).
  bool companion_swaps = true;
  GpuConfig gpu;

  /// The BETA ordering needs several partitions resident simultaneously to
  /// cover the cross-partition edge buckets of a training step; below this
  /// the run fails (this is what makes MAG240M OOM at both 32 GB and 128 GB
  /// in Table 2 while Papers100M fits at 32 GB).
  static constexpr std::uint32_t kMinBufferPartitions = 6;
};

class MariusGnn final : public TrainSystem {
 public:
  /// Throws SimOutOfMemory when the partition buffer cannot hold the
  /// minimum number of partitions (Table 2 OOM behaviour).
  MariusGnn(const RunContext& ctx, MariusConfig config);

  const char* name() const override { return "MariusGNN"; }
  EpochStats run_epoch(std::uint64_t epoch) override;
  double evaluate() override;

  std::uint32_t buffer_capacity() const { return capacity_; }
  /// Partitions are defined over *physical* feature rows, so a partition is
  /// always one contiguous on-disk extent and load_partition stays one big
  /// sequential read under any compiled layout (src/layout). Under the
  /// identity layout this degenerates to the node-id split the paper
  /// describes; under a packed layout the membership (and hence the
  /// training trajectory) legitimately differs, but every gathered row is
  /// still the right node's bytes — differential-tested.
  std::uint32_t partition_of(NodeId v) const {
    return static_cast<std::uint32_t>(
        ctx_.dataset->layout().feature_row_of(v) / part_rows_);
  }

 private:
  void load_partition(std::uint32_t part, std::uint32_t buffer_slot);

  RunContext ctx_;
  MariusConfig config_;
  NeighborSampler sampler_;
  PinnedBytes metadata_pin_;
  PinnedBytes buffer_pin_;
  std::unique_ptr<GpuTrainer> trainer_;

  NodeId part_rows_ = 0;           ///< nodes per partition
  std::uint64_t part_bytes_ = 0;   ///< feature + edge bytes per partition
  std::uint32_t capacity_ = 0;     ///< partitions resident at once (c)
  std::vector<std::int32_t> slot_of_part_;  ///< -1 when not resident
  std::vector<float> buffer_;      ///< capacity_ x part_rows_ x dim
};

}  // namespace gnndrive
