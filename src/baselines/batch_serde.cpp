#include "baselines/batch_serde.hpp"

#include <cstring>

#include "util/common.hpp"

namespace gnndrive {

std::uint64_t serialized_batch_bytes(const SampledBatch& b) {
  std::uint64_t bytes = 4 * sizeof(std::uint64_t);  // header
  bytes += b.nodes.size() * sizeof(NodeId);
  bytes += b.labels.size() * sizeof(std::int32_t);
  for (const auto& blk : b.blocks) {
    bytes += 4 * sizeof(std::uint64_t);
    bytes += blk.edge_src.size() * 2 * sizeof(std::uint32_t);
  }
  return bytes;
}

void serialize_batch(const SampledBatch& b, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(serialized_batch_bytes(b));
  const auto push = [&out](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), bytes, bytes + n);
  };
  const std::uint64_t header[4] = {b.batch_id, b.num_seeds, b.nodes.size(),
                                   b.blocks.size()};
  push(header, sizeof(header));
  push(b.nodes.data(), b.nodes.size() * sizeof(NodeId));
  push(b.labels.data(), b.labels.size() * sizeof(std::int32_t));
  for (const auto& blk : b.blocks) {
    const std::uint64_t bh[4] = {blk.num_dst, blk.num_src,
                                 blk.edge_src.size(), 0};
    push(bh, sizeof(bh));
    push(blk.edge_src.data(), blk.edge_src.size() * sizeof(std::uint32_t));
    push(blk.edge_dst.data(), blk.edge_dst.size() * sizeof(std::uint32_t));
  }
}

SampledBatch deserialize_batch(const std::uint8_t* p) {
  SampledBatch b;
  const auto pull = [&p](void* dst, std::size_t n) {
    std::memcpy(dst, p, n);
    p += n;
  };
  std::uint64_t header[4];
  pull(header, sizeof(header));
  b.batch_id = header[0];
  b.num_seeds = static_cast<std::uint32_t>(header[1]);
  b.nodes.resize(header[2]);
  pull(b.nodes.data(), b.nodes.size() * sizeof(NodeId));
  b.labels.resize(b.num_seeds);
  pull(b.labels.data(), b.labels.size() * sizeof(std::int32_t));
  b.blocks.resize(header[3]);
  for (auto& blk : b.blocks) {
    std::uint64_t bh[4];
    pull(bh, sizeof(bh));
    blk.num_dst = static_cast<std::uint32_t>(bh[0]);
    blk.num_src = static_cast<std::uint32_t>(bh[1]);
    blk.edge_src.resize(bh[2]);
    blk.edge_dst.resize(bh[2]);
    pull(blk.edge_src.data(), blk.edge_src.size() * sizeof(std::uint32_t));
    pull(blk.edge_dst.data(), blk.edge_dst.size() * sizeof(std::uint32_t));
  }
  b.alias.assign(b.nodes.size(), kNoSlot);
  return b;
}

}  // namespace gnndrive
