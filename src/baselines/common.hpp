// Shared training executor for the baseline systems.
//
// PyG+, Ginex and MariusGNN all train on one GPU with a synchronous
// host-to-device transfer of the extracted mini-batch features on the
// critical path (unlike GNNDrive's asynchronous per-node transfers). This
// helper owns the simulated GPU, model and optimizer and performs that
// transfer + train step with honest device-memory accounting.
#pragma once

#include <memory>

#include "core/evaluate.hpp"
#include "core/system.hpp"
#include "gpu/gpu.hpp"

namespace gnndrive {

class GpuTrainer : NonCopyable {
 public:
  GpuTrainer(const RunContext& ctx, const CommonTrainConfig& common,
             const GpuConfig& gpu_config)
      : ctx_(ctx), adam_(common.adam) {
    ModelConfig mc = common.model;
    mc.in_dim = ctx.dataset->spec().feature_dim;
    mc.num_classes = ctx.dataset->spec().num_classes;
    mc.num_layers = static_cast<std::uint32_t>(common.sampler.fanouts.size());
    model_ = std::make_unique<GnnModel>(mc);
    gpu_ = std::make_unique<GpuDevice>(gpu_config, ctx.telemetry);
    model_state_ =
        DeviceAlloc(*gpu_, model_->param_state_bytes(), "model+adam");
  }

  /// Synchronously transfers the batch features to the device, then runs
  /// forward/backward/Adam as a GPU kernel. Throws SimOutOfMemory when the
  /// batch working set does not fit device memory.
  TrainStats step(const SampledBatch& batch, const Tensor& x0) {
    DeviceAlloc act(*gpu_, x0.bytes() + model_->activation_bytes(batch),
                    "batch-activations");
    gpu_->charge_h2d_sync(x0.bytes());
    TrainStats stats;
    gpu_->launch([&] {
      stats = model_->train_batch(batch, x0);
      adam_.step(model_->params());
      adam_.zero_grad(model_->params());
    });
    return stats;
  }

  GnnModel& model() { return *model_; }
  GpuDevice& gpu() { return *gpu_; }

 private:
  RunContext ctx_;
  std::unique_ptr<GpuDevice> gpu_;
  std::unique_ptr<GnnModel> model_;
  DeviceAlloc model_state_;
  Adam adam_;
};

}  // namespace gnndrive
