// PyG+ baseline (Park et al., VLDB'22 — the mmap-extended PyG used as a
// baseline by the paper).
//
// PyG+ memory-maps BOTH the topology and the feature table, so the sample
// and extract stages compete for the simulated OS page cache — the memory
// contention of Observation 1. Sampling and extraction run concurrently on
// DataLoader-style worker threads (each worker samples a mini-batch and then
// synchronously extracts its features through the page cache, blocking on
// every fault); the training thread synchronously transfers each batch to
// the GPU and trains. No custom caching, no asynchronous I/O.
#pragma once

#include "baselines/common.hpp"
#include "core/system.hpp"

namespace gnndrive {

struct PygPlusConfig {
  CommonTrainConfig common;
  std::uint32_t num_workers = 3;   ///< concurrent sample+extract workers
  std::uint32_t prefetch_cap = 3;  ///< ready-batch queue depth
  GpuConfig gpu;
};

class PygPlus final : public TrainSystem {
 public:
  PygPlus(const RunContext& ctx, PygPlusConfig config);

  const char* name() const override { return "PyG+"; }
  EpochStats run_epoch(std::uint64_t epoch) override;
  double evaluate() override;

 private:
  RunContext ctx_;
  PygPlusConfig config_;
  NeighborSampler sampler_;
  PinnedBytes metadata_pin_;
  std::unique_ptr<GpuTrainer> trainer_;
};

}  // namespace gnndrive
