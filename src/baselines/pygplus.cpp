#include "baselines/pygplus.hpp"

#include <atomic>
#include <thread>

#include "memsim/mmap_region.hpp"
#include "sampling/topology.hpp"
#include "util/queue.hpp"

namespace gnndrive {

PygPlus::PygPlus(const RunContext& ctx, PygPlusConfig config)
    : ctx_(ctx), config_(std::move(config)),
      sampler_(config_.common.sampler) {
  metadata_pin_ = PinnedBytes(*ctx_.host_mem,
                              ctx_.dataset->host_metadata_bytes(),
                              "pygplus-meta");
  trainer_ = std::make_unique<GpuTrainer>(ctx_, config_.common, config_.gpu);
}

EpochStats PygPlus::run_epoch(std::uint64_t epoch) {
  const Dataset& ds = *ctx_.dataset;
  const auto batches = make_minibatches(
      ds.train_nodes(), config_.common.batch_seeds,
      splitmix64(config_.common.run_seed ^ (epoch + 1)));
  const std::size_t n_batches = batches.size();

  struct Ready {
    SampledBatch batch;
    Tensor x0;
    PinnedBytes pin;  ///< transient host tensor accounting
  };
  BoundedQueue<Ready> ready_q(config_.prefetch_cap);

  std::atomic<std::size_t> next_batch{0};
  std::atomic<std::uint64_t> sample_ns{0};
  std::atomic<std::uint64_t> extract_ns{0};
  std::mutex err_mu;
  std::exception_ptr error;
  const auto capture_error = [&] {
    std::lock_guard lk(err_mu);
    if (!error) error = std::current_exception();
    ready_q.close();
  };

  EpochStats stats;
  stats.batches = n_batches;
  const TimePoint t0 = Clock::now();

  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
    workers.emplace_back([&] {
      try {
        MmapTopology topo(ds, *ctx_.page_cache);
        MmapRegion features(*ctx_.page_cache, ds.layout().features_offset,
                            ds.layout().features_bytes);
        const std::uint32_t dim = ds.spec().feature_dim;
        for (;;) {
          const std::size_t b = next_batch.fetch_add(1);
          if (b >= n_batches) break;

          TimePoint ts = Clock::now();
          SampledBatch batch;
          {
            BusyScope busy(ctx_.telemetry);
            batch = sampler_.sample(((epoch + 1) << 24) | b, batches[b],
                                    topo, &ds.labels());
          }
          sample_ns.fetch_add(static_cast<std::uint64_t>(
              to_seconds(Clock::now() - ts) * 1e9));
          if (config_.common.sample_only) continue;

          // Synchronous feature extraction through the page cache: every
          // node row is a potential page fault blocking this worker.
          ts = Clock::now();
          Ready ready;
          ready.x0.resize(static_cast<std::uint32_t>(batch.num_nodes()), dim);
          ready.pin = PinnedBytes(*ctx_.host_mem, ready.x0.bytes(),
                                  "pygplus-batch-tensor");
          for (std::uint32_t i = 0; i < batch.num_nodes(); ++i) {
            // feature_row_of routes through the installed layout plan so
            // the mmap path reads a packed store correctly too.
            features.read_bytes(
                ds.layout().feature_row_of(batch.nodes[i]) *
                    ds.layout().feature_row_bytes,
                ds.layout().feature_row_bytes, ready.x0.row(i));
          }
          ready.batch = std::move(batch);
          extract_ns.fetch_add(static_cast<std::uint64_t>(
              to_seconds(Clock::now() - ts) * 1e9));
          if (!ready_q.push(std::move(ready))) break;
        }
      } catch (...) {
        capture_error();
      }
    });
  }

  // Training thread role (run on this thread): synchronous transfer + train.
  if (!config_.common.sample_only) {
    try {
      for (std::size_t done = 0; done < n_batches; ++done) {
        auto ready = ready_q.pop();
        if (!ready.has_value()) break;
        const TimePoint ts = Clock::now();
        const TrainStats tr = trainer_->step(ready->batch, ready->x0);
        stats.train_seconds += to_seconds(Clock::now() - ts);
        stats.loss += tr.loss;
        stats.train_accuracy +=
            tr.total > 0
                ? static_cast<double>(tr.correct) / static_cast<double>(tr.total)
                : 0.0;
      }
    } catch (...) {
      capture_error();
    }
  }
  ready_q.close();
  for (auto& t : workers) t.join();
  {
    std::lock_guard lk(err_mu);
    if (error) std::rethrow_exception(error);
  }

  stats.epoch_seconds = to_seconds(Clock::now() - t0);
  stats.sample_seconds = static_cast<double>(sample_ns.load()) / 1e9;
  stats.extract_seconds = static_cast<double>(extract_ns.load()) / 1e9;
  if (n_batches > 0) {
    stats.loss /= static_cast<double>(n_batches);
    stats.train_accuracy /= static_cast<double>(n_batches);
  }
  return stats;
}

double PygPlus::evaluate() {
  return evaluate_accuracy(trainer_->model(), *ctx_.dataset,
                           config_.common.sampler);
}

}  // namespace gnndrive
