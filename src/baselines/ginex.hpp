// Ginex baseline (Park et al., VLDB'22).
//
// Ginex restructures SET training around *superbatches* (bundles of many
// mini-batches; 1500 in the paper, scaled here) and two pinned caches:
//  * a neighbor cache — adjacency of the hottest nodes, for sampling;
//  * a feature cache — managed with a provably optimal (Belady) replacement
//    policy computed in an *inspect* pass over the superbatch's sampling
//    results.
// The cost structure the paper measures comes from its phase sequence per
// superbatch:
//  1. sample every mini-batch up front and STORE the sampling results on the
//     SSD (extra write I/O, longer sampling);
//  2. inspect: read the results back, compute the Belady plan (CPU + I/O);
//  3. synchronously initialize the feature cache for this superbatch;
//  4. train: per mini-batch, read the stored sample back, serve hits from
//     the feature cache, load misses synchronously, transfer, train.
// All I/O on the training path is synchronous — Ginex still suffers the
// paper's Observation 2 (I/O congestion), just less than PyG+.
#pragma once

#include "baselines/common.hpp"
#include "core/system.hpp"
#include "sampling/topology.hpp"

namespace gnndrive {

struct GinexConfig {
  CommonTrainConfig common;
  /// Cache budgets as fractions of the host-memory budget. Defaults follow
  /// the paper's "caches occupy at least 85%" rule (6 GB neighbor + 24 GB
  /// feature on the 32 GB default box).
  double neighbor_cache_frac = 0.14;
  double feature_cache_frac = 0.66;
  std::uint32_t superbatch = 384;  ///< mini-batches per superbatch (scaled)
  std::uint32_t num_workers = 4;   ///< sampling-phase threads
  unsigned miss_ring_depth = 16;   ///< sync-multithread-equivalent I/O depth
  GpuConfig gpu;
};

class Ginex final : public TrainSystem {
 public:
  Ginex(const RunContext& ctx, GinexConfig config);

  const char* name() const override { return "Ginex"; }
  EpochStats run_epoch(std::uint64_t epoch) override;
  double evaluate() override;

  std::uint64_t feature_cache_rows() const { return cache_rows_; }
  const CachedTopology& neighbor_cache() const { return *neighbor_cache_; }

 private:
  struct Plan;  // Belady replacement plan for one superbatch

  RunContext ctx_;
  GinexConfig config_;
  NeighborSampler sampler_;
  PinnedBytes metadata_pin_;
  PinnedBytes neighbor_cache_pin_;
  PinnedBytes feature_cache_pin_;
  std::unique_ptr<CachedTopology> neighbor_cache_;
  std::unique_ptr<GpuTrainer> trainer_;

  std::uint64_t cache_rows_ = 0;
  std::vector<float> cache_storage_;  ///< feature cache payload
};

}  // namespace gnndrive
