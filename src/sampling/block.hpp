// Sampled mini-batch representation: message-flow blocks.
//
// A mini-batch is a list of unique nodes (seeds first) plus one bipartite
// block per GNN layer. Blocks are built from the seeds outward:
//   blocks[0]: dst = seeds                      (consumed by the LAST conv)
//   blocks[l]: dst = nodes[0 .. num_dst_l)      (frontier at layer l)
// Destination nodes of every block are a prefix of its source nodes, so a
// conv can always see a destination's own features (self connection).
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace gnndrive {

struct LayerBlock {
  std::uint32_t num_dst = 0;  ///< dst nodes are nodes[0..num_dst)
  std::uint32_t num_src = 0;  ///< src nodes are nodes[0..num_src)
  std::vector<std::uint32_t> edge_src;  ///< local src index per edge
  std::vector<std::uint32_t> edge_dst;  ///< local dst index per edge

  std::size_t num_edges() const { return edge_src.size(); }
};

struct SampledBatch {
  std::uint64_t batch_id = 0;
  std::uint32_t num_seeds = 0;
  std::vector<NodeId> nodes;        ///< unique global ids; seeds first
  std::vector<LayerBlock> blocks;   ///< blocks[0] dst = seeds
  std::vector<std::int32_t> labels; ///< seed labels
  /// Node alias list (Sect. 4.2): feature-buffer slot per node, filled by
  /// the extractor; -1 until then.
  std::vector<SlotId> alias;

  std::size_t num_nodes() const { return nodes.size(); }
};

}  // namespace gnndrive
