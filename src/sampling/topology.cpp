#include "sampling/topology.hpp"

#include <algorithm>
#include <numeric>

namespace gnndrive {

CachedTopology::CachedTopology(const Dataset& dataset, PageCache& cache,
                               std::uint64_t budget_bytes)
    : fallback_(dataset, cache) {
  // Rank nodes by degree (descending) and cache neighbor lists until the
  // budget is spent. Built at setup time straight from the image, like
  // Ginex's offline neighbor-cache construction pass.
  const NodeId n = dataset.spec().num_nodes;
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return dataset.in_degree(a) > dataset.in_degree(b);
  });
  for (NodeId v : order) {
    const std::uint64_t bytes = dataset.in_degree(v) * 8;
    if (bytes == 0) break;  // remaining nodes have no edges
    if (cached_bytes_ + bytes > budget_bytes) break;
    cached_.emplace(v, dataset.read_neighbors(v));
    cached_bytes_ += bytes;
  }
}

NodeId CachedTopology::neighbor_at(NodeId v, std::uint64_t j) {
  auto it = cached_.find(v);
  if (it != cached_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second[j];
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return fallback_.neighbor_at(v, j);
}

void CachedTopology::neighbors(NodeId v, std::vector<NodeId>& out) {
  auto it = cached_.find(v);
  if (it != cached_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    out.insert(out.end(), it->second.begin(), it->second.end());
    return;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  fallback_.neighbors(v, out);
}

}  // namespace gnndrive
