#include "sampling/sampler.hpp"

#include <unordered_map>

namespace gnndrive {

SampledBatch NeighborSampler::sample(
    std::uint64_t batch_id, const std::vector<NodeId>& seeds,
    TopologyReader& topo, const std::vector<std::int32_t>* labels) const {
  SampledBatch batch;
  batch.batch_id = batch_id;
  batch.num_seeds = static_cast<std::uint32_t>(seeds.size());

  Rng rng(splitmix64(config_.seed ^ (batch_id * 0x9E3779B97F4A7C15ull + 1)));

  std::unordered_map<NodeId, std::uint32_t> local;
  local.reserve(seeds.size() * 4);
  batch.nodes.reserve(seeds.size() * 4);
  for (NodeId s : seeds) {
    // Seeds are expected unique; duplicates would break the dst-prefix
    // convention, so they are deduplicated defensively.
    if (local.emplace(s, static_cast<std::uint32_t>(batch.nodes.size()))
            .second) {
      batch.nodes.push_back(s);
    }
  }
  batch.num_seeds = static_cast<std::uint32_t>(batch.nodes.size());

  auto local_id = [&](NodeId v) -> std::uint32_t {
    auto [it, inserted] =
        local.emplace(v, static_cast<std::uint32_t>(batch.nodes.size()));
    if (inserted) batch.nodes.push_back(v);
    return it->second;
  };

  std::vector<std::uint64_t> positions;
  std::vector<NodeId> all_neighbors;
  std::uint32_t frontier = batch.num_seeds;

  for (std::uint32_t fanout : config_.fanouts) {
    LayerBlock block;
    block.num_dst = frontier;
    for (std::uint32_t d = 0; d < frontier; ++d) {
      const NodeId v = batch.nodes[d];
      const std::uint64_t deg = topo.degree(v);
      if (deg == 0) continue;
      if (deg <= fanout) {
        // Take the full neighbor list (one contiguous on-disk read).
        all_neighbors.clear();
        topo.neighbors(v, all_neighbors);
        for (NodeId nb : all_neighbors) {
          block.edge_src.push_back(local_id(nb));
          block.edge_dst.push_back(d);
        }
      } else {
        // Floyd's algorithm: `fanout` distinct positions in [0, deg); each
        // position is an individual on-disk access, as mmap sampling does.
        positions.clear();
        for (std::uint64_t j = deg - fanout; j < deg; ++j) {
          std::uint64_t t = rng.next_below(j + 1);
          bool dup = false;
          for (std::uint64_t p : positions) {
            if (p == t) {
              dup = true;
              break;
            }
          }
          positions.push_back(dup ? j : t);
        }
        for (std::uint64_t p : positions) {
          const NodeId nb = topo.neighbor_at(v, p);
          block.edge_src.push_back(local_id(nb));
          block.edge_dst.push_back(d);
        }
      }
    }
    block.num_src = static_cast<std::uint32_t>(batch.nodes.size());
    frontier = block.num_src;
    batch.blocks.push_back(std::move(block));
  }

  if (labels != nullptr) {
    batch.labels.reserve(batch.num_seeds);
    for (std::uint32_t i = 0; i < batch.num_seeds; ++i) {
      batch.labels.push_back((*labels)[batch.nodes[i]]);
    }
  }
  batch.alias.assign(batch.nodes.size(), kNoSlot);
  return batch;
}

std::uint64_t NeighborSampler::max_nodes_per_batch(
    std::uint32_t batch_seeds) const {
  // Each layer expands the whole frontier (which includes all previous
  // layers, seeds first), so the bound multiplies by (1 + fanout) per layer.
  std::uint64_t total = batch_seeds;
  for (std::uint32_t fanout : config_.fanouts) {
    total *= (1 + static_cast<std::uint64_t>(fanout));
  }
  return total;
}

std::vector<std::vector<NodeId>> make_minibatches(
    const std::vector<NodeId>& train_nodes, std::uint32_t batch_size,
    std::uint64_t epoch_seed) {
  std::vector<NodeId> shuffled = train_nodes;
  Rng rng(splitmix64(epoch_seed ^ 0x5A5A5A5Aull));
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
  }
  std::vector<std::vector<NodeId>> batches;
  for (std::size_t start = 0; start < shuffled.size(); start += batch_size) {
    const std::size_t end = std::min(shuffled.size(),
                                     start + static_cast<std::size_t>(batch_size));
    batches.emplace_back(shuffled.begin() + start, shuffled.begin() + end);
  }
  return batches;
}

}  // namespace gnndrive
