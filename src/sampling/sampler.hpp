// Layered random neighborhood sampler.
//
// Implements the paper's k-hop random neighborhood sampling: for each node
// of the current frontier, pick min(fanout, degree) distinct in-neighbors.
// Deterministic given (seed, batch_id), independent of which sampler thread
// runs it — a requirement for the mini-batch-reordering convergence claim
// (Sect. 4.3) to be testable.
#pragma once

#include <vector>

#include "sampling/block.hpp"
#include "sampling/topology.hpp"
#include "util/rng.hpp"

namespace gnndrive {

struct SamplerConfig {
  std::vector<std::uint32_t> fanouts = {10, 10, 10};  ///< seeds outward
  std::uint64_t seed = 1;
};

class NeighborSampler {
 public:
  explicit NeighborSampler(SamplerConfig config)
      : config_(std::move(config)) {}

  /// Samples one mini-batch rooted at `seeds`. `labels` (per global node) is
  /// used to attach seed labels; pass nullptr to skip.
  SampledBatch sample(std::uint64_t batch_id, const std::vector<NodeId>& seeds,
                      TopologyReader& topo,
                      const std::vector<std::int32_t>* labels) const;

  /// Upper bound on nodes per batch for `batch_seeds` seeds — the paper's
  /// M_b used to reserve feature-buffer slots (Sect. 4.2).
  std::uint64_t max_nodes_per_batch(std::uint32_t batch_seeds) const;

  const SamplerConfig& config() const { return config_; }

 private:
  SamplerConfig config_;
};

/// Splits `train_nodes` into consecutive mini-batches of `batch_size` seeds,
/// shuffled per epoch with `epoch_seed`.
std::vector<std::vector<NodeId>> make_minibatches(
    const std::vector<NodeId>& train_nodes, std::uint32_t batch_size,
    std::uint64_t epoch_seed);

}  // namespace gnndrive
