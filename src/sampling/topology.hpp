// Topology access paths for the sample stage.
//
// All systems keep the CSC index-pointer array in host memory; they differ
// in how the (large, on-SSD) index array is reached:
//  * MmapTopology — through the simulated page cache, like PyG+ and
//    GNNDrive ("GNNDrive does memory-mapped sampling like PyG+"). This is
//    where memory contention bites: evicted topology pages fault through
//    the modeled device.
//  * InMemTopology — fully resident (tests, MariusGNN's buffered partitions).
//  * CachedTopology — Ginex's neighbor cache: neighbor lists of the
//    highest-degree nodes pinned in host memory, falling back to mmap.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/dataset.hpp"
#include "memsim/mmap_region.hpp"
#include "util/common.hpp"

namespace gnndrive {

class TopologyReader {
 public:
  virtual ~TopologyReader() = default;
  virtual std::uint64_t degree(NodeId v) const = 0;
  /// The j-th in-neighbor of v (j < degree(v)).
  virtual NodeId neighbor_at(NodeId v, std::uint64_t j) = 0;
  /// All in-neighbors of v appended to `out`.
  virtual void neighbors(NodeId v, std::vector<NodeId>& out) = 0;
};

/// On-disk int64 indices via an mmap'd region (page-cache mediated).
class MmapTopology final : public TopologyReader {
 public:
  MmapTopology(const Dataset& dataset, PageCache& cache)
      : indptr_(&dataset.indptr()),
        region_(cache, dataset.layout().indices_offset,
                dataset.layout().indices_bytes) {}

  std::uint64_t degree(NodeId v) const override {
    return (*indptr_)[v + 1] - (*indptr_)[v];
  }
  NodeId neighbor_at(NodeId v, std::uint64_t j) override {
    return static_cast<NodeId>(
        region_.read_at<std::int64_t>((*indptr_)[v] + j));
  }
  // Thread-safe: the page cache is internally synchronized and this reader
  // keeps no mutable state (shared across Ginex's sampling workers).
  void neighbors(NodeId v, std::vector<NodeId>& out) override {
    const std::uint64_t deg = degree(v);
    if (deg == 0) return;
    std::vector<std::int64_t> scratch(deg);
    region_.read_array<std::int64_t>((*indptr_)[v], deg, scratch.data());
    for (std::uint64_t j = 0; j < deg; ++j) {
      out.push_back(static_cast<NodeId>(scratch[j]));
    }
  }

 private:
  const std::vector<EdgeId>* indptr_;
  MmapRegion region_;
};

/// Fully in-memory CSC.
class InMemTopology final : public TopologyReader {
 public:
  explicit InMemTopology(const CscGraph& csc) : csc_(&csc) {}
  std::uint64_t degree(NodeId v) const override { return csc_->in_degree(v); }
  NodeId neighbor_at(NodeId v, std::uint64_t j) override {
    return csc_->indices[csc_->indptr[v] + j];
  }
  void neighbors(NodeId v, std::vector<NodeId>& out) override {
    for (EdgeId e = csc_->indptr[v]; e < csc_->indptr[v + 1]; ++e) {
      out.push_back(csc_->indices[e]);
    }
  }

 private:
  const CscGraph* csc_;
};

/// Ginex-style neighbor cache: hottest nodes' adjacency pinned in memory.
class CachedTopology final : public TopologyReader {
 public:
  /// Fills the cache greedily by descending degree until `budget_bytes` of
  /// neighbor data (8 B per edge, as stored on disk) is pinned.
  CachedTopology(const Dataset& dataset, PageCache& cache,
                 std::uint64_t budget_bytes);

  std::uint64_t degree(NodeId v) const override {
    return fallback_.degree(v);
  }
  NodeId neighbor_at(NodeId v, std::uint64_t j) override;
  void neighbors(NodeId v, std::vector<NodeId>& out) override;

  std::uint64_t cached_nodes() const { return cached_.size(); }
  std::uint64_t cached_bytes() const { return cached_bytes_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  // Read-only after construction except for the atomic hit counters, so one
  // instance can serve all of Ginex's sampling workers.
  MmapTopology fallback_;
  std::unordered_map<NodeId, std::vector<NodeId>> cached_;
  std::uint64_t cached_bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace gnndrive
