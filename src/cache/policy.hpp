// Hotness-aware feature-cache policy (pre-sampling admission + pinned hot
// partition).
//
// GNNDrive's FeatureBuffer recycles slots with a pure-LRU standby list
// (Sect. 4.2). On power-law graphs that discipline keeps evicting the hub
// nodes every mini-batch re-fetches: the access stream is dominated by a
// small set of high-degree nodes whose reuse distance still exceeds the
// standby depth. Frequency-aware admission (Ginex) and static hot-node
// partitions (BGL) recover most of the lost hits at near-zero runtime cost.
// This module implements the static-partition variant:
//
//   1. Pre-sampling. Run the *existing* sampler for a configurable number
//      of warm-up mini-batches — sampling only, no extraction or training —
//      and histogram per-node access frequency. Sampling is topology-bound
//      and orders of magnitude cheaper than extraction, so profiling B
//      batches costs roughly B × t_sample, not B × t_batch.
//   2. Hot partition. The top-K nodes by estimated frequency are read from
//      the SSD once (through the same coalescing planner as extraction) and
//      pinned into a dedicated slot region the eviction policy never
//      touches; the cold tail keeps the LRU standby list. The deadlock-
//      freedom invariant tightens to cold_slots >= Ne x Mb and the serve
//      pin budget is computed from the cold region.
//
// The profiling pass uses its own shuffle-seed and batch-id streams,
// disjoint from training's, so enabling the policy does not perturb any
// training RNG: extracted features and the loss trajectory stay
// byte-identical to policy=lru (differential-tested).
//
// The Belady oracle comparator lives next door in cache/belady.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/extract.hpp"
#include "core/feature_buffer.hpp"
#include "graph/dataset.hpp"
#include "sampling/sampler.hpp"

namespace gnndrive {

class PageCache;
class SsdDevice;
class Telemetry;

/// Slot-recycling policy for the feature buffer.
enum class CachePolicy {
  kLru,      ///< paper default: one LRU standby list over every slot
  kHotness,  ///< pre-sampled hot partition + LRU over the cold remainder
};

const char* cache_policy_name(CachePolicy policy);

struct CachePolicyConfig {
  CachePolicy policy = CachePolicy::kLru;
  /// Fraction of feature-buffer slots pinned for the hot partition (upper
  /// bound — the partition never exceeds the profiled candidate count).
  /// The pipeline REJECTS (std::invalid_argument) a fraction whose hot
  /// target would leave cold_slots < Ne x Mb: silently shrinking the
  /// partition would hide a misconfiguration, and growing the buffer or
  /// lowering the fraction is a deliberate sizing decision.
  double hot_fraction = 0.5;
  /// Warm-up mini-batches the profiling pass samples.
  std::uint32_t presample_batches = 64;
};

/// Throws std::invalid_argument on an unusable config (hot_fraction outside
/// [0,1], zero profiling batches with kHotness) — the construction-time
/// counterpart of the FeatureBuffer's own validation.
void validate_cache_config(const CachePolicyConfig& config);

/// Outcome of the pre-sampling pass.
struct PresampleResult {
  std::vector<NodeId> hot_nodes;  ///< top-K by frequency, ties by node id
  std::uint32_t batches_profiled = 0;
  std::uint64_t accesses = 0;      ///< sampled node occurrences, total
  std::uint64_t hot_accesses = 0;  ///< ... that fall in hot_nodes
  /// Fraction of the profiled access stream the hot set covers — the
  /// expected hot-hit rate if epoch access frequencies match the profile.
  double coverage() const {
    return accesses > 0 ? static_cast<double>(hot_accesses) /
                              static_cast<double>(accesses)
                        : 0.0;
  }
};

/// Runs the sampler for `num_batches` warm-up mini-batches over the
/// training split and returns the `max_hot` most frequently accessed nodes.
/// Deterministic per (dataset, sampler seed, run_seed); uses dedicated
/// shuffle/batch-id streams so training RNG state is untouched.
PresampleResult presample_hot_set(const Dataset& dataset,
                                  PageCache& page_cache,
                                  const SamplerConfig& sampler_config,
                                  std::uint32_t batch_seeds,
                                  std::uint64_t run_seed,
                                  std::uint32_t num_batches,
                                  std::uint64_t max_hot);

/// One-time hot-partition load accounting.
struct HotPrefetchStats {
  std::uint64_t reads = 0;  ///< coalesced SSD requests issued
  std::uint64_t rows = 0;   ///< feature rows loaded
  std::uint64_t bytes = 0;  ///< bytes read (sector-aligned covering ranges)
};

/// Pins `hot_nodes` into `fb`, reads their feature rows from the SSD once
/// (coalesced through plan_segments, direct I/O) and seals the partition.
/// Transient read errors retry per segment; an unrecoverable error throws
/// std::runtime_error (the buffer is then unusable for the hotness policy —
/// callers treat it as a startup failure, not a degraded mode).
HotPrefetchStats prefetch_hot_rows(FeatureBuffer& fb,
                                   const std::vector<NodeId>& hot_nodes,
                                   const Dataset& dataset, SsdDevice& ssd,
                                   const CoalesceConfig& coalesce,
                                   Telemetry* telemetry = nullptr);

}  // namespace gnndrive
