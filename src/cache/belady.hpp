// Belady (MIN) oracle comparator for the feature-cache A/B bench.
//
// Replays a recorded epoch-0 access trace through three cache simulators:
//
//   * simulate_lru      — mirrors the FeatureBuffer's standby discipline
//                         (nodes of the in-flight batch are referenced and
//                         unevictable; retired slots rejoin at the MRU end),
//   * simulate_hotness  — a pinned always-resident hot set over an LRU cold
//                         remainder of (slots - |hot|),
//   * simulate_belady   — Belady's optimal replacement: evict the resident
//                         node whose next use lies farthest in the future.
//
// The oracle knows the whole future and ignores the batch-pinning
// constraint real extraction must honour, so its hit rate is a (slightly
// optimistic) upper bound no realizable policy can beat — exactly the
// comparator role it plays in bench/cache_policy.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dataset.hpp"
#include "sampling/sampler.hpp"

namespace gnndrive {

class PageCache;

/// Per-mini-batch node access sets, in epoch order (deduplicated within a
/// batch, like a triaged load set).
using AccessTrace = std::vector<std::vector<NodeId>>;

/// Samples the exact mini-batch sequence run_epoch(epoch) would extract —
/// same shuffle seed (splitmix64(run_seed ^ (epoch+1))) and batch-id stream
/// (((epoch+1)<<24) | b) — and records each batch's node set. `max_batches`
/// truncates the trace (0 = whole epoch).
AccessTrace record_access_trace(const Dataset& dataset, PageCache& page_cache,
                                const SamplerConfig& sampler_config,
                                std::uint32_t batch_seeds,
                                std::uint64_t run_seed, std::uint64_t epoch,
                                std::uint32_t max_batches = 0);

struct CacheSimResult {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  double hit_rate() const {
    return lookups > 0
               ? static_cast<double>(hits) / static_cast<double>(lookups)
               : 0.0;
  }
};

/// LRU with the FeatureBuffer's batch semantics. Requires `slots` to cover
/// the largest batch (the real buffer's deadlock-freedom precondition).
CacheSimResult simulate_lru(const AccessTrace& trace, std::uint64_t slots);

/// Pinned hot set + LRU over the remaining (slots - hot.size()) slots.
CacheSimResult simulate_hotness(const AccessTrace& trace, std::uint64_t slots,
                                const std::vector<NodeId>& hot);

/// Belady's MIN over the flattened access stream.
CacheSimResult simulate_belady(const AccessTrace& trace, std::uint64_t slots);

}  // namespace gnndrive
