#include "cache/policy.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "aio/io_ring.hpp"
#include "memsim/page_cache.hpp"
#include "sampling/topology.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gnndrive {

namespace {

/// Profiling batch ids live far above training ((epoch+1)<<24 | b) and
/// serving (1<<48 | seq) so the sampler's per-batch RNG streams never
/// collide with either.
constexpr std::uint64_t kPresampleBatchBase = 1ull << 52;
/// Dedicated shuffle-seed salt: the profiled batch order is deterministic
/// per run_seed but distinct from every epoch shuffle
/// (splitmix64(run_seed ^ (epoch+1))).
constexpr std::uint64_t kPresampleShuffleSalt = 0x70726553616d7065ULL;

bool transient_error(std::int32_t res) {
  return res == -EIO || res == -ETIMEDOUT;
}

}  // namespace

const char* cache_policy_name(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kHotness:
      return "hotness";
  }
  return "?";
}

void validate_cache_config(const CachePolicyConfig& config) {
  if (!(config.hot_fraction >= 0.0 && config.hot_fraction <= 1.0)) {
    throw std::invalid_argument(
        "CachePolicyConfig: hot_fraction must lie in [0, 1], got " +
        std::to_string(config.hot_fraction));
  }
  if (config.policy == CachePolicy::kHotness &&
      config.presample_batches == 0) {
    throw std::invalid_argument(
        "CachePolicyConfig: the hotness policy needs presample_batches > 0 "
        "to estimate access frequencies");
  }
}

PresampleResult presample_hot_set(const Dataset& dataset,
                                  PageCache& page_cache,
                                  const SamplerConfig& sampler_config,
                                  std::uint32_t batch_seeds,
                                  std::uint64_t run_seed,
                                  std::uint32_t num_batches,
                                  std::uint64_t max_hot) {
  PresampleResult result;
  if (num_batches == 0 || max_hot == 0) return result;

  NeighborSampler sampler(sampler_config);
  MmapTopology topo(dataset, page_cache);
  const auto batches =
      make_minibatches(dataset.train_nodes(), batch_seeds,
                       splitmix64(run_seed ^ kPresampleShuffleSalt));
  const std::uint32_t to_profile = static_cast<std::uint32_t>(
      std::min<std::size_t>(num_batches, batches.size()));

  std::vector<std::uint32_t> freq(dataset.spec().num_nodes, 0);
  for (std::uint32_t b = 0; b < to_profile; ++b) {
    const SampledBatch batch =
        sampler.sample(kPresampleBatchBase | b, batches[b], topo, nullptr);
    for (NodeId v : batch.nodes) {
      ++freq[v];
      ++result.accesses;
    }
  }
  result.batches_profiled = to_profile;

  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < freq.size(); ++v) {
    if (freq[v] > 0) candidates.push_back(v);
  }
  const std::size_t k =
      std::min<std::size_t>(max_hot, candidates.size());
  const auto hotter = [&](NodeId a, NodeId b) {
    return freq[a] != freq[b] ? freq[a] > freq[b] : a < b;
  };
  std::partial_sort(candidates.begin(), candidates.begin() + k,
                    candidates.end(), hotter);
  candidates.resize(k);
  result.hot_nodes = std::move(candidates);
  for (NodeId v : result.hot_nodes) result.hot_accesses += freq[v];
  return result;
}

HotPrefetchStats prefetch_hot_rows(FeatureBuffer& fb,
                                   const std::vector<NodeId>& hot_nodes,
                                   const Dataset& dataset, SsdDevice& ssd,
                                   const CoalesceConfig& coalesce,
                                   Telemetry* telemetry) {
  HotPrefetchStats stats;
  if (hot_nodes.empty()) return stats;

  const std::vector<SlotId> slots = fb.pin_hot(hot_nodes);

  const OnDiskLayout& lay = dataset.layout();
  const auto row_bytes = static_cast<std::uint32_t>(lay.feature_row_bytes);
  // Same worst-case covering-row bound the extraction planner enforces.
  const auto covering = static_cast<std::uint32_t>(
      round_up(row_bytes, kSectorSize) +
      (row_bytes % kSectorSize == 0 ? 0 : kSectorSize));
  // Packed store (src/layout): a hotness/degree-compiled image places the
  // profiled hot set in one dense physical run, so the extraction-tuned
  // per-segment caps would only chop a single long run into hundreds of
  // 24 KiB reads. Widen to ~1 MiB segments with no row cap — the whole
  // prefetch becomes a handful of sequential reads. The identity path is
  // byte-for-byte the planner the extractors use.
  const bool packed = lay.row_perm != nullptr && coalesce.enabled;
  const std::uint32_t staging_row_bytes =
      packed ? std::max<std::uint32_t>(1u << 20, covering)
             : staging_row_bytes_for(coalesce, covering);
  const std::uint32_t max_rows =
      !coalesce.enabled ? 1
      : packed          ? std::numeric_limits<std::uint32_t>::max()
                        : coalesce.max_rows_per_read;
  const std::uint32_t max_gap = coalesce.enabled ? coalesce.max_gap_bytes : 0;

  std::vector<std::uint32_t> load_idx(hot_nodes.size());
  for (std::uint32_t i = 0; i < load_idx.size(); ++i) load_idx[i] = i;
  const SegmentPlan plan = plan_segments(load_idx, hot_nodes, lay, row_bytes,
                                         staging_row_bytes, max_rows, max_gap);
  const std::size_t n_seg = plan.segments.size();

  // One-shot windowed read loop: far simpler than extract_load_set because
  // slots are pre-pinned (no allocation, no cross-batch waiters) and a
  // permanent failure aborts the whole prefetch instead of degrading it.
  // With ~1 MiB packed segments a deep staging pool would cost 32 MiB of
  // host buffer for a prefetch that is a few reads total; 8 windows keep
  // the device busy.
  const std::uint32_t kStagingRows = packed ? 8 : 32;
  constexpr std::uint32_t kMaxAttempts = 3;
  IoRingConfig ring_cfg;
  ring_cfg.queue_depth = kStagingRows;
  ring_cfg.direct = true;
  ring_cfg.max_transfer_bytes = staging_row_bytes;
  IoRing ring(ssd, ring_cfg, nullptr, telemetry);
  std::vector<std::uint8_t> staging(
      static_cast<std::size_t>(kStagingRows) * staging_row_bytes);

  std::vector<std::uint32_t> free_rows;
  for (std::uint32_t r = 0; r < kStagingRows; ++r) free_rows.push_back(r);
  std::vector<std::uint32_t> row_of(n_seg, 0);
  std::vector<std::uint32_t> attempts(n_seg, 0);
  std::size_t submitted = 0;
  std::size_t resolved = 0;

  const auto submit_segment = [&](std::size_t s) {
    const SegmentPlan::Segment& seg = plan.segments[s];
    std::uint8_t* dst =
        staging.data() +
        static_cast<std::uint64_t>(row_of[s]) * staging_row_bytes;
    GD_CHECK(ring.prep_read(seg.base, seg.len, dst, s));
    ring.submit();
  };

  while (resolved < n_seg) {
    while (submitted < n_seg && !free_rows.empty()) {
      const std::size_t s = submitted++;
      row_of[s] = free_rows.back();
      free_rows.pop_back();
      ++attempts[s];
      ++stats.reads;
      stats.rows += plan.segments[s].num_rows;
      stats.bytes += plan.segments[s].len;
      submit_segment(s);
    }
    const auto cqe = ring.wait_cqe_for(std::chrono::milliseconds(100));
    if (!cqe.has_value()) {
      // A stalled device turns into -ETIMEDOUT completions we retry below.
      ring.cancel_expired(std::chrono::seconds(2));
      continue;
    }
    const std::size_t s = cqe->user_data;
    const SegmentPlan::Segment& seg = plan.segments[s];
    if (cqe->res < 0) {
      if (transient_error(cqe->res) && attempts[s] < kMaxAttempts) {
        ++attempts[s];
        submit_segment(s);  // keeps its staging row
        continue;
      }
      GD_LOG_WARN("hot_prefetch_failed res=%d segment=%zu attempts=%u",
                  cqe->res, s, attempts[s]);
      throw std::runtime_error(
          "hot-partition prefetch failed permanently (res=" +
          std::to_string(cqe->res) + ")");
    }
    const std::uint8_t* src =
        staging.data() +
        static_cast<std::uint64_t>(row_of[s]) * staging_row_bytes;
    for (std::uint32_t r = seg.first_row; r < seg.first_row + seg.num_rows;
         ++r) {
      const std::uint32_t pos = plan.rows[r].load_pos;
      std::memcpy(fb.slot_data(slots[pos]), src + plan.rows[r].seg_offset,
                  row_bytes);
      fb.mark_valid(hot_nodes[pos]);
    }
    free_rows.push_back(row_of[s]);
    ++resolved;
  }

  fb.seal_hot();
  return stats;
}

}  // namespace gnndrive
