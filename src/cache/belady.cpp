#include "cache/belady.hpp"

#include <algorithm>
#include <limits>
#include <list>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "memsim/page_cache.hpp"
#include "sampling/topology.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace gnndrive {

namespace {

/// Deduplicates one batch's node list, keeping first-occurrence order (the
/// order triage sees).
std::vector<NodeId> unique_nodes(const std::vector<NodeId>& nodes) {
  std::vector<NodeId> out;
  out.reserve(nodes.size());
  std::unordered_set<NodeId> seen;
  seen.reserve(nodes.size());
  for (NodeId v : nodes) {
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

/// LRU core shared by simulate_lru and the cold region of simulate_hotness.
/// `skip` (optional) marks always-resident nodes that bypass the cache.
CacheSimResult run_lru(const AccessTrace& trace, std::uint64_t slots,
                       const std::unordered_set<NodeId>* hot,
                       CacheSimResult seed) {
  CacheSimResult result = seed;
  // Residency + standby modelled on the real buffer: nodes of the current
  // batch hold references (unevictable); at batch end they retire to the
  // MRU end of the standby list.
  std::unordered_set<NodeId> resident;
  std::list<NodeId> standby;  // front = LRU, back = MRU
  std::unordered_map<NodeId, std::list<NodeId>::iterator> standby_pos;
  std::uint64_t occupied = 0;

  for (const auto& raw : trace) {
    const std::vector<NodeId> batch = unique_nodes(raw);
    std::vector<NodeId> mine;  // cold nodes this batch references
    mine.reserve(batch.size());
    for (NodeId v : batch) {
      if (hot != nullptr && hot->count(v) > 0) {
        ++result.lookups;
        ++result.hits;
        continue;  // pinned: always resident, never occupies a cold slot
      }
      ++result.lookups;
      mine.push_back(v);
      if (resident.count(v) > 0) {
        ++result.hits;
        const auto it = standby_pos.find(v);
        if (it != standby_pos.end()) {
          // Referenced again: leaves standby (cannot be reclaimed).
          standby.erase(it->second);
          standby_pos.erase(it);
        }
        continue;
      }
      // Miss: take a free slot or evict the LRU retired one.
      if (occupied < slots) {
        ++occupied;
      } else {
        GD_CHECK_MSG(!standby.empty(),
                     "cache simulation under-provisioned: batch larger than "
                     "the slot budget");
        const NodeId victim = standby.front();
        standby.pop_front();
        standby_pos.erase(victim);
        resident.erase(victim);
      }
      resident.insert(v);
    }
    // Release: this batch's nodes retire to the MRU end, in batch order.
    for (NodeId v : mine) {
      standby.push_back(v);
      standby_pos[v] = std::prev(standby.end());
    }
  }
  return result;
}

}  // namespace

AccessTrace record_access_trace(const Dataset& dataset, PageCache& page_cache,
                                const SamplerConfig& sampler_config,
                                std::uint32_t batch_seeds,
                                std::uint64_t run_seed, std::uint64_t epoch,
                                std::uint32_t max_batches) {
  NeighborSampler sampler(sampler_config);
  MmapTopology topo(dataset, page_cache);
  const auto batches =
      make_minibatches(dataset.train_nodes(), batch_seeds,
                       splitmix64(run_seed ^ (epoch + 1)));
  std::size_t n = batches.size();
  if (max_batches > 0) n = std::min<std::size_t>(n, max_batches);

  AccessTrace trace;
  trace.reserve(n);
  for (std::size_t b = 0; b < n; ++b) {
    SampledBatch batch =
        sampler.sample(((epoch + 1) << 24) | b, batches[b], topo, nullptr);
    trace.push_back(std::move(batch.nodes));
  }
  return trace;
}

CacheSimResult simulate_lru(const AccessTrace& trace, std::uint64_t slots) {
  return run_lru(trace, slots, nullptr, CacheSimResult{});
}

CacheSimResult simulate_hotness(const AccessTrace& trace, std::uint64_t slots,
                                const std::vector<NodeId>& hot) {
  GD_CHECK_MSG(hot.size() < slots,
               "simulate_hotness: hot set must leave cold slots");
  const std::unordered_set<NodeId> hot_set(hot.begin(), hot.end());
  return run_lru(trace, slots - hot_set.size(), &hot_set, CacheSimResult{});
}

CacheSimResult simulate_belady(const AccessTrace& trace, std::uint64_t slots) {
  // Flatten to one access stream (per-batch deduplicated, like triage).
  std::vector<NodeId> stream;
  for (const auto& raw : trace) {
    for (NodeId v : unique_nodes(raw)) stream.push_back(v);
  }
  const std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

  // next_use[i]: index of the next access of stream[i] after i.
  std::vector<std::uint64_t> next_use(stream.size(), kNever);
  std::unordered_map<NodeId, std::uint64_t> upcoming;
  for (std::uint64_t i = stream.size(); i-- > 0;) {
    const auto it = upcoming.find(stream[i]);
    if (it != upcoming.end()) next_use[i] = it->second;
    upcoming[stream[i]] = i;
  }

  CacheSimResult result;
  // Resident set ordered by next use; ties impossible (distinct positions;
  // kNever ties broken by node id).
  std::set<std::pair<std::uint64_t, NodeId>> by_next_use;
  std::unordered_map<NodeId, std::uint64_t> resident_next;  // node -> key
  for (std::uint64_t i = 0; i < stream.size(); ++i) {
    const NodeId v = stream[i];
    ++result.lookups;
    const auto it = resident_next.find(v);
    if (it != resident_next.end()) {
      ++result.hits;
      by_next_use.erase({it->second, v});
    } else if (resident_next.size() >= slots) {
      // Evict the resident node used farthest in the future (or never).
      const auto victim = std::prev(by_next_use.end());
      resident_next.erase(victim->second);
      by_next_use.erase(victim);
    }
    const std::uint64_t key = next_use[i] == kNever ? kNever - v : next_use[i];
    resident_next[v] = key;
    by_next_use.insert({key, v});
  }
  return result;
}

}  // namespace gnndrive
