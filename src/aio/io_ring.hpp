// io_uring-style asynchronous I/O ring over the simulated SSD.
//
// liburing is unavailable in this environment, so this module reproduces the
// programming model GNNDrive uses (Appendix A): a submission queue of SQEs
// filled by prep_read/prep_write, a submit() call that hands them to the
// device, and a completion queue of CQEs reaped with peek/wait. Exactly one
// thread drives a ring (as in the paper: one extractor owns the asynchronous
// extraction of a mini-batch), while completions arrive from the device
// thread.
//
// Two modes, matching O_DIRECT semantics:
//  * direct: requests bypass the page cache and must be 512 B-aligned in
//    offset and length; violations complete with res == -EINVAL.
//  * buffered: requests consume the simulated OS page cache (hits complete
//    without device service; misses fault through the device and leave the
//    pages resident) — the page-cache pollution GNNDrive avoids.
//
// Error handling: device failures (injected or real FileBackend errno)
// complete their CQEs with res < 0 instead of asserting. The ring tracks
// submission timestamps so a stage watchdog can cancel_expired() overdue
// requests — each cancelled request synthesizes a CQE with -ETIMEDOUT, and
// the device guarantees a cancelled request never touches its buffer (no
// use-after-reuse of staging rows).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "memsim/page_cache.hpp"
#include "storage/ssd.hpp"
#include "util/common.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

class Counter;
class ConcurrentHistogram;
class Gauge;

struct Cqe {
  std::uint64_t user_data = 0;
  std::int32_t res = 0;  ///< >=0: bytes transferred; <0: -errno.
};

struct IoRingConfig {
  unsigned queue_depth = 64;  ///< Max staged-but-unsubmitted SQEs.
  bool direct = true;         ///< O_DIRECT semantics.
  /// Upper bound on one request's length; longer (or zero-length) requests
  /// complete with -EINVAL, like a block layer's max_sectors_kb limit.
  /// 0 disables the cap (zero-length requests still fail). Callers that
  /// coalesce reads set this to their staging-row size so a planner bug
  /// can never scribble past a staging slot.
  std::uint32_t max_transfer_bytes = 0;
};

class IoRing : NonCopyable {
 public:
  /// `cache` is required in buffered mode (throws std::invalid_argument
  /// otherwise), ignored in direct mode.
  IoRing(SsdDevice& ssd, IoRingConfig config, PageCache* cache = nullptr,
         Telemetry* telemetry = nullptr);
  ~IoRing();

  /// Stages a read SQE. Returns false when the submission queue is full
  /// (submit() first, like io_uring_get_sqe returning NULL).
  bool prep_read(std::uint64_t offset, std::uint32_t len, void* buf,
                 std::uint64_t user_data);
  bool prep_write(std::uint64_t offset, std::uint32_t len, const void* buf,
                  std::uint64_t user_data);

  /// Submits all staged SQEs to the device; returns how many were submitted.
  unsigned submit();

  /// Non-blocking CQE reap.
  std::optional<Cqe> peek_cqe();

  /// Blocking CQE reap; the wait is attributed to TraceCat::kIoWait.
  Cqe wait_cqe();

  /// Bounded-wait CQE reap: returns nullopt when no CQE arrived within
  /// `timeout` (the watchdog poll primitive).
  std::optional<Cqe> wait_cqe_for(Duration timeout);

  /// Watchdog sweep: cancels every in-flight request submitted more than
  /// `timeout` ago whose device request is still cancellable, synthesizing a
  /// CQE with res == -ETIMEDOUT for each. Requests already completing on the
  /// device are left alone (their CQEs arrive normally). Returns the number
  /// of requests cancelled. Pass Duration::zero() to cancel everything
  /// cancellable (abort path).
  unsigned cancel_expired(Duration timeout);

  /// Number of submitted requests whose CQEs have not been reaped yet.
  unsigned in_flight() const;

  const IoRingConfig& config() const { return config_; }

 private:
  struct Sqe {
    SsdDevice::Op op;
    std::uint64_t offset;
    std::uint32_t len;
    void* buf;
    std::uint64_t user_data;
  };
  struct InFlight {
    std::uint64_t user_data = 0;
    std::uint64_t device_token = 0;  ///< 0 while the submit call is racing
    TimePoint submitted_at;
  };

  void complete(std::uint64_t ring_id, std::int32_t res);
  void submit_one(const Sqe& sqe);

  SsdDevice& ssd_;
  const IoRingConfig config_;
  PageCache* cache_;
  Telemetry* telemetry_;

  std::vector<Sqe> staged_;

  mutable std::mutex mu_;
  std::condition_variable cq_ready_;
  std::condition_variable all_done_;
  std::deque<Cqe> cq_;
  std::unordered_map<std::uint64_t, InFlight> inflight_;  ///< by ring id
  std::uint64_t next_ring_id_ = 1;
  unsigned in_flight_ = 0;
  unsigned draining_ = 0;  ///< device callbacks still inside complete()

  // Observability (resolved from telemetry's registry; null without it).
  // Multiple rings share the instruments: counters/histograms aggregate,
  // the in-flight gauge is updated with deltas so it sums across rings.
  Counter* m_submitted_ = nullptr;         ///< io.submitted
  ConcurrentHistogram* m_latency_ = nullptr;  ///< io.request_us
  Gauge* m_inflight_ = nullptr;            ///< io.inflight
};

}  // namespace gnndrive
