#include "aio/io_ring.hpp"

#include <cerrno>

#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace gnndrive {

IoRing::IoRing(SsdDevice& ssd, IoRingConfig config, PageCache* cache,
               Telemetry* telemetry)
    : ssd_(ssd), config_(config), cache_(cache), telemetry_(telemetry) {
  if (!config_.direct && cache_ == nullptr) {
    // Configuration error, not an internal invariant: report it to the
    // caller instead of aborting the process.
    throw std::invalid_argument("buffered IoRing requires a page cache");
  }
  staged_.reserve(config_.queue_depth);
  if (telemetry_ != nullptr) {
    MetricsRegistry& reg = *telemetry_->metrics();
    m_submitted_ = &reg.counter("io.submitted");
    m_latency_ = &reg.histogram("io.request_us");
    m_inflight_ = &reg.gauge("io.inflight");
  }
}

IoRing::~IoRing() {
  // Device completions capture `this`; wait for them before tearing down.
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [&] { return in_flight_ == 0 && draining_ == 0; });
}

bool IoRing::prep_read(std::uint64_t offset, std::uint32_t len, void* buf,
                       std::uint64_t user_data) {
  if (staged_.size() >= config_.queue_depth) return false;
  staged_.push_back(Sqe{SsdDevice::Op::kRead, offset, len, buf, user_data});
  return true;
}

bool IoRing::prep_write(std::uint64_t offset, std::uint32_t len,
                        const void* buf, std::uint64_t user_data) {
  if (staged_.size() >= config_.queue_depth) return false;
  staged_.push_back(Sqe{SsdDevice::Op::kWrite, offset, len,
                        const_cast<void*>(buf), user_data});
  return true;
}

void IoRing::complete(std::uint64_t ring_id, std::int32_t res) {
  std::uint64_t user_data;
  TimePoint submitted_at;
  {
    std::lock_guard lock(mu_);
    auto it = inflight_.find(ring_id);
    if (it == inflight_.end()) return;  // cancelled by the watchdog
    user_data = it->second.user_data;
    submitted_at = it->second.submitted_at;
    inflight_.erase(it);
    cq_.push_back(Cqe{user_data, res});
    --in_flight_;
    ++draining_;  // holds the destructor open past the touches below
  }
  if (m_latency_ != nullptr) {
    m_latency_->add_us(
        std::chrono::duration<double, std::micro>(Clock::now() - submitted_at)
            .count());
  }
  if (m_inflight_ != nullptr) m_inflight_->sub(1);
  if (res < 0 && telemetry_ != nullptr) {
    telemetry_->count(FaultCounter::kIoErrors);
  }
  // draining_ == 0 releases the destructor, so the decrement must be this
  // thread's last touch of the ring — and both notifies stay under the lock
  // so a woken waiter cannot destroy the condvars mid-notify.
  std::lock_guard lock(mu_);
  cq_ready_.notify_one();
  --draining_;
  if (in_flight_ == 0 && draining_ == 0) all_done_.notify_all();
}

void IoRing::submit_one(const Sqe& sqe) {
  std::uint64_t ring_id;
  {
    std::lock_guard lock(mu_);
    ring_id = next_ring_id_++;
    inflight_[ring_id] = InFlight{sqe.user_data, 0, Clock::now()};
  }
  if (config_.direct &&
      (sqe.offset % kSectorSize != 0 || sqe.len % kSectorSize != 0)) {
    // O_DIRECT alignment violation: fail the request like the kernel would,
    // without touching the device.
    complete(ring_id, -EINVAL);
    return;
  }
  if (sqe.len == 0 || (config_.max_transfer_bytes != 0 &&
                       sqe.len > config_.max_transfer_bytes)) {
    // Degenerate or oversized request (a coalescing-planner bug would show
    // up here): fail it before it can overrun the caller's buffer.
    complete(ring_id, -EINVAL);
    return;
  }
  if (!config_.direct && sqe.op == SsdDevice::Op::kRead &&
      cache_->try_read_resident(sqe.offset, sqe.len, sqe.buf)) {
    // Buffered read fully served by the page cache: completes immediately.
    complete(ring_id, static_cast<std::int32_t>(sqe.len));
    return;
  }
  const bool buffered = !config_.direct;
  const auto offset = sqe.offset;
  const auto len = sqe.len;
  const std::uint64_t token = ssd_.submit(
      sqe.op, sqe.offset, sqe.len, sqe.buf,
      [this, buffered, offset, len, ring_id](std::int32_t res) {
        if (buffered && res >= 0) cache_->note_resident(offset, len);
        complete(ring_id, res);
      });
  {
    // The completion may already have fired and erased the entry; only a
    // still-live entry learns its device token (needed for cancellation).
    std::lock_guard lock(mu_);
    auto it = inflight_.find(ring_id);
    if (it != inflight_.end()) it->second.device_token = token;
  }
}

unsigned IoRing::submit() {
  const unsigned n = static_cast<unsigned>(staged_.size());
  {
    std::lock_guard lock(mu_);
    in_flight_ += n;
  }
  if (n > 0) {
    if (m_submitted_ != nullptr) m_submitted_->add(n);
    if (m_inflight_ != nullptr) m_inflight_->add(n);
  }
  for (const Sqe& sqe : staged_) submit_one(sqe);
  staged_.clear();
  return n;
}

unsigned IoRing::cancel_expired(Duration timeout) {
  const TimePoint cutoff = Clock::now() - timeout;
  // Collect candidates first: try_cancel takes the device lock, and holding
  // mu_ across it is safe (the device thread never holds its lock while
  // calling complete()) but kept short anyway.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> candidates;
  {
    std::lock_guard lock(mu_);
    for (const auto& [ring_id, entry] : inflight_) {
      if (entry.device_token != 0 && entry.submitted_at <= cutoff) {
        candidates.emplace_back(ring_id, entry.device_token);
      }
    }
  }
  unsigned cancelled = 0;
  for (const auto& [ring_id, token] : candidates) {
    if (!ssd_.try_cancel(token)) continue;  // completing; CQE will arrive
    TimePoint submitted_at;
    {
      std::lock_guard lock(mu_);
      auto it = inflight_.find(ring_id);
      if (it == inflight_.end()) continue;  // raced with completion
      submitted_at = it->second.submitted_at;
      cq_.push_back(Cqe{it->second.user_data, -ETIMEDOUT});
      inflight_.erase(it);
      --in_flight_;
      if (in_flight_ == 0 && draining_ == 0) all_done_.notify_all();
    }
    if (m_latency_ != nullptr) {
      m_latency_->add_us(
          std::chrono::duration<double, std::micro>(Clock::now() -
                                                    submitted_at)
              .count());
    }
    if (m_inflight_ != nullptr) m_inflight_->sub(1);
    ++cancelled;
    if (telemetry_ != nullptr) {
      telemetry_->count(FaultCounter::kIoTimeouts);
      telemetry_->count(FaultCounter::kIoErrors);
    }
    cq_ready_.notify_one();
  }
  return cancelled;
}

std::optional<Cqe> IoRing::peek_cqe() {
  std::lock_guard lock(mu_);
  if (cq_.empty()) return std::nullopt;
  Cqe cqe = cq_.front();
  cq_.pop_front();
  return cqe;
}

Cqe IoRing::wait_cqe() {
  ScopedTrace trace(telemetry_, TraceCat::kIoWait);
  std::unique_lock lock(mu_);
  cq_ready_.wait(lock, [&] { return !cq_.empty(); });
  Cqe cqe = cq_.front();
  cq_.pop_front();
  return cqe;
}

std::optional<Cqe> IoRing::wait_cqe_for(Duration timeout) {
  ScopedTrace trace(telemetry_, TraceCat::kIoWait);
  std::unique_lock lock(mu_);
  if (!cq_ready_.wait_for(lock, timeout, [&] { return !cq_.empty(); })) {
    return std::nullopt;
  }
  Cqe cqe = cq_.front();
  cq_.pop_front();
  return cqe;
}

unsigned IoRing::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_ + static_cast<unsigned>(cq_.size());
}

}  // namespace gnndrive
