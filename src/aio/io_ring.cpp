#include "aio/io_ring.hpp"

namespace gnndrive {

namespace {
constexpr std::int32_t kEinval = -22;
}

IoRing::IoRing(SsdDevice& ssd, IoRingConfig config, PageCache* cache,
               Telemetry* telemetry)
    : ssd_(ssd), config_(config), cache_(cache), telemetry_(telemetry) {
  if (!config_.direct) {
    GD_CHECK_MSG(cache_ != nullptr, "buffered IoRing requires a page cache");
  }
  staged_.reserve(config_.queue_depth);
}

IoRing::~IoRing() {
  // Device completions capture `this`; wait for them before tearing down.
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [&] { return in_flight_ == 0; });
}

bool IoRing::prep_read(std::uint64_t offset, std::uint32_t len, void* buf,
                       std::uint64_t user_data) {
  if (staged_.size() >= config_.queue_depth) return false;
  staged_.push_back(Sqe{SsdDevice::Op::kRead, offset, len, buf, user_data});
  return true;
}

bool IoRing::prep_write(std::uint64_t offset, std::uint32_t len,
                        const void* buf, std::uint64_t user_data) {
  if (staged_.size() >= config_.queue_depth) return false;
  staged_.push_back(Sqe{SsdDevice::Op::kWrite, offset, len,
                        const_cast<void*>(buf), user_data});
  return true;
}

void IoRing::complete(std::uint64_t user_data, std::int32_t res) {
  {
    std::lock_guard lock(mu_);
    cq_.push_back(Cqe{user_data, res});
    --in_flight_;
    if (in_flight_ == 0) all_done_.notify_all();
  }
  cq_ready_.notify_one();
}

void IoRing::submit_one(const Sqe& sqe) {
  if (config_.direct &&
      (sqe.offset % kSectorSize != 0 || sqe.len % kSectorSize != 0)) {
    // O_DIRECT alignment violation: fail the request like the kernel would.
    complete(sqe.user_data, kEinval);
    return;
  }
  if (!config_.direct && sqe.op == SsdDevice::Op::kRead &&
      cache_->try_read_resident(sqe.offset, sqe.len, sqe.buf)) {
    // Buffered read fully served by the page cache: completes immediately.
    complete(sqe.user_data, static_cast<std::int32_t>(sqe.len));
    return;
  }
  const bool buffered = !config_.direct;
  const auto offset = sqe.offset;
  const auto len = sqe.len;
  const auto user_data = sqe.user_data;
  ssd_.submit(sqe.op, sqe.offset, sqe.len, sqe.buf,
              [this, buffered, offset, len, user_data] {
                if (buffered) cache_->note_resident(offset, len);
                complete(user_data, static_cast<std::int32_t>(len));
              });
}

unsigned IoRing::submit() {
  const unsigned n = static_cast<unsigned>(staged_.size());
  {
    std::lock_guard lock(mu_);
    in_flight_ += n;
  }
  for (const Sqe& sqe : staged_) submit_one(sqe);
  staged_.clear();
  return n;
}

std::optional<Cqe> IoRing::peek_cqe() {
  std::lock_guard lock(mu_);
  if (cq_.empty()) return std::nullopt;
  Cqe cqe = cq_.front();
  cq_.pop_front();
  return cqe;
}

Cqe IoRing::wait_cqe() {
  ScopedTrace trace(telemetry_, TraceCat::kIoWait);
  std::unique_lock lock(mu_);
  cq_ready_.wait(lock, [&] { return !cq_.empty(); });
  Cqe cqe = cq_.front();
  cq_.pop_front();
  return cqe;
}

unsigned IoRing::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_ + static_cast<unsigned>(cq_.size());
}

}  // namespace gnndrive
