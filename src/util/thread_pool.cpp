#include "util/thread_pool.hpp"

#include <atomic>

namespace gnndrive {

ThreadPool::ThreadPool(std::size_t num_threads) {
  GD_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  has_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push_back(std::move(task));
  }
  has_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [&] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(n, threads_.size());
  for (std::size_t w = 0; w < workers; ++w) {
    submit([&next, n, &fn] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      has_work_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace gnndrive
