#include "util/telemetry.hpp"

#include <algorithm>
#include <iterator>

#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace gnndrive {

namespace {
thread_local double tl_io_wait_seconds = 0.0;
}

double thread_io_wait_seconds() { return tl_io_wait_seconds; }
void add_thread_io_wait(double seconds) { tl_io_wait_seconds += seconds; }

Telemetry::Telemetry(double bucket_ms, std::size_t max_buckets)
    : bucket_ms_(bucket_ms), cells_(max_buckets),
      metrics_(std::make_unique<MetricsRegistry>()),
      tracer_(std::make_unique<SpanTracer>()),
      sampler_(std::make_unique<TimeSeriesSampler>(metrics_.get(),
                                                   tracer_.get())),
      attributor_(std::make_unique<BottleneckAttributor>()),
      slo_(std::make_unique<SloWatcher>()) {
  sampler_->set_on_tick(
      [slo = slo_.get()](const TimeSeriesSampler& ts) { slo->evaluate(ts); });
  for (auto& row : cells_) {
    for (auto& cell : row) cell.store(0, std::memory_order_relaxed);
  }
  static constexpr const char* kFaultNames[] = {
      "fault.io_errors", "fault.io_retries", "fault.io_timeouts",
      "fault.failed_batches"};
  static_assert(std::size(kFaultNames) ==
                static_cast<std::size_t>(FaultCounter::kCount));
  for (int i = 0; i < static_cast<int>(FaultCounter::kCount); ++i) {
    fault_counters_[i] = &metrics_->counter(kFaultNames[i]);
  }
}

Telemetry::~Telemetry() = default;

void Telemetry::count(FaultCounter c, std::uint64_t n) {
  counters_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  fault_counters_[static_cast<int>(c)]->add(n);
}

void Telemetry::set_tracing(bool on) { tracer_->set_enabled(on); }
bool Telemetry::tracing() const { return tracer_->enabled(); }

void Telemetry::start() {
  t0_ = Clock::now();
  hi_bucket_.store(0, std::memory_order_relaxed);
  started_.store(true, std::memory_order_release);
}

void Telemetry::record(TraceCat cat, TimePoint begin, TimePoint end) {
  if (!started() || end <= begin) return;
  if (begin < t0_) begin = t0_;
  if (end <= t0_) return;

  const double bucket_ns = bucket_ms_ * 1e6;
  const auto rel_begin = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(begin - t0_)
          .count());
  const auto rel_end = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - t0_).count());

  std::size_t b = static_cast<std::size_t>(rel_begin / bucket_ns);
  const std::size_t b_end = static_cast<std::size_t>(rel_end / bucket_ns);
  const int c = static_cast<int>(cat);
  double cursor = rel_begin;
  while (b < cells_.size()) {
    const double bucket_hi = static_cast<double>(b + 1) * bucket_ns;
    const double slice = std::min(rel_end, bucket_hi) - cursor;
    if (slice > 0) {
      cells_[b][c].fetch_add(static_cast<std::uint64_t>(slice),
                             std::memory_order_relaxed);
    }
    if (b >= b_end) break;
    cursor = bucket_hi;
    ++b;
  }
  std::size_t hi = std::min(b_end, cells_.size() - 1);
  std::size_t cur = hi_bucket_.load(std::memory_order_relaxed);
  while (cur < hi &&
         !hi_bucket_.compare_exchange_weak(cur, hi, std::memory_order_relaxed)) {
  }
}

std::vector<Telemetry::Bucket> Telemetry::snapshot() const {
  const std::size_t n =
      std::min(hi_bucket_.load(std::memory_order_relaxed) + 1, cells_.size());
  std::vector<Bucket> out;
  out.reserve(n);
  for (std::size_t b = 0; b < n; ++b) {
    Bucket bk;
    bk.t_seconds = static_cast<double>(b) * bucket_ms_ / 1e3;
    bk.cpu_busy = static_cast<double>(
                      cells_[b][0].load(std::memory_order_relaxed)) /
                  1e9;
    bk.io_wait = static_cast<double>(
                     cells_[b][1].load(std::memory_order_relaxed)) /
                 1e9;
    bk.gpu_busy = static_cast<double>(
                      cells_[b][2].load(std::memory_order_relaxed)) /
                  1e9;
    out.push_back(bk);
  }
  return out;
}

double Telemetry::total_seconds(TraceCat cat) const {
  const int c = static_cast<int>(cat);
  std::uint64_t total = 0;
  const std::size_t n =
      std::min(hi_bucket_.load(std::memory_order_relaxed) + 1, cells_.size());
  for (std::size_t b = 0; b < n; ++b) {
    total += cells_[b][c].load(std::memory_order_relaxed);
  }
  return static_cast<double>(total) / 1e9;
}

}  // namespace gnndrive
