// Bounded blocking multi-producer/multi-consumer queue.
//
// This is the "middle-person" primitive of the GNNDrive pipeline (Sect. 4.1):
// the extracting, training and releasing queues are all instances. Producers
// block when the queue is full (the paper: "samplers and extractors would be
// blocked if corresponding queues are full"); consumers block when empty.
// close() releases all waiters, letting stages drain and terminate cleanly.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/common.hpp"

namespace gnndrive {

template <typename T>
class BoundedQueue : NonCopyable {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    GD_CHECK(capacity > 0);
  }

  /// Blocks until space is available. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Like push(), but hands the item back instead of dropping it when the
  /// queue is closed, so the caller can dispose of it (e.g. release feature
  /// references during an epoch abort). nullopt means the push succeeded.
  std::optional<T> push_or_reclaim(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return std::optional<T>(std::move(item));
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return std::nullopt;
  }

  /// Blocks until an item is available. Empty optional means closed & drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; empty optional when nothing is ready.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all blocked producers/consumers; subsequent pushes fail and pops
  /// drain the remaining items then return nullopt.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Re-arms a closed queue for reuse (e.g. the next training epoch).
  /// Concurrency: a push/pop racing with a close()/reopen() pair either
  /// observes the closed window (push returns false / pop drains to nullopt)
  /// or completes normally — items are never lost or duplicated either way.
  /// Waiters are re-notified so anyone who slept through the window
  /// re-evaluates against the reopened state instead of blocking forever.
  void reopen() {
    {
      std::lock_guard lock(mu_);
      closed_ = false;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gnndrive
