// Bounded blocking multi-producer/multi-consumer queue.
//
// This is the "middle-person" primitive of the GNNDrive pipeline (Sect. 4.1):
// the extracting, training and releasing queues are all instances. Producers
// block when the queue is full (the paper: "samplers and extractors would be
// blocked if corresponding queues are full"); consumers block when empty.
// close() releases all waiters, letting stages drain and terminate cleanly.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "util/common.hpp"

namespace gnndrive {

template <typename T>
class BoundedQueue : NonCopyable {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    GD_CHECK(capacity > 0);
  }

  /// Observability: publishes the queue depth into `depth` (updated under
  /// the queue lock) and counts producer/consumer blocking events. All
  /// pointers optional; the bound instruments must outlive the queue.
  void bind_metrics(Gauge* depth, Counter* push_blocked = nullptr,
                    Counter* pop_blocked = nullptr) {
    std::lock_guard lock(mu_);
    depth_ = depth;
    push_blocked_ = push_blocked;
    pop_blocked_ = pop_blocked;
    if (depth_ != nullptr) depth_->set(static_cast<std::int64_t>(items_.size()));
  }

  /// Blocks until space is available. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    if (push_blocked_ != nullptr && items_.size() >= capacity_ && !closed_) {
      push_blocked_->add();
    }
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    note_depth_locked();
    not_empty_.notify_one();
    return true;
  }

  /// Like push(), but hands the item back instead of dropping it when the
  /// queue is closed, so the caller can dispose of it (e.g. release feature
  /// references during an epoch abort). nullopt means the push succeeded.
  std::optional<T> push_or_reclaim(T item) {
    std::unique_lock lock(mu_);
    if (push_blocked_ != nullptr && items_.size() >= capacity_ && !closed_) {
      push_blocked_->add();
    }
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return std::optional<T>(std::move(item));
    items_.push_back(std::move(item));
    note_depth_locked();
    not_empty_.notify_one();
    return std::nullopt;
  }

  /// Blocks until an item is available. Empty optional means closed & drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    if (pop_blocked_ != nullptr && items_.empty() && !closed_) {
      pop_blocked_->add();
    }
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    note_depth_locked();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; empty optional when nothing is ready.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    note_depth_locked();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking push: false when the queue is full or closed (the item is
  /// handed back untouched in that case). This is the admission-control
  /// primitive of the serving path — a full queue sheds instead of blocking
  /// the client.
  bool try_push(T& item) {
    std::lock_guard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    note_depth_locked();
    not_empty_.notify_one();
    return true;
  }

  /// Timed pop: blocks until an item arrives, the queue closes, or `timeout`
  /// elapses, whichever comes first. An item that is already queued (or
  /// arrives within the window) is always returned in preference to the
  /// timeout — a wakeup racing the deadline re-checks the queue under the
  /// lock before giving up. Empty optional means timeout, or closed and
  /// drained; distinguish via closed() if needed. Used by the micro-batch
  /// coalescer's max-wait window and usable by watchdog polls.
  std::optional<T> try_pop_for(Duration timeout) {
    std::unique_lock lock(mu_);
    if (pop_blocked_ != nullptr && items_.empty() && !closed_) {
      pop_blocked_->add();
    }
    not_empty_.wait_for(lock, timeout,
                        [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    note_depth_locked();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all blocked producers/consumers; subsequent pushes fail and pops
  /// drain the remaining items then return nullopt.
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Re-arms a closed queue for reuse (e.g. the next training epoch).
  /// Concurrency: a push/pop racing with a close()/reopen() pair either
  /// observes the closed window (push returns false / pop drains to nullopt)
  /// or completes normally — items are never lost or duplicated either way.
  /// Waiters are re-notified so anyone who slept through the window
  /// re-evaluates against the reopened state instead of blocking forever.
  void reopen() {
    {
      std::lock_guard lock(mu_);
      closed_ = false;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }
  /// Deepest the queue has ever been (for end-of-epoch reports; queues are
  /// created per epoch, so no reset is needed).
  std::size_t max_size() const {
    std::lock_guard lock(mu_);
    return max_size_;
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  void note_depth_locked() {
    max_size_ = std::max(max_size_, items_.size());
    if (depth_ != nullptr) depth_->set(static_cast<std::int64_t>(items_.size()));
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t max_size_ = 0;
  bool closed_ = false;
  Gauge* depth_ = nullptr;
  Counter* push_blocked_ = nullptr;
  Counter* pop_blocked_ = nullptr;
};

}  // namespace gnndrive
