// Fixed-size thread pool with a simple blocking task queue.
//
// GNNDrive's own pipeline uses dedicated stage threads; the pool serves the
// baselines (multi-threaded synchronous extraction in PyG+/Ginex, mirroring
// the paper's ">2x physical cores for I/O-intensive operations" setup) and
// parallel-for helpers in tests and benches.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace gnndrive {

class ThreadPool : NonCopyable {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  /// Enqueues a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable has_work_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gnndrive
