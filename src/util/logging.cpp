#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gnndrive {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("GNNDRIVE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};

constexpr const char* kNames[] = {"ERROR", "WARN", "INFO", "DEBUG"};

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_structured(LogLevel level, const char* event,
                    std::initializer_list<LogField> fields) {
  if (level > log_level()) return;
  std::string line = event;
  for (const LogField& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    line += f.value;
  }
  log_at(level, "%s", line.c_str());
}

void log_at(LogLevel level, const char* fmt, ...) {
  if (level > log_level()) return;
  char line[1024];
  int off = std::snprintf(line, sizeof(line), "[%s] ",
                          kNames[static_cast<int>(level)]);
  va_list args;
  va_start(args, fmt);
  off += std::vsnprintf(line + off, sizeof(line) - off - 2, fmt, args);
  va_end(args);
  if (off > static_cast<int>(sizeof(line)) - 2) off = sizeof(line) - 2;
  line[off] = '\n';
  line[off + 1] = '\0';
  std::fputs(line, stderr);
}

}  // namespace gnndrive
