// Time-bucketed activity tracing.
//
// The paper's Figures 3 and 11 plot CPU utilization, GPU utilization and the
// ratio of I/O wait time over a window of three epochs. On the real testbed
// these come from OS counters; in the simulation every thread reports its
// busy/blocked intervals here instead, bucketed on a wall-clock grid, and the
// benches turn the buckets into the same utilization series.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/common.hpp"

namespace gnndrive {

class BottleneckAttributor;
class Counter;
class MetricsRegistry;
class SloWatcher;
class SpanTracer;
class TimeSeriesSampler;

enum class TraceCat : int {
  kCpuBusy = 0,   ///< Thread doing computation (sampling, training math, ...).
  kIoWait = 1,    ///< Thread blocked waiting for storage I/O completion.
  kGpuBusy = 2,   ///< Simulated GPU executing compute or copies.
  kCount = 3,
};

/// Monotonic event counters for the fault-tolerance layer, so benches can
/// print fault-mode summaries next to the utilization series.
enum class FaultCounter : int {
  kIoErrors = 0,      ///< error CQEs observed by ring consumers
  kIoRetries = 1,     ///< reads re-submitted after a transient failure
  kIoTimeouts = 2,    ///< requests cancelled by a stage watchdog
  kFailedBatches = 3, ///< mini-batches abandoned after exhausting retries
  kCount = 4,
};

/// One activity trace. Not a singleton: each experiment owns one and wires it
/// into the components it wants profiled. Thread-safe via atomics.
class Telemetry {
 public:
  /// `bucket_ms`: grid width; `max_buckets`: trace length cap.
  explicit Telemetry(double bucket_ms = 100.0, std::size_t max_buckets = 8192);
  ~Telemetry();

  /// Marks t=0 of the trace. Intervals before start() are dropped.
  void start();
  bool started() const { return started_.load(std::memory_order_acquire); }

  /// Records that `cat` was active during [begin, end); the interval is
  /// apportioned across the buckets it overlaps.
  void record(TraceCat cat, TimePoint begin, TimePoint end);

  struct Bucket {
    double t_seconds;  ///< Bucket start relative to trace start.
    double cpu_busy;   ///< Busy thread-seconds in this bucket.
    double io_wait;
    double gpu_busy;
  };
  /// Snapshot of all buckets up to the last one touched.
  std::vector<Bucket> snapshot() const;

  double bucket_seconds() const { return bucket_ms_ / 1e3; }

  /// Total seconds recorded per category (for summary ratios).
  double total_seconds(TraceCat cat) const;

  /// Fault/retry/timeout counters (independent of start(); always active).
  /// Also mirrored into the metrics registry under "fault.*" names.
  void count(FaultCounter c, std::uint64_t n = 1);
  std::uint64_t counter(FaultCounter c) const {
    return counters_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }

  // -- Observability subsystem (src/obs) ------------------------------------
  // The telemetry object is the one handle every component already receives,
  // so it also owns the unified metrics registry and the per-batch span
  // tracer. Metrics are always live (relaxed atomics, negligible); span
  // recording is gated on the single set_tracing() flag and is near-zero
  // cost while off (one relaxed load per would-be record).

  /// Named counters/gauges/histograms shared by all instrumented components.
  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Per-mini-batch span tracer (Chrome trace export). Never null.
  SpanTracer* tracer() { return tracer_.get(); }
  const SpanTracer* tracer() const { return tracer_.get(); }

  /// Master switch for span recording and the pipeline's periodic
  /// queue/buffer sampling. Off by default.
  void set_tracing(bool on);
  bool tracing() const;

  /// Registry time-series sampler (runs only while leased; the pipeline,
  /// serve engine and HTTP endpoint each hold a lease while active). Its
  /// on_tick hook is wired to the SLO watcher. Never null.
  TimeSeriesSampler* sampler() { return sampler_.get(); }
  const TimeSeriesSampler* sampler() const { return sampler_.get(); }

  /// Bottleneck attributor (epoch reports published by the pipeline; the
  /// /attribution route reads it). Never null.
  BottleneckAttributor* attributor() { return attributor_.get(); }
  const BottleneckAttributor* attributor() const { return attributor_.get(); }

  /// Threshold rules over the time-series; evaluated every sampler tick.
  /// Never null.
  SloWatcher* slo() { return slo_.get(); }
  const SloWatcher* slo() const { return slo_.get(); }

 private:
  const double bucket_ms_;
  std::atomic<bool> started_{false};
  TimePoint t0_{};
  std::atomic<std::size_t> hi_bucket_{0};
  // nanoseconds per (bucket, category)
  std::vector<std::array<std::atomic<std::uint64_t>, 3>> cells_;
  std::array<std::atomic<std::uint64_t>, static_cast<int>(FaultCounter::kCount)>
      counters_{};
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<SpanTracer> tracer_;
  std::unique_ptr<TimeSeriesSampler> sampler_;
  std::unique_ptr<BottleneckAttributor> attributor_;
  std::unique_ptr<SloWatcher> slo_;
  /// Registry mirrors of the FaultCounter slots, resolved at construction.
  std::array<Counter*, static_cast<int>(FaultCounter::kCount)>
      fault_counters_{};
};

/// Thread-local accumulator of I/O-wait seconds, so compute scopes can
/// subtract time the thread actually spent blocked on storage.
double thread_io_wait_seconds();
void add_thread_io_wait(double seconds);

/// RAII helper: records the lifetime of the scope under `cat`.
class ScopedTrace : NonCopyable {
 public:
  ScopedTrace(Telemetry* t, TraceCat cat)
      : t_(t), cat_(cat), begin_(Clock::now()) {}
  ~ScopedTrace() {
    const TimePoint end = Clock::now();
    if (cat_ == TraceCat::kIoWait) {
      add_thread_io_wait(to_seconds(end - begin_));
    }
    if (t_ != nullptr && t_->started()) t_->record(cat_, begin_, end);
  }

 private:
  Telemetry* t_;
  TraceCat cat_;
  TimePoint begin_;
};

/// RAII helper for CPU work that may block on I/O inside: records the scope
/// duration *minus* the I/O wait accumulated within it as kCpuBusy, so the
/// utilization plots show CPU dropping while I/O wait rises (Figs. 3/11).
class BusyScope : NonCopyable {
 public:
  BusyScope(Telemetry* t, TraceCat cat = TraceCat::kCpuBusy)
      : t_(t), cat_(cat), begin_(Clock::now()),
        io_at_begin_(thread_io_wait_seconds()) {}
  ~BusyScope() {
    const TimePoint end = Clock::now();
    if (t_ == nullptr || !t_->started()) return;
    const double io = thread_io_wait_seconds() - io_at_begin_;
    const double busy = to_seconds(end - begin_) - io;
    if (busy > 0) {
      t_->record(cat_, begin_, begin_ + from_us(busy * 1e6));
    }
  }

 private:
  Telemetry* t_;
  TraceCat cat_;
  TimePoint begin_;
  double io_at_begin_;
};

}  // namespace gnndrive
