// Minimal leveled logger. Controlled by the GNNDRIVE_LOG env var
// (error|warn|info|debug); defaults to warn so tests and benches stay quiet.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <type_traits>

namespace gnndrive {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// printf-style logging; thread-safe (single atomic write per line).
void log_at(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define GD_LOG_ERROR(...) ::gnndrive::log_at(::gnndrive::LogLevel::kError, __VA_ARGS__)
#define GD_LOG_WARN(...)  ::gnndrive::log_at(::gnndrive::LogLevel::kWarn, __VA_ARGS__)
#define GD_LOG_INFO(...)  ::gnndrive::log_at(::gnndrive::LogLevel::kInfo, __VA_ARGS__)
#define GD_LOG_DEBUG(...) ::gnndrive::log_at(::gnndrive::LogLevel::kDebug, __VA_ARGS__)

// -- Structured logging -------------------------------------------------------
// Emits "event key=value key=value ..." lines whose field names match the
// span/metric vocabulary (batch, epoch, ...), so a pipeline warning can be
// joined against the Chrome trace by batch id. Example:
//
//   log_structured(LogLevel::kWarn, "batch_failed",
//                  {kv("batch", b.batch_id), kv("epoch", epoch),
//                   kv("io_errors", errs)});
//   -> [WARN] batch_failed batch=417 epoch=2 io_errors=3

/// One key=value field; build with the kv() overloads below.
struct LogField {
  const char* key;
  std::string value;
};

inline LogField kv(const char* key, const char* value) {
  return {key, std::string(value)};
}
inline LogField kv(const char* key, const std::string& value) {
  return {key, value};
}
inline LogField kv(const char* key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return {key, std::string(buf)};
}
inline LogField kv(const char* key, bool value) {
  return {key, std::string(value ? "true" : "false")};
}
template <typename T,
          typename = std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>>>
inline LogField kv(const char* key, T value) {
  return {key, std::to_string(value)};
}

/// Formats and writes one structured line (thread-safe, same sink and level
/// gate as log_at).
void log_structured(LogLevel level, const char* event,
                    std::initializer_list<LogField> fields);

}  // namespace gnndrive
