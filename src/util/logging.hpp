// Minimal leveled logger. Controlled by the GNNDRIVE_LOG env var
// (error|warn|info|debug); defaults to warn so tests and benches stay quiet.
#pragma once

#include <cstdarg>

namespace gnndrive {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// printf-style logging; thread-safe (single atomic write per line).
void log_at(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define GD_LOG_ERROR(...) ::gnndrive::log_at(::gnndrive::LogLevel::kError, __VA_ARGS__)
#define GD_LOG_WARN(...)  ::gnndrive::log_at(::gnndrive::LogLevel::kWarn, __VA_ARGS__)
#define GD_LOG_INFO(...)  ::gnndrive::log_at(::gnndrive::LogLevel::kInfo, __VA_ARGS__)
#define GD_LOG_DEBUG(...) ::gnndrive::log_at(::gnndrive::LogLevel::kDebug, __VA_ARGS__)

}  // namespace gnndrive
