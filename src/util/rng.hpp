// Fast deterministic RNG (SplitMix64 seeding + xoshiro256**) used everywhere
// randomness is needed: graph generation, feature synthesis, sampling.
// Deterministic per seed so every experiment is reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace gnndrive {

/// One step of SplitMix64; also useful as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The full 256-bit state of an Rng stream. Plain words so streams can be
/// serialized (checkpoint/restore) and restored bit-exactly.
using RngState = std::array<std::uint64_t, 4>;

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift (slightly biased
  /// for huge bounds; irrelevant at our scales).
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Snapshot of the generator state. Restoring it with set_state resumes
  /// the stream exactly where the snapshot was taken — the property the
  /// checkpoint layer's deterministic-resume guarantee builds on.
  RngState state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const RngState& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
  }

  /// Standard normal via Box-Muller (one value per call; cheap enough).
  double next_normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace gnndrive
