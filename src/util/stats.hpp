// Small statistics helpers used by benches and telemetry reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace gnndrive {

/// Streaming mean/min/max/stddev (Welford).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }
  /// Parallel Welford combine (Chan et al.): merging per-thread stats gives
  /// bit-for-bit the same count/sum and numerically equivalent mean/variance
  /// as a single stream, without any shared lock on the add() path.
  void merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const {
    return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_ - 1)) : 0.0;
  }
  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-boundary latency histogram (microseconds), log2 buckets.
/// Bucket 0 covers [0, 1] us; bucket i covers (2^(i-1), 2^i] us.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 32;

  void add_us(double us) {
    ++count_;
    sum_us_ += us;
    max_us_ = std::max(max_us_, us);
    ++buckets_[bucket_of(us)];
  }
  std::uint64_t count() const { return count_; }
  double sum_us() const { return sum_us_; }
  double mean_us() const {
    return count_ ? sum_us_ / static_cast<double>(count_) : 0.0;
  }
  double max_us() const { return count_ ? max_us_ : 0.0; }
  std::uint64_t bucket(int i) const { return buckets_[i]; }

  /// Inclusive upper bound of bucket `i` in microseconds (2^i; bucket 0
  /// covers [0, 1]). Exposition formats (Prometheus `le=`) key on this.
  static double bucket_upper_us(int i) {
    double bound = 1.0;
    for (int b = 0; b < i; ++b) bound *= 2.0;
    return bound;
  }

  /// Approximate percentile: finds the bucket holding the p-th sample and
  /// interpolates linearly within it (the winning bucket's samples are
  /// assumed uniform across its range). p is clamped to [0, 1]; p == 1.0
  /// returns the exact maximum seen.
  double percentile_us(double p) const {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the wanted sample in [1, count] (nearest-rank definition).
    const double rank =
        std::max(1.0, std::ceil(p * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    double lo = 0.0;
    double hi = 1.0;
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t n = buckets_[i];
      if (n > 0 && static_cast<double>(seen + n) >= rank) {
        const double within = (rank - static_cast<double>(seen)) /
                              static_cast<double>(n);
        return std::min(lo + within * (hi - lo), max_us_);
      }
      seen += n;
      lo = hi;
      hi *= 2.0;
    }
    return max_us_;
  }

  /// Drops every sample; the histogram is reusable afterwards. Per-window
  /// reporting (epoch reports, `/metrics` windows) resets or diffs instead
  /// of letting quantiles aggregate over the whole process lifetime.
  void reset() { *this = LatencyHistogram{}; }

  /// Windowed view: the samples recorded after `earlier` was captured,
  /// assuming `earlier` is a previous snapshot of this same histogram
  /// (monotone bucket counts). Bucket differences are saturating, so a
  /// slightly-racy concurrent snapshot degrades to dropping a sample
  /// rather than underflowing. The window's max is approximated by the
  /// later snapshot's max (an upper bound: the true window max can only be
  /// lower), which quantile queries clamp against.
  LatencyHistogram diff_since(const LatencyHistogram& earlier) const {
    LatencyHistogram out;
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t lo = earlier.buckets_[i];
      out.buckets_[i] = buckets_[i] > lo ? buckets_[i] - lo : 0;
      out.count_ += out.buckets_[i];
    }
    out.sum_us_ = std::max(0.0, sum_us_ - earlier.sum_us_);
    out.max_us_ = max_us_;
    return out;
  }

  /// Rebuilds a histogram from raw bucket counts (used by the thread-safe
  /// ConcurrentHistogram to snapshot into this query-side representation).
  static LatencyHistogram from_raw(const std::uint64_t* buckets,
                                   double sum_us, double max_us) {
    LatencyHistogram h;
    for (int i = 0; i < kBuckets; ++i) {
      h.buckets_[i] = buckets[i];
      h.count_ += buckets[i];
    }
    h.sum_us_ = sum_us;
    h.max_us_ = max_us;
    return h;
  }

  static int bucket_of(double us) {
    int bucket = 0;
    double bound = 1.0;
    while (us > bound && bucket < kBuckets - 1) {
      bound *= 2.0;
      ++bucket;
    }
    return bucket;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

/// Exact percentile over a collected sample set (benches, small n).
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace gnndrive
