// Small statistics helpers used by benches and telemetry reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace gnndrive {

/// Streaming mean/min/max/stddev (Welford).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const {
    return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_ - 1)) : 0.0;
  }
  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-boundary latency histogram (microseconds), log2 buckets.
class LatencyHistogram {
 public:
  void add_us(double us) {
    ++count_;
    sum_us_ += us;
    int bucket = 0;
    double bound = 1.0;
    while (us > bound && bucket < kBuckets - 1) {
      bound *= 2.0;
      ++bucket;
    }
    ++buckets_[bucket];
  }
  std::uint64_t count() const { return count_; }
  double mean_us() const {
    return count_ ? sum_us_ / static_cast<double>(count_) : 0.0;
  }
  /// Approximate percentile from bucket boundaries.
  double percentile_us(double p) const {
    if (count_ == 0) return 0.0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(p * static_cast<double>(count_));
    std::uint64_t seen = 0;
    double bound = 1.0;
    for (int i = 0; i < kBuckets; ++i, bound *= 2.0) {
      seen += buckets_[i];
      if (seen > target) return bound;
    }
    return bound;
  }

 private:
  static constexpr int kBuckets = 32;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
};

/// Exact percentile over a collected sample set (benches, small n).
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace gnndrive
