// Intrusive LRU list over dense integer ids.
//
// Backs the feature buffer's *standby list* (Sect. 4.2): slots with zero
// reference count live here in least-recently-used order; reuse by a new node
// pops the LRU head, reuse by the *same* node removes the slot from the middle
// in O(1). Also reused by the simulated page cache.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace gnndrive {

class IndexedLruList : NonCopyable {
 public:
  /// Ids must be in [0, capacity). The list starts empty.
  explicit IndexedLruList(std::size_t capacity)
      : next_(capacity, kNil), prev_(capacity, kNil) {}

  std::size_t capacity() const { return next_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(std::uint32_t id) const {
    return prev_[id] != kNil || head_ == id;
  }

  /// Inserts `id` at the most-recently-used end (the tail). Must not already
  /// be present.
  void push_mru(std::uint32_t id) {
    GD_CHECK_MSG(!contains(id), "id already in LRU list");
    prev_[id] = tail_;
    next_[id] = kNil;
    if (tail_ != kNil) {
      next_[tail_] = id;
    } else {
      head_ = id;
    }
    tail_ = id;
    ++size_;
  }

  /// Removes and returns the least-recently-used id; list must be non-empty.
  std::uint32_t pop_lru() {
    GD_CHECK(size_ > 0);
    const std::uint32_t id = head_;
    remove(id);
    return id;
  }

  /// Peeks the LRU id without removing; kNilId if empty.
  std::uint32_t peek_lru() const { return head_; }

  /// O(1) removal from any position. `id` must be present.
  void remove(std::uint32_t id) {
    GD_CHECK_MSG(contains(id), "removing id not in LRU list");
    const std::uint32_t p = prev_[id];
    const std::uint32_t n = next_[id];
    if (p != kNil) next_[p] = n; else head_ = n;
    if (n != kNil) prev_[n] = p; else tail_ = p;
    prev_[id] = kNil;
    next_[id] = kNil;
    --size_;
  }

  /// Moves an already-present id to the MRU end (classic LRU touch).
  void touch(std::uint32_t id) {
    remove(id);
    push_mru(id);
  }

  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kNilId = kNil;

 private:
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> prev_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace gnndrive
