// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every checkpoint record (src/ckpt). Software
// table-driven implementation: this host has no guaranteed SSE4.2, and
// checkpoint payloads are megabytes at most, far off any hot path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gnndrive {

namespace detail {

struct Crc32cTable {
  std::uint32_t t[256];
  constexpr Crc32cTable() : t{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
  }
};

inline constexpr Crc32cTable kCrc32cTable{};

}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to extend a
/// checksum over multiple buffers. The default seed starts a fresh CRC.
inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t seed = 0) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32cTable.t[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace gnndrive
