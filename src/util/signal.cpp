#include "util/signal.hpp"

#include <csignal>

namespace gnndrive {

std::atomic<int> ShutdownSignal::signum_{0};

namespace {

std::atomic<int>* flag_for_handler = nullptr;

void on_signal(int signum) {
  // Async-signal-safe: restore the default disposition first — so a second
  // signal force-kills a wedged process — then publish the flag.
  std::signal(signum, SIG_DFL);
  if (flag_for_handler != nullptr) {
    flag_for_handler->store(signum, std::memory_order_relaxed);
  }
}

}  // namespace

void ShutdownSignal::install() {
  flag_for_handler = &signum_;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

}  // namespace gnndrive
