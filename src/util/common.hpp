// Basic shared definitions used across all GNNDrive subsystems.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gnndrive {

using NodeId = std::uint32_t;   ///< Graph node identifier.
using EdgeId = std::uint64_t;   ///< Edge index into CSC arrays.
using SlotId = std::int64_t;    ///< Feature-buffer slot index; -1 == none.

inline constexpr SlotId kNoSlot = -1;
inline constexpr std::uint32_t kSectorSize = 512;  ///< Direct-I/O granularity.
inline constexpr std::uint32_t kPageSize = 4096;   ///< Simulated OS page size.

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

/// Seconds represented as double, for reporting.
inline double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}
inline double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}
inline Duration from_us(double us) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::micro>(us));
}

/// Thrown when a simulated allocation exceeds the configured budget.
/// Mirrors the OOM failures the paper reports for Ginex / MariusGNN / PyG+.
class SimOutOfMemory : public std::runtime_error {
 public:
  explicit SimOutOfMemory(const std::string& what)
      : std::runtime_error(what) {}
};

/// Unrecoverable internal error; invariants are checked with GD_CHECK.
[[noreturn]] inline void fatal(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "FATAL %s:%d: %s\n", file, line, msg);
  std::abort();
}

#define GD_CHECK(cond)                                        \
  do {                                                        \
    if (!(cond)) ::gnndrive::fatal(__FILE__, __LINE__, #cond); \
  } while (0)

#define GD_CHECK_MSG(cond, msg)                               \
  do {                                                        \
    if (!(cond)) ::gnndrive::fatal(__FILE__, __LINE__, msg);  \
  } while (0)

// Debug-build-only invariant checks: compiled out under NDEBUG so they can
// sit on hot paths (per-node refcount bookkeeping) without release cost.
#ifndef NDEBUG
#define GD_DCHECK(cond) GD_CHECK(cond)
#define GD_DCHECK_MSG(cond, msg) GD_CHECK_MSG(cond, msg)
#else
#define GD_DCHECK(cond) \
  do {                  \
  } while (0)
#define GD_DCHECK_MSG(cond, msg) \
  do {                           \
  } while (0)
#endif

/// Rounds `v` up to a multiple of `align` (power of two not required).
constexpr std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) / align * align;
}
constexpr std::uint64_t round_down(std::uint64_t v, std::uint64_t align) {
  return v / align * align;
}
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

struct NonCopyable {
  NonCopyable() = default;
  NonCopyable(const NonCopyable&) = delete;
  NonCopyable& operator=(const NonCopyable&) = delete;
};

}  // namespace gnndrive
