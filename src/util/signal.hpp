// Graceful SIGINT/SIGTERM shutdown for the example and bench drivers.
//
// install() arms async-signal-safe handlers that only set a flag; drivers
// poll requested() (or run a tiny watcher thread) and translate it into
// GnnDrive::request_stop() + a final checkpoint + ServeEngine::stop(). The
// first signal requests the graceful drain; the handler then restores the
// default disposition, so a second Ctrl-C force-kills a wedged process —
// the conventional escape hatch.
#pragma once

#include <atomic>
#include <cstdint>

namespace gnndrive {

class ShutdownSignal {
 public:
  /// Arms SIGINT and SIGTERM. Idempotent; process-wide (signal disposition
  /// is a process attribute, so there is one flag for the whole process).
  static void install();

  /// True once a signal arrived. Cheap enough to poll per batch.
  static bool requested() {
    return signum_.load(std::memory_order_relaxed) != 0;
  }
  /// The signal that arrived (SIGINT/SIGTERM), or 0.
  static int signal_number() {
    return signum_.load(std::memory_order_relaxed);
  }

  /// Clears the flag (tests; or a driver that handled the drain and wants
  /// to re-arm). Does not re-install handlers — call install() again after
  /// a signal fired, since the handler restored the default disposition.
  static void reset() { signum_.store(0, std::memory_order_relaxed); }

 private:
  static std::atomic<int> signum_;
};

}  // namespace gnndrive
