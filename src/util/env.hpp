// Environment-variable knobs for benches (e.g. GNNDRIVE_BENCH_MODE=full).
#pragma once

#include <cstdlib>
#include <string>

namespace gnndrive {

inline std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtol(v, nullptr, 10) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtod(v, nullptr) : fallback;
}

/// True when GNNDRIVE_BENCH_MODE=full: benches run the paper's complete
/// sweeps instead of the quick default subset.
inline bool bench_full_mode() {
  return env_str("GNNDRIVE_BENCH_MODE", "quick") == "full";
}

}  // namespace gnndrive
