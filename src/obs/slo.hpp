// Threshold rules over the live time-series: serve p99 vs SLO, fault
// rates, queue saturation. Rules are evaluated on every sampler tick (the
// sampler's on_tick hook) against windowed statistics, so a rule fires on
// what happened in the last few seconds, never on process-lifetime
// aggregates. Transitions emit structured log events on the existing
// channel ("slo_alert" on fire, "slo_resolved" on clear), joinable with
// the rest of the structured stream; the current alert states are also
// queryable (the /vars route embeds them).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/logging.hpp"

namespace gnndrive {

class TimeSeriesSampler;

struct SloRule {
  enum class Kind {
    kHistogramQuantile,  ///< windowed quantile of `metric` > threshold
    kCounterRate,        ///< windowed events/second of `metric` > threshold
    kGaugeLevel,         ///< current value of `metric` > threshold
  };
  std::string name;        ///< alert identity ("serve_p99_slo")
  Kind kind = Kind::kHistogramQuantile;
  std::string metric;      ///< registry series the rule watches
  double quantile = 0.99;  ///< kHistogramQuantile only
  double threshold = 0.0;  ///< us / events-per-s / gauge level
  double window_s = 2.0;   ///< trailing window the statistic is taken over
  LogLevel level = LogLevel::kWarn;  ///< severity of the fire event
};

struct SloAlert {
  std::string rule;
  bool firing = false;
  double value = 0.0;      ///< last evaluated statistic
  double threshold = 0.0;
  std::uint64_t fire_count = 0;  ///< lifetime fire transitions
};

class SloWatcher {
 public:
  /// Adds or replaces (by name) a rule. Thread-safe.
  void add_rule(SloRule rule);
  std::size_t rule_count() const;

  /// Evaluates every rule against the sampler's windows; emits
  /// "slo_alert"/"slo_resolved" structured events on transitions. Called
  /// from the sampler's on_tick hook, or directly by tests.
  void evaluate(const TimeSeriesSampler& ts);

  std::vector<SloAlert> alerts() const;
  std::uint64_t firing_count() const;
  /// JSON array of the alert states (embedded in /vars).
  std::string to_json() const;

 private:
  struct Entry {
    SloRule rule;
    SloAlert state;
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace gnndrive
