#include "obs/slo.hpp"

#include <cstdio>

#include "obs/exposition.hpp"
#include "obs/timeseries.hpp"

namespace gnndrive {

void SloWatcher::add_rule(SloRule rule) {
  std::lock_guard lk(mu_);
  for (Entry& e : entries_) {
    if (e.rule.name == rule.name) {
      e.rule = std::move(rule);
      e.state.threshold = e.rule.threshold;
      return;
    }
  }
  Entry e;
  e.state.rule = rule.name;
  e.state.threshold = rule.threshold;
  e.rule = std::move(rule);
  entries_.push_back(std::move(e));
}

std::size_t SloWatcher::rule_count() const {
  std::lock_guard lk(mu_);
  return entries_.size();
}

void SloWatcher::evaluate(const TimeSeriesSampler& ts) {
  std::lock_guard lk(mu_);
  for (Entry& e : entries_) {
    double value = 0.0;
    bool measurable = false;
    switch (e.rule.kind) {
      case SloRule::Kind::kHistogramQuantile: {
        const LatencyHistogram h =
            ts.histogram_window(e.rule.metric, e.rule.window_s);
        measurable = h.count() > 0;
        value = h.percentile_us(e.rule.quantile);
        break;
      }
      case SloRule::Kind::kCounterRate: {
        const auto w = ts.counter_window(e.rule.metric, e.rule.window_s);
        measurable = w.valid && w.dt_seconds > 0;
        value = w.rate_per_s;
        break;
      }
      case SloRule::Kind::kGaugeLevel: {
        const auto w = ts.gauge_window(e.rule.metric, e.rule.window_s);
        measurable = w.valid;
        value = static_cast<double>(w.last);
        break;
      }
    }
    // An unmeasurable window (no samples of the series) resolves a firing
    // alert rather than latching it forever.
    const bool firing = measurable && value > e.rule.threshold;
    e.state.value = measurable ? value : 0.0;
    if (firing && !e.state.firing) {
      ++e.state.fire_count;
      log_structured(e.rule.level, "slo_alert",
                     {kv("rule", e.rule.name), kv("metric", e.rule.metric),
                      kv("value", value), kv("threshold", e.rule.threshold),
                      kv("window_s", e.rule.window_s)});
    } else if (!firing && e.state.firing) {
      log_structured(LogLevel::kInfo, "slo_resolved",
                     {kv("rule", e.rule.name), kv("metric", e.rule.metric),
                      kv("value", e.state.value),
                      kv("threshold", e.rule.threshold)});
    }
    e.state.firing = firing;
  }
}

std::vector<SloAlert> SloWatcher::alerts() const {
  std::lock_guard lk(mu_);
  std::vector<SloAlert> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.state);
  return out;
}

std::uint64_t SloWatcher::firing_count() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  for (const Entry& e : entries_) n += e.state.firing ? 1 : 0;
  return n;
}

std::string SloWatcher::to_json() const {
  const std::vector<SloAlert> all = alerts();
  std::string out = "[";
  char buf[160];
  bool first = true;
  for (const SloAlert& a : all) {
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":\"";
    out += json_escape(a.rule);
    std::snprintf(buf, sizeof(buf),
                  "\",\"firing\":%s,\"value\":%.3f,\"threshold\":%.3f,"
                  "\"fire_count\":%llu}",
                  a.firing ? "true" : "false", a.value, a.threshold,
                  static_cast<unsigned long long>(a.fire_count));
    out += buf;
  }
  out += ']';
  return out;
}

}  // namespace gnndrive
