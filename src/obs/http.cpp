#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/attribution.hpp"
#include "obs/exposition.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "util/logging.hpp"

namespace gnndrive {

namespace {

constexpr int kPollTimeoutMs = 200;   ///< stop-flag check cadence
constexpr int kClientTimeoutMs = 2000;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

std::string build_response(int status, const std::string& content_type,
                           const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' +
                    status_text(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until the header terminator or timeout; requests here are tiny.
bool read_request(int fd, std::string* out) {
  char buf[2048];
  while (out->find("\r\n\r\n") == std::string::npos) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kClientTimeoutMs);
    if (pr <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    out->append(buf, static_cast<std::size_t>(n));
    if (out->size() > 16384) return false;
  }
  return true;
}

/// "GET /metrics HTTP/1.1" -> "/metrics" (query strings stripped).
std::string parse_path(const std::string& request) {
  const std::size_t sp1 = request.find(' ');
  if (sp1 == std::string::npos) return {};
  const std::size_t sp2 = request.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return {};
  std::string path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  return path;
}

}  // namespace

ObsServer::ObsServer(MetricsRegistry* registry, TimeSeriesSampler* sampler,
                     BottleneckAttributor* attributor, SloWatcher* slo,
                     ObsServerConfig config)
    : registry_(registry),
      sampler_(sampler),
      attributor_(attributor),
      slo_(slo),
      config_(std::move(config)) {
  GD_CHECK_MSG(registry_ != nullptr, "ObsServer requires a MetricsRegistry");
}

ObsServer::~ObsServer() { stop(); }

bool ObsServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    log_structured(LogLevel::kWarn, "obs_server_bind_failed",
                   {kv("reason", "socket"), kv("errno", errno)});
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    log_structured(LogLevel::kWarn, "obs_server_bind_failed",
                   {kv("reason", "bad_host"), kv("host", config_.host)});
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    log_structured(LogLevel::kWarn, "obs_server_bind_failed",
                   {kv("reason", "bind_listen"), kv("errno", errno),
                    kv("port", static_cast<int>(config_.port))});
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  if (sampler_ != nullptr) sampler_->retain();
  thread_ = std::thread([this] { serve_loop(); });
  log_structured(LogLevel::kInfo, "obs_server_started",
                 {kv("host", config_.host),
                  kv("port", static_cast<int>(bound_port_))});
  return true;
}

void ObsServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
  if (sampler_ != nullptr) sampler_->release();
}

int ObsServer::handle(const std::string& path, std::string* body,
                      std::string* content_type) const {
  *content_type = "application/json";
  if (path == "/metrics") {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    *body = render_prometheus(registry_->snapshot());
    return 200;
  }
  if (path == "/vars") {
    *body = "{\"vars\":";
    *body += render_vars_json(registry_->snapshot());
    *body += ",\"alerts\":";
    *body += slo_ != nullptr ? slo_->to_json() : "[]";
    *body += '}';
    return 200;
  }
  if (path == "/attribution") {
    if (attributor_ == nullptr) {
      *body = "{\"error\":\"attribution unavailable\"}";
      return 503;
    }
    if (attributor_->has_report()) {
      *body = attributor_->latest().to_json();
    } else if (sampler_ != nullptr) {
      *body = attributor_
                  ->attribute_window(*sampler_, config_.attribution_window_s)
                  .to_json();
    } else {
      *body = "{\"error\":\"no report yet\"}";
      return 503;
    }
    return 200;
  }
  if (path == "/healthz") {
    *content_type = "text/plain";
    *body = "ok\n";
    return 200;
  }
  if (path == "/readyz") {
    const auto snap = registry_->snapshot();
    std::int64_t pipeline_running = 0;
    std::int64_t serve_running = 0;
    for (const auto& [name, g] : snap.gauges) {
      if (name == "pipeline.running") pipeline_running = g.value;
      if (name == "serve.running") serve_running = g.value;
    }
    const bool ready = pipeline_running > 0 || serve_running > 0;
    *body = std::string("{\"ready\":") + (ready ? "true" : "false") +
            ",\"pipeline_running\":" + std::to_string(pipeline_running) +
            ",\"serve_running\":" + std::to_string(serve_running) + "}";
    return ready ? 200 : 503;
  }
  *content_type = "text/plain";
  *body = "not found\n";
  return 404;
}

void ObsServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollTimeoutMs);
    if (pr <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_client(client);
    ::close(client);
  }
}

void ObsServer::serve_client(int fd) const {
  std::string request;
  if (!read_request(fd, &request)) return;
  const std::string path = parse_path(request);
  std::string body;
  std::string content_type;
  const int status = handle(path, &body, &content_type);
  send_all(fd, build_response(status, content_type, body));
}

bool obs_http_get(const std::string& host, std::uint16_t port,
                  const std::string& path, HttpResponse* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }

  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host +
      "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return false;
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kClientTimeoutMs);
    if (pr <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > (64u << 20)) break;
  }
  ::close(fd);

  if (raw.rfind("HTTP/1.", 0) != 0) return false;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return false;
  out->status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t header_end = raw.find("\r\n\r\n");
  out->body = header_end == std::string::npos ? std::string{}
                                              : raw.substr(header_end + 4);
  return out->status > 0;
}

}  // namespace gnndrive
