#include "obs/metrics.hpp"

#include <cstdio>

namespace gnndrive {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

ConcurrentHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<ConcurrentHistogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, GaugeValue{g->value(), g->max()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

std::string MetricsRegistry::format_report() const {
  const Snapshot snap = snapshot();
  std::string out;
  char line[256];
  for (const auto& [name, v] : snap.counters) {
    std::snprintf(line, sizeof(line), "counter   %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  for (const auto& [name, g] : snap.gauges) {
    std::snprintf(line, sizeof(line), "gauge     %-32s %lld (max %lld)\n",
                  name.c_str(), static_cast<long long>(g.value),
                  static_cast<long long>(g.max));
    out += line;
  }
  for (const auto& [name, h] : snap.histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %-32s n=%llu mean=%.1fus p50=%.1fus p95=%.1fus "
                  "p99=%.1fus max=%.1fus\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  h.mean_us(), h.percentile_us(0.50), h.percentile_us(0.95),
                  h.percentile_us(0.99), h.max_us());
    out += line;
  }
  return out;
}

}  // namespace gnndrive
