// Automatic bottleneck attribution.
//
// GNNDrive's whole argument is a diagnosis: disk-based GNN training is
// bound either by memory contention (buffered I/O thrashing the OS page
// cache, the paper's Fig. 2 baselines) or by I/O congestion (the SSD queue
// saturated while compute idles, Fig. 3/11). The attributor automates that
// diagnosis at runtime: given two registry snapshots bounding a window
// (one epoch, or a sampling window from the TimeSeriesSampler) it derives
// utilization and saturation for each resource in the pipeline —
//
//   ssd        Δssd.busy_us / (dt x channels), queue depth (ssd.pending)
//   pagecache  windowed fault-stall fraction and evictions-per-miss
//   sampler    Δstage.sample.us busy fraction across sampler threads
//   extractor  Δstage.extract.us occupancy across extractor threads
//   trainer    Δstage.train.us busy fraction (one trainer thread)
//   extract_q / train_q   depth vs capacity + producer-blocked deltas
//   fb.cold    cold-slot occupancy, gated on actual slot waits
//   staging    staging-row pool occupancy vs its high watermark
//   serve      windowed p99 of serve.latency.us vs the configured SLO
//
// — and emits a ranked report naming the binding constraint in human and
// JSON form ("I/O-congested: ssd 97% busy, trainer 41% busy"). The report
// is the signal plane the ROADMAP's adaptive train/serve co-scheduler will
// consume; today it feeds the /attribution endpoint, the structured log
// and the per-epoch summary.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace gnndrive {

class TimeSeriesSampler;

/// Pipeline topology + thresholds the scores are normalized against. The
/// pipeline refreshes the topology half at every epoch start.
struct AttributionConfig {
  std::uint32_t num_samplers = 4;
  std::uint32_t num_extractors = 4;
  unsigned ssd_channels = 16;
  std::uint32_t extract_queue_cap = 6;
  std::uint32_t train_queue_cap = 4;
  std::uint32_t serve_workers = 0;
  double serve_slo_us = 0.0;  ///< 0: no serve latency scoring

  double busy_threshold = 0.60;  ///< "this resource is the constraint"
  double idle_threshold = 0.40;  ///< "this resource had headroom"
  /// Page-cache contention gates: the window must show at least this many
  /// misses, evictions-per-miss above `contended_thrash` (pages recycling
  /// under the accessor, not a cold first pass) and a fault-stall time of
  /// at least `contended_fault_fraction` of the window (summed across
  /// blocked threads) to call memory contention.
  std::uint64_t min_pagecache_misses = 64;
  double contended_thrash = 0.5;
  double contended_fault_fraction = 0.25;
};

/// One scored resource. `utilization` is the busy fraction in [0, 1];
/// `saturation` is backlog pressure (queueing, blocked producers, waits),
/// also clamped to [0, 1]. `pressure()` ranks.
struct ResourceScore {
  std::string resource;
  double utilization = 0.0;
  double saturation = 0.0;
  std::string evidence;  ///< short human fragment ("97% busy, 42 queued")
  double pressure() const { return std::max(utilization, saturation); }
};

struct AttributionReport {
  enum class Verdict {
    kIdle,             ///< nothing moved in the window
    kBalanced,         ///< activity, but no resource dominates
    kIoCongested,      ///< SSD queue saturated, compute has headroom
    kMemoryContended,  ///< page cache thrashing (buffered I/O, tight host)
    kComputeBound,     ///< trainer saturated, I/O has headroom
  };
  Verdict verdict = Verdict::kIdle;
  std::string binding;              ///< top-ranked resource name
  std::vector<ResourceScore> ranked;  ///< descending pressure
  double window_seconds = 0.0;
  std::string scope;                ///< "epoch 3" / "window"

  static const char* verdict_name(Verdict v);
  /// One line: "I/O-congested: ssd 97% busy, trainer 41% busy, ...".
  std::string summary() const;
  /// Full report as a JSON object (verdict, binding, ranked resources).
  std::string to_json() const;
};

class BottleneckAttributor {
 public:
  explicit BottleneckAttributor(AttributionConfig config = {});

  void set_config(const AttributionConfig& config);
  AttributionConfig config() const;

  /// Pure derivation over a [begin, end] snapshot pair spanning
  /// `dt_seconds`. Thread-safe; does not touch the stored report.
  AttributionReport attribute(const MetricsRegistry::Snapshot& begin,
                              const MetricsRegistry::Snapshot& end,
                              double dt_seconds,
                              const std::string& scope) const;

  /// Attribution over the sampler's trailing window (the /attribution
  /// fallback between epoch reports).
  AttributionReport attribute_window(const TimeSeriesSampler& ts,
                                     double window_s) const;

  /// Stores `report` as the latest and logs it as a structured
  /// "attribution" event (verdict, binding, scope, top utilizations).
  void publish(AttributionReport report);
  bool has_report() const;
  AttributionReport latest() const;

 private:
  mutable std::mutex mu_;
  AttributionConfig config_;
  AttributionReport latest_;
  bool has_latest_ = false;
};

}  // namespace gnndrive
