// Unified metrics registry for the observability layer.
//
// Every subsystem that used to keep ad-hoc counters (feature-buffer
// hits/misses, SsdStats, fault counters) publishes them here under stable
// dotted names so benches, the end-of-epoch report and the trace exporter
// see one coherent set. Three instrument kinds:
//
//   Counter   — monotonic event count (relaxed atomic add).
//   Gauge     — instantaneous level (queue depth, in-flight requests) with a
//               high-watermark.
//   Histogram — thread-safe log2-bucket latency histogram; snapshots into
//               the query-side LatencyHistogram for p50/p95/p99.
//
// Hot-path cost: one relaxed atomic RMW per update, no locks. Registration
// (name lookup) takes a mutex and is meant for construction time — callers
// resolve instruments once and keep the pointer. Instruments are owned by
// the registry and never move, so resolved pointers stay valid for the
// registry's lifetime. Metric names are listed in docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/stats.hpp"

namespace gnndrive {

class Counter : NonCopyable {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the value — for mirroring an externally-maintained monotonic
  /// counter (e.g. SsdStats) into the registry at snapshot points.
  void store(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge : NonCopyable {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t d) {
    raise_max(v_.fetch_add(d, std::memory_order_relaxed) + d);
  }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void raise_max(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Thread-safe variant of LatencyHistogram: atomic buckets, no lock.
/// Sum/max are tracked in integer nanoseconds so concurrent adds stay exact.
class ConcurrentHistogram : NonCopyable {
 public:
  void add_us(double us) {
    count_.fetch_add(1, std::memory_order_relaxed);
    const auto ns = static_cast<std::uint64_t>(std::max(us, 0.0) * 1e3);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur &&
           !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
    buckets_[LatencyHistogram::bucket_of(us)].fetch_add(
        1, std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Drops every sample so the next window starts fresh (per-epoch
  /// histogram hygiene). Adds racing with a reset may land on either side
  /// of the window boundary — both attributions are valid for windowed
  /// reporting. Prefer snapshot() + LatencyHistogram::diff_since when the
  /// cumulative series must keep growing (Prometheus exposition).
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

  /// Consistent-enough copy for reporting (buckets are read individually;
  /// a racing add may be off by one sample, which percentiles tolerate).
  LatencyHistogram snapshot() const {
    std::uint64_t raw[LatencyHistogram::kBuckets];
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      raw[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return LatencyHistogram::from_raw(
        raw, static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e3,
        static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e3);
  }

 private:
  std::atomic<std::uint64_t> buckets_[LatencyHistogram::kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

class MetricsRegistry : NonCopyable {
 public:
  /// Find-or-create by name. Returned references stay valid for the
  /// registry's lifetime; resolve once, then update lock-free.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  ConcurrentHistogram& histogram(const std::string& name);

  struct GaugeValue {
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, GaugeValue>> gauges;
    std::vector<std::pair<std::string, LatencyHistogram>> histograms;
  };
  /// Name-sorted copy of every instrument's current value.
  Snapshot snapshot() const;

  /// Human-readable report: counters, gauges (value/max), histograms with
  /// count/mean/p50/p95/p99. One line per instrument, sorted by name.
  std::string format_report() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ConcurrentHistogram>> histograms_;
};

}  // namespace gnndrive
