// Text exposition of a metrics snapshot: Prometheus text format 0.0.4 for
// the /metrics route and a JSON rendering for /vars. Pure functions over
// MetricsRegistry::Snapshot, testable without a socket.
//
// Mapping rules (docs/observability.md "HTTP endpoint"):
//   * Dotted registry names sanitize to [a-zA-Z0-9_:] ("io.coalesce.rows"
//     -> "io_coalesce_rows"); counters get the conventional "_total"
//     suffix.
//   * Gauges emit their level plus a companion "<name>_max" gauge for the
//     high-watermark.
//   * Histograms emit the full cumulative `_bucket{le="..."}` ladder
//     (log2 boundaries in the histogram's native unit, microseconds for
//     "*.us" series), `_sum` and `_count`.
//   * A caller-provided label set attaches to every series, with label
//     values escaped per the format spec (backslash, double quote,
//     newline).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace gnndrive {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Registry name -> Prometheus metric name: invalid characters become '_';
/// a leading digit gains a '_' prefix.
std::string prometheus_metric_name(const std::string& name);

/// Escapes a label value per the text format: \ -> \\, " -> \", LF -> \n.
std::string prometheus_escape_label_value(const std::string& value);

/// Full exposition of the snapshot in Prometheus text format 0.0.4.
std::string render_prometheus(const MetricsRegistry::Snapshot& snap,
                              const MetricLabels& labels = {});

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslash, control characters).
std::string json_escape(const std::string& s);

/// JSON object with "counters", "gauges" (value/max) and "histograms"
/// (count/mean/p50/p95/p99/max in the series' native unit).
std::string render_vars_json(const MetricsRegistry::Snapshot& snap);

}  // namespace gnndrive
