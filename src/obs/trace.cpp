#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace gnndrive {

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

SpanTracer::SpanTracer(std::size_t max_records) : cap_(max_records) {}

void SpanTracer::set_enabled(bool on) {
  if (on && !enabled()) {
    std::lock_guard lock(mu_);
    t0_ = Clock::now();
  }
  enabled_.store(on, std::memory_order_release);
}

void SpanTracer::reset() {
  std::lock_guard lock(mu_);
  spans_.clear();
  counters_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  t0_ = Clock::now();
}

std::uint64_t SpanTracer::now_ns() const {
  if (!enabled()) return 0;
  std::lock_guard lock(mu_);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0_)
          .count());
}

void SpanTracer::record(const char* name, std::uint64_t batch,
                        std::uint32_t epoch, TimePoint begin, TimePoint end) {
  if (!enabled() || end <= begin) return;
  std::lock_guard lock(mu_);
  if (begin < t0_) begin = t0_;
  if (end <= t0_) return;
  const auto rel = [&](TimePoint t) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - t0_).count());
  };
  if (spans_.size() + counters_.size() >= cap_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(SpanRecord{name, rel(begin), rel(end) - rel(begin), batch,
                              epoch, trace_thread_id()});
}

void SpanTracer::record_rel(const char* name, std::uint64_t batch,
                            std::uint32_t epoch, std::uint64_t begin_ns,
                            std::uint64_t dur_ns) {
  if (!enabled() || dur_ns == 0) return;
  std::lock_guard lock(mu_);
  if (spans_.size() + counters_.size() >= cap_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(
      SpanRecord{name, begin_ns, dur_ns, batch, epoch, trace_thread_id()});
}

void SpanTracer::sample_counter(const char* name, double value) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  const auto t_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0_)
          .count());
  if (spans_.size() + counters_.size() >= cap_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counters_.push_back(CounterRecord{name, t_ns, value});
}

std::size_t SpanTracer::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> SpanTracer::spans() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.begin_ns < b.begin_ns;
            });
  return out;
}

std::string SpanTracer::chrome_trace_json() const {
  std::vector<SpanRecord> spans;
  std::vector<CounterRecord> counters;
  {
    std::lock_guard lock(mu_);
    spans = spans_;
    counters = counters_;
  }
  std::string out;
  out.reserve(spans.size() * 120 + counters.size() * 90 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const SpanRecord& s : spans) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"pipeline\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                  "\"args\":{\"batch\":%" PRIu64 ",\"epoch\":%u}}",
                  first ? "" : ",", s.name, s.tid,
                  static_cast<double>(s.begin_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3, s.batch, s.epoch);
    out += buf;
    first = false;
  }
  for (const CounterRecord& c : counters) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,"
                  "\"ts\":%.3f,\"args\":{\"value\":%.3f}}",
                  first ? "" : ",", c.name,
                  static_cast<double>(c.t_ns) / 1e3, c.value);
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

bool SpanTracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string SpanTracer::summary() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  {
    std::lock_guard lock(mu_);
    for (const SpanRecord& s : spans_) {
      Agg& a = by_name[s.name];
      ++a.count;
      a.total_ns += s.dur_ns;
    }
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  std::string out = "span                      count     total(s)    mean(us)\n";
  char line[160];
  for (const auto& [name, a] : rows) {
    std::snprintf(line, sizeof(line), "%-24s %6llu %12.3f %11.1f\n",
                  name.c_str(), static_cast<unsigned long long>(a.count),
                  static_cast<double>(a.total_ns) / 1e9,
                  static_cast<double>(a.total_ns) / 1e3 /
                      static_cast<double>(std::max<std::uint64_t>(a.count, 1)));
    out += line;
  }
  if (dropped() > 0) {
    std::snprintf(line, sizeof(line),
                  "(%llu records dropped past the %zu-record cap)\n",
                  static_cast<unsigned long long>(dropped()), cap_);
    out += line;
  }
  return out;
}

}  // namespace gnndrive
