#include "obs/attribution.hpp"

#include <cstdio>

#include "obs/exposition.hpp"
#include "obs/timeseries.hpp"
#include "util/logging.hpp"

namespace gnndrive {

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

template <typename Vec>
const typename Vec::value_type::second_type* find_in(const Vec& v,
                                                     const char* name) {
  auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& entry, const char* key) { return entry.first < key; });
  if (it == v.end() || it->first != name) return nullptr;
  return &it->second;
}

std::uint64_t counter_delta(const MetricsRegistry::Snapshot& begin,
                            const MetricsRegistry::Snapshot& end,
                            const char* name) {
  const std::uint64_t* e = find_in(end.counters, name);
  if (e == nullptr) return 0;
  const std::uint64_t* b = find_in(begin.counters, name);
  const std::uint64_t lo = b != nullptr ? *b : 0;
  return *e > lo ? *e - lo : 0;
}

std::int64_t gauge_value(const MetricsRegistry::Snapshot& snap,
                         const char* name) {
  const auto* g = find_in(snap.gauges, name);
  return g != nullptr ? g->value : 0;
}

std::int64_t gauge_max(const MetricsRegistry::Snapshot& snap,
                       const char* name) {
  const auto* g = find_in(snap.gauges, name);
  return g != nullptr ? g->max : 0;
}

/// Sum-of-samples delta for a histogram series, in microseconds.
double hist_sum_delta_us(const MetricsRegistry::Snapshot& begin,
                         const MetricsRegistry::Snapshot& end,
                         const char* name) {
  const auto* e = find_in(end.histograms, name);
  if (e == nullptr) return 0.0;
  const auto* b = find_in(begin.histograms, name);
  const double lo = b != nullptr ? b->sum_us() : 0.0;
  return std::max(0.0, e->sum_us() - lo);
}

LatencyHistogram hist_delta(const MetricsRegistry::Snapshot& begin,
                            const MetricsRegistry::Snapshot& end,
                            const char* name) {
  const auto* e = find_in(end.histograms, name);
  if (e == nullptr) return LatencyHistogram{};
  const auto* b = find_in(begin.histograms, name);
  if (b == nullptr) return *e;
  return e->diff_since(*b);
}

std::string pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", clamp01(frac) * 100.0);
  return buf;
}

const char* verdict_label(AttributionReport::Verdict v) {
  switch (v) {
    case AttributionReport::Verdict::kIdle: return "idle";
    case AttributionReport::Verdict::kBalanced: return "balanced";
    case AttributionReport::Verdict::kIoCongested: return "I/O-congested";
    case AttributionReport::Verdict::kMemoryContended:
      return "memory-contended";
    case AttributionReport::Verdict::kComputeBound: return "compute-bound";
  }
  return "unknown";
}

}  // namespace

const char* AttributionReport::verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kIdle: return "idle";
    case Verdict::kBalanced: return "balanced";
    case Verdict::kIoCongested: return "io_congested";
    case Verdict::kMemoryContended: return "memory_contended";
    case Verdict::kComputeBound: return "compute_bound";
  }
  return "unknown";
}

std::string AttributionReport::summary() const {
  std::string out = verdict_label(verdict);
  out += ": ";
  const std::size_t n = std::min<std::size_t>(ranked.size(), 3);
  if (n == 0) {
    out += "no activity in window";
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += ranked[i].resource;
    out += ' ';
    out += ranked[i].evidence;
  }
  return out;
}

std::string AttributionReport::to_json() const {
  std::string out = "{\"verdict\":\"";
  out += verdict_name(verdict);
  out += "\",\"binding\":\"";
  out += json_escape(binding);
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\",\"window_seconds\":%.6f,\"scope\":\"",
                window_seconds);
  out += buf;
  out += json_escape(scope);
  out += "\",\"summary\":\"";
  out += json_escape(summary());
  out += "\",\"resources\":[";
  bool first = true;
  for (const ResourceScore& r : ranked) {
    if (!first) out += ',';
    first = false;
    out += "{\"resource\":\"";
    out += json_escape(r.resource);
    std::snprintf(buf, sizeof(buf),
                  "\",\"utilization\":%.4f,\"saturation\":%.4f,\"evidence\":\"",
                  r.utilization, r.saturation);
    out += buf;
    out += json_escape(r.evidence);
    out += "\"}";
  }
  out += "]}";
  return out;
}

BottleneckAttributor::BottleneckAttributor(AttributionConfig config)
    : config_(config) {}

void BottleneckAttributor::set_config(const AttributionConfig& config) {
  std::lock_guard lk(mu_);
  config_ = config;
}

AttributionConfig BottleneckAttributor::config() const {
  std::lock_guard lk(mu_);
  return config_;
}

AttributionReport BottleneckAttributor::attribute(
    const MetricsRegistry::Snapshot& begin,
    const MetricsRegistry::Snapshot& end, double dt_seconds,
    const std::string& scope) const {
  const AttributionConfig cfg = config();
  AttributionReport rep;
  rep.scope = scope;
  rep.window_seconds = std::max(0.0, dt_seconds);
  if (dt_seconds <= 0.0) return rep;
  const double dt = dt_seconds;
  char ev[128];

  // -- ssd: device utilization + queue saturation ---------------------------
  ResourceScore ssd;
  ssd.resource = "ssd";
  const double busy_s =
      static_cast<double>(counter_delta(begin, end, "ssd.busy_us")) / 1e6;
  const double channels = std::max(1u, cfg.ssd_channels);
  ssd.utilization = clamp01(busy_s / (dt * channels));
  const std::int64_t pending = gauge_value(end, "ssd.pending");
  const double queued =
      std::max<double>(0.0, static_cast<double>(pending) - channels);
  ssd.saturation = clamp01(queued / channels);
  std::snprintf(ev, sizeof(ev), "queue %s busy, %lld pending",
                pct(ssd.utilization).c_str(),
                static_cast<long long>(pending));
  ssd.evidence = ev;

  // -- pagecache: stall time lost to faults, churn = evictions per miss ----
  ResourceScore pc;
  pc.resource = "pagecache";
  const std::uint64_t pc_hits = counter_delta(begin, end, "pagecache.hits");
  const std::uint64_t pc_miss = counter_delta(begin, end, "pagecache.misses");
  const std::uint64_t pc_evic =
      counter_delta(begin, end, "pagecache.evictions");
  const std::uint64_t pc_total = pc_hits + pc_miss;
  const double fault_s =
      static_cast<double>(
          counter_delta(begin, end, "pagecache.fault_wait_us")) /
      1e6;
  const double fault_frac = fault_s / dt;  // summed across threads; may be >1
  const double thrash =
      pc_miss > 0 ? static_cast<double>(pc_evic) / static_cast<double>(pc_miss)
                  : 0.0;
  // A cold cache misses everything once without being a bottleneck, and a
  // mildly overflowing cache evicts per miss without costing real time. The
  // contention signature is churn (pages recycling under the accessor)
  // *and* a meaningful share of the window spent blocked on faults.
  const bool pc_active = pc_miss >= cfg.min_pagecache_misses;
  pc.utilization = pc_active ? clamp01(fault_frac) : 0.0;
  pc.saturation = pc_active ? clamp01(std::min(fault_frac, thrash)) : 0.0;
  std::snprintf(ev, sizeof(ev),
                "%s of window faulting, evictions/miss %.2f",
                pct(fault_frac).c_str(), thrash);
  pc.evidence = ev;
  const bool contended = pc_active && thrash > cfg.contended_thrash &&
                         fault_frac > cfg.contended_fault_fraction;

  // -- pipeline stages: busy fraction across their thread pools -------------
  ResourceScore sampler;
  sampler.resource = "sampler";
  sampler.utilization =
      clamp01(hist_sum_delta_us(begin, end, "stage.sample.us") / 1e6 /
              (dt * std::max(1u, cfg.num_samplers)));
  std::snprintf(ev, sizeof(ev), "%s busy", pct(sampler.utilization).c_str());
  sampler.evidence = ev;

  ResourceScore extractor;
  extractor.resource = "extractor";
  extractor.utilization =
      clamp01(hist_sum_delta_us(begin, end, "stage.extract.us") / 1e6 /
              (dt * std::max(1u, cfg.num_extractors)));
  std::snprintf(ev, sizeof(ev), "%s occupied (includes ssd wait)",
                pct(extractor.utilization).c_str());
  extractor.evidence = ev;

  ResourceScore trainer;
  trainer.resource = "trainer";
  trainer.utilization =
      clamp01(hist_sum_delta_us(begin, end, "stage.train.us") / 1e6 / dt);
  const double train_q_depth =
      static_cast<double>(gauge_value(end, "pipeline.train_q.depth"));
  trainer.saturation =
      clamp01(train_q_depth / std::max(1u, cfg.train_queue_cap));
  std::snprintf(ev, sizeof(ev), "%s busy", pct(trainer.utilization).c_str());
  trainer.evidence = ev;

  // -- queues: instantaneous fill + whether producers actually blocked ------
  ResourceScore extract_q;
  extract_q.resource = "extract_q";
  extract_q.utilization = clamp01(
      static_cast<double>(gauge_value(end, "pipeline.extract_q.depth")) /
      std::max(1u, cfg.extract_queue_cap));
  const std::uint64_t eq_blocked =
      counter_delta(begin, end, "pipeline.extract_q.push_blocked");
  extract_q.saturation = eq_blocked > 0 ? extract_q.utilization : 0.0;
  std::snprintf(ev, sizeof(ev), "%s full, +%llu producer blocks",
                pct(extract_q.utilization).c_str(),
                static_cast<unsigned long long>(eq_blocked));
  extract_q.evidence = ev;

  // -- feature-buffer cold region: occupancy gated on real slot waits -------
  ResourceScore fb;
  fb.resource = "fb.cold";
  const std::int64_t standby = gauge_value(end, "fb.standby");
  const std::int64_t cold = gauge_value(end, "fb.cold.slots");
  const double occupancy =
      cold > 0 ? 1.0 - static_cast<double>(standby) / static_cast<double>(cold)
               : 0.0;
  const std::uint64_t slot_waits = counter_delta(begin, end, "fb.slot_waits");
  fb.utilization = clamp01(occupancy);
  fb.saturation = slot_waits > 0 ? clamp01(occupancy) : 0.0;
  std::snprintf(ev, sizeof(ev), "%s occupied, +%llu slot waits",
                pct(fb.utilization).c_str(),
                static_cast<unsigned long long>(slot_waits));
  fb.evidence = ev;

  // -- staging pool: rows in flight vs the pool's high watermark ------------
  ResourceScore staging;
  staging.resource = "staging";
  const std::int64_t stg_use = gauge_value(end, "io.staging_in_use");
  const std::int64_t stg_hw = gauge_max(end, "io.staging_in_use");
  staging.utilization =
      stg_hw > 0 ? clamp01(static_cast<double>(stg_use) /
                           static_cast<double>(stg_hw))
                 : 0.0;
  std::snprintf(ev, sizeof(ev), "%lld/%lld rows in use",
                static_cast<long long>(stg_use),
                static_cast<long long>(stg_hw));
  staging.evidence = ev;

  rep.ranked = {ssd, pc, sampler, extractor, trainer, extract_q, fb, staging};

  // -- serve workers: windowed tail latency vs the SLO ----------------------
  if (cfg.serve_slo_us > 0.0) {
    const LatencyHistogram lat =
        hist_delta(begin, end, "serve.latency.us");
    if (lat.count() > 0) {
      ResourceScore serve;
      serve.resource = "serve";
      const double p99 = lat.percentile_us(0.99);
      serve.utilization = clamp01(p99 / cfg.serve_slo_us);
      std::snprintf(ev, sizeof(ev), "p99 %.0fus vs SLO %.0fus", p99,
                    cfg.serve_slo_us);
      serve.evidence = ev;
      rep.ranked.push_back(serve);
    }
  }

  std::stable_sort(rep.ranked.begin(), rep.ranked.end(),
                   [](const ResourceScore& a, const ResourceScore& b) {
                     return a.pressure() > b.pressure();
                   });

  // -- verdict --------------------------------------------------------------
  const bool active = busy_s > 0.0 || pc_total > 0 ||
                      sampler.utilization > 0.0 || trainer.utilization > 0.0;
  using V = AttributionReport::Verdict;
  if (!active) {
    rep.verdict = V::kIdle;
    rep.binding = rep.ranked.empty() ? "" : rep.ranked.front().resource;
    return rep;
  }
  if (contended) {
    // Memory contention outranks raw device business: the thrashing cache
    // is *why* the device is busy (the paper's Fig. 2 baselines).
    rep.verdict = V::kMemoryContended;
    rep.binding = "pagecache";
  } else if (ssd.utilization >= cfg.busy_threshold &&
             trainer.utilization <= cfg.idle_threshold) {
    rep.verdict = V::kIoCongested;
    rep.binding = "ssd";
  } else if (trainer.utilization >= cfg.busy_threshold &&
             ssd.utilization <= trainer.utilization) {
    rep.verdict = V::kComputeBound;
    rep.binding = "trainer";
  } else if (!rep.ranked.empty() &&
             rep.ranked.front().pressure() >= cfg.busy_threshold) {
    const std::string& top = rep.ranked.front().resource;
    rep.binding = top;
    if (top == "ssd" || top == "staging" ||
        (top == "extractor" && ssd.utilization > cfg.idle_threshold)) {
      rep.verdict = V::kIoCongested;
    } else if (top == "pagecache") {
      // Fault stalls without churn (a cold cache warming up) are device
      // time, not a cache working against its capacity.
      rep.verdict = thrash > cfg.contended_thrash ? V::kMemoryContended
                                                  : V::kIoCongested;
    } else if (top == "fb.cold") {
      rep.verdict = V::kMemoryContended;
    } else if (top == "trainer" || top == "sampler" || top == "extractor") {
      rep.verdict = V::kComputeBound;
    } else {
      rep.verdict = V::kBalanced;
    }
  } else {
    rep.verdict = V::kBalanced;
    rep.binding = rep.ranked.empty() ? "" : rep.ranked.front().resource;
  }
  // Keep the binding resource at the head of the ranking so summary() leads
  // with it even when a non-binding score is numerically higher.
  for (std::size_t i = 0; i < rep.ranked.size(); ++i) {
    if (rep.ranked[i].resource == rep.binding && i != 0) {
      std::rotate(rep.ranked.begin(), rep.ranked.begin() + i,
                  rep.ranked.begin() + i + 1);
      break;
    }
  }
  return rep;
}

AttributionReport BottleneckAttributor::attribute_window(
    const TimeSeriesSampler& ts, double window_s) const {
  const std::vector<TimeSeriesSample> v = ts.samples();
  if (v.size() < 2) {
    AttributionReport rep;
    rep.scope = "window";
    return rep;
  }
  const TimeSeriesSample& end = v.back();
  const TimeSeriesSample* begin = &v[v.size() - 2];
  for (const TimeSeriesSample& s : v) {
    if (end.t_seconds - s.t_seconds <= window_s) {
      begin = &s;
      break;
    }
  }
  return attribute(begin->snap, end.snap, end.t_seconds - begin->t_seconds,
                   "window");
}

void BottleneckAttributor::publish(AttributionReport report) {
  log_structured(LogLevel::kInfo, "attribution",
                 {kv("scope", report.scope),
                  kv("verdict", AttributionReport::verdict_name(report.verdict)),
                  kv("binding", report.binding),
                  kv("window_s", report.window_seconds)});
  std::lock_guard lk(mu_);
  latest_ = std::move(report);
  has_latest_ = true;
}

bool BottleneckAttributor::has_report() const {
  std::lock_guard lk(mu_);
  return has_latest_;
}

AttributionReport BottleneckAttributor::latest() const {
  std::lock_guard lk(mu_);
  return latest_;
}

}  // namespace gnndrive
