// Per-mini-batch span tracer with Chrome trace-event export.
//
// The time-bucketed Telemetry answers "how busy was the machine"; this
// tracer answers "where did batch 417 spend its time". Pipeline stages
// record one span per (stage, batch): sample, extract (with ring-submit /
// ssd-wait / staging-to-device sub-phases), train and release, each tagged
// with batch id, epoch and a small per-thread id. A periodic sampler adds
// counter tracks (queue depths, standby-list length, in-flight I/O).
//
// Export formats:
//   * chrome_trace_json() — Chrome trace-event JSON ("X" complete events +
//     "C" counter events), loadable in Perfetto / chrome://tracing.
//   * summary()           — compact text flamegraph: total/mean time and
//     span count aggregated per span name.
//
// Cost model: when disabled (the default), every record path is a single
// relaxed atomic load — safe to leave compiled into the hot loops. When
// enabled, records append to a mutex-guarded buffer; spans are emitted at
// mini-batch granularity (tens of records per batch), so the lock is
// uncontended and off the per-node fast path. The buffer is bounded;
// records past the cap are counted in dropped() instead of growing without
// limit.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace gnndrive {

/// Canonical span names for the four pipeline stages (tests and the trace
/// validator key on these exact strings).
inline constexpr const char* kSpanSample = "sample";
inline constexpr const char* kSpanExtract = "extract";
inline constexpr const char* kSpanTrain = "train";
inline constexpr const char* kSpanRelease = "release";
/// Extract sub-phases (Algorithm 1's ring-submit / ssd-wait / transfer).
inline constexpr const char* kSpanRingSubmit = "extract.ring_submit";
inline constexpr const char* kSpanSsdWait = "extract.ssd_wait";
inline constexpr const char* kSpanCopyWait = "extract.copy_wait";
/// Time a stage spent blocked popping its input queue.
inline constexpr const char* kSpanQueueWait = "queue_wait";

struct SpanRecord {
  const char* name = "";       ///< static string (one of the names above)
  std::uint64_t begin_ns = 0;  ///< relative to trace start
  std::uint64_t dur_ns = 0;
  std::uint64_t batch = 0;     ///< SampledBatch::batch_id
  std::uint32_t epoch = 0;
  std::uint32_t tid = 0;       ///< process-wide small thread id
};

struct CounterRecord {
  const char* name = "";
  std::uint64_t t_ns = 0;
  double value = 0.0;
};

class SpanTracer : NonCopyable {
 public:
  explicit SpanTracer(std::size_t max_records = 1u << 22);

  /// The single observability switch (Telemetry::set_tracing forwards
  /// here). Enabling (re)starts the trace clock; disabling freezes
  /// recording but keeps the buffer for export.
  void set_enabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded spans/counters and resets the clock.
  void reset();

  /// Records a completed span [begin, end). No-op while disabled.
  void record(const char* name, std::uint64_t batch, std::uint32_t epoch,
              TimePoint begin, TimePoint end);
  /// Same, with the interval already relative to the trace start — used for
  /// synthetic sub-phase spans assembled from accumulated durations.
  void record_rel(const char* name, std::uint64_t batch, std::uint32_t epoch,
                  std::uint64_t begin_ns, std::uint64_t dur_ns);
  /// Samples a counter track at "now" (queue depth, buffer occupancy, ...).
  void sample_counter(const char* name, double value);

  /// Nanoseconds since the trace started (0 when disabled).
  std::uint64_t now_ns() const;

  std::size_t span_count() const;
  std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Copy of all spans, sorted by begin time.
  std::vector<SpanRecord> spans() const;

  /// Chrome trace-event JSON (one "X" event per span, one "C" event per
  /// counter sample). Open in https://ui.perfetto.dev or chrome://tracing.
  std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Text flamegraph summary: per span name, count / total / mean, sorted
  /// by total time descending.
  std::string summary() const;

 private:
  const std::size_t cap_;
  std::atomic<bool> enabled_{false};
  TimePoint t0_{};

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterRecord> counters_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Small process-wide id for the calling thread (stable per thread).
std::uint32_t trace_thread_id();

/// RAII span: records [construction, destruction) under `name` when the
/// tracer is enabled. Null tracer is harmless.
class ScopedSpan : NonCopyable {
 public:
  ScopedSpan(SpanTracer* tracer, const char* name, std::uint64_t batch,
             std::uint32_t epoch)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name), batch_(batch), epoch_(epoch),
        begin_(tracer_ != nullptr ? Clock::now() : TimePoint{}) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, batch_, epoch_, begin_, Clock::now());
    }
  }

 private:
  SpanTracer* tracer_;
  const char* name_;
  std::uint64_t batch_;
  std::uint32_t epoch_;
  TimePoint begin_;
};

}  // namespace gnndrive
