#include "obs/exposition.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace gnndrive {

namespace {

bool valid_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

/// "{job="train",le="4"}" — merged base labels plus an optional extra.
std::string label_block(const MetricLabels& labels, const char* extra_key,
                        const std::string& extra_value) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_metric_name(k);
    out += "=\"";
    out += prometheus_escape_label_value(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;  // le values are numeric, no escaping needed
    out += '"';
  }
  out += '}';
  return out;
}

void append_type(std::string& out, const std::string& name,
                 const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    out += '_';
  }
  for (char c : name) out += valid_name_char(c) ? c : '_';
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry::Snapshot& snap,
                              const MetricLabels& labels) {
  std::string out;
  out.reserve(16384);
  const std::string base = label_block(labels, nullptr, {});
  char line[192];

  for (const auto& [name, value] : snap.counters) {
    const std::string n = prometheus_metric_name(name) + "_total";
    append_type(out, n, "counter");
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", value);
    out += n;
    out += base;
    out += line;
  }

  for (const auto& [name, g] : snap.gauges) {
    const std::string n = prometheus_metric_name(name);
    append_type(out, n, "gauge");
    std::snprintf(line, sizeof(line), " %" PRId64 "\n", g.value);
    out += n;
    out += base;
    out += line;
    // High-watermark companion series.
    const std::string nmax = n + "_max";
    append_type(out, nmax, "gauge");
    std::snprintf(line, sizeof(line), " %" PRId64 "\n", g.max);
    out += nmax;
    out += base;
    out += line;
  }

  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prometheus_metric_name(name);
    append_type(out, n, "histogram");
    std::uint64_t cumulative = 0;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      cumulative += h.bucket(i);
      char le[32];
      std::snprintf(le, sizeof(le), "%.0f", LatencyHistogram::bucket_upper_us(i));
      out += n;
      out += "_bucket";
      out += label_block(labels, "le", le);
      std::snprintf(line, sizeof(line), " %" PRIu64 "\n", cumulative);
      out += line;
    }
    out += n;
    out += "_bucket";
    out += label_block(labels, "le", "+Inf");
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", h.count());
    out += line;
    out += n;
    out += "_sum";
    out += base;
    out += ' ';
    out += format_double(h.sum_us());
    out += '\n';
    out += n;
    out += "_count";
    out += base;
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", h.count());
    out += line;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_vars_json(const MetricsRegistry::Snapshot& snap) {
  std::string out;
  out.reserve(16384);
  out += "{\"counters\":{";
  bool first = true;
  char buf[256];
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                  json_escape(name).c_str(), value);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"value\":%" PRId64 ",\"max\":%" PRId64 "}",
                  json_escape(name).c_str(), g.value, g.max);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%" PRIu64
                  ",\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,"
                  "\"max\":%.3f}",
                  json_escape(name).c_str(), h.count(), h.mean_us(),
                  h.percentile_us(0.50), h.percentile_us(0.95),
                  h.percentile_us(0.99), h.max_us());
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace gnndrive
