// Minimal in-process HTTP endpoint for the telemetry plane. One accept
// thread, blocking I/O with poll() timeouts, Connection: close — enough to
// be scraped by Prometheus or curl without pulling in any dependency.
//
// Routes:
//   /metrics      Prometheus text format 0.0.4 over the full registry
//   /vars         JSON: every counter/gauge/histogram + current SLO alerts
//   /attribution  latest published bottleneck report, else a live
//                 attribution over the sampler's trailing window
//   /healthz      200 while the server thread is alive
//   /readyz       200 iff a pipeline epoch or the serve engine is running
//                 (pipeline.running / serve.running gauges), else 503
//
// The server holds a sampler lease while listening, so scraping a process
// that is otherwise idle still sees a moving time-series.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "util/common.hpp"

namespace gnndrive {

class MetricsRegistry;
class TimeSeriesSampler;
class BottleneckAttributor;
class SloWatcher;

struct ObsServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral; read the bound one via port()
  /// Trailing window for the /attribution fallback report.
  double attribution_window_s = 2.0;
};

class ObsServer : NonCopyable {
 public:
  /// Only `registry` is required; null sampler/attributor/slo degrade the
  /// corresponding routes gracefully.
  ObsServer(MetricsRegistry* registry, TimeSeriesSampler* sampler,
            BottleneckAttributor* attributor, SloWatcher* slo,
            ObsServerConfig config = {});
  ~ObsServer();

  /// Binds, listens and spawns the accept thread. Returns false (with a
  /// structured warning) when the bind fails; safe to call once.
  bool start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Port actually bound (resolves port 0); 0 before start().
  std::uint16_t port() const { return bound_port_; }

  /// Routing logic, exposed so tests can exercise formats without sockets.
  /// Returns the HTTP status and fills `body`/`content_type`.
  int handle(const std::string& path, std::string* body,
             std::string* content_type) const;

 private:
  void serve_loop();
  void serve_client(int fd) const;

  MetricsRegistry* const registry_;
  TimeSeriesSampler* const sampler_;
  BottleneckAttributor* const attributor_;
  SloWatcher* const slo_;
  const ObsServerConfig config_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Blocking HTTP GET against a local endpoint; returns false on connect /
/// I/O failure. Used by tests and the bench smoke scraper.
struct HttpResponse {
  int status = 0;
  std::string body;
};
bool obs_http_get(const std::string& host, std::uint16_t port,
                  const std::string& path, HttpResponse* out);

}  // namespace gnndrive
