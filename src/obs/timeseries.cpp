#include "obs/timeseries.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace gnndrive {

namespace {

/// Binary search in a name-sorted snapshot vector; null when absent.
template <typename Vec>
const typename Vec::value_type::second_type* find_in(const Vec& v,
                                                     const std::string& name) {
  auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it == v.end() || it->first != name) return nullptr;
  return &it->second;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* registry,
                                     SpanTracer* tracer,
                                     TimeSeriesConfig config)
    : config_(config), registry_(registry), tracer_(tracer),
      t0_(Clock::now()) {
  GD_CHECK(registry_ != nullptr);
  GD_CHECK(config_.capacity >= 2);
  ring_.reserve(config_.capacity);
}

TimeSeriesSampler::~TimeSeriesSampler() {
  // Backstop for a leaked lease (an exception mid-epoch, say): stop the
  // thread regardless of the refcount so destruction never hangs.
  {
    std::lock_guard lk(life_mu_);
    refs_ = 0;
    thread_running_ = false;
  }
  life_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TimeSeriesSampler::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

bool TimeSeriesSampler::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

// The 0<->1 lease transitions (thread spawn / join) are serialized by
// lease_mu_, which the sampling thread itself never takes — joining under
// it therefore cannot deadlock, and a concurrent retain can never observe
// a half-stopped generation.
void TimeSeriesSampler::retain() {
  std::lock_guard serial(lease_mu_);
  bool first = false;
  {
    std::lock_guard lk(life_mu_);
    first = ++refs_ == 1;
  }
  if (!first) return;
  if (enabled()) {
    if (thread_.joinable()) thread_.join();  // stopped previous generation
    {
      std::lock_guard lk(life_mu_);
      thread_running_ = true;
    }
    thread_ = std::thread([this] { run(); });
  }
  tick();  // bound the window even for sub-interval leases
}

void TimeSeriesSampler::release() {
  std::lock_guard serial(lease_mu_);
  bool last = false;
  {
    std::lock_guard lk(life_mu_);
    GD_CHECK_MSG(refs_ > 0, "TimeSeriesSampler::release without retain");
    last = --refs_ == 0;
    if (last) thread_running_ = false;
  }
  if (last) {
    life_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    tick();  // final sample closes the lease's window
  }
}

bool TimeSeriesSampler::running() const {
  std::lock_guard lk(life_mu_);
  return thread_running_;
}

void TimeSeriesSampler::run() {
  const auto interval = from_us(config_.interval_ms * 1e3);
  std::unique_lock lk(life_mu_);
  while (thread_running_) {
    lk.unlock();
    tick();
    lk.lock();
    life_cv_.wait_for(lk, interval, [&] { return !thread_running_; });
  }
}

void TimeSeriesSampler::tick() {
  if (!enabled()) return;
  TimeSeriesSample sample;
  sample.t_seconds = to_seconds(Clock::now() - t0_);
  sample.snap = registry_->snapshot();

  // Gauge -> Chrome counter track mirroring (satellite of the trace
  // surface): the tracer keeps const char* names, so intern each gauge
  // name once in node-stable storage.
  if (tracer_ != nullptr && tracer_->enabled() && config_.trace_gauges) {
    for (const auto& [name, g] : sample.snap.gauges) {
      const char* stable = nullptr;
      {
        std::lock_guard lk(track_mu_);
        stable = track_names_.insert(name).first->c_str();
      }
      tracer_->sample_counter(stable, static_cast<double>(g.value));
    }
  }

  {
    std::lock_guard lk(ring_mu_);
    sample.seq = seq_++;
    if (ring_.size() < config_.capacity) {
      ring_.push_back(std::move(sample));
    } else {
      ring_[sample.seq % config_.capacity] = std::move(sample);
    }
  }

  std::function<void(const TimeSeriesSampler&)> cb;
  {
    std::lock_guard lk(cb_mu_);
    cb = on_tick_;
  }
  if (cb) cb(*this);
}

std::uint64_t TimeSeriesSampler::sample_count() const {
  std::lock_guard lk(ring_mu_);
  return seq_;
}

std::vector<TimeSeriesSample> TimeSeriesSampler::samples() const {
  std::lock_guard lk(ring_mu_);
  std::vector<TimeSeriesSample> out;
  out.reserve(ring_.size());
  const std::uint64_t oldest = seq_ > ring_.size() ? seq_ - ring_.size() : 0;
  for (std::uint64_t s = oldest; s < seq_; ++s) {
    out.push_back(ring_[s % config_.capacity]);
  }
  return out;
}

bool TimeSeriesSampler::latest(TimeSeriesSample* out) const {
  std::lock_guard lk(ring_mu_);
  if (seq_ == 0) return false;
  *out = ring_[(seq_ - 1) % config_.capacity];
  return true;
}

bool TimeSeriesSampler::window_bounds_locked(
    double window_s, const TimeSeriesSample** begin,
    const TimeSeriesSample** end) const {
  if (seq_ < 2) return false;
  const std::uint64_t oldest = seq_ > ring_.size() ? seq_ - ring_.size() : 0;
  const TimeSeriesSample& newest = ring_[(seq_ - 1) % config_.capacity];
  // Oldest retained sample still inside the window; fall back to the
  // sample immediately preceding the newest when the window is narrower
  // than one tick. Walk backwards from the newest so the cost is
  // O(samples in window), not O(ring occupancy) — the SLO watcher runs
  // these queries on every tick.
  const TimeSeriesSample* first = nullptr;
  for (std::uint64_t s = seq_ - 1; s-- > oldest;) {
    const TimeSeriesSample& cand = ring_[s % config_.capacity];
    if (newest.t_seconds - cand.t_seconds > window_s) break;
    first = &cand;
  }
  if (first == nullptr) first = &ring_[(seq_ - 2) % config_.capacity];
  *begin = first;
  *end = &newest;
  return true;
}

TimeSeriesSampler::CounterWindow TimeSeriesSampler::counter_window(
    const std::string& name, double window_s) const {
  std::lock_guard lk(ring_mu_);
  CounterWindow w;
  const TimeSeriesSample* b = nullptr;
  const TimeSeriesSample* e = nullptr;
  if (!window_bounds_locked(window_s, &b, &e)) return w;
  const std::uint64_t* first = find_in(b->snap.counters, name);
  const std::uint64_t* last = find_in(e->snap.counters, name);
  if (last == nullptr) return w;
  w.valid = true;
  w.dt_seconds = e->t_seconds - b->t_seconds;
  w.first = first != nullptr ? *first : 0;
  w.last = *last;
  w.delta = w.last > w.first ? w.last - w.first : 0;
  w.rate_per_s =
      w.dt_seconds > 0 ? static_cast<double>(w.delta) / w.dt_seconds : 0.0;
  return w;
}

TimeSeriesSampler::GaugeWindow TimeSeriesSampler::gauge_window(
    const std::string& name, double window_s) const {
  std::lock_guard lk(ring_mu_);
  GaugeWindow w;
  const TimeSeriesSample* b = nullptr;
  const TimeSeriesSample* e = nullptr;
  if (!window_bounds_locked(window_s, &b, &e)) return w;
  w.dt_seconds = e->t_seconds - b->t_seconds;
  // Mean/max over every retained sample in [b, e].
  double sum = 0.0;
  std::uint64_t n = 0;
  for (std::uint64_t s = b->seq; s < seq_; ++s) {
    const TimeSeriesSample& cand = ring_[s % config_.capacity];
    const auto* g = find_in(cand.snap.gauges, name);
    if (g == nullptr) continue;
    sum += static_cast<double>(g->value);
    w.max = std::max(w.max, g->value);
    w.last = g->value;
    ++n;
  }
  if (n == 0) return w;
  w.valid = true;
  w.mean = sum / static_cast<double>(n);
  return w;
}

LatencyHistogram TimeSeriesSampler::histogram_window(const std::string& name,
                                                     double window_s) const {
  std::lock_guard lk(ring_mu_);
  const TimeSeriesSample* b = nullptr;
  const TimeSeriesSample* e = nullptr;
  if (!window_bounds_locked(window_s, &b, &e)) return LatencyHistogram{};
  const auto* last = find_in(e->snap.histograms, name);
  if (last == nullptr) return LatencyHistogram{};
  const auto* first = find_in(b->snap.histograms, name);
  if (first == nullptr) return *last;
  return last->diff_since(*first);
}

void TimeSeriesSampler::set_on_tick(
    std::function<void(const TimeSeriesSampler&)> cb) {
  std::lock_guard lk(cb_mu_);
  on_tick_ = std::move(cb);
}

}  // namespace gnndrive
