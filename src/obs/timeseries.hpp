// Always-available time-series sampling over the metrics registry.
//
// The PR-2 tracer answered "where did batch 417 spend its time" but only
// while tracing was on, and the queue/buffer counter tracks came from a
// 5 ms monitor thread that existed only inside a traced run_epoch. This
// sampler replaces that thread with a component every consumer can share:
// it snapshots every counter/gauge/histogram into a bounded ring at a
// configurable interval and answers windowed questions — counter rates and
// deltas, gauge mean/max over a window, and window-scoped histogram
// quantiles (bucket diffs, so `/metrics`-style cumulative series never
// pollute a window's p99).
//
// Lifecycle is refcounted: the pipeline holds a lease per epoch, the serve
// engine one per start()/stop(), the HTTP endpoint one while it listens.
// The background thread runs only while at least one lease is held, so an
// idle process pays nothing. retain() and release() both take an immediate
// sample, which bounds every window even when a leased section is shorter
// than one interval.
//
// While span tracing is enabled, each tick also re-emits every gauge as a
// Chrome trace-event counter track (queue depths, in-flight reads, free
// slots, pin-budget occupancy), so Perfetto shows them on the same
// timeline as the stage spans.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/common.hpp"

namespace gnndrive {

class SpanTracer;

struct TimeSeriesConfig {
  /// Tick period while any lease is held. 50ms (20 samples/s) keeps the
  /// snapshot cost under the documented 2% epoch-time budget while still
  /// resolving the seconds-scale windows the SLO watcher and attributor
  /// query.
  double interval_ms = 50.0;
  std::size_t capacity = 4096;   ///< ring slots (oldest samples overwritten)
  bool trace_gauges = true;      ///< re-emit gauges as Chrome counter tracks
};

/// One ring slot: a full typed registry snapshot plus its timestamp.
struct TimeSeriesSample {
  std::uint64_t seq = 0;   ///< monotone tick number (never wraps)
  double t_seconds = 0.0;  ///< since sampler construction
  MetricsRegistry::Snapshot snap;
};

class TimeSeriesSampler : NonCopyable {
 public:
  /// `tracer` may be null (no counter-track mirroring).
  TimeSeriesSampler(MetricsRegistry* registry, SpanTracer* tracer,
                    TimeSeriesConfig config = {});
  ~TimeSeriesSampler();

  /// Master gate: while disabled, leases are counted but no thread starts
  /// and tick() is a no-op — the zero-overhead baseline benches compare
  /// against. Enabled by default.
  void set_enabled(bool on);
  bool enabled() const;

  /// Refcounted lease. The first retain() starts the sampling thread (and
  /// takes an immediate sample); the last release() takes a final sample
  /// and stops it.
  void retain();
  void release();
  bool running() const;

  /// One synchronous sample, independent of the thread (tests drive the
  /// ring deterministically through this; retain/release call it too).
  void tick();

  /// Total ticks taken since construction.
  std::uint64_t sample_count() const;
  /// Chronological copy of the ring's current contents (oldest first).
  std::vector<TimeSeriesSample> samples() const;
  /// Copies the newest sample; false when no tick has happened yet.
  bool latest(TimeSeriesSample* out) const;

  /// Windowed counter statistics between the newest sample and the oldest
  /// sample still inside [newest - window_s, newest]. When the window
  /// holds fewer than two samples the immediately preceding sample is
  /// used; `valid` is false when the ring cannot bound a window at all.
  struct CounterWindow {
    bool valid = false;
    double dt_seconds = 0.0;
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    std::uint64_t delta = 0;      ///< saturating (counters are monotone)
    double rate_per_s = 0.0;
  };
  CounterWindow counter_window(const std::string& name,
                               double window_s) const;

  /// Mean/max of a gauge over the samples inside the window (same
  /// window-selection rule as counter_window).
  struct GaugeWindow {
    bool valid = false;
    double dt_seconds = 0.0;
    double mean = 0.0;
    std::int64_t max = 0;
    std::int64_t last = 0;
  };
  GaugeWindow gauge_window(const std::string& name, double window_s) const;

  /// Histogram restricted to the window: the bucket-wise difference of the
  /// two bounding snapshots. count() == 0 means no samples landed in the
  /// window (or the ring cannot bound one).
  LatencyHistogram histogram_window(const std::string& name,
                                    double window_s) const;

  /// Invoked after every tick (on whichever thread ticked), with the ring
  /// already updated — the SLO watcher's evaluation hook. The callback may
  /// query the sampler's windows but must not retain/release.
  void set_on_tick(std::function<void(const TimeSeriesSampler&)> cb);

  const TimeSeriesConfig& config() const { return config_; }

 private:
  void run();
  /// Newest sample + window-opening sample; false if unbound.
  bool window_bounds_locked(double window_s, const TimeSeriesSample** begin,
                            const TimeSeriesSample** end) const;

  const TimeSeriesConfig config_;
  MetricsRegistry* const registry_;
  SpanTracer* const tracer_;

  std::atomic<bool> enabled_{true};
  TimePoint t0_;

  mutable std::mutex ring_mu_;
  std::vector<TimeSeriesSample> ring_;  ///< ring_[seq % capacity]
  std::uint64_t seq_ = 0;

  /// Serializes the 0<->1 lease transitions (spawn/join); never taken by
  /// the sampling thread, so joining while holding it is safe.
  std::mutex lease_mu_;
  mutable std::mutex life_mu_;
  std::condition_variable life_cv_;
  int refs_ = 0;
  bool thread_running_ = false;
  std::thread thread_;

  std::mutex cb_mu_;
  std::function<void(const TimeSeriesSampler&)> on_tick_;

  /// Stable storage for gauge names handed to the tracer as counter-track
  /// names (SpanTracer keeps `const char*`); std::set nodes never move.
  std::set<std::string> track_names_;
  std::mutex track_mu_;
};

/// RAII lease on a sampler; a null sampler is harmless.
class SamplerLease : NonCopyable {
 public:
  explicit SamplerLease(TimeSeriesSampler* s) : s_(s) {
    if (s_ != nullptr) s_->retain();
  }
  ~SamplerLease() {
    if (s_ != nullptr) s_->release();
  }

 private:
  TimeSeriesSampler* s_;
};

}  // namespace gnndrive
