// GNNDrive-Serve: online inference over the training substrates.
//
// The serving path reuses exactly the machinery the paper builds for
// training — the refcounted feature buffer (Sect. 4.2), direct asynchronous
// SSD reads through an io_uring-style ring, and recycled staging rows — but
// drives it from a latency-oriented front end:
//
//   submit() --> RequestQueue (admission control, deadline stamping)
//            --> MicroBatchCoalescer (size/time-bounded batching)
//            --> N serve workers: shed expired -> sample merged seeds ->
//                extract via Algorithm 1 (shared FeatureBuffer) ->
//                forward-only pass -> resolve futures -> release refs
//
// Sharing the feature buffer with a concurrently-training pipeline is the
// point: inference hits features training already paid to load, and vice
// versa. Two disciplines make the sharing safe:
//
//   * Pin budget. Training's deadlock-freedom argument reserves Ne x Mb
//     slots for its extractors. Serving acquires its sampled node count
//     against a counting semaphore of (num_slots - reserved_slots) BEFORE
//     touching check_and_ref, so serve pins can never eat into training's
//     reserve — neither side can deadlock the other. A micro-batch larger
//     than the whole serve budget fails cleanly instead of wedging.
//   * Whole-batch failure granularity. An unrecoverable read fails the
//     micro-batch exactly like a training batch: unresolved loads are
//     marked failed (waking cross-batch waiters), every reference is
//     released, and each request's future resolves with kFailed. Training
//     batches that were waiting on those nodes retry the load from scratch
//     — an EIO during serving degrades the affected requests, never the
//     training run.
//
// Forward passes run on per-worker model replicas (GnnModel's forward
// caches are not thread-safe) refreshed from the shared parameter source
// via refresh_params(); with a GpuDevice they are attributed as kernel
// launches, otherwise as CPU busy time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "serve/coalescer.hpp"
#include "serve/request_queue.hpp"

namespace gnndrive {

/// Serving span names (Chrome-trace rows, like the kSpan* training stages).
inline constexpr const char* kSpanServeSample = "serve.sample";
inline constexpr const char* kSpanServeExtract = "serve.extract";
inline constexpr const char* kSpanServeInfer = "serve.infer";

/// The pieces serving shares with training. All pointers are borrowed and
/// must outlive the engine; `gpu` may be null (host inference).
struct ServeSubstrate {
  FeatureBuffer* feature_buffer = nullptr;
  GnnModel* params = nullptr;  ///< parameter source for the worker replicas
  GpuDevice* gpu = nullptr;
  /// Feature-buffer slots reserved for the training pipeline's deadlock
  /// freedom (Ne x Mb); serving pins only what lies beyond this.
  std::uint64_t reserved_slots = 0;
};

class ServeEngine : NonCopyable {
 public:
  ServeEngine(const RunContext& ctx, const ServeConfig& config,
              ServeSubstrate substrate);
  /// Convenience: serve alongside (or after) training on `host`, sharing
  /// its feature buffer, model parameters and GPU, honouring its Ne x Mb
  /// reserve. An empty config.sampler.fanouts defaults to the training
  /// fanouts (the fanout depth must match the model's layer count).
  ServeEngine(const RunContext& ctx, ServeConfig config, GnnDrive& host);
  ~ServeEngine();

  void start();
  /// Admission-controlled submit; never blocks. Valid before start() (the
  /// backlog is served once workers run) and after stop() (rejects).
  std::future<InferResult> submit(NodeId node);
  /// Closes admission, serves out the backlog, joins the workers. Rethrows
  /// the first worker exception, if any.
  void stop();
  bool running() const { return running_; }

  /// Publishes a fresh replica set copied from the substrate's source model
  /// (e.g. after further training epochs). Safe concurrent with in-flight
  /// inference — workers re-resolve the replica set at each micro-batch
  /// boundary (drain-and-swap), so no request ever observes a half-updated
  /// model and none is dropped. The source model itself must be quiescent
  /// (not mid-training-step) while the copy runs.
  void refresh_params();

  /// Hot-swaps the worker replicas to the newest valid checkpoint
  /// generation (parameters only — serving has no optimizer state). Same
  /// drain-and-swap guarantee as refresh_params, and a corrupt or absent
  /// checkpoint leaves the live replicas untouched: the load stages into a
  /// scratch model first. Returns the generation adopted, 0 if none.
  std::uint64_t hot_swap_from(CheckpointManager& manager,
                              const ModelFingerprint& expect);

  /// Version of the replica set workers currently resolve: the checkpoint
  /// generation of the last hot swap (refresh_params keeps the version).
  std::uint64_t model_generation() const;

  /// Aggregate serving report (also published under "serve.*" metrics).
  ServeReport report() const;
  /// Max nodes serving may pin concurrently (num_slots - reserved_slots).
  std::uint64_t pin_budget() const { return pin_budget_; }

 private:
  struct WorkerState;
  /// Versioned, immutable-once-published set of per-worker forward
  /// replicas: the hot-swap unit. Workers grab the current set at each
  /// micro-batch boundary and hold the shared_ptr for the batch's
  /// duration; publishing a new set retires the old one when its last
  /// in-flight batch finishes.
  struct ModelSet;
  std::shared_ptr<const ModelSet> current_models() const;
  void publish_models(std::shared_ptr<const ModelSet> set);
  void worker_loop(std::uint32_t worker_id);
  void process_batch(std::vector<PendingRequest>&& batch, WorkerState& ws);
  /// Algorithm-1 extraction for a serve micro-batch; returns false when the
  /// batch failed permanently (references still held — caller releases).
  bool extract_batch(SampledBatch& batch, WorkerState& ws);
  void acquire_pins(std::uint64_t n);
  void release_pins(std::uint64_t n);
  void finish(PendingRequest& r, InferStatus status, std::int32_t cls,
              std::uint32_t coalesced, TimePoint done);

  RunContext ctx_;
  ServeConfig config_;
  ServeSubstrate sub_;
  NeighborSampler sampler_;
  RequestQueue queue_;
  MicroBatchCoalescer coalescer_;

  // Counting semaphore over the serve share of feature-buffer slots.
  std::uint64_t pin_budget_ = 0;
  std::mutex pin_mu_;
  std::condition_variable pin_cv_;
  std::uint64_t pins_in_use_ = 0;

  std::uint32_t covering_row_bytes_ = 0;
  std::uint32_t staging_row_bytes_ = 0;  ///< per staging slot (>= a segment)
  std::uint32_t staging_rows_ = 0;       ///< staging slots per worker
  PinnedBytes staging_pin_;
  std::vector<std::uint8_t> staging_;  ///< workers x staging_rows_ slots

  mutable std::mutex models_mu_;
  std::shared_ptr<const ModelSet> models_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_batch_seq_{0};
  bool running_ = false;

  std::mutex err_mu_;
  std::exception_ptr error_;

  // Run accounting (always on) + optional registry mirrors.
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> io_errors_{0};
  std::atomic<std::uint64_t> io_retries_{0};
  ConcurrentHistogram h_queue_wait_;
  ConcurrentHistogram h_extract_;
  ConcurrentHistogram h_infer_;
  ConcurrentHistogram h_latency_;
  FeatureBufferStats fb_at_start_{};
  Counter* m_completed_ = nullptr;      ///< serve.completed
  Counter* m_failed_ = nullptr;         ///< serve.failed
  Counter* m_shed_ = nullptr;           ///< serve.shed_deadline
  Counter* m_batches_ = nullptr;        ///< serve.batches
  Counter* m_io_retries_ = nullptr;     ///< serve.io_retries
  Counter* m_io_errors_ = nullptr;      ///< serve.io_errors
  Counter* m_hot_swaps_ = nullptr;      ///< serve.hot_swaps
  Gauge* m_model_gen_ = nullptr;        ///< serve.model_generation
  Gauge* m_pinned_ = nullptr;           ///< serve.pinned (nodes pinned)
  Gauge* m_running_ = nullptr;          ///< serve.running (/readyz liveness)
  ConcurrentHistogram* rm_latency_ = nullptr;     ///< serve.latency.us
  ConcurrentHistogram* rm_queue_wait_ = nullptr;  ///< serve.queue_wait.us
  ConcurrentHistogram* rm_extract_ = nullptr;     ///< serve.extract.us
  ConcurrentHistogram* rm_infer_ = nullptr;       ///< serve.infer.us
  ConcurrentHistogram* rm_batch_size_ = nullptr;  ///< serve.batch.size
};

}  // namespace gnndrive
