// Request/result vocabulary of GNNDrive-Serve, the online inference
// serving subsystem (docs/serving.md).
//
// Serving accepts per-node classification requests and drives them through
// sample -> extract -> infer micro-batches that share the training
// pipeline's feature buffer, staging rows, io ring and simulated SSD. This
// header holds the types that cross the serving API boundary; the
// machinery lives in request_queue.hpp / coalescer.hpp / engine.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "core/extract.hpp"  // CoalesceConfig (shared with training)
#include "core/system.hpp"   // StageLatency (p50/p95/p99 summary rows)
#include "sampling/sampler.hpp"

namespace gnndrive {

/// Terminal state of one inference request.
enum class InferStatus {
  kOk = 0,        ///< served; predicted_class is valid
  kRejected,      ///< shed at admission (request queue full or closed)
  kShedDeadline,  ///< shed before service (SLO deadline already blown)
  kFailed,        ///< dropped: extraction failed permanently or overload
};

const char* infer_status_name(InferStatus status);

struct InferResult {
  std::uint64_t request_id = 0;
  InferStatus status = InferStatus::kRejected;
  std::int32_t predicted_class = -1;  ///< argmax logit; -1 unless kOk
  double queue_us = 0.0;   ///< arrival -> picked into a micro-batch
  double total_us = 0.0;   ///< arrival -> completion (the SLO latency)
  std::uint32_t coalesced_with = 0;  ///< requests in the same micro-batch
};

/// SLO knobs (docs/serving.md "SLO machinery").
struct ServeSloConfig {
  /// Per-request deadline measured from arrival; 0 disables deadlines.
  double deadline_ms = 50.0;
  /// Shed requests whose deadline already passed when a worker picks them
  /// up, instead of serving them uselessly late (deadline load shedding).
  bool shed_expired = true;
};

struct ServeConfig {
  /// Inference fanouts. Must match the model's layer count; the GnnDrive
  /// convenience constructor defaults this to the training sampler.
  SamplerConfig sampler;
  std::uint32_t workers = 2;         ///< sample+extract+infer workers
  std::size_t queue_capacity = 256;  ///< admission bound; beyond it, shed
  /// Micro-batch coalescing: a worker serves up to max_batch requests at
  /// once, waiting at most max_wait_us after the first request for more to
  /// arrive. max_batch = 1 degrades to the naive per-request path that
  /// bench/serve_latency compares against.
  std::uint32_t max_batch = 8;
  double max_wait_us = 300.0;
  ServeSloConfig slo;
  unsigned ring_depth = 64;  ///< per-worker async read depth
  /// Transient-error handling, mirroring training's extract stage: flat
  /// short retry delay (serving favours latency over backoff politeness),
  /// watchdog timeout for stuck reads, and a cap on waiting for nodes
  /// another thread is loading.
  std::uint32_t max_retries = 3;
  double retry_delay_us = 50.0;
  double request_timeout_ms = 250.0;
  double wait_list_timeout_ms = 10000.0;
  /// Sorted-run read merging for serve extraction, same machinery and knobs
  /// as training (core/extract.hpp); `coalesce.enabled = false` restores
  /// one read per to-load node.
  CoalesceConfig coalesce;
};

/// End-of-run serving report: the epoch-style summary for the serve path.
/// Percentile rows come from the always-on concurrent histograms; the same
/// numbers are published under "serve.*" in the metrics registry.
struct ServeReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;        ///< admission shed (queue full)
  std::uint64_t shed_deadline = 0;   ///< deadline shed (SLO blown)
  std::uint64_t batches = 0;         ///< micro-batches collected
  double coalesce_factor = 0.0;      ///< mean requests per micro-batch
  std::uint64_t io_errors = 0;
  std::uint64_t io_retries = 0;
  StageLatency queue_wait;  ///< per request: arrival -> picked
  StageLatency extract;     ///< per micro-batch extract time
  StageLatency infer;       ///< per micro-batch forward pass
  StageLatency latency;     ///< per served request: arrival -> done
  double fb_hit_rate = 0.0; ///< feature-buffer hit rate over the run
  std::uint64_t queue_depth_max = 0;

  /// Multi-line printable summary (format of EpochObs::format).
  std::string format() const;
};

}  // namespace gnndrive
