#include "serve/request_queue.hpp"

#include "obs/metrics.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

RequestQueue::RequestQueue(const ServeConfig& config, Telemetry* telemetry)
    : deadline_ms_(config.slo.deadline_ms),
      q_(std::max<std::size_t>(config.queue_capacity, 1)) {
  if (telemetry != nullptr) {
    MetricsRegistry& reg = *telemetry->metrics();
    m_submitted_ = &reg.counter("serve.submitted");
    m_rejected_ = &reg.counter("serve.rejected");
    q_.bind_metrics(&reg.gauge("serve.queue.depth"), nullptr,
                    &reg.counter("serve.queue.pop_blocked"));
  }
}

std::future<InferResult> RequestQueue::submit(NodeId node) {
  PendingRequest r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.node = node;
  r.arrival = Clock::now();
  if (deadline_ms_ > 0) {
    r.has_deadline = true;
    r.deadline = r.arrival + from_us(deadline_ms_ * 1e3);
  }
  std::future<InferResult> fut = r.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (m_submitted_ != nullptr) m_submitted_->add();
  // try_push moves the request out only on success, so the promise is still
  // ours to resolve on the rejection path.
  if (!q_.try_push(r)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (m_rejected_ != nullptr) m_rejected_->add();
    InferResult res;
    res.request_id = r.id;
    res.status = InferStatus::kRejected;
    r.promise.set_value(res);
  }
  return fut;
}

}  // namespace gnndrive
