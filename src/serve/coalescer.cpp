#include "serve/coalescer.hpp"

namespace gnndrive {

std::vector<PendingRequest> MicroBatchCoalescer::collect() {
  std::vector<PendingRequest> batch;
  auto first = queue_.pop();
  if (!first.has_value()) return batch;  // closed & drained
  batch.reserve(max_batch_);
  batch.push_back(std::move(*first));
  if (max_batch_ > 1 && max_wait_ > Duration::zero()) {
    const TimePoint window_end = Clock::now() + max_wait_;
    while (batch.size() < max_batch_) {
      const TimePoint now = Clock::now();
      if (now >= window_end) break;
      auto r = queue_.try_pop_for(window_end - now);
      if (!r.has_value()) break;  // window elapsed (or queue closed & empty)
      batch.push_back(std::move(*r));
    }
  } else if (max_batch_ > 1) {
    // Zero window: opportunistically absorb whatever is already queued.
    while (batch.size() < max_batch_) {
      auto r = queue_.try_pop_for(Duration::zero());
      if (!r.has_value()) break;
      batch.push_back(std::move(*r));
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  return batch;
}

}  // namespace gnndrive
