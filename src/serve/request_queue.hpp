// Admission-controlled request queue for GNNDrive-Serve.
//
// The front door of the serving path: clients submit node ids and get a
// future back immediately. The queue is bounded — when it is full the
// request is rejected on the submitting thread (the future resolves with
// kRejected right away) instead of blocking the client, which is the
// serving equivalent of backpressure: overload sheds at the cheapest
// possible point, before any sampling or I/O happened. Deadlines are
// stamped at admission so every later stage can shed expired work with one
// clock comparison.
#pragma once

#include <atomic>
#include <future>
#include <optional>

#include "serve/request.hpp"
#include "util/queue.hpp"

namespace gnndrive {

class Telemetry;

/// One admitted request in flight through the serving pipeline. Moved from
/// the queue into a micro-batch; the promise is resolved exactly once by
/// whichever stage terminates the request.
struct PendingRequest {
  std::uint64_t id = 0;
  NodeId node = 0;
  TimePoint arrival{};
  TimePoint deadline{};  ///< arrival + SLO; meaningful iff has_deadline
  bool has_deadline = false;
  double queue_us = 0.0;  ///< filled when a worker picks the request up
  std::promise<InferResult> promise;
};

class RequestQueue : NonCopyable {
 public:
  /// `telemetry` (optional) publishes serve.submitted / serve.rejected and
  /// the serve.queue.depth gauge into the metrics registry.
  RequestQueue(const ServeConfig& config, Telemetry* telemetry);

  /// Admits or sheds. Never blocks: on a full (or closed) queue the
  /// promise is resolved with kRejected before returning. The returned
  /// future is valid either way.
  std::future<InferResult> submit(NodeId node);

  // -- Consumer side (the micro-batch coalescer) ---------------------------
  std::optional<PendingRequest> pop() { return q_.pop(); }
  std::optional<PendingRequest> try_pop_for(Duration timeout) {
    return q_.try_pop_for(timeout);
  }

  /// Closes admission: subsequent submits reject, pops drain the backlog
  /// then return nullopt.
  void close() { q_.close(); }

  std::size_t depth() const { return q_.size(); }
  std::size_t max_depth() const { return q_.max_size(); }
  std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const double deadline_ms_;
  BoundedQueue<PendingRequest> q_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  Counter* m_submitted_ = nullptr;  ///< serve.submitted
  Counter* m_rejected_ = nullptr;   ///< serve.rejected
};

}  // namespace gnndrive
