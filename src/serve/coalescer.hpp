// Micro-batch coalescer for GNNDrive-Serve.
//
// Individual inference requests are tiny (one seed), but their sampled
// fanouts overlap heavily — serving them one at a time repeats feature-
// buffer lookups and SSD reads that a merged batch performs once. The
// coalescer groups concurrent requests under two bounds:
//
//   * size:  at most `max_batch` requests per micro-batch, so a burst
//            cannot grow the batch (and its extract latency) without limit;
//   * time:  at most `max_wait_us` after the FIRST request was picked up,
//            so a lone request under light load pays a bounded latency tax.
//
// The time bound rides on BoundedQueue::try_pop_for: a request that is
// already queued is always preferred over the timeout, so under load the
// window never adds idle waiting — it only fills.
#pragma once

#include <atomic>
#include <vector>

#include "serve/request_queue.hpp"

namespace gnndrive {

class MicroBatchCoalescer : NonCopyable {
 public:
  MicroBatchCoalescer(RequestQueue& queue, std::uint32_t max_batch,
                      double max_wait_us)
      : queue_(queue), max_batch_(std::max(max_batch, 1u)),
        max_wait_(from_us(std::max(max_wait_us, 0.0))) {}

  /// Blocks for the first request, then collects until the batch is full or
  /// the wait window closes. An empty vector means the queue is closed and
  /// drained (worker shutdown).
  std::vector<PendingRequest> collect();

  std::uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Mean requests per collected micro-batch (the "coalesce factor"; >= 1
  /// once any batch ran, 0 before).
  double coalesce_factor() const {
    const std::uint64_t b = batches();
    return b > 0 ? static_cast<double>(requests()) / static_cast<double>(b)
                 : 0.0;
  }

 private:
  RequestQueue& queue_;
  const std::uint32_t max_batch_;
  const Duration max_wait_;
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace gnndrive
