#include "serve/engine.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/attribution.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sampling/topology.hpp"
#include "util/logging.hpp"

namespace gnndrive {

namespace {

/// Serve batch ids live far above training's ((epoch+1) << 24 | b) space so
/// trace rows and log lines never collide.
constexpr std::uint64_t kServeBatchBase = 1ull << 48;

ServeConfig resolve_serve_config(ServeConfig config, GnnDrive& host) {
  if (config.sampler.fanouts.size() !=
      host.model().config().num_layers) {
    config.sampler = host.config().common.sampler;
  }
  // Serving shares the host's feature buffer, so the hot partition must be
  // pinned (and sealed) before the serve pin budget is carved from the cold
  // region. A no-op under the LRU policy or when already profiled.
  host.ensure_hot_cache();
  return config;
}

}  // namespace

const char* infer_status_name(InferStatus status) {
  switch (status) {
    case InferStatus::kOk: return "ok";
    case InferStatus::kRejected: return "rejected";
    case InferStatus::kShedDeadline: return "shed_deadline";
    case InferStatus::kFailed: return "failed";
  }
  return "unknown";
}

std::string ServeReport::format() const {
  std::string out;
  char line[192];
  const auto row = [&](const char* name, const StageLatency& s) {
    std::snprintf(line, sizeof(line),
                  "  %-8s n=%-5llu p50=%9.1fus p95=%9.1fus p99=%9.1fus "
                  "mean=%9.1fus\n",
                  name, static_cast<unsigned long long>(s.count), s.p50_us,
                  s.p95_us, s.p99_us, s.mean_us);
    out += line;
  };
  std::snprintf(line, sizeof(line),
                "  requests submitted=%llu ok=%llu failed=%llu "
                "rejected=%llu shed=%llu\n",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(shed_deadline));
  out += line;
  std::snprintf(line, sizeof(line),
                "  batching batches=%llu coalesce=%.2fx queue_max=%llu\n",
                static_cast<unsigned long long>(batches), coalesce_factor,
                static_cast<unsigned long long>(queue_depth_max));
  out += line;
  row("latency", latency);
  row("qwait", queue_wait);
  row("extract", extract);
  row("infer", infer);
  std::snprintf(line, sizeof(line),
                "  fbuffer  hit-rate=%.1f%%  io_errors=%llu io_retries=%llu\n",
                100.0 * fb_hit_rate,
                static_cast<unsigned long long>(io_errors),
                static_cast<unsigned long long>(io_retries));
  out += line;
  return out;
}

struct ServeEngine::ModelSet {
  std::uint64_t version = 0;  ///< checkpoint generation of the last hot swap
  std::vector<std::unique_ptr<GnnModel>> replicas;  ///< one per worker
};

struct ServeEngine::WorkerState {
  std::unique_ptr<MmapTopology> topo;
  std::unique_ptr<IoRing> ring;
  std::uint8_t* staging_base = nullptr;  ///< staging_rows_ segment-wide rows
  /// Replica set pinned for the current micro-batch (drain-and-swap: held
  /// until the batch finishes, so a concurrent publish never frees a model
  /// under an in-flight forward pass).
  std::shared_ptr<const ModelSet> models;
  GnnModel* model = nullptr;             ///< this worker's forward replica
  ExtractMetricHooks hooks;              ///< io.coalesce.* (null w/o registry)
};

ServeEngine::ServeEngine(const RunContext& ctx, const ServeConfig& config,
                         ServeSubstrate substrate)
    : ctx_(ctx), config_(config), sub_(substrate),
      sampler_(config_.sampler),
      queue_(config_, ctx.telemetry),
      coalescer_(queue_, config_.max_batch, config_.max_wait_us) {
  GD_CHECK_MSG(ctx_.dataset != nullptr && ctx_.ssd != nullptr,
               "ServeEngine needs a dataset and an SSD");
  GD_CHECK_MSG(sub_.feature_buffer != nullptr && sub_.params != nullptr,
               "ServeEngine needs a feature buffer and a parameter source");
  GD_CHECK_MSG(config_.sampler.fanouts.size() ==
                   sub_.params->config().num_layers,
               "serve fanout depth must match the model's layer count");
  config_.workers = std::max(config_.workers, 1u);
  config_.ring_depth = std::max(config_.ring_depth, 1u);

  // The serve pin budget comes from the COLD region only: hot-partition
  // slots are pinned and never pass through allocate_slot, so they cannot
  // back serve's slot demand. cold_slots == num_slots with the hot cache off.
  const std::uint64_t cold = sub_.feature_buffer->cold_slots();
  if (cold <= sub_.reserved_slots) {
    throw std::invalid_argument(
        "ServeEngine: no cold feature-buffer headroom beyond the training "
        "reserve (cold_slots=" + std::to_string(cold) +
        " reserved=" + std::to_string(sub_.reserved_slots) +
        "); shrink cache.hot_fraction or grow the buffer");
  }
  pin_budget_ = cold - sub_.reserved_slots;

  const Dataset& ds = *ctx_.dataset;
  const auto row_bytes =
      static_cast<std::uint32_t>(ds.layout().feature_row_bytes);
  covering_row_bytes_ =
      row_bytes % kSectorSize == 0
          ? row_bytes
          : static_cast<std::uint32_t>(round_up(row_bytes, kSectorSize)) +
                kSectorSize;
  // Coalesced extraction sizing, mirroring the training pipeline: staging
  // rows widen to hold a merged segment, the per-worker pool shrinks.
  staging_row_bytes_ =
      staging_row_bytes_for(config_.coalesce, covering_row_bytes_);
  staging_rows_ = staging_rows_for(config_.coalesce, config_.ring_depth);
  const std::uint64_t staging_bytes =
      static_cast<std::uint64_t>(config_.workers) * staging_rows_ *
      staging_row_bytes_;
  if (ctx_.host_mem != nullptr) {
    staging_pin_ = PinnedBytes(*ctx_.host_mem, staging_bytes, "serve-staging");
  }
  staging_.resize(staging_bytes);

  // Per-worker forward replicas: GnnModel's forward caches are per-instance
  // state, so the training model cannot be shared across serve workers.
  {
    auto initial = std::make_shared<ModelSet>();
    for (std::uint32_t w = 0; w < config_.workers; ++w) {
      initial->replicas.push_back(
          std::make_unique<GnnModel>(sub_.params->config()));
      initial->replicas.back()->copy_params_from(*sub_.params);
    }
    models_ = std::move(initial);
  }

  if (ctx_.telemetry != nullptr) {
    MetricsRegistry& reg = *ctx_.telemetry->metrics();
    m_completed_ = &reg.counter("serve.completed");
    m_failed_ = &reg.counter("serve.failed");
    m_shed_ = &reg.counter("serve.shed_deadline");
    m_batches_ = &reg.counter("serve.batches");
    m_io_retries_ = &reg.counter("serve.io_retries");
    m_io_errors_ = &reg.counter("serve.io_errors");
    m_hot_swaps_ = &reg.counter("serve.hot_swaps");
    m_model_gen_ = &reg.gauge("serve.model_generation");
    m_pinned_ = &reg.gauge("serve.pinned");
    m_running_ = &reg.gauge("serve.running");
    rm_latency_ = &reg.histogram("serve.latency.us");
    rm_queue_wait_ = &reg.histogram("serve.queue_wait.us");
    rm_extract_ = &reg.histogram("serve.extract.us");
    rm_infer_ = &reg.histogram("serve.infer.us");
    rm_batch_size_ = &reg.histogram("serve.batch.size");

    // Tell the attributor about the serve side of the topology and register
    // a windowed p99-vs-SLO rule so the watcher alerts the moment serving
    // degrades, instead of after a run-summary aggregate drifts.
    AttributionConfig ac = ctx_.telemetry->attributor()->config();
    ac.serve_workers = config_.workers;
    ac.serve_slo_us = config_.slo.deadline_ms * 1e3;
    ctx_.telemetry->attributor()->set_config(ac);
    if (config_.slo.deadline_ms > 0) {
      SloRule rule;
      rule.name = "serve_p99_slo";
      rule.kind = SloRule::Kind::kHistogramQuantile;
      rule.metric = "serve.latency.us";
      rule.quantile = 0.99;
      rule.threshold = config_.slo.deadline_ms * 1e3;
      rule.window_s = 2.0;
      ctx_.telemetry->slo()->add_rule(std::move(rule));
    }
  }

  GD_LOG_INFO("ServeEngine: workers=%u max_batch=%u wait=%.0fus "
              "pin_budget=%llu",
              config_.workers, config_.max_batch, config_.max_wait_us,
              static_cast<unsigned long long>(pin_budget_));
}

ServeEngine::ServeEngine(const RunContext& ctx, ServeConfig config,
                         GnnDrive& host)
    : ServeEngine(ctx, resolve_serve_config(std::move(config), host),
                  ServeSubstrate{
                      &host.feature_buffer(), &host.model(), host.gpu(),
                      static_cast<std::uint64_t>(host.effective_extractors()) *
                          host.max_batch_nodes()}) {}

ServeEngine::~ServeEngine() {
  // Join without rethrowing: destructors must not throw. stop() is the
  // polite path that surfaces worker errors.
  if (running_) {
    queue_.close();
    for (auto& t : workers_) t.join();
    workers_.clear();
    running_ = false;
    if (m_running_ != nullptr) m_running_->sub(1);
    if (ctx_.telemetry != nullptr) ctx_.telemetry->sampler()->release();
  }
}

void ServeEngine::start() {
  GD_CHECK_MSG(!running_, "ServeEngine::start called twice");
  fb_at_start_ = sub_.feature_buffer->stats(FbClient::kServe);
  running_ = true;
  // Liveness + telemetry lease: /readyz keys off serve.running, and the
  // time-series sampler runs for as long as the engine accepts requests.
  if (m_running_ != nullptr) m_running_->add(1);
  if (ctx_.telemetry != nullptr) ctx_.telemetry->sampler()->retain();
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] {
      try {
        worker_loop(w);
      } catch (...) {
        {
          std::lock_guard lk(err_mu_);
          if (!error_) error_ = std::current_exception();
        }
        queue_.close();  // fail fast: stop admitting, wake siblings
      }
    });
  }
}

std::future<InferResult> ServeEngine::submit(NodeId node) {
  return queue_.submit(node);
}

void ServeEngine::stop() {
  if (!running_) return;
  queue_.close();
  for (auto& t : workers_) t.join();
  workers_.clear();
  running_ = false;
  if (m_running_ != nullptr) m_running_->sub(1);
  if (ctx_.telemetry != nullptr) ctx_.telemetry->sampler()->release();
  std::lock_guard lk(err_mu_);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

std::shared_ptr<const ServeEngine::ModelSet> ServeEngine::current_models()
    const {
  std::lock_guard lk(models_mu_);
  return models_;
}

void ServeEngine::publish_models(std::shared_ptr<const ModelSet> set) {
  std::lock_guard lk(models_mu_);
  models_ = std::move(set);
  if (m_model_gen_ != nullptr) {
    m_model_gen_->set(static_cast<std::int64_t>(models_->version));
  }
}

std::uint64_t ServeEngine::model_generation() const {
  std::lock_guard lk(models_mu_);
  return models_->version;
}

void ServeEngine::refresh_params() {
  auto set = std::make_shared<ModelSet>();
  set->version = model_generation();
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    set->replicas.push_back(std::make_unique<GnnModel>(sub_.params->config()));
    set->replicas.back()->copy_params_from(*sub_.params);
  }
  publish_models(std::move(set));
}

std::uint64_t ServeEngine::hot_swap_from(CheckpointManager& manager,
                                         const ModelFingerprint& expect) {
  // Stage into a scratch model first: a corrupt or absent checkpoint must
  // leave the live replicas untouched.
  GnnModel staged(sub_.params->config());
  auto loaded = manager.load_latest(staged, /*adam=*/nullptr, expect);
  if (!loaded.has_value()) return 0;
  auto set = std::make_shared<ModelSet>();
  set->version = loaded->generation;
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    set->replicas.push_back(std::make_unique<GnnModel>(sub_.params->config()));
    set->replicas.back()->copy_params_from(staged);
  }
  publish_models(std::move(set));
  if (m_hot_swaps_ != nullptr) m_hot_swaps_->add();
  GD_LOG_INFO("ServeEngine: hot-swapped to checkpoint generation %llu",
              static_cast<unsigned long long>(loaded->generation));
  return loaded->generation;
}

void ServeEngine::acquire_pins(std::uint64_t n) {
  std::unique_lock lk(pin_mu_);
  pin_cv_.wait(lk, [&] { return pin_budget_ - pins_in_use_ >= n; });
  pins_in_use_ += n;
  if (m_pinned_ != nullptr) {
    m_pinned_->set(static_cast<std::int64_t>(pins_in_use_));
  }
}

void ServeEngine::release_pins(std::uint64_t n) {
  {
    std::lock_guard lk(pin_mu_);
    GD_CHECK_MSG(pins_in_use_ >= n, "serve pin accounting underflow");
    pins_in_use_ -= n;
    if (m_pinned_ != nullptr) {
      m_pinned_->set(static_cast<std::int64_t>(pins_in_use_));
    }
  }
  pin_cv_.notify_all();
}

void ServeEngine::finish(PendingRequest& r, InferStatus status,
                         std::int32_t cls, std::uint32_t coalesced,
                         TimePoint done) {
  InferResult res;
  res.request_id = r.id;
  res.status = status;
  res.predicted_class = cls;
  res.queue_us = r.queue_us;
  res.total_us = to_seconds(done - r.arrival) * 1e6;
  res.coalesced_with = coalesced;
  switch (status) {
    case InferStatus::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (m_completed_ != nullptr) m_completed_->add();
      // The SLO latency distribution covers served requests only; shed and
      // failed requests are counted, not timed.
      h_latency_.add_us(res.total_us);
      if (rm_latency_ != nullptr) rm_latency_->add_us(res.total_us);
      break;
    case InferStatus::kShedDeadline:
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      if (m_shed_ != nullptr) m_shed_->add();
      break;
    case InferStatus::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (m_failed_ != nullptr) m_failed_->add();
      break;
    case InferStatus::kRejected:
      break;  // resolved by the queue, never reaches here
  }
  r.promise.set_value(std::move(res));
}

void ServeEngine::worker_loop(std::uint32_t worker_id) {
  WorkerState ws;
  ws.topo = std::make_unique<MmapTopology>(*ctx_.dataset, *ctx_.page_cache);
  IoRingConfig rc;
  rc.queue_depth = config_.ring_depth;
  rc.direct = true;  // serving always bypasses the page cache, like training
  rc.max_transfer_bytes = staging_row_bytes_;
  ws.ring = std::make_unique<IoRing>(*ctx_.ssd, rc, nullptr, ctx_.telemetry);
  ws.staging_base = staging_.data() + static_cast<std::uint64_t>(worker_id) *
                                          staging_rows_ * staging_row_bytes_;
  if (ctx_.telemetry != nullptr) {
    MetricsRegistry& reg = *ctx_.telemetry->metrics();
    ws.hooks.segments = &reg.counter("io.coalesce.segments");
    ws.hooks.rows = &reg.counter("io.coalesce.rows");
    ws.hooks.rows_per_read = &reg.histogram("io.coalesce.rows_per_read");
    ws.hooks.staging_in_use = &reg.gauge("io.staging_in_use");
  }
  for (;;) {
    auto batch = coalescer_.collect();
    if (batch.empty()) return;  // queue closed & drained
    // Resolve the replica set at the micro-batch boundary and pin it for
    // the batch's duration — the drain half of drain-and-swap.
    ws.models = current_models();
    ws.model = ws.models->replicas[worker_id].get();
    process_batch(std::move(batch), ws);
    ws.model = nullptr;
    ws.models.reset();  // retire the old set promptly after a swap
  }
}

void ServeEngine::process_batch(std::vector<PendingRequest>&& batch,
                                WorkerState& ws) {
  const std::uint64_t batch_id =
      kServeBatchBase |
      (next_batch_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  SpanTracer* tracer =
      ctx_.telemetry != nullptr ? ctx_.telemetry->tracer() : nullptr;
  const bool tracing = tracer != nullptr && tracer->enabled();
  const auto coalesced = static_cast<std::uint32_t>(batch.size());
  if (m_batches_ != nullptr) m_batches_->add();
  if (rm_batch_size_ != nullptr) {
    rm_batch_size_->add_us(static_cast<double>(coalesced));
  }

  // Deadline shedding: a request whose SLO already expired while queued is
  // resolved immediately — spending I/O on it cannot make it on-time, and
  // dropping it shrinks the batch for everyone behind it.
  const TimePoint picked = Clock::now();
  std::vector<PendingRequest> active;
  active.reserve(batch.size());
  for (PendingRequest& r : batch) {
    r.queue_us = to_seconds(picked - r.arrival) * 1e6;
    h_queue_wait_.add_us(r.queue_us);
    if (rm_queue_wait_ != nullptr) rm_queue_wait_->add_us(r.queue_us);
    if (r.has_deadline && config_.slo.shed_expired && picked > r.deadline) {
      finish(r, InferStatus::kShedDeadline, -1, coalesced, picked);
    } else {
      active.push_back(std::move(r));
    }
  }
  if (active.empty()) return;

  // Merge the surviving requests into one sampled batch. The sampler
  // dedupes repeated seeds; seed_row maps each request back to its logits
  // row (first occurrence wins).
  std::vector<NodeId> seeds;
  seeds.reserve(active.size());
  std::vector<std::uint32_t> seed_row(active.size(), 0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    std::uint32_t row = 0;
    while (row < seeds.size() && seeds[row] != active[i].node) ++row;
    if (row == seeds.size()) seeds.push_back(active[i].node);
    seed_row[i] = row;
  }
  const TimePoint ts = Clock::now();
  SampledBatch sb;
  {
    BusyScope busy(ctx_.telemetry);
    sb = sampler_.sample(batch_id, seeds, *ws.topo, nullptr);
  }
  if (tracing) tracer->record(kSpanServeSample, batch_id, 0, ts, Clock::now());

  bool served = false;
  std::vector<std::int32_t> pred(active.size(), -1);
  // Hot-partition nodes resolve to pinned slots without an allocation, so
  // only the cold residue of the batch draws on the serve pin budget.
  std::uint64_t need = sb.num_nodes();
  if (sub_.feature_buffer->hot_sealed()) {
    std::uint64_t hot = 0;
    for (NodeId v : sb.nodes) {
      if (sub_.feature_buffer->hot_slot(v) != kNoSlot) ++hot;
    }
    need -= hot;
  }
  if (need > pin_budget_) {
    // The batch cannot fit the serve share of the buffer even alone;
    // admitting it to check_and_ref could deadlock against training.
    log_structured(LogLevel::kWarn, "serve_batch_over_budget",
                   {kv("batch", batch_id), kv("nodes", need),
                    kv("budget", pin_budget_)});
  } else {
    acquire_pins(need);
    const TimePoint te = Clock::now();
    const bool extracted = extract_batch(sb, ws);
    const double extract_us = to_seconds(Clock::now() - te) * 1e6;
    h_extract_.add_us(extract_us);
    if (rm_extract_ != nullptr) rm_extract_->add_us(extract_us);
    if (tracing) {
      tracer->record(kSpanServeExtract, batch_id, 0, te, Clock::now());
    }
    if (extracted) {
      const TimePoint ti = Clock::now();
      const std::uint32_t dim = ctx_.dataset->spec().feature_dim;
      Tensor x0(static_cast<std::uint32_t>(sb.num_nodes()), dim);
      Tensor logits;
      const auto run = [&] {
        for (std::uint32_t i = 0; i < sb.num_nodes(); ++i) {
          GD_CHECK_MSG(sb.alias[i] != kNoSlot, "untracked node at infer time");
          std::memcpy(x0.row(i), sub_.feature_buffer->slot_data(sb.alias[i]),
                      dim * 4);
        }
        logits = ws.model->forward(sb, x0);
      };
      if (sub_.gpu != nullptr) {
        sub_.gpu->launch(run);
      } else {
        BusyScope busy(ctx_.telemetry);
        run();
      }
      const double infer_us = to_seconds(Clock::now() - ti) * 1e6;
      h_infer_.add_us(infer_us);
      if (rm_infer_ != nullptr) rm_infer_->add_us(infer_us);
      if (tracing) {
        tracer->record(kSpanServeInfer, batch_id, 0, ti, Clock::now());
      }
      for (std::size_t i = 0; i < active.size(); ++i) {
        const float* row = logits.row(seed_row[i]);
        std::uint32_t best = 0;
        for (std::uint32_t c = 1; c < logits.cols(); ++c) {
          if (row[c] > row[best]) best = c;
        }
        pred[i] = static_cast<std::int32_t>(best);
      }
      served = true;
    }
    // Success or failure, every reference taken in pass 1 is dropped here —
    // the zero-slot-leak guarantee the fault tests pin down.
    sub_.feature_buffer->release(sb.nodes);
    release_pins(need);
  }

  const TimePoint done = Clock::now();
  for (std::size_t i = 0; i < active.size(); ++i) {
    finish(active[i], served ? InferStatus::kOk : InferStatus::kFailed,
           pred[i], coalesced, done);
  }
}

bool ServeEngine::extract_batch(SampledBatch& batch, WorkerState& ws) {
  // Runs the shared coalescing core (core/extract.cpp) — the same planner,
  // submit/reap loop and fault protocol as GnnDrive::extract_batch — under
  // a serving-oriented retry policy: flat short delay instead of
  // exponential backoff (a serve batch would rather fail fast than sit out
  // a long backoff), and there is no GDS/buffered-I/O variant.
  FeatureBuffer& fb = *sub_.feature_buffer;
  const OnDiskLayout& lay = ctx_.dataset->layout();
  const auto row_bytes = static_cast<std::uint32_t>(lay.feature_row_bytes);
  const Duration req_timeout = from_us(config_.request_timeout_ms * 1e3);
  const Duration poll =
      std::max(from_us(config_.request_timeout_ms * 1e3 / 4), from_us(500.0));
  const Duration wait_list_timeout = from_us(config_.wait_list_timeout_ms * 1e3);
  const Duration retry_delay = from_us(std::max(config_.retry_delay_us, 0.0));

  std::vector<std::uint32_t> wait_idx;
  std::vector<std::uint32_t> load_idx;
  {
    BusyScope busy(ctx_.telemetry);
    triage_batch(fb, batch, wait_idx, load_idx, FbClient::kServe);
  }

  // The pin budget guarantees the serve share of the standby list can cover
  // this batch's slot allocations, and training's reserve covers its own
  // extractors — neither side can deadlock the other.
  ExtractEnv env;
  env.fb = &fb;
  env.layout = &lay;
  env.row_bytes = row_bytes;
  env.ring = ws.ring.get();
  env.staging_base = ws.staging_base;
  env.staging_row_bytes = staging_row_bytes_;
  env.staging_rows = staging_rows_;
  env.gpu = sub_.gpu;
  env.telemetry = ctx_.telemetry;

  ExtractPolicy policy;
  policy.coalesce = config_.coalesce;
  policy.max_retries = config_.max_retries;
  policy.request_timeout = req_timeout;
  policy.poll = poll;
  policy.backoff = [retry_delay](std::uint32_t) { return retry_delay; };
  policy.batch_id = batch.batch_id;
  policy.log_epoch = false;  // serve batches carry no epoch
  policy.fail_event = "serve_extract_failed";

  ExtractCounters ec;
  bool ok = extract_load_set(batch, load_idx, env, policy, ws.hooks, ec,
                             nullptr);
  if (ec.io_errors > 0) {
    io_errors_.fetch_add(ec.io_errors, std::memory_order_relaxed);
    if (m_io_errors_ != nullptr) m_io_errors_->add(ec.io_errors);
  }
  if (ec.io_retries > 0) {
    io_retries_.fetch_add(ec.io_retries, std::memory_order_relaxed);
    if (m_io_retries_ != nullptr) m_io_retries_->add(ec.io_retries);
  }

  // Wait-list resolution: nodes a training extractor (or a sibling serve
  // worker) is loading. The loader always resolves them; the timeout only
  // fires if that thread died, and the serve batch fails instead of hanging.
  if (ok) ok = resolve_wait_list(fb, batch, wait_idx, wait_list_timeout);
  return ok;
}

ServeReport ServeEngine::report() const {
  ServeReport r;
  r.submitted = queue_.submitted();
  r.rejected = queue_.rejected();
  r.completed = completed_.load(std::memory_order_relaxed);
  r.failed = failed_.load(std::memory_order_relaxed);
  r.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  r.batches = coalescer_.batches();
  r.coalesce_factor = coalescer_.coalesce_factor();
  r.io_errors = io_errors_.load(std::memory_order_relaxed);
  r.io_retries = io_retries_.load(std::memory_order_relaxed);
  const auto fill = [](StageLatency& s, const ConcurrentHistogram& h) {
    const LatencyHistogram lh = h.snapshot();
    s.count = lh.count();
    s.mean_us = lh.mean_us();
    s.p50_us = lh.percentile_us(0.50);
    s.p95_us = lh.percentile_us(0.95);
    s.p99_us = lh.percentile_us(0.99);
  };
  fill(r.queue_wait, h_queue_wait_);
  fill(r.extract, h_extract_);
  fill(r.infer, h_infer_);
  fill(r.latency, h_latency_);
  // Serve-attributed counters only: training traffic on the shared buffer
  // must not inflate (or dilute) the serve hit rate.
  const FeatureBufferStats now = sub_.feature_buffer->stats(FbClient::kServe);
  FeatureBufferStats delta;
  delta.hot_hits = now.hot_hits - fb_at_start_.hot_hits;
  delta.reuse_hits = now.reuse_hits - fb_at_start_.reuse_hits;
  delta.wait_hits = now.wait_hits - fb_at_start_.wait_hits;
  delta.loads = now.loads - fb_at_start_.loads;
  r.fb_hit_rate = delta.hit_rate();
  r.queue_depth_max = queue_.max_depth();
  return r;
}

}  // namespace gnndrive
