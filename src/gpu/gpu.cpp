#include "gpu/gpu.hpp"

#include <cstring>

namespace gnndrive {

GpuDevice::GpuDevice(GpuConfig config, Telemetry* telemetry)
    : config_(config), telemetry_(telemetry), engine_free_(Clock::now()) {
  dma_thread_ = std::thread([this] { dma_loop(); });
}

GpuDevice::~GpuDevice() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  dma_thread_.join();
}

void GpuDevice::alloc(std::uint64_t bytes, const char* what) {
  std::lock_guard lock(mu_);
  if (allocated_ + bytes > config_.device_memory_bytes) {
    throw SimOutOfMemory(std::string("device OOM allocating ") +
                         std::to_string(bytes) + " bytes for " + what +
                         " (allocated " + std::to_string(allocated_) +
                         " of " + std::to_string(config_.device_memory_bytes) +
                         ")");
  }
  allocated_ += bytes;
}

void GpuDevice::free(std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  GD_CHECK_MSG(bytes <= allocated_, "device free exceeds allocation");
  allocated_ -= bytes;
}

std::uint64_t GpuDevice::allocated() const {
  std::lock_guard lock(mu_);
  return allocated_;
}

void GpuDevice::memcpy_h2d_async(void* dst, const void* src,
                                 std::uint64_t bytes,
                                 std::function<void()> on_complete) {
  const double transfer_us =
      config_.copy_overhead_us +
      static_cast<double>(bytes) / config_.pcie_bandwidth_mb_s;
  const Duration service = from_us(transfer_us * config_.time_scale);
  {
    std::lock_guard lock(mu_);
    const TimePoint start = std::max(Clock::now(), engine_free_);
    const TimePoint done = start + service;
    engine_free_ = done;
    copies_.push(Copy{done, dst, src, bytes, std::move(on_complete)});
    ++in_flight_;
  }
  cv_.notify_one();
}

void GpuDevice::memcpy_h2d_sync(void* dst, const void* src,
                                std::uint64_t bytes) {
  std::mutex m;
  std::condition_variable done_cv;
  bool done = false;
  memcpy_h2d_async(dst, src, bytes, [&] {
    std::lock_guard lk(m);
    done = true;
    done_cv.notify_one();
  });
  ScopedTrace trace(telemetry_, TraceCat::kIoWait);
  std::unique_lock lk(m);
  done_cv.wait(lk, [&] { return done; });
}

void GpuDevice::sync() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [&] { return in_flight_ == 0; });
}

void GpuDevice::launch(const std::function<void()>& fn) {
  ScopedTrace trace(telemetry_, TraceCat::kGpuBusy);
  fn();
}

void GpuDevice::dma_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (copies_.empty()) {
      if (stop_) return;
      cv_.wait(lock, [&] { return stop_ || !copies_.empty(); });
      continue;
    }
    const TimePoint due = copies_.top().done_at;
    if (Clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    Copy copy = std::move(const_cast<Copy&>(copies_.top()));
    copies_.pop();
    lock.unlock();
    if (copy.dst != nullptr && copy.bytes > 0) {
      ScopedTrace trace(telemetry_, TraceCat::kGpuBusy);
      std::memcpy(copy.dst, copy.src, copy.bytes);
    }
    if (copy.on_complete) copy.on_complete();
    lock.lock();
    --in_flight_;
    if (in_flight_ == 0) drained_.notify_all();
  }
}

}  // namespace gnndrive
