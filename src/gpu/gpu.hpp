// Simulated GPU device.
//
// No CUDA device exists in this environment, so the GPU is modeled with the
// three properties the paper's design actually depends on:
//
//  1. *Device memory* is a budgeted arena (24 GB on the paper's RTX 3090,
//     scaled here). GNNDrive's feature buffer lives in it; over-commit
//     raises SimOutOfMemory, reproducing the OOM failures in Figs. 9/10 and
//     the training-queue-depth restriction of Sect. 4.2. Backing storage is
//     ordinary host RAM — contents are real so training math is real.
//  2. *Asynchronous H2D copies* run on a DMA engine modeled like the SSD:
//     completion = max(now, engine_free) + overhead + bytes/bandwidth, on a
//     real wall-clock schedule, so copy/compute/IO overlap is physically
//     measurable (cudaMemcpyAsync equivalent, step 5 of Fig. 4).
//  3. *Compute* executes for real on the host core and is attributed to
//     TraceCat::kGpuBusy; the CPU-training variant runs the same math with a
//     modeled slowdown factor (a GPU executes the dense kernels of these
//     models many times faster than one CPU core; the factor is per-model,
//     calibrated to the gaps the paper reports).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>

#include "util/common.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

struct GpuConfig {
  std::uint64_t device_memory_bytes = 48ull << 20;  ///< "24 GB" scaled.
  double pcie_bandwidth_mb_s = 12000.0;
  /// Per-async-copy overhead. Pipelined cudaMemcpyAsync on a dedicated copy
  /// engine amortizes to a couple of microseconds per small transfer.
  double copy_overhead_us = 1.5;
  /// Modeled kernel throughput (FLOP/s). 0 = ideal device: kernels cost
  /// exactly their real single-core execution time. A positive value sets
  /// a floor of flops/rate per kernel — used to model slower parts (the
  /// multi-GPU testbed's K80s, Fig. 13), whose modeled time, unlike real
  /// host math, parallelizes across replicas.
  double gpu_flops_per_s = 0.0;
  double time_scale = 1.0;
};

class GpuDevice : NonCopyable {
 public:
  explicit GpuDevice(GpuConfig config, Telemetry* telemetry = nullptr);
  ~GpuDevice();

  // -- Device memory accounting --------------------------------------------
  void alloc(std::uint64_t bytes, const char* what);
  void free(std::uint64_t bytes);
  std::uint64_t allocated() const;
  std::uint64_t capacity() const { return config_.device_memory_bytes; }

  // -- Copy engine ----------------------------------------------------------
  /// Asynchronous host-to-device copy: the memcpy and `on_complete` run on
  /// the DMA thread once the modeled PCIe transfer time elapses.
  void memcpy_h2d_async(void* dst, const void* src, std::uint64_t bytes,
                        std::function<void()> on_complete);
  /// Synchronous copy (PyG+/Ginex-style transfer on the critical path).
  void memcpy_h2d_sync(void* dst, const void* src, std::uint64_t bytes);
  /// Charges the modeled PCIe time of a synchronous transfer without moving
  /// data (the tensor is already host-resident in the simulation).
  void charge_h2d_sync(std::uint64_t bytes) {
    memcpy_h2d_sync(nullptr, nullptr, bytes);
  }
  /// Blocks until all submitted copies completed (cudaStreamSynchronize).
  void sync();

  // -- Compute --------------------------------------------------------------
  /// Runs `fn` as a GPU kernel: real math, attributed to kGpuBusy.
  void launch(const std::function<void()>& fn);

  const GpuConfig& config() const { return config_; }
  void set_telemetry(Telemetry* t) { telemetry_ = t; }

 private:
  struct Copy {
    TimePoint done_at;
    void* dst;
    const void* src;
    std::uint64_t bytes;
    std::function<void()> on_complete;
    bool operator>(const Copy& other) const {
      return done_at > other.done_at;
    }
  };

  void dma_loop();

  const GpuConfig config_;
  Telemetry* telemetry_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_;
  std::priority_queue<Copy, std::vector<Copy>, std::greater<>> copies_;
  TimePoint engine_free_;
  std::size_t in_flight_ = 0;
  std::uint64_t allocated_ = 0;
  bool stop_ = false;
  std::thread dma_thread_;
};

/// RAII device allocation.
class DeviceAlloc : NonCopyable {
 public:
  DeviceAlloc() = default;
  DeviceAlloc(GpuDevice& gpu, std::uint64_t bytes, const char* what)
      : gpu_(&gpu), bytes_(bytes) {
    gpu.alloc(bytes, what);
  }
  DeviceAlloc(DeviceAlloc&& o) noexcept : gpu_(o.gpu_), bytes_(o.bytes_) {
    o.gpu_ = nullptr;
    o.bytes_ = 0;
  }
  DeviceAlloc& operator=(DeviceAlloc&& o) noexcept {
    release();
    gpu_ = o.gpu_;
    bytes_ = o.bytes_;
    o.gpu_ = nullptr;
    o.bytes_ = 0;
    return *this;
  }
  ~DeviceAlloc() { release(); }
  std::uint64_t bytes() const { return bytes_; }

 private:
  void release() {
    if (gpu_ != nullptr) gpu_->free(bytes_);
    gpu_ = nullptr;
    bytes_ = 0;
  }
  GpuDevice* gpu_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace gnndrive
