// Synthetic graph generators.
//
// The paper evaluates on Papers100M, Twitter, Friendster and MAG240M; none
// are shippable here, and the paper itself already substitutes random
// features and labels for Twitter/Friendster. We generate scaled synthetic
// graphs with two properties the experiments depend on:
//   * a skewed (power-law-ish) degree distribution, so sampling workloads
//     and cache behaviour resemble real web/social/citation graphs;
//   * planted community structure aligned with labels and features, so
//     models genuinely learn and the convergence experiment (Fig. 14) is
//     meaningful.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace gnndrive {

struct CommunityGraphParams {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  std::uint32_t num_communities = 16;
  double intra_prob = 0.6;   ///< Probability an edge stays intra-community.
  double skew = 2.0;         ///< Degree skew: node picked as N * u^skew.
  /// Relabel nodes with a seeded random permutation after edge generation.
  /// The skewed pick above concentrates degree on LOW ids, so by default
  /// node id order coincides with degree order — an artifact real graphs do
  /// not have (Papers100M ids carry no degree information). Scrambling
  /// restores the realistic id/degree decorrelation that layout and cache
  /// experiments depend on; the graph is isomorphic either way.
  bool scramble_ids = false;
  std::uint64_t seed = 1;
};

struct CommunityGraph {
  CscGraph csc;
  std::vector<std::int32_t> labels;  ///< Community id per node.
};

/// Skewed community graph: labels[v] = v % num_communities; edge endpoints
/// drawn with power-law skew; with `intra_prob` the source is forced into
/// the destination's community.
CommunityGraph generate_community_graph(const CommunityGraphParams& params);

/// Classic R-MAT generator (a,b,c,d quadrant probabilities), used for
/// structure-only benchmarks and tests.
CscGraph generate_rmat(NodeId num_nodes_pow2, EdgeId num_edges, double a,
                       double b, double c, std::uint64_t seed);

}  // namespace gnndrive
