// In-memory graph representation and builders.
//
// The experiments store a graph the way the paper does: the adjacency matrix
// in compressed-sparse-column form, with the index-pointer array (indptr)
// kept in host memory and the index array (indices) + feature table on the
// simulated SSD. This header holds the plain in-memory form used to build
// datasets and as ground truth in tests.
#pragma once

#include <utility>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace gnndrive {

/// CSC adjacency: for node v, its in-neighbors are
/// indices[indptr[v] .. indptr[v+1]).
struct CscGraph {
  NodeId num_nodes = 0;
  std::vector<EdgeId> indptr;   ///< size num_nodes + 1
  std::vector<NodeId> indices;  ///< size num_edges

  EdgeId num_edges() const { return indices.size(); }
  std::uint64_t in_degree(NodeId v) const {
    return indptr[v + 1] - indptr[v];
  }
};

/// Builds a CSC graph from (src, dst) pairs via counting sort on dst.
CscGraph build_csc(NodeId num_nodes,
                   const std::vector<std::pair<NodeId, NodeId>>& edges);

}  // namespace gnndrive
