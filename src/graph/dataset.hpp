// Datasets: scaled stand-ins for the paper's graphs, laid out on the
// simulated SSD exactly as the paper stores them.
//
// On-"disk" layout (offsets 512 B-aligned):
//   [indices]  CSC index array, int64 per edge (the paper's systems store
//              int64 indices; this keeps topology:feature byte ratios right)
//   [features] packed float32 rows, num_nodes x feature_dim
//   [labels]   int32 per node
//   [scratch]  spill space: Ginex's per-superbatch sampling results,
//              MariusGNN's partition shuffles
// The index-pointer array (indptr) stays in host memory, as in the paper
// ("it occupies less than 1GB and is frequently accessed in the sample
// stage"); so do labels and the train/valid splits.
//
// Scale conventions (see DESIGN.md): node counts are paper / 500; simulated
// host-memory "GB" = 2 MiB; default mini-batch is paper / 250.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "layout/plan.hpp"
#include "storage/ssd.hpp"
#include "util/common.hpp"

namespace gnndrive {

/// Simulated bytes for a paper-reported "GB" of host or device memory.
inline constexpr std::uint64_t kBytesPerPaperGB = 2ull << 20;
inline std::uint64_t paper_gb(double gb) {
  return static_cast<std::uint64_t>(gb * static_cast<double>(kBytesPerPaperGB));
}
/// Mini-batch scale: paper batch 1000 -> 4 seeds here.
inline constexpr std::uint32_t kBatchScale = 250;

struct DatasetSpec {
  std::string name;
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  std::uint32_t feature_dim = 128;
  std::uint32_t num_classes = 16;
  double train_fraction = 0.01;
  double intra_prob = 0.6;
  /// Endpoint-sampling skew exponent (CommunityGraphParams::skew): node =
  /// N * u^skew, so larger values concentrate edges — and therefore sampler
  /// traffic — on low-id nodes. 1.0 is near-uniform; the generator default
  /// 2.0 matches real-graph power-law degree tails. Cache-policy benches
  /// sweep this to control access-frequency skew.
  double skew = 2.0;
  /// Scramble node ids with a seeded permutation after edge generation
  /// (CommunityGraphParams::scramble_ids). The skewed pick concentrates
  /// degree on low ids, so unscrambled id order coincides with degree order
  /// — real graphs have no such correlation. Layout experiments
  /// (bench/layout_sweep) enable this so the identity layout means what it
  /// means on Papers100M: feature rows in id order, scattered w.r.t. access
  /// frequency.
  bool scramble_ids = false;
  std::uint64_t seed = 42;

  std::uint64_t feature_row_bytes() const { return feature_dim * 4ull; }
  std::uint64_t features_bytes() const {
    return static_cast<std::uint64_t>(num_nodes) * feature_row_bytes();
  }
  std::uint64_t indices_bytes() const { return num_edges * 8ull; }
};

/// Registry of the paper's four datasets at mini scale. Accepted names:
/// "papers100m", "twitter", "friendster", "mag240m" (a "-mini" suffix is
/// tolerated). `feature_dim == 0` keeps the dataset's default dimension.
DatasetSpec mini_spec(const std::string& name, std::uint32_t feature_dim = 0);

/// Tiny spec for unit tests.
DatasetSpec toy_spec(std::uint32_t feature_dim = 16);

struct OnDiskLayout {
  std::uint64_t indices_offset = 0;
  std::uint64_t indices_bytes = 0;
  std::uint64_t features_offset = 0;
  std::uint64_t features_bytes = 0;
  std::uint64_t feature_row_bytes = 0;
  std::uint64_t labels_offset = 0;
  std::uint64_t labels_bytes = 0;
  std::uint64_t scratch_offset = 0;
  std::uint64_t scratch_bytes = 0;
  std::uint64_t total_bytes = 0;

  /// Installed layout plan (src/layout): when non-null the feature region is
  /// physically stored in `plan->perm` order and `row_perm` aliases
  /// `plan->perm.data()` (the shared_ptr keeps it alive across Dataset
  /// copies). Null means identity: physical row == node id. This is THE
  /// indirection choke point — every consumer (extract planning, GDS path,
  /// cache prefetch, baselines, serve) computes offsets through the
  /// accessors below and is therefore layout-transparent.
  std::shared_ptr<const LayoutPlan> plan;
  const NodeId* row_perm = nullptr;

  /// Physical feature row holding node `v`'s features.
  std::uint64_t feature_row_of(NodeId v) const {
    return row_perm != nullptr ? static_cast<std::uint64_t>(row_perm[v])
                               : static_cast<std::uint64_t>(v);
  }
  /// Byte offset of node `v`'s feature row. All arithmetic is 64-bit: with
  /// NodeId near 2^32 and row_bytes 512, node * row_bytes overflows 32 bits
  /// by ~9 orders of magnitude, hence the casts before multiply.
  std::uint64_t feature_offset_of(NodeId v) const {
    return features_offset + feature_row_of(v) * feature_row_bytes;
  }
  /// Byte offset of a *physical* row index (bulk/partition readers that
  /// iterate the packed store directly, e.g. MariusGNN partition loads).
  std::uint64_t feature_offset_of_row(std::uint64_t row) const {
    return features_offset + row * feature_row_bytes;
  }
  /// Plan content hash; 0 for identity / no plan. Stored in checkpoints so
  /// resume() refuses to mix a cursor with a differently-packed image.
  std::uint64_t layout_fingerprint() const {
    return plan != nullptr ? plan->fingerprint() : 0;
  }
};

/// A fully built dataset: host-resident metadata plus a shared SSD image.
/// Experiment runs create their own SsdDevice over `image()` so device
/// state/stats are per-run while the (possibly large) data is generated once.
class Dataset {
 public:
  /// Generates the graph, features, labels and splits, and writes the image.
  /// `keep_graph` retains the in-memory CSC for ground-truth tests.
  static Dataset build(const DatasetSpec& spec, bool keep_graph = false);

  const DatasetSpec& spec() const { return spec_; }
  const OnDiskLayout& layout() const { return layout_; }

  /// Currently installed layout plan; null means identity order.
  const std::shared_ptr<const LayoutPlan>& layout_plan() const {
    return layout_.plan;
  }
  /// Installs `plan` as the layout indirection. The image's feature region
  /// must already be physically permuted to match — callers go through
  /// compile_layout (src/layout/compiler.hpp), which rewrites the region and
  /// then installs. Null or identity-strategy plans clear the indirection.
  void set_layout_plan(std::shared_ptr<const LayoutPlan> plan);
  const std::vector<EdgeId>& indptr() const { return indptr_; }
  const std::vector<std::int32_t>& labels() const { return labels_; }
  const std::vector<NodeId>& train_nodes() const { return train_nodes_; }
  const std::vector<NodeId>& valid_nodes() const { return valid_nodes_; }

  std::uint64_t in_degree(NodeId v) const {
    return indptr_[v + 1] - indptr_[v];
  }

  const std::shared_ptr<MemBackend>& image() const { return image_; }
  /// Fresh device over the shared image.
  std::unique_ptr<SsdDevice> make_device(const SsdConfig& cfg) const {
    return std::make_unique<SsdDevice>(cfg, image_);
  }

  /// Ground truth helpers (bypass the device model; tests & setup only).
  void read_feature_row(NodeId v, float* out) const;
  std::vector<NodeId> read_neighbors(NodeId v) const;

  /// Host-resident bytes a training system must pin for this dataset
  /// (indptr + labels + splits).
  std::uint64_t host_metadata_bytes() const;

  /// In-memory CSC, present when built with keep_graph.
  const std::optional<CscGraph>& csc() const { return csc_; }

 private:
  DatasetSpec spec_;
  OnDiskLayout layout_;
  std::vector<EdgeId> indptr_;
  std::vector<std::int32_t> labels_;
  std::vector<NodeId> train_nodes_;
  std::vector<NodeId> valid_nodes_;
  std::shared_ptr<MemBackend> image_;
  std::optional<CscGraph> csc_;
};

}  // namespace gnndrive
