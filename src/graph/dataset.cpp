#include "graph/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gnndrive {

namespace {

constexpr NodeId kNodeScale = 500;  ///< paper node count / this.

DatasetSpec make_spec(const std::string& name, NodeId paper_nodes_m,
                      double paper_edges_b, std::uint32_t dim,
                      std::uint32_t classes, double train_frac,
                      std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = name;
  spec.num_nodes = paper_nodes_m * 1000000ull / kNodeScale;
  spec.num_edges =
      static_cast<EdgeId>(paper_edges_b * 1e9 / static_cast<double>(kNodeScale));
  spec.feature_dim = dim;
  spec.num_classes = classes;
  spec.train_fraction = train_frac;
  spec.seed = seed;
  return spec;
}

}  // namespace

DatasetSpec mini_spec(const std::string& name, std::uint32_t feature_dim) {
  std::string key = name;
  const auto pos = key.find("-mini");
  if (pos != std::string::npos) key.resize(pos);

  DatasetSpec spec;
  if (key == "papers100m") {
    // Paper: 111M nodes, 1.6B edges, dim 128, 172 classes (32 here so the
    // planted-community task is learnable at mini scale), ~1.1% train nodes.
    spec = make_spec(key, 111, 1.6, 128, 32, 0.011, 0x9a9e50ull);
  } else if (key == "twitter") {
    // Paper: 41.7M nodes, 1.5B edges, dim 128; features/labels synthetic in
    // the paper as well.
    spec = make_spec(key, 42, 1.5, 128, 16, 0.01, 0x714774ull);
  } else if (key == "friendster") {
    // Paper: 65.6M nodes, 1.8B edges, dim 128.
    spec = make_spec(key, 66, 1.8, 128, 16, 0.01, 0xf41e9dull);
  } else if (key == "mag240m") {
    // Paper: paper nodes + citation edges only: 122M nodes, 1.3B edges,
    // dim 768.
    spec = make_spec(key, 122, 1.3, 768, 32, 0.011, 0x3a9240ull);
  } else {
    GD_CHECK_MSG(false, "unknown dataset name");
  }
  if (feature_dim != 0) spec.feature_dim = feature_dim;
  return spec;
}

DatasetSpec toy_spec(std::uint32_t feature_dim) {
  DatasetSpec spec;
  spec.name = "toy";
  spec.num_nodes = 4000;
  spec.num_edges = 60000;
  spec.feature_dim = feature_dim;
  spec.num_classes = 8;
  spec.train_fraction = 0.1;
  spec.seed = 7;
  return spec;
}

Dataset Dataset::build(const DatasetSpec& spec, bool keep_graph) {
  // Construction-validation, matching FeatureBuffer / CheckpointManager: a
  // malformed spec fails loudly here instead of as a zero-sized image or a
  // division by zero deep in the generator.
  if (spec.num_nodes == 0) {
    throw std::invalid_argument("DatasetSpec: num_nodes must be > 0");
  }
  if (spec.feature_dim == 0) {
    throw std::invalid_argument("DatasetSpec: feature_dim must be > 0");
  }
  if (!(spec.train_fraction > 0.0) || spec.train_fraction > 1.0) {
    throw std::invalid_argument(
        "DatasetSpec: train_fraction must be in (0, 1]");
  }

  Dataset ds;
  ds.spec_ = spec;

  CommunityGraphParams params;
  params.num_nodes = spec.num_nodes;
  params.num_edges = spec.num_edges;
  params.num_communities = spec.num_classes;
  params.intra_prob = spec.intra_prob;
  params.skew = spec.skew;
  params.scramble_ids = spec.scramble_ids;
  params.seed = spec.seed;
  CommunityGraph graph = generate_community_graph(params);

  // Layout.
  OnDiskLayout& lay = ds.layout_;
  lay.indices_offset = 0;
  lay.indices_bytes = spec.indices_bytes();
  lay.features_offset = round_up(lay.indices_bytes, kSectorSize);
  lay.feature_row_bytes = spec.feature_row_bytes();
  lay.features_bytes = spec.features_bytes();
  lay.labels_offset =
      round_up(lay.features_offset + lay.features_bytes, kSectorSize);
  lay.labels_bytes = static_cast<std::uint64_t>(spec.num_nodes) * 4;
  lay.scratch_offset =
      round_up(lay.labels_offset + lay.labels_bytes, kSectorSize);
  lay.scratch_bytes = lay.features_bytes + (16ull << 20);
  lay.total_bytes = lay.scratch_offset + lay.scratch_bytes;

  ds.image_ = std::make_shared<MemBackend>(lay.total_bytes);
  std::uint8_t* raw = ds.image_->raw();

  // Indices as int64 on disk.
  {
    auto* out = reinterpret_cast<std::int64_t*>(raw + lay.indices_offset);
    const auto& idx = graph.csc.indices;
    for (EdgeId e = 0; e < idx.size(); ++e) {
      out[e] = static_cast<std::int64_t>(idx[e]);
    }
  }

  // Features: class centroid + uniform noise, deterministic per node.
  {
    Rng crng(spec.seed ^ 0xCE47401Dull);
    std::vector<float> centroids(
        static_cast<std::size_t>(spec.num_classes) * spec.feature_dim);
    for (auto& c : centroids) {
      c = static_cast<float>(crng.next_double() * 2.0 - 1.0);
    }
    auto* feat = reinterpret_cast<float*>(raw + lay.features_offset);
    const std::uint32_t dim = spec.feature_dim;
    for (NodeId v = 0; v < spec.num_nodes; ++v) {
      Rng nrng(splitmix64(spec.seed ^ (0xFEA7ull + v)));
      const float* centroid =
          centroids.data() +
          static_cast<std::size_t>(graph.labels[v]) * dim;
      float* row = feat + static_cast<std::size_t>(v) * dim;
      for (std::uint32_t d = 0; d < dim; ++d) {
        row[d] = centroid[d] +
                 static_cast<float>(nrng.next_double() * 2.0 - 1.0) * 0.8f;
      }
    }
  }

  // Labels on disk + host copy.
  {
    auto* out = reinterpret_cast<std::int32_t*>(raw + lay.labels_offset);
    std::memcpy(out, graph.labels.data(), lay.labels_bytes);
    ds.labels_ = graph.labels;
  }

  // Train/valid splits: disjoint random subsets.
  {
    Rng srng(spec.seed ^ 0x59317ull);
    std::vector<NodeId> perm(spec.num_nodes);
    std::iota(perm.begin(), perm.end(), 0u);
    for (NodeId i = spec.num_nodes - 1; i > 0; --i) {
      std::swap(perm[i], perm[srng.next_below(i + 1)]);
    }
    const auto train_count = static_cast<std::size_t>(
        spec.train_fraction * static_cast<double>(spec.num_nodes));
    // The valid split only gets what the train split left over, so the
    // documented train_fraction boundary of 1.0 (empty valid set) works.
    const auto valid_count = std::min<std::size_t>(
        {2000, spec.num_nodes / 50, spec.num_nodes - train_count});
    GD_CHECK(train_count + valid_count <= spec.num_nodes);
    ds.train_nodes_.assign(perm.begin(), perm.begin() + train_count);
    ds.valid_nodes_.assign(perm.begin() + train_count,
                           perm.begin() + train_count + valid_count);
  }

  ds.indptr_ = std::move(graph.csc.indptr);
  if (keep_graph) {
    CscGraph csc;
    csc.num_nodes = spec.num_nodes;
    csc.indptr = ds.indptr_;
    csc.indices = std::move(graph.csc.indices);
    ds.csc_ = std::move(csc);
  }

  GD_LOG_INFO("built dataset %s: %u nodes, %llu edges, dim %u, image %.1f MiB",
              spec.name.c_str(), spec.num_nodes,
              static_cast<unsigned long long>(spec.num_edges),
              spec.feature_dim,
              static_cast<double>(lay.total_bytes) / (1 << 20));
  return ds;
}

void Dataset::set_layout_plan(std::shared_ptr<const LayoutPlan> plan) {
  if (plan == nullptr || plan->is_identity()) {
    layout_.plan = nullptr;
    layout_.row_perm = nullptr;
    return;
  }
  GD_CHECK_MSG(plan->num_nodes == spec_.num_nodes,
               "layout plan built for a different node count");
  GD_CHECK_MSG(plan->validate(), "layout plan is not a valid bijection");
  layout_.plan = std::move(plan);
  layout_.row_perm = layout_.plan->perm.data();
}

void Dataset::read_feature_row(NodeId v, float* out) const {
  image_->read(layout_.feature_offset_of(v),
               static_cast<std::uint32_t>(layout_.feature_row_bytes), out);
}

std::vector<NodeId> Dataset::read_neighbors(NodeId v) const {
  const EdgeId begin = indptr_[v];
  const EdgeId end = indptr_[v + 1];
  std::vector<std::int64_t> raw(end - begin);
  if (!raw.empty()) {
    image_->read(layout_.indices_offset + begin * 8,
                 static_cast<std::uint32_t>(raw.size() * 8), raw.data());
  }
  std::vector<NodeId> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = static_cast<NodeId>(raw[i]);
  }
  return out;
}

std::uint64_t Dataset::host_metadata_bytes() const {
  return indptr_.size() * sizeof(EdgeId) + labels_.size() * sizeof(int32_t) +
         (train_nodes_.size() + valid_nodes_.size()) * sizeof(NodeId);
}

}  // namespace gnndrive
