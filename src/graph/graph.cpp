#include "graph/graph.hpp"

namespace gnndrive {

CscGraph build_csc(NodeId num_nodes,
                   const std::vector<std::pair<NodeId, NodeId>>& edges) {
  CscGraph g;
  g.num_nodes = num_nodes;
  g.indptr.assign(num_nodes + 1, 0);
  for (const auto& [src, dst] : edges) {
    GD_CHECK(src < num_nodes && dst < num_nodes);
    ++g.indptr[dst + 1];
  }
  for (NodeId v = 0; v < num_nodes; ++v) g.indptr[v + 1] += g.indptr[v];
  g.indices.resize(edges.size());
  std::vector<EdgeId> cursor(g.indptr.begin(), g.indptr.end() - 1);
  for (const auto& [src, dst] : edges) {
    g.indices[cursor[dst]++] = src;
  }
  return g;
}

}  // namespace gnndrive
