#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace gnndrive {

namespace {

/// Power-law-skewed node pick: density concentrates near id 0.
NodeId skewed_node(Rng& rng, NodeId n, double skew) {
  const double u = rng.next_double();
  const double x = std::pow(u, skew);
  NodeId v = static_cast<NodeId>(x * static_cast<double>(n));
  return v < n ? v : n - 1;
}

}  // namespace

CommunityGraph generate_community_graph(const CommunityGraphParams& params) {
  GD_CHECK(params.num_nodes > 0 && params.num_communities > 0);
  Rng rng(params.seed);
  const NodeId n = params.num_nodes;
  const std::uint32_t c = params.num_communities;

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(params.num_edges);
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    const NodeId dst = skewed_node(rng, n, params.skew);
    NodeId src;
    if (rng.next_double() < params.intra_prob) {
      // Uniform node within dst's community (ids congruent mod c).
      const NodeId community = dst % c;
      const NodeId members = (n - 1 - community) / c + 1;
      src = community + c * static_cast<NodeId>(rng.next_below(members));
    } else {
      src = skewed_node(rng, n, params.skew);
    }
    edges.emplace_back(src, dst);
  }

  // Optional id scramble: a seeded uniform relabeling sigma applied to the
  // edge list, with labels carried along so community structure (and hence
  // learnability) is untouched.
  std::vector<NodeId> sigma;
  if (params.scramble_ids) {
    Rng srng(params.seed ^ 0x5c3ab1e1d5ull);
    sigma.resize(n);
    std::iota(sigma.begin(), sigma.end(), NodeId{0});
    for (NodeId i = n - 1; i > 0; --i) {
      std::swap(sigma[i], sigma[srng.next_below(i + 1)]);
    }
    for (auto& e : edges) {
      e.first = sigma[e.first];
      e.second = sigma[e.second];
    }
  }

  CommunityGraph out;
  out.csc = build_csc(n, edges);
  out.labels.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.labels[sigma.empty() ? v : sigma[v]] =
        static_cast<std::int32_t>(v % c);
  }
  return out;
}

CscGraph generate_rmat(NodeId num_nodes_pow2, EdgeId num_edges, double a,
                       double b, double c, std::uint64_t seed) {
  GD_CHECK((num_nodes_pow2 & (num_nodes_pow2 - 1)) == 0);
  Rng rng(seed);
  int levels = 0;
  while ((NodeId{1} << levels) < num_nodes_pow2) ++levels;

  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    NodeId src = 0;
    NodeId dst = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (r < a) {
        // top-left quadrant: nothing set
      } else if (r < a + b) {
        dst |= 1;
      } else if (r < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.emplace_back(src, dst);
  }
  return build_csc(num_nodes_pow2, edges);
}

}  // namespace gnndrive
