// Coalesced extraction fast path, shared by training (GnnDrive) and
// serving (ServeEngine).
//
// The extract stage of Algorithm 1 used to issue one direct SSD read per
// to-load node. Under the discrete-event device model
// (service = base_latency + len/bandwidth, ~80 us base at 2 GB/s) a 2-4 KiB
// feature row pays ~80 us of fixed per-request cost for ~1-2 us of data
// movement, so request count — not bandwidth — dominates extract time.
// This module applies the standard disk-based-GNN remedy (cf. Ginex):
//
//   1. sort the to-load set by on-disk feature offset (sorted runs),
//   2. greedily merge adjacent/overlapping sector-aligned covering ranges
//      into multi-row *segments*, bounded by `max_coalesce_bytes` (a segment
//      must fit one staging row) and `max_rows_per_read`, optionally jumping
//      small gaps (`max_gap_bytes` — reading a few wasted sectors is far
//      cheaper than a second request under the base-latency cost model),
//   3. issue one read per segment and, on completion, scatter each contained
//      row into its feature-buffer slot (one H2D per row on GPU, memcpy on
//      CPU).
//
// Per-segment failure granularity preserves the fault-tolerance contract:
// a transient error retries the whole segment (keeping its staging row); an
// unrecoverable one marks every node of the segment failed and fails the
// batch exactly like the per-node path did. `coalesce.enabled = false`
// degenerates to one single-row segment per node — the planner and loop are
// the same code, so the A/B toggle compares pure I/O shapes.
//
// Entry points:
//   * plan_segments()     — pure planning, property-tested in isolation.
//   * triage_batch()      — Algorithm 1 pass 1 via one batched lock take.
//   * extract_load_set()  — the submit/reap/retry/scatter loop.
//   * resolve_wait_list() — Algorithm 1 line 38, fault-tolerant.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "aio/io_ring.hpp"
#include "core/feature_buffer.hpp"
#include "graph/dataset.hpp"
#include "sampling/block.hpp"

namespace gnndrive {

class GpuDevice;
class Counter;
class Gauge;
class ConcurrentHistogram;
class Telemetry;

/// Coalescing knobs, shared verbatim by GnnDriveConfig and ServeConfig.
struct CoalesceConfig {
  /// Master toggle (the A/B flag): off falls back to one read per node
  /// through the same planner/loop with caps of one row.
  bool enabled = true;
  /// Upper bound on one merged read; also the staging-row slot size, so a
  /// segment always fits its row. Rounded up to the sector size.
  std::uint32_t max_coalesce_bytes = 24 * 1024;
  /// Upper bound on feature rows per merged read.
  std::uint32_t max_rows_per_read = 64;
  /// Covering ranges closer than this merge across the hole (the wasted
  /// bytes are cheaper than a second request's base latency). 0 merges
  /// only strictly adjacent/overlapping ranges. The device model prices a
  /// gap at gap/(bandwidth/channels) of channel time against the base
  /// latency one fewer request saves, so the break-even gap is
  /// base_latency_us * bandwidth_mb_s / channels bytes (~10 KiB for the
  /// default device); the default sits just above it because extract
  /// latency also gains from the deeper effective row depth.
  std::uint32_t max_gap_bytes = 12 * 1024;
};

/// Read plan for one to-load set: rows grouped into per-read segments.
struct SegmentPlan {
  struct Row {
    std::uint32_t load_pos = 0;    ///< index into the caller's load_idx
    std::uint32_t seg_offset = 0;  ///< row's byte offset within its segment
  };
  struct Segment {
    std::uint64_t base = 0;       ///< sector-aligned disk offset
    std::uint32_t len = 0;        ///< sector-aligned read length
    std::uint32_t first_row = 0;  ///< range [first_row, first_row+num_rows)
    std::uint32_t num_rows = 0;   ///< ... into SegmentPlan::rows
  };
  std::vector<Row> rows;  ///< sorted by disk offset, grouped by segment
  std::vector<Segment> segments;
};

/// Plans sector-aligned covering reads for `load_idx` (indices into
/// `nodes`), sorted by disk offset and greedily merged under the caps.
/// `max_bytes` must admit at least one covering row; `max_rows >= 1`;
/// ranges merge when the gap between consecutive covering ranges is at
/// most `max_gap_bytes`.
///
/// Offsets come from `lay.feature_offset_of`, i.e. they are *physical* row
/// positions under whatever layout plan is installed (src/layout). The
/// planner itself is layout-oblivious — a packed store simply presents it
/// with denser sorted runs, so the same greedy merge yields fewer, longer
/// segments.
SegmentPlan plan_segments(const std::vector<std::uint32_t>& load_idx,
                          const std::vector<NodeId>& nodes,
                          const OnDiskLayout& lay, std::uint32_t row_bytes,
                          std::uint32_t max_bytes, std::uint32_t max_rows,
                          std::uint32_t max_gap_bytes);

/// The substrate one extraction runs against. All pointers are borrowed.
struct ExtractEnv {
  FeatureBuffer* fb = nullptr;
  const OnDiskLayout* layout = nullptr;
  std::uint32_t row_bytes = 0;          ///< exact feature row bytes
  IoRing* ring = nullptr;
  std::uint8_t* staging_base = nullptr; ///< staging_rows x staging_row_bytes
  std::uint32_t staging_row_bytes = 0;  ///< per-row slot size (>= any segment)
  std::uint32_t staging_rows = 0;       ///< number of recycled row slots
  GpuDevice* gpu = nullptr;             ///< null: host memcpy scatter
  Telemetry* telemetry = nullptr;       ///< optional (fault counters, traces)
};

/// Fault/retry policy plus log identity for one extraction.
struct ExtractPolicy {
  CoalesceConfig coalesce;
  std::uint32_t max_retries = 3;
  Duration request_timeout{};           ///< watchdog cancel threshold
  Duration poll{};                      ///< wait_cqe_for granularity
  /// Delay before retry number `attempt` (1-based). Training installs
  /// jittered exponential backoff, serving a flat short delay; null means
  /// retry immediately.
  std::function<Duration(std::uint32_t attempt)> backoff;
  std::uint64_t batch_id = 0;           ///< for structured failure logs
  std::uint64_t epoch = 0;
  bool log_epoch = true;                ///< serve batches carry no epoch
  const char* fail_event = "extract_failed";
};

/// Registry instruments for the coalescing fast path, resolved once per
/// worker by the caller (all optional).
struct ExtractMetricHooks {
  Counter* segments = nullptr;              ///< io.coalesce.segments
  Counter* rows = nullptr;                  ///< io.coalesce.rows
  ConcurrentHistogram* rows_per_read = nullptr;  ///< io.coalesce.rows_per_read
  Gauge* staging_in_use = nullptr;          ///< io.staging_in_use (rows held)
};

/// Per-call accounting, merged by the caller into its own counters
/// (EpochResult for training, atomics for serving).
struct ExtractCounters {
  std::uint64_t io_errors = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t io_recovered = 0;
  std::uint64_t io_timeouts = 0;
  std::uint64_t segments = 0;     ///< reads issued (first submissions)
  std::uint64_t rows_loaded = 0;  ///< feature rows delivered by those reads
};

/// Tracing accumulators (nanoseconds), filled only while `tracing` is set.
struct ExtractTrace {
  bool tracing = false;
  std::uint64_t submit_ns = 0;
  std::uint64_t ssd_wait_ns = 0;
  std::uint64_t copy_wait_ns = 0;
};

/// Algorithm 1 pass 1 for a whole batch under one buffer-lock acquisition:
/// ready nodes alias immediately, in-flight nodes join `wait_idx`, absent
/// nodes join `load_idx`. Reference counts are taken for every node. When a
/// sealed hot partition exists, pinned nodes resolve lock-free (no slot
/// allocation, no reference) before the cold residue is triaged under the
/// lock; `client` attributes the lookups (fb.train.* / fb.serve.*).
void triage_batch(FeatureBuffer& fb, SampledBatch& batch,
                  std::vector<std::uint32_t>& wait_idx,
                  std::vector<std::uint32_t>& load_idx,
                  FbClient client = FbClient::kTrain);

/// Algorithm 1 pass 2 over `load_idx`: plan segments, allocate slots
/// (batched, one lock take per segment), submit asynchronous reads, scatter
/// completed rows into the feature buffer, retry transient failures per
/// segment, and drain all transfers before returning. Returns false when
/// the batch failed permanently — every node of `load_idx` is then resolved
/// (valid or failed) and the caller still owns releasing all references.
bool extract_load_set(SampledBatch& batch,
                      const std::vector<std::uint32_t>& load_idx,
                      const ExtractEnv& env, const ExtractPolicy& policy,
                      const ExtractMetricHooks& hooks,
                      ExtractCounters& counters, ExtractTrace* trace);

/// Algorithm 1 line 38: waits for nodes other workers are loading. Returns
/// false when any of them failed or timed out (the caller fails its batch).
bool resolve_wait_list(FeatureBuffer& fb, SampledBatch& batch,
                       const std::vector<std::uint32_t>& wait_idx,
                       Duration timeout);

/// Effective per-staging-row byte size for a configuration: the covering
/// row when coalescing is off, max_coalesce_bytes (sector-rounded, at least
/// one covering row) when on.
std::uint32_t staging_row_bytes_for(const CoalesceConfig& coalesce,
                                    std::uint32_t covering_row_bytes);

/// Effective staging row count: coalesced mode needs far fewer in-flight
/// reads to saturate the device channels than the per-node path, so the
/// row pool shrinks (bounding host pinning) while `ring_depth` keeps its
/// meaning for the per-node path and the ring's SQE capacity.
std::uint32_t staging_rows_for(const CoalesceConfig& coalesce,
                               std::uint32_t ring_depth);

}  // namespace gnndrive
