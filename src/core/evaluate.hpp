// Off-the-clock model evaluation on a dataset's validation split.
#pragma once

#include "gnn/model.hpp"
#include "graph/dataset.hpp"
#include "sampling/sampler.hpp"
#include "sampling/topology.hpp"

namespace gnndrive {

/// Topology reader straight off the dataset image, bypassing the device
/// model. For evaluation and tests only — never on a training clock.
class DirectTopology final : public TopologyReader {
 public:
  explicit DirectTopology(const Dataset& dataset) : dataset_(&dataset) {}
  std::uint64_t degree(NodeId v) const override {
    return dataset_->in_degree(v);
  }
  NodeId neighbor_at(NodeId v, std::uint64_t j) override {
    std::int64_t raw;
    dataset_->image()->read(
        dataset_->layout().indices_offset + (dataset_->indptr()[v] + j) * 8, 8,
        &raw);
    return static_cast<NodeId>(raw);
  }
  void neighbors(NodeId v, std::vector<NodeId>& out) override {
    auto nb = dataset_->read_neighbors(v);
    out.insert(out.end(), nb.begin(), nb.end());
  }

 private:
  const Dataset* dataset_;
};

/// Gathers ground-truth feature rows for a sampled batch (image access).
Tensor gather_features_direct(const Dataset& dataset,
                              const SampledBatch& batch);

/// Argmax accuracy of `model` on the validation split (sampled like
/// training, deterministic seed).
double evaluate_accuracy(GnnModel& model, const Dataset& dataset,
                         const SamplerConfig& sampler_config,
                         std::uint32_t batch_seeds = 64);

}  // namespace gnndrive
