#include "core/multi_gpu.hpp"

#include <thread>

namespace gnndrive {

MultiGpuGnnDrive::MultiGpuGnnDrive(const RunContext& ctx,
                                   MultiGpuConfig config)
    : ctx_(ctx), config_(std::move(config)) {
  GD_CHECK(config_.num_replicas >= 1);
  for (std::uint32_t r = 0; r < config_.num_replicas; ++r) {
    // Identical model seed => identical initialization across replicas,
    // which per-step gradient averaging then keeps in lock-step.
    auto replica = std::make_unique<GnnDrive>(ctx_, config_.replica);
    replica->set_segment(r, config_.num_replicas);
    replicas_.push_back(std::move(replica));
  }
}

MultiGpuGnnDrive::~MultiGpuGnnDrive() = default;

EpochStats MultiGpuGnnDrive::run_epoch(std::uint64_t epoch) {
  const std::uint32_t n = config_.num_replicas;
  if (n == 1) return replicas_[0]->run_epoch(epoch);

  // Gradient bytes per all-reduce (value-sized, not optimizer state).
  const std::uint64_t grad_bytes =
      replicas_[0]->model().param_state_bytes() / 4;
  const double allreduce_us =
      2.0 * static_cast<double>(n - 1) / static_cast<double>(n) *
          static_cast<double>(grad_bytes) / config_.interconnect_mb_s +
      config_.allreduce_overhead_us * n;

  std::vector<GnnModel*> models;
  for (auto& r : replicas_) models.push_back(&r->model());

  const auto on_sync = [models, allreduce_us]() noexcept {
    // Runs on the last thread to arrive; everyone else is blocked at the
    // barrier — collective semantics, like NCCL all-reduce.
    GnnModel::average_grads(models);
    std::this_thread::sleep_for(from_us(allreduce_us));
  };
  std::barrier sync(n, on_sync);
  for (auto& r : replicas_) {
    r->set_grad_sync_hook([&sync](GnnModel&) { sync.arrive_and_wait(); });
  }

  std::vector<EpochStats> stats(n);
  std::vector<std::thread> threads;
  const TimePoint t0 = Clock::now();
  for (std::uint32_t r = 0; r < n; ++r) {
    threads.emplace_back(
        [&, r] { stats[r] = replicas_[r]->run_epoch(epoch); });
  }
  for (auto& t : threads) t.join();

  EpochStats out;
  out.epoch_seconds = to_seconds(Clock::now() - t0);
  for (const auto& s : stats) {
    out.batches += s.batches;
    out.loss += s.loss / n;
    out.train_accuracy += s.train_accuracy / n;
    out.sample_seconds += s.sample_seconds;
    out.extract_seconds += s.extract_seconds;
    out.train_seconds += s.train_seconds;
  }
  for (auto& r : replicas_) r->set_grad_sync_hook(nullptr);
  return out;
}

double MultiGpuGnnDrive::evaluate() { return replicas_[0]->evaluate(); }

}  // namespace gnndrive
