// Multi-GPU data parallelism (Sect. 4.3, Fig. 7).
//
// The training set splits into segments, one replica per (simulated) GPU.
// Each replica owns its full pipeline — samplers, extractors, trainer,
// releaser, queues and feature buffer — exactly as the paper gives each
// subprocess its own, while topology (via the shared page cache) and host
// memory are shared. After every local backward pass the replicas
// synchronize gradients: a barrier whose completion step averages gradients
// across replicas and charges the modeled all-reduce time
//     2 (N-1)/N * grad_bytes / interconnect_bw + N * per_step_overhead,
// which is what caps scaling beyond ~6 GPUs in Fig. 13.
//
// The paper uses subprocesses because of Python's GIL; C++ threads give the
// same structure without the IPC layer (the all-reduce model absorbs the
// synchronization cost either way — see DESIGN.md).
#pragma once

#include <barrier>
#include <memory>

#include "core/pipeline.hpp"

namespace gnndrive {

struct MultiGpuConfig {
  GnnDriveConfig replica;           ///< per-replica pipeline configuration
  std::uint32_t num_replicas = 2;
  double allreduce_overhead_us = 120.0;  ///< per-sync launch/IPC overhead
  double interconnect_mb_s = 8000.0;     ///< PCIe/NVLink all-reduce bandwidth
};

class MultiGpuGnnDrive : NonCopyable {
 public:
  MultiGpuGnnDrive(const RunContext& ctx, MultiGpuConfig config);
  ~MultiGpuGnnDrive();

  /// Runs one epoch across all replicas; epoch_seconds is the wall time of
  /// the slowest replica, loss/accuracy are averaged.
  EpochStats run_epoch(std::uint64_t epoch);

  double evaluate();
  std::uint32_t num_replicas() const { return config_.num_replicas; }
  GnnDrive& replica(std::uint32_t i) { return *replicas_[i]; }

 private:
  RunContext ctx_;
  MultiGpuConfig config_;
  std::vector<std::unique_ptr<GnnDrive>> replicas_;
};

}  // namespace gnndrive
