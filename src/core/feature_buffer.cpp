#include "core/feature_buffer.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

namespace {
/// Construction-time config validation: a throwing rejection here turns what
/// used to be a late GD_CHECK abort on the first lookup into a recoverable
/// error at the configuration boundary.
void validate(const FeatureBufferConfig& config) {
  if (config.num_slots == 0) {
    throw std::invalid_argument("FeatureBuffer: num_slots must be > 0");
  }
  if (config.num_slots > IndexedLruList::kNil) {
    throw std::invalid_argument(
        "FeatureBuffer: num_slots exceeds the LRU index space (" +
        std::to_string(config.num_slots) + " > " +
        std::to_string(IndexedLruList::kNil) + ")");
  }
  if (config.row_floats == 0) {
    throw std::invalid_argument("FeatureBuffer: row_floats must be > 0");
  }
}
}  // namespace

FeatureBuffer::FeatureBuffer(const FeatureBufferConfig& config,
                             NodeId num_nodes, Telemetry* telemetry)
    : num_slots_((validate(config), config.num_slots)),
      row_floats_(config.row_floats),
      map_(num_nodes),
      reverse_(config.num_slots, kInvalidNode),
      standby_(config.num_slots),
      storage_(config.num_slots * config.row_floats, 0.0f) {
  // All slots start free: populate the standby list in slot order.
  for (std::uint64_t s = 0; s < num_slots_; ++s) {
    standby_.push_mru(static_cast<std::uint32_t>(s));
  }
  if (telemetry != nullptr) {
    MetricsRegistry& reg = *telemetry->metrics();
    m_reuse_hits_ = &reg.counter("fb.reuse_hits");
    m_wait_hits_ = &reg.counter("fb.wait_hits");
    m_loads_ = &reg.counter("fb.loads");
    m_slot_waits_ = &reg.counter("fb.slot_waits");
    m_failed_ = &reg.counter("fb.failed_loads");
    m_evictions_ = &reg.counter("fb.evictions");
    m_batch_locks_ = &reg.counter("fb.batch_lock_acquisitions");
    m_hot_hits_ = &reg.counter("fb.hot.hits");
    m_standby_ = &reg.gauge("fb.standby");
    m_standby_->set(static_cast<std::int64_t>(standby_.size()));
    m_hot_slots_ = &reg.gauge("fb.hot.slots");
    m_cold_slots_ = &reg.gauge("fb.cold.slots");
    m_cold_slots_->set(static_cast<std::int64_t>(num_slots_));
    m_client_lookups_[0] = &reg.counter("fb.train.lookups");
    m_client_hits_[0] = &reg.counter("fb.train.hits");
    m_client_lookups_[1] = &reg.counter("fb.serve.lookups");
    m_client_hits_[1] = &reg.counter("fb.serve.hits");
  }
}

void FeatureBuffer::publish_standby_locked() {
  if (m_standby_ != nullptr) {
    m_standby_->set(static_cast<std::int64_t>(standby_.size()));
  }
}

FeatureBuffer::CheckResult FeatureBuffer::check_and_ref(NodeId node,
                                                        FbClient client) {
  std::lock_guard lock(mu_);
  return check_and_ref_locked(node, client);
}

void FeatureBuffer::check_and_ref_batch(const NodeId* nodes, std::size_t n,
                                        CheckResult* out, FbClient client) {
  std::lock_guard lock(mu_);
  ++stats_.batch_lock_acquisitions;
  if (m_batch_locks_ != nullptr) m_batch_locks_->add();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = check_and_ref_locked(nodes[i], client);
  }
}

FeatureBuffer::CheckResult FeatureBuffer::check_and_ref_locked(
    NodeId node, FbClient client) {
  GD_DCHECK_MSG(node < map_.size(), "check_and_ref on out-of-range node");
  const auto ci = static_cast<std::size_t>(client);
  Entry& e = map_[node];
  if (e.pinned) {
    // Hot-partition member: its slot can never be reclaimed, so no
    // reference is taken (release() on it is a symmetric no-op). Callers
    // that pre-filter through hot_slot() never reach here; this path keeps
    // single-node users (tests, baselines) correct. All hot hits live in
    // the lock-free atomics so stats() has a single source to merge.
    GD_CHECK_MSG(e.valid, "pinned entry not valid (prefetch incomplete)");
    hot_hits_[ci].fetch_add(1, std::memory_order_relaxed);
    if (m_hot_hits_ != nullptr) m_hot_hits_->add();
    if (m_client_lookups_[ci] != nullptr) m_client_lookups_[ci]->add();
    if (m_client_hits_[ci] != nullptr) m_client_hits_[ci]->add();
    return {CheckStatus::kReady, e.slot};
  }
  CheckResult result;
  bool hit = false;
  if (e.valid) {
    GD_CHECK_MSG(e.slot != kNoSlot, "valid entry without slot");
    if (e.ref_count == 0) {
      // Retired but still buffered: pull its slot out of the standby list
      // so it cannot be reused from under us.
      standby_.remove(static_cast<std::uint32_t>(e.slot));
      publish_standby_locked();
    }
    ++stats_.reuse_hits;
    ++by_client_[ci].reuse_hits;
    if (m_reuse_hits_ != nullptr) m_reuse_hits_->add();
    result = {CheckStatus::kReady, e.slot};
    hit = true;
  } else if (e.ref_count > 0) {
    // Another extractor is loading this node right now (or has marked it
    // failed and its references are still draining — waiters then see the
    // failure from wait_ready and fail their own batch).
    ++stats_.wait_hits;
    ++by_client_[ci].wait_hits;
    if (m_wait_hits_ != nullptr) m_wait_hits_->add();
    result = {CheckStatus::kInFlight, e.slot};
    hit = true;
  } else {
    ++stats_.loads;
    ++by_client_[ci].loads;
    if (m_loads_ != nullptr) m_loads_->add();
    result = {CheckStatus::kMustLoad, kNoSlot};
  }
  if (m_client_lookups_[ci] != nullptr) m_client_lookups_[ci]->add();
  if (hit && m_client_hits_[ci] != nullptr) m_client_hits_[ci]->add();
  ++e.ref_count;
  return result;
}

SlotId FeatureBuffer::allocate_slot(NodeId node) {
  std::unique_lock lock(mu_);
  return allocate_slot_locked(lock, node);
}

void FeatureBuffer::allocate_slots(const NodeId* nodes, std::size_t n,
                                   SlotId* out) {
  std::unique_lock lock(mu_);
  ++stats_.batch_lock_acquisitions;
  if (m_batch_locks_ != nullptr) m_batch_locks_->add();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = allocate_slot_locked(lock, nodes[i]);
  }
}

SlotId FeatureBuffer::allocate_slot_locked(std::unique_lock<std::mutex>& lock,
                                           NodeId node) {
  Entry& e = map_[node];
  GD_CHECK_MSG(!e.valid && e.slot == kNoSlot && e.ref_count > 0,
               "allocate_slot on node not in kMustLoad state");
  if (standby_.empty()) {
    ++stats_.slot_waits;
    if (m_slot_waits_ != nullptr) m_slot_waits_->add();
    slot_available_.wait(lock, [&] { return !standby_.empty(); });
  }
  const std::uint32_t slot = standby_.pop_lru();
  publish_standby_locked();
  const NodeId prev = reverse_[slot];
  if (prev != kInvalidNode) {
    // Lazy invalidation of the slot's previous occupant (Fig. 6, step 4).
    GD_CHECK_MSG(map_[prev].ref_count == 0,
                 "standby slot owner had live references");
    map_[prev].valid = false;
    map_[prev].slot = kNoSlot;
    if (m_evictions_ != nullptr) m_evictions_->add();
  }
  reverse_[slot] = node;
  e.slot = static_cast<SlotId>(slot);
  return e.slot;
}

void FeatureBuffer::mark_valid(NodeId node) {
  {
    std::lock_guard lock(mu_);
    Entry& e = map_[node];
    GD_CHECK_MSG(e.slot != kNoSlot, "mark_valid without a slot");
    e.valid = true;
  }
  became_valid_.notify_all();
}

void FeatureBuffer::mark_failed(NodeId node) {
  {
    std::lock_guard lock(mu_);
    Entry& e = map_[node];
    GD_CHECK_MSG(e.ref_count > 0, "mark_failed on unreferenced node");
    GD_CHECK_MSG(!e.valid, "mark_failed on valid node");
    e.failed = true;
    ++stats_.failed_loads;
    if (m_failed_ != nullptr) m_failed_->add();
  }
  became_valid_.notify_all();
}

SlotId FeatureBuffer::wait_valid(NodeId node) {
  std::unique_lock lock(mu_);
  became_valid_.wait(lock, [&] { return map_[node].valid; });
  return map_[node].slot;
}

std::optional<SlotId> FeatureBuffer::wait_ready(NodeId node,
                                                Duration timeout) {
  std::unique_lock lock(mu_);
  const bool resolved = became_valid_.wait_for(lock, timeout, [&] {
    return map_[node].valid || map_[node].failed;
  });
  if (!resolved) return std::nullopt;
  return map_[node].valid ? map_[node].slot : kNoSlot;
}

bool FeatureBuffer::retire_locked(NodeId node) {
  GD_DCHECK_MSG(node < map_.size(), "release on out-of-range node");
  Entry& e = map_[node];
  // Pinned hot nodes hold no references (check_and_ref never bumps them),
  // so a symmetric release is a no-op — their slots never rejoin standby.
  if (e.pinned) return false;
  // Refcount underflow means a double release (a serve- or release-path
  // bug); failing loudly here beats silently pushing a live slot onto the
  // standby list and corrupting whoever reuses it.
  GD_CHECK_MSG(e.ref_count > 0, "release without reference (refcount underflow)");
  if (--e.ref_count != 0) return false;
  if (e.failed) {
    // Failed load fully resets at the last release: the slot (if one was
    // allocated) returns to standby with no occupant, and the entry goes
    // back to the unbuffered state so a later batch retries from scratch.
    const bool freed = e.slot != kNoSlot;
    if (freed) {
      reverse_[static_cast<std::size_t>(e.slot)] = kInvalidNode;
      standby_.push_mru(static_cast<std::uint32_t>(e.slot));
    }
    e = Entry{};
    return freed;
  }
  if (e.slot != kNoSlot) {
    // Retired: slot joins the MRU end of the standby list; the mapping
    // entry stays valid so the node can be reused across mini-batches.
    standby_.push_mru(static_cast<std::uint32_t>(e.slot));
    return true;
  }
  return false;
}

void FeatureBuffer::release_one(NodeId node) {
  bool freed = false;
  {
    std::lock_guard lock(mu_);
    freed = retire_locked(node);
    if (freed) publish_standby_locked();
  }
  if (freed) slot_available_.notify_all();
}

void FeatureBuffer::release(const std::vector<NodeId>& nodes) {
  bool freed = false;
  {
    std::lock_guard lock(mu_);
    ++stats_.batch_lock_acquisitions;
    if (m_batch_locks_ != nullptr) m_batch_locks_->add();
    for (NodeId node : nodes) freed |= retire_locked(node);
    if (freed) publish_standby_locked();
  }
  if (freed) slot_available_.notify_all();
}

std::vector<SlotId> FeatureBuffer::pin_hot(
    const std::vector<NodeId>& hot_nodes) {
  std::lock_guard lock(mu_);
  if (hot_nodes.size() >= num_slots_) {
    throw std::invalid_argument(
        "pin_hot: hot set (" + std::to_string(hot_nodes.size()) +
        " nodes) must leave at least one cold slot of " +
        std::to_string(num_slots_));
  }
  if (standby_.size() != num_slots_ || hot_count_ != 0) {
    throw std::logic_error(
        "pin_hot requires an idle feature buffer (all slots on standby, no "
        "prior hot partition)");
  }
  // Validate the whole set before touching any state: a rejected pin must
  // leave the buffer exactly as it found it (all slots on standby).
  std::vector<bool> seen(map_.size(), false);
  for (NodeId node : hot_nodes) {
    if (node >= map_.size() || seen[node]) {
      throw std::invalid_argument(
          "pin_hot: hot set contains an out-of-range or duplicate node (" +
          std::to_string(node) + ")");
    }
    seen[node] = true;
  }
  hot_map_.assign(map_.size(), kNoSlot);
  std::vector<SlotId> out;
  out.reserve(hot_nodes.size());
  for (NodeId node : hot_nodes) {
    const std::uint32_t slot = standby_.pop_lru();
    reverse_[slot] = node;
    Entry& e = map_[node];
    e.slot = static_cast<SlotId>(slot);
    e.pinned = true;
    hot_map_[node] = e.slot;
    out.push_back(e.slot);
  }
  hot_count_ = hot_nodes.size();
  publish_standby_locked();
  if (m_hot_slots_ != nullptr) {
    m_hot_slots_->set(static_cast<std::int64_t>(hot_count_));
  }
  if (m_cold_slots_ != nullptr) {
    m_cold_slots_->set(static_cast<std::int64_t>(num_slots_ - hot_count_));
  }
  return out;
}

void FeatureBuffer::seal_hot() {
  {
    std::lock_guard lock(mu_);
    for (NodeId node = 0; node < hot_map_.size(); ++node) {
      if (hot_map_[node] == kNoSlot) continue;
      GD_CHECK_MSG(map_[node].valid, "seal_hot before every pinned node "
                                     "was loaded and mark_valid()ed");
    }
  }
  // Release-store pairs with the acquire-load in hot_slot(): the fully
  // written hot_map_ is visible to any thread that observes sealed==true.
  hot_sealed_.store(true, std::memory_order_release);
}

void FeatureBuffer::record_hot_hits(std::uint64_t n, FbClient client) {
  if (n == 0) return;
  const auto ci = static_cast<std::size_t>(client);
  hot_hits_[ci].fetch_add(n, std::memory_order_relaxed);
  if (m_hot_hits_ != nullptr) m_hot_hits_->add(n);
  if (m_client_lookups_[ci] != nullptr) m_client_lookups_[ci]->add(n);
  if (m_client_hits_[ci] != nullptr) m_client_hits_[ci]->add(n);
}

FeatureBuffer::Entry FeatureBuffer::entry(NodeId node) const {
  std::lock_guard lock(mu_);
  return map_[node];
}

NodeId FeatureBuffer::reverse(SlotId slot) const {
  std::lock_guard lock(mu_);
  return reverse_[static_cast<std::size_t>(slot)];
}

std::size_t FeatureBuffer::standby_size() const {
  std::lock_guard lock(mu_);
  return standby_.size();
}

FeatureBufferStats FeatureBuffer::stats() const {
  std::lock_guard lock(mu_);
  FeatureBufferStats s = stats_;
  for (std::size_t ci = 0; ci < kNumFbClients; ++ci) {
    s.hot_hits += hot_hits_[ci].load(std::memory_order_relaxed);
  }
  return s;
}

FeatureBufferStats FeatureBuffer::stats(FbClient client) const {
  std::lock_guard lock(mu_);
  const auto ci = static_cast<std::size_t>(client);
  FeatureBufferStats s = by_client_[ci];
  s.hot_hits = hot_hits_[ci].load(std::memory_order_relaxed);
  return s;
}

}  // namespace gnndrive
