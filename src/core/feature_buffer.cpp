#include "core/feature_buffer.hpp"

#include "obs/metrics.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

FeatureBuffer::FeatureBuffer(const FeatureBufferConfig& config,
                             NodeId num_nodes, Telemetry* telemetry)
    : num_slots_(config.num_slots),
      row_floats_(config.row_floats),
      map_(num_nodes),
      reverse_(config.num_slots, kInvalidNode),
      standby_(config.num_slots),
      storage_(config.num_slots * config.row_floats, 0.0f) {
  GD_CHECK(num_slots_ > 0 && num_slots_ <= IndexedLruList::kNil);
  // All slots start free: populate the standby list in slot order.
  for (std::uint64_t s = 0; s < num_slots_; ++s) {
    standby_.push_mru(static_cast<std::uint32_t>(s));
  }
  if (telemetry != nullptr) {
    MetricsRegistry& reg = *telemetry->metrics();
    m_reuse_hits_ = &reg.counter("fb.reuse_hits");
    m_wait_hits_ = &reg.counter("fb.wait_hits");
    m_loads_ = &reg.counter("fb.loads");
    m_slot_waits_ = &reg.counter("fb.slot_waits");
    m_failed_ = &reg.counter("fb.failed_loads");
    m_evictions_ = &reg.counter("fb.evictions");
    m_batch_locks_ = &reg.counter("fb.batch_lock_acquisitions");
    m_standby_ = &reg.gauge("fb.standby");
    m_standby_->set(static_cast<std::int64_t>(standby_.size()));
  }
}

void FeatureBuffer::publish_standby_locked() {
  if (m_standby_ != nullptr) {
    m_standby_->set(static_cast<std::int64_t>(standby_.size()));
  }
}

FeatureBuffer::CheckResult FeatureBuffer::check_and_ref(NodeId node) {
  std::lock_guard lock(mu_);
  return check_and_ref_locked(node);
}

void FeatureBuffer::check_and_ref_batch(const NodeId* nodes, std::size_t n,
                                        CheckResult* out) {
  std::lock_guard lock(mu_);
  ++stats_.batch_lock_acquisitions;
  if (m_batch_locks_ != nullptr) m_batch_locks_->add();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = check_and_ref_locked(nodes[i]);
  }
}

FeatureBuffer::CheckResult FeatureBuffer::check_and_ref_locked(NodeId node) {
  GD_DCHECK_MSG(node < map_.size(), "check_and_ref on out-of-range node");
  Entry& e = map_[node];
  CheckResult result;
  if (e.valid) {
    GD_CHECK_MSG(e.slot != kNoSlot, "valid entry without slot");
    if (e.ref_count == 0) {
      // Retired but still buffered: pull its slot out of the standby list
      // so it cannot be reused from under us.
      standby_.remove(static_cast<std::uint32_t>(e.slot));
      publish_standby_locked();
    }
    ++stats_.reuse_hits;
    if (m_reuse_hits_ != nullptr) m_reuse_hits_->add();
    result = {CheckStatus::kReady, e.slot};
  } else if (e.ref_count > 0) {
    // Another extractor is loading this node right now (or has marked it
    // failed and its references are still draining — waiters then see the
    // failure from wait_ready and fail their own batch).
    ++stats_.wait_hits;
    if (m_wait_hits_ != nullptr) m_wait_hits_->add();
    result = {CheckStatus::kInFlight, e.slot};
  } else {
    ++stats_.loads;
    if (m_loads_ != nullptr) m_loads_->add();
    result = {CheckStatus::kMustLoad, kNoSlot};
  }
  ++e.ref_count;
  return result;
}

SlotId FeatureBuffer::allocate_slot(NodeId node) {
  std::unique_lock lock(mu_);
  return allocate_slot_locked(lock, node);
}

void FeatureBuffer::allocate_slots(const NodeId* nodes, std::size_t n,
                                   SlotId* out) {
  std::unique_lock lock(mu_);
  ++stats_.batch_lock_acquisitions;
  if (m_batch_locks_ != nullptr) m_batch_locks_->add();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = allocate_slot_locked(lock, nodes[i]);
  }
}

SlotId FeatureBuffer::allocate_slot_locked(std::unique_lock<std::mutex>& lock,
                                           NodeId node) {
  Entry& e = map_[node];
  GD_CHECK_MSG(!e.valid && e.slot == kNoSlot && e.ref_count > 0,
               "allocate_slot on node not in kMustLoad state");
  if (standby_.empty()) {
    ++stats_.slot_waits;
    if (m_slot_waits_ != nullptr) m_slot_waits_->add();
    slot_available_.wait(lock, [&] { return !standby_.empty(); });
  }
  const std::uint32_t slot = standby_.pop_lru();
  publish_standby_locked();
  const NodeId prev = reverse_[slot];
  if (prev != kInvalidNode) {
    // Lazy invalidation of the slot's previous occupant (Fig. 6, step 4).
    GD_CHECK_MSG(map_[prev].ref_count == 0,
                 "standby slot owner had live references");
    map_[prev].valid = false;
    map_[prev].slot = kNoSlot;
    if (m_evictions_ != nullptr) m_evictions_->add();
  }
  reverse_[slot] = node;
  e.slot = static_cast<SlotId>(slot);
  return e.slot;
}

void FeatureBuffer::mark_valid(NodeId node) {
  {
    std::lock_guard lock(mu_);
    Entry& e = map_[node];
    GD_CHECK_MSG(e.slot != kNoSlot, "mark_valid without a slot");
    e.valid = true;
  }
  became_valid_.notify_all();
}

void FeatureBuffer::mark_failed(NodeId node) {
  {
    std::lock_guard lock(mu_);
    Entry& e = map_[node];
    GD_CHECK_MSG(e.ref_count > 0, "mark_failed on unreferenced node");
    GD_CHECK_MSG(!e.valid, "mark_failed on valid node");
    e.failed = true;
    ++stats_.failed_loads;
    if (m_failed_ != nullptr) m_failed_->add();
  }
  became_valid_.notify_all();
}

SlotId FeatureBuffer::wait_valid(NodeId node) {
  std::unique_lock lock(mu_);
  became_valid_.wait(lock, [&] { return map_[node].valid; });
  return map_[node].slot;
}

std::optional<SlotId> FeatureBuffer::wait_ready(NodeId node,
                                                Duration timeout) {
  std::unique_lock lock(mu_);
  const bool resolved = became_valid_.wait_for(lock, timeout, [&] {
    return map_[node].valid || map_[node].failed;
  });
  if (!resolved) return std::nullopt;
  return map_[node].valid ? map_[node].slot : kNoSlot;
}

bool FeatureBuffer::retire_locked(NodeId node) {
  GD_DCHECK_MSG(node < map_.size(), "release on out-of-range node");
  Entry& e = map_[node];
  // Refcount underflow means a double release (a serve- or release-path
  // bug); failing loudly here beats silently pushing a live slot onto the
  // standby list and corrupting whoever reuses it.
  GD_CHECK_MSG(e.ref_count > 0, "release without reference (refcount underflow)");
  if (--e.ref_count != 0) return false;
  if (e.failed) {
    // Failed load fully resets at the last release: the slot (if one was
    // allocated) returns to standby with no occupant, and the entry goes
    // back to the unbuffered state so a later batch retries from scratch.
    const bool freed = e.slot != kNoSlot;
    if (freed) {
      reverse_[static_cast<std::size_t>(e.slot)] = kInvalidNode;
      standby_.push_mru(static_cast<std::uint32_t>(e.slot));
    }
    e = Entry{};
    return freed;
  }
  if (e.slot != kNoSlot) {
    // Retired: slot joins the MRU end of the standby list; the mapping
    // entry stays valid so the node can be reused across mini-batches.
    standby_.push_mru(static_cast<std::uint32_t>(e.slot));
    return true;
  }
  return false;
}

void FeatureBuffer::release_one(NodeId node) {
  bool freed = false;
  {
    std::lock_guard lock(mu_);
    freed = retire_locked(node);
    if (freed) publish_standby_locked();
  }
  if (freed) slot_available_.notify_all();
}

void FeatureBuffer::release(const std::vector<NodeId>& nodes) {
  bool freed = false;
  {
    std::lock_guard lock(mu_);
    ++stats_.batch_lock_acquisitions;
    if (m_batch_locks_ != nullptr) m_batch_locks_->add();
    for (NodeId node : nodes) freed |= retire_locked(node);
    if (freed) publish_standby_locked();
  }
  if (freed) slot_available_.notify_all();
}

FeatureBuffer::Entry FeatureBuffer::entry(NodeId node) const {
  std::lock_guard lock(mu_);
  return map_[node];
}

NodeId FeatureBuffer::reverse(SlotId slot) const {
  std::lock_guard lock(mu_);
  return reverse_[static_cast<std::size_t>(slot)];
}

std::size_t FeatureBuffer::standby_size() const {
  std::lock_guard lock(mu_);
  return standby_.size();
}

FeatureBufferStats FeatureBuffer::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace gnndrive
