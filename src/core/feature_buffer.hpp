// GNNDrive's feature buffer manager (Sect. 4.2, Fig. 6, Algorithm 1).
//
// Four components, exactly as the paper describes:
//  * mapping table  — per graph node: {slot index, reference count, valid
//    bit}. States: (slot=-1, valid=0) not buffered; (slot>=0, valid=0) being
//    extracted; (slot>=0, valid=1) ready. (slot=-1, valid=1) is unreachable.
//  * buffer         — the slot storage itself (device memory for GPU
//    training, host memory for the CPU variant).
//  * reverse map    — slot -> node currently occupying it (-1 when empty).
//  * standby list   — LRU list of slots with zero reference count: free
//    slots plus retired-but-reusable ones. Reusing a slot for a *new* node
//    lazily invalidates the previous occupant's mapping entry.
//
// The two-pass protocol mirrors Algorithm 1: extractors first
// check_and_ref() every sampled node (reuse / wait-list / to-load triage,
// reference counts bumped), then allocate_slot() + asynchronous load +
// mark_valid() for the to-load set, and finally wait_valid() on wait-listed
// nodes. The releaser calls release() after training.
//
// Hot partition (src/cache). A hotness-aware policy may pin the top-K nodes
// by estimated access frequency into a dedicated slot region via pin_hot():
// pinned slots never enter the standby list, carry no reference counts, and
// once seal_hot() publishes them they can be resolved lock-free through
// hot_slot(). The cold remainder keeps the LRU standby discipline below.
//
// Thread-safe; allocate_slot() blocks when the standby list is empty until a
// release arrives. Deadlock freedom requires cold_slots >= Ne x Mb (number
// of extractors x max nodes per mini-batch, counting only the unpinned
// region) — enforced by the pipeline and stress-tested.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "util/common.hpp"
#include "util/lru.hpp"

namespace gnndrive {

class Counter;
class Gauge;
class Telemetry;

/// Which workload a feature-buffer lookup is attributed to. Training and
/// serving share one buffer; per-client counters let a cache win be traced
/// to the workload that benefits (docs/observability.md, fb.train.* /
/// fb.serve.*).
enum class FbClient : std::uint8_t { kTrain = 0, kServe = 1 };
inline constexpr std::size_t kNumFbClients = 2;

struct FeatureBufferConfig {
  std::uint64_t num_slots = 0;
  std::uint32_t row_floats = 0;  ///< floats per slot (feature dimension)
};

struct FeatureBufferStats {
  std::uint64_t hot_hits = 0;      ///< node resolved from the pinned region
  std::uint64_t reuse_hits = 0;    ///< node found valid in the buffer
  std::uint64_t wait_hits = 0;     ///< node being loaded by another thread
  std::uint64_t loads = 0;         ///< nodes that required an SSD load
  std::uint64_t slot_waits = 0;    ///< times allocate_slot had to block
  std::uint64_t failed_loads = 0;  ///< nodes marked failed by an extractor
  /// Mutex acquisitions taken by the batched entry points
  /// (check_and_ref_batch / allocate_slots / release): together with
  /// `lookups()` this exposes the per-node-lock traffic the batched APIs
  /// eliminated.
  std::uint64_t batch_lock_acquisitions = 0;

  /// Total triages observed (lock-free hot resolutions included).
  std::uint64_t lookups() const {
    return hot_hits + reuse_hits + wait_hits + loads;
  }
  /// (hot + reuse + wait) / lookups, guarded against the zero-lookup case
  /// (a buffer that never served a batch reports 0, not NaN).
  double hit_rate() const {
    const std::uint64_t total = lookups();
    return total > 0 ? static_cast<double>(hot_hits + reuse_hits + wait_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
  /// Hit rate of the standby (cold) region alone — what the LRU list itself
  /// delivers once hot hits are taken out. The A/B bench compares this
  /// across policies.
  double standby_hit_rate() const {
    const std::uint64_t total = reuse_hits + wait_hits + loads;
    return total > 0 ? static_cast<double>(reuse_hits + wait_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class FeatureBuffer : NonCopyable {
 public:
  /// `telemetry` (optional) publishes the hit/miss/eviction counters and the
  /// standby-list gauge into its metrics registry under "fb.*" names.
  /// Throws std::invalid_argument when the config is unusable (zero slots,
  /// more slots than the LRU index space, zero-width rows) — construction
  /// is the validation point, not the first hot-path GD_CHECK.
  FeatureBuffer(const FeatureBufferConfig& config, NodeId num_nodes,
                Telemetry* telemetry = nullptr);

  enum class CheckStatus {
    kReady,     ///< valid in the buffer; slot returned
    kInFlight,  ///< another thread is extracting it; add to wait list
    kMustLoad,  ///< caller must allocate a slot and load it
  };
  struct CheckResult {
    CheckStatus status;
    SlotId slot;  ///< valid for kReady; may be kNoSlot for kInFlight
  };

  /// Pass 1 of Algorithm 1 for one node: triages and increments the node's
  /// reference count (the caller now holds a reference regardless of status).
  /// Pinned hot nodes short-circuit to kReady without a reference bump
  /// (their slots can never be reclaimed, so no reference is needed; a
  /// symmetric release() on them is a no-op).
  CheckResult check_and_ref(NodeId node, FbClient client = FbClient::kTrain);

  /// Pass 1 for a whole batch under a single mutex acquisition. Triage
  /// results are written to `out[0..n)` and are identical to n sequential
  /// check_and_ref calls in the same order (duplicates within the batch
  /// triage like repeated calls would: first occurrence decides, later
  /// duplicates see kInFlight/kReady).
  void check_and_ref_batch(const NodeId* nodes, std::size_t n,
                           CheckResult* out,
                           FbClient client = FbClient::kTrain);

  /// Pass 2: assigns the LRU standby slot to `node` (which must be in the
  /// kMustLoad state), lazily invalidating the slot's previous occupant.
  /// Blocks while the standby list is empty.
  SlotId allocate_slot(NodeId node);

  /// Pass 2 for a group of kMustLoad nodes under (at minimum) a single
  /// mutex acquisition; writes each node's slot to `out[0..n)`. Blocking
  /// semantics match n sequential allocate_slot calls — the wait happens
  /// per node as the standby list drains, so the deadlock-freedom argument
  /// (num_slots >= Ne x Mb) is unchanged.
  void allocate_slots(const NodeId* nodes, std::size_t n, SlotId* out);

  /// Marks the node's data ready (after load + transfer) and wakes waiters.
  void mark_valid(NodeId node);

  /// Marks a node whose load permanently failed; wakes waiters, which see
  /// kNoSlot from wait_ready(). The node's references stay owed — when the
  /// last one is released the entry fully resets (slot back to standby,
  /// failed flag cleared) so a later batch can retry the load from scratch.
  /// Valid both for nodes with an allocated slot and for kMustLoad nodes
  /// whose extractor aborted before allocate_slot().
  void mark_failed(NodeId node);

  /// Blocks until `node` is valid; returns its slot (wait-list resolution).
  SlotId wait_valid(NodeId node);

  /// Fault-tolerant wait-list resolution: returns the slot once valid,
  /// kNoSlot if the loading extractor marked the node failed, and nullopt if
  /// neither happened within `timeout` (loader died — the caller should fail
  /// its batch rather than deadlock).
  std::optional<SlotId> wait_ready(NodeId node, Duration timeout);

  /// Releaser path: drops one reference per node; slots reaching zero are
  /// appended at the MRU end of the standby list. Mapping entries stay valid
  /// for potential inter-batch reuse (lazy invalidation).
  void release(const std::vector<NodeId>& nodes);
  void release_one(NodeId node);

  float* slot_data(SlotId slot) {
    return storage_.data() + static_cast<std::size_t>(slot) * row_floats_;
  }
  const float* slot_data(SlotId slot) const {
    return storage_.data() + static_cast<std::size_t>(slot) * row_floats_;
  }

  std::uint64_t num_slots() const { return num_slots_; }
  std::uint32_t row_floats() const { return row_floats_; }
  std::uint64_t storage_bytes() const { return storage_.size() * 4; }

  // -- Hot partition (src/cache hotness policy) -----------------------------
  /// Claims one slot per node and pins it: the slot leaves the standby list
  /// permanently and the node maps to it for the buffer's lifetime. Must be
  /// called on an idle buffer (every slot still on standby, no prior pin);
  /// throws std::invalid_argument on an oversized or duplicate-bearing hot
  /// set and std::logic_error when the buffer is not idle. Returns the slot
  /// of hot_nodes[i] at out[i]. The caller then loads each row and
  /// mark_valid()s it; seal_hot() publishes the partition.
  std::vector<SlotId> pin_hot(const std::vector<NodeId>& hot_nodes);
  /// Publishes the pinned partition for lock-free hot_slot() resolution.
  /// Every pinned node must have been mark_valid()ed first.
  void seal_hot();
  bool hot_sealed() const {
    return hot_sealed_.load(std::memory_order_acquire);
  }
  /// Lock-free: the node's pinned slot, or kNoSlot when the node is not hot
  /// (or the partition is not sealed yet). Safe from any thread after
  /// seal_hot() — pinned mappings never change.
  SlotId hot_slot(NodeId node) const {
    if (!hot_sealed_.load(std::memory_order_acquire)) return kNoSlot;
    return hot_map_[node];
  }
  /// Accounting for hot resolutions done outside the mutex (the extractor
  /// fast path batches them per mini-batch).
  void record_hot_hits(std::uint64_t n, FbClient client = FbClient::kTrain);
  std::uint64_t hot_slots() const { return hot_count_; }
  std::uint64_t cold_slots() const { return num_slots_ - hot_count_; }

  // -- Introspection (tests, Fig. 6 walk-through) ---------------------------
  struct Entry {
    SlotId slot = kNoSlot;
    std::uint32_t ref_count = 0;
    bool valid = false;
    bool failed = false;  ///< load permanently failed; resets at refcount 0
    bool pinned = false;  ///< hot-partition member; exempt from eviction
  };
  Entry entry(NodeId node) const;
  NodeId reverse(SlotId slot) const;  ///< kInvalidNode when slot is empty
  std::size_t standby_size() const;
  /// Merged view across both clients.
  FeatureBufferStats stats() const;
  /// Triage counters attributed to one client (hot/reuse/wait/loads only;
  /// the shared fields — slot_waits, failed_loads, lock counts — are
  /// buffer-global and reported by the merged stats()).
  FeatureBufferStats stats(FbClient client) const;

  static constexpr NodeId kInvalidNode = 0xffffffffu;

 private:
  /// Drops one reference; returns true when a slot joined the standby list.
  /// Called with mu_ held.
  bool retire_locked(NodeId node);
  /// check_and_ref body; called with mu_ held.
  CheckResult check_and_ref_locked(NodeId node, FbClient client);
  /// allocate_slot body; may release `lock` to wait for a standby slot.
  SlotId allocate_slot_locked(std::unique_lock<std::mutex>& lock, NodeId node);

  const std::uint64_t num_slots_;
  const std::uint32_t row_floats_;

  mutable std::mutex mu_;
  std::condition_variable slot_available_;
  std::condition_variable became_valid_;

  std::vector<Entry> map_;            ///< mapping table, per node
  std::vector<NodeId> reverse_;       ///< per slot
  IndexedLruList standby_;            ///< unpinned slots with refcount == 0
  std::vector<float> storage_;
  FeatureBufferStats stats_;
  /// Per-client triage counters (hot/reuse/wait/loads), guarded by mu_
  /// except hot_hits which is mirrored from the lock-free atomics below.
  FeatureBufferStats by_client_[kNumFbClients];

  // Hot partition. hot_map_ is written only before the release-store of
  // hot_sealed_; readers pair it with an acquire-load in hot_slot(), so the
  // mapping is immutable once visible and needs no lock.
  std::vector<SlotId> hot_map_;  ///< node -> pinned slot (kNoSlot when cold)
  std::uint64_t hot_count_ = 0;
  std::atomic<bool> hot_sealed_{false};
  std::atomic<std::uint64_t> hot_hits_[kNumFbClients] = {};

  // Observability (all null without telemetry; see docs/observability.md).
  void publish_standby_locked();
  Counter* m_reuse_hits_ = nullptr;   ///< fb.reuse_hits
  Counter* m_wait_hits_ = nullptr;    ///< fb.wait_hits
  Counter* m_loads_ = nullptr;        ///< fb.loads
  Counter* m_slot_waits_ = nullptr;   ///< fb.slot_waits
  Counter* m_failed_ = nullptr;       ///< fb.failed_loads
  Counter* m_evictions_ = nullptr;    ///< fb.evictions (slot re-assigned)
  Counter* m_batch_locks_ = nullptr;  ///< fb.batch_lock_acquisitions
  Counter* m_hot_hits_ = nullptr;     ///< fb.hot.hits
  Gauge* m_standby_ = nullptr;        ///< fb.standby (list length)
  Gauge* m_hot_slots_ = nullptr;      ///< fb.hot.slots (pinned region size)
  Gauge* m_cold_slots_ = nullptr;     ///< fb.cold.slots (evictable region)
  /// fb.train.lookups / fb.train.hits / fb.serve.lookups / fb.serve.hits
  Counter* m_client_lookups_[kNumFbClients] = {};
  Counter* m_client_hits_[kNumFbClients] = {};
};

}  // namespace gnndrive
