// GNNDrive's feature buffer manager (Sect. 4.2, Fig. 6, Algorithm 1).
//
// Four components, exactly as the paper describes:
//  * mapping table  — per graph node: {slot index, reference count, valid
//    bit}. States: (slot=-1, valid=0) not buffered; (slot>=0, valid=0) being
//    extracted; (slot>=0, valid=1) ready. (slot=-1, valid=1) is unreachable.
//  * buffer         — the slot storage itself (device memory for GPU
//    training, host memory for the CPU variant).
//  * reverse map    — slot -> node currently occupying it (-1 when empty).
//  * standby list   — LRU list of slots with zero reference count: free
//    slots plus retired-but-reusable ones. Reusing a slot for a *new* node
//    lazily invalidates the previous occupant's mapping entry.
//
// The two-pass protocol mirrors Algorithm 1: extractors first
// check_and_ref() every sampled node (reuse / wait-list / to-load triage,
// reference counts bumped), then allocate_slot() + asynchronous load +
// mark_valid() for the to-load set, and finally wait_valid() on wait-listed
// nodes. The releaser calls release() after training.
//
// Thread-safe; allocate_slot() blocks when the standby list is empty until a
// release arrives. Deadlock freedom requires num_slots >= Ne x Mb (number of
// extractors x max nodes per mini-batch) — enforced by the pipeline and
// stress-tested.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "util/common.hpp"
#include "util/lru.hpp"

namespace gnndrive {

class Counter;
class Gauge;
class Telemetry;

struct FeatureBufferConfig {
  std::uint64_t num_slots = 0;
  std::uint32_t row_floats = 0;  ///< floats per slot (feature dimension)
};

struct FeatureBufferStats {
  std::uint64_t reuse_hits = 0;    ///< node found valid in the buffer
  std::uint64_t wait_hits = 0;     ///< node being loaded by another thread
  std::uint64_t loads = 0;         ///< nodes that required an SSD load
  std::uint64_t slot_waits = 0;    ///< times allocate_slot had to block
  std::uint64_t failed_loads = 0;  ///< nodes marked failed by an extractor
  /// Mutex acquisitions taken by the batched entry points
  /// (check_and_ref_batch / allocate_slots / release): together with
  /// `lookups()` this exposes the per-node-lock traffic the batched APIs
  /// eliminated.
  std::uint64_t batch_lock_acquisitions = 0;

  /// Total check_and_ref triages observed.
  std::uint64_t lookups() const { return reuse_hits + wait_hits + loads; }
  /// (reuse + wait) / lookups, guarded against the zero-lookup case (a
  /// buffer that never served a batch reports 0, not NaN).
  double hit_rate() const {
    const std::uint64_t total = lookups();
    return total > 0 ? static_cast<double>(reuse_hits + wait_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class FeatureBuffer : NonCopyable {
 public:
  /// `telemetry` (optional) publishes the hit/miss/eviction counters and the
  /// standby-list gauge into its metrics registry under "fb.*" names.
  FeatureBuffer(const FeatureBufferConfig& config, NodeId num_nodes,
                Telemetry* telemetry = nullptr);

  enum class CheckStatus {
    kReady,     ///< valid in the buffer; slot returned
    kInFlight,  ///< another thread is extracting it; add to wait list
    kMustLoad,  ///< caller must allocate a slot and load it
  };
  struct CheckResult {
    CheckStatus status;
    SlotId slot;  ///< valid for kReady; may be kNoSlot for kInFlight
  };

  /// Pass 1 of Algorithm 1 for one node: triages and increments the node's
  /// reference count (the caller now holds a reference regardless of status).
  CheckResult check_and_ref(NodeId node);

  /// Pass 1 for a whole batch under a single mutex acquisition. Triage
  /// results are written to `out[0..n)` and are identical to n sequential
  /// check_and_ref calls in the same order (duplicates within the batch
  /// triage like repeated calls would: first occurrence decides, later
  /// duplicates see kInFlight/kReady).
  void check_and_ref_batch(const NodeId* nodes, std::size_t n,
                           CheckResult* out);

  /// Pass 2: assigns the LRU standby slot to `node` (which must be in the
  /// kMustLoad state), lazily invalidating the slot's previous occupant.
  /// Blocks while the standby list is empty.
  SlotId allocate_slot(NodeId node);

  /// Pass 2 for a group of kMustLoad nodes under (at minimum) a single
  /// mutex acquisition; writes each node's slot to `out[0..n)`. Blocking
  /// semantics match n sequential allocate_slot calls — the wait happens
  /// per node as the standby list drains, so the deadlock-freedom argument
  /// (num_slots >= Ne x Mb) is unchanged.
  void allocate_slots(const NodeId* nodes, std::size_t n, SlotId* out);

  /// Marks the node's data ready (after load + transfer) and wakes waiters.
  void mark_valid(NodeId node);

  /// Marks a node whose load permanently failed; wakes waiters, which see
  /// kNoSlot from wait_ready(). The node's references stay owed — when the
  /// last one is released the entry fully resets (slot back to standby,
  /// failed flag cleared) so a later batch can retry the load from scratch.
  /// Valid both for nodes with an allocated slot and for kMustLoad nodes
  /// whose extractor aborted before allocate_slot().
  void mark_failed(NodeId node);

  /// Blocks until `node` is valid; returns its slot (wait-list resolution).
  SlotId wait_valid(NodeId node);

  /// Fault-tolerant wait-list resolution: returns the slot once valid,
  /// kNoSlot if the loading extractor marked the node failed, and nullopt if
  /// neither happened within `timeout` (loader died — the caller should fail
  /// its batch rather than deadlock).
  std::optional<SlotId> wait_ready(NodeId node, Duration timeout);

  /// Releaser path: drops one reference per node; slots reaching zero are
  /// appended at the MRU end of the standby list. Mapping entries stay valid
  /// for potential inter-batch reuse (lazy invalidation).
  void release(const std::vector<NodeId>& nodes);
  void release_one(NodeId node);

  float* slot_data(SlotId slot) {
    return storage_.data() + static_cast<std::size_t>(slot) * row_floats_;
  }
  const float* slot_data(SlotId slot) const {
    return storage_.data() + static_cast<std::size_t>(slot) * row_floats_;
  }

  std::uint64_t num_slots() const { return num_slots_; }
  std::uint32_t row_floats() const { return row_floats_; }
  std::uint64_t storage_bytes() const { return storage_.size() * 4; }

  // -- Introspection (tests, Fig. 6 walk-through) ---------------------------
  struct Entry {
    SlotId slot = kNoSlot;
    std::uint32_t ref_count = 0;
    bool valid = false;
    bool failed = false;  ///< load permanently failed; resets at refcount 0
  };
  Entry entry(NodeId node) const;
  NodeId reverse(SlotId slot) const;  ///< kInvalidNode when slot is empty
  std::size_t standby_size() const;
  FeatureBufferStats stats() const;

  static constexpr NodeId kInvalidNode = 0xffffffffu;

 private:
  /// Drops one reference; returns true when a slot joined the standby list.
  /// Called with mu_ held.
  bool retire_locked(NodeId node);
  /// check_and_ref body; called with mu_ held.
  CheckResult check_and_ref_locked(NodeId node);
  /// allocate_slot body; may release `lock` to wait for a standby slot.
  SlotId allocate_slot_locked(std::unique_lock<std::mutex>& lock, NodeId node);

  const std::uint64_t num_slots_;
  const std::uint32_t row_floats_;

  mutable std::mutex mu_;
  std::condition_variable slot_available_;
  std::condition_variable became_valid_;

  std::vector<Entry> map_;            ///< mapping table, per node
  std::vector<NodeId> reverse_;       ///< per slot
  IndexedLruList standby_;            ///< slots with refcount == 0
  std::vector<float> storage_;
  FeatureBufferStats stats_;

  // Observability (all null without telemetry; see docs/observability.md).
  void publish_standby_locked();
  Counter* m_reuse_hits_ = nullptr;   ///< fb.reuse_hits
  Counter* m_wait_hits_ = nullptr;    ///< fb.wait_hits
  Counter* m_loads_ = nullptr;        ///< fb.loads
  Counter* m_slot_waits_ = nullptr;   ///< fb.slot_waits
  Counter* m_failed_ = nullptr;       ///< fb.failed_loads
  Counter* m_evictions_ = nullptr;    ///< fb.evictions (slot re-assigned)
  Counter* m_batch_locks_ = nullptr;  ///< fb.batch_lock_acquisitions
  Gauge* m_standby_ = nullptr;        ///< fb.standby (list length)
};

}  // namespace gnndrive
